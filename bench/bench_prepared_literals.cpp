// Experiment E9 — ablation of DESIGN.md decision #3: constant folding of
// spatial literals at bind time ("prepared literals"). With folding off,
// every row re-parses the WKT constant and re-builds the probe geometry —
// the behaviour of a DBMS that does not cache constant subexpressions.

#include "bench_common.h"
#include "common/string_util.h"
#include "core/micro_suite.h"
#include "core/report.h"

int main() {
  using namespace jackpine;
  const tigergen::TigerGenOptions gen = bench::DatasetOptions();
  const tigergen::TigerDataset dataset = tigergen::GenerateTiger(gen);
  bench::PrintHeader("E9", "prepared spatial literals (constant folding)",
                     dataset);

  // The queries that carry big WKT constants: the county-polygon filters.
  std::vector<core::QuerySpec> workload;
  for (const core::QuerySpec& q : core::BuildTopologicalSuite(dataset)) {
    if (q.id == "T2" || q.id == "T3" || q.id == "T12" || q.id == "T13" ||
        q.id == "T19") {
      workload.push_back(q);
    }
  }
  const core::RunConfig config = bench::RunConfigFromEnv();

  std::vector<std::pair<std::string, std::string>> rows;
  for (bool fold : {true, false}) {
    client::SutConfig sut_config = *client::SutByName("pine-rtree");
    sut_config.name = fold ? "folded (prepared)" : "unfolded (per-row parse)";
    sut_config.fold_constants = fold;
    client::Connection conn = client::Connection::Open(sut_config);
    auto timing = core::LoadDataset(dataset, &conn);
    if (!timing.ok()) {
      std::fprintf(stderr, "%s\n", timing.status().ToString().c_str());
      return 1;
    }
    for (const core::QuerySpec& q : workload) {
      const core::RunResult r = core::RunQuery(&conn, q, config);
      rows.emplace_back(
          StrFormat("%-26s %s", sut_config.name.c_str(), q.id.c_str()),
          r.ok ? StrFormat("%9.3f ms (%zu rows)", r.timing.mean_s * 1e3,
                           r.result_rows)
               : "ERR " + r.error);
    }
  }
  std::printf("%s\n",
              core::RenderKeyValueTable(
                  "E9: bind-time folding vs per-row literal evaluation", rows)
                  .c_str());
  std::printf(
      "expected shape: unfolded evaluation pays a WKT parse of the constant "
      "per refined row, inflating exactly the queries with large polygon "
      "literals; folded evaluation parses once per query.\n");
  return 0;
}
