// Shared helpers for the experiment binaries: dataset/scale selection via
// environment variables and SUT iteration.
//
//   JACKPINE_SCALE  dataset scale factor (default 0.25 so the full suite
//                   finishes in seconds; the paper-shaped runs use 1.0)
//   JACKPINE_SEED   dataset seed (default 42)
//   JACKPINE_REPS   measured repetitions per query (default 3)

#ifndef JACKPINE_BENCH_BENCH_COMMON_H_
#define JACKPINE_BENCH_BENCH_COMMON_H_

#include <cstdio>
#include <cstdlib>
#include <string>
#include <vector>

#include "client/client.h"
#include "core/loader.h"
#include "core/runner.h"
#include "tigergen/tigergen.h"

namespace jackpine::bench {

inline double EnvDouble(const char* name, double fallback) {
  const char* v = std::getenv(name);
  return v == nullptr ? fallback : std::atof(v);
}

inline int EnvInt(const char* name, int fallback) {
  const char* v = std::getenv(name);
  return v == nullptr ? fallback : std::atoi(v);
}

inline tigergen::TigerGenOptions DatasetOptions() {
  tigergen::TigerGenOptions gen;
  gen.scale = EnvDouble("JACKPINE_SCALE", 0.25);
  gen.seed = static_cast<uint64_t>(EnvInt("JACKPINE_SEED", 42));
  return gen;
}

inline core::RunConfig RunConfigFromEnv() {
  core::RunConfig config;
  config.repetitions = EnvInt("JACKPINE_REPS", 3);
  return config;
}

// Opens a connection for `sut_name` and loads `dataset` into it; exits the
// process on failure (bench binaries have no meaningful recovery).
inline client::Connection ConnectAndLoad(
    const std::string& sut_name, const tigergen::TigerDataset& dataset,
    bool build_indexes = true, core::LoadTiming* timing_out = nullptr) {
  auto sut = client::SutByName(sut_name);
  if (!sut.ok()) {
    std::fprintf(stderr, "%s\n", sut.status().ToString().c_str());
    std::exit(1);
  }
  client::Connection conn = client::Connection::Open(*sut);
  auto timing = core::LoadDataset(dataset, &conn, build_indexes);
  if (!timing.ok()) {
    std::fprintf(stderr, "load failed: %s\n",
                 timing.status().ToString().c_str());
    std::exit(1);
  }
  if (timing_out != nullptr) *timing_out = *timing;
  return conn;
}

inline void PrintHeader(const char* experiment, const char* what,
                        const tigergen::TigerDataset& dataset) {
  std::printf("### %s: %s\n", experiment, what);
  std::printf("dataset: %zu rows (%zu edges, %zu counties, %zu pointlm, "
              "%zu arealm, %zu areawater)\n\n",
              dataset.TotalRows(), dataset.edges.size(),
              dataset.counties.size(), dataset.pointlm.size(),
              dataset.arealm.size(), dataset.areawater.size());
}

}  // namespace jackpine::bench

#endif  // JACKPINE_BENCH_BENCH_COMMON_H_
