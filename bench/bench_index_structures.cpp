// Experiment E8 — R-tree vs grid vs scan at the index level: window queries
// across window sizes and k-NN, on the raw index structures (paper: the
// indexing differences between PostGIS's GiST R-tree and the commercial
// DBMS's grid-style index).

#include <benchmark/benchmark.h>

#include "bench_common.h"
#include "index/grid_index.h"
#include "index/linear_scan.h"
#include "index/rtree.h"

namespace {

using namespace jackpine;
using geom::Envelope;

struct IndexFixture {
  tigergen::TigerDataset dataset;
  index::RTree rtree;
  index::GridIndex grid;
  index::LinearScanIndex scan;

  IndexFixture() : dataset(tigergen::GenerateTiger(bench::DatasetOptions())) {
    std::vector<index::IndexEntry> entries;
    int64_t id = 0;
    for (const auto& e : dataset.edges) {
      entries.push_back({e.geom.envelope(), id++});
    }
    rtree.BulkLoad(entries);
    grid.BulkLoad(entries);
    scan.BulkLoad(std::move(entries));
  }
};

IndexFixture& Fix() {
  static IndexFixture* f = new IndexFixture();
  return *f;
}

Envelope Window(int permille) {
  const auto& f = Fix();
  const double half = f.dataset.extent.Width() * permille / 2000.0;
  const geom::Coord c = f.dataset.urban_centers.front();
  return Envelope(c.x - half, c.y - half, c.x + half, c.y + half);
}

void RunWindowQuery(benchmark::State& state, const index::SpatialIndex& idx) {
  const Envelope window = Window(static_cast<int>(state.range(0)));
  std::vector<int64_t> out;
  size_t matched = 0;
  for (auto _ : state) {
    out.clear();
    idx.Query(window, &out);
    matched = out.size();
    benchmark::DoNotOptimize(out.data());
  }
  state.counters["matched"] = static_cast<double>(matched);
}

void BM_WindowRtree(benchmark::State& state) {
  RunWindowQuery(state, Fix().rtree);
}
void BM_WindowGrid(benchmark::State& state) {
  RunWindowQuery(state, Fix().grid);
}
void BM_WindowScan(benchmark::State& state) {
  RunWindowQuery(state, Fix().scan);
}

BENCHMARK(BM_WindowRtree)->Arg(1)->Arg(10)->Arg(50)->Arg(200)->Arg(1000);
BENCHMARK(BM_WindowGrid)->Arg(1)->Arg(10)->Arg(50)->Arg(200)->Arg(1000);
BENCHMARK(BM_WindowScan)->Arg(1)->Arg(10)->Arg(50)->Arg(200)->Arg(1000);

void RunKnn(benchmark::State& state, const index::SpatialIndex& idx) {
  const auto& f = Fix();
  const geom::Coord c = f.dataset.urban_centers.back();
  const size_t k = static_cast<size_t>(state.range(0));
  std::vector<int64_t> out;
  for (auto _ : state) {
    out.clear();
    idx.Nearest(c, k, &out);
    benchmark::DoNotOptimize(out.data());
  }
}

void BM_KnnRtree(benchmark::State& state) { RunKnn(state, Fix().rtree); }
void BM_KnnGrid(benchmark::State& state) { RunKnn(state, Fix().grid); }
void BM_KnnScan(benchmark::State& state) { RunKnn(state, Fix().scan); }

BENCHMARK(BM_KnnRtree)->Arg(1)->Arg(10)->Arg(100);
BENCHMARK(BM_KnnGrid)->Arg(1)->Arg(10)->Arg(100);
BENCHMARK(BM_KnnScan)->Arg(1)->Arg(10)->Arg(100);

// Build cost comparison (STR vs incremental vs grid).
void BM_BuildRtreeStr(benchmark::State& state) {
  const auto& f = Fix();
  std::vector<index::IndexEntry> entries;
  int64_t id = 0;
  for (const auto& e : f.dataset.edges) {
    entries.push_back({e.geom.envelope(), id++});
  }
  for (auto _ : state) {
    index::RTree tree;
    tree.BulkLoad(entries);
    benchmark::DoNotOptimize(tree.size());
  }
}

void BM_BuildRtreeIncremental(benchmark::State& state) {
  const auto& f = Fix();
  for (auto _ : state) {
    index::RTree tree;
    for (size_t i = 0; i < f.dataset.edges.size(); ++i) {
      tree.Insert(f.dataset.edges[i].geom.envelope(),
                  static_cast<int64_t>(i));
    }
    benchmark::DoNotOptimize(tree.size());
  }
}

void BM_BuildGrid(benchmark::State& state) {
  const auto& f = Fix();
  std::vector<index::IndexEntry> entries;
  int64_t id = 0;
  for (const auto& e : f.dataset.edges) {
    entries.push_back({e.geom.envelope(), id++});
  }
  for (auto _ : state) {
    index::GridIndex g;
    g.BulkLoad(entries);
    benchmark::DoNotOptimize(g.size());
  }
}

BENCHMARK(BM_BuildRtreeStr);
BENCHMARK(BM_BuildRtreeIncremental);
BENCHMARK(BM_BuildGrid);

}  // namespace

int main(int argc, char** argv) {
  std::printf(
      "### E8: index structures head to head (window arg = side in 1/1000 "
      "extent; knn arg = k)\nexpected shape: grid edges out the R-tree on "
      "tiny uniform windows, loses on skewed/large ones; the R-tree "
      "dominates k-NN (best-first descent vs grid's full scan); STR bulk "
      "load is far cheaper than incremental insertion.\n\n");
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
