// Experiment E10 — durability overhead: DML latency with the WAL on the
// write path, as a function of the group-commit window, versus the
// in-memory baseline. Companion to DESIGN.md "Durability": the window
// trades single-statement latency (a statement may wait up to the window
// for its fsync) against fsync amortisation under concurrency, where many
// statements share one fsync.

#include <algorithm>
#include <atomic>
#include <filesystem>
#include <thread>
#include <vector>

#include "bench_common.h"
#include "common/stopwatch.h"
#include "common/string_util.h"
#include "core/report.h"
#include "engine/database.h"
#include "storage/storage.h"

using namespace jackpine;

namespace {

namespace fs = std::filesystem;

engine::DatabaseOptions RtreeOptions() {
  engine::DatabaseOptions options;
  options.index_kind = index::IndexKind::kRtree;
  return options;
}

std::string InsertSql(int i) {
  return "INSERT INTO pts VALUES (" + std::to_string(i) +
         ", ST_GeomFromText('POINT(" + std::to_string(i % 100) + " " +
         std::to_string(i % 50) + ")'))";
}

double Percentile(std::vector<double>* samples, double p) {
  std::sort(samples->begin(), samples->end());
  const size_t idx = static_cast<size_t>(p * (samples->size() - 1));
  return (*samples)[idx];
}

struct RunResult {
  double p50_us = 0;
  double p95_us = 0;
  double total_s = 0;
  uint64_t fsyncs = 0;
  uint64_t wal_bytes = 0;
};

// Single-threaded: `n` inserts, one at a time.
RunResult RunSerial(int n, storage::StorageManager* store,
                    engine::Database* db) {
  std::vector<double> lat;
  lat.reserve(n);
  Stopwatch total;
  for (int i = 0; i < n; ++i) {
    Stopwatch watch;
    auto r = db->Execute(InsertSql(i));
    if (!r.ok()) {
      std::fprintf(stderr, "%s\n", r.status().ToString().c_str());
      std::exit(1);
    }
    lat.push_back(watch.ElapsedMillis() * 1e3);
  }
  RunResult result;
  result.total_s = total.ElapsedMillis() / 1e3;
  result.p50_us = Percentile(&lat, 0.50);
  result.p95_us = Percentile(&lat, 0.95);
  if (store != nullptr) {
    result.fsyncs = store->wal_fsyncs();
    result.wal_bytes = store->wal_bytes();
  }
  return result;
}

// `threads` writers share the database; group commit should batch their
// fsyncs inside the window.
RunResult RunConcurrent(int n, int threads, storage::StorageManager* store,
                        engine::Database* db) {
  std::vector<std::vector<double>> lat(threads);
  std::atomic<int> next{0};
  Stopwatch total;
  std::vector<std::thread> workers;
  for (int t = 0; t < threads; ++t) {
    workers.emplace_back([&, t] {
      while (true) {
        const int i = next.fetch_add(1);
        if (i >= n) return;
        Stopwatch watch;
        auto r = db->Execute(InsertSql(i));
        if (!r.ok()) {
          std::fprintf(stderr, "%s\n", r.status().ToString().c_str());
          std::exit(1);
        }
        lat[t].push_back(watch.ElapsedMillis() * 1e3);
      }
    });
  }
  for (auto& w : workers) w.join();
  RunResult result;
  result.total_s = total.ElapsedMillis() / 1e3;
  std::vector<double> all;
  for (auto& v : lat) all.insert(all.end(), v.begin(), v.end());
  result.p50_us = Percentile(&all, 0.50);
  result.p95_us = Percentile(&all, 0.95);
  if (store != nullptr) {
    result.fsyncs = store->wal_fsyncs();
    result.wal_bytes = store->wal_bytes();
  }
  return result;
}

std::string Render(const RunResult& r, int n) {
  return StrFormat(
      "p50 %7.1fus  p95 %7.1fus  %7.0f stmt/s  %6llu fsyncs  %8llu wal B",
      r.p50_us, r.p95_us, n / r.total_s,
      static_cast<unsigned long long>(r.fsyncs),
      static_cast<unsigned long long>(r.wal_bytes));
}

}  // namespace

int main() {
  const int n = bench::EnvInt("JACKPINE_WAL_INSERTS", 2000);
  const std::string dir =
      (fs::temp_directory_path() / "jackpine_bench_wal").string();
  std::vector<std::pair<std::string, std::string>> rows;

  // Baseline: no storage attached at all.
  {
    engine::Database db(RtreeOptions());
    if (!db.Execute("CREATE TABLE pts (id BIGINT, g GEOMETRY)").ok()) return 1;
    rows.emplace_back("memory only", Render(RunSerial(n, nullptr, &db), n));
  }

  for (double window_ms : {0.0, 1.0, 5.0}) {
    fs::remove_all(dir);
    engine::Database db(RtreeOptions());
    storage::StorageOptions sopts;
    sopts.dir = dir;
    sopts.group_commit_window_s = window_ms / 1e3;
    auto store = storage::StorageManager::Open(sopts, &db);
    if (!store.ok()) {
      std::fprintf(stderr, "%s\n", store.status().ToString().c_str());
      return 1;
    }
    if (!db.Execute("CREATE TABLE pts (id BIGINT, g GEOMETRY)").ok()) return 1;
    rows.emplace_back(StrFormat("wal, window %.0fms, 1 thread", window_ms),
                      Render(RunSerial(n, store->get(), &db), n));
  }

  for (double window_ms : {0.0, 1.0}) {
    fs::remove_all(dir);
    engine::Database db(RtreeOptions());
    storage::StorageOptions sopts;
    sopts.dir = dir;
    sopts.group_commit_window_s = window_ms / 1e3;
    auto store = storage::StorageManager::Open(sopts, &db);
    if (!store.ok()) {
      std::fprintf(stderr, "%s\n", store.status().ToString().c_str());
      return 1;
    }
    if (!db.Execute("CREATE TABLE pts (id BIGINT, g GEOMETRY)").ok()) return 1;
    rows.emplace_back(StrFormat("wal, window %.0fms, 8 threads", window_ms),
                      Render(RunConcurrent(n, 8, store->get(), &db), n));
  }
  fs::remove_all(dir);

  std::printf("%s\n", core::RenderKeyValueTable(
                          StrFormat("E10: WAL overhead (%d inserts)", n), rows)
                          .c_str());
  std::printf(
      "expected shape: window 0 pays one fsync per statement; a small "
      "window collapses concurrent statements into shared fsyncs (fewer "
      "fsyncs, higher throughput) at the cost of up to one window of "
      "added p95 for a lone writer.\n");
  return 0;
}
