// Experiment E5 — scalability with dataset size: representative micro and
// macro queries across scale factors (paper: dataset-size discussion; the
// benchmark was designed to stress growing TIGER extracts).

#include "bench_common.h"
#include "common/string_util.h"
#include "core/micro_suite.h"
#include "core/report.h"
#include "core/scenarios.h"

int main() {
  using namespace jackpine;
  std::printf("### E5: scalability with dataset size (pine-rtree vs "
              "pine-scan)\n\n");
  const core::RunConfig config = bench::RunConfigFromEnv();
  const double scales[] = {0.125, 0.25, 0.5, 1.0};

  std::vector<std::pair<std::string, std::string>> rows;
  for (double scale : scales) {
    tigergen::TigerGenOptions gen = bench::DatasetOptions();
    gen.scale = scale;
    const tigergen::TigerDataset dataset = tigergen::GenerateTiger(gen);

    // Representative queries: an indexed window filter (T13 line-within-
    // polygon), a spatial join (T17), and a knn (revgeo first query).
    const auto topo = core::BuildTopologicalSuite(dataset);
    const core::Scenario revgeo =
        core::BuildScenario(dataset, "revgeo", gen.seed);
    const core::QuerySpec* window_q = nullptr;
    const core::QuerySpec* join_q = nullptr;
    for (const auto& q : topo) {
      if (q.id == "T13") window_q = &q;
      if (q.id == "T17") join_q = &q;
    }

    for (const char* sut : {"pine-rtree", "pine-scan"}) {
      client::Connection conn = bench::ConnectAndLoad(sut, dataset);
      const core::RunResult w = core::RunQuery(&conn, *window_q, config);
      const core::RunResult j = core::RunQuery(&conn, *join_q, config);
      const core::RunResult k =
          core::RunQuery(&conn, revgeo.queries.front(), config);
      rows.emplace_back(
          StrFormat("scale %.3f (%6zu rows) %-10s", scale,
                    dataset.TotalRows(), sut),
          StrFormat("window %8.3fms  join %9.3fms  knn %8.3fms",
                    w.timing.mean_s * 1e3, j.timing.mean_s * 1e3,
                    k.timing.mean_s * 1e3));
    }
  }
  std::printf("%s\n",
              core::RenderKeyValueTable("E5: response time vs dataset size",
                                        rows)
                  .c_str());
  std::printf(
      "expected shape: pine-scan grows linearly (window/knn) to "
      "quadratically (join) with scale; pine-rtree grows sub-linearly for "
      "window/knn and near-linearly for the join.\n");
  return 0;
}
