// Experiment E7 — exact vs MBR-only predicate semantics: result-set
// divergence and speed on the topological suite (paper: the MySQL
// discussion — MBR-only evaluation returns different answers, faster).
// Also the refinement ablation of DESIGN.md decision #1: the exact SUT's
// refine step is what the MBR SUT skips.

#include "bench_common.h"
#include "common/string_util.h"
#include "core/micro_suite.h"
#include "core/report.h"

int main() {
  using namespace jackpine;
  const tigergen::TigerGenOptions gen = bench::DatasetOptions();
  const tigergen::TigerDataset dataset = tigergen::GenerateTiger(gen);
  bench::PrintHeader("E7", "exact vs MBR-only predicate semantics", dataset);

  const auto suite = core::BuildTopologicalSuite(dataset);
  const core::RunConfig config = bench::RunConfigFromEnv();

  client::Connection exact = bench::ConnectAndLoad("pine-rtree", dataset);
  client::Connection mbr = bench::ConnectAndLoad("pine-mbr", dataset);
  const auto exact_runs = core::RunSuite(&exact, suite, config);
  const auto mbr_runs = core::RunSuite(&mbr, suite, config);

  std::vector<std::pair<std::string, std::string>> rows;
  size_t divergent = 0;
  for (size_t i = 0; i < suite.size(); ++i) {
    const auto& e = exact_runs[i];
    const auto& m = mbr_runs[i];
    if (!e.ok || !m.ok) {
      rows.emplace_back(suite[i].id + " " + suite[i].name, "ERR");
      continue;
    }
    // COUNT(*) queries: read the count from the checksum-bearing row count
    // is 1, so compare checksums; row-returning queries compare row counts.
    const bool differs =
        e.checksum != m.checksum || e.result_rows != m.result_rows;
    if (differs) ++divergent;
    const double speedup =
        m.timing.mean_s > 0 ? e.timing.mean_s / m.timing.mean_s : 0.0;
    rows.emplace_back(
        suite[i].id + " " + suite[i].name,
        StrFormat("exact %8.3fms  mbr %8.3fms  speedup %5.2fx  %s",
                  e.timing.mean_s * 1e3, m.timing.mean_s * 1e3, speedup,
                  differs ? "DIVERGES" : "same"));
  }
  std::printf("%s\n", core::RenderKeyValueTable(
                          "E7: exact vs MBR-only, per topological query",
                          rows)
                          .c_str());
  std::printf(
      "%zu of %zu queries diverge under MBR-only semantics.\n"
      "expected shape: MBR-only is uniformly no slower (it skips the "
      "refinement step entirely) and diverges on every predicate whose "
      "answer depends on exact geometry (touches, crosses, overlaps, "
      "within on non-rectangular data); it agrees on envelope-equivalent "
      "cases.\n",
      divergent, suite.size());
  return 0;
}
