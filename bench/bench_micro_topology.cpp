// Experiment E1 — the DE-9IM topological micro benchmark table:
// per-query response time for each system under test (paper: the micro
// benchmark tables comparing PostGIS / MySQL / the commercial DBMS).

#include "bench_common.h"
#include "core/micro_suite.h"
#include "core/report.h"

int main() {
  using namespace jackpine;
  const tigergen::TigerGenOptions gen = bench::DatasetOptions();
  const tigergen::TigerDataset dataset = tigergen::GenerateTiger(gen);
  bench::PrintHeader("E1", "DE-9IM topological micro benchmark", dataset);

  const auto suite = core::BuildTopologicalSuite(dataset);
  const core::RunConfig config = bench::RunConfigFromEnv();

  std::vector<std::vector<core::RunResult>> by_sut;
  for (const char* sut : {"pine-rtree", "pine-mbr", "pine-grid", "pine-scan"}) {
    client::Connection conn = bench::ConnectAndLoad(sut, dataset);
    by_sut.push_back(core::RunSuite(&conn, suite, config));
  }
  std::printf("%s\n",
              core::RenderComparisonTable(
                  "E1: topological queries, mean response time per SUT",
                  by_sut)
                  .c_str());
  std::printf(
      "expected shape: indexed SUTs (rtree/grid/mbr) beat pine-scan on "
      "selective queries by orders of magnitude; pine-mbr is fastest but "
      "flagged '~mbr' where its MBR-only semantics change the answer; "
      "ST_Disjoint (T2/T22) gets no index help anywhere.\n");
  return 0;
}
