// Experiment E4 — effect of the spatial index: the same window query on
// pine-rtree vs pine-scan across query-window selectivities (paper: the
// with/without-spatial-index comparison).
//
// Uses google-benchmark for the timing loop; window side length is the
// benchmark argument, in 1/1000ths of the extent.

#include <benchmark/benchmark.h>

#include "bench_common.h"
#include "common/string_util.h"

namespace {

using namespace jackpine;

struct Fixture {
  tigergen::TigerDataset dataset;
  client::Connection rtree;
  client::Connection scan;

  Fixture()
      : dataset(tigergen::GenerateTiger(bench::DatasetOptions())),
        rtree(bench::ConnectAndLoad("pine-rtree", dataset)),
        scan(bench::ConnectAndLoad("pine-scan", dataset)) {}
};

Fixture& GetFixture() {
  static Fixture* fixture = new Fixture();
  return *fixture;
}

std::string WindowQuery(const Fixture& f, int permille) {
  const double half = f.dataset.extent.Width() * permille / 2000.0;
  const geom::Coord c = f.dataset.urban_centers.front();
  return StrFormat(
      "SELECT COUNT(*) FROM edges WHERE ST_Intersects(geom, "
      "ST_MakeEnvelope(%.6f, %.6f, %.6f, %.6f))",
      c.x - half, c.y - half, c.x + half, c.y + half);
}

void RunWindow(benchmark::State& state, client::Connection* conn) {
  Fixture& f = GetFixture();
  const std::string sql = WindowQuery(f, static_cast<int>(state.range(0)));
  client::Statement stmt = conn->CreateStatement();
  int64_t rows = 0;
  for (auto _ : state) {
    auto rs = stmt.ExecuteQuery(sql);
    if (!rs.ok()) {
      state.SkipWithError(rs.status().ToString().c_str());
      return;
    }
    if (rs->Next()) rows = rs->GetInt64(0).value_or(0);
    benchmark::DoNotOptimize(rows);
  }
  state.counters["matched_rows"] = static_cast<double>(rows);
}

void BM_WindowRtree(benchmark::State& state) {
  RunWindow(state, &GetFixture().rtree);
}

void BM_WindowScan(benchmark::State& state) {
  RunWindow(state, &GetFixture().scan);
}

BENCHMARK(BM_WindowRtree)->Arg(1)->Arg(5)->Arg(20)->Arg(100)->Arg(500);
BENCHMARK(BM_WindowScan)->Arg(1)->Arg(5)->Arg(20)->Arg(100)->Arg(500);

// A point-in-polygon filter (T3-shaped) with and without the index.
void RunPip(benchmark::State& state, client::Connection* conn) {
  Fixture& f = GetFixture();
  const std::string county =
      f.dataset.counties[f.dataset.counties.size() / 2].geom.ToWkt();
  const std::string sql = StrFormat(
      "SELECT COUNT(*) FROM pointlm WHERE ST_Within(geom, "
      "ST_GeomFromText('%s'))",
      county.c_str());
  client::Statement stmt = conn->CreateStatement();
  for (auto _ : state) {
    auto rs = stmt.ExecuteQuery(sql);
    if (!rs.ok()) {
      state.SkipWithError(rs.status().ToString().c_str());
      return;
    }
    benchmark::DoNotOptimize(rs->RowCount());
  }
}

void BM_PointInPolygonRtree(benchmark::State& state) {
  RunPip(state, &GetFixture().rtree);
}
void BM_PointInPolygonScan(benchmark::State& state) {
  RunPip(state, &GetFixture().scan);
}
BENCHMARK(BM_PointInPolygonRtree);
BENCHMARK(BM_PointInPolygonScan);

}  // namespace

int main(int argc, char** argv) {
  std::printf("### E4: effect of the spatial index (rtree vs sequential "
              "scan)\nexpected shape: the R-tree wins by orders of magnitude "
              "at small windows; the gap narrows as the window approaches "
              "the full extent (arg = window side in 1/1000 extent).\n\n");
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
