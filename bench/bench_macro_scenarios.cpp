// Experiment E3 — the macro scenario figure: total response time of each of
// the six application scenarios on each system under test.

#include "common/string_util.h"
#include "bench_common.h"
#include "core/report.h"
#include "core/scenarios.h"

int main() {
  using namespace jackpine;
  const tigergen::TigerGenOptions gen = bench::DatasetOptions();
  const tigergen::TigerDataset dataset = tigergen::GenerateTiger(gen);
  bench::PrintHeader("E3", "macro workload scenarios", dataset);

  const auto scenarios = core::BuildScenarios(dataset, gen.seed);
  const core::RunConfig config = bench::RunConfigFromEnv();

  // Mixed workload for the throughput metric: every scenario query once.
  std::vector<core::QuerySpec> mixed;
  for (const core::Scenario& s : scenarios) {
    mixed.insert(mixed.end(), s.queries.begin(), s.queries.end());
  }

  std::vector<std::vector<core::ScenarioResult>> by_sut;
  std::vector<core::ThroughputResult> throughput;
  for (const char* sut : {"pine-rtree", "pine-mbr", "pine-grid", "pine-scan"}) {
    client::Connection conn = bench::ConnectAndLoad(sut, dataset);
    std::vector<core::ScenarioResult> results;
    for (const core::Scenario& s : scenarios) {
      results.push_back(core::RunScenario(&conn, s, config));
    }
    by_sut.push_back(std::move(results));
    throughput.push_back(core::RunThroughput(&conn, mixed, /*rounds=*/3));
    // Multi-client scaling on the same database (E3c).
    for (int clients : {2, 4}) {
      core::ThroughputResult t =
          core::RunConcurrentThroughput(&conn, mixed, clients, /*rounds=*/3);
      t.sut += StrFormat(" x%d clients", clients);
      throughput.push_back(std::move(t));
    }
  }
  std::printf("%s\n", core::RenderScenarioTable(
                          "E3: scenario total time per SUT", by_sut)
                          .c_str());

  std::vector<std::pair<std::string, std::string>> tp_rows;
  for (const core::ThroughputResult& t : throughput) {
    tp_rows.emplace_back(
        t.sut, StrFormat("%8.1f queries/s (%zu queries, %zu errors)",
                         t.QueriesPerSecond(), t.queries_executed, t.errors));
  }
  std::printf("%s\n",
              core::RenderKeyValueTable(
                  "E3b/E3c: mixed-workload throughput per SUT "
                  "(1, 2 and 4 concurrent clients)",
                  tp_rows)
                  .c_str());

  // Per-scenario query counts and worst query, for the drill-down figure.
  std::printf("drill-down (pine-rtree): slowest query per scenario\n");
  for (const core::ScenarioResult& s : by_sut.front()) {
    const core::RunResult* worst = nullptr;
    for (const core::RunResult& q : s.queries) {
      if (q.ok && (worst == nullptr || q.timing.mean_s > worst->timing.mean_s)) {
        worst = &q;
      }
    }
    if (worst != nullptr) {
      std::printf("  %-28s %-24s %.3f ms\n", s.scenario_name.c_str(),
                  worst->query_id.c_str(), worst->timing.mean_s * 1e3);
    }
  }
  std::printf(
      "\nexpected shape: scenarios dominated by selective window/knn queries "
      "(map, geocode, revgeo, spill) are fast on indexed SUTs and collapse "
      "on pine-scan; flood and land are join-heavy and show the largest "
      "absolute times everywhere.\n");
  return 0;
}
