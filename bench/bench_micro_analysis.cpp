// Experiment E2 — the spatial-analysis micro benchmark table: per-function
// response time for each system under test.

#include "bench_common.h"
#include "core/micro_suite.h"
#include "core/report.h"

int main() {
  using namespace jackpine;
  const tigergen::TigerGenOptions gen = bench::DatasetOptions();
  const tigergen::TigerDataset dataset = tigergen::GenerateTiger(gen);
  bench::PrintHeader("E2", "spatial analysis micro benchmark", dataset);

  const auto suite = core::BuildAnalysisSuite(dataset);
  const core::RunConfig config = bench::RunConfigFromEnv();

  std::vector<std::vector<core::RunResult>> by_sut;
  for (const char* sut : {"pine-rtree", "pine-mbr", "pine-grid", "pine-scan"}) {
    client::Connection conn = bench::ConnectAndLoad(sut, dataset);
    by_sut.push_back(core::RunSuite(&conn, suite, config));
  }
  std::printf("%s\n",
              core::RenderComparisonTable(
                  "E2: analysis functions, mean response time per SUT",
                  by_sut)
                  .c_str());
  std::printf(
      "expected shape: full-scan analysis functions (A1-A7, A13, A14) cost "
      "the same on every SUT (no index involved); index-filtered analysis "
      "(A11, A12) shows the same scan-vs-index gap as E1; buffers and "
      "overlays (A7, A8, A11, A12) dominate everything else.\n");
  return 0;
}
