// Experiment E6 — data loading time per SUT (paper: load-time table), plus
// the R-tree fill-policy ablation (STR bulk load vs one-at-a-time insert,
// DESIGN.md decision #2).

#include "bench_common.h"
#include "common/string_util.h"
#include "core/report.h"

int main() {
  using namespace jackpine;
  const tigergen::TigerGenOptions gen = bench::DatasetOptions();
  const tigergen::TigerDataset dataset = tigergen::GenerateTiger(gen);
  bench::PrintHeader("E6", "data loading and index build time", dataset);

  std::vector<std::pair<std::string, std::string>> rows;
  for (const char* sut : {"pine-rtree", "pine-mbr", "pine-grid", "pine-scan"}) {
    core::LoadTiming timing;
    client::Connection conn =
        bench::ConnectAndLoad(sut, dataset, /*build_indexes=*/true, &timing);
    rows.emplace_back(
        sut, StrFormat("create %6.2fms  insert %8.2fms  index %8.2fms",
                       timing.create_s * 1e3, timing.insert_s * 1e3,
                       timing.index_s * 1e3));
  }

  // Ablation: STR bulk load vs incremental (quadratic-split) insertion.
  for (bool incremental : {false, true}) {
    auto sut = client::SutByName("pine-rtree");
    client::SutConfig config = *sut;
    config.incremental_index_build = incremental;
    config.name = incremental ? "pine-rtree (incremental)"
                              : "pine-rtree (STR bulk)";
    client::Connection conn = client::Connection::Open(config);
    auto timing = core::LoadDataset(dataset, &conn, /*build_indexes=*/true);
    if (!timing.ok()) {
      std::fprintf(stderr, "%s\n", timing.status().ToString().c_str());
      return 1;
    }
    rows.emplace_back(config.name,
                      StrFormat("index build %8.2fms", timing->index_s * 1e3));
  }

  std::printf("%s\n",
              core::RenderKeyValueTable("E6: load phases per SUT", rows)
                  .c_str());
  std::printf(
      "expected shape: heap insert time is identical across SUTs; index "
      "build differs by structure (grid < STR rtree < incremental rtree); "
      "pine-scan pays nothing at load and everything at query time.\n");
  return 0;
}
