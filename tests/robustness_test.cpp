// Robustness battery: adversarially degenerate overlay inputs that defeat
// textbook Greiner-Hormann (shared vertices, vertex-on-edge contact,
// collinear partial edge overlaps, grid-aligned lattices). The perturbation
// ladder must resolve every one of them with bounded area error.

#include <cstdio>

#include <gtest/gtest.h>

#include "algo/measures.h"
#include "algo/overlay.h"
#include "common/random.h"
#include "geom/wkt_reader.h"
#include "topo/predicates.h"

namespace jackpine::algo {
namespace {

using geom::Envelope;
using geom::Geometry;

Geometry Wkt(const std::string& s) {
  auto r = geom::GeometryFromWkt(s);
  EXPECT_TRUE(r.ok()) << r.status().ToString();
  return std::move(r).value();
}

struct DegenerateCase {
  const char* name;
  const char* a;
  const char* b;
  double expected_intersection_area;
  double expected_union_area;
};

class DegenerateOverlay : public ::testing::TestWithParam<DegenerateCase> {};

TEST_P(DegenerateOverlay, LadderResolvesWithBoundedError) {
  const DegenerateCase& tc = GetParam();
  Geometry a = Wkt(tc.a);
  Geometry b = Wkt(tc.b);
  auto inter = Intersection(a, b);
  auto uni = Union(a, b);
  auto diff = Difference(a, b);
  ASSERT_TRUE(inter.ok()) << tc.name << ": " << inter.status().ToString();
  ASSERT_TRUE(uni.ok()) << tc.name << ": " << uni.status().ToString();
  ASSERT_TRUE(diff.ok()) << tc.name << ": " << diff.status().ToString();
  // Perturbation moves vertices by <= ~1e-6 of the extent, so areas must be
  // correct to a loose absolute tolerance.
  constexpr double kTol = 1e-3;
  EXPECT_NEAR(Area(*inter), tc.expected_intersection_area, kTol) << tc.name;
  EXPECT_NEAR(Area(*uni), tc.expected_union_area, kTol) << tc.name;
  // Partition identity survives degeneracy.
  EXPECT_NEAR(Area(a), Area(*inter) + Area(*diff), kTol) << tc.name;
}

INSTANTIATE_TEST_SUITE_P(
    Cases, DegenerateOverlay,
    ::testing::Values(
        DegenerateCase{"shared-edge",
                       "POLYGON ((0 0, 2 0, 2 2, 0 2, 0 0))",
                       "POLYGON ((2 0, 4 0, 4 2, 2 2, 2 0))", 0.0, 8.0},
        DegenerateCase{"shared-corner",
                       "POLYGON ((0 0, 2 0, 2 2, 0 2, 0 0))",
                       "POLYGON ((2 2, 4 2, 4 4, 2 4, 2 2))", 0.0, 8.0},
        DegenerateCase{"identical",
                       "POLYGON ((0 0, 3 0, 3 3, 0 3, 0 0))",
                       "POLYGON ((0 0, 3 0, 3 3, 0 3, 0 0))", 9.0, 9.0},
        DegenerateCase{"same-ring-different-start",
                       "POLYGON ((0 0, 3 0, 3 3, 0 3, 0 0))",
                       "POLYGON ((3 3, 0 3, 0 0, 3 0, 3 3))", 9.0, 9.0},
        DegenerateCase{"vertex-on-edge",
                       "POLYGON ((0 0, 4 0, 4 4, 0 4, 0 0))",
                       "POLYGON ((2 4, 6 4, 6 8, 2 8, 2 4))", 0.0, 32.0},
        DegenerateCase{"collinear-partial-edge",
                       "POLYGON ((0 0, 4 0, 4 2, 0 2, 0 0))",
                       "POLYGON ((1 2, 3 2, 3 4, 1 4, 1 2))", 0.0, 12.0},
        DegenerateCase{"half-overlap-shared-edges",
                       "POLYGON ((0 0, 4 0, 4 4, 0 4, 0 0))",
                       "POLYGON ((0 0, 4 0, 4 2, 0 2, 0 0))", 8.0, 16.0},
        DegenerateCase{"contained-touching-boundary",
                       "POLYGON ((0 0, 4 0, 4 4, 0 4, 0 0))",
                       "POLYGON ((0 0, 2 0, 2 2, 0 2, 0 0))", 4.0, 16.0},
        DegenerateCase{"cross-shape",
                       "POLYGON ((1 0, 3 0, 3 4, 1 4, 1 0))",
                       "POLYGON ((0 1, 4 1, 4 3, 0 3, 0 1))", 4.0, 12.0}));

TEST(RobustnessTest, GridAlignedLatticeUnionAll) {
  // A 4x4 checkerboard of exactly touching unit squares: every pairwise
  // contact is degenerate. UnionAll must cover the full area.
  std::vector<Geometry> squares;
  for (int y = 0; y < 4; ++y) {
    for (int x = 0; x < 4; ++x) {
      squares.push_back(
          Geometry::MakeRectangle(Envelope(x, y, x + 1, y + 1)));
    }
  }
  auto u = UnionAll(squares);
  ASSERT_TRUE(u.ok()) << u.status().ToString();
  EXPECT_NEAR(Area(*u), 16.0, 1e-2);
}

TEST(RobustnessTest, RepeatedSelfUnionIsStable) {
  Geometry g = Wkt("POLYGON ((0 0, 5 0, 5 5, 0 5, 0 0))");
  for (int i = 0; i < 5; ++i) {
    auto u = Union(g, g);
    ASSERT_TRUE(u.ok());
    g = std::move(u).value();
    EXPECT_NEAR(Area(g), 25.0, 1e-2) << "iteration " << i;
  }
}

TEST(RobustnessTest, RandomTouchingStripsPartition) {
  // Vertical strips sharing edges tile a square; intersect each with a
  // rotated-ish probe polygon and check the pieces sum to the probe's area
  // clipped to the square.
  jackpine::Rng rng(77);
  std::vector<Geometry> strips;
  for (int i = 0; i < 5; ++i) {
    strips.push_back(
        Geometry::MakeRectangle(Envelope(i * 2.0, 0, i * 2.0 + 2.0, 10)));
  }
  for (int iter = 0; iter < 10; ++iter) {
    const double cx = rng.NextDouble(1, 9);
    const double cy = rng.NextDouble(1, 9);
    char buf[256];
    std::snprintf(buf, sizeof(buf),
                  "POLYGON ((%f %f, %f %f, %f %f, %f %f, %f %f))", cx - 1.5,
                  cy - 1.0, cx + 1.5, cy - 1.3, cx + 1.8, cy + 1.1, cx - 1.1,
                  cy + 1.6, cx - 1.5, cy - 1.0);
    Geometry probe = Wkt(buf);
    double pieces = 0.0;
    for (const Geometry& strip : strips) {
      auto inter = Intersection(probe, strip);
      ASSERT_TRUE(inter.ok());
      pieces += Area(*inter);
    }
    auto whole = Intersection(
        probe, Geometry::MakeRectangle(Envelope(0, 0, 10, 10)));
    ASSERT_TRUE(whole.ok());
    EXPECT_NEAR(pieces, Area(*whole), 1e-3);
  }
}

TEST(RobustnessTest, DegenerateContactsKeepPredicatesConsistent) {
  // For every degenerate pair above, Touches and Overlaps stay mutually
  // exclusive and Intersects agrees with a nonempty (closed) intersection.
  const char* pairs[][2] = {
      {"POLYGON ((0 0, 2 0, 2 2, 0 2, 0 0))",
       "POLYGON ((2 0, 4 0, 4 2, 2 2, 2 0))"},
      {"POLYGON ((0 0, 2 0, 2 2, 0 2, 0 0))",
       "POLYGON ((2 2, 4 2, 4 4, 2 4, 2 2))"},
      {"POLYGON ((0 0, 4 0, 4 4, 0 4, 0 0))",
       "POLYGON ((2 4, 6 4, 6 8, 2 8, 2 4))"},
  };
  for (const auto& p : pairs) {
    Geometry a = Wkt(p[0]);
    Geometry b = Wkt(p[1]);
    EXPECT_TRUE(topo::Intersects(a, b)) << p[0];
    EXPECT_TRUE(topo::Touches(a, b)) << p[0];
    EXPECT_FALSE(topo::Overlaps(a, b)) << p[0];
    EXPECT_FALSE(topo::Within(a, b)) << p[0];
  }
}

}  // namespace
}  // namespace jackpine::algo
