// Edge-case battery across modules: degenerate SQL, holes-and-lines
// topology, non-convex overlays, multipolygon operands.

#include <gtest/gtest.h>

#include "algo/measures.h"
#include "algo/overlay.h"
#include "engine/database.h"
#include "geom/wkt_reader.h"
#include "topo/predicates.h"

namespace jackpine {
namespace {

using geom::Geometry;

Geometry Wkt(const std::string& s) {
  auto r = geom::GeometryFromWkt(s);
  EXPECT_TRUE(r.ok()) << r.status().ToString();
  return std::move(r).value();
}

// --- Topology with holes -----------------------------------------------------

TEST(HoleTopologyTest, LineThroughHoleIsPartlyOutside) {
  Geometry donut = Wkt(
      "POLYGON ((0 0, 10 0, 10 10, 0 10, 0 0), (3 3, 3 7, 7 7, 7 3, 3 3))");
  Geometry through = Wkt("LINESTRING (1 5, 9 5)");  // crosses the hole
  EXPECT_TRUE(topo::Intersects(through, donut));
  EXPECT_TRUE(topo::Crosses(through, donut));
  EXPECT_FALSE(topo::Within(through, donut));
  Geometry inside_ring = Wkt("LINESTRING (1 1, 2 1)");  // solid part
  EXPECT_TRUE(topo::Within(inside_ring, donut));
  Geometry in_hole = Wkt("LINESTRING (4 5, 6 5)");  // entirely in the hole
  EXPECT_TRUE(topo::Disjoint(in_hole, donut));
}

TEST(HoleTopologyTest, PolygonFillingHoleTouches) {
  Geometry donut = Wkt(
      "POLYGON ((0 0, 10 0, 10 10, 0 10, 0 0), (3 3, 3 7, 7 7, 7 3, 3 3))");
  Geometry plug = Wkt("POLYGON ((3 3, 7 3, 7 7, 3 7, 3 3))");
  // The plug exactly fills the hole: boundary contact only.
  EXPECT_TRUE(topo::Touches(plug, donut));
  EXPECT_FALSE(topo::Overlaps(plug, donut));
}

// --- Non-convex and multi-part overlays ---------------------------------------

TEST(NonConvexOverlayTest, UShapeUnionCreatesHole) {
  // A "U" plus a lid encloses a cavity.
  Geometry u = Wkt(
      "POLYGON ((0 0, 6 0, 6 4, 4 4, 4 1.5, 2 1.5, 2 4, 0 4, 0 0))");
  Geometry lid = Wkt("POLYGON ((0 3, 6 3, 6 4, 0 4, 0 3))");
  auto result = algo::Union(u, lid);
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  ASSERT_EQ(result->type(), geom::GeometryType::kPolygon);
  EXPECT_EQ(result->AsPolygon().holes.size(), 1u);
  // Area: union = area(u) + area(lid) - area(overlap).
  const double expected =
      algo::Area(u) + algo::Area(lid) - algo::Area(*algo::Intersection(u, lid));
  EXPECT_NEAR(algo::Area(*result), expected, 1e-3);
}

TEST(NonConvexOverlayTest, MultiPolygonOperands) {
  Geometry two = Wkt(
      "MULTIPOLYGON (((0 0, 2 0, 2 2, 0 2, 0 0)), "
      "((6 0, 8 0, 8 2, 6 2, 6 0)))");
  Geometry band = Wkt("POLYGON ((1 0.5, 7 0.5, 7 1.5, 1 1.5, 1 0.5))");
  auto inter = algo::Intersection(two, band);
  ASSERT_TRUE(inter.ok());
  EXPECT_NEAR(algo::Area(*inter), 2.0, 1e-6);  // 1x1 in each square
  auto diff = algo::Difference(two, band);
  ASSERT_TRUE(diff.ok());
  EXPECT_NEAR(algo::Area(*diff), 8.0 - 2.0, 1e-6);
}

TEST(NonConvexOverlayTest, IntersectionSplittingIntoParts) {
  // A band crossing a U intersects in two disconnected pieces.
  Geometry u = Wkt(
      "POLYGON ((0 0, 6 0, 6 4, 4 4, 4 1, 2 1, 2 4, 0 4, 0 0))");
  Geometry band = Wkt("POLYGON ((0 2, 6 2, 6 3, 0 3, 0 2))");
  auto inter = algo::Intersection(u, band);
  ASSERT_TRUE(inter.ok());
  EXPECT_EQ(inter->type(), geom::GeometryType::kMultiPolygon);
  EXPECT_NEAR(algo::Area(*inter), 4.0, 1e-6);  // two 2x1 rectangles
}

// --- SQL edge cases -------------------------------------------------------------

class SqlEdgeTest : public ::testing::Test {
 protected:
  void SetUp() override {
    ASSERT_TRUE(
        db_.Execute("CREATE TABLE t (id BIGINT, name VARCHAR, geom GEOMETRY)")
            .ok());
    ASSERT_TRUE(db_.Execute("INSERT INTO t VALUES "
                            "(1, 'b', ST_MakePoint(1, 1)), "
                            "(2, 'a', ST_MakePoint(2, 2)), "
                            "(3, NULL, NULL)")
                    .ok());
  }
  engine::Database db_;
};

TEST_F(SqlEdgeTest, LimitZeroAndOversizedLimit) {
  auto zero = db_.Execute("SELECT * FROM t LIMIT 0");
  ASSERT_TRUE(zero.ok());
  EXPECT_TRUE(zero->rows.empty());
  auto big = db_.Execute("SELECT * FROM t LIMIT 999");
  ASSERT_TRUE(big.ok());
  EXPECT_EQ(big->rows.size(), 3u);
}

TEST_F(SqlEdgeTest, OrderByStringPutsNullFirst) {
  auto r = db_.Execute("SELECT id FROM t ORDER BY name");
  ASSERT_TRUE(r.ok());
  ASSERT_EQ(r->rows.size(), 3u);
  EXPECT_EQ(r->rows[0][0].int_value(), 3);  // NULL name sorts first
  EXPECT_EQ(r->rows[1][0].int_value(), 2);  // 'a'
  EXPECT_EQ(r->rows[2][0].int_value(), 1);  // 'b'
}

TEST_F(SqlEdgeTest, GeometryEqualityOperator) {
  auto r = db_.Execute(
      "SELECT COUNT(*) FROM t WHERE geom = ST_MakePoint(1, 1)");
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r->rows[0][0].int_value(), 1);
}

TEST_F(SqlEdgeTest, NullGroupKeyFormsItsOwnGroup) {
  auto r = db_.Execute(
      "SELECT COUNT(*) FROM t GROUP BY name ORDER BY COUNT(*) DESC");
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r->rows.size(), 3u);  // 'a', 'b', NULL
}

TEST_F(SqlEdgeTest, ExplainShowsDWithinExpansion) {
  ASSERT_TRUE(db_.Execute("CREATE SPATIAL INDEX ON t (geom)").ok());
  auto r = db_.Execute(
      "EXPLAIN SELECT * FROM t WHERE ST_DWithin(geom, "
      "ST_MakePoint(0, 0), 5)");
  ASSERT_TRUE(r.ok());
  const std::string& line = r->rows[0][0].string_value();
  EXPECT_NE(line.find("IndexWindowScan"), std::string::npos);
  EXPECT_NE(line.find("-5"), std::string::npos) << line;  // expanded window
}

TEST_F(SqlEdgeTest, AggregateOfSpatialOverNullGeometry) {
  // NULL geometry rows drop out of spatial aggregates (COUNT(expr)).
  auto r = db_.Execute("SELECT COUNT(ST_X(geom)), COUNT(*) FROM t");
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r->rows[0][0].int_value(), 2);
  EXPECT_EQ(r->rows[0][1].int_value(), 3);
}

TEST_F(SqlEdgeTest, SelfJoinWithAliases) {
  auto r = db_.Execute(
      "SELECT COUNT(*) FROM t a, t b WHERE a.id < b.id AND "
      "ST_DWithin(a.geom, b.geom, 10)");
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r->rows[0][0].int_value(), 1);  // only (1,2); NULL rows drop
}

}  // namespace
}  // namespace jackpine
