// Tests for the SQL function registry surface: GeoJSON output, boundary,
// accessor functions, and registry metadata.

#include <gtest/gtest.h>

#include "engine/database.h"
#include "geom/geojson.h"
#include "geom/wkt_reader.h"
#include "topo/relate.h"

namespace jackpine::engine {
namespace {

geom::Geometry Wkt(const std::string& s) {
  auto r = geom::GeometryFromWkt(s);
  EXPECT_TRUE(r.ok()) << r.status().ToString();
  return std::move(r).value();
}

TEST(GeoJsonTest, AllTypes) {
  EXPECT_EQ(geom::ToGeoJson(Wkt("POINT (1 2)")),
            R"({"type":"Point","coordinates":[1,2]})");
  EXPECT_EQ(geom::ToGeoJson(Wkt("LINESTRING (0 0, 1 1)")),
            R"({"type":"LineString","coordinates":[[0,0],[1,1]]})");
  EXPECT_EQ(
      geom::ToGeoJson(Wkt("POLYGON ((0 0, 1 0, 1 1, 0 1, 0 0))")),
      R"({"type":"Polygon","coordinates":[[[0,0],[1,0],[1,1],[0,1],[0,0]]]})");
  EXPECT_EQ(geom::ToGeoJson(Wkt("MULTIPOINT ((1 2), (3 4))")),
            R"({"type":"MultiPoint","coordinates":[[1,2],[3,4]]})");
  EXPECT_EQ(
      geom::ToGeoJson(Wkt("GEOMETRYCOLLECTION (POINT (1 2))")),
      R"({"type":"GeometryCollection","geometries":[{"type":"Point","coordinates":[1,2]}]})");
}

TEST(GeoJsonTest, EmptyAndPrecision) {
  EXPECT_EQ(geom::ToGeoJson(Wkt("POINT EMPTY")),
            R"({"type":"GeometryCollection","geometries":[]})");
  EXPECT_EQ(geom::ToGeoJson(Wkt("POLYGON EMPTY")),
            R"({"type":"Polygon","coordinates":[]})");
  EXPECT_EQ(geom::ToGeoJson(geom::Geometry::MakePoint(1.23456789, 0), 3),
            R"({"type":"Point","coordinates":[1.23,0]})");
}

TEST(BoundaryTest, PerType) {
  using topo::Boundary;
  EXPECT_TRUE(Boundary(Wkt("POINT (1 1)")).IsEmpty());
  // Open line: the two endpoints.
  EXPECT_EQ(Boundary(Wkt("LINESTRING (0 0, 1 1)")).NumPoints(), 2u);
  // Closed line: empty boundary.
  EXPECT_TRUE(Boundary(Wkt("LINESTRING (0 0, 1 0, 1 1, 0 0)")).IsEmpty());
  // Polygon with hole: two rings.
  const geom::Geometry b = Boundary(Wkt(
      "POLYGON ((0 0, 4 0, 4 4, 0 4, 0 0), (1 1, 1 2, 2 2, 2 1, 1 1))"));
  EXPECT_EQ(b.type(), geom::GeometryType::kMultiLineString);
  EXPECT_EQ(b.Parts().size(), 2u);
  EXPECT_EQ(b.Dimension(), 1);
}

class SqlFunctionsTest : public ::testing::Test {
 protected:
  void SetUp() override {
    ASSERT_TRUE(db_.Execute("CREATE TABLE t (id BIGINT, geom GEOMETRY)").ok());
    ASSERT_TRUE(db_.Execute(
                       "INSERT INTO t VALUES "
                       "(1, ST_GeomFromText('LINESTRING (0 0, 3 0, 3 4)')), "
                       "(2, ST_GeomFromText('POLYGON ((0 0, 2 0, 2 2, 0 2, "
                       "0 0))'))")
                    .ok());
  }

  Value Scalar(const std::string& sql) {
    auto r = db_.Execute(sql);
    EXPECT_TRUE(r.ok()) << sql << " -> " << r.status().ToString();
    if (!r.ok() || r->rows.empty()) return Value();
    return r->rows[0][0];
  }

  Database db_;
};

TEST_F(SqlFunctionsTest, AsGeoJson) {
  EXPECT_EQ(Scalar("SELECT ST_AsGeoJSON(ST_MakePoint(1, 2)) FROM t LIMIT 1")
                .string_value(),
            R"({"type":"Point","coordinates":[1,2]})");
}

TEST_F(SqlFunctionsTest, BoundaryOfLineAndPolygon) {
  EXPECT_EQ(Scalar("SELECT ST_AsText(ST_Boundary(geom)) FROM t WHERE id = 1")
                .string_value(),
            "MULTIPOINT ((0 0), (3 4))");
  EXPECT_EQ(Scalar("SELECT ST_AsText(ST_Boundary(geom)) FROM t WHERE id = 2")
                .string_value(),
            "LINESTRING (0 0, 2 0, 2 2, 0 2, 0 0)");
}

TEST_F(SqlFunctionsTest, LineAccessors) {
  EXPECT_EQ(Scalar("SELECT ST_AsText(ST_StartPoint(geom)) FROM t WHERE id = 1")
                .string_value(),
            "POINT (0 0)");
  EXPECT_EQ(Scalar("SELECT ST_AsText(ST_EndPoint(geom)) FROM t WHERE id = 1")
                .string_value(),
            "POINT (3 4)");
  EXPECT_EQ(Scalar("SELECT ST_AsText(ST_PointN(geom, 2)) FROM t WHERE id = 1")
                .string_value(),
            "POINT (3 0)");
  EXPECT_TRUE(
      Scalar("SELECT ST_PointN(geom, 9) FROM t WHERE id = 1").is_null());
  EXPECT_TRUE(
      Scalar("SELECT ST_StartPoint(geom) FROM t WHERE id = 2").is_null());
}

TEST_F(SqlFunctionsTest, ReverseRoundTrips) {
  EXPECT_EQ(
      Scalar("SELECT ST_AsText(ST_Reverse(geom)) FROM t WHERE id = 1")
          .string_value(),
      "LINESTRING (3 4, 3 0, 0 0)");
  EXPECT_EQ(
      Scalar(
          "SELECT ST_AsText(ST_Reverse(ST_Reverse(geom))) FROM t WHERE id = 1")
          .string_value(),
      "LINESTRING (0 0, 3 0, 3 4)");
}

TEST_F(SqlFunctionsTest, NumGeometries) {
  EXPECT_EQ(Scalar("SELECT ST_NumGeometries(geom) FROM t WHERE id = 1")
                .int_value(),
            1);
  EXPECT_EQ(
      Scalar("SELECT ST_NumGeometries(ST_GeomFromText("
             "'MULTIPOINT ((0 0), (1 1), (2 2))')) FROM t LIMIT 1")
          .int_value(),
      3);
}

TEST(FunctionRegistryTest, MetadataIsSane) {
  EXPECT_NE(FindFunction("st_intersects"), nullptr);
  EXPECT_NE(FindFunction("ST_INTERSECTS"), nullptr);
  EXPECT_EQ(FindFunction("st_intersects")->indexable_predicate, true);
  EXPECT_EQ(FindFunction("st_disjoint")->indexable_predicate, false);
  EXPECT_EQ(FindFunction("st_area")->indexable_predicate, false);
  EXPECT_EQ(FindFunction("no_such_function"), nullptr);
  EXPECT_GE(AllFunctionNames().size(), 40u);
  EXPECT_TRUE(IsAggregateFunction("count"));
  EXPECT_TRUE(IsAggregateFunction("SUM"));
  EXPECT_FALSE(IsAggregateFunction("ST_Area"));
}

}  // namespace
}  // namespace jackpine::engine
