// Unit tests for jackpine::cache: the TinyLFU frequency sketch, cache-key
// normalization, the byte-budgeted result cache, the seqlock table-version
// observer, request coalescing, and the QueryCache admission protocol
// (DESIGN.md "Result cache & coalescing").

#include <memory>
#include <string>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "cache/cache_key.h"
#include "cache/frequency_sketch.h"
#include "cache/query_cache.h"
#include "cache/request_coalescer.h"
#include "cache/result_cache.h"
#include "cache/table_versions.h"
#include "engine/database.h"

namespace jackpine::cache {
namespace {

// ---------------------------------------------------------------- sketch --

uint64_t H(const std::string& s) { return HashKey(s.data(), s.size()); }

TEST(FrequencySketchTest, EstimateTracksRecordedAccesses) {
  FrequencySketch sketch(256);
  EXPECT_EQ(sketch.Estimate(H("hot")), 0u);
  for (int i = 0; i < 5; ++i) sketch.Record(H("hot"));
  // Count-min estimates are upper bounds: never below the true count.
  EXPECT_GE(sketch.Estimate(H("hot")), 5u);
  EXPECT_LT(sketch.Estimate(H("cold")), 5u);
}

TEST(FrequencySketchTest, HotterKeyWinsTheAdmissionDuel) {
  FrequencySketch sketch(256);
  for (int i = 0; i < 8; ++i) sketch.Record(H("hot"));
  sketch.Record(H("cold"));
  EXPECT_GT(sketch.Estimate(H("hot")), sketch.Estimate(H("cold")));
}

TEST(FrequencySketchTest, PeriodicHalvingAgesOldPopularity) {
  FrequencySketch sketch(64, /*sample_period=*/32);
  for (int i = 0; i < 16; ++i) sketch.Record(H("was-hot"));
  const uint32_t before = sketch.Estimate(H("was-hot"));
  // Fill the rest of the sample window with other traffic; the halving
  // must decay the old key instead of letting it squat on history.
  for (int i = 0; i < 40; ++i) sketch.Record(H("filler" + std::to_string(i)));
  EXPECT_GE(sketch.halvings(), 1u);
  EXPECT_LT(sketch.Estimate(H("was-hot")), before);
}

TEST(FrequencySketchTest, CountersSaturateInsteadOfWrapping) {
  FrequencySketch sketch(64, /*sample_period=*/100000);
  for (int i = 0; i < 1000; ++i) sketch.Record(H("k"));
  // 8-bit counters clamp at 255; a wrap would read as a tiny estimate.
  EXPECT_EQ(sketch.Estimate(H("k")), 255u);
}

// ------------------------------------------------------------- cache key --

TEST(CacheKeyTest, SpellingVariantsNormalizeToOneKey) {
  const auto base = NormalizeSelect("SELECT * FROM edges WHERE id = 1");
  ASSERT_TRUE(base.has_value());
  const char* variants[] = {
      "select *  from EDGES   where ID = 1",
      "SELECT * FROM edges WHERE id = 1 -- trailing comment",
      "SELECT/* inline */ * FROM edges /* another */ WHERE id = 1",
      "  SELECT\n\t* FROM\nedges WHERE id = 1  ",
  };
  for (const char* v : variants) {
    const auto norm = NormalizeSelect(v);
    ASSERT_TRUE(norm.has_value()) << v;
    EXPECT_EQ(norm->text, base->text) << v;
    EXPECT_EQ(norm->tables, base->tables) << v;
  }
}

TEST(CacheKeyTest, LiteralsArePreservedVerbatim) {
  const auto a = NormalizeSelect("SELECT * FROM edges WHERE id = 1");
  const auto b = NormalizeSelect("SELECT * FROM edges WHERE id = 2");
  ASSERT_TRUE(a.has_value());
  ASSERT_TRUE(b.has_value());
  EXPECT_NE(a->text, b->text);

  // String literals are case-sensitive predicates even though identifiers
  // are not: 'Main St' and 'main st' must stay distinct.
  const auto c = NormalizeSelect("SELECT * FROM edges WHERE name = 'Main St'");
  const auto d = NormalizeSelect("SELECT * FROM edges WHERE name = 'main st'");
  ASSERT_TRUE(c.has_value());
  ASSERT_TRUE(d.has_value());
  EXPECT_NE(c->text, d->text);
}

TEST(CacheKeyTest, OnlyPlainSelectsAreCacheable) {
  EXPECT_FALSE(NormalizeSelect("EXPLAIN SELECT * FROM edges").has_value());
  EXPECT_FALSE(
      NormalizeSelect("EXPLAIN ANALYZE SELECT * FROM edges").has_value());
  EXPECT_FALSE(NormalizeSelect("INSERT INTO t VALUES (1)").has_value());
  EXPECT_FALSE(NormalizeSelect("CREATE TABLE t (id BIGINT)").has_value());
  EXPECT_FALSE(NormalizeSelect("DROP SPATIAL INDEX ON t (g)").has_value());
  EXPECT_FALSE(NormalizeSelect("not sql at all").has_value());
  EXPECT_FALSE(NormalizeSelect("SELECT * FROM").has_value());
  EXPECT_TRUE(NormalizeSelect("SELECT 1 FROM edges").has_value());
}

TEST(CacheKeyTest, TablesAreLowercasedAndSorted) {
  const auto norm = NormalizeSelect(
      "SELECT COUNT(*) FROM Edges, ARTERIAL WHERE "
      "ST_Intersects(edges.geom, arterial.geom)");
  ASSERT_TRUE(norm.has_value());
  EXPECT_EQ(norm->tables,
            (std::vector<std::string>{"arterial", "edges"}));
}

TEST(CacheKeyTest, ComposeKeyIsSensitiveToVersionsAndLimits) {
  const auto norm = NormalizeSelect("SELECT * FROM edges");
  ASSERT_TRUE(norm.has_value());
  const std::string k = ComposeKey(*norm, {4}, 0, 0);
  EXPECT_EQ(k, ComposeKey(*norm, {4}, 0, 0));
  // A version bump, a different row cap, and a different byte cap each
  // produce a distinct key: stale or differently-shaped results can never
  // collide with fresh ones.
  EXPECT_NE(k, ComposeKey(*norm, {6}, 0, 0));
  EXPECT_NE(k, ComposeKey(*norm, {4}, 100, 0));
  EXPECT_NE(k, ComposeKey(*norm, {4}, 0, 4096));
}

// ----------------------------------------------------------- result cache --

std::shared_ptr<const ResultCache::Entry> MakeEntry(const std::string& table,
                                                    uint64_t bytes) {
  auto e = std::make_shared<ResultCache::Entry>();
  e->result.columns = {"c"};
  e->result.rows.push_back({engine::Value::Int(1)});
  e->tables = {table};
  e->bytes = bytes;
  return e;
}

TEST(ResultCacheTest, AdmitThenHit) {
  ResultCache cache(1 << 20);
  EXPECT_EQ(cache.Lookup("k"), nullptr);
  EXPECT_TRUE(cache.Admit("k", MakeEntry("t", 100)));
  auto hit = cache.Lookup("k");
  ASSERT_NE(hit, nullptr);
  EXPECT_EQ(hit->result.rows.size(), 1u);
  const CacheStats s = cache.stats();
  EXPECT_EQ(s.hits, 1u);
  EXPECT_EQ(s.misses, 1u);
  EXPECT_EQ(s.admissions, 1u);
  EXPECT_EQ(s.bytes, 100u);
  EXPECT_EQ(s.entries, 1u);
}

TEST(ResultCacheTest, EntryLargerThanBudgetIsRejected) {
  ResultCache cache(1024);
  EXPECT_FALSE(cache.Admit("big", MakeEntry("t", 4096)));
  const CacheStats s = cache.stats();
  EXPECT_EQ(s.rejections, 1u);
  EXPECT_EQ(s.entries, 0u);
}

TEST(ResultCacheTest, HotEntrySurvivesAOneHitWonderScan) {
  ResultCache cache(1000);
  // Make "hot" genuinely hot in the sketch before it is admitted.
  for (int i = 0; i < 10; ++i) (void)cache.Lookup("hot");
  ASSERT_TRUE(cache.Admit("hot", MakeEntry("t", 600)));
  // A scan of never-repeated keys wants the hot entry's bytes. Each scan
  // key was seen once; the TinyLFU duel refuses them all.
  for (int i = 0; i < 20; ++i) {
    const std::string key = "scan" + std::to_string(i);
    (void)cache.Lookup(key);
    EXPECT_FALSE(cache.Admit(key, MakeEntry("t", 600))) << key;
  }
  EXPECT_NE(cache.Lookup("hot"), nullptr);
  const CacheStats s = cache.stats();
  EXPECT_EQ(s.evictions, 0u);
  EXPECT_EQ(s.rejections, 20u);
}

TEST(ResultCacheTest, ColdVictimIsEvictedForAHotterCandidate) {
  ResultCache cache(1000);
  (void)cache.Lookup("cold");
  ASSERT_TRUE(cache.Admit("cold", MakeEntry("t", 600)));
  for (int i = 0; i < 10; ++i) (void)cache.Lookup("hot");
  EXPECT_TRUE(cache.Admit("hot", MakeEntry("t", 600)));
  EXPECT_EQ(cache.Lookup("cold"), nullptr);
  EXPECT_NE(cache.Lookup("hot"), nullptr);
  EXPECT_EQ(cache.stats().evictions, 1u);
}

TEST(ResultCacheTest, InvalidateTablePurgesOnlyTouchedEntries) {
  ResultCache cache(1 << 20);
  ASSERT_TRUE(cache.Admit("a1", MakeEntry("alpha", 100)));
  ASSERT_TRUE(cache.Admit("a2", MakeEntry("alpha", 100)));
  ASSERT_TRUE(cache.Admit("b1", MakeEntry("beta", 100)));
  EXPECT_EQ(cache.InvalidateTable("alpha"), 2u);
  EXPECT_EQ(cache.Lookup("a1"), nullptr);
  EXPECT_EQ(cache.Lookup("a2"), nullptr);
  EXPECT_NE(cache.Lookup("b1"), nullptr);
  const CacheStats s = cache.stats();
  EXPECT_EQ(s.invalidations, 2u);
  EXPECT_EQ(s.bytes, 100u);
}

TEST(ResultCacheTest, ReAdmissionReplacesTheExistingEntry) {
  ResultCache cache(1 << 20);
  ASSERT_TRUE(cache.Admit("k", MakeEntry("t", 100)));
  auto bigger = MakeEntry("t", 300);
  ASSERT_TRUE(cache.Admit("k", bigger));
  const CacheStats s = cache.stats();
  EXPECT_EQ(s.entries, 1u);
  EXPECT_EQ(s.bytes, 300u);
}

TEST(ResultCacheTest, ApproxBytesGrowsWithRows) {
  engine::QueryResult small;
  small.columns = {"c"};
  small.rows.push_back({engine::Value::Int(1)});
  engine::QueryResult large = small;
  for (int i = 0; i < 100; ++i) {
    large.rows.push_back({engine::Value::Str("some string payload")});
  }
  EXPECT_GT(ResultCache::ApproxResultBytes(large),
            ResultCache::ApproxResultBytes(small));
}

// -------------------------------------------------------- table versions --

TEST(TableVersionsTest, MutationsBumpToTheNextEvenVersion) {
  engine::Database db;
  TableVersions versions;
  versions.AttachTo(&db);
  EXPECT_EQ(versions.Snapshot({"t"}), (std::vector<uint64_t>{0}));

  ASSERT_TRUE(db.Execute("CREATE TABLE t (id BIGINT, geom GEOMETRY)").ok());
  const auto after_create = versions.Snapshot({"t"});
  EXPECT_GT(after_create[0], 0u);
  EXPECT_TRUE(TableVersions::Stable(after_create));

  ASSERT_TRUE(db.Execute("INSERT INTO t VALUES (1, ST_MakePoint(0, 0))").ok());
  const auto after_insert = versions.Snapshot({"t"});
  EXPECT_GT(after_insert[0], after_create[0]);
  EXPECT_TRUE(TableVersions::Stable(after_insert));

  ASSERT_TRUE(db.Execute("CREATE SPATIAL INDEX ON t (geom)").ok());
  const auto after_index = versions.Snapshot({"t"});
  EXPECT_GT(after_index[0], after_insert[0]);
  EXPECT_TRUE(TableVersions::Stable(after_index));

  // Other tables are untouched throughout.
  EXPECT_EQ(versions.Snapshot({"other"}), (std::vector<uint64_t>{0}));
}

TEST(TableVersionsTest, NoOpDropIndexLeavesTheVersionStable) {
  engine::Database db;
  TableVersions versions;
  versions.AttachTo(&db);
  ASSERT_TRUE(db.Execute("CREATE TABLE t (id BIGINT, geom GEOMETRY)").ok());
  const auto before = versions.Snapshot({"t"});
  ASSERT_TRUE(TableVersions::Stable(before));
  // Dropping an index that is not there is a no-op: the engine skips the
  // pre-apply hook but still signals OnApplied. The unpaired OnApplied must
  // not flip the version odd (odd = permanently uncacheable).
  ASSERT_TRUE(db.Execute("DROP SPATIAL INDEX ON t (geom)").ok());
  const auto after = versions.Snapshot({"t"});
  EXPECT_TRUE(TableVersions::Stable(after));
  EXPECT_EQ(after, before);
}

TEST(TableVersionsTest, StableRejectsAnyOddComponent) {
  EXPECT_TRUE(TableVersions::Stable({0, 2, 4}));
  EXPECT_FALSE(TableVersions::Stable({0, 3, 4}));
  EXPECT_TRUE(TableVersions::Stable({}));
}

TEST(TableVersionsTest, OnMutateFiresPerTouchedTable) {
  engine::Database db;
  TableVersions versions;
  versions.AttachTo(&db);
  std::vector<std::string> mutated;
  versions.set_on_mutate(
      [&](const std::string& table) { mutated.push_back(table); });
  ASSERT_TRUE(db.Execute("CREATE TABLE t (id BIGINT)").ok());
  ASSERT_TRUE(db.Execute("INSERT INTO t VALUES (1)").ok());
  EXPECT_EQ(mutated, (std::vector<std::string>{"t", "t"}));
}

// ------------------------------------------------------------- coalescer --

TEST(RequestCoalescerTest, FirstJoinLeadsLaterJoinsFollow) {
  RequestCoalescer coalescer;
  auto leader = coalescer.Join("k");
  EXPECT_TRUE(leader.leader);
  auto follower = coalescer.Join("k");
  EXPECT_FALSE(follower.leader);
  EXPECT_EQ(coalescer.in_flight(), 1u);
  // A different key is its own flight.
  EXPECT_TRUE(coalescer.Join("other").leader);
  coalescer.Finish("other", nullptr);

  auto entry = MakeEntry("t", 100);
  std::thread waiter([&] {
    auto got = follower.flight->Wait(/*timeout_s=*/0);
    EXPECT_TRUE(got.leader_finished);
    ASSERT_NE(got.entry, nullptr);
    EXPECT_EQ(got.entry.get(), entry.get());
  });
  coalescer.Finish("k", entry);
  waiter.join();
  EXPECT_EQ(coalescer.in_flight(), 0u);
}

TEST(RequestCoalescerTest, FollowerTimesOutAgainstAStuckLeader) {
  RequestCoalescer coalescer;
  auto leader = coalescer.Join("k");
  ASSERT_TRUE(leader.leader);
  auto follower = coalescer.Join("k");
  const auto got = follower.flight->Wait(/*timeout_s=*/0.02);
  EXPECT_FALSE(got.leader_finished);
  EXPECT_EQ(got.entry, nullptr);
  coalescer.Finish("k", nullptr);  // leader's obligation stands
}

TEST(RequestCoalescerTest, LeaderFailurePublishesNullNotAnError) {
  RequestCoalescer coalescer;
  auto leader = coalescer.Join("k");
  ASSERT_TRUE(leader.leader);
  auto follower = coalescer.Join("k");
  coalescer.Finish("k", nullptr);
  const auto got = follower.flight->Wait(/*timeout_s=*/0);
  // leader_finished with a null entry: run solo, do not propagate the
  // leader's (possibly session-specific) failure.
  EXPECT_TRUE(got.leader_finished);
  EXPECT_EQ(got.entry, nullptr);
}

TEST(RequestCoalescerTest, NextJoinAfterFinishLeadsAgain) {
  RequestCoalescer coalescer;
  auto first = coalescer.Join("k");
  ASSERT_TRUE(first.leader);
  coalescer.Finish("k", MakeEntry("t", 10));
  EXPECT_TRUE(coalescer.Join("k").leader);
}

// ----------------------------------------------------------- query cache --

class QueryCacheTest : public ::testing::Test {
 protected:
  void SetUp() override {
    ASSERT_TRUE(db_.Execute("CREATE TABLE pts (id BIGINT, geom GEOMETRY)").ok());
    ASSERT_TRUE(
        db_.Execute("INSERT INTO pts VALUES (1, ST_MakePoint(1, 1)), "
                    "(2, ST_MakePoint(2, 2))")
            .ok());
    cache_ = std::make_unique<QueryCache>(QueryCacheConfig{});
    cache_->AttachTo(&db_);
  }

  engine::QueryResult Exec(const std::string& sql) {
    auto r = db_.Execute(sql);
    EXPECT_TRUE(r.ok()) << r.status().ToString();
    return r.ok() ? std::move(r).value() : engine::QueryResult{};
  }

  engine::Database db_;
  std::unique_ptr<QueryCache> cache_;
};

TEST_F(QueryCacheTest, MissExecuteAdmitHit) {
  const std::string sql = "SELECT id FROM pts ORDER BY id";
  auto p = cache_->Prepare(sql, 0, 0);
  ASSERT_TRUE(p.has_value());
  EXPECT_EQ(cache_->Lookup(*p), nullptr);

  auto ticket = cache_->JoinFlight(*p);
  ASSERT_TRUE(ticket.leader);
  auto entry = cache_->FinishFlight(*p, Exec(sql), obs::QueryTrace{});
  ASSERT_NE(entry, nullptr);
  EXPECT_EQ(entry->result.rows.size(), 2u);

  // The spelling variant maps to the same key and hits.
  auto p2 = cache_->Prepare("select ID  from PTS order by id -- x", 0, 0);
  ASSERT_TRUE(p2.has_value());
  EXPECT_EQ(p2->key, p->key);
  auto hit = cache_->Lookup(*p2);
  ASSERT_NE(hit, nullptr);
  EXPECT_EQ(hit.get(), entry.get());
  EXPECT_EQ(cache_->stats().admissions, 1u);
}

TEST_F(QueryCacheTest, ExplainAndDmlAreNotCacheable) {
  EXPECT_FALSE(cache_->Prepare("EXPLAIN SELECT * FROM pts", 0, 0).has_value());
  EXPECT_FALSE(
      cache_->Prepare("EXPLAIN ANALYZE SELECT * FROM pts", 0, 0).has_value());
  EXPECT_FALSE(
      cache_->Prepare("INSERT INTO pts VALUES (3, NULL)", 0, 0).has_value());
}

TEST_F(QueryCacheTest, DmlInvalidatesByVersionAndPurges) {
  const std::string sql = "SELECT COUNT(*) FROM pts";
  auto p = cache_->Prepare(sql, 0, 0);
  ASSERT_TRUE(p.has_value());
  auto ticket = cache_->JoinFlight(*p);
  ASSERT_TRUE(ticket.leader);
  ASSERT_NE(cache_->FinishFlight(*p, Exec(sql), obs::QueryTrace{}), nullptr);

  ASSERT_TRUE(db_.Execute("INSERT INTO pts VALUES (3, ST_MakePoint(3, 3))").ok());

  // The old Prepared (old versions) no longer matches, and a fresh Prepare
  // composes a different key; the mutation also purged the entry.
  auto fresh = cache_->Prepare(sql, 0, 0);
  ASSERT_TRUE(fresh.has_value());
  EXPECT_NE(fresh->key, p->key);
  EXPECT_EQ(cache_->Lookup(*fresh), nullptr);
  EXPECT_GE(cache_->stats().invalidations, 1u);

  // The fresh key caches the new three-row answer.
  auto t2 = cache_->JoinFlight(*fresh);
  ASSERT_TRUE(t2.leader);
  auto entry = cache_->FinishFlight(*fresh, Exec(sql), obs::QueryTrace{});
  ASSERT_NE(entry, nullptr);
  EXPECT_EQ(entry->result.rows[0][0].int_value(), 3);
}

TEST_F(QueryCacheTest, MutationBetweenPrepareAndFinishBlocksAdmission) {
  const std::string sql = "SELECT COUNT(*) FROM pts";
  auto p = cache_->Prepare(sql, 0, 0);
  ASSERT_TRUE(p.has_value());
  auto ticket = cache_->JoinFlight(*p);
  ASSERT_TRUE(ticket.leader);
  engine::QueryResult result = Exec(sql);
  // The seqlock check: versions moved since Prepare, so the result may have
  // observed a half-applied mutation — serve it, never cache it.
  ASSERT_TRUE(db_.Execute("INSERT INTO pts VALUES (4, ST_MakePoint(4, 4))").ok());
  auto entry =
      cache_->FinishFlight(*p, std::move(result), obs::QueryTrace{});
  ASSERT_NE(entry, nullptr);  // the leader still serves its own client
  EXPECT_EQ(cache_->stats().admissions, 0u);
  auto fresh = cache_->Prepare(sql, 0, 0);
  ASSERT_TRUE(fresh.has_value());
  EXPECT_EQ(cache_->Lookup(*fresh), nullptr);
}

TEST_F(QueryCacheTest, AbortWakesFollowersEmptyHanded) {
  const std::string sql = "SELECT id FROM pts";
  auto p = cache_->Prepare(sql, 0, 0);
  ASSERT_TRUE(p.has_value());
  auto leader = cache_->JoinFlight(*p);
  ASSERT_TRUE(leader.leader);
  auto follower = cache_->JoinFlight(*p);
  ASSERT_FALSE(follower.leader);
  cache_->AbortFlight(*p);
  EXPECT_EQ(cache_->WaitShared(follower, /*timeout_s=*/0), nullptr);
}

TEST_F(QueryCacheTest, WaitSharedCountsCoalesced) {
  const std::string sql = "SELECT id FROM pts";
  auto p = cache_->Prepare(sql, 0, 0);
  ASSERT_TRUE(p.has_value());
  auto leader = cache_->JoinFlight(*p);
  ASSERT_TRUE(leader.leader);
  auto follower = cache_->JoinFlight(*p);
  auto entry = cache_->FinishFlight(*p, Exec(sql), obs::QueryTrace{});
  ASSERT_NE(entry, nullptr);
  auto shared = cache_->WaitShared(follower, /*timeout_s=*/0);
  ASSERT_NE(shared, nullptr);
  EXPECT_EQ(shared.get(), entry.get());
  EXPECT_EQ(cache_->stats().coalesced, 1u);
}

TEST_F(QueryCacheTest, RecheckAsLeaderServesARacingAdmission) {
  const std::string sql = "SELECT id FROM pts";
  auto p = cache_->Prepare(sql, 0, 0);
  ASSERT_TRUE(p.has_value());
  // Leadership is not enough to execute: a session that missed before an
  // admission and joined after the flight closed must double-check.
  auto t1 = cache_->JoinFlight(*p);
  ASSERT_TRUE(t1.leader);
  EXPECT_EQ(cache_->RecheckAsLeader(*p), nullptr);  // genuinely cold: run
  auto entry = cache_->FinishFlight(*p, Exec(sql), obs::QueryTrace{});
  ASSERT_NE(entry, nullptr);

  auto t2 = cache_->JoinFlight(*p);
  ASSERT_TRUE(t2.leader);
  auto follower = cache_->JoinFlight(*p);
  ASSERT_FALSE(follower.leader);
  auto rechecked = cache_->RecheckAsLeader(*p);
  ASSERT_NE(rechecked, nullptr);
  EXPECT_EQ(rechecked.get(), entry.get());
  // The double-check also published to the new flight's followers.
  EXPECT_EQ(cache_->WaitShared(follower, /*timeout_s=*/0).get(), entry.get());
  // One execution, one admission; the rechecking leader counted as a hit.
  const CacheStats s = cache_->stats();
  EXPECT_EQ(s.admissions, 1u);
  EXPECT_EQ(s.hits, 1u);
  EXPECT_EQ(s.coalesced, 1u);
}

TEST_F(QueryCacheTest, DifferentRowCapsAreDifferentEntries) {
  const std::string sql = "SELECT id FROM pts";
  auto unlimited = cache_->Prepare(sql, 0, 0);
  auto capped = cache_->Prepare(sql, 1, 0);
  ASSERT_TRUE(unlimited.has_value());
  ASSERT_TRUE(capped.has_value());
  EXPECT_NE(unlimited->key, capped->key);
}

}  // namespace
}  // namespace jackpine::cache
