// Tests for the common substrate: Status/Result, Rng determinism, string
// helpers, stopwatch monotonicity.

#include <memory>
#include <set>
#include <string>
#include <thread>

#include <gtest/gtest.h>

#include "common/random.h"
#include "common/status.h"
#include "common/stopwatch.h"
#include "common/string_util.h"

namespace jackpine {
namespace {

TEST(StatusTest, DefaultIsOk) {
  Status s;
  EXPECT_TRUE(s.ok());
  EXPECT_EQ(s.ToString(), "OK");
}

TEST(StatusTest, ErrorCarriesCodeAndMessage) {
  Status s = Status::InvalidArgument("bad ring");
  EXPECT_FALSE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kInvalidArgument);
  EXPECT_EQ(s.message(), "bad ring");
  EXPECT_EQ(s.ToString(), "InvalidArgument: bad ring");
}

TEST(StatusTest, AllCodesHaveNames) {
  EXPECT_STREQ(StatusCodeName(StatusCode::kOk), "OK");
  EXPECT_STREQ(StatusCodeName(StatusCode::kParseError), "ParseError");
  EXPECT_STREQ(StatusCodeName(StatusCode::kNotFound), "NotFound");
  EXPECT_STREQ(StatusCodeName(StatusCode::kUnimplemented), "Unimplemented");
  EXPECT_STREQ(StatusCodeName(StatusCode::kDeadlineExceeded),
               "DeadlineExceeded");
  EXPECT_STREQ(StatusCodeName(StatusCode::kCancelled), "Cancelled");
  EXPECT_STREQ(StatusCodeName(StatusCode::kResourceExhausted),
               "ResourceExhausted");
  EXPECT_STREQ(StatusCodeName(StatusCode::kUnavailable), "Unavailable");
}

TEST(StatusTest, FaultCodeFactoriesAndTransience) {
  EXPECT_EQ(Status::DeadlineExceeded("d").code(),
            StatusCode::kDeadlineExceeded);
  EXPECT_EQ(Status::Cancelled("c").code(), StatusCode::kCancelled);
  EXPECT_EQ(Status::ResourceExhausted("r").code(),
            StatusCode::kResourceExhausted);
  EXPECT_EQ(Status::Unavailable("u").code(), StatusCode::kUnavailable);
  EXPECT_EQ(Status::Unavailable("u").ToString(), "Unavailable: u");
  // Only kUnavailable is retryable; deadline/budget failures repeat
  // deterministically, so the runner must not retry them.
  EXPECT_TRUE(IsTransient(StatusCode::kUnavailable));
  EXPECT_FALSE(IsTransient(StatusCode::kDeadlineExceeded));
  EXPECT_FALSE(IsTransient(StatusCode::kCancelled));
  EXPECT_FALSE(IsTransient(StatusCode::kResourceExhausted));
  EXPECT_FALSE(IsTransient(StatusCode::kOk));
  EXPECT_FALSE(IsTransient(StatusCode::kInternal));
}

TEST(StatusTest, RetryAfterHintDiscriminatesOverloadTaxonomy) {
  // Plain kResourceExhausted (a row/byte budget violation) is final.
  const Status budget = Status::ResourceExhausted("too many rows");
  EXPECT_EQ(budget.retry_after_ms(), 0u);
  EXPECT_FALSE(IsShed(budget));
  EXPECT_FALSE(IsRetryable(budget));

  // The same code plus a retry hint is a server shed: retryable, but not
  // "transient" in the transport sense (it must not trip the breaker).
  Status shed = Status::ResourceExhausted("server overloaded");
  shed.set_retry_after_ms(250);
  EXPECT_TRUE(IsShed(shed));
  EXPECT_TRUE(IsRetryable(shed));
  EXPECT_FALSE(IsBreakerFastFail(shed));
  EXPECT_NE(shed.ToString().find("retry after 250ms"), std::string::npos)
      << shed.ToString();

  // kUnavailable plus a hint is a local circuit-breaker fast-fail; without
  // the hint it is an ordinary transport failure.
  Status fast_fail = Status::Unavailable("circuit breaker open");
  fast_fail.set_retry_after_ms(100);
  EXPECT_TRUE(IsBreakerFastFail(fast_fail));
  EXPECT_FALSE(IsShed(fast_fail));
  EXPECT_TRUE(IsRetryable(fast_fail));
  EXPECT_FALSE(IsBreakerFastFail(Status::Unavailable("plain")));
  EXPECT_TRUE(IsRetryable(Status::Unavailable("plain")));

  // The hint survives Status copies, the way it rides inside Result<T>.
  const Status copy = shed;
  EXPECT_EQ(copy.retry_after_ms(), 250u);
}

Result<int> ParsePositive(int v) {
  if (v <= 0) return Status::OutOfRange("not positive");
  return v;
}

Result<int> Doubled(int v) {
  JACKPINE_ASSIGN_OR_RETURN(int x, ParsePositive(v));
  return 2 * x;
}

TEST(ResultTest, ValuePath) {
  Result<int> r = Doubled(21);
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(*r, 42);
}

TEST(ResultTest, ErrorPropagates) {
  Result<int> r = Doubled(-1);
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kOutOfRange);
}

TEST(ResultTest, ValueOr) {
  EXPECT_EQ(ParsePositive(-5).value_or(7), 7);
  EXPECT_EQ(ParsePositive(5).value_or(7), 5);
}

TEST(ResultTest, ValueOrRvalueMovesOutOfResult) {
  // The && overload must move the contained value out instead of copying.
  Result<std::unique_ptr<int>> err =
      Status::NotFound("gone");  // move-only payloads compile
  std::unique_ptr<int> fallback = std::make_unique<int>(9);
  std::unique_ptr<int> got = std::move(err).value_or(std::move(fallback));
  ASSERT_NE(got, nullptr);
  EXPECT_EQ(*got, 9);

  Result<std::unique_ptr<int>> okr = std::make_unique<int>(4);
  std::unique_ptr<int> v = std::move(okr).value_or(nullptr);
  ASSERT_NE(v, nullptr);
  EXPECT_EQ(*v, 4);

  // Large payloads: the rvalue path leaves the source empty (moved-from),
  // proving no copy was taken.
  Result<std::string> s = std::string(1000, 'x');
  const std::string taken = std::move(s).value_or("fallback");
  EXPECT_EQ(taken.size(), 1000u);
}

Status FailsWhenNegative(int v) {
  if (v < 0) return Status::Unavailable("transient dip");
  return Status::Ok();
}

Status ChainTwoChecks(int a, int b, int* reached) {
  JACKPINE_RETURN_IF_ERROR(FailsWhenNegative(a));
  *reached = 1;
  JACKPINE_RETURN_IF_ERROR(FailsWhenNegative(b));
  *reached = 2;
  return Status::Ok();
}

TEST(ResultTest, ReturnIfErrorPropagatesFirstFailure) {
  int reached = 0;
  EXPECT_TRUE(ChainTwoChecks(1, 1, &reached).ok());
  EXPECT_EQ(reached, 2);

  reached = 0;
  Status first = ChainTwoChecks(-1, 1, &reached);
  EXPECT_EQ(first.code(), StatusCode::kUnavailable);
  EXPECT_EQ(reached, 0);  // short-circuits before the first checkpoint

  reached = 0;
  Status second = ChainTwoChecks(1, -1, &reached);
  EXPECT_EQ(second.code(), StatusCode::kUnavailable);
  EXPECT_EQ(second.message(), "transient dip");
  EXPECT_EQ(reached, 1);  // stopped between the checkpoints
}

Result<int> HalveTransient(int v) {
  if (v % 2 != 0) return Status::Unavailable("odd");
  return v / 2;
}

Result<int> QuarterViaAssignOrReturn(int v) {
  JACKPINE_ASSIGN_OR_RETURN(int half, HalveTransient(v));
  JACKPINE_ASSIGN_OR_RETURN(int quarter, HalveTransient(half));
  return quarter;
}

TEST(ResultTest, AssignOrReturnPropagatesNewCodes) {
  Result<int> ok = QuarterViaAssignOrReturn(8);
  ASSERT_TRUE(ok.ok());
  EXPECT_EQ(*ok, 2);
  Result<int> bad = QuarterViaAssignOrReturn(6);  // second halving hits 3
  ASSERT_FALSE(bad.ok());
  EXPECT_EQ(bad.status().code(), StatusCode::kUnavailable);
}

TEST(RngTest, DeterministicAcrossInstances) {
  Rng a(123);
  Rng b(123);
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(a.NextUint64(), b.NextUint64());
  }
}

TEST(RngTest, DifferentSeedsDiffer) {
  Rng a(1);
  Rng b(2);
  int same = 0;
  for (int i = 0; i < 64; ++i) {
    if (a.NextUint64() == b.NextUint64()) ++same;
  }
  EXPECT_LT(same, 2);
}

TEST(RngTest, BoundedStaysInBounds) {
  Rng rng(9);
  for (int i = 0; i < 1000; ++i) {
    EXPECT_LT(rng.NextBounded(17), 17u);
  }
}

TEST(RngTest, IntRangeInclusive) {
  Rng rng(9);
  std::set<int64_t> seen;
  for (int i = 0; i < 2000; ++i) {
    const int64_t v = rng.NextInt(-3, 3);
    EXPECT_GE(v, -3);
    EXPECT_LE(v, 3);
    seen.insert(v);
  }
  EXPECT_EQ(seen.size(), 7u);  // all 7 values should appear
}

TEST(RngTest, DoubleInUnitInterval) {
  Rng rng(77);
  for (int i = 0; i < 1000; ++i) {
    const double d = rng.NextDouble();
    EXPECT_GE(d, 0.0);
    EXPECT_LT(d, 1.0);
  }
}

TEST(RngTest, GaussianMoments) {
  Rng rng(5);
  double sum = 0, sum2 = 0;
  const int n = 20000;
  for (int i = 0; i < n; ++i) {
    const double g = rng.NextGaussian();
    sum += g;
    sum2 += g * g;
  }
  EXPECT_NEAR(sum / n, 0.0, 0.05);
  EXPECT_NEAR(sum2 / n, 1.0, 0.05);
}

TEST(RngTest, WeightedRespectsWeights) {
  Rng rng(11);
  int counts[3] = {0, 0, 0};
  for (int i = 0; i < 10000; ++i) {
    counts[rng.NextWeighted({1.0, 0.0, 3.0})]++;
  }
  EXPECT_EQ(counts[1], 0);
  EXPECT_GT(counts[2], counts[0] * 2);
}

TEST(RngTest, ForkIsIndependentButDeterministic) {
  Rng a(42);
  Rng b(42);
  Rng fa = a.Fork();
  Rng fb = b.Fork();
  EXPECT_EQ(fa.NextUint64(), fb.NextUint64());
}

TEST(StringUtilTest, CaseConversion) {
  EXPECT_EQ(ToLowerAscii("Hello WORLD"), "hello world");
  EXPECT_EQ(ToUpperAscii("polygon (1 2)"), "POLYGON (1 2)");
}

TEST(StringUtilTest, EqualsIgnoreCase) {
  EXPECT_TRUE(EqualsIgnoreCase("ST_Area", "st_area"));
  EXPECT_FALSE(EqualsIgnoreCase("ST_Area", "st_areas"));
  EXPECT_FALSE(EqualsIgnoreCase("abc", "abd"));
}

TEST(StringUtilTest, Strip) {
  EXPECT_EQ(StripAscii("  x y \t\n"), "x y");
  EXPECT_EQ(StripAscii(""), "");
  EXPECT_EQ(StripAscii("   "), "");
}

TEST(StringUtilTest, SplitAndJoin) {
  const auto parts = Split("a,b,,c", ',');
  ASSERT_EQ(parts.size(), 4u);
  EXPECT_EQ(parts[2], "");
  EXPECT_EQ(Join(parts, "-"), "a-b--c");
}

TEST(StringUtilTest, StrFormat) {
  EXPECT_EQ(StrFormat("%d/%s", 3, "x"), "3/x");
  EXPECT_EQ(StrFormat("%.2f", 1.005), "1.00");
}

TEST(StringUtilTest, StartsEndsWith) {
  EXPECT_TRUE(StartsWith("jackpine:pine-rtree", "jackpine:"));
  EXPECT_FALSE(StartsWith("jack", "jackpine"));
  EXPECT_TRUE(EndsWith("query.sql", ".sql"));
  EXPECT_FALSE(EndsWith("sql", ".sql"));
}

TEST(StopwatchTest, Monotonic) {
  Stopwatch w;
  const double t0 = w.ElapsedSeconds();
  std::this_thread::sleep_for(std::chrono::milliseconds(2));
  const double t1 = w.ElapsedSeconds();
  EXPECT_GE(t1, t0);
  EXPECT_GT(w.ElapsedNanos(), 0);
  w.Restart();
  EXPECT_LT(w.ElapsedSeconds(), t1);
}

}  // namespace
}  // namespace jackpine
