// End-to-end high availability against real pinedb processes: fork/exec a
// replicated cluster (2 shards x 2 replicas) behind a jackpine:shard(...)
// URL, SIGKILL one replica while the topology suite is running, and verify
// the suite completes with zero client-visible failures and bit-identical
// folded checksums to the healthy baseline — the PR's acceptance bar,
// exercised through the same binary and wire path an operator uses.
//
// The pinedb binary path is injected by CMake as JACKPINE_PINEDB_BINARY.

#include <csignal>
#include <cstdio>
#include <cstdlib>
#include <chrono>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include <sys/wait.h>
#include <unistd.h>

#include <gtest/gtest.h>

#include "client/client.h"
#include "core/loader.h"
#include "core/micro_suite.h"
#include "core/runner.h"
#include "net/remote_driver.h"
#include "obs/metrics.h"
#include "shard/shard_router.h"
#include "tigergen/tigergen.h"

namespace jackpine {
namespace {

struct ServerProc {
  pid_t pid = -1;
  int port = 0;
  int out_fd = -1;  // server stdout; keep open so its writes never SIGPIPE

  ServerProc() = default;
  // Move-only: these live in a vector, and a copy's destructor would kill
  // the very process its twin still manages.
  ServerProc(ServerProc&& other) noexcept
      : pid(other.pid), port(other.port), out_fd(other.out_fd) {
    other.pid = -1;
    other.out_fd = -1;
  }
  ServerProc& operator=(ServerProc&& other) noexcept {
    if (this != &other) {
      Kill();
      pid = other.pid;
      port = other.port;
      out_fd = other.out_fd;
      other.pid = -1;
      other.out_fd = -1;
    }
    return *this;
  }
  ServerProc(const ServerProc&) = delete;
  ServerProc& operator=(const ServerProc&) = delete;

  ~ServerProc() { Kill(); }

  // SIGKILL + reap. Safe to call twice; the destructor reuses it.
  void Kill() {
    if (out_fd >= 0) ::close(out_fd);
    out_fd = -1;
    if (pid > 0) {
      ::kill(pid, SIGKILL);
      int status = 0;
      ::waitpid(pid, &status, 0);
    }
    pid = -1;
  }
};

// Forks `pinedb serve --port 0` (memory-only: HA is about the cluster, not
// durability) and blocks until the child prints its LISTENING line.
ServerProc SpawnServe() {
  int pipe_fds[2];
  EXPECT_EQ(::pipe(pipe_fds), 0);
  const pid_t pid = ::fork();
  if (pid == 0) {
    ::dup2(pipe_fds[1], STDOUT_FILENO);
    ::close(pipe_fds[0]);
    ::close(pipe_fds[1]);
    ::execl(JACKPINE_PINEDB_BINARY, JACKPINE_PINEDB_BINARY, "serve", "--port",
            "0", "--sut", "pine-rtree", nullptr);
    std::perror("execl pinedb");
    std::_Exit(127);
  }
  ::close(pipe_fds[1]);

  ServerProc proc;
  proc.pid = pid;
  proc.out_fd = pipe_fds[0];
  std::string line;
  char c = 0;
  while (::read(proc.out_fd, &c, 1) == 1) {
    if (c != '\n') {
      line.push_back(c);
      continue;
    }
    if (line.rfind("LISTENING ", 0) == 0) {
      proc.port = std::atoi(line.c_str() + 10);
      break;
    }
    line.clear();
  }
  EXPECT_GT(proc.port, 0) << "server never printed LISTENING";
  return proc;
}

uint64_t FoldChecksums(const std::vector<core::RunResult>& runs) {
  uint64_t h = 1469598103934665603ull;  // FNV offset basis
  for (const core::RunResult& r : runs) {
    h = (h ^ r.checksum) * 1099511628211ull;
  }
  return h;
}

class ShardHaE2eTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    net::RegisterRemoteDriver();
    shard::RegisterShardDriver();
  }
};

TEST_F(ShardHaE2eTest, SigkillMidSuiteKeepsResultsBitIdentical) {
  // 2 shards x 2 replicas, four real server processes.
  std::vector<ServerProc> servers;
  for (int i = 0; i < 4; ++i) servers.push_back(SpawnServe());
  auto ep = [&](int i) {
    return "127.0.0.1:" + std::to_string(servers[i].port);
  };
  // health_ms=0: no health steering, so post-kill reads must discover the
  // death the hard way — via a failed sub-call that fails over — which is
  // exactly the path this test exists to pin down.
  const std::string url = "jackpine:shard(" + ep(0) + "|" + ep(1) + "," +
                          ep(2) + "|" + ep(3) + ";health_ms=0)/pine-rtree";
  auto conn = client::Connection::Open(url);
  ASSERT_TRUE(conn.ok()) << conn.status().ToString();

  tigergen::TigerGenOptions gen;
  gen.scale = 0.05;
  gen.seed = 7;
  const tigergen::TigerDataset dataset = tigergen::GenerateTiger(gen);
  auto load = core::LoadDataset(dataset, &*conn);
  ASSERT_TRUE(load.ok()) << load.status().ToString();

  core::RunConfig config;
  config.warmup = 0;
  config.repetitions = 1;
  // A modest client-side retry allowance: the sub-call that is mid-flight
  // on the killed replica at SIGKILL time surfaces transiently; the router
  // fails the scatter over, and the runner may re-issue the query once.
  config.retry.max_attempts = 3;
  config.retry.backoff_base_s = 1e-3;
  const auto suite = core::BuildTopologicalSuite(dataset);

  // Healthy baseline.
  const auto healthy = core::RunSuite(&*conn, suite, config);
  for (const core::RunResult& r : healthy) {
    ASSERT_TRUE(r.ok) << r.query_id << ": " << r.error;
  }
  const uint64_t healthy_checksum = FoldChecksums(healthy);

  // SIGKILL shard 0's primary replica mid-suite: the killer fires while
  // the degraded run is in flight, so some queries run healthy, some
  // against the crippled cluster, and at least one crosses the death.
  const uint64_t failovers_before =
      obs::GlobalRegistry().GetCounter("shard.failover")->value();
  std::thread killer([&servers] {
    std::this_thread::sleep_for(std::chrono::milliseconds(30));
    servers[0].Kill();
  });
  const auto degraded = core::RunSuite(&*conn, suite, config);
  killer.join();

  // The acceptance bar: every query completed (zero client-visible
  // failures after retry) and the folded checksums are bit-identical.
  for (const core::RunResult& r : degraded) {
    EXPECT_TRUE(r.ok) << r.query_id << ": " << r.error;
  }
  EXPECT_EQ(FoldChecksums(degraded), healthy_checksum);

  // The survivors still answer a fresh, post-kill full-fanout scatter
  // correctly — this one provably runs against the crippled cluster even
  // if the suite outran the killer thread.
  client::Statement stmt = conn->CreateStatement();
  auto rs = stmt.ExecuteQuery("SELECT COUNT(*) FROM arealm");
  ASSERT_TRUE(rs.ok()) << rs.status().ToString();
  // The cluster really was crippled: reads against shard 0 failed over.
  EXPECT_GT(obs::GlobalRegistry().GetCounter("shard.failover")->value(),
            failovers_before);
}

}  // namespace
}  // namespace jackpine
