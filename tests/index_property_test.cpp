// Property sweep across all index implementations: every structure must
// return exactly the brute-force answer for window queries, and k-NN results
// must be distance-sound. This is the invariant that makes the SUTs
// comparable — they may differ in speed, never in (filtered) answers.

#include <algorithm>

#include <gtest/gtest.h>

#include "common/random.h"
#include "index/spatial_index.h"

namespace jackpine::index {
namespace {

using geom::Coord;
using geom::Envelope;

struct Workload {
  IndexKind kind;
  uint64_t seed;
  size_t n;
};

class IndexEquivalence : public ::testing::TestWithParam<Workload> {};

TEST_P(IndexEquivalence, WindowQueriesMatchBruteForce) {
  const Workload w = GetParam();
  jackpine::Rng rng(w.seed);
  std::vector<IndexEntry> entries;
  for (size_t i = 0; i < w.n; ++i) {
    // Mix of clustered and uniform placement, points and boxes.
    double x, y;
    if (rng.NextBool(0.5)) {
      x = 50 + rng.NextGaussian() * 5;
      y = 50 + rng.NextGaussian() * 5;
    } else {
      x = rng.NextDouble(0, 100);
      y = rng.NextDouble(0, 100);
    }
    const double sz = rng.NextBool(0.3) ? 0.0 : rng.NextDouble(0, 4);
    entries.push_back(
        {Envelope(x, y, x + sz, y + sz), static_cast<int64_t>(i)});
  }
  auto index = MakeSpatialIndex(w.kind);
  // Half bulk-loaded, half inserted, to exercise both paths.
  std::vector<IndexEntry> first_half(entries.begin(),
                                     entries.begin() + entries.size() / 2);
  index->BulkLoad(first_half);
  for (size_t i = entries.size() / 2; i < entries.size(); ++i) {
    index->Insert(entries[i].box, entries[i].id);
  }
  ASSERT_EQ(index->size(), entries.size());

  for (int q = 0; q < 30; ++q) {
    const double x = rng.NextDouble(-5, 100);
    const double y = rng.NextDouble(-5, 100);
    const Envelope window(x, y, x + rng.NextDouble(0, 40),
                          y + rng.NextDouble(0, 40));
    std::vector<int64_t> got;
    index->Query(window, &got);
    std::vector<int64_t> expected;
    for (const IndexEntry& e : entries) {
      if (e.box.Intersects(window)) expected.push_back(e.id);
    }
    std::sort(got.begin(), got.end());
    std::sort(expected.begin(), expected.end());
    EXPECT_EQ(got, expected) << IndexKindName(w.kind) << " window "
                             << window.ToString();
  }
}

TEST_P(IndexEquivalence, NearestIsDistanceSound) {
  const Workload w = GetParam();
  jackpine::Rng rng(w.seed ^ 0xabcd);
  std::vector<IndexEntry> entries;
  for (size_t i = 0; i < w.n; ++i) {
    const double x = rng.NextDouble(0, 100);
    const double y = rng.NextDouble(0, 100);
    entries.push_back({Envelope(x, y, x, y), static_cast<int64_t>(i)});
  }
  auto index = MakeSpatialIndex(w.kind);
  index->BulkLoad(entries);

  for (int q = 0; q < 10; ++q) {
    const Coord p{rng.NextDouble(0, 100), rng.NextDouble(0, 100)};
    std::vector<int64_t> got;
    index->Nearest(p, 5, &got);
    ASSERT_EQ(got.size(), 5u);
    // The k-th reported distance must equal the true k-th smallest.
    std::vector<double> all;
    for (const IndexEntry& e : entries) all.push_back(e.box.DistanceTo(p));
    std::sort(all.begin(), all.end());
    for (size_t k = 0; k < got.size(); ++k) {
      const auto& e = entries[static_cast<size_t>(got[k])];
      EXPECT_NEAR(e.box.DistanceTo(p), all[k], 1e-12)
          << IndexKindName(w.kind);
    }
  }
}

INSTANTIATE_TEST_SUITE_P(
    AllKinds, IndexEquivalence,
    ::testing::Values(Workload{IndexKind::kRtree, 1, 600},
                      Workload{IndexKind::kRtree, 2, 60},
                      Workload{IndexKind::kGrid, 1, 600},
                      Workload{IndexKind::kGrid, 2, 60},
                      Workload{IndexKind::kNone, 1, 600},
                      Workload{IndexKind::kNone, 2, 60}));

TEST(IndexFactoryTest, NamesAndKinds) {
  EXPECT_EQ(MakeSpatialIndex(IndexKind::kRtree)->Name(), "rtree");
  EXPECT_EQ(MakeSpatialIndex(IndexKind::kGrid)->Name(), "grid");
  EXPECT_EQ(MakeSpatialIndex(IndexKind::kNone)->Name(), "scan");
  EXPECT_STREQ(IndexKindName(IndexKind::kRtree), "rtree");
  EXPECT_STREQ(IndexKindName(IndexKind::kGrid), "grid");
  EXPECT_STREQ(IndexKindName(IndexKind::kNone), "none");
}

}  // namespace
}  // namespace jackpine::index
