// Tests for the geometry object model: factories, validation, inspection.

#include <gtest/gtest.h>

#include "geom/geometry.h"

namespace jackpine::geom {
namespace {

Geometry Line(std::vector<Coord> pts) {
  auto r = Geometry::MakeLineString(std::move(pts));
  EXPECT_TRUE(r.ok()) << r.status().ToString();
  return std::move(r).value();
}

Geometry Poly(Ring shell, std::vector<Ring> holes = {}) {
  auto r = Geometry::MakePolygon(std::move(shell), std::move(holes));
  EXPECT_TRUE(r.ok()) << r.status().ToString();
  return std::move(r).value();
}

TEST(GeometryTest, DefaultIsEmptyCollection) {
  Geometry g;
  EXPECT_EQ(g.type(), GeometryType::kGeometryCollection);
  EXPECT_TRUE(g.IsEmpty());
  EXPECT_EQ(g.Dimension(), -1);
  EXPECT_TRUE(g.envelope().IsNull());
}

TEST(GeometryTest, PointBasics) {
  Geometry p = Geometry::MakePoint(3, 4);
  EXPECT_EQ(p.type(), GeometryType::kPoint);
  EXPECT_FALSE(p.IsEmpty());
  EXPECT_EQ(p.Dimension(), 0);
  EXPECT_EQ(p.NumPoints(), 1u);
  EXPECT_EQ(p.AsPoint(), (Coord{3, 4}));
  EXPECT_EQ(p.envelope(), Envelope(3, 4, 3, 4));
}

TEST(GeometryTest, EmptyTypedGeometries) {
  for (auto type : {GeometryType::kPoint, GeometryType::kLineString,
                    GeometryType::kPolygon, GeometryType::kMultiPolygon}) {
    Geometry g = Geometry::MakeEmpty(type);
    EXPECT_EQ(g.type(), type);
    EXPECT_TRUE(g.IsEmpty());
    EXPECT_EQ(g.Dimension(), -1);
    EXPECT_EQ(g.NumPoints(), 0u);
  }
}

TEST(GeometryTest, LineStringRejectsDegenerate) {
  EXPECT_FALSE(Geometry::MakeLineString({}).ok());
  EXPECT_FALSE(Geometry::MakeLineString({{1, 1}}).ok());
  EXPECT_FALSE(
      Geometry::MakeLineString({{0, 0}, {std::nan(""), 1}}).ok());
}

TEST(GeometryTest, LineStringBasics) {
  Geometry l = Line({{0, 0}, {3, 0}, {3, 4}});
  EXPECT_EQ(l.Dimension(), 1);
  EXPECT_EQ(l.NumPoints(), 3u);
  EXPECT_EQ(l.envelope(), Envelope(0, 0, 3, 4));
}

TEST(GeometryTest, PolygonAutoClosesAndOrients) {
  // Unclosed clockwise shell: factory must close it and flip to CCW.
  Geometry p = Poly({{0, 0}, {0, 2}, {2, 2}, {2, 0}});
  const PolygonData& data = p.AsPolygon();
  EXPECT_EQ(data.shell.size(), 5u);
  EXPECT_EQ(data.shell.front(), data.shell.back());
  EXPECT_TRUE(IsCcw(data.shell));
}

TEST(GeometryTest, PolygonHoleOrientedClockwise) {
  Geometry p = Poly({{0, 0}, {10, 0}, {10, 10}, {0, 10}},
                    {{{2, 2}, {4, 2}, {4, 4}, {2, 4}}});
  ASSERT_EQ(p.AsPolygon().holes.size(), 1u);
  EXPECT_FALSE(IsCcw(p.AsPolygon().holes[0]));
}

TEST(GeometryTest, PolygonRejectsTinyRing) {
  EXPECT_FALSE(Geometry::MakePolygon({{0, 0}, {1, 1}}).ok());
}

TEST(GeometryTest, RectangleFactory) {
  Geometry r = Geometry::MakeRectangle(Envelope(1, 2, 3, 5));
  EXPECT_EQ(r.type(), GeometryType::kPolygon);
  EXPECT_EQ(r.envelope(), Envelope(1, 2, 3, 5));
  EXPECT_TRUE(
      Geometry::MakeRectangle(Envelope()).IsEmpty());
}

TEST(GeometryTest, MultiFactoriesEnforceElementTypes) {
  auto bad = Geometry::MakeMultiPoint({Line({{0, 0}, {1, 1}})});
  EXPECT_FALSE(bad.ok());
  auto good = Geometry::MakeMultiPoint(
      {Geometry::MakePoint(0, 0), Geometry::MakePoint(1, 1)});
  ASSERT_TRUE(good.ok());
  EXPECT_EQ(good->type(), GeometryType::kMultiPoint);
  EXPECT_EQ(good->NumPoints(), 2u);
  EXPECT_EQ(good->Dimension(), 0);
}

TEST(GeometryTest, CollectionDimensionIsMax) {
  Geometry c = Geometry::MakeCollection(
      {Geometry::MakePoint(0, 0), Line({{0, 0}, {1, 1}}),
       Poly({{0, 0}, {1, 0}, {1, 1}, {0, 1}})});
  EXPECT_EQ(c.Dimension(), 2);
  EXPECT_EQ(c.Parts().size(), 3u);
}

TEST(GeometryTest, LeavesFlattensNested) {
  Geometry inner = Geometry::MakeCollection(
      {Geometry::MakePoint(1, 1), Geometry::MakeEmpty(GeometryType::kPoint)});
  Geometry outer =
      Geometry::MakeCollection({inner, Line({{0, 0}, {2, 2}})});
  const auto leaves = outer.Leaves();
  ASSERT_EQ(leaves.size(), 2u);  // empty point dropped
  EXPECT_EQ(leaves[0].type(), GeometryType::kPoint);
  EXPECT_EQ(leaves[1].type(), GeometryType::kLineString);
}

TEST(GeometryTest, ExactlyEquals) {
  Geometry a = Poly({{0, 0}, {1, 0}, {1, 1}, {0, 1}});
  Geometry b = Poly({{0, 0}, {1, 0}, {1, 1}, {0, 1}});
  Geometry c = Poly({{0, 0}, {2, 0}, {2, 2}, {0, 2}});
  EXPECT_TRUE(a.ExactlyEquals(b));
  EXPECT_FALSE(a.ExactlyEquals(c));
  EXPECT_FALSE(a.ExactlyEquals(Geometry::MakePoint(0, 0)));
  EXPECT_TRUE(Geometry().ExactlyEquals(Geometry()));
}

TEST(GeometryTest, HashDistinguishesAndAgrees) {
  Geometry a = Line({{0, 0}, {1, 1}});
  Geometry b = Line({{0, 0}, {1, 1}});
  Geometry c = Line({{0, 0}, {1, 2}});
  EXPECT_EQ(a.Hash(), b.Hash());
  EXPECT_NE(a.Hash(), c.Hash());
  EXPECT_NE(a.Hash(), Geometry::MakePoint(0, 0).Hash());
}

TEST(GeometryTest, ValidateAcceptsSimplePolygon) {
  EXPECT_TRUE(Poly({{0, 0}, {4, 0}, {4, 4}, {0, 4}}).Validate().ok());
}

TEST(GeometryTest, ValidateRejectsBowtie) {
  // Self-crossing "bowtie" ring.
  auto bowtie = Geometry::MakePolygon({{0, 0}, {2, 2}, {2, 0}, {0, 2}});
  ASSERT_TRUE(bowtie.ok());  // construction does not check crossings
  EXPECT_FALSE(bowtie->Validate().ok());
}

TEST(GeometryTest, ValidateRejectsEscapedHole) {
  auto p = Geometry::MakePolygon({{0, 0}, {4, 0}, {4, 4}, {0, 4}},
                                 {{{3, 3}, {6, 3}, {6, 6}, {3, 6}}});
  ASSERT_TRUE(p.ok());
  EXPECT_FALSE(p->Validate().ok());
}

TEST(GeometryTest, SignedRingArea) {
  Ring ccw = {{0, 0}, {4, 0}, {4, 4}, {0, 4}, {0, 0}};
  EXPECT_DOUBLE_EQ(SignedRingArea(ccw), 16.0);
  Ring cw(ccw.rbegin(), ccw.rend());
  EXPECT_DOUBLE_EQ(SignedRingArea(cw), -16.0);
}

TEST(GeometryTest, CopyIsCheapAndShared) {
  Geometry a = Poly({{0, 0}, {1, 0}, {1, 1}, {0, 1}});
  Geometry b = a;  // shared payload
  EXPECT_TRUE(a.ExactlyEquals(b));
  EXPECT_EQ(&a.AsPolygon(), &b.AsPolygon());
}

}  // namespace
}  // namespace jackpine::geom
