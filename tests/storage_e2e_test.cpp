// End-to-end crash recovery against a real pinedb process: fork/exec the
// server with --data-dir, drive DML over jackpine:tcp://, kill it with
// SIGKILL mid-stream, restart on the same directory, and verify the acked
// state came back. This is the whole durability story exercised through the
// same binary and wire path an operator uses — no test seams.
//
// The pinedb binary path is injected by CMake as JACKPINE_PINEDB_BINARY.

#include <csignal>
#include <cstdio>
#include <cstring>
#include <atomic>
#include <filesystem>
#include <string>
#include <thread>
#include <vector>

#include <fcntl.h>
#include <sys/wait.h>
#include <unistd.h>

#include <gtest/gtest.h>

#include "client/client.h"
#include "net/remote_driver.h"

namespace jackpine {
namespace {

namespace fs = std::filesystem;

struct ServerProc {
  pid_t pid = -1;
  int port = 0;
  int out_fd = -1;  // server stdout; keep open so its writes never SIGPIPE

  ~ServerProc() {
    if (out_fd >= 0) ::close(out_fd);
    if (pid > 0) {
      ::kill(pid, SIGKILL);
      int status = 0;
      ::waitpid(pid, &status, 0);
    }
  }

  // Drains remaining stdout, reaps the process, returns its exit status
  // (-1 on signal death). Call at most once; disarms the destructor kill.
  int Wait() {
    char buf[4096];
    while (::read(out_fd, buf, sizeof(buf)) > 0) {
    }
    ::close(out_fd);
    out_fd = -1;
    int status = 0;
    ::waitpid(pid, &status, 0);
    pid = -1;
    return WIFEXITED(status) ? WEXITSTATUS(status) : -1;
  }
};

// Forks `pinedb serve --port 0 --data-dir <dir> ...` and blocks until the
// child prints its LISTENING line.
ServerProc SpawnServe(const std::string& data_dir,
                      const std::string& group_commit_ms = "0") {
  int pipe_fds[2];
  EXPECT_EQ(::pipe(pipe_fds), 0);
  const pid_t pid = ::fork();
  if (pid == 0) {
    ::dup2(pipe_fds[1], STDOUT_FILENO);
    ::close(pipe_fds[0]);
    ::close(pipe_fds[1]);
    ::execl(JACKPINE_PINEDB_BINARY, JACKPINE_PINEDB_BINARY, "serve", "--port",
            "0", "--sut", "pine-rtree", "--data-dir", data_dir.c_str(),
            "--group-commit-ms", group_commit_ms.c_str(), nullptr);
    std::perror("execl pinedb");
    std::_Exit(127);
  }
  ::close(pipe_fds[1]);

  ServerProc proc;
  proc.pid = pid;
  proc.out_fd = pipe_fds[0];
  // Read stdout a byte at a time until the LISTENING line; the recovery
  // table precedes it, so this also waits out recovery.
  std::string line;
  char c = 0;
  while (::read(proc.out_fd, &c, 1) == 1) {
    if (c != '\n') {
      line.push_back(c);
      continue;
    }
    if (line.rfind("LISTENING ", 0) == 0) {
      proc.port = std::atoi(line.c_str() + 10);
      break;
    }
    line.clear();
  }
  EXPECT_GT(proc.port, 0) << "server never printed LISTENING";
  return proc;
}

std::string Url(const ServerProc& proc) {
  return "jackpine:tcp://127.0.0.1:" + std::to_string(proc.port) +
         "/pine-rtree";
}

class StorageE2eTest : public ::testing::Test {
 protected:
  void SetUp() override {
    net::RegisterRemoteDriver();
    dir_ = (fs::temp_directory_path() /
            ("jackpine_e2e_" +
             std::to_string(::testing::UnitTest::GetInstance()
                                ->random_seed()) +
             "_" + ::testing::UnitTest::GetInstance()
                       ->current_test_info()
                       ->name()))
               .string();
    fs::remove_all(dir_);
  }
  void TearDown() override { fs::remove_all(dir_); }

  std::string dir_;
};

TEST_F(StorageE2eTest, SigkillMidAppendRecoversEveryAckedInsert) {
  int acked = 0;
  {
    ServerProc server = SpawnServe(dir_);
    auto conn = client::Connection::Open(Url(server));
    ASSERT_TRUE(conn.ok()) << conn.status().ToString();
    client::Statement stmt = conn->CreateStatement();
    ASSERT_TRUE(
        stmt.ExecuteUpdate("CREATE TABLE pts (id BIGINT, g GEOMETRY)").ok());
    ++acked;  // DDL is WAL-logged too

    // Insert from a worker while the main thread SIGKILLs the server
    // mid-stream: a genuinely in-flight statement at kill time.
    std::atomic<int> inserted{0};
    std::atomic<bool> stopped{false};
    std::thread writer([&] {
      client::Statement s = conn->CreateStatement();
      for (int i = 0; i < 100000 && !stopped.load(); ++i) {
        auto r = s.ExecuteUpdate("INSERT INTO pts VALUES (" +
                                 std::to_string(i) +
                                 ", ST_GeomFromText('POINT(1 2)'))");
        if (!r.ok()) break;  // the kill landed
        inserted.fetch_add(1);
      }
    });
    // Let a few acks through, then kill -9.
    while (inserted.load() < 20) {
      std::this_thread::sleep_for(std::chrono::milliseconds(1));
    }
    ASSERT_EQ(::kill(server.pid, SIGKILL), 0);
    stopped.store(true);
    writer.join();
    acked += inserted.load();
    EXPECT_EQ(server.Wait(), -1);  // died by signal, never exited
  }

  // Restart on the same directory: every acked insert must be back, plus at
  // most one in-flight statement that was logged but whose ack never
  // reached the client (durable-but-unacked is allowed; lost-but-acked is
  // the bug this test exists to catch).
  ServerProc server = SpawnServe(dir_);
  auto conn = client::Connection::Open(Url(server));
  ASSERT_TRUE(conn.ok()) << conn.status().ToString();
  client::Statement stmt = conn->CreateStatement();
  auto rs = stmt.ExecuteQuery("SELECT id FROM pts");
  ASSERT_TRUE(rs.ok()) << rs.status().ToString();
  const int inserts_acked = acked - 1;  // minus the CREATE TABLE
  EXPECT_GE(static_cast<int>(rs->RowCount()), inserts_acked);
  EXPECT_LE(static_cast<int>(rs->RowCount()), inserts_acked + 1);
  // Inserts carried ids 0..k in order, so recovery must yield an exact
  // prefix — holes or reordering mean replay corrupted the table.
  auto check = stmt.ExecuteQuery("SELECT id FROM pts WHERE id >= " +
                                 std::to_string(rs->RowCount()));
  ASSERT_TRUE(check.ok());
  EXPECT_EQ(check->RowCount(), 0u)
      << "recovered ids are not the contiguous acked prefix";
  ASSERT_EQ(::kill(server.pid, SIGTERM), 0);
  EXPECT_EQ(server.Wait(), 0);
}

TEST_F(StorageE2eTest, SigtermDrainsAndWritesFinalCheckpoint) {
  uint64_t checksum = 0;
  {
    ServerProc server = SpawnServe(dir_);
    auto conn = client::Connection::Open(Url(server));
    ASSERT_TRUE(conn.ok()) << conn.status().ToString();
    client::Statement stmt = conn->CreateStatement();
    ASSERT_TRUE(
        stmt.ExecuteUpdate("CREATE TABLE pts (id BIGINT, g GEOMETRY)").ok());
    for (int i = 0; i < 10; ++i) {
      ASSERT_TRUE(stmt.ExecuteUpdate("INSERT INTO pts VALUES (" +
                                     std::to_string(i) +
                                     ", ST_GeomFromText('POINT(" +
                                     std::to_string(i) + " 1)'))")
                      .ok());
    }
    auto rs = stmt.ExecuteQuery("SELECT id, ST_AsText(g) FROM pts");
    ASSERT_TRUE(rs.ok());
    checksum = rs->Checksum();

    ASSERT_EQ(::kill(server.pid, SIGTERM), 0);
    EXPECT_EQ(server.Wait(), 0) << "graceful shutdown must exit 0";
  }
  // The final checkpoint folded everything into the snapshot and reset the
  // WAL to (nearly) empty.
  EXPECT_TRUE(fs::exists(fs::path(dir_) / "snapshot.pine"));
  EXPECT_LT(fs::file_size(fs::path(dir_) / "wal.pinelog"), 64u);

  ServerProc server = SpawnServe(dir_);
  auto conn = client::Connection::Open(Url(server));
  ASSERT_TRUE(conn.ok()) << conn.status().ToString();
  client::Statement stmt = conn->CreateStatement();
  auto rs = stmt.ExecuteQuery("SELECT id, ST_AsText(g) FROM pts");
  ASSERT_TRUE(rs.ok()) << rs.status().ToString();
  EXPECT_EQ(rs->RowCount(), 10u);
  EXPECT_EQ(rs->Checksum(), checksum);
  ASSERT_EQ(::kill(server.pid, SIGTERM), 0);
  EXPECT_EQ(server.Wait(), 0);
}

}  // namespace
}  // namespace jackpine
