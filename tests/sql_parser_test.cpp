// Tests for the SQL lexer and parser.

#include <gtest/gtest.h>

#include "engine/sql_lexer.h"
#include "engine/sql_parser.h"

namespace jackpine::engine {
namespace {

Statement Parse(const std::string& sql) {
  auto r = ParseSql(sql);
  EXPECT_TRUE(r.ok()) << sql << " -> " << r.status().ToString();
  return std::move(r).value();
}

SelectStatement ParseSelect(const std::string& sql) {
  Statement stmt = Parse(sql);
  return std::move(std::get<SelectStatement>(stmt));
}

TEST(LexerTest, TokenKinds) {
  auto tokens = Tokenize("SELECT a.b, 'it''s', 3.5e2 FROM t WHERE x <= 1;");
  ASSERT_TRUE(tokens.ok());
  EXPECT_EQ(tokens->front().text, "SELECT");
  bool found_string = false, found_number = false, found_le = false;
  for (const Token& t : *tokens) {
    if (t.kind == TokenKind::kString) {
      EXPECT_EQ(t.text, "it's");
      found_string = true;
    }
    if (t.kind == TokenKind::kNumber && t.text == "3.5e2") found_number = true;
    if (t.IsSymbol("<=")) found_le = true;
  }
  EXPECT_TRUE(found_string);
  EXPECT_TRUE(found_number);
  EXPECT_TRUE(found_le);
  EXPECT_EQ(tokens->back().kind, TokenKind::kEnd);
}

TEST(LexerTest, LineComments) {
  auto tokens = Tokenize("SELECT 1 -- trailing comment\nFROM t");
  ASSERT_TRUE(tokens.ok());
  for (const Token& t : *tokens) EXPECT_NE(t.text, "--");
}

TEST(LexerTest, BlockComments) {
  auto tokens = Tokenize("SELECT /* inline */ 1 FROM/* tight */t");
  ASSERT_TRUE(tokens.ok());
  std::vector<std::string> texts;
  for (const Token& t : *tokens) {
    if (t.kind != TokenKind::kEnd) texts.push_back(t.text);
  }
  EXPECT_EQ(texts, (std::vector<std::string>{"SELECT", "1", "FROM", "t"}));

  // Multi-line and star-heavy bodies are still one comment.
  auto multi = Tokenize("SELECT 1 /* spans\nlines ** with stars */ FROM t");
  ASSERT_TRUE(multi.ok());
  // `/*` inside a string literal is just text, not a comment opener.
  auto in_string = Tokenize("SELECT '/* not a comment */' FROM t");
  ASSERT_TRUE(in_string.ok());
  bool found = false;
  for (const Token& t : *in_string) {
    if (t.kind == TokenKind::kString) {
      EXPECT_EQ(t.text, "/* not a comment */");
      found = true;
    }
  }
  EXPECT_TRUE(found);
}

TEST(LexerTest, Errors) {
  EXPECT_FALSE(Tokenize("SELECT 'unterminated").ok());
  EXPECT_FALSE(Tokenize("SELECT @foo").ok());
  EXPECT_FALSE(Tokenize("SELECT 1 /* never closed").ok());
}

TEST(ParserTest, MinimalSelect) {
  const auto s = ParseSelect(("SELECT * FROM edges"));
  ASSERT_EQ(s.items.size(), 1u);
  EXPECT_TRUE(s.items[0].star);
  ASSERT_EQ(s.from.size(), 1u);
  EXPECT_EQ(s.from[0].table, "edges");
  EXPECT_EQ(s.from[0].alias, "edges");
  EXPECT_EQ(s.where, nullptr);
}

TEST(ParserTest, AliasesAndQualifiedColumns) {
  const auto s = ParseSelect(("SELECT e.tlid AS id, fullname name FROM edges e, county AS c"));
  ASSERT_EQ(s.items.size(), 2u);
  EXPECT_EQ(s.items[0].alias, "id");
  EXPECT_EQ(s.items[0].expr->table_qualifier, "e");
  EXPECT_EQ(s.items[0].expr->column, "tlid");
  EXPECT_EQ(s.items[1].alias, "name");
  ASSERT_EQ(s.from.size(), 2u);
  EXPECT_EQ(s.from[0].alias, "e");
  EXPECT_EQ(s.from[1].alias, "c");
}

TEST(ParserTest, WhereExpressionPrecedence) {
  const auto s = ParseSelect(("SELECT * FROM t WHERE a = 1 OR b = 2 AND NOT c = 3"));
  // OR at the top, AND below it on the right.
  ASSERT_NE(s.where, nullptr);
  EXPECT_EQ(s.where->kind, Expr::Kind::kBinary);
  EXPECT_EQ(s.where->binary_op, BinaryOp::kOr);
  EXPECT_EQ(s.where->children[1]->binary_op, BinaryOp::kAnd);
  EXPECT_EQ(s.where->children[1]->children[1]->kind, Expr::Kind::kUnary);
}

TEST(ParserTest, ArithmeticPrecedence) {
  const auto s = ParseSelect(("SELECT 1 + 2 * 3 FROM t"));
  const Expr& e = *s.items[0].expr;
  EXPECT_EQ(e.binary_op, BinaryOp::kAdd);
  EXPECT_EQ(e.children[1]->binary_op, BinaryOp::kMul);
}

TEST(ParserTest, FunctionCallsNested) {
  const auto s = ParseSelect(("SELECT SUM(ST_Area(ST_Buffer(geom, 2.5, 8))) FROM arealm"));
  const Expr& sum = *s.items[0].expr;
  EXPECT_EQ(sum.kind, Expr::Kind::kFunctionCall);
  EXPECT_EQ(sum.function, "SUM");
  const Expr& area = *sum.children[0];
  EXPECT_EQ(area.function, "ST_Area");
  const Expr& buffer = *area.children[0];
  EXPECT_EQ(buffer.function, "ST_Buffer");
  EXPECT_EQ(buffer.children.size(), 3u);
}

TEST(ParserTest, CountStar) {
  const auto s = ParseSelect(("SELECT COUNT(*) FROM t"));
  const Expr& count = *s.items[0].expr;
  EXPECT_EQ(count.function, "COUNT");
  ASSERT_EQ(count.children.size(), 1u);
  EXPECT_EQ(count.children[0]->kind, Expr::Kind::kStar);
}

TEST(ParserTest, OrderByLimit) {
  const auto s = ParseSelect((
      "SELECT * FROM t ORDER BY a DESC, b ASC, c LIMIT 10"));
  ASSERT_EQ(s.order_by.size(), 3u);
  EXPECT_FALSE(s.order_by[0].ascending);
  EXPECT_TRUE(s.order_by[1].ascending);
  EXPECT_TRUE(s.order_by[2].ascending);
  EXPECT_EQ(*s.limit, 10);
}

TEST(ParserTest, Literals) {
  const auto s = ParseSelect(("SELECT 1, -2.5, 'text', TRUE, FALSE, NULL FROM t"));
  EXPECT_EQ(s.items[0].expr->literal.int_value(), 1);
  EXPECT_EQ(s.items[1].expr->kind, Expr::Kind::kUnary);  // unary minus
  EXPECT_EQ(s.items[2].expr->literal.string_value(), "text");
  EXPECT_TRUE(s.items[3].expr->literal.bool_value());
  EXPECT_FALSE(s.items[4].expr->literal.bool_value());
  EXPECT_TRUE(s.items[5].expr->literal.is_null());
}

TEST(ParserTest, CreateTable) {
  auto stmt = Parse(
      "CREATE TABLE edges (tlid BIGINT, name VARCHAR, geom GEOMETRY)");
  const auto& c = std::get<CreateTableStatement>(stmt);
  EXPECT_EQ(c.name, "edges");
  ASSERT_EQ(c.columns.size(), 3u);
  EXPECT_EQ(c.columns[2].first, "geom");
  EXPECT_EQ(c.columns[2].second, "GEOMETRY");
}

TEST(ParserTest, InsertMultiRow) {
  auto stmt = Parse(
      "INSERT INTO t VALUES (1, 'a'), (2, ST_GeomFromText('POINT (0 0)'))");
  const auto& i = std::get<InsertStatement>(stmt);
  EXPECT_EQ(i.table, "t");
  ASSERT_EQ(i.rows.size(), 2u);
  EXPECT_EQ(i.rows[0].size(), 2u);
  EXPECT_EQ(i.rows[1][1]->function, "ST_GeomFromText");
}

TEST(ParserTest, SpatialIndexDdl) {
  auto c = Parse("CREATE SPATIAL INDEX ON edges (geom)");
  EXPECT_EQ(std::get<CreateIndexStatement>(c).table, "edges");
  EXPECT_EQ(std::get<CreateIndexStatement>(c).column, "geom");
  auto d = Parse("DROP SPATIAL INDEX ON edges (geom)");
  EXPECT_EQ(std::get<DropIndexStatement>(d).table, "edges");
}

TEST(ParserTest, TrailingSemicolonAllowed) {
  EXPECT_NO_FATAL_FAILURE(Parse("SELECT * FROM t;"));
}

TEST(ParserTest, Errors) {
  EXPECT_FALSE(ParseSql("").ok());
  EXPECT_FALSE(ParseSql("SELEC * FROM t").ok());
  EXPECT_FALSE(ParseSql("SELECT FROM t").ok());
  EXPECT_FALSE(ParseSql("SELECT * FROM").ok());
  EXPECT_FALSE(ParseSql("SELECT * FROM t WHERE").ok());
  EXPECT_FALSE(ParseSql("SELECT * FROM t LIMIT x").ok());
  EXPECT_FALSE(ParseSql("SELECT * FROM t extra garbage").ok());
  EXPECT_FALSE(ParseSql("CREATE TABLE t (a)").ok());
  EXPECT_FALSE(ParseSql("INSERT INTO t VALUES 1, 2").ok());
  EXPECT_FALSE(ParseSql("UPDATE t SET a = 1").ok());
  EXPECT_FALSE(ParseSql("SELECT f(1, FROM t").ok());
}

}  // namespace
}  // namespace jackpine::engine
