// Wire-protocol tests: frame codec round trips, incremental decoding, and
// the robustness guarantee from wire.h — truncated, oversized or corrupted
// input yields a clean Status, never a crash, an unbounded allocation, or a
// hang. The bit-flip sweep runs under the sanitizer jobs in CI.

#include <cstring>
#include <optional>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "engine/executor.h"
#include "geom/wkt_reader.h"
#include "net/wire.h"

namespace jackpine::net {
namespace {

engine::QueryResult SampleResult(size_t nrows) {
  engine::QueryResult result;
  result.columns = {"id", "name", "score", "flag", "geom", "hole"};
  auto geom = geom::GeometryFromWkt("POLYGON ((0 0, 4 0, 4 4, 0 4, 0 0))");
  EXPECT_TRUE(geom.ok());
  for (size_t i = 0; i < nrows; ++i) {
    result.rows.push_back(engine::Row{
        engine::Value::Int(static_cast<int64_t>(i)),
        engine::Value::Str("row-" + std::to_string(i)),
        engine::Value::Real(0.5 * static_cast<double>(i)),
        engine::Value::Bool(i % 2 == 0),
        engine::Value::Geo(*geom),
        engine::Value::MakeNull(),
    });
  }
  return result;
}

// Feeds the encoded frames through a decoder and reassembles the result.
engine::QueryResult Reassemble(const std::vector<std::string>& frames) {
  FrameDecoder decoder;
  ResultAssembler assembler;
  for (const std::string& wire : frames) {
    decoder.Feed(wire);
  }
  while (!assembler.done()) {
    auto frame = decoder.Next();
    EXPECT_TRUE(frame.ok()) << frame.status().ToString();
    if (!frame.ok() || !frame->has_value()) {
      ADD_FAILURE() << "stream ended before the last batch";
      break;
    }
    EXPECT_EQ((*frame)->type, FrameType::kResultBatch);
    auto batch = DecodeResultBatch((*frame)->payload);
    EXPECT_TRUE(batch.ok()) << batch.status().ToString();
    if (!batch.ok()) break;
    EXPECT_TRUE(assembler.Add(std::move(*batch)).ok());
  }
  return assembler.Take();
}

// --- Frame layer -------------------------------------------------------

TEST(FrameTest, RoundTripsSingleFrame) {
  const std::string wire = EncodeFrame(FrameType::kHello, "payload-bytes");
  FrameDecoder decoder;
  decoder.Feed(wire);
  auto frame = decoder.Next();
  ASSERT_TRUE(frame.ok()) << frame.status().ToString();
  ASSERT_TRUE(frame->has_value());
  EXPECT_EQ((*frame)->type, FrameType::kHello);
  EXPECT_EQ((*frame)->payload, "payload-bytes");
  // Stream is drained.
  auto next = decoder.Next();
  ASSERT_TRUE(next.ok());
  EXPECT_FALSE(next->has_value());
  EXPECT_EQ(decoder.buffered_bytes(), 0u);
}

TEST(FrameTest, DecodesByteAtATime) {
  const std::string wire = EncodeFrame(FrameType::kQuery, "SELECT 1") +
                           EncodeFrame(FrameType::kClose, "");
  FrameDecoder decoder;
  std::vector<Frame> frames;
  for (char c : wire) {
    decoder.Feed(std::string_view(&c, 1));
    for (;;) {
      auto frame = decoder.Next();
      ASSERT_TRUE(frame.ok()) << frame.status().ToString();
      if (!frame->has_value()) break;
      frames.push_back(std::move(**frame));
    }
  }
  ASSERT_EQ(frames.size(), 2u);
  EXPECT_EQ(frames[0].type, FrameType::kQuery);
  EXPECT_EQ(frames[0].payload, "SELECT 1");
  EXPECT_EQ(frames[1].type, FrameType::kClose);
  EXPECT_TRUE(frames[1].payload.empty());
}

TEST(FrameTest, TruncatedPrefixNeedsMoreBytesNotError) {
  const std::string wire = EncodeFrame(FrameType::kError, "boom");
  // Every proper prefix decodes to "need more bytes", never an error.
  for (size_t len = 0; len < wire.size(); ++len) {
    FrameDecoder decoder;
    decoder.Feed(std::string_view(wire.data(), len));
    auto frame = decoder.Next();
    ASSERT_TRUE(frame.ok()) << "prefix of " << len << " bytes";
    EXPECT_FALSE(frame->has_value()) << "prefix of " << len << " bytes";
  }
}

TEST(FrameTest, OversizedLengthIsCorruptionNotAllocation) {
  // type kHello + length 0xffffffff: must be rejected before any attempt to
  // buffer 4 GiB.
  std::string wire;
  wire.push_back(1);
  const uint32_t huge = 0xffffffffu;
  wire.append(reinterpret_cast<const char*>(&huge), 4);
  FrameDecoder decoder;
  decoder.Feed(wire);
  auto frame = decoder.Next();
  ASSERT_FALSE(frame.ok());
  // The failure latches: the stream is unusable after a framing error.
  decoder.Feed(EncodeFrame(FrameType::kClose, ""));
  EXPECT_FALSE(decoder.Next().ok());
}

TEST(FrameTest, UnknownTypeIsCleanError) {
  std::string wire = EncodeFrame(FrameType::kClose, "");
  wire[0] = 99;  // no such frame type
  FrameDecoder decoder;
  decoder.Feed(wire);
  EXPECT_FALSE(decoder.Next().ok());
}

TEST(FrameTest, CustomPayloadCapIsEnforced) {
  FrameDecoder decoder(/*max_payload=*/16);
  decoder.Feed(EncodeFrame(FrameType::kHello, std::string(17, 'x')));
  EXPECT_FALSE(decoder.Next().ok());
}

// The headline robustness guarantee: flip every single bit of a valid
// multi-frame stream and feed the mutant through the full decode path. Any
// outcome is acceptable except a crash, a hang, or an unbounded allocation —
// under asan/ubsan this doubles as a memory-safety sweep of every decoder.
TEST(FrameTest, BitFlipSweepNeverCrashes) {
  std::string stream = EncodeFrame(FrameType::kHello, EncodeHello({}));
  QueryMsg query;
  query.sql = "SELECT * FROM edges WHERE ST_Intersects(geom, x)";
  query.deadline_s = 1.5;
  query.batch_rows = 64;
  stream += EncodeFrame(FrameType::kQuery, EncodeQuery(query));
  for (const std::string& frame : EncodeResultFrames(SampleResult(3), 2)) {
    stream += frame;
  }
  stream += EncodeFrame(FrameType::kError,
                        EncodeError(Status::Unavailable("gone")));
  SpanListMsg spans;
  spans.spans.resize(1);
  spans.spans[0].trace_id = 7;
  spans.spans[0].span_id = 8;
  spans.spans[0].name = "server.exec";
  spans.spans[0].annotations = {{"rows", "5"}};
  stream += EncodeFrame(FrameType::kStats, EncodeSpanList(spans));
  PingMsg ping;
  ping.seq = 3;
  ping.sender_time_s = 12.5;
  stream += EncodeFrame(FrameType::kPing, EncodePing(ping));

  for (size_t bit = 0; bit < stream.size() * 8; ++bit) {
    std::string mutant = stream;
    mutant[bit / 8] = static_cast<char>(mutant[bit / 8] ^ (1 << (bit % 8)));
    FrameDecoder decoder;
    decoder.Feed(mutant);
    // Bounded loop: the decoder consumes or rejects; it cannot yield more
    // frames than the stream has bytes.
    for (size_t step = 0; step <= mutant.size(); ++step) {
      auto frame = decoder.Next();
      if (!frame.ok() || !frame->has_value()) break;
      // Exercise every payload decoder on the (possibly corrupt) payload;
      // all of them must fail cleanly if they fail.
      (void)DecodeHello((*frame)->payload);
      (void)DecodeQuery((*frame)->payload);
      (void)DecodeError((*frame)->payload);
      (void)DecodeResultBatch((*frame)->payload);
      (void)DecodeStatsRequest((*frame)->payload);
      (void)DecodeStatsReply((*frame)->payload);
      (void)DecodeSpanList((*frame)->payload);
      (void)DecodePing((*frame)->payload);
    }
  }
}

// --- Payload codecs ----------------------------------------------------

TEST(PayloadTest, HelloRoundTrip) {
  HelloMsg msg;
  msg.sut = "pine-rtree";
  msg.peer_info = "test/1";
  auto back = DecodeHello(EncodeHello(msg));
  ASSERT_TRUE(back.ok()) << back.status().ToString();
  EXPECT_EQ(back->protocol_version, kProtocolVersion);
  EXPECT_EQ(back->sut, "pine-rtree");
  EXPECT_EQ(back->peer_info, "test/1");
}

TEST(PayloadTest, QueryRoundTrip) {
  QueryMsg msg;
  msg.sql = "SELECT COUNT(*) FROM arealm";
  msg.deadline_s = 2.5;
  msg.max_rows = 1000;
  msg.max_result_bytes = 1u << 20;
  msg.batch_rows = 128;
  auto back = DecodeQuery(EncodeQuery(msg));
  ASSERT_TRUE(back.ok()) << back.status().ToString();
  EXPECT_EQ(back->sql, msg.sql);
  EXPECT_DOUBLE_EQ(back->deadline_s, 2.5);
  EXPECT_EQ(back->max_rows, 1000u);
  EXPECT_EQ(back->max_result_bytes, 1u << 20);
  EXPECT_EQ(back->batch_rows, 128u);
}

TEST(PayloadTest, ErrorRoundTripPreservesCode) {
  auto back =
      DecodeError(EncodeError(Status::DeadlineExceeded("too slow")));
  ASSERT_TRUE(back.ok()) << back.status().ToString();
  EXPECT_EQ(back->code, StatusCode::kDeadlineExceeded);
  EXPECT_EQ(back->message, "too slow");
  EXPECT_EQ(back->retry_after_ms, 0u);
}

TEST(PayloadTest, ErrorRoundTripPreservesRetryAfterHint) {
  Status shed = Status::ResourceExhausted("server overloaded");
  shed.set_retry_after_ms(250);
  auto back = DecodeError(EncodeError(shed));
  ASSERT_TRUE(back.ok()) << back.status().ToString();
  EXPECT_EQ(back->code, StatusCode::kResourceExhausted);
  EXPECT_EQ(back->retry_after_ms, 250u);
  // ErrorToStatus rebuilds the structured shed the retry layer keys on.
  const Status status = ErrorToStatus(*back);
  EXPECT_TRUE(IsShed(status));
  EXPECT_EQ(status.retry_after_ms(), 250u);
}

TEST(PayloadTest, HintlessErrorKeepsThePreOverloadEncoding) {
  // The trailing retry_after_ms u32 is emitted only when a hint is set: a
  // hintless Error frame must stay byte-identical to the pre-overload
  // encoding (code + message, nothing after), because old peers reject
  // trailing bytes — that is the cross-version compatibility contract.
  const std::string hintless = EncodeError(Status::Unavailable("gone"));
  Status shed = Status::Unavailable("gone");
  shed.set_retry_after_ms(250);
  const std::string hinted = EncodeError(shed);
  ASSERT_EQ(hinted.size(), hintless.size() + 4);
  EXPECT_EQ(hinted.compare(0, hintless.size(), hintless), 0);

  auto back = DecodeError(hintless);
  ASSERT_TRUE(back.ok()) << back.status().ToString();
  EXPECT_EQ(back->code, StatusCode::kUnavailable);
  EXPECT_EQ(back->message, "gone");
  EXPECT_EQ(back->retry_after_ms, 0u);
  EXPECT_FALSE(IsShed(ErrorToStatus(*back)));
}

TEST(PayloadTest, PingRoundTrip) {
  PingMsg msg;
  msg.seq = 42;
  msg.sender_time_s = 1234.5;
  auto back = DecodePing(EncodePing(msg));
  ASSERT_TRUE(back.ok()) << back.status().ToString();
  EXPECT_EQ(back->seq, 42u);
  EXPECT_DOUBLE_EQ(back->sender_time_s, 1234.5);
}

TEST(PayloadTest, ClocklessPingKeepsTheMinimalEncoding) {
  // sender_time_s is a trailing optional in the Error-hint style: a ping
  // without a clock reading is exactly the 8-byte seq, and a seq-only
  // payload decodes with sender_time_s = 0.0. That keeps the frame
  // forward-extensible without breaking peers that only know the seq.
  PingMsg msg;
  msg.seq = 7;
  const std::string plain = EncodePing(msg);
  EXPECT_EQ(plain.size(), 8u);
  auto back = DecodePing(plain);
  ASSERT_TRUE(back.ok()) << back.status().ToString();
  EXPECT_EQ(back->seq, 7u);
  EXPECT_DOUBLE_EQ(back->sender_time_s, 0.0);
}

TEST(PayloadTest, TruncatedPingFailsCleanlyExceptTheClockBoundary) {
  PingMsg msg;
  msg.seq = 99;
  msg.sender_time_s = 3.25;
  const std::string full = EncodePing(msg);
  ASSERT_EQ(full.size(), 16u);
  for (size_t len = 0; len < full.size(); ++len) {
    auto back = DecodePing(std::string_view(full.data(), len));
    if (len == 8) {
      // Cutting exactly the trailing clock reproduces the minimal
      // encoding, which must keep decoding (as 0.0) — same compatibility
      // contract as the hintless Error frame.
      ASSERT_TRUE(back.ok());
      EXPECT_EQ(back->seq, 99u);
      EXPECT_DOUBLE_EQ(back->sender_time_s, 0.0);
    } else {
      EXPECT_FALSE(back.ok()) << "prefix of " << len << " bytes";
    }
  }
}

TEST(PayloadTest, ResultBatchRoundTripsEveryValueType) {
  const engine::QueryResult result = SampleResult(5);
  ResultBatchMsg msg;
  msg.last = true;
  msg.has_header = true;
  msg.columns = result.columns;
  msg.rows = result.rows;
  auto back = DecodeResultBatch(EncodeResultBatch(msg));
  ASSERT_TRUE(back.ok()) << back.status().ToString();
  EXPECT_TRUE(back->last);
  EXPECT_TRUE(back->has_header);
  EXPECT_EQ(back->columns, result.columns);
  ASSERT_EQ(back->rows.size(), 5u);
  engine::QueryResult reassembled;
  reassembled.columns = back->columns;
  reassembled.rows = std::move(back->rows);
  EXPECT_EQ(reassembled.Checksum(), result.Checksum());
}

TEST(PayloadTest, EmptyGeometryCrossesTheWire) {
  auto empty = geom::GeometryFromWkt("GEOMETRYCOLLECTION EMPTY");
  ASSERT_TRUE(empty.ok());
  ResultBatchMsg msg;
  msg.has_header = true;
  msg.columns = {"g"};
  msg.rows = {engine::Row{engine::Value::Geo(*empty)}};
  auto back = DecodeResultBatch(EncodeResultBatch(msg));
  ASSERT_TRUE(back.ok()) << back.status().ToString();
  ASSERT_EQ(back->rows.size(), 1u);
  EXPECT_TRUE(back->rows[0][0].geometry_value().IsEmpty());
}

TEST(PayloadTest, TruncatedPayloadsFailCleanly) {
  // Every strict prefix of a valid payload is rejected by its own decoder:
  // truncation either cuts a fixed-width read or shortens a length-prefixed
  // field below its declared size, and both are detected before ExpectEnd.
  QueryMsg query;
  query.sql = "SELECT 1";
  ResultBatchMsg batch;
  batch.last = true;
  batch.has_header = true;
  batch.columns = {"a"};
  batch.rows = {engine::Row{engine::Value::Int(7)}};
  const std::string hello = EncodeHello({});
  const std::string query_payload = EncodeQuery(query);
  // A hinted error, so the trailing-u32 truncation case below is exercised.
  Status hinted_error = Status::Internal("x");
  hinted_error.set_retry_after_ms(99);
  const std::string error_payload = EncodeError(hinted_error);
  const std::string batch_payload = EncodeResultBatch(batch);
  for (size_t len = 0; len < hello.size(); ++len) {
    EXPECT_FALSE(DecodeHello(std::string_view(hello.data(), len)).ok());
  }
  for (size_t len = 0; len < query_payload.size(); ++len) {
    EXPECT_FALSE(
        DecodeQuery(std::string_view(query_payload.data(), len)).ok());
  }
  for (size_t len = 0; len < error_payload.size(); ++len) {
    // One deliberate exception: cutting exactly the trailing retry_after_ms
    // u32 reproduces the pre-overload Error encoding, which must keep
    // decoding (as hint 0) for cross-version compatibility.
    if (len == error_payload.size() - 4) {
      auto legacy = DecodeError(std::string_view(error_payload.data(), len));
      ASSERT_TRUE(legacy.ok()) << legacy.status().ToString();
      EXPECT_EQ(legacy->retry_after_ms, 0u);
      continue;
    }
    EXPECT_FALSE(
        DecodeError(std::string_view(error_payload.data(), len)).ok());
  }
  for (size_t len = 0; len < batch_payload.size(); ++len) {
    EXPECT_FALSE(
        DecodeResultBatch(std::string_view(batch_payload.data(), len)).ok());
  }
}

TEST(PayloadTest, TrailingBytesAreRejected) {
  std::string payload = EncodeHello({});
  payload += '\0';
  EXPECT_FALSE(DecodeHello(payload).ok());
}

// --- Trace context ------------------------------------------------------

TEST(TraceContextTest, HelloFlagsRoundTripBothDirections) {
  // Client side: wants tracing, no timestamp.
  HelloMsg client;
  client.sut = "pine-rtree";
  client.trace_flags = HelloMsg::kWantTrace;
  auto back = DecodeHello(EncodeHello(client));
  ASSERT_TRUE(back.ok()) << back.status().ToString();
  EXPECT_EQ(back->trace_flags, HelloMsg::kWantTrace);
  EXPECT_EQ(back->server_time_s, 0.0);

  // Server side: grants tracing and carries its span-clock reading, from
  // which the client estimates the clock offset.
  HelloMsg server;
  server.sut = "pine-rtree";
  server.trace_flags = HelloMsg::kHasServerTime;
  server.server_time_s = 1234.5678;
  back = DecodeHello(EncodeHello(server));
  ASSERT_TRUE(back.ok()) << back.status().ToString();
  EXPECT_EQ(back->trace_flags, HelloMsg::kHasServerTime);
  EXPECT_DOUBLE_EQ(back->server_time_s, 1234.5678);
}

TEST(TraceContextTest, TracelessHelloKeepsThePreSpanEncoding) {
  // The trailing flags byte is emitted only when nonzero: a traceless Hello
  // must stay byte-identical to the pre-span encoding (old strict decoders
  // reject trailing bytes), and a flagged frame is the traceless frame plus
  // the trailing fields — that is the cross-version compatibility contract.
  HelloMsg plain;
  plain.sut = "pine-rtree";
  const std::string traceless = EncodeHello(plain);

  HelloMsg flagged = plain;
  flagged.trace_flags = HelloMsg::kWantTrace;
  const std::string with_flags = EncodeHello(flagged);
  ASSERT_EQ(with_flags.size(), traceless.size() + 1);
  EXPECT_EQ(with_flags.compare(0, traceless.size(), traceless), 0);

  flagged.trace_flags = HelloMsg::kHasServerTime;
  flagged.server_time_s = 7.0;
  const std::string with_time = EncodeHello(flagged);
  ASSERT_EQ(with_time.size(), traceless.size() + 1 + 8);
  EXPECT_EQ(with_time.compare(0, traceless.size(), traceless), 0);

  // A payload ending after peer_info decodes as a pre-span peer (flags 0).
  auto legacy = DecodeHello(traceless);
  ASSERT_TRUE(legacy.ok()) << legacy.status().ToString();
  EXPECT_EQ(legacy->trace_flags, 0u);
  EXPECT_EQ(legacy->server_time_s, 0.0);
}

TEST(TraceContextTest, HelloRejectsBadTraceFlags) {
  const std::string base = EncodeHello({});
  // A zero flags byte is never emitted (zero means "omit the field"), so
  // its presence is corruption, not a capability.
  std::string zero_flag = base;
  zero_flag += '\0';
  EXPECT_FALSE(DecodeHello(zero_flag).ok());
  // Unknown capability bits from the future are rejected, not ignored:
  // silently dropping them would let two peers disagree on the encoding of
  // the bytes that follow.
  std::string unknown_bit = base;
  unknown_bit += '\x04';
  EXPECT_FALSE(DecodeHello(unknown_bit).ok());
  // kHasServerTime promises a trailing f64; a frame that cuts it is torn.
  std::string torn = base;
  torn += static_cast<char>(HelloMsg::kHasServerTime);
  EXPECT_FALSE(DecodeHello(torn).ok());
}

TEST(TraceContextTest, QueryTraceContextRoundTrips) {
  QueryMsg msg;
  msg.sql = "SELECT COUNT(*) FROM arealm";
  msg.deadline_s = 2.5;
  msg.batch_rows = 128;
  msg.trace_id = 0x1122334455667788ull;
  msg.parent_span_id = 0x99aabbccddeeff00ull;
  auto back = DecodeQuery(EncodeQuery(msg));
  ASSERT_TRUE(back.ok()) << back.status().ToString();
  EXPECT_EQ(back->sql, msg.sql);
  EXPECT_DOUBLE_EQ(back->deadline_s, 2.5);
  EXPECT_EQ(back->batch_rows, 128u);
  EXPECT_EQ(back->trace_id, msg.trace_id);
  EXPECT_EQ(back->parent_span_id, msg.parent_span_id);
}

TEST(TraceContextTest, UntracedQueryKeepsThePreSpanEncoding) {
  // Trace context is emitted only when trace_id is nonzero: an untraced
  // Query frame must stay byte-identical to the pre-span encoding, and the
  // traced frame is the untraced one plus the two trailing u64s.
  QueryMsg msg;
  msg.sql = "SELECT 1";
  const std::string untraced = EncodeQuery(msg);
  msg.trace_id = 77;
  msg.parent_span_id = 78;
  const std::string traced = EncodeQuery(msg);
  ASSERT_EQ(traced.size(), untraced.size() + 16);
  EXPECT_EQ(traced.compare(0, untraced.size(), untraced), 0);

  // Cutting exactly the trailing pair reproduces the legacy encoding, which
  // must keep decoding (as untraced) — that is what a pre-span client sends.
  auto legacy =
      DecodeQuery(std::string_view(traced.data(), untraced.size()));
  ASSERT_TRUE(legacy.ok()) << legacy.status().ToString();
  EXPECT_EQ(legacy->sql, "SELECT 1");
  EXPECT_EQ(legacy->trace_id, 0u);
  EXPECT_EQ(legacy->parent_span_id, 0u);

  // Every other strict prefix of the traced payload is rejected.
  for (size_t len = 0; len < traced.size(); ++len) {
    if (len == untraced.size()) continue;
    EXPECT_FALSE(DecodeQuery(std::string_view(traced.data(), len)).ok())
        << "accepted prefix of length " << len;
  }
}

TEST(TraceContextTest, SpanListRoundTripsSpansAndAnnotations) {
  SpanListMsg msg;
  msg.spans.resize(2);
  msg.spans[0].trace_id = 42;
  msg.spans[0].span_id = 1;
  msg.spans[0].name = "server.query";
  msg.spans[0].thread = 5;
  msg.spans[0].start_s = 10.25;
  msg.spans[0].end_s = 10.75;
  msg.spans[0].process = 1;  // receiver-assigned; must NOT cross the wire
  msg.spans[1].trace_id = 42;
  msg.spans[1].span_id = 2;
  msg.spans[1].parent_id = 1;
  msg.spans[1].name = "server.exec";
  msg.spans[1].start_s = 10.3;
  msg.spans[1].end_s = 10.6;
  msg.spans[1].annotations = {{"rows", "12"}, {"error", ""}};

  auto back = DecodeSpanList(EncodeSpanList(msg));
  ASSERT_TRUE(back.ok()) << back.status().ToString();
  ASSERT_EQ(back->spans.size(), 2u);
  EXPECT_EQ(back->spans[0].trace_id, 42u);
  EXPECT_EQ(back->spans[0].span_id, 1u);
  EXPECT_EQ(back->spans[0].parent_id, 0u);
  EXPECT_EQ(back->spans[0].name, "server.query");
  EXPECT_EQ(back->spans[0].thread, 5u);
  EXPECT_DOUBLE_EQ(back->spans[0].start_s, 10.25);
  EXPECT_DOUBLE_EQ(back->spans[0].end_s, 10.75);
  EXPECT_EQ(back->spans[0].process, 0u);  // lane is local to each process
  EXPECT_EQ(back->spans[1].parent_id, 1u);
  ASSERT_EQ(back->spans[1].annotations.size(), 2u);
  EXPECT_EQ(back->spans[1].annotations[0].first, "rows");
  EXPECT_EQ(back->spans[1].annotations[0].second, "12");
  EXPECT_EQ(back->spans[1].annotations[1].second, "");
}

TEST(TraceContextTest, SpanListRejectsHostileCounts) {
  // A span count the payload cannot hold must fail before any allocation
  // sized from it.
  std::string payload("\xff\xff\xff\xff", 4);
  EXPECT_FALSE(DecodeSpanList(payload).ok());
  // Same for a per-span annotation count beyond the recorder's hard bound.
  SpanListMsg msg;
  msg.spans.resize(1);
  msg.spans[0].name = "s";
  std::string encoded = EncodeSpanList(msg);
  // The annotation count is the last u32; forge it to an absurd value.
  encoded[encoded.size() - 4] = '\x7f';
  EXPECT_FALSE(DecodeSpanList(encoded).ok());
}

TEST(TraceContextTest, SpanListTruncationFailsCleanly) {
  SpanListMsg msg;
  msg.spans.resize(1);
  msg.spans[0].trace_id = 1;
  msg.spans[0].span_id = 2;
  msg.spans[0].name = "server.send";
  msg.spans[0].annotations = {{"frames", "3"}};
  const std::string payload = EncodeSpanList(msg);
  for (size_t len = 0; len < payload.size(); ++len) {
    EXPECT_FALSE(DecodeSpanList(std::string_view(payload.data(), len)).ok())
        << "accepted prefix of length " << len;
  }
}

TEST(TraceContextTest, StatsRequestRoundTripsSpanScope) {
  auto back = DecodeStatsRequest(
      EncodeStatsRequest({StatsScope::kSpans}));
  ASSERT_TRUE(back.ok()) << back.status().ToString();
  EXPECT_EQ(back->scope, StatsScope::kSpans);
}

// --- Stats frames -------------------------------------------------------

TEST(PayloadTest, StatsRequestRoundTripsBothScopes) {
  for (StatsScope scope : {StatsScope::kGlobal, StatsScope::kSession}) {
    auto back = DecodeStatsRequest(EncodeStatsRequest({scope}));
    ASSERT_TRUE(back.ok()) << back.status().ToString();
    EXPECT_EQ(back->scope, scope);
  }
}

TEST(PayloadTest, StatsRequestRejectsUnknownScope) {
  std::string payload(1, '\x07');
  EXPECT_FALSE(DecodeStatsRequest(payload).ok());
  EXPECT_FALSE(DecodeStatsRequest("").ok());
  // Trailing bytes after the scope byte are a protocol violation too.
  EXPECT_FALSE(DecodeStatsRequest(std::string("\x00\x00", 2)).ok());
}

TEST(PayloadTest, StatsRequestRoundTripsJsonDocumentScopes) {
  // The query-intelligence scopes added in protocol rev 3 ride the same
  // one-byte request; a legacy server that predates them rejects the
  // unknown byte with kParseError (see the previous test), which the
  // client surfaces as "scope unsupported" rather than a hang.
  for (StatsScope scope : {StatsScope::kStatements, StatsScope::kSlow}) {
    auto back = DecodeStatsRequest(EncodeStatsRequest({scope}));
    ASSERT_TRUE(back.ok()) << back.status().ToString();
    EXPECT_EQ(back->scope, scope);
  }
}

TEST(PayloadTest, StatsJsonRoundTripsArbitraryDocuments) {
  StatsJsonMsg msg;
  msg.json = "{\"statements\":[{\"fingerprint\":\"select 1\",\"calls\":3}]}";
  auto back = DecodeStatsJson(EncodeStatsJson(msg));
  ASSERT_TRUE(back.ok()) << back.status().ToString();
  EXPECT_EQ(back->json, msg.json);

  // Empty documents survive too (a fresh server has nothing to report).
  EXPECT_EQ(DecodeStatsJson(EncodeStatsJson({""}))->json, "");
}

TEST(PayloadTest, StatsJsonTruncationFailsCleanly) {
  const std::string payload =
      EncodeStatsJson({"{\"capacity\":128,\"entries\":[]}"});
  for (size_t len = 0; len < payload.size(); ++len) {
    EXPECT_FALSE(DecodeStatsJson(std::string_view(payload.data(), len)).ok())
        << "accepted prefix of length " << len;
  }
}

TEST(PayloadTest, StatsReplyRoundTrip) {
  StatsReplyMsg msg;
  msg.entries = {{"server.queries", 42.0},
                 {"engine.query_latency_s.p99_s", 0.0125},
                 {"", -1.0}};  // empty names and negatives survive
  auto back = DecodeStatsReply(EncodeStatsReply(msg));
  ASSERT_TRUE(back.ok()) << back.status().ToString();
  ASSERT_EQ(back->entries.size(), 3u);
  EXPECT_EQ(back->entries[0].first, "server.queries");
  EXPECT_EQ(back->entries[0].second, 42.0);
  EXPECT_EQ(back->entries[1].second, 0.0125);
  EXPECT_EQ(back->entries[2].second, -1.0);
}

TEST(PayloadTest, StatsReplyBoundsCountAgainstPayload) {
  // A reply claiming more entries than its bytes could hold must fail before
  // any allocation sized from the hostile count.
  std::string payload;
  payload += '\xff';
  payload += '\xff';
  payload += '\xff';
  payload += '\xff';  // count = 2^32 - 1
  EXPECT_FALSE(DecodeStatsReply(payload).ok());
}

TEST(PayloadTest, StatsReplyTruncationFailsCleanly) {
  StatsReplyMsg msg;
  msg.entries = {{"a", 1.0}, {"bb", 2.0}};
  const std::string payload = EncodeStatsReply(msg);
  for (size_t len = 0; len < payload.size(); ++len) {
    EXPECT_FALSE(
        DecodeStatsReply(std::string_view(payload.data(), len)).ok())
        << "accepted prefix of length " << len;
  }
}

TEST(PayloadTest, StatsFrameTypePassesTheDecoder) {
  FrameDecoder decoder;
  decoder.Feed(EncodeFrame(FrameType::kStats,
                           EncodeStatsRequest({StatsScope::kGlobal})));
  auto frame = decoder.Next();
  ASSERT_TRUE(frame.ok()) << frame.status().ToString();
  ASSERT_TRUE(frame->has_value());
  EXPECT_EQ((*frame)->type, FrameType::kStats);
}

// --- rows_examined: the optional trailing field on the header batch ------

TEST(PayloadTest, RowsExaminedRoundTripsOnHeaderBatch) {
  ResultBatchMsg msg;
  msg.last = true;
  msg.has_header = true;
  msg.columns = {"a"};
  msg.rows = {engine::Row{engine::Value::Int(7)}};
  msg.rows_examined = 12345;
  auto back = DecodeResultBatch(EncodeResultBatch(msg));
  ASSERT_TRUE(back.ok()) << back.status().ToString();
  EXPECT_EQ(back->rows_examined, 12345u);
}

TEST(PayloadTest, ZeroRowsExaminedKeepsLegacyEncoding) {
  // rows_examined == 0 is not emitted, so the frame is byte-identical to the
  // pre-stats encoding and a pre-stats peer still decodes it.
  ResultBatchMsg legacy;
  legacy.last = true;
  legacy.has_header = true;
  legacy.columns = {"a"};
  const std::string with_zero = EncodeResultBatch(legacy);
  ResultBatchMsg explicit_zero = legacy;
  explicit_zero.rows_examined = 0;
  EXPECT_EQ(EncodeResultBatch(explicit_zero), with_zero);
  auto back = DecodeResultBatch(with_zero);
  ASSERT_TRUE(back.ok());
  EXPECT_EQ(back->rows_examined, 0u);
}

TEST(PayloadTest, RowsExaminedIgnoredOnContinuationBatches) {
  // Only the header batch carries the count; continuation batches never
  // grow a trailing field, so old peers keep parsing them.
  ResultBatchMsg msg;
  msg.last = true;
  msg.has_header = false;
  msg.rows_examined = 99;
  auto back = DecodeResultBatch(EncodeResultBatch(msg));
  ASSERT_TRUE(back.ok());
  EXPECT_EQ(back->rows_examined, 0u);
}

TEST(StreamTest, RowsExaminedSurvivesReassembly) {
  engine::QueryResult result = SampleResult(10);
  result.rows_examined = 777;
  const std::vector<std::string> frames = EncodeResultFrames(result, 4);
  FrameDecoder decoder;
  ResultAssembler assembler;
  for (const std::string& wire : frames) decoder.Feed(wire);
  while (!assembler.done()) {
    auto frame = decoder.Next();
    ASSERT_TRUE(frame.ok());
    ASSERT_TRUE(frame->has_value());
    auto batch = DecodeResultBatch((*frame)->payload);
    ASSERT_TRUE(batch.ok());
    ASSERT_TRUE(assembler.Add(std::move(*batch)).ok());
  }
  EXPECT_EQ(assembler.Take().rows_examined, 777u);
}

// --- Result streaming --------------------------------------------------

TEST(StreamTest, BatchesAndReassemblesLosslessly) {
  const engine::QueryResult result = SampleResult(1000);
  const std::vector<std::string> frames = EncodeResultFrames(result, 100);
  EXPECT_GE(frames.size(), 10u);  // at most 100 rows per batch
  const engine::QueryResult back = Reassemble(frames);
  EXPECT_EQ(back.columns, result.columns);
  EXPECT_EQ(back.NumRows(), result.NumRows());
  EXPECT_EQ(back.Checksum(), result.Checksum());
}

TEST(StreamTest, EmptyResultIsOneHeaderBatch) {
  engine::QueryResult result;
  result.columns = {"count"};
  const std::vector<std::string> frames =
      EncodeResultFrames(result, kDefaultBatchRows);
  ASSERT_EQ(frames.size(), 1u);
  const engine::QueryResult back = Reassemble(frames);
  EXPECT_EQ(back.columns, result.columns);
  EXPECT_EQ(back.NumRows(), 0u);
}

TEST(StreamTest, ByteTargetBoundsBatchSize) {
  // Rows of ~100 KiB: the 1 MiB byte target must split far below the row
  // cap, keeping each frame well under the 64 MiB payload limit.
  engine::QueryResult result;
  result.columns = {"blob"};
  for (int i = 0; i < 64; ++i) {
    result.rows.push_back(
        engine::Row{engine::Value::Str(std::string(100 * 1024, 'x'))});
  }
  const std::vector<std::string> frames =
      EncodeResultFrames(result, kDefaultBatchRows);
  // The byte-target probe fires every 16 rows: 64 rows of ~100 KiB split
  // into four ~1.6 MiB batches instead of one 6.4 MiB frame.
  EXPECT_GE(frames.size(), 4u);
  for (const std::string& frame : frames) {
    EXPECT_LT(frame.size(), 4u << 20);
  }
  EXPECT_EQ(Reassemble(frames).NumRows(), 64u);
}

TEST(StreamTest, AssemblerRejectsHeaderlessFirstBatch) {
  ResultAssembler assembler;
  ResultBatchMsg batch;
  batch.last = true;
  batch.has_header = false;
  EXPECT_FALSE(assembler.Add(std::move(batch)).ok());
}

TEST(StreamTest, AssemblerRejectsRowsAfterLast) {
  ResultAssembler assembler;
  ResultBatchMsg first;
  first.last = true;
  first.has_header = true;
  first.columns = {"a"};
  ASSERT_TRUE(assembler.Add(std::move(first)).ok());
  EXPECT_TRUE(assembler.done());
  ResultBatchMsg extra;
  extra.has_header = false;
  extra.last = true;
  EXPECT_FALSE(assembler.Add(std::move(extra)).ok());
}

}  // namespace
}  // namespace jackpine::net
