// Tests for the uniform grid index.

#include <algorithm>
#include <set>

#include <gtest/gtest.h>

#include "common/random.h"
#include "index/grid_index.h"

namespace jackpine::index {
namespace {

using geom::Coord;
using geom::Envelope;

TEST(GridIndexTest, Empty) {
  GridIndex grid;
  std::vector<int64_t> out;
  grid.Query(Envelope(0, 0, 10, 10), &out);
  EXPECT_TRUE(out.empty());
  grid.Nearest({0, 0}, 3, &out);
  EXPECT_TRUE(out.empty());
  EXPECT_EQ(grid.size(), 0u);
}

TEST(GridIndexTest, BulkLoadAndQuery) {
  std::vector<IndexEntry> entries;
  for (int i = 0; i < 100; ++i) {
    const double x = (i % 10) * 10.0;
    const double y = (i / 10) * 10.0;
    entries.push_back({Envelope(x, y, x + 5, y + 5), i});
  }
  GridIndex grid;
  grid.BulkLoad(entries);
  EXPECT_EQ(grid.size(), 100u);
  EXPECT_GE(grid.CellsX() * grid.CellsY(), 1u);

  std::vector<int64_t> out;
  grid.Query(Envelope(0, 0, 14, 14), &out);
  std::set<int64_t> got(out.begin(), out.end());
  EXPECT_EQ(got, (std::set<int64_t>{0, 1, 10, 11}));
}

TEST(GridIndexTest, NoDuplicatesForSpanningEntries) {
  // One huge entry covering everything must be reported exactly once.
  std::vector<IndexEntry> entries = {{Envelope(0, 0, 100, 100), 7}};
  for (int i = 0; i < 50; ++i) {
    entries.push_back({Envelope(i, i, i + 1, i + 1), 100 + i});
  }
  GridIndex grid;
  grid.BulkLoad(entries);
  std::vector<int64_t> out;
  grid.Query(Envelope(10, 10, 40, 40), &out);
  EXPECT_EQ(std::count(out.begin(), out.end(), 7), 1);
}

TEST(GridIndexTest, IncrementalInsertRebuildsWhenOutgrown) {
  GridIndex grid;
  grid.Insert(Envelope(0, 0, 1, 1), 0);
  // Insert far outside the initial extent to force a rebuild.
  grid.Insert(Envelope(1000, 1000, 1001, 1001), 1);
  std::vector<int64_t> out;
  grid.Query(Envelope(999, 999, 1002, 1002), &out);
  ASSERT_EQ(out.size(), 1u);
  EXPECT_EQ(out[0], 1);
  out.clear();
  grid.Query(Envelope(-1, -1, 2, 2), &out);
  ASSERT_EQ(out.size(), 1u);
  EXPECT_EQ(out[0], 0);
}

TEST(GridIndexTest, AgreesWithBruteForceOnRandomData) {
  jackpine::Rng rng(5);
  std::vector<IndexEntry> entries;
  for (int i = 0; i < 800; ++i) {
    const double x = rng.NextDouble(0, 200);
    const double y = rng.NextDouble(0, 200);
    entries.push_back(
        {Envelope(x, y, x + rng.NextDouble(0, 8), y + rng.NextDouble(0, 8)),
         i});
  }
  GridIndex grid;
  grid.BulkLoad(entries);
  for (int q = 0; q < 40; ++q) {
    const double x = rng.NextDouble(-10, 200);
    const double y = rng.NextDouble(-10, 200);
    const Envelope w(x, y, x + rng.NextDouble(0, 30), y + rng.NextDouble(0, 30));
    std::vector<int64_t> got;
    grid.Query(w, &got);
    std::vector<int64_t> expected;
    for (const IndexEntry& e : entries) {
      if (e.box.Intersects(w)) expected.push_back(e.id);
    }
    std::sort(got.begin(), got.end());
    std::sort(expected.begin(), expected.end());
    EXPECT_EQ(got, expected);
  }
}

TEST(GridIndexTest, NearestOrdersByMbrDistance) {
  GridIndex grid;
  std::vector<IndexEntry> entries = {
      {Envelope(0, 0, 1, 1), 1},
      {Envelope(10, 0, 11, 1), 2},
      {Envelope(20, 0, 21, 1), 3},
  };
  grid.BulkLoad(entries);
  std::vector<int64_t> out;
  grid.Nearest({12, 0.5}, 2, &out);
  ASSERT_EQ(out.size(), 2u);
  EXPECT_EQ(out[0], 2);
  EXPECT_EQ(out[1], 3);
}

}  // namespace
}  // namespace jackpine::index
