// Unit tests for the benchmark harness itself: suite construction,
// scenarios, timing statistics, report rendering, the loader, and the
// throughput runner.

#include <gtest/gtest.h>

#include "core/loader.h"
#include "core/micro_suite.h"
#include "core/report.h"
#include "core/runner.h"
#include "core/scenarios.h"
#include "core/stats.h"
#include "obs/json.h"

namespace jackpine::core {
namespace {

tigergen::TigerDataset SmallDataset() {
  tigergen::TigerGenOptions gen;
  gen.scale = 0.05;
  gen.seed = 7;
  return tigergen::GenerateTiger(gen);
}

TEST(StatsTest, SummarizeBasics) {
  TimingStats s = Summarize({0.004, 0.001, 0.002, 0.003, 0.010});
  EXPECT_EQ(s.count, 5u);
  EXPECT_DOUBLE_EQ(s.total_s, 0.020);
  EXPECT_DOUBLE_EQ(s.mean_s, 0.004);
  EXPECT_DOUBLE_EQ(s.min_s, 0.001);
  EXPECT_DOUBLE_EQ(s.max_s, 0.010);
  EXPECT_DOUBLE_EQ(s.p50_s, 0.003);
  EXPECT_GT(s.p95_s, 0.003);
  EXPECT_LE(s.p95_s, 0.010);
  EXPECT_GT(s.stddev_s, 0.0);
}

TEST(StatsTest, PercentilesAndStddev) {
  // 100 evenly spaced samples: quantiles and stddev have closed forms.
  std::vector<double> samples;
  for (int i = 1; i <= 100; ++i) samples.push_back(i * 1e-3);
  TimingStats s = Summarize(samples);
  EXPECT_EQ(s.count, 100u);
  // Linear interpolation over the sorted samples: q * (n - 1) positions in.
  EXPECT_NEAR(s.p50_s, 0.0505, 1e-9);
  EXPECT_NEAR(s.p95_s, 0.09505, 1e-9);
  EXPECT_NEAR(s.p99_s, 0.09901, 1e-9);
  EXPECT_GE(s.p99_s, s.p95_s);
  EXPECT_GE(s.p95_s, s.p50_s);
  EXPECT_LE(s.p99_s, s.max_s);
  // Population stddev of 1..100 is sqrt((100^2 - 1) / 12), scaled by 1e-3.
  EXPECT_NEAR(s.stddev_s, 0.028866070, 1e-7);
}

TEST(StatsTest, P99OfSmallSampleDegradesToMax) {
  TimingStats s = Summarize({0.001, 0.002, 0.003});
  EXPECT_GT(s.p99_s, s.p50_s);
  EXPECT_LE(s.p99_s, s.max_s);
}

TEST(StatsTest, EmptyAndSingle) {
  EXPECT_EQ(Summarize({}).count, 0u);
  TimingStats s = Summarize({0.5});
  EXPECT_DOUBLE_EQ(s.mean_s, 0.5);
  EXPECT_DOUBLE_EQ(s.p95_s, 0.5);
  EXPECT_DOUBLE_EQ(s.stddev_s, 0.0);
}

TEST(StatsTest, ToStringMentionsMeanAndCount) {
  const std::string s = Summarize({0.001, 0.002}).ToString();
  EXPECT_NE(s.find("mean"), std::string::npos);
  EXPECT_NE(s.find("n=2"), std::string::npos);
}

TEST(MicroSuiteTest, SuitesHaveStableShape) {
  const auto ds = SmallDataset();
  const auto topo = BuildTopologicalSuite(ds);
  ASSERT_EQ(topo.size(), 22u);
  EXPECT_EQ(topo.front().id, "T1");
  EXPECT_EQ(topo.back().id, "T22");
  for (const auto& q : topo) {
    EXPECT_EQ(q.category, QueryCategory::kTopoRelation);
    EXPECT_FALSE(q.sql.empty());
    EXPECT_FALSE(q.name.empty());
  }
  const auto analysis = BuildAnalysisSuite(ds);
  ASSERT_EQ(analysis.size(), 14u);
  for (const auto& q : analysis) {
    EXPECT_EQ(q.category, QueryCategory::kAnalysis);
  }
}

TEST(MicroSuiteTest, QueriesAreDeterministicInDataset) {
  const auto a = BuildTopologicalSuite(SmallDataset());
  const auto b = BuildTopologicalSuite(SmallDataset());
  for (size_t i = 0; i < a.size(); ++i) EXPECT_EQ(a[i].sql, b[i].sql);
}

TEST(ScenariosTest, SixScenariosWithQueries) {
  const auto ds = SmallDataset();
  const auto scenarios = BuildScenarios(ds, 7);
  ASSERT_EQ(scenarios.size(), 6u);
  const std::vector<std::string> expected_ids = {"map",   "geocode", "revgeo",
                                                 "flood", "land",    "spill"};
  for (size_t i = 0; i < scenarios.size(); ++i) {
    EXPECT_EQ(scenarios[i].id, expected_ids[i]);
    EXPECT_FALSE(scenarios[i].queries.empty()) << scenarios[i].id;
    EXPECT_FALSE(scenarios[i].description.empty());
  }
  // Lookup by id.
  EXPECT_EQ(BuildScenario(ds, "flood", 7).id, "flood");
  EXPECT_TRUE(BuildScenario(ds, "nope", 7).queries.empty());
}

TEST(ScenariosTest, SeedChangesProbesButNotStructure) {
  const auto ds = SmallDataset();
  const auto a = BuildScenarios(ds, 1);
  const auto b = BuildScenarios(ds, 2);
  ASSERT_EQ(a.size(), b.size());
  EXPECT_EQ(a[2].queries.size(), b[2].queries.size());
  // Probe points differ between seeds.
  EXPECT_NE(a[2].queries[0].sql, b[2].queries[0].sql);
  // And are identical for equal seeds.
  const auto c = BuildScenarios(ds, 1);
  EXPECT_EQ(a[2].queries[0].sql, c[2].queries[0].sql);
}

TEST(LoaderTest, RejectsDoubleLoad) {
  const auto ds = SmallDataset();
  client::Connection conn = client::Connection::Open(
      *client::SutByName("pine-rtree"));
  ASSERT_TRUE(LoadDataset(ds, &conn).ok());
  // Tables already exist.
  EXPECT_FALSE(LoadDataset(ds, &conn).ok());
}

TEST(LoaderTest, SkippingIndexesLeavesScanPlans) {
  const auto ds = SmallDataset();
  client::Connection conn = client::Connection::Open(
      *client::SutByName("pine-rtree"));
  ASSERT_TRUE(LoadDataset(ds, &conn, /*build_indexes=*/false).ok());
  auto stmt = conn.CreateStatement();
  auto rs = stmt.ExecuteQuery(
      "EXPLAIN SELECT COUNT(*) FROM edges WHERE ST_Intersects(geom, "
      "ST_MakeEnvelope(0, 0, 1, 1))");
  ASSERT_TRUE(rs.ok());
  ASSERT_TRUE(rs->Next());
  EXPECT_NE(rs->GetString(0)->find("SeqScan"), std::string::npos);
}

TEST(RunnerTest, RecordsErrorsWithoutThrowing) {
  client::Connection conn = client::Connection::Open(
      *client::SutByName("pine-rtree"));
  QuerySpec bad;
  bad.id = "bad";
  bad.sql = "SELECT * FROM missing_table";
  const RunResult r = RunQuery(&conn, bad, RunConfig{});
  EXPECT_FALSE(r.ok);
  EXPECT_NE(r.error.find("NotFound"), std::string::npos);
}

TEST(RunnerTest, TimingAndChecksumPopulated) {
  const auto ds = SmallDataset();
  client::Connection conn = client::Connection::Open(
      *client::SutByName("pine-rtree"));
  ASSERT_TRUE(LoadDataset(ds, &conn).ok());
  QuerySpec q;
  q.id = "count";
  q.sql = "SELECT COUNT(*) FROM edges";
  RunConfig config;
  config.warmup = 1;
  config.repetitions = 4;
  const RunResult r = RunQuery(&conn, q, config);
  ASSERT_TRUE(r.ok) << r.error;
  EXPECT_EQ(r.timing.count, 4u);
  EXPECT_GT(r.timing.mean_s, 0.0);
  EXPECT_EQ(r.result_rows, 1u);
  EXPECT_NE(r.checksum, 0u);
}

TEST(RunnerTest, ThroughputCountsQueriesAndErrors) {
  const auto ds = SmallDataset();
  client::Connection conn = client::Connection::Open(
      *client::SutByName("pine-rtree"));
  ASSERT_TRUE(LoadDataset(ds, &conn).ok());
  std::vector<QuerySpec> workload(2);
  workload[0].sql = "SELECT COUNT(*) FROM edges";
  workload[1].sql = "SELECT broken FROM edges";
  const ThroughputResult t = RunThroughput(&conn, workload, /*rounds=*/5);
  EXPECT_EQ(t.queries_executed, 5u);
  EXPECT_EQ(t.errors, 5u);
  EXPECT_GT(t.elapsed_s, 0.0);
  EXPECT_GT(t.QueriesPerSecond(), 0.0);
}

TEST(RunnerTest, ConcurrentThroughputMatchesSequentialResults) {
  const auto ds = SmallDataset();
  client::Connection conn = client::Connection::Open(
      *client::SutByName("pine-rtree"));
  ASSERT_TRUE(LoadDataset(ds, &conn).ok());
  std::vector<QuerySpec> workload(3);
  workload[0].sql = "SELECT COUNT(*) FROM edges";
  workload[1].sql =
      "SELECT COUNT(*) FROM pointlm WHERE ST_DWithin(geom, "
      "ST_MakePoint(50, 50), 20)";
  workload[2].sql = "SELECT SUM(ST_Length(geom)) FROM edges";
  const ThroughputResult t =
      RunConcurrentThroughput(&conn, workload, /*clients=*/4, /*rounds=*/5);
  EXPECT_EQ(t.queries_executed, 4u * 5u * 3u);
  EXPECT_EQ(t.errors, 0u);
  EXPECT_GT(t.QueriesPerSecond(), 0.0);
  // The shared database must still answer correctly afterwards.
  auto stmt = conn.CreateStatement();
  auto rs = stmt.ExecuteQuery(workload[0].sql);
  ASSERT_TRUE(rs.ok());
  ASSERT_TRUE(rs->Next());
  EXPECT_EQ(*rs->GetInt64(0), static_cast<int64_t>(ds.edges.size()));
}

TEST(RunnerTest, ZipfOverloadMixIsDeterministicAndSkewed) {
  const auto ds = SmallDataset();
  client::Connection conn = client::Connection::Open(
      *client::SutByName("pine-rtree"));
  ASSERT_TRUE(LoadDataset(ds, &conn).ok());
  std::vector<QuerySpec> workload(4);
  workload[0].sql = "SELECT COUNT(*) FROM edges";
  workload[1].sql = "SELECT COUNT(*) FROM pointlm";
  workload[2].sql = "SELECT COUNT(*) FROM arealm";
  workload[3].sql = "SELECT SUM(ST_Length(geom)) FROM edges";
  RunConfig config;
  config.overload_zipf_s = 1.1;

  const OverloadResult a =
      RunOverload(&conn, workload, /*clients=*/4, /*rounds=*/3, config);
  const OverloadResult b =
      RunOverload(&conn, workload, /*clients=*/4, /*rounds=*/3, config);
  EXPECT_EQ(a.queries_ok, 4u * 3u * 4u);
  EXPECT_EQ(a.failures, 0u);
  EXPECT_EQ(a.checksum_mismatches, 0u);
  // The seeded per-client streams make two runs issue bit-identical query
  // sequences: the per-slot checksum vectors fold to the same digest.
  ASSERT_EQ(a.slot_checksums.size(), b.slot_checksums.size());
  EXPECT_EQ(a.slot_checksums, b.slot_checksums);
  EXPECT_EQ(a.FoldedChecksum(), b.FoldedChecksum());
  // ...and a different seed draws a different mix (checksums are per-slot
  // first-seen, so the fold only moves if slot coverage changed; assert on
  // the raw draw instead: some slot was never drawn, or the fold moved).
  RunConfig reseeded = config;
  reseeded.overload_skew_seed = config.overload_skew_seed + 1;
  const OverloadResult c =
      RunOverload(&conn, workload, /*clients=*/4, /*rounds=*/3, reseeded);
  EXPECT_EQ(c.failures, 0u);

  // Zipf(1.1) over 4 slots is visibly top-heavy: slot 0 must be drawn and
  // every slot checksum that was drawn agrees with the uniform run's value
  // for the same slot (same workload, same data).
  EXPECT_NE(a.slot_checksums[0], 0u);
}

TEST(ReportTest, KeyValueTableRenders) {
  const std::string s = RenderKeyValueTable(
      "demo", {{"alpha", "1"}, {"a-much-longer-key", "2"}});
  EXPECT_NE(s.find("== demo =="), std::string::npos);
  EXPECT_NE(s.find("a-much-longer-key"), std::string::npos);
}

TEST(ReportTest, ComparisonTableFlagsErrorsAndDisagreement) {
  RunResult ok_a;
  ok_a.query_id = "Q1";
  ok_a.query_name = "demo";
  ok_a.sut = "sut-a";
  ok_a.ok = true;
  ok_a.checksum = 1;
  ok_a.result_rows = 1;
  RunResult bad_b = ok_a;
  bad_b.sut = "sut-b";
  bad_b.ok = false;
  const std::string with_err =
      RenderComparisonTable("t", {{ok_a}, {bad_b}});
  EXPECT_NE(with_err.find("ERR"), std::string::npos);

  RunResult diff_b = ok_a;
  diff_b.sut = "sut-b";
  diff_b.checksum = 2;
  const std::string with_diff =
      RenderComparisonTable("t", {{ok_a}, {diff_b}});
  EXPECT_NE(with_diff.find("NO"), std::string::npos);

  RunResult mbr = ok_a;
  mbr.sut = "pine-mbr";
  mbr.checksum = 3;
  const std::string with_mbr = RenderComparisonTable("t", {{ok_a}, {mbr}});
  EXPECT_NE(with_mbr.find("~mbr"), std::string::npos);
}

TEST(RunnerTest, CollectsTraceOverMeasuredRepetitions) {
  const auto ds = SmallDataset();
  client::Connection conn = client::Connection::Open(
      *client::SutByName("pine-rtree"));
  ASSERT_TRUE(LoadDataset(ds, &conn).ok());
  QuerySpec q;
  q.id = "window";
  q.category = QueryCategory::kAnalysis;
  q.sql =
      "SELECT COUNT(*) FROM pointlm WHERE ST_DWithin(geom, "
      "ST_MakePoint(50, 50), 20)";
  RunConfig config;
  config.warmup = 2;
  config.repetitions = 3;
  const RunResult r = RunQuery(&conn, q, config);
  ASSERT_TRUE(r.ok) << r.error;
  // Exactly the measured repetitions fold into the trace; warmup stays out.
  EXPECT_EQ(r.trace.queries, 3u);
  EXPECT_GT(r.trace.total_s, 0.0);
  EXPECT_GT(r.trace.index_probes, 0u);
  EXPECT_GT(r.trace.rows_examined, 0u);
}

TEST(ReportTest, StageBreakdownAggregatesPerCategory) {
  RunResult topo;
  topo.category = QueryCategory::kTopoRelation;
  topo.trace.queries = 2;
  topo.trace.index_candidates = 100;
  topo.trace.refine_checks = 100;
  topo.trace.refine_survivors = 25;
  topo.trace.plan_s = 0.004;
  RunResult topo2 = topo;
  topo2.trace.index_candidates = 100;  // same shape, summed below
  RunResult macro;
  macro.category = QueryCategory::kMacro;
  macro.trace.queries = 1;
  const std::string table =
      RenderStageBreakdownTable("stages", {topo, topo2, macro});
  EXPECT_NE(table.find("== stages =="), std::string::npos);
  EXPECT_NE(table.find("topological"), std::string::npos);
  EXPECT_NE(table.find("macro"), std::string::npos);
  // No analysis queries ran: no analysis row.
  EXPECT_EQ(table.find("analysis"), std::string::npos);
  // Summed candidates (200) and the 25% filter/refine ratios appear.
  EXPECT_NE(table.find("200"), std::string::npos);
  EXPECT_NE(table.find("25.0%"), std::string::npos);
}

// The machine-readable report round-trips through the JSON parser and keeps
// its documented schema: this is the stability contract behind
// `benchmark_runner --json`.
TEST(ReportTest, JsonReportRoundTripsWithStableSchema) {
  RunResult r;
  r.query_id = "T1";
  r.query_name = "demo";
  r.category = QueryCategory::kTopoRelation;
  r.sut = "pine-rtree";
  r.ok = true;
  r.result_rows = 7;
  r.checksum = 0xdeadbeefcafef00dULL;
  r.timing = Summarize({0.001, 0.002, 0.003});
  r.attempts = 3;
  r.trace.queries = 3;
  r.trace.index_candidates = 11;

  RunResult failed = r;
  failed.query_id = "T2";
  failed.ok = false;
  failed.error = "boom";
  failed.error_code = StatusCode::kNotFound;

  ScenarioResult scenario;
  scenario.scenario_id = "S1";
  scenario.scenario_name = "geocode";
  scenario.sut = "pine-rtree";
  scenario.total_s = 0.5;
  scenario.queries = {r};

  OverloadResult overload;
  overload.sut = "pine-rtree";
  overload.clients = 8;
  overload.queries_ok = 100;
  overload.sheds = 5;
  overload.attempts = 120;
  overload.elapsed_s = 2.0;
  overload.latency = Summarize({0.01, 0.02});

  JsonReportInput input;
  input.title = "round trip";
  input.runs_by_sut = {{r, failed}};
  input.scenarios_by_sut = {{scenario}};
  input.overloads = {overload};

  auto doc = obs::Json::Parse(RenderJsonReport(input));
  ASSERT_TRUE(doc.ok()) << doc.status().ToString();
  EXPECT_EQ(doc->Get("schema_version").number_value(), 1.0);
  EXPECT_EQ(doc->Get("title").string_value(), "round trip");

  const obs::Json& suts = doc->Get("suts");
  ASSERT_EQ(suts.size(), 1u);
  EXPECT_EQ(suts.at(0).Get("name").string_value(), "pine-rtree");
  const obs::Json& queries = suts.at(0).Get("queries");
  ASSERT_EQ(queries.size(), 2u);
  const obs::Json& q0 = queries.at(0);
  EXPECT_EQ(q0.Get("id").string_value(), "T1");
  EXPECT_EQ(q0.Get("category").string_value(), "topological");
  EXPECT_TRUE(q0.Get("ok").bool_value());
  EXPECT_FALSE(q0.Has("error"));
  EXPECT_EQ(q0.Get("rows").number_value(), 7.0);
  EXPECT_EQ(q0.Get("checksum").string_value(), "deadbeefcafef00d");
  EXPECT_EQ(q0.Get("timing").Get("count").number_value(), 3.0);
  EXPECT_GT(q0.Get("timing").Get("p99_s").number_value(), 0.0);
  EXPECT_EQ(q0.Get("trace").Get("index_candidates").number_value(), 11.0);
  const obs::Json& q1 = queries.at(1);
  EXPECT_FALSE(q1.Get("ok").bool_value());
  EXPECT_EQ(q1.Get("error").string_value(), "boom");
  EXPECT_EQ(q1.Get("error_code").string_value(), "NotFound");

  const obs::Json& scenarios = doc->Get("scenarios");
  ASSERT_EQ(scenarios.size(), 1u);
  const obs::Json& sc = scenarios.at(0).Get("scenarios").at(0);
  EXPECT_EQ(sc.Get("id").string_value(), "S1");
  EXPECT_EQ(sc.Get("queries").size(), 1u);

  const obs::Json& ov = doc->Get("overload");
  ASSERT_EQ(ov.size(), 1u);
  EXPECT_EQ(ov.at(0).Get("queries_ok").number_value(), 100.0);
  EXPECT_EQ(ov.at(0).Get("goodput_qps").number_value(), 50.0);
  EXPECT_GT(ov.at(0).Get("latency").Get("p95_s").number_value(), 0.0);
}

TEST(ReportTest, CacheOverloadSectionRoundTripsAdditively) {
  CacheOverloadResult c;
  c.sut = "pine-rtree";
  c.clients = 8;
  c.rounds = 3;
  c.zipf_s = 1.1;
  c.on_goodput_qps = 1000.0;
  c.off_goodput_qps = 100.0;
  c.on_p95_ms = 0.5;
  c.off_p95_ms = 20.0;
  c.on_checksum = 0xabcdef0123456789ULL;
  c.off_checksum = 0xabcdef0123456789ULL;
  c.checksum_match = true;
  c.hits = 700;
  c.misses = 30;
  c.admissions = 25;
  c.rejections = 2;
  c.evictions = 1;
  c.invalidations = 4;
  c.coalesced = 6;
  c.bytes = 4096;
  c.hit_rate = 0.958;

  JsonReportInput input;
  input.title = "cache round trip";
  input.cache = {c};

  auto doc = obs::Json::Parse(RenderJsonReport(input));
  ASSERT_TRUE(doc.ok()) << doc.status().ToString();
  // Additive within schema_version 1: the section appears alongside the
  // existing ones without changing the version.
  EXPECT_EQ(doc->Get("schema_version").number_value(), 1.0);
  ASSERT_TRUE(doc->Has("cache"));
  const obs::Json& cache = doc->Get("cache");
  ASSERT_EQ(cache.size(), 1u);
  const obs::Json& e = cache.at(0);
  EXPECT_EQ(e.Get("sut").string_value(), "pine-rtree");
  EXPECT_EQ(e.Get("clients").number_value(), 8.0);
  EXPECT_EQ(e.Get("zipf_s").number_value(), 1.1);
  EXPECT_EQ(e.Get("on_goodput_qps").number_value(), 1000.0);
  EXPECT_EQ(e.Get("off_goodput_qps").number_value(), 100.0);
  // Checksums exceed double-exact range and ride as hex strings.
  EXPECT_EQ(e.Get("on_checksum").string_value(), "abcdef0123456789");
  EXPECT_EQ(e.Get("off_checksum").string_value(), "abcdef0123456789");
  EXPECT_TRUE(e.Get("checksum_match").bool_value());
  EXPECT_EQ(e.Get("hits").number_value(), 700.0);
  EXPECT_EQ(e.Get("misses").number_value(), 30.0);
  EXPECT_EQ(e.Get("coalesced").number_value(), 6.0);
  EXPECT_EQ(e.Get("hit_rate").number_value(), 0.958);
  // A run without the experiment emits an empty array, not a missing key.
  JsonReportInput empty;
  empty.title = "no cache";
  auto empty_doc = obs::Json::Parse(RenderJsonReport(empty));
  ASSERT_TRUE(empty_doc.ok());
  EXPECT_EQ(empty_doc->Get("cache").size(), 0u);
}

TEST(ReportTest, CacheOverloadTableShowsSpeedupAndVerdict) {
  CacheOverloadResult c;
  c.sut = "pine-rtree";
  c.clients = 8;
  c.zipf_s = 1.1;
  c.on_goodput_qps = 1000.0;
  c.off_goodput_qps = 100.0;
  c.checksum_match = true;
  const std::string table = RenderCacheOverloadTable("cache", {c});
  EXPECT_NE(table.find("10.00x"), std::string::npos) << table;
  EXPECT_NE(table.find("yes"), std::string::npos) << table;
}

TEST(ReportTest, OverloadTableHasP99Column) {
  OverloadResult r;
  r.sut = "pine-rtree";
  r.latency = Summarize({0.001, 0.002, 0.100});
  const std::string table = RenderOverloadTable("overload", {r});
  EXPECT_NE(table.find("p99 (ms)"), std::string::npos);
}

TEST(QueryCategoryTest, Names) {
  EXPECT_STREQ(QueryCategoryName(QueryCategory::kTopoRelation),
               "topological");
  EXPECT_STREQ(QueryCategoryName(QueryCategory::kAnalysis), "analysis");
  EXPECT_STREQ(QueryCategoryName(QueryCategory::kMacro), "macro");
}

}  // namespace
}  // namespace jackpine::core
