// Integration tests: the full benchmark pipeline — generate data, load into
// every SUT through the client API, run the micro suites and macro scenarios,
// and check the cross-SUT invariants that make the benchmark meaningful:
//  - all exact SUTs return identical results for every query;
//  - pine-mbr returns supersets on COUNT queries;
//  - index-accelerated plans return exactly what full scans return.

#include <map>

#include <gtest/gtest.h>

#include "core/loader.h"
#include "core/micro_suite.h"
#include "core/report.h"
#include "core/runner.h"
#include "core/scenarios.h"

namespace jackpine::core {
namespace {

class IntegrationTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    tigergen::TigerGenOptions gen;
    gen.scale = 0.1;
    gen.seed = 42;
    dataset_ = new tigergen::TigerDataset(tigergen::GenerateTiger(gen));
  }

  static client::Connection LoadedConnection(const std::string& sut) {
    auto config = client::SutByName(sut);
    EXPECT_TRUE(config.ok());
    client::Connection conn = client::Connection::Open(*config);
    auto timing = LoadDataset(*dataset_, &conn);
    EXPECT_TRUE(timing.ok()) << timing.status().ToString();
    EXPECT_EQ(timing->rows, dataset_->TotalRows());
    return conn;
  }

  static tigergen::TigerDataset* dataset_;
};

tigergen::TigerDataset* IntegrationTest::dataset_ = nullptr;

TEST_F(IntegrationTest, LoaderPopulatesAllTables) {
  client::Connection conn = LoadedConnection("pine-rtree");
  client::Statement stmt = conn.CreateStatement();
  const std::map<std::string, size_t> expected = {
      {"county", dataset_->counties.size()},
      {"edges", dataset_->edges.size()},
      {"pointlm", dataset_->pointlm.size()},
      {"arealm", dataset_->arealm.size()},
      {"areawater", dataset_->areawater.size()},
  };
  for (const auto& [table, rows] : expected) {
    auto rs = stmt.ExecuteQuery("SELECT COUNT(*) FROM " + table);
    ASSERT_TRUE(rs.ok()) << table;
    ASSERT_TRUE(rs->Next());
    EXPECT_EQ(*rs->GetInt64(0), static_cast<int64_t>(rows)) << table;
  }
}

TEST_F(IntegrationTest, ExactSutsAgreeOnEverything) {
  const auto topo = BuildTopologicalSuite(*dataset_);
  const auto analysis = BuildAnalysisSuite(*dataset_);
  std::vector<QuerySpec> all = topo;
  all.insert(all.end(), analysis.begin(), analysis.end());

  RunConfig config;
  config.warmup = 0;
  config.repetitions = 1;
  std::map<std::string, std::vector<RunResult>> results;
  for (const char* sut : {"pine-rtree", "pine-grid", "pine-scan"}) {
    client::Connection conn = LoadedConnection(sut);
    results[sut] = RunSuite(&conn, all, config);
  }
  for (size_t q = 0; q < all.size(); ++q) {
    const RunResult& a = results["pine-rtree"][q];
    const RunResult& b = results["pine-grid"][q];
    const RunResult& c = results["pine-scan"][q];
    ASSERT_TRUE(a.ok) << all[q].id << ": " << a.error;
    ASSERT_TRUE(b.ok) << all[q].id << ": " << b.error;
    ASSERT_TRUE(c.ok) << all[q].id << ": " << c.error;
    EXPECT_EQ(a.result_rows, c.result_rows) << all[q].id;
    EXPECT_EQ(a.checksum, c.checksum) << all[q].id << " rtree vs scan";
    EXPECT_EQ(b.checksum, c.checksum) << all[q].id << " grid vs scan";
  }
}

TEST_F(IntegrationTest, MbrSemanticsDivergeInTheDocumentedDirections) {
  // MBR-only evaluation is a superset for the envelope-monotone predicates
  // (exact intersects/within/contains/dwithin imply the MBR relation), and
  // merely *different* for contact predicates (touches, crosses, overlaps),
  // where envelope geometry can both over- and under-report. Both effects
  // must be visible on the benchmark data.
  client::Connection exact = LoadedConnection("pine-rtree");
  client::Connection mbr = LoadedConnection("pine-mbr");
  client::Statement se = exact.CreateStatement();
  client::Statement sm = mbr.CreateStatement();
  const std::vector<std::string> monotone = {
      "ST_Intersects", "ST_DWithin", "ST_Within", "ST_Contains",
      "ST_CoveredBy"};
  int divergent = 0;
  for (const QuerySpec& spec : BuildTopologicalSuite(*dataset_)) {
    auto re = se.ExecuteQuery(spec.sql);
    auto rm = sm.ExecuteQuery(spec.sql);
    ASSERT_TRUE(re.ok() && rm.ok()) << spec.id;
    if (!re->Next() || !rm->Next()) continue;
    const auto ce = re->GetInt64(0);
    const auto cm = rm->GetInt64(0);
    if (!ce.ok() || !cm.ok()) continue;  // non-COUNT query
    if (*ce != *cm) ++divergent;
    bool is_monotone = false;
    for (const std::string& fn : monotone) {
      if (spec.sql.find(fn + "(") != std::string::npos) is_monotone = true;
    }
    if (is_monotone) {
      EXPECT_GE(*cm, *ce) << spec.id << " (superset property)";
    }
  }
  // The benchmark data must actually expose the semantic difference.
  EXPECT_GE(divergent, 5);
}

TEST_F(IntegrationTest, ScenariosRunCleanlyOnAllSuts) {
  RunConfig config;
  config.warmup = 0;
  config.repetitions = 1;
  const auto scenarios = BuildScenarios(*dataset_, 42);
  ASSERT_EQ(scenarios.size(), 6u);
  for (const char* sut : {"pine-rtree", "pine-grid", "pine-scan"}) {
    client::Connection conn = LoadedConnection(sut);
    for (const Scenario& scenario : scenarios) {
      const ScenarioResult result = RunScenario(&conn, scenario, config);
      EXPECT_EQ(result.failed, 0u)
          << sut << " scenario " << scenario.id << " had failures";
      EXPECT_GT(result.queries.size(), 0u);
    }
  }
}

TEST_F(IntegrationTest, ScenarioResultsMatchAcrossExactSuts) {
  RunConfig config;
  config.warmup = 0;
  config.repetitions = 1;
  const auto scenarios = BuildScenarios(*dataset_, 42);
  client::Connection a = LoadedConnection("pine-rtree");
  client::Connection b = LoadedConnection("pine-scan");
  for (const Scenario& scenario : scenarios) {
    const ScenarioResult ra = RunScenario(&a, scenario, config);
    const ScenarioResult rb = RunScenario(&b, scenario, config);
    ASSERT_EQ(ra.queries.size(), rb.queries.size());
    for (size_t i = 0; i < ra.queries.size(); ++i) {
      EXPECT_EQ(ra.queries[i].checksum, rb.queries[i].checksum)
          << scenario.id << " query " << ra.queries[i].query_id;
    }
  }
}

TEST_F(IntegrationTest, IndexedSutsActuallyUseTheirIndexes) {
  client::Connection conn = LoadedConnection("pine-rtree");
  conn.database().ResetStats();
  client::Statement stmt = conn.CreateStatement();
  auto rs = stmt.ExecuteQuery(
      "SELECT COUNT(*) FROM edges WHERE ST_Intersects(geom, "
      "ST_MakeEnvelope(45, 45, 55, 55))");
  ASSERT_TRUE(rs.ok());
  EXPECT_GT(conn.database().stats().index_probes, 0u);
  EXPECT_EQ(conn.database().stats().rows_scanned, 0u);

  client::Connection scan = LoadedConnection("pine-scan");
  scan.database().ResetStats();
  client::Statement stmt2 = scan.CreateStatement();
  rs = stmt2.ExecuteQuery(
      "SELECT COUNT(*) FROM edges WHERE ST_Intersects(geom, "
      "ST_MakeEnvelope(45, 45, 55, 55))");
  ASSERT_TRUE(rs.ok());
  EXPECT_EQ(scan.database().stats().index_probes, 0u);
  EXPECT_EQ(scan.database().stats().rows_scanned, dataset_->edges.size());
}

TEST_F(IntegrationTest, GeocodeRoundTrip) {
  // Geocode an address, then reverse-geocode the resulting point; the
  // nearest road must be the original one.
  client::Connection conn = LoadedConnection("pine-rtree");
  client::Statement stmt = conn.CreateStatement();
  const tigergen::Edge* road = nullptr;
  for (const auto& e : dataset_->edges) {
    if (e.ltoadd > e.lfromadd) {
      road = &e;
      break;
    }
  }
  ASSERT_NE(road, nullptr);
  auto rs = stmt.ExecuteQuery(
      "SELECT ST_X(ST_LineInterpolatePoint(geom, 0.5)), "
      "ST_Y(ST_LineInterpolatePoint(geom, 0.5)) FROM edges WHERE tlid = " +
      std::to_string(road->tlid));
  ASSERT_TRUE(rs.ok());
  ASSERT_TRUE(rs->Next());
  const double x = *rs->GetDouble(0);
  const double y = *rs->GetDouble(1);

  char buf[256];
  std::snprintf(buf, sizeof(buf),
                "SELECT tlid FROM edges ORDER BY ST_Distance(geom, "
                "ST_MakePoint(%.9f, %.9f)) LIMIT 1",
                x, y);
  auto nearest = stmt.ExecuteQuery(buf);
  ASSERT_TRUE(nearest.ok());
  ASSERT_TRUE(nearest->Next());
  EXPECT_EQ(*nearest->GetInt64(0), road->tlid);
}

TEST_F(IntegrationTest, ReportRendersWithoutBlowingUp) {
  RunConfig config;
  config.warmup = 0;
  config.repetitions = 1;
  const auto suite = BuildTopologicalSuite(*dataset_);
  client::Connection a = LoadedConnection("pine-rtree");
  client::Connection b = LoadedConnection("pine-scan");
  std::vector<std::vector<RunResult>> by_sut = {
      RunSuite(&a, suite, config), RunSuite(&b, suite, config)};
  const std::string table = RenderComparisonTable("test", by_sut);
  EXPECT_NE(table.find("pine-rtree"), std::string::npos);
  EXPECT_NE(table.find("T22"), std::string::npos);
  EXPECT_NE(table.find("yes"), std::string::npos);
}

}  // namespace
}  // namespace jackpine::core
