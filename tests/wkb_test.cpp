// WKB serialisation tests: format details and round trips.

#include <gtest/gtest.h>

#include "common/random.h"
#include "geom/wkb.h"
#include "geom/wkt_reader.h"

namespace jackpine::geom {
namespace {

Geometry Wkt(const std::string& s) {
  auto r = GeometryFromWkt(s);
  EXPECT_TRUE(r.ok()) << r.status().ToString();
  return std::move(r).value();
}

Geometry RoundTrip(const Geometry& g) {
  const std::string wkb = ToWkb(g);
  auto back = FromWkb(wkb);
  EXPECT_TRUE(back.ok()) << back.status().ToString();
  return back.ok() ? std::move(back).value() : Geometry();
}

TEST(WkbTest, PointLayout) {
  const std::string wkb = ToWkb(Geometry::MakePoint(1, 2));
  ASSERT_EQ(wkb.size(), 1 + 4 + 16u);
  EXPECT_EQ(wkb[0], 1);                          // little endian
  EXPECT_EQ(static_cast<uint8_t>(wkb[1]), 1u);   // type code POINT
}

TEST(WkbTest, EmptyPointUsesNan) {
  Geometry empty = Geometry::MakeEmpty(GeometryType::kPoint);
  Geometry back = RoundTrip(empty);
  EXPECT_TRUE(back.IsEmpty());
  EXPECT_EQ(back.type(), GeometryType::kPoint);
}

TEST(WkbTest, RejectsTruncated) {
  const std::string wkb = ToWkb(Geometry::MakePoint(1, 2));
  EXPECT_FALSE(FromWkb(wkb.substr(0, wkb.size() - 1)).ok());
  EXPECT_FALSE(FromWkb("").ok());
}

TEST(WkbTest, RejectsTrailingBytes) {
  std::string wkb = ToWkb(Geometry::MakePoint(1, 2));
  wkb += '\0';
  EXPECT_FALSE(FromWkb(wkb).ok());
}

TEST(WkbTest, RejectsBadTypeCode) {
  std::string wkb = ToWkb(Geometry::MakePoint(1, 2));
  wkb[1] = 42;
  EXPECT_FALSE(FromWkb(wkb).ok());
}

TEST(WkbTest, RejectsAbsurdCounts) {
  // LINESTRING header claiming 2^31 points on a tiny buffer.
  std::string wkb;
  wkb.push_back(1);
  const uint32_t type = 2, n = 0x7fffffff;
  wkb.append(reinterpret_cast<const char*>(&type), 4);
  wkb.append(reinterpret_cast<const char*>(&n), 4);
  EXPECT_FALSE(FromWkb(wkb).ok());
}

TEST(WkbTest, BigEndianInputAccepted) {
  // Hand-built big-endian POINT (1 2).
  std::string wkb;
  wkb.push_back(0);  // big endian marker
  auto put_be32 = [&wkb](uint32_t v) {
    for (int i = 3; i >= 0; --i) wkb.push_back(static_cast<char>(v >> (8 * i)));
  };
  auto put_be64 = [&wkb](uint64_t v) {
    for (int i = 7; i >= 0; --i) wkb.push_back(static_cast<char>(v >> (8 * i)));
  };
  put_be32(1);  // POINT
  uint64_t bits;
  double d = 1.0;
  memcpy(&bits, &d, 8);
  put_be64(bits);
  d = 2.0;
  memcpy(&bits, &d, 8);
  put_be64(bits);
  auto g = FromWkb(wkb);
  ASSERT_TRUE(g.ok()) << g.status().ToString();
  EXPECT_EQ(g->AsPoint(), (Coord{1, 2}));
}

struct WkbCase {
  const char* wkt;
};

class WkbRoundTrip : public ::testing::TestWithParam<WkbCase> {};

TEST_P(WkbRoundTrip, Stable) {
  Geometry g = Wkt(GetParam().wkt);
  Geometry back = RoundTrip(g);
  EXPECT_TRUE(g.ExactlyEquals(back)) << GetParam().wkt;
}

INSTANTIATE_TEST_SUITE_P(
    Corpus, WkbRoundTrip,
    ::testing::Values(
        WkbCase{"POINT (1 2)"}, WkbCase{"LINESTRING (0 0, 1 1, 2 0)"},
        WkbCase{"POLYGON ((0 0, 10 0, 10 10, 0 10, 0 0))"},
        WkbCase{"POLYGON ((0 0, 10 0, 10 10, 0 10, 0 0), "
                "(2 2, 2 4, 4 4, 4 2, 2 2))"},
        WkbCase{"MULTIPOINT ((1 2), (3 4))"},
        WkbCase{"MULTILINESTRING ((0 0, 1 1), (2 2, 3 3))"},
        WkbCase{"MULTIPOLYGON (((0 0, 1 0, 1 1, 0 1, 0 0)))"},
        WkbCase{"GEOMETRYCOLLECTION (POINT (1 2), "
                "LINESTRING (0 0, 1 1))"},
        WkbCase{"LINESTRING EMPTY"}, WkbCase{"POLYGON EMPTY"}));

// Empty geometries of every type survive the trip with their type intact —
// the wire protocol ships every geometry column as WKB, so an empty result
// of ST_Intersection must come back as the same kind of emptiness.
class WkbEmptyRoundTrip : public ::testing::TestWithParam<const char*> {};

TEST_P(WkbEmptyRoundTrip, TypePreserved) {
  Geometry g = Wkt(GetParam());
  ASSERT_TRUE(g.IsEmpty()) << GetParam();
  Geometry back = RoundTrip(g);
  EXPECT_TRUE(back.IsEmpty()) << GetParam();
  EXPECT_EQ(back.type(), g.type()) << GetParam();
  EXPECT_TRUE(g.ExactlyEquals(back)) << GetParam();
}

INSTANTIATE_TEST_SUITE_P(AllTypes, WkbEmptyRoundTrip,
                         ::testing::Values("POINT EMPTY", "LINESTRING EMPTY",
                                           "POLYGON EMPTY",
                                           "MULTIPOINT EMPTY",
                                           "MULTILINESTRING EMPTY",
                                           "MULTIPOLYGON EMPTY",
                                           "GEOMETRYCOLLECTION EMPTY"));

TEST(WkbTest, CollectionOfEveryType) {
  Geometry g = Wkt(
      "GEOMETRYCOLLECTION (POINT (1 2), LINESTRING (0 0, 1 1, 2 0), "
      "POLYGON ((0 0, 10 0, 10 10, 0 10, 0 0), (2 2, 2 4, 4 4, 4 2, 2 2)), "
      "MULTIPOINT ((5 6), (7 8)), "
      "MULTILINESTRING ((0 0, 1 1), (2 2, 3 3)), "
      "MULTIPOLYGON (((0 0, 1 0, 1 1, 0 1, 0 0))))");
  Geometry back = RoundTrip(g);
  EXPECT_TRUE(g.ExactlyEquals(back));
}

TEST(WkbTest, NestedCollections) {
  Geometry g = Wkt(
      "GEOMETRYCOLLECTION (GEOMETRYCOLLECTION (POINT (1 2), "
      "GEOMETRYCOLLECTION (LINESTRING (0 0, 1 1))), POINT (9 9))");
  Geometry back = RoundTrip(g);
  EXPECT_TRUE(g.ExactlyEquals(back));
}

TEST(WkbTest, CollectionWithEmptyMembers) {
  Geometry g = Wkt(
      "GEOMETRYCOLLECTION (POINT EMPTY, LINESTRING (0 0, 1 1), "
      "POLYGON EMPTY, GEOMETRYCOLLECTION EMPTY)");
  Geometry back = RoundTrip(g);
  EXPECT_TRUE(g.ExactlyEquals(back));
}

TEST(WkbRoundTripRandom, RandomGeometries) {
  jackpine::Rng rng(99);
  for (int iter = 0; iter < 40; ++iter) {
    // Random multipoint of random size.
    std::vector<Geometry> pts;
    const int n = static_cast<int>(rng.NextInt(1, 12));
    for (int i = 0; i < n; ++i) {
      pts.push_back(Geometry::MakePoint(rng.NextDouble(-1e6, 1e6),
                                        rng.NextDouble(-1e6, 1e6)));
    }
    auto mp = Geometry::MakeMultiPoint(pts);
    ASSERT_TRUE(mp.ok());
    Geometry back = RoundTrip(*mp);
    EXPECT_TRUE(mp->ExactlyEquals(back));
  }
}

}  // namespace
}  // namespace jackpine::geom
