// Tests for the overlay (boolean) operations: polygon clipping via
// Greiner-Hormann, line/area clipping, point-set ops, and the area-
// conservation properties that pin down correctness.

#include <gtest/gtest.h>

#include "algo/measures.h"
#include "algo/overlay.h"
#include "common/random.h"
#include "geom/wkt_reader.h"

namespace jackpine::algo {
namespace {

using geom::Geometry;
using geom::GeometryFromWkt;
using geom::GeometryType;

Geometry Wkt(const std::string& s) {
  auto r = GeometryFromWkt(s);
  EXPECT_TRUE(r.ok()) << r.status().ToString();
  return std::move(r).value();
}

Geometry Op(const Geometry& a, const Geometry& b, OverlayOp op) {
  auto r = Overlay(a, b, op);
  EXPECT_TRUE(r.ok()) << r.status().ToString();
  return r.ok() ? std::move(r).value() : Geometry();
}

constexpr double kAreaTol = 1e-6;

TEST(OverlayTest, RectangleIntersection) {
  Geometry a = Wkt("POLYGON ((0 0, 4 0, 4 4, 0 4, 0 0))");
  Geometry b = Wkt("POLYGON ((2 2, 6 2, 6 6, 2 6, 2 2))");
  Geometry i = Op(a, b, OverlayOp::kIntersection);
  EXPECT_NEAR(Area(i), 4.0, kAreaTol);
  EXPECT_EQ(i.Dimension(), 2);
}

TEST(OverlayTest, RectangleUnionDissolves) {
  Geometry a = Wkt("POLYGON ((0 0, 4 0, 4 4, 0 4, 0 0))");
  Geometry b = Wkt("POLYGON ((2 2, 6 2, 6 6, 2 6, 2 2))");
  Geometry u = Op(a, b, OverlayOp::kUnion);
  EXPECT_NEAR(Area(u), 16 + 16 - 4, kAreaTol);
  EXPECT_EQ(u.type(), GeometryType::kPolygon);  // one dissolved piece
}

TEST(OverlayTest, Difference) {
  Geometry a = Wkt("POLYGON ((0 0, 4 0, 4 4, 0 4, 0 0))");
  Geometry b = Wkt("POLYGON ((2 2, 6 2, 6 6, 2 6, 2 2))");
  EXPECT_NEAR(Area(Op(a, b, OverlayOp::kDifference)), 12.0, kAreaTol);
  EXPECT_NEAR(Area(Op(b, a, OverlayOp::kDifference)), 12.0, kAreaTol);
}

TEST(OverlayTest, SymDifference) {
  Geometry a = Wkt("POLYGON ((0 0, 4 0, 4 4, 0 4, 0 0))");
  Geometry b = Wkt("POLYGON ((2 2, 6 2, 6 6, 2 6, 2 2))");
  EXPECT_NEAR(Area(Op(a, b, OverlayOp::kSymDifference)), 24.0, kAreaTol);
}

TEST(OverlayTest, DisjointPolygons) {
  Geometry a = Wkt("POLYGON ((0 0, 1 0, 1 1, 0 1, 0 0))");
  Geometry b = Wkt("POLYGON ((5 5, 6 5, 6 6, 5 6, 5 5))");
  EXPECT_TRUE(Op(a, b, OverlayOp::kIntersection).IsEmpty());
  Geometry u = Op(a, b, OverlayOp::kUnion);
  EXPECT_EQ(u.type(), GeometryType::kMultiPolygon);
  EXPECT_NEAR(Area(u), 2.0, kAreaTol);
  EXPECT_NEAR(Area(Op(a, b, OverlayOp::kDifference)), 1.0, kAreaTol);
}

TEST(OverlayTest, ContainedPolygonDifferenceMakesHole) {
  Geometry outer = Wkt("POLYGON ((0 0, 10 0, 10 10, 0 10, 0 0))");
  Geometry inner = Wkt("POLYGON ((4 4, 6 4, 6 6, 4 6, 4 4))");
  Geometry d = Op(outer, inner, OverlayOp::kDifference);
  EXPECT_NEAR(Area(d), 96.0, kAreaTol);
  ASSERT_EQ(d.type(), GeometryType::kPolygon);
  EXPECT_EQ(d.AsPolygon().holes.size(), 1u);
  // And the fully-consumed direction.
  EXPECT_TRUE(Op(inner, outer, OverlayOp::kDifference).IsEmpty());
  // Intersection with containment.
  EXPECT_NEAR(Area(Op(outer, inner, OverlayOp::kIntersection)), 4.0,
              kAreaTol);
  // Union with containment.
  EXPECT_NEAR(Area(Op(outer, inner, OverlayOp::kUnion)), 100.0, kAreaTol);
}

TEST(OverlayTest, SharedEdgeDegenerateHandledByPerturbation) {
  // Two squares sharing the x=2 edge: classic Greiner-Hormann killer.
  Geometry a = Wkt("POLYGON ((0 0, 2 0, 2 2, 0 2, 0 0))");
  Geometry b = Wkt("POLYGON ((2 0, 4 0, 4 2, 2 2, 2 0))");
  Geometry u = Op(a, b, OverlayOp::kUnion);
  EXPECT_NEAR(Area(u), 8.0, 1e-3);
  Geometry i = Op(a, b, OverlayOp::kIntersection);
  EXPECT_NEAR(Area(i), 0.0, 1e-3);
}

TEST(OverlayTest, IdenticalPolygons) {
  Geometry a = Wkt("POLYGON ((0 0, 3 0, 3 3, 0 3, 0 0))");
  EXPECT_NEAR(Area(Op(a, a, OverlayOp::kIntersection)), 9.0, 1e-3);
  EXPECT_NEAR(Area(Op(a, a, OverlayOp::kUnion)), 9.0, 1e-3);
  EXPECT_NEAR(Area(Op(a, a, OverlayOp::kDifference)), 0.0, 1e-3);
}

TEST(OverlayTest, NonConvexIntersection) {
  // L-shape clipped by a square spanning the notch.
  Geometry l = Wkt("POLYGON ((0 0, 4 0, 4 2, 2 2, 2 4, 0 4, 0 0))");
  Geometry s = Wkt("POLYGON ((1 1, 3 1, 3 3, 1 3, 1 1))");
  Geometry i = Op(l, s, OverlayOp::kIntersection);
  EXPECT_NEAR(Area(i), 3.0, kAreaTol);  // square minus the notch quarter
}

TEST(OverlayTest, HoleInOperand) {
  Geometry donut = Wkt(
      "POLYGON ((0 0, 10 0, 10 10, 0 10, 0 0), (3 3, 3 7, 7 7, 7 3, 3 3))");
  Geometry clip = Wkt("POLYGON ((2 2, 8 2, 8 8, 2 8, 2 2))");
  Geometry i = Op(donut, clip, OverlayOp::kIntersection);
  EXPECT_NEAR(Area(i), 36.0 - 16.0, 1e-3);
}

TEST(OverlayTest, EmptyOperands) {
  Geometry a = Wkt("POLYGON ((0 0, 1 0, 1 1, 0 1, 0 0))");
  Geometry empty = Geometry::MakeEmpty(GeometryType::kPolygon);
  EXPECT_TRUE(Op(a, empty, OverlayOp::kIntersection).IsEmpty());
  EXPECT_NEAR(Area(Op(a, empty, OverlayOp::kUnion)), 1.0, kAreaTol);
  EXPECT_NEAR(Area(Op(a, empty, OverlayOp::kDifference)), 1.0, kAreaTol);
  EXPECT_NEAR(Area(Op(empty, a, OverlayOp::kDifference)), 0.0, kAreaTol);
}

TEST(OverlayTest, LineClippedToArea) {
  Geometry line = Wkt("LINESTRING (-2 1, 6 1)");
  Geometry box = Wkt("POLYGON ((0 0, 4 0, 4 4, 0 4, 0 0))");
  Geometry inside = Op(line, box, OverlayOp::kIntersection);
  EXPECT_NEAR(Length(inside), 4.0, kAreaTol);
  Geometry outside = Op(line, box, OverlayOp::kDifference);
  EXPECT_NEAR(Length(outside), 4.0, kAreaTol);
  // Conservation: inside + outside = whole line.
  EXPECT_NEAR(Length(inside) + Length(outside), Length(line), kAreaTol);
}

TEST(OverlayTest, LineAreaUnionIsCollection) {
  Geometry line = Wkt("LINESTRING (-2 1, 6 1)");
  Geometry box = Wkt("POLYGON ((0 0, 4 0, 4 4, 0 4, 0 0))");
  Geometry u = Op(line, box, OverlayOp::kUnion);
  EXPECT_EQ(u.type(), GeometryType::kGeometryCollection);
  EXPECT_NEAR(Area(u), 16.0, kAreaTol);
  EXPECT_NEAR(Length(u), 4.0, kAreaTol);  // only the part outside the box
}

TEST(OverlayTest, PolygonMinusLineIsUnchanged) {
  Geometry line = Wkt("LINESTRING (-2 1, 6 1)");
  Geometry box = Wkt("POLYGON ((0 0, 4 0, 4 4, 0 4, 0 0))");
  Geometry d = Op(box, line, OverlayOp::kDifference);
  EXPECT_NEAR(Area(d), 16.0, kAreaTol);
}

TEST(OverlayTest, LineLineIntersectionPointsAndOverlaps) {
  Geometry a = Wkt("LINESTRING (0 0, 4 4)");
  Geometry b = Wkt("LINESTRING (0 4, 4 0)");
  Geometry i = Op(a, b, OverlayOp::kIntersection);
  EXPECT_EQ(i.Dimension(), 0);  // single crossing point
  Geometry c = Wkt("LINESTRING (1 1, 6 6)");
  Geometry overlap = Op(a, c, OverlayOp::kIntersection);
  EXPECT_EQ(overlap.Dimension(), 1);
  EXPECT_NEAR(Length(overlap), std::sqrt(18.0), 1e-6);
}

TEST(OverlayTest, LineLineDifference) {
  Geometry a = Wkt("LINESTRING (0 0, 4 0)");
  Geometry b = Wkt("LINESTRING (1 0, 2 0)");
  Geometry d = Op(a, b, OverlayOp::kDifference);
  EXPECT_NEAR(Length(d), 3.0, 1e-9);
}

TEST(OverlayTest, PointOps) {
  Geometry pts = Wkt("MULTIPOINT ((1 1), (5 5))");
  Geometry box = Wkt("POLYGON ((0 0, 2 0, 2 2, 0 2, 0 0))");
  Geometry i = Op(pts, box, OverlayOp::kIntersection);
  EXPECT_EQ(i.NumPoints(), 1u);
  Geometry d = Op(pts, box, OverlayOp::kDifference);
  EXPECT_EQ(d.NumPoints(), 1u);
  EXPECT_EQ(d.Leaves()[0].AsPoint(), (geom::Coord{5, 5}));
}

TEST(OverlayTest, UnionAllDissolvesChain) {
  // Three overlapping unit squares in a row.
  std::vector<Geometry> squares;
  for (int i = 0; i < 3; ++i) {
    squares.push_back(Geometry::MakeRectangle(
        geom::Envelope(i * 0.5, 0, i * 0.5 + 1, 1)));
  }
  auto u = UnionAll(squares);
  ASSERT_TRUE(u.ok()) << u.status().ToString();
  EXPECT_NEAR(Area(*u), 2.0, 1e-3);
  EXPECT_EQ(u->type(), GeometryType::kPolygon);
}

TEST(OverlayTest, UnionAllKeepsDisjointParts) {
  std::vector<Geometry> squares = {
      Geometry::MakeRectangle(geom::Envelope(0, 0, 1, 1)),
      Geometry::MakeRectangle(geom::Envelope(5, 5, 6, 6)),
  };
  auto u = UnionAll(squares);
  ASSERT_TRUE(u.ok());
  EXPECT_EQ(u->type(), GeometryType::kMultiPolygon);
  EXPECT_NEAR(Area(*u), 2.0, 1e-9);
}

TEST(OverlayTest, CollectionOperandsRejected) {
  Geometry c = Geometry::MakeCollection({Geometry::MakePoint(0, 0)});
  Geometry box = Geometry::MakeRectangle(geom::Envelope(0, 0, 1, 1));
  EXPECT_FALSE(Overlay(c, box, OverlayOp::kIntersection).ok());
}

// --- Property sweep: area conservation on random rectangles ----------------

class OverlayConservation : public ::testing::TestWithParam<int> {};

TEST_P(OverlayConservation, PartitionIdentity) {
  jackpine::Rng rng(static_cast<uint64_t>(GetParam()));
  for (int iter = 0; iter < 20; ++iter) {
    auto random_box = [&rng]() {
      const double x = rng.NextDouble(0, 10);
      const double y = rng.NextDouble(0, 10);
      return Geometry::MakeRectangle(geom::Envelope(
          x, y, x + rng.NextDouble(0.5, 6), y + rng.NextDouble(0.5, 6)));
    };
    Geometry a = random_box();
    Geometry b = random_box();
    auto i = Overlay(a, b, OverlayOp::kIntersection);
    auto d = Overlay(a, b, OverlayOp::kDifference);
    auto u = Overlay(a, b, OverlayOp::kUnion);
    ASSERT_TRUE(i.ok() && d.ok() && u.ok());
    // area(A) = area(A n B) + area(A - B)
    EXPECT_NEAR(Area(a), Area(*i) + Area(*d), 1e-4);
    // area(A u B) = area(A) + area(B) - area(A n B)
    EXPECT_NEAR(Area(*u), Area(a) + Area(b) - Area(*i), 1e-4);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, OverlayConservation,
                         ::testing::Values(1, 2, 3, 4, 5));

}  // namespace
}  // namespace jackpine::algo
