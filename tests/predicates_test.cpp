// Tests for the named OGC predicates, their axioms (property sweeps), and
// the MBR-only evaluation mode.

#include <gtest/gtest.h>

#include "common/random.h"
#include "geom/wkt_reader.h"
#include "topo/predicates.h"

namespace jackpine::topo {
namespace {

using geom::Envelope;
using geom::Geometry;

Geometry Wkt(const std::string& s) {
  auto r = geom::GeometryFromWkt(s);
  EXPECT_TRUE(r.ok()) << r.status().ToString();
  return std::move(r).value();
}

TEST(PredicatesTest, NamesRoundTrip) {
  for (auto kind :
       {PredicateKind::kEquals, PredicateKind::kDisjoint,
        PredicateKind::kIntersects, PredicateKind::kTouches,
        PredicateKind::kCrosses, PredicateKind::kWithin,
        PredicateKind::kContains, PredicateKind::kOverlaps,
        PredicateKind::kCovers, PredicateKind::kCoveredBy}) {
    const auto back = PredicateFromName(PredicateName(kind));
    ASSERT_TRUE(back.has_value());
    EXPECT_EQ(*back, kind);
  }
  EXPECT_TRUE(PredicateFromName("intersects").has_value());
  EXPECT_TRUE(PredicateFromName("ST_INTERSECTS").has_value());
  EXPECT_FALSE(PredicateFromName("st_frobnicates").has_value());
}

TEST(PredicatesTest, BasicTruths) {
  Geometry box = Wkt("POLYGON ((0 0, 4 0, 4 4, 0 4, 0 0))");
  Geometry inner = Wkt("POLYGON ((1 1, 2 1, 2 2, 1 2, 1 1))");
  Geometry far = Wkt("POLYGON ((10 10, 11 10, 11 11, 10 11, 10 10))");
  Geometry overlapping = Wkt("POLYGON ((3 3, 6 3, 6 6, 3 6, 3 3))");

  EXPECT_TRUE(Within(inner, box));
  EXPECT_TRUE(Contains(box, inner));
  EXPECT_FALSE(Within(box, inner));
  EXPECT_TRUE(Intersects(box, inner));
  EXPECT_TRUE(Disjoint(box, far));
  EXPECT_FALSE(Intersects(box, far));
  EXPECT_TRUE(Overlaps(box, overlapping));
  EXPECT_FALSE(Overlaps(box, inner));  // containment is not overlap
  EXPECT_TRUE(Equals(box, box));
  EXPECT_FALSE(Equals(box, inner));
}

TEST(PredicatesTest, TouchesVariants) {
  Geometry a = Wkt("POLYGON ((0 0, 2 0, 2 2, 0 2, 0 0))");
  Geometry edge_neighbor = Wkt("POLYGON ((2 0, 4 0, 4 2, 2 2, 2 0))");
  Geometry corner_neighbor = Wkt("POLYGON ((2 2, 3 2, 3 3, 2 3, 2 2))");
  EXPECT_TRUE(Touches(a, edge_neighbor));
  EXPECT_TRUE(Touches(a, corner_neighbor));
  EXPECT_FALSE(Touches(a, a));  // interiors intersect
  // A line ending on the boundary touches the polygon.
  EXPECT_TRUE(Touches(Wkt("LINESTRING (2 1, 5 1)"), a));
  // A line passing through does not.
  EXPECT_FALSE(Touches(Wkt("LINESTRING (-1 1, 5 1)"), a));
}

TEST(PredicatesTest, CrossesVariants) {
  Geometry box = Wkt("POLYGON ((0 0, 4 0, 4 4, 0 4, 0 0))");
  EXPECT_TRUE(Crosses(Wkt("LINESTRING (-1 2, 5 2)"), box));
  EXPECT_TRUE(Crosses(box, Wkt("LINESTRING (-1 2, 5 2)")));  // reversed dims
  EXPECT_FALSE(Crosses(Wkt("LINESTRING (1 1, 2 2)"), box));  // within
  // Line/line crossing requires a 0-dim interior intersection.
  EXPECT_TRUE(Crosses(Wkt("LINESTRING (0 0, 2 2)"),
                      Wkt("LINESTRING (0 2, 2 0)")));
  EXPECT_FALSE(Crosses(Wkt("LINESTRING (0 0, 2 0)"),
                       Wkt("LINESTRING (1 0, 3 0)")));  // 1-dim overlap
  // Same-dimension areas never cross.
  EXPECT_FALSE(Crosses(box, box));
}

TEST(PredicatesTest, CoversIsLaxerThanContains) {
  Geometry box = Wkt("POLYGON ((0 0, 4 0, 4 4, 0 4, 0 0))");
  Geometry boundary_point = Wkt("POINT (4 2)");
  // The boundary point is covered but not contained (no interior contact).
  EXPECT_TRUE(Covers(box, boundary_point));
  EXPECT_FALSE(Contains(box, boundary_point));
  EXPECT_TRUE(CoveredBy(boundary_point, box));
  // An interior point is both.
  EXPECT_TRUE(Covers(box, Wkt("POINT (2 2)")));
  EXPECT_TRUE(Contains(box, Wkt("POINT (2 2)")));
}

TEST(PredicatesTest, EqualsIsTopologicalNotStructural) {
  // Same ring, different starting vertex.
  Geometry a = Wkt("POLYGON ((0 0, 4 0, 4 4, 0 4, 0 0))");
  Geometry b = Wkt("POLYGON ((4 0, 4 4, 0 4, 0 0, 4 0))");
  EXPECT_TRUE(Equals(a, b));
}

TEST(PredicatesTest, EmptyBehaviour) {
  Geometry empty = Geometry::MakeEmpty(geom::GeometryType::kPolygon);
  Geometry box = Wkt("POLYGON ((0 0, 1 0, 1 1, 0 1, 0 0))");
  EXPECT_TRUE(Disjoint(empty, box));
  EXPECT_FALSE(Intersects(empty, box));
  EXPECT_FALSE(Within(empty, box));
  EXPECT_TRUE(Equals(empty, Geometry::MakeEmpty(geom::GeometryType::kPoint)));
}

// --- Axiom sweeps on random rectangles -------------------------------------

class PredicateAxioms : public ::testing::TestWithParam<uint64_t> {};

TEST_P(PredicateAxioms, HoldOnRandomBoxes) {
  jackpine::Rng rng(GetParam());
  for (int iter = 0; iter < 40; ++iter) {
    auto random_geometry = [&rng]() -> Geometry {
      const double x = rng.NextDouble(0, 8);
      const double y = rng.NextDouble(0, 8);
      switch (rng.NextBounded(3)) {
        case 0:
          return Geometry::MakePoint(x, y);
        case 1: {
          auto line = Geometry::MakeLineString(
              {{x, y}, {x + rng.NextDouble(0.1, 3), y + rng.NextDouble(0.1, 3)}});
          return std::move(line).value();
        }
        default:
          return Geometry::MakeRectangle(Envelope(
              x, y, x + rng.NextDouble(0.5, 4), y + rng.NextDouble(0.5, 4)));
      }
    };
    const Geometry a = random_geometry();
    const Geometry b = random_geometry();

    // Disjoint is the negation of Intersects.
    EXPECT_NE(Disjoint(a, b), Intersects(a, b));
    // Symmetry of the symmetric predicates.
    EXPECT_EQ(Intersects(a, b), Intersects(b, a));
    EXPECT_EQ(Disjoint(a, b), Disjoint(b, a));
    EXPECT_EQ(Touches(a, b), Touches(b, a));
    EXPECT_EQ(Equals(a, b), Equals(b, a));
    EXPECT_EQ(Overlaps(a, b), Overlaps(b, a));
    // Duality.
    EXPECT_EQ(Within(a, b), Contains(b, a));
    EXPECT_EQ(CoveredBy(a, b), Covers(b, a));
    // Within implies intersects and coveredby.
    if (Within(a, b)) {
      EXPECT_TRUE(Intersects(a, b));
      EXPECT_TRUE(CoveredBy(a, b));
    }
    // Touches implies intersects but not overlap.
    if (Touches(a, b)) {
      EXPECT_TRUE(Intersects(a, b));
      EXPECT_FALSE(Overlaps(a, b));
    }
    // Everything equals itself and is within/covered by itself.
    EXPECT_TRUE(Equals(a, a));
    EXPECT_TRUE(Within(a, a));
    EXPECT_TRUE(Covers(a, a));
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, PredicateAxioms,
                         ::testing::Values(11, 22, 33, 44, 55, 66));

// --- MBR-only mode -----------------------------------------------------------

TEST(MbrModeTest, IntersectsDegradesToEnvelopeOverlap) {
  // Two diagonal "staircase" lines whose envelopes overlap but which never
  // meet.
  Geometry a = Wkt("LINESTRING (0 0, 1 3)");
  Geometry b = Wkt("LINESTRING (1 0, 2 1)");
  EXPECT_FALSE(
      EvalPredicate(PredicateKind::kIntersects, a, b, PredicateMode::kExact));
  EXPECT_TRUE(EvalPredicate(PredicateKind::kIntersects, a, b,
                            PredicateMode::kMbrOnly));
}

TEST(MbrModeTest, MbrResultsAreSupersets) {
  jackpine::Rng rng(123);
  for (int iter = 0; iter < 60; ++iter) {
    const double x = rng.NextDouble(0, 8);
    const double y = rng.NextDouble(0, 8);
    Geometry a = Geometry::MakeRectangle(
        Envelope(x, y, x + rng.NextDouble(0.5, 4), y + rng.NextDouble(0.5, 4)));
    auto line = Geometry::MakeLineString(
        {{rng.NextDouble(0, 8), rng.NextDouble(0, 8)},
         {rng.NextDouble(0, 8), rng.NextDouble(0, 8)}});
    Geometry b = std::move(line).value();
    // For rectangles vs arbitrary geometry, exact-intersects implies
    // MBR-intersects (the filter step is sound).
    if (EvalPredicate(PredicateKind::kIntersects, a, b,
                      PredicateMode::kExact)) {
      EXPECT_TRUE(EvalPredicate(PredicateKind::kIntersects, a, b,
                                PredicateMode::kMbrOnly));
    }
    if (EvalPredicate(PredicateKind::kWithin, b, a, PredicateMode::kExact)) {
      EXPECT_TRUE(
          EvalPredicate(PredicateKind::kWithin, b, a, PredicateMode::kMbrOnly));
    }
  }
}

TEST(MbrModeTest, RectanglesAgreeBetweenModes) {
  // For axis-aligned rectangles the MBR is the geometry, so the two modes
  // must agree on every predicate.
  Geometry a = Geometry::MakeRectangle(Envelope(0, 0, 4, 4));
  Geometry b = Geometry::MakeRectangle(Envelope(2, 2, 6, 6));
  Geometry c = Geometry::MakeRectangle(Envelope(3, 0, 8, 4));
  for (auto kind : {PredicateKind::kEquals, PredicateKind::kIntersects,
                    PredicateKind::kWithin, PredicateKind::kContains,
                    PredicateKind::kOverlaps, PredicateKind::kDisjoint}) {
    EXPECT_EQ(EvalPredicate(kind, a, b, PredicateMode::kExact),
              EvalPredicate(kind, a, b, PredicateMode::kMbrOnly))
        << PredicateName(kind);
    EXPECT_EQ(EvalPredicate(kind, a, c, PredicateMode::kExact),
              EvalPredicate(kind, a, c, PredicateMode::kMbrOnly))
        << PredicateName(kind);
  }
  // Edge-touching rectangles are the one rectangle case where the modes
  // diverge: exact Touches/not-Overlaps vs MBR-Overlaps (MySQL's MBROverlaps
  // counts boundary contact).
  Geometry t = Geometry::MakeRectangle(Envelope(4, 0, 8, 4));
  EXPECT_FALSE(
      EvalPredicate(PredicateKind::kOverlaps, a, t, PredicateMode::kExact));
  EXPECT_TRUE(
      EvalPredicate(PredicateKind::kOverlaps, a, t, PredicateMode::kMbrOnly));
}

}  // namespace
}  // namespace jackpine::topo
