// Tests for the DE-9IM matrix type and pattern matching.

#include <gtest/gtest.h>

#include "topo/de9im.h"

namespace jackpine::topo {
namespace {

TEST(De9imMatrixTest, StartsAllFalse) {
  De9imMatrix m;
  EXPECT_EQ(m.ToString(), "FFFFFFFFF");
  EXPECT_TRUE(m.Matches("FFFFFFFFF"));
  EXPECT_TRUE(m.Matches("*********"));
  EXPECT_FALSE(m.Matches("T********"));
}

TEST(De9imMatrixTest, SetAndToString) {
  De9imMatrix m;
  m.Set(kInterior, kInterior, 2);
  m.Set(kInterior, kBoundary, 1);
  m.Set(kBoundary, kBoundary, 0);
  m.Set(kExterior, kExterior, 2);
  EXPECT_EQ(m.ToString(), "21FF0FFF2");
}

TEST(De9imMatrixTest, SetAtLeastOnlyGrows) {
  De9imMatrix m;
  m.SetAtLeast(kInterior, kInterior, 1);
  m.SetAtLeast(kInterior, kInterior, 0);
  EXPECT_EQ(m.At(kInterior, kInterior), 1);
  m.SetAtLeast(kInterior, kInterior, 2);
  EXPECT_EQ(m.At(kInterior, kInterior), 2);
}

TEST(De9imMatrixTest, PatternSemantics) {
  De9imMatrix m;
  m.Set(kInterior, kInterior, 2);
  m.Set(kExterior, kExterior, 2);
  EXPECT_TRUE(m.Matches("T*******2"));
  EXPECT_TRUE(m.Matches("2*F******"));
  EXPECT_FALSE(m.Matches("1********"));
  EXPECT_FALSE(m.Matches("F********"));
  EXPECT_TRUE(m.Matches("t********"));  // lowercase accepted
  EXPECT_TRUE(m.Matches("*fffffff*"));
}

TEST(De9imMatrixTest, PatternRejectsBadInput) {
  De9imMatrix m;
  EXPECT_FALSE(m.Matches(""));
  EXPECT_FALSE(m.Matches("FFFF"));
  EXPECT_FALSE(m.Matches("FFFFFFFFFF"));
  EXPECT_FALSE(m.Matches("XFFFFFFFF"));
}

TEST(De9imMatrixTest, Transposed) {
  De9imMatrix m;
  m.Set(kInterior, kBoundary, 1);
  m.Set(kBoundary, kExterior, 0);
  De9imMatrix t = m.Transposed();
  EXPECT_EQ(t.At(kBoundary, kInterior), 1);
  EXPECT_EQ(t.At(kExterior, kBoundary), 0);
  EXPECT_EQ(t.At(kInterior, kBoundary), De9imMatrix::kDimFalse);
  EXPECT_EQ(m, t.Transposed());
}

TEST(De9imMatrixTest, Equality) {
  De9imMatrix a, b;
  EXPECT_EQ(a, b);
  a.Set(kInterior, kInterior, 0);
  EXPECT_FALSE(a == b);
}

}  // namespace
}  // namespace jackpine::topo
