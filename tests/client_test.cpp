// Tests for the JDBC-like client layer and the SUT registry.

#include <chrono>
#include <thread>

#include <gtest/gtest.h>

#include "client/circuit_breaker.h"
#include "client/client.h"

namespace jackpine::client {
namespace {

// --- Circuit breaker ---------------------------------------------------

Status TransportFailure() { return Status::Unavailable("connect refused"); }

TEST(CircuitBreakerTest, OpensAfterConsecutiveTransportFailures) {
  CircuitBreakerOptions options;
  options.failure_threshold = 3;
  options.open_duration_s = 60.0;  // long enough to never half-open here
  CircuitBreaker breaker(options);

  EXPECT_TRUE(breaker.Admit().ok());
  breaker.OnFailure(TransportFailure());
  breaker.OnFailure(TransportFailure());
  EXPECT_EQ(breaker.state(), CircuitBreaker::State::kClosed);
  EXPECT_TRUE(breaker.Admit().ok());
  breaker.OnFailure(TransportFailure());
  EXPECT_EQ(breaker.state(), CircuitBreaker::State::kOpen);
  EXPECT_EQ(breaker.opens(), 1u);

  const Status refused = breaker.Admit();
  ASSERT_FALSE(refused.ok());
  EXPECT_TRUE(IsBreakerFastFail(refused)) << refused.ToString();
  EXPECT_GT(refused.retry_after_ms(), 0u);
  EXPECT_EQ(breaker.fast_fails(), 1u);
}

TEST(CircuitBreakerTest, SuccessResetsTheStreak) {
  CircuitBreakerOptions options;
  options.failure_threshold = 3;
  CircuitBreaker breaker(options);
  breaker.OnFailure(TransportFailure());
  breaker.OnFailure(TransportFailure());
  breaker.OnSuccess();
  breaker.OnFailure(TransportFailure());
  breaker.OnFailure(TransportFailure());
  EXPECT_EQ(breaker.state(), CircuitBreaker::State::kClosed);
  EXPECT_EQ(breaker.consecutive_failures(), 2);
}

TEST(CircuitBreakerTest, ShedsAndDeterministicErrorsDoNotTrip) {
  CircuitBreakerOptions options;
  options.failure_threshold = 2;
  CircuitBreaker breaker(options);
  Status shed = Status::ResourceExhausted("server overloaded");
  shed.set_retry_after_ms(250);
  for (int i = 0; i < 5; ++i) breaker.OnFailure(shed);
  for (int i = 0; i < 5; ++i) {
    breaker.OnFailure(Status::InvalidArgument("bad sql"));
  }
  // Nor do the breaker's own fast-fails feed back into the streak.
  Status fast_fail = Status::Unavailable("circuit breaker open");
  fast_fail.set_retry_after_ms(100);
  for (int i = 0; i < 5; ++i) breaker.OnFailure(fast_fail);
  EXPECT_EQ(breaker.state(), CircuitBreaker::State::kClosed);
  EXPECT_EQ(breaker.consecutive_failures(), 0);
}

TEST(CircuitBreakerTest, HalfOpenAdmitsOneProbeAndClosesOnSuccess) {
  CircuitBreakerOptions options;
  options.failure_threshold = 1;
  options.open_duration_s = 0.05;
  CircuitBreaker breaker(options);
  breaker.OnFailure(TransportFailure());
  ASSERT_EQ(breaker.state(), CircuitBreaker::State::kOpen);
  ASSERT_FALSE(breaker.Admit().ok());

  std::this_thread::sleep_for(std::chrono::milliseconds(80));
  EXPECT_TRUE(breaker.Admit().ok());  // the probe
  EXPECT_EQ(breaker.state(), CircuitBreaker::State::kHalfOpen);
  EXPECT_FALSE(breaker.Admit().ok());  // one probe at a time
  breaker.OnSuccess();
  EXPECT_EQ(breaker.state(), CircuitBreaker::State::kClosed);
  EXPECT_TRUE(breaker.Admit().ok());
}

TEST(CircuitBreakerTest, ProbeFailureReopensForAFreshCooldown) {
  CircuitBreakerOptions options;
  options.failure_threshold = 1;
  options.open_duration_s = 0.05;
  CircuitBreaker breaker(options);
  breaker.OnFailure(TransportFailure());
  std::this_thread::sleep_for(std::chrono::milliseconds(80));
  ASSERT_TRUE(breaker.Admit().ok());
  breaker.OnFailure(TransportFailure());
  EXPECT_EQ(breaker.state(), CircuitBreaker::State::kOpen);
  EXPECT_EQ(breaker.opens(), 2u);
  EXPECT_FALSE(breaker.Admit().ok());
}

TEST(CircuitBreakerTest, ShedProbeClosesInsteadOfWedging) {
  // Regression: a probe answered with a shed (likely during
  // recovery-under-load) used to early-return with probe_in_flight_ still
  // set, wedging the breaker half-open forever. A shed proves the peer is
  // alive, so it must close the breaker.
  CircuitBreakerOptions options;
  options.failure_threshold = 1;
  options.open_duration_s = 0.05;
  CircuitBreaker breaker(options);
  breaker.OnFailure(TransportFailure());
  std::this_thread::sleep_for(std::chrono::milliseconds(80));
  ASSERT_TRUE(breaker.Admit().ok());  // the probe
  Status shed = Status::ResourceExhausted("server overloaded");
  shed.set_retry_after_ms(50);
  breaker.OnFailure(shed);
  EXPECT_EQ(breaker.state(), CircuitBreaker::State::kClosed);
  EXPECT_TRUE(breaker.Admit().ok());
}

TEST(CircuitBreakerTest, DeterministicProbeFailureReopensInsteadOfWedging) {
  // Regression, the other flavour: any deterministic probe outcome (a
  // handshake rejection, a recv timeout) must settle the half-open state
  // rather than leave the probe marked in flight with no one to clear it.
  CircuitBreakerOptions options;
  options.failure_threshold = 1;
  options.open_duration_s = 0.05;
  CircuitBreaker breaker(options);
  breaker.OnFailure(TransportFailure());
  std::this_thread::sleep_for(std::chrono::milliseconds(80));
  ASSERT_TRUE(breaker.Admit().ok());  // the probe
  breaker.OnFailure(Status::DeadlineExceeded("handshake recv timed out"));
  EXPECT_EQ(breaker.state(), CircuitBreaker::State::kOpen);
  EXPECT_EQ(breaker.opens(), 2u);
  // Not wedged: after the fresh cooldown the next probe is admitted.
  std::this_thread::sleep_for(std::chrono::milliseconds(80));
  EXPECT_TRUE(breaker.Admit().ok());
}

TEST(CircuitBreakerTest, HalfOpenFastFailHintsAFractionOfTheCooldown) {
  // While a probe is in flight its verdict is imminent; the fast-fail hint
  // must not tell honor_retry_after callers to sleep a whole fresh cooldown.
  CircuitBreakerOptions options;
  options.failure_threshold = 1;
  options.open_duration_s = 0.4;
  CircuitBreaker breaker(options);
  breaker.OnFailure(TransportFailure());
  std::this_thread::sleep_for(std::chrono::milliseconds(450));
  ASSERT_TRUE(breaker.Admit().ok());  // the probe
  const Status refused = breaker.Admit();
  ASSERT_FALSE(refused.ok());
  EXPECT_GT(refused.retry_after_ms(), 0u);
  EXPECT_LT(refused.retry_after_ms(),
            static_cast<uint32_t>(options.open_duration_s * 1e3) / 2);
}

TEST(SutRegistryTest, FourStandardSuts) {
  const auto& suts = StandardSuts();
  ASSERT_EQ(suts.size(), 4u);
  EXPECT_EQ(suts[0].name, "pine-rtree");
  EXPECT_EQ(suts[1].name, "pine-mbr");
  EXPECT_EQ(suts[1].predicate_mode, topo::PredicateMode::kMbrOnly);
  EXPECT_EQ(suts[2].index_kind, index::IndexKind::kGrid);
  EXPECT_EQ(suts[3].index_kind, index::IndexKind::kNone);
}

TEST(SutRegistryTest, LookupByName) {
  EXPECT_TRUE(SutByName("pine-grid").ok());
  EXPECT_TRUE(SutByName("PINE-GRID").ok());
  EXPECT_FALSE(SutByName("oracle").ok());
}

TEST(ConnectionTest, OpenByUrl) {
  auto conn = Connection::Open("jackpine:pine-rtree");
  ASSERT_TRUE(conn.ok());
  EXPECT_EQ(conn->config().name, "pine-rtree");
  EXPECT_FALSE(Connection::Open("jdbc:postgresql://x").ok());
  EXPECT_FALSE(Connection::Open("jackpine:nonexistent").ok());
}

TEST(ConnectionTest, ConnectionsAreIsolated) {
  Connection a = Connection::Open(StandardSuts()[0]);
  Connection b = Connection::Open(StandardSuts()[0]);
  Statement sa = a.CreateStatement();
  ASSERT_TRUE(sa.ExecuteUpdate("CREATE TABLE t (x BIGINT)").ok());
  Statement sb = b.CreateStatement();
  EXPECT_FALSE(sb.ExecuteQuery("SELECT * FROM t").ok());
}

class ResultSetTest : public ::testing::Test {
 protected:
  ResultSetTest() : conn_(Connection::Open(StandardSuts()[0])) {
    Statement stmt = conn_.CreateStatement();
    EXPECT_TRUE(stmt.ExecuteUpdate(
                        "CREATE TABLE t (id BIGINT, score DOUBLE, "
                        "name VARCHAR, flag BOOL, geom GEOMETRY)")
                    .ok());
    EXPECT_TRUE(
        stmt.ExecuteUpdate(
                "INSERT INTO t VALUES "
                "(1, 0.5, 'one', TRUE, ST_MakePoint(1, 1)), "
                "(2, 1.5, 'two', FALSE, NULL)")
            .ok());
  }
  Connection conn_;
};

TEST_F(ResultSetTest, CursorProtocol) {
  Statement stmt = conn_.CreateStatement();
  auto rs = stmt.ExecuteQuery("SELECT id, name FROM t ORDER BY id");
  ASSERT_TRUE(rs.ok());
  EXPECT_EQ(rs->ColumnCount(), 2u);
  EXPECT_EQ(rs->ColumnName(0), "id");
  EXPECT_EQ(rs->RowCount(), 2u);
  // Before Next() there is no current row.
  EXPECT_FALSE(rs->HasRow());
  EXPECT_FALSE(rs->GetInt64(0).ok());
  ASSERT_TRUE(rs->Next());
  EXPECT_TRUE(rs->HasRow());
  EXPECT_EQ(*rs->GetInt64(0), 1);
  EXPECT_EQ(*rs->GetString(1), "one");
  ASSERT_TRUE(rs->Next());
  EXPECT_EQ(*rs->GetInt64(0), 2);
  EXPECT_FALSE(rs->Next());
}

TEST_F(ResultSetTest, CursorAfterLastRowHasNoCurrentRow) {
  Statement stmt = conn_.CreateStatement();
  auto rs = stmt.ExecuteQuery("SELECT id FROM t ORDER BY id");
  ASSERT_TRUE(rs.ok());
  ASSERT_TRUE(rs->Next());
  ASSERT_TRUE(rs->Next());
  EXPECT_TRUE(rs->HasRow());  // on the last row
  ASSERT_FALSE(rs->Next());   // falls off the end ...
  // ... after which there is no current row any more (JDBC semantics): the
  // typed getters error out rather than silently re-reading the last row.
  EXPECT_FALSE(rs->HasRow());
  EXPECT_FALSE(rs->GetInt64(0).ok());
  EXPECT_TRUE(rs->IsNull(0));  // GetValue yields NULL with no current row
  // Next() keeps returning false; it does not wrap around.
  EXPECT_FALSE(rs->Next());
  EXPECT_FALSE(rs->HasRow());
}

TEST_F(ResultSetTest, EmptyResultCursorAndIsNull) {
  Statement stmt = conn_.CreateStatement();
  auto rs = stmt.ExecuteQuery("SELECT id FROM t WHERE id = 99");
  ASSERT_TRUE(rs.ok());
  EXPECT_EQ(rs->RowCount(), 0u);
  EXPECT_FALSE(rs->HasRow());
  // IsNull with no rows at all reports NULL instead of crashing, both
  // before and after the (immediately exhausted) Next().
  EXPECT_TRUE(rs->IsNull(0));
  EXPECT_FALSE(rs->Next());
  EXPECT_TRUE(rs->IsNull(0));
  EXPECT_FALSE(rs->GetInt64(0).ok());
}

TEST_F(ResultSetTest, TypedGettersAndNulls) {
  Statement stmt = conn_.CreateStatement();
  auto rs = stmt.ExecuteQuery(
      "SELECT id, score, name, flag, geom FROM t ORDER BY id");
  ASSERT_TRUE(rs.ok());
  ASSERT_TRUE(rs->Next());
  EXPECT_EQ(*rs->GetInt64(0), 1);
  EXPECT_DOUBLE_EQ(*rs->GetDouble(1), 0.5);
  EXPECT_EQ(*rs->GetString(2), "one");
  EXPECT_TRUE(*rs->GetBool(3));
  auto g = rs->GetGeometry(4);
  ASSERT_TRUE(g.ok());
  EXPECT_EQ(g->ToWkt(), "POINT (1 1)");
  EXPECT_FALSE(rs->IsNull(4));
  ASSERT_TRUE(rs->Next());
  EXPECT_TRUE(rs->IsNull(4));
  EXPECT_FALSE(rs->GetGeometry(4).ok());
}

TEST_F(ResultSetTest, ExecuteUpdateReturnsAffectedRows) {
  Statement stmt = conn_.CreateStatement();
  auto n = stmt.ExecuteUpdate(
      "INSERT INTO t VALUES (3, 0.0, 'three', TRUE, NULL)");
  ASSERT_TRUE(n.ok());
  EXPECT_EQ(*n, 1);
}

TEST_F(ResultSetTest, ChecksumIsOrderIndependent) {
  Statement stmt = conn_.CreateStatement();
  auto asc = stmt.ExecuteQuery("SELECT id, name FROM t ORDER BY id");
  auto desc = stmt.ExecuteQuery("SELECT id, name FROM t ORDER BY id DESC");
  ASSERT_TRUE(asc.ok() && desc.ok());
  EXPECT_EQ(asc->Checksum(), desc->Checksum());
  auto subset = stmt.ExecuteQuery("SELECT id, name FROM t WHERE id = 1");
  EXPECT_NE(asc->Checksum(), subset->Checksum());
}

TEST_F(ResultSetTest, SqlErrorsPropagate) {
  Statement stmt = conn_.CreateStatement();
  EXPECT_FALSE(stmt.ExecuteQuery("SELECT broken FROM t").ok());
  EXPECT_FALSE(stmt.ExecuteUpdate("CREATE TABLE t (x BIGINT)").ok());
}

// Remote URL parsing: every rejection is kInvalidArgument and names the bad
// component (scheme / host / port / SUT) so the operator can fix the URL
// without reading the grammar.
TEST(RemoteUrlTest, ParsesWellFormedUrl) {
  auto ep = ParseRemoteUrl("tcp://db.example.com:7433/pine-rtree");
  ASSERT_TRUE(ep.ok()) << ep.status().ToString();
  EXPECT_EQ(ep->scheme, "tcp");
  EXPECT_EQ(ep->host, "db.example.com");
  EXPECT_EQ(ep->port, 7433);
  EXPECT_EQ(ep->sut, "pine-rtree");
}

TEST(RemoteUrlTest, ErrorsNameTheBadComponent) {
  struct Case {
    const char* url;
    const char* component;
  };
  const Case cases[] = {
      {"db.example.com:7433/pine-rtree", "scheme"},  // no "://"
      {"tcp://:7433/pine-rtree", "host"},
      {"tcp://db.example.com/pine-rtree", "port"},   // no ":port"
      {"tcp://db.example.com:0/pine-rtree", "port"},
      {"tcp://db.example.com:65536/pine-rtree", "port"},
      {"tcp://db.example.com:abc/pine-rtree", "port"},
      {"tcp://db.example.com:7433", "SUT"},          // no "/sut"
      {"tcp://db.example.com:7433/", "SUT"},         // empty sut
  };
  for (const Case& c : cases) {
    auto ep = ParseRemoteUrl(c.url);
    ASSERT_FALSE(ep.ok()) << c.url;
    EXPECT_EQ(ep.status().code(), StatusCode::kInvalidArgument) << c.url;
    EXPECT_NE(ep.status().message().find(c.component), std::string::npos)
        << c.url << " -> " << ep.status().message();
    EXPECT_NE(ep.status().message().find(c.url), std::string::npos)
        << "message must quote the URL: " << ep.status().message();
  }
}

TEST(RemoteUrlTest, OpenRejectsUnregisteredScheme) {
  // No driver factory installed for "quic" — the error says so rather than
  // failing with a generic parse message.
  auto conn = Connection::Open("jackpine:quic://localhost:7433/pine-rtree");
  ASSERT_FALSE(conn.ok());
  EXPECT_EQ(conn.status().code(), StatusCode::kInvalidArgument);
  EXPECT_NE(conn.status().message().find("scheme"), std::string::npos);
  EXPECT_NE(conn.status().message().find("no driver registered"),
            std::string::npos)
      << conn.status().message();
}

TEST(RemoteUrlTest, OpenRejectsUnknownRemoteSut) {
  auto conn = Connection::Open("jackpine:tcp://localhost:7433/oracle");
  ASSERT_FALSE(conn.ok());
  EXPECT_EQ(conn.status().code(), StatusCode::kInvalidArgument);
  EXPECT_NE(conn.status().message().find("SUT"), std::string::npos)
      << conn.status().message();
}

TEST(RemoteUrlTest, OpenRejectsMissingJackpinePrefix) {
  auto conn = Connection::Open("jdbc:postgresql://x");
  ASSERT_FALSE(conn.ok());
  EXPECT_EQ(conn.status().code(), StatusCode::kInvalidArgument);
  EXPECT_NE(conn.status().message().find("scheme"), std::string::npos);
  EXPECT_NE(conn.status().message().find("jackpine:"), std::string::npos)
      << conn.status().message();
}

TEST(RemoteUrlTest, LooksLikeRemoteUrl) {
  EXPECT_TRUE(LooksLikeRemoteUrl("tcp://h:1/s"));
  EXPECT_FALSE(LooksLikeRemoteUrl("pine-rtree"));
  EXPECT_FALSE(LooksLikeRemoteUrl("chaos(1,0.5,2):pine-rtree"));
}

}  // namespace
}  // namespace jackpine::client
