// Tests for affine transforms and azimuth, at the algo and SQL levels.

#include <cmath>

#include <gtest/gtest.h>

#include "algo/affine.h"
#include "algo/measures.h"
#include "engine/database.h"
#include "geom/wkt_reader.h"

namespace jackpine::algo {
namespace {

using geom::Coord;
using geom::Geometry;

Geometry Wkt(const std::string& s) {
  auto r = geom::GeometryFromWkt(s);
  EXPECT_TRUE(r.ok()) << r.status().ToString();
  return std::move(r).value();
}

TEST(AffineTest, Translation) {
  Geometry p = Transform(Geometry::MakePoint(1, 2),
                         AffineTransform::Translation(10, -5));
  EXPECT_EQ(p.AsPoint(), (Coord{11, -3}));
}

TEST(AffineTest, ScalingAboutOrigin) {
  Geometry box = Transform(Wkt("POLYGON ((0 0, 2 0, 2 2, 0 2, 0 0))"),
                           AffineTransform::Scaling(2, 3));
  EXPECT_DOUBLE_EQ(Area(box), 4.0 * 6.0);
  EXPECT_EQ(box.envelope(), geom::Envelope(0, 0, 4, 6));
}

TEST(AffineTest, ScalingAboutCustomOrigin) {
  Geometry p = Transform(Geometry::MakePoint(3, 3),
                         AffineTransform::Scaling(2, 2, {1, 1}));
  EXPECT_EQ(p.AsPoint(), (Coord{5, 5}));
  // The origin itself is a fixed point.
  Geometry o = Transform(Geometry::MakePoint(1, 1),
                         AffineTransform::Scaling(2, 2, {1, 1}));
  EXPECT_EQ(o.AsPoint(), (Coord{1, 1}));
}

TEST(AffineTest, RotationQuarterTurn) {
  Geometry p = Transform(Geometry::MakePoint(1, 0),
                         AffineTransform::Rotation(M_PI / 2));
  EXPECT_NEAR(p.AsPoint().x, 0.0, 1e-12);
  EXPECT_NEAR(p.AsPoint().y, 1.0, 1e-12);
}

TEST(AffineTest, RotationAboutPointPreservesIt) {
  const Coord pivot{5, 5};
  Geometry p = Transform(Geometry::MakePoint(5, 5),
                         AffineTransform::Rotation(1.234, pivot));
  EXPECT_NEAR(p.AsPoint().x, 5.0, 1e-12);
  EXPECT_NEAR(p.AsPoint().y, 5.0, 1e-12);
}

TEST(AffineTest, RotationPreservesAreaAndLength) {
  Geometry poly = Wkt("POLYGON ((0 0, 4 0, 4 2, 0 2, 0 0))");
  Geometry rotated = Transform(poly, AffineTransform::Rotation(0.7, {2, 1}));
  EXPECT_NEAR(Area(rotated), 8.0, 1e-9);
  EXPECT_NEAR(Perimeter(rotated), 12.0, 1e-9);
}

TEST(AffineTest, ReflectionKeepsPolygonsValid) {
  // Negative-determinant transform (mirror in x).
  Geometry poly = Wkt("POLYGON ((0 0, 4 0, 4 2, 0 2, 0 0))");
  Geometry mirrored = Transform(poly, AffineTransform::Scaling(-1, 1));
  EXPECT_NEAR(Area(mirrored), 8.0, 1e-9);
  EXPECT_TRUE(geom::IsCcw(mirrored.AsPolygon().shell));
  EXPECT_TRUE(mirrored.Validate().ok());
}

TEST(AffineTest, ComposeMatchesSequentialApplication) {
  const AffineTransform t1 = AffineTransform::Rotation(0.3);
  const AffineTransform t2 = AffineTransform::Translation(2, 3);
  const AffineTransform both = t2.Compose(t1);
  const Coord p{1.5, -0.5};
  const Coord sequential = t2.Apply(t1.Apply(p));
  const Coord composed = both.Apply(p);
  EXPECT_NEAR(sequential.x, composed.x, 1e-12);
  EXPECT_NEAR(sequential.y, composed.y, 1e-12);
}

TEST(AffineTest, TransformMultiGeometry) {
  Geometry mp = Wkt("MULTIPOINT ((0 0), (1 1))");
  Geometry moved = Transform(mp, AffineTransform::Translation(1, 1));
  EXPECT_EQ(moved.Leaves()[0].AsPoint(), (Coord{1, 1}));
  EXPECT_EQ(moved.Leaves()[1].AsPoint(), (Coord{2, 2}));
}

TEST(AzimuthTest, CardinalDirections) {
  EXPECT_NEAR(*Azimuth({0, 0}, {0, 1}), 0.0, 1e-12);            // north
  EXPECT_NEAR(*Azimuth({0, 0}, {1, 0}), M_PI / 2, 1e-12);       // east
  EXPECT_NEAR(*Azimuth({0, 0}, {0, -1}), M_PI, 1e-12);          // south
  EXPECT_NEAR(*Azimuth({0, 0}, {-1, 0}), 3 * M_PI / 2, 1e-12);  // west
  EXPECT_FALSE(Azimuth({1, 1}, {1, 1}).ok());
}

TEST(AffineSqlTest, FunctionsAvailableInSql) {
  engine::Database db;
  ASSERT_TRUE(db.Execute("CREATE TABLE t (geom GEOMETRY)").ok());
  ASSERT_TRUE(
      db.Execute("INSERT INTO t VALUES (ST_MakePoint(1, 0))").ok());
  auto r = db.Execute(
      "SELECT ST_AsText(ST_Translate(geom, 2, 3)), "
      "ST_Azimuth(ST_MakePoint(0, 0), geom) FROM t");
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  EXPECT_EQ(r->rows[0][0].string_value(), "POINT (3 3)");
  EXPECT_NEAR(r->rows[0][1].double_value(), M_PI / 2, 1e-12);

  auto scaled = db.Execute(
      "SELECT ST_Area(ST_Scale(ST_MakeEnvelope(0, 0, 2, 2), 3, 1)) FROM t");
  ASSERT_TRUE(scaled.ok());
  EXPECT_DOUBLE_EQ(scaled->rows[0][0].double_value(), 12.0);
}

}  // namespace
}  // namespace jackpine::algo
