// Tests for CSV dataset persistence: round-trip fidelity and error paths.

#include <cstdlib>
#include <filesystem>
#include <fstream>

#include <gtest/gtest.h>

#include "core/loader.h"
#include "tigergen/csv_io.h"

namespace jackpine::tigergen {
namespace {

class CsvIoTest : public ::testing::Test {
 protected:
  void SetUp() override {
    dir_ = std::filesystem::temp_directory_path() /
           ("jackpine_csv_" + std::to_string(::getpid()) + "_" +
            ::testing::UnitTest::GetInstance()->current_test_info()->name());
    std::filesystem::create_directories(dir_);
  }
  void TearDown() override { std::filesystem::remove_all(dir_); }

  std::filesystem::path dir_;
};

TEST_F(CsvIoTest, RoundTripPreservesEverything) {
  TigerGenOptions gen;
  gen.scale = 0.05;
  gen.seed = 5;
  const TigerDataset original = GenerateTiger(gen);
  ASSERT_TRUE(SaveDatasetCsv(original, dir_.string()).ok());

  auto loaded = LoadDatasetCsv(dir_.string());
  ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();

  ASSERT_EQ(loaded->counties.size(), original.counties.size());
  ASSERT_EQ(loaded->edges.size(), original.edges.size());
  ASSERT_EQ(loaded->pointlm.size(), original.pointlm.size());
  ASSERT_EQ(loaded->arealm.size(), original.arealm.size());
  ASSERT_EQ(loaded->areawater.size(), original.areawater.size());

  for (size_t i = 0; i < original.edges.size(); ++i) {
    const Edge& a = original.edges[i];
    const Edge& b = loaded->edges[i];
    EXPECT_EQ(a.tlid, b.tlid);
    EXPECT_EQ(a.fullname, b.fullname);
    EXPECT_EQ(a.mtfcc, b.mtfcc);
    EXPECT_EQ(a.lfromadd, b.lfromadd);
    EXPECT_EQ(a.rtoadd, b.rtoadd);
    EXPECT_TRUE(a.geom.ExactlyEquals(b.geom)) << i;
  }
  for (size_t i = 0; i < original.counties.size(); ++i) {
    EXPECT_TRUE(
        original.counties[i].geom.ExactlyEquals(loaded->counties[i].geom));
  }
  // Extent reconstructed and urban anchors available for scenarios.
  EXPECT_FALSE(loaded->extent.IsNull());
  EXPECT_FALSE(loaded->urban_centers.empty());
  EXPECT_TRUE(loaded->extent.Contains(original.extent) ||
              original.extent.Contains(loaded->extent));
}

TEST_F(CsvIoTest, LoadedDatasetRunsThroughTheBenchmark) {
  TigerGenOptions gen;
  gen.scale = 0.05;
  gen.seed = 6;
  ASSERT_TRUE(SaveDatasetCsv(GenerateTiger(gen), dir_.string()).ok());
  auto loaded = LoadDatasetCsv(dir_.string());
  ASSERT_TRUE(loaded.ok());

  client::Connection conn =
      client::Connection::Open(*client::SutByName("pine-rtree"));
  auto timing = core::LoadDataset(*loaded, &conn);
  ASSERT_TRUE(timing.ok()) << timing.status().ToString();
  auto stmt = conn.CreateStatement();
  auto rs = stmt.ExecuteQuery("SELECT COUNT(*) FROM edges");
  ASSERT_TRUE(rs.ok());
  ASSERT_TRUE(rs->Next());
  EXPECT_EQ(*rs->GetInt64(0), static_cast<int64_t>(loaded->edges.size()));
}

TEST_F(CsvIoTest, QuotedFieldsSurvive) {
  TigerDataset ds;
  County c;
  c.fips = 1;
  c.name = "O'Brien, \"The\" County";
  c.geom = geom::Geometry::MakeRectangle(geom::Envelope(0, 0, 1, 1));
  ds.counties.push_back(c);
  ASSERT_TRUE(SaveDatasetCsv(ds, dir_.string()).ok());
  auto loaded = LoadDatasetCsv(dir_.string());
  ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();
  ASSERT_EQ(loaded->counties.size(), 1u);
  EXPECT_EQ(loaded->counties[0].name, "O'Brien, \"The\" County");
}

TEST_F(CsvIoTest, MissingDirectoryFails) {
  EXPECT_FALSE(LoadDatasetCsv((dir_ / "nope").string()).ok());
}

TEST_F(CsvIoTest, MalformedRowsAreRejected) {
  TigerDataset ds;
  ASSERT_TRUE(SaveDatasetCsv(ds, dir_.string()).ok());
  std::ofstream bad(dir_ / "county.csv", std::ios::trunc);
  bad << "fips,name,geom\nnot-a-number,x,POINT (0 0)\n";
  bad.close();
  EXPECT_FALSE(LoadDatasetCsv(dir_.string()).ok());

  std::ofstream wrong_arity(dir_ / "county.csv", std::ios::trunc);
  wrong_arity << "fips,name,geom\n1,x\n";
  wrong_arity.close();
  EXPECT_FALSE(LoadDatasetCsv(dir_.string()).ok());

  std::ofstream bad_wkt(dir_ / "county.csv", std::ios::trunc);
  bad_wkt << "fips,name,geom\n1,x,NOT WKT\n";
  bad_wkt.close();
  EXPECT_FALSE(LoadDatasetCsv(dir_.string()).ok());
}

}  // namespace
}  // namespace jackpine::tigergen
