// Tests for the engine's Value model and schema validation.

#include <gtest/gtest.h>

#include "engine/schema.h"
#include "engine/value.h"
#include "geom/wkt_reader.h"

namespace jackpine::engine {
namespace {

TEST(ValueTest, TypesAndAccessors) {
  EXPECT_EQ(Value().type(), DataType::kNull);
  EXPECT_TRUE(Value().is_null());
  EXPECT_EQ(Value::Bool(true).type(), DataType::kBool);
  EXPECT_EQ(Value::Int(5).int_value(), 5);
  EXPECT_EQ(Value::Real(2.5).double_value(), 2.5);
  EXPECT_EQ(Value::Str("x").string_value(), "x");
  auto g = geom::GeometryFromWkt("POINT (1 2)");
  EXPECT_EQ(Value::Geo(*g).type(), DataType::kGeometry);
}

TEST(ValueTest, NumericCoercions) {
  EXPECT_EQ(*Value::Int(7).AsDouble(), 7.0);
  EXPECT_EQ(*Value::Real(7.9).AsInt64(), 7);
  EXPECT_FALSE(Value::Str("7").AsDouble().ok());
  EXPECT_TRUE(*Value::Int(1).AsBool());
  EXPECT_FALSE(*Value::Int(0).AsBool());
  EXPECT_FALSE(Value::Str("true").AsBool().ok());
}

TEST(ValueTest, CompareNumericCrossType) {
  EXPECT_LT(*Value::Int(1).Compare(Value::Real(1.5)), 0);
  EXPECT_EQ(*Value::Int(2).Compare(Value::Real(2.0)), 0);
  EXPECT_GT(*Value::Real(3.0).Compare(Value::Int(2)), 0);
}

TEST(ValueTest, CompareStringsAndBools) {
  EXPECT_LT(*Value::Str("abc").Compare(Value::Str("abd")), 0);
  EXPECT_EQ(*Value::Bool(true).Compare(Value::Bool(true)), 0);
  EXPECT_FALSE(Value::Str("a").Compare(Value::Int(1)).ok());
}

TEST(ValueTest, NullSortsFirst) {
  EXPECT_LT(*Value().Compare(Value::Int(0)), 0);
  EXPECT_GT(*Value::Int(0).Compare(Value()), 0);
  EXPECT_EQ(*Value().Compare(Value()), 0);
}

TEST(ValueTest, GeometryHasNoOrdering) {
  auto g = geom::GeometryFromWkt("POINT (1 2)");
  EXPECT_FALSE(Value::Geo(*g).Compare(Value::Geo(*g)).ok());
}

TEST(ValueTest, SqlEquals) {
  EXPECT_TRUE(Value::Int(2).SqlEquals(Value::Real(2.0)));
  EXPECT_FALSE(Value().SqlEquals(Value()));  // NULL != NULL
  auto g1 = geom::GeometryFromWkt("POINT (1 2)");
  auto g2 = geom::GeometryFromWkt("POINT (1 2)");
  EXPECT_TRUE(Value::Geo(*g1).SqlEquals(Value::Geo(*g2)));
}

TEST(ValueTest, DisplayStrings) {
  EXPECT_EQ(Value().ToDisplayString(), "NULL");
  EXPECT_EQ(Value::Int(-3).ToDisplayString(), "-3");
  EXPECT_EQ(Value::Bool(false).ToDisplayString(), "false");
  auto g = geom::GeometryFromWkt("POINT (1 2)");
  EXPECT_EQ(Value::Geo(*g).ToDisplayString(), "POINT (1 2)");
}

TEST(ValueTest, HashesDistinguishValues) {
  EXPECT_NE(Value::Int(1).Hash(), Value::Int(2).Hash());
  EXPECT_NE(Value::Str("a").Hash(), Value::Str("b").Hash());
  EXPECT_EQ(Value::Str("spatial").Hash(), Value::Str("spatial").Hash());
  EXPECT_NE(Value().Hash(), Value::Int(0).Hash());
}

TEST(SchemaTest, FindColumnCaseInsensitive) {
  Schema schema({{"fips", DataType::kInt64}, {"GEOM", DataType::kGeometry}});
  EXPECT_EQ(*schema.FindColumn("FIPS"), 0u);
  EXPECT_EQ(*schema.FindColumn("geom"), 1u);
  EXPECT_FALSE(schema.FindColumn("nope").has_value());
}

TEST(SchemaTest, ValidateRow) {
  Schema schema({{"id", DataType::kInt64},
                 {"score", DataType::kDouble},
                 {"name", DataType::kString}});
  EXPECT_TRUE(
      schema.ValidateRow({Value::Int(1), Value::Real(0.5), Value::Str("x")})
          .ok());
  // Int widens into double columns; NULL fits anywhere.
  EXPECT_TRUE(
      schema.ValidateRow({Value::Int(1), Value::Int(2), Value()}).ok());
  // Arity mismatch.
  EXPECT_FALSE(schema.ValidateRow({Value::Int(1)}).ok());
  // Type mismatch.
  EXPECT_FALSE(
      schema.ValidateRow({Value::Str("1"), Value::Real(0.5), Value::Str("x")})
          .ok());
}

TEST(SchemaTest, TypeNamesParse) {
  EXPECT_EQ(*DataTypeFromName("BIGINT"), DataType::kInt64);
  EXPECT_EQ(*DataTypeFromName("integer"), DataType::kInt64);
  EXPECT_EQ(*DataTypeFromName("Double"), DataType::kDouble);
  EXPECT_EQ(*DataTypeFromName("VARCHAR"), DataType::kString);
  EXPECT_EQ(*DataTypeFromName("GEOMETRY"), DataType::kGeometry);
  EXPECT_EQ(*DataTypeFromName("bool"), DataType::kBool);
  EXPECT_FALSE(DataTypeFromName("BLOB").ok());
}

TEST(SchemaTest, ToString) {
  Schema schema({{"id", DataType::kInt64}, {"geom", DataType::kGeometry}});
  EXPECT_EQ(schema.ToString(), "(id BIGINT, geom GEOMETRY)");
}

}  // namespace
}  // namespace jackpine::engine
