// End-to-end tests for the pinedb engine: DDL, DML, scalar and spatial SQL
// evaluation, aggregates, joins, ordering and limits.

#include <gtest/gtest.h>

#include "engine/database.h"

namespace jackpine::engine {
namespace {

class EngineTest : public ::testing::Test {
 protected:
  void SetUp() override {
    Exec("CREATE TABLE cities (id BIGINT, name VARCHAR, pop DOUBLE, "
         "geom GEOMETRY)");
    Exec("INSERT INTO cities VALUES "
         "(1, 'alpha', 10.5, ST_GeomFromText('POINT (0 0)')), "
         "(2, 'beta', 20.0, ST_GeomFromText('POINT (10 0)')), "
         "(3, 'gamma', 5.25, ST_GeomFromText('POINT (0 10)')), "
         "(4, 'delta', 40.0, ST_GeomFromText('POINT (10 10)'))");
    Exec("CREATE TABLE zones (zid BIGINT, zname VARCHAR, geom GEOMETRY)");
    Exec("INSERT INTO zones VALUES "
         "(100, 'west', ST_GeomFromText("
         "'POLYGON ((-1 -1, 5 -1, 5 11, -1 11, -1 -1))')), "
         "(200, 'east', ST_GeomFromText("
         "'POLYGON ((5 -1, 11 -1, 11 11, 5 11, 5 -1))'))");
  }

  QueryResult Exec(const std::string& sql) {
    auto r = db_.Execute(sql);
    EXPECT_TRUE(r.ok()) << sql << " -> " << r.status().ToString();
    return r.ok() ? std::move(r).value() : QueryResult{};
  }

  int64_t Scalar(const std::string& sql) {
    QueryResult r = Exec(sql);
    EXPECT_EQ(r.rows.size(), 1u);
    EXPECT_GE(r.rows[0].size(), 1u);
    return r.rows[0][0].AsInt64().value_or(-999);
  }

  Database db_;
};

TEST_F(EngineTest, SelectStarProjectsAllColumns) {
  QueryResult r = Exec("SELECT * FROM cities");
  EXPECT_EQ(r.columns,
            (std::vector<std::string>{"id", "name", "pop", "geom"}));
  EXPECT_EQ(r.rows.size(), 4u);
}

TEST_F(EngineTest, AttributeFilter) {
  EXPECT_EQ(Scalar("SELECT COUNT(*) FROM cities WHERE pop > 10"), 3);
  EXPECT_EQ(Scalar("SELECT COUNT(*) FROM cities WHERE name = 'beta'"), 1);
  EXPECT_EQ(
      Scalar("SELECT COUNT(*) FROM cities WHERE pop > 10 AND pop < 25"), 2);
  EXPECT_EQ(Scalar("SELECT COUNT(*) FROM cities WHERE NOT pop > 10"), 1);
}

TEST_F(EngineTest, Arithmetic) {
  QueryResult r = Exec("SELECT pop * 2 + 1 FROM cities WHERE id = 1");
  EXPECT_DOUBLE_EQ(r.rows[0][0].double_value(), 22.0);
  r = Exec("SELECT 7 / 2 FROM cities WHERE id = 1");
  EXPECT_DOUBLE_EQ(r.rows[0][0].double_value(), 3.5);
  r = Exec("SELECT 7 % 3 FROM cities WHERE id = 1");
  EXPECT_EQ(r.rows[0][0].int_value(), 1);
}

TEST_F(EngineTest, DivisionByZeroIsNull) {
  QueryResult r = Exec("SELECT 1 / 0 FROM cities WHERE id = 1");
  EXPECT_TRUE(r.rows[0][0].is_null());
}

TEST_F(EngineTest, Aggregates) {
  QueryResult r = Exec(
      "SELECT COUNT(*), SUM(pop), MIN(pop), MAX(pop), AVG(pop) FROM cities");
  ASSERT_EQ(r.rows.size(), 1u);
  EXPECT_EQ(r.rows[0][0].int_value(), 4);
  EXPECT_DOUBLE_EQ(r.rows[0][1].double_value(), 75.75);
  EXPECT_DOUBLE_EQ(r.rows[0][2].double_value(), 5.25);
  EXPECT_DOUBLE_EQ(r.rows[0][3].double_value(), 40.0);
  EXPECT_DOUBLE_EQ(r.rows[0][4].double_value(), 75.75 / 4);
}

TEST_F(EngineTest, AggregateOverEmptyInput) {
  QueryResult r =
      Exec("SELECT COUNT(*), SUM(pop) FROM cities WHERE pop > 1000");
  EXPECT_EQ(r.rows[0][0].int_value(), 0);
  EXPECT_TRUE(r.rows[0][1].is_null());
}

TEST_F(EngineTest, AggregateArithmetic) {
  QueryResult r = Exec("SELECT SUM(pop) / COUNT(*) FROM cities");
  EXPECT_DOUBLE_EQ(r.rows[0][0].double_value(), 75.75 / 4);
}

TEST_F(EngineTest, MixingAggregatesAndColumnsFails) {
  EXPECT_FALSE(db_.Execute("SELECT name, COUNT(*) FROM cities").ok());
}

TEST_F(EngineTest, OrderByAndLimit) {
  QueryResult r = Exec("SELECT name FROM cities ORDER BY pop DESC LIMIT 2");
  ASSERT_EQ(r.rows.size(), 2u);
  EXPECT_EQ(r.rows[0][0].string_value(), "delta");
  EXPECT_EQ(r.rows[1][0].string_value(), "beta");
}

TEST_F(EngineTest, OrderByMultipleKeys) {
  Exec("INSERT INTO cities VALUES "
       "(5, 'alpha', 99.0, ST_GeomFromText('POINT (5 5)'))");
  QueryResult r = Exec("SELECT id FROM cities ORDER BY name, pop DESC");
  EXPECT_EQ(r.rows[0][0].int_value(), 5);  // alpha/99 before alpha/10.5
  EXPECT_EQ(r.rows[1][0].int_value(), 1);
}

TEST_F(EngineTest, SpatialPredicateFilter) {
  EXPECT_EQ(Scalar("SELECT COUNT(*) FROM cities WHERE ST_Within(geom, "
                   "ST_GeomFromText('POLYGON ((-1 -1, 5 -1, 5 11, -1 11, "
                   "-1 -1))'))"),
            2);
  EXPECT_EQ(Scalar("SELECT COUNT(*) FROM cities WHERE ST_DWithin(geom, "
                   "ST_MakePoint(0, 0), 10.5)"),
            3);
}

TEST_F(EngineTest, SpatialJoin) {
  QueryResult r = Exec(
      "SELECT name, zname FROM cities c, zones z "
      "WHERE ST_Within(c.geom, z.geom) ORDER BY name");
  ASSERT_EQ(r.rows.size(), 4u);
  EXPECT_EQ(r.rows[0][0].string_value(), "alpha");
  EXPECT_EQ(r.rows[0][1].string_value(), "west");
  EXPECT_EQ(r.rows[1][1].string_value(), "east");  // beta at (10,0)
}

TEST_F(EngineTest, SpatialJoinWithAttributeResidual) {
  EXPECT_EQ(Scalar("SELECT COUNT(*) FROM cities c, zones z WHERE "
                   "ST_Within(c.geom, z.geom) AND z.zname = 'west'"),
            2);
}

TEST_F(EngineTest, SpatialFunctionsInProjection) {
  QueryResult r = Exec(
      "SELECT ST_AsText(ST_Centroid(geom)), ST_Area(geom) FROM zones "
      "WHERE zid = 100");
  EXPECT_EQ(r.rows[0][0].string_value(), "POINT (2 5)");
  EXPECT_DOUBLE_EQ(r.rows[0][1].double_value(), 72.0);
}

TEST_F(EngineTest, KnnOrderByDistance) {
  QueryResult r = Exec(
      "SELECT name FROM cities ORDER BY ST_Distance(geom, "
      "ST_MakePoint(9, 2)) LIMIT 2");
  ASSERT_EQ(r.rows.size(), 2u);
  EXPECT_EQ(r.rows[0][0].string_value(), "beta");
  EXPECT_EQ(r.rows[1][0].string_value(), "delta");
}

TEST_F(EngineTest, IndexDdlAndEquivalence) {
  // Build an index, re-run a window query, results must not change.
  const char* q =
      "SELECT COUNT(*) FROM cities WHERE ST_Intersects(geom, "
      "ST_MakeEnvelope(-1, -1, 5, 11))";
  const int64_t before = Scalar(q);
  Exec("CREATE SPATIAL INDEX ON cities (geom)");
  EXPECT_EQ(Scalar(q), before);
  Exec("DROP SPATIAL INDEX ON cities (geom)");
  EXPECT_EQ(Scalar(q), before);
}

TEST_F(EngineTest, NullHandlingInWhere) {
  Exec("INSERT INTO cities VALUES (9, 'nowhere', 1.0, NULL)");
  // NULL geometry never matches a spatial predicate.
  EXPECT_EQ(Scalar("SELECT COUNT(*) FROM cities WHERE ST_Intersects(geom, "
                   "ST_MakeEnvelope(-100, -100, 100, 100))"),
            4);
  EXPECT_EQ(Scalar("SELECT COUNT(*) FROM cities"), 5);
}

TEST_F(EngineTest, ErrorsSurfaceCleanly) {
  EXPECT_FALSE(db_.Execute("SELECT * FROM missing").ok());
  EXPECT_FALSE(db_.Execute("SELECT nocolumn FROM cities").ok());
  EXPECT_FALSE(db_.Execute("SELECT ST_NoSuchFn(geom) FROM cities").ok());
  EXPECT_FALSE(db_.Execute("SELECT ST_Area() FROM cities").ok());
  EXPECT_FALSE(
      db_.Execute("INSERT INTO cities VALUES (1, 'x', 'notanumber', NULL)")
          .ok());
  EXPECT_FALSE(db_.Execute("CREATE TABLE cities (a BIGINT)").ok());
  // Three-table joins are out of scope.
  EXPECT_FALSE(
      db_.Execute("SELECT * FROM cities a, cities b, cities c").ok());
}

TEST_F(EngineTest, GeomFromTextErrorPropagates) {
  EXPECT_FALSE(
      db_.Execute("SELECT ST_GeomFromText('NOT WKT') FROM cities").ok());
}

TEST_F(EngineTest, StatsCountRefinements) {
  db_.ResetStats();
  Exec("SELECT COUNT(*) FROM cities WHERE pop > 10");
  EXPECT_EQ(db_.stats().rows_scanned, 4u);
  EXPECT_EQ(db_.stats().refine_checks, 4u);
  EXPECT_EQ(db_.stats().index_probes, 0u);
}

TEST_F(EngineTest, MbrModeChangesAnswers) {
  DatabaseOptions options;
  options.predicate_mode = topo::PredicateMode::kMbrOnly;
  Database mbr(options);
  ASSERT_TRUE(mbr.Execute("CREATE TABLE t (geom GEOMETRY)").ok());
  // A diagonal line whose MBR covers the probe box, but which misses it.
  ASSERT_TRUE(mbr.Execute("INSERT INTO t VALUES (ST_GeomFromText("
                          "'LINESTRING (0 0, 10 10)'))")
                  .ok());
  const char* q =
      "SELECT COUNT(*) FROM t WHERE ST_Intersects(geom, "
      "ST_MakeEnvelope(6, 0, 8, 2))";
  auto mbr_result = mbr.Execute(q);
  ASSERT_TRUE(mbr_result.ok());
  EXPECT_EQ(mbr_result->rows[0][0].int_value(), 1);  // MBR hit

  Database exact;
  ASSERT_TRUE(exact.Execute("CREATE TABLE t (geom GEOMETRY)").ok());
  ASSERT_TRUE(exact
                  .Execute("INSERT INTO t VALUES (ST_GeomFromText("
                           "'LINESTRING (0 0, 10 10)'))")
                  .ok());
  auto exact_result = exact.Execute(q);
  ASSERT_TRUE(exact_result.ok());
  EXPECT_EQ(exact_result->rows[0][0].int_value(), 0);  // true miss
}

}  // namespace
}  // namespace jackpine::engine
