// Tests for the basic computational-geometry layer: orientation, segment
// intersection, point location, measures, convex hull, simplification,
// distance.

#include <gtest/gtest.h>

#include "algo/convex_hull.h"
#include "algo/distance.h"
#include "algo/measures.h"
#include "algo/orientation.h"
#include "algo/point_in_polygon.h"
#include "algo/segment_intersection.h"
#include "algo/simplify.h"
#include "geom/wkt_reader.h"

namespace jackpine::algo {
namespace {

using geom::Coord;
using geom::Geometry;
using geom::GeometryFromWkt;
using geom::Ring;

Geometry Wkt(const std::string& s) {
  auto r = GeometryFromWkt(s);
  EXPECT_TRUE(r.ok()) << r.status().ToString();
  return std::move(r).value();
}

TEST(OrientationTest, TurnsAndCollinear) {
  EXPECT_EQ(Orientation({0, 0}, {1, 0}, {1, 1}), 1);   // left turn
  EXPECT_EQ(Orientation({0, 0}, {1, 0}, {1, -1}), -1); // right turn
  EXPECT_EQ(Orientation({0, 0}, {1, 1}, {2, 2}), 0);   // collinear
}

TEST(OrientationTest, NearDegenerateIsStable) {
  // Points nearly collinear with a tiny perturbation.
  const Coord a{0, 0}, b{1e8, 1e8};
  EXPECT_EQ(Orientation(a, b, {5e7, 5e7}), 0);
  EXPECT_EQ(Orientation(a, b, {5e7, 5e7 + 1}), 1);
  EXPECT_EQ(Orientation(a, b, {5e7, 5e7 - 1}), -1);
}

TEST(OrientationTest, PointOnSegment) {
  EXPECT_TRUE(PointOnSegment({1, 1}, {0, 0}, {2, 2}));
  EXPECT_TRUE(PointOnSegment({0, 0}, {0, 0}, {2, 2}));  // endpoint
  EXPECT_FALSE(PointOnSegment({3, 3}, {0, 0}, {2, 2})); // collinear but beyond
  EXPECT_FALSE(PointOnSegment({1, 0}, {0, 0}, {2, 2}));
}

TEST(SegSegTest, ProperCross) {
  const auto r = IntersectSegments({0, 0}, {2, 2}, {0, 2}, {2, 0});
  EXPECT_EQ(r.kind, SegSegKind::kPoint);
  EXPECT_TRUE(r.proper);
  EXPECT_EQ(r.p0, (Coord{1, 1}));
}

TEST(SegSegTest, EndpointTouchIsNotProper) {
  const auto r = IntersectSegments({0, 0}, {1, 1}, {1, 1}, {2, 0});
  EXPECT_EQ(r.kind, SegSegKind::kPoint);
  EXPECT_FALSE(r.proper);
  EXPECT_EQ(r.p0, (Coord{1, 1}));
}

TEST(SegSegTest, TJunction) {
  const auto r = IntersectSegments({0, 0}, {2, 0}, {1, -1}, {1, 0});
  EXPECT_EQ(r.kind, SegSegKind::kPoint);
  EXPECT_FALSE(r.proper);
  EXPECT_EQ(r.p0, (Coord{1, 0}));
}

TEST(SegSegTest, CollinearOverlap) {
  const auto r = IntersectSegments({0, 0}, {4, 0}, {2, 0}, {6, 0});
  ASSERT_EQ(r.kind, SegSegKind::kOverlap);
  EXPECT_EQ(r.p0, (Coord{2, 0}));
  EXPECT_EQ(r.p1, (Coord{4, 0}));
}

TEST(SegSegTest, CollinearTouchAtSinglePoint) {
  const auto r = IntersectSegments({0, 0}, {2, 0}, {2, 0}, {4, 0});
  ASSERT_EQ(r.kind, SegSegKind::kPoint);
  EXPECT_EQ(r.p0, (Coord{2, 0}));
}

TEST(SegSegTest, DisjointCases) {
  EXPECT_EQ(IntersectSegments({0, 0}, {1, 0}, {0, 1}, {1, 1}).kind,
            SegSegKind::kNone);
  EXPECT_EQ(IntersectSegments({0, 0}, {1, 0}, {2, 0}, {3, 0}).kind,
            SegSegKind::kNone);  // collinear disjoint
}

TEST(SegSegTest, Distances) {
  EXPECT_DOUBLE_EQ(DistancePointToSegment({0, 1}, {-1, 0}, {1, 0}), 1.0);
  EXPECT_DOUBLE_EQ(DistancePointToSegment({3, 0}, {-1, 0}, {1, 0}), 2.0);
  EXPECT_DOUBLE_EQ(
      DistanceSegmentToSegment({0, 0}, {1, 0}, {0, 2}, {1, 2}), 2.0);
  EXPECT_DOUBLE_EQ(
      DistanceSegmentToSegment({0, 0}, {2, 2}, {0, 2}, {2, 0}), 0.0);
}

TEST(LocateTest, RingInteriorBoundaryExterior) {
  const Ring square = {{0, 0}, {4, 0}, {4, 4}, {0, 4}, {0, 0}};
  EXPECT_EQ(LocateInRing({2, 2}, square), Location::kInterior);
  EXPECT_EQ(LocateInRing({4, 2}, square), Location::kBoundary);
  EXPECT_EQ(LocateInRing({0, 0}, square), Location::kBoundary);
  EXPECT_EQ(LocateInRing({5, 2}, square), Location::kExterior);
  EXPECT_EQ(LocateInRing({2, 5}, square), Location::kExterior);
}

TEST(LocateTest, PolygonWithHole) {
  Geometry p = Wkt(
      "POLYGON ((0 0, 10 0, 10 10, 0 10, 0 0), (3 3, 3 7, 7 7, 7 3, 3 3))");
  const geom::PolygonData& poly = p.AsPolygon();
  EXPECT_EQ(LocateInPolygon({1, 1}, poly), Location::kInterior);
  EXPECT_EQ(LocateInPolygon({5, 5}, poly), Location::kExterior);  // in hole
  EXPECT_EQ(LocateInPolygon({3, 5}, poly), Location::kBoundary);  // hole ring
  EXPECT_EQ(LocateInPolygon({10, 5}, poly), Location::kBoundary);
  EXPECT_EQ(LocateInPolygon({11, 5}, poly), Location::kExterior);
}

TEST(LocateTest, OnLineString) {
  Geometry l = Wkt("LINESTRING (0 0, 4 0, 4 4)");
  EXPECT_EQ(Locate({2, 0}, l), Location::kInterior);
  EXPECT_EQ(Locate({4, 0}, l), Location::kInterior);  // interior vertex
  EXPECT_EQ(Locate({0, 0}, l), Location::kBoundary);  // endpoint
  EXPECT_EQ(Locate({4, 4}, l), Location::kBoundary);
  EXPECT_EQ(Locate({1, 1}, l), Location::kExterior);
}

TEST(LocateTest, ClosedLineHasNoBoundary) {
  Geometry ring = Wkt("LINESTRING (0 0, 4 0, 4 4, 0 0)");
  EXPECT_EQ(Locate({0, 0}, ring), Location::kInterior);
}

TEST(LocateTest, MultiLineModTwoRule) {
  // Two lines sharing endpoint (1,1): shared endpoint is interior.
  Geometry ml = Wkt("MULTILINESTRING ((0 0, 1 1), (1 1, 2 0))");
  EXPECT_EQ(Locate({1, 1}, ml), Location::kInterior);
  EXPECT_EQ(Locate({0, 0}, ml), Location::kBoundary);
}

TEST(MeasuresTest, Area) {
  EXPECT_DOUBLE_EQ(Area(Wkt("POLYGON ((0 0, 4 0, 4 4, 0 4, 0 0))")), 16.0);
  EXPECT_DOUBLE_EQ(
      Area(Wkt("POLYGON ((0 0, 10 0, 10 10, 0 10, 0 0), "
               "(2 2, 2 4, 4 4, 4 2, 2 2))")),
      96.0);
  EXPECT_DOUBLE_EQ(Area(Wkt("LINESTRING (0 0, 5 5)")), 0.0);
  EXPECT_DOUBLE_EQ(
      Area(Wkt("MULTIPOLYGON (((0 0, 1 0, 1 1, 0 1, 0 0)), "
               "((5 5, 7 5, 7 7, 5 7, 5 5)))")),
      5.0);
}

TEST(MeasuresTest, LengthAndPerimeter) {
  EXPECT_DOUBLE_EQ(Length(Wkt("LINESTRING (0 0, 3 0, 3 4)")), 7.0);
  EXPECT_DOUBLE_EQ(Length(Wkt("POLYGON ((0 0, 4 0, 4 4, 0 4, 0 0))")), 0.0);
  EXPECT_DOUBLE_EQ(Perimeter(Wkt("POLYGON ((0 0, 4 0, 4 4, 0 4, 0 0))")),
                   16.0);
}

TEST(MeasuresTest, Centroid) {
  Geometry c = Centroid(Wkt("POLYGON ((0 0, 4 0, 4 4, 0 4, 0 0))"));
  EXPECT_EQ(c.AsPoint(), (Coord{2, 2}));
  Geometry lc = Centroid(Wkt("LINESTRING (0 0, 4 0)"));
  EXPECT_EQ(lc.AsPoint(), (Coord{2, 0}));
  Geometry pc = Centroid(Wkt("MULTIPOINT ((0 0), (2 0), (1 3))"));
  EXPECT_EQ(pc.AsPoint(), (Coord{1, 1}));
  EXPECT_TRUE(Centroid(Geometry()).IsEmpty());
}

TEST(MeasuresTest, CentroidUsesHighestDimension) {
  Geometry mixed = Wkt(
      "GEOMETRYCOLLECTION (POINT (100 100), "
      "POLYGON ((0 0, 2 0, 2 2, 0 2, 0 0)))");
  EXPECT_EQ(Centroid(mixed).AsPoint(), (Coord{1, 1}));
}

TEST(ConvexHullTest, SquarePlusInteriorPoints) {
  Geometry g = Wkt("MULTIPOINT ((0 0), (4 0), (4 4), (0 4), (2 2), (1 3))");
  Geometry hull = ConvexHull(g);
  ASSERT_EQ(hull.type(), geom::GeometryType::kPolygon);
  EXPECT_DOUBLE_EQ(Area(hull), 16.0);
  EXPECT_EQ(hull.AsPolygon().shell.size(), 5u);  // 4 corners + closure
}

TEST(ConvexHullTest, DegenerateInputs) {
  EXPECT_EQ(ConvexHull(Wkt("POINT (1 2)")).type(),
            geom::GeometryType::kPoint);
  Geometry collinear = ConvexHull(Wkt("MULTIPOINT ((0 0), (1 1), (2 2))"));
  EXPECT_EQ(collinear.type(), geom::GeometryType::kLineString);
  EXPECT_TRUE(ConvexHull(Geometry()).IsEmpty());
}

TEST(ConvexHullTest, HullOfPolygonCoversIt) {
  Geometry star = Wkt(
      "POLYGON ((0 0, 4 1, 8 0, 7 4, 8 8, 4 7, 0 8, 1 4, 0 0))");
  Geometry hull = ConvexHull(star);
  EXPECT_GE(Area(hull), Area(star));
}

TEST(SimplifyTest, RemovesInlierVertices) {
  Geometry l = Wkt("LINESTRING (0 0, 1 0.01, 2 0, 3 0.01, 4 0)");
  Geometry s = Simplify(l, 0.1);
  EXPECT_EQ(s.AsLineString().size(), 2u);
  EXPECT_EQ(s.AsLineString().front(), (Coord{0, 0}));
  EXPECT_EQ(s.AsLineString().back(), (Coord{4, 0}));
}

TEST(SimplifyTest, KeepsSignificantVertices) {
  Geometry l = Wkt("LINESTRING (0 0, 2 3, 4 0)");
  Geometry s = Simplify(l, 0.1);
  EXPECT_EQ(s.AsLineString().size(), 3u);
}

TEST(SimplifyTest, PolygonCollapseYieldsEmpty) {
  Geometry p = Wkt("POLYGON ((0 0, 1 0.001, 2 0, 1 0.002, 0 0))");
  Geometry s = Simplify(p, 1.0);
  EXPECT_TRUE(s.IsEmpty());
}

TEST(DistanceTest, PointCombinations) {
  EXPECT_DOUBLE_EQ(Distance(Wkt("POINT (0 0)"), Wkt("POINT (3 4)")), 5.0);
  EXPECT_DOUBLE_EQ(
      Distance(Wkt("POINT (0 5)"), Wkt("LINESTRING (-10 0, 10 0)")), 5.0);
  EXPECT_DOUBLE_EQ(
      Distance(Wkt("POINT (5 5)"), Wkt("POLYGON ((0 0, 10 0, 10 10, 0 10, 0 0))")),
      0.0);  // inside
  EXPECT_DOUBLE_EQ(
      Distance(Wkt("POINT (12 5)"),
               Wkt("POLYGON ((0 0, 10 0, 10 10, 0 10, 0 0))")),
      2.0);
}

TEST(DistanceTest, PolygonContainment) {
  Geometry outer = Wkt("POLYGON ((0 0, 10 0, 10 10, 0 10, 0 0))");
  Geometry inner = Wkt("POLYGON ((4 4, 6 4, 6 6, 4 6, 4 4))");
  EXPECT_DOUBLE_EQ(Distance(outer, inner), 0.0);
  EXPECT_DOUBLE_EQ(Distance(inner, outer), 0.0);
}

TEST(DistanceTest, SeparatedPolygons) {
  Geometry a = Wkt("POLYGON ((0 0, 1 0, 1 1, 0 1, 0 0))");
  Geometry b = Wkt("POLYGON ((4 0, 5 0, 5 1, 4 1, 4 0))");
  EXPECT_DOUBLE_EQ(Distance(a, b), 3.0);
  EXPECT_TRUE(WithinDistance(a, b, 3.0));
  EXPECT_FALSE(WithinDistance(a, b, 2.9));
}

TEST(DistanceTest, EmptyGivesInfinity) {
  EXPECT_TRUE(std::isinf(Distance(Geometry(), Wkt("POINT (0 0)"))));
  EXPECT_FALSE(WithinDistance(Geometry(), Wkt("POINT (0 0)"), 1e18));
}

}  // namespace
}  // namespace jackpine::algo
