// Tests for the Envelope (MBR) type.

#include <gtest/gtest.h>

#include "geom/envelope.h"

namespace jackpine::geom {
namespace {

TEST(EnvelopeTest, NullByDefault) {
  Envelope e;
  EXPECT_TRUE(e.IsNull());
  EXPECT_EQ(e.Width(), 0.0);
  EXPECT_EQ(e.Area(), 0.0);
  EXPECT_FALSE(e.Contains(Coord{0, 0}));
}

TEST(EnvelopeTest, NormalizesCorners) {
  Envelope e(10, 8, 2, 4);  // deliberately swapped
  EXPECT_EQ(e.min_x(), 2);
  EXPECT_EQ(e.max_x(), 10);
  EXPECT_EQ(e.min_y(), 4);
  EXPECT_EQ(e.max_y(), 8);
}

TEST(EnvelopeTest, ExpandToIncludePoint) {
  Envelope e;
  e.ExpandToInclude(Coord{1, 2});
  EXPECT_FALSE(e.IsNull());
  EXPECT_EQ(e.Area(), 0.0);
  e.ExpandToInclude(Coord{-1, 5});
  EXPECT_EQ(e.min_x(), -1);
  EXPECT_EQ(e.max_y(), 5);
}

TEST(EnvelopeTest, ExpandToIncludeNullIsNoop) {
  Envelope e(0, 0, 1, 1);
  e.ExpandToInclude(Envelope());
  EXPECT_EQ(e, Envelope(0, 0, 1, 1));
}

TEST(EnvelopeTest, ContainsAndIntersects) {
  Envelope big(0, 0, 10, 10);
  Envelope inner(2, 2, 3, 3);
  Envelope overlapping(8, 8, 12, 12);
  Envelope outside(20, 20, 30, 30);
  EXPECT_TRUE(big.Contains(inner));
  EXPECT_FALSE(inner.Contains(big));
  EXPECT_TRUE(big.Intersects(inner));
  EXPECT_TRUE(big.Intersects(overlapping));
  EXPECT_FALSE(big.Contains(overlapping));
  EXPECT_FALSE(big.Intersects(outside));
}

TEST(EnvelopeTest, BoundaryContactCountsAsIntersecting) {
  Envelope a(0, 0, 1, 1);
  Envelope b(1, 0, 2, 1);  // shares the x=1 edge
  EXPECT_TRUE(a.Intersects(b));
  EXPECT_TRUE(a.Touches(b));
  Envelope c(0.5, 0, 2, 1);  // proper overlap
  EXPECT_TRUE(a.Intersects(c));
  EXPECT_FALSE(a.Touches(c));
}

TEST(EnvelopeTest, IntersectionAndUnion) {
  Envelope a(0, 0, 4, 4);
  Envelope b(2, 2, 6, 6);
  EXPECT_EQ(a.Intersection(b), Envelope(2, 2, 4, 4));
  EXPECT_EQ(a.Union(b), Envelope(0, 0, 6, 6));
  EXPECT_TRUE(a.Intersection(Envelope(5, 5, 6, 6)).IsNull());
}

TEST(EnvelopeTest, Enlargement) {
  Envelope a(0, 0, 2, 2);
  EXPECT_DOUBLE_EQ(a.EnlargementToInclude(Envelope(0, 0, 1, 1)), 0.0);
  EXPECT_DOUBLE_EQ(a.EnlargementToInclude(Envelope(0, 0, 4, 2)), 4.0);
}

TEST(EnvelopeTest, Distance) {
  Envelope a(0, 0, 1, 1);
  EXPECT_DOUBLE_EQ(a.DistanceTo(Envelope(2, 0, 3, 1)), 1.0);
  EXPECT_DOUBLE_EQ(a.DistanceTo(Envelope(0.5, 0.5, 2, 2)), 0.0);
  // Diagonal separation: 3-4-5 triangle.
  EXPECT_DOUBLE_EQ(a.DistanceTo(Envelope(4, 5, 6, 7)), 5.0);
  EXPECT_DOUBLE_EQ(a.DistanceTo(Coord{1, 3}), 2.0);
}

TEST(EnvelopeTest, Expanded) {
  Envelope a(2, 2, 4, 4);
  EXPECT_EQ(a.Expanded(1), Envelope(1, 1, 5, 5));
  EXPECT_TRUE(a.Expanded(-2).IsNull());
}

TEST(EnvelopeTest, CenterAndPerimeter) {
  Envelope a(0, 0, 4, 2);
  EXPECT_EQ(a.Center(), (Coord{2, 1}));
  EXPECT_DOUBLE_EQ(a.Perimeter(), 12.0);
}

}  // namespace
}  // namespace jackpine::geom
