// Tests for GROUP BY aggregation and the EXPLAIN statement.

#include <gtest/gtest.h>

#include "engine/database.h"

namespace jackpine::engine {
namespace {

class GroupByTest : public ::testing::Test {
 protected:
  void SetUp() override {
    Exec("CREATE TABLE parcels (county BIGINT, kind VARCHAR, area DOUBLE, "
         "geom GEOMETRY)");
    Exec("INSERT INTO parcels VALUES "
         "(1, 'park', 10.0, ST_MakeEnvelope(0, 0, 1, 1)), "
         "(1, 'park', 20.0, ST_MakeEnvelope(2, 0, 3, 1)), "
         "(1, 'farm', 5.0,  ST_MakeEnvelope(4, 0, 5, 1)), "
         "(2, 'park', 7.0,  ST_MakeEnvelope(0, 5, 1, 6)), "
         "(2, 'farm', 3.0,  ST_MakeEnvelope(2, 5, 3, 6)), "
         "(3, 'farm', 1.0,  ST_MakeEnvelope(4, 5, 5, 6))");
  }

  QueryResult Exec(const std::string& sql) {
    auto r = db_.Execute(sql);
    EXPECT_TRUE(r.ok()) << sql << " -> " << r.status().ToString();
    return r.ok() ? std::move(r).value() : QueryResult{};
  }

  Database db_;
};

TEST_F(GroupByTest, CountPerGroup) {
  QueryResult r = Exec(
      "SELECT county, COUNT(*) FROM parcels GROUP BY county ORDER BY county");
  ASSERT_EQ(r.rows.size(), 3u);
  EXPECT_EQ(r.rows[0][0].int_value(), 1);
  EXPECT_EQ(r.rows[0][1].int_value(), 3);
  EXPECT_EQ(r.rows[1][1].int_value(), 2);
  EXPECT_EQ(r.rows[2][1].int_value(), 1);
}

TEST_F(GroupByTest, MultipleAggregatesAndKeys) {
  QueryResult r = Exec(
      "SELECT county, kind, SUM(area), AVG(area) FROM parcels "
      "GROUP BY county, kind ORDER BY county, kind");
  ASSERT_EQ(r.rows.size(), 5u);
  // county 1 / farm.
  EXPECT_EQ(r.rows[0][1].string_value(), "farm");
  EXPECT_DOUBLE_EQ(r.rows[0][2].double_value(), 5.0);
  // county 1 / park: 10 + 20.
  EXPECT_DOUBLE_EQ(r.rows[1][2].double_value(), 30.0);
  EXPECT_DOUBLE_EQ(r.rows[1][3].double_value(), 15.0);
}

TEST_F(GroupByTest, SpatialAggregatesPerGroup) {
  QueryResult r = Exec(
      "SELECT county, SUM(ST_Area(geom)) FROM parcels "
      "GROUP BY county ORDER BY county");
  ASSERT_EQ(r.rows.size(), 3u);
  EXPECT_DOUBLE_EQ(r.rows[0][1].double_value(), 3.0);
  EXPECT_DOUBLE_EQ(r.rows[1][1].double_value(), 2.0);
}

TEST_F(GroupByTest, OrderByAggregate) {
  QueryResult r = Exec(
      "SELECT kind, SUM(area) FROM parcels GROUP BY kind "
      "ORDER BY SUM(area) DESC");
  ASSERT_EQ(r.rows.size(), 2u);
  EXPECT_EQ(r.rows[0][0].string_value(), "park");  // 37 > 9
}

TEST_F(GroupByTest, GroupByExpression) {
  QueryResult r = Exec(
      "SELECT county % 2, COUNT(*) FROM parcels GROUP BY county % 2 "
      "ORDER BY county % 2");
  ASSERT_EQ(r.rows.size(), 2u);
  EXPECT_EQ(r.rows[0][1].int_value(), 2);  // county 2
  EXPECT_EQ(r.rows[1][1].int_value(), 4);  // counties 1 and 3
}

TEST_F(GroupByTest, LimitAppliesAfterGrouping) {
  QueryResult r = Exec(
      "SELECT county, COUNT(*) FROM parcels GROUP BY county "
      "ORDER BY county LIMIT 2");
  EXPECT_EQ(r.rows.size(), 2u);
}

TEST_F(GroupByTest, GroupOnFilteredRows) {
  QueryResult r = Exec(
      "SELECT county, COUNT(*) FROM parcels WHERE kind = 'park' "
      "GROUP BY county ORDER BY county");
  ASSERT_EQ(r.rows.size(), 2u);
  EXPECT_EQ(r.rows[0][1].int_value(), 2);
  EXPECT_EQ(r.rows[1][1].int_value(), 1);
}

TEST_F(GroupByTest, EmptyInputYieldsNoGroups) {
  QueryResult r = Exec(
      "SELECT county, COUNT(*) FROM parcels WHERE area > 1000 "
      "GROUP BY county");
  EXPECT_TRUE(r.rows.empty());
}

TEST(ExplainTest, DescribesAccessPaths) {
  Database db;
  ASSERT_TRUE(db.Execute("CREATE TABLE t (id BIGINT, geom GEOMETRY)").ok());
  ASSERT_TRUE(
      db.Execute("INSERT INTO t VALUES (1, ST_MakePoint(0, 0))").ok());

  auto seq = db.Execute("EXPLAIN SELECT * FROM t");
  ASSERT_TRUE(seq.ok());
  ASSERT_FALSE(seq->rows.empty());
  EXPECT_NE(seq->rows[0][0].string_value().find("SeqScan"),
            std::string::npos);

  ASSERT_TRUE(db.Execute("CREATE SPATIAL INDEX ON t (geom)").ok());
  auto window = db.Execute(
      "EXPLAIN SELECT * FROM t WHERE ST_Intersects(geom, "
      "ST_MakeEnvelope(0, 0, 1, 1))");
  ASSERT_TRUE(window.ok());
  EXPECT_NE(window->rows[0][0].string_value().find("IndexWindowScan"),
            std::string::npos);

  auto knn = db.Execute(
      "EXPLAIN SELECT * FROM t ORDER BY ST_Distance(geom, "
      "ST_MakePoint(1, 1)) LIMIT 1");
  ASSERT_TRUE(knn.ok());
  EXPECT_NE(knn->rows[0][0].string_value().find("KnnIndexScan"),
            std::string::npos);

  ASSERT_TRUE(db.Execute("CREATE TABLE u (id BIGINT, geom GEOMETRY)").ok());
  auto join = db.Execute(
      "EXPLAIN SELECT COUNT(*) FROM t, u WHERE ST_Intersects(t.geom, "
      "u.geom)");
  ASSERT_TRUE(join.ok());
  EXPECT_NE(join->rows[0][0].string_value().find("Join"), std::string::npos);
}

TEST(ExplainTest, ShowsPipelineStages) {
  Database db;
  ASSERT_TRUE(
      db.Execute("CREATE TABLE t (id BIGINT, k BIGINT)").ok());
  auto r = db.Execute(
      "EXPLAIN SELECT k, COUNT(*) FROM t WHERE id > 0 GROUP BY k "
      "ORDER BY k LIMIT 5");
  ASSERT_TRUE(r.ok());
  std::string all;
  for (const auto& row : r->rows) all += row[0].string_value() + "\n";
  EXPECT_NE(all.find("Filter"), std::string::npos);
  EXPECT_NE(all.find("GroupBy"), std::string::npos);
  EXPECT_NE(all.find("Aggregate"), std::string::npos);
  EXPECT_NE(all.find("Sort"), std::string::npos);
  EXPECT_NE(all.find("Limit 5"), std::string::npos);
  EXPECT_NE(all.find("Output: k, count"), std::string::npos);
}

}  // namespace
}  // namespace jackpine::engine
