// Tests for GROUP BY aggregation and the EXPLAIN / EXPLAIN ANALYZE
// statements.

#include <gtest/gtest.h>

#include "common/exec_context.h"
#include "engine/database.h"
#include "obs/trace.h"

namespace jackpine::engine {
namespace {

class GroupByTest : public ::testing::Test {
 protected:
  void SetUp() override {
    Exec("CREATE TABLE parcels (county BIGINT, kind VARCHAR, area DOUBLE, "
         "geom GEOMETRY)");
    Exec("INSERT INTO parcels VALUES "
         "(1, 'park', 10.0, ST_MakeEnvelope(0, 0, 1, 1)), "
         "(1, 'park', 20.0, ST_MakeEnvelope(2, 0, 3, 1)), "
         "(1, 'farm', 5.0,  ST_MakeEnvelope(4, 0, 5, 1)), "
         "(2, 'park', 7.0,  ST_MakeEnvelope(0, 5, 1, 6)), "
         "(2, 'farm', 3.0,  ST_MakeEnvelope(2, 5, 3, 6)), "
         "(3, 'farm', 1.0,  ST_MakeEnvelope(4, 5, 5, 6))");
  }

  QueryResult Exec(const std::string& sql) {
    auto r = db_.Execute(sql);
    EXPECT_TRUE(r.ok()) << sql << " -> " << r.status().ToString();
    return r.ok() ? std::move(r).value() : QueryResult{};
  }

  Database db_;
};

TEST_F(GroupByTest, CountPerGroup) {
  QueryResult r = Exec(
      "SELECT county, COUNT(*) FROM parcels GROUP BY county ORDER BY county");
  ASSERT_EQ(r.rows.size(), 3u);
  EXPECT_EQ(r.rows[0][0].int_value(), 1);
  EXPECT_EQ(r.rows[0][1].int_value(), 3);
  EXPECT_EQ(r.rows[1][1].int_value(), 2);
  EXPECT_EQ(r.rows[2][1].int_value(), 1);
}

TEST_F(GroupByTest, MultipleAggregatesAndKeys) {
  QueryResult r = Exec(
      "SELECT county, kind, SUM(area), AVG(area) FROM parcels "
      "GROUP BY county, kind ORDER BY county, kind");
  ASSERT_EQ(r.rows.size(), 5u);
  // county 1 / farm.
  EXPECT_EQ(r.rows[0][1].string_value(), "farm");
  EXPECT_DOUBLE_EQ(r.rows[0][2].double_value(), 5.0);
  // county 1 / park: 10 + 20.
  EXPECT_DOUBLE_EQ(r.rows[1][2].double_value(), 30.0);
  EXPECT_DOUBLE_EQ(r.rows[1][3].double_value(), 15.0);
}

TEST_F(GroupByTest, SpatialAggregatesPerGroup) {
  QueryResult r = Exec(
      "SELECT county, SUM(ST_Area(geom)) FROM parcels "
      "GROUP BY county ORDER BY county");
  ASSERT_EQ(r.rows.size(), 3u);
  EXPECT_DOUBLE_EQ(r.rows[0][1].double_value(), 3.0);
  EXPECT_DOUBLE_EQ(r.rows[1][1].double_value(), 2.0);
}

TEST_F(GroupByTest, OrderByAggregate) {
  QueryResult r = Exec(
      "SELECT kind, SUM(area) FROM parcels GROUP BY kind "
      "ORDER BY SUM(area) DESC");
  ASSERT_EQ(r.rows.size(), 2u);
  EXPECT_EQ(r.rows[0][0].string_value(), "park");  // 37 > 9
}

TEST_F(GroupByTest, GroupByExpression) {
  QueryResult r = Exec(
      "SELECT county % 2, COUNT(*) FROM parcels GROUP BY county % 2 "
      "ORDER BY county % 2");
  ASSERT_EQ(r.rows.size(), 2u);
  EXPECT_EQ(r.rows[0][1].int_value(), 2);  // county 2
  EXPECT_EQ(r.rows[1][1].int_value(), 4);  // counties 1 and 3
}

TEST_F(GroupByTest, LimitAppliesAfterGrouping) {
  QueryResult r = Exec(
      "SELECT county, COUNT(*) FROM parcels GROUP BY county "
      "ORDER BY county LIMIT 2");
  EXPECT_EQ(r.rows.size(), 2u);
}

TEST_F(GroupByTest, GroupOnFilteredRows) {
  QueryResult r = Exec(
      "SELECT county, COUNT(*) FROM parcels WHERE kind = 'park' "
      "GROUP BY county ORDER BY county");
  ASSERT_EQ(r.rows.size(), 2u);
  EXPECT_EQ(r.rows[0][1].int_value(), 2);
  EXPECT_EQ(r.rows[1][1].int_value(), 1);
}

TEST_F(GroupByTest, EmptyInputYieldsNoGroups) {
  QueryResult r = Exec(
      "SELECT county, COUNT(*) FROM parcels WHERE area > 1000 "
      "GROUP BY county");
  EXPECT_TRUE(r.rows.empty());
}

TEST(ExplainTest, DescribesAccessPaths) {
  Database db;
  ASSERT_TRUE(db.Execute("CREATE TABLE t (id BIGINT, geom GEOMETRY)").ok());
  ASSERT_TRUE(
      db.Execute("INSERT INTO t VALUES (1, ST_MakePoint(0, 0))").ok());

  auto seq = db.Execute("EXPLAIN SELECT * FROM t");
  ASSERT_TRUE(seq.ok());
  ASSERT_FALSE(seq->rows.empty());
  EXPECT_NE(seq->rows[0][0].string_value().find("SeqScan"),
            std::string::npos);

  ASSERT_TRUE(db.Execute("CREATE SPATIAL INDEX ON t (geom)").ok());
  auto window = db.Execute(
      "EXPLAIN SELECT * FROM t WHERE ST_Intersects(geom, "
      "ST_MakeEnvelope(0, 0, 1, 1))");
  ASSERT_TRUE(window.ok());
  EXPECT_NE(window->rows[0][0].string_value().find("IndexWindowScan"),
            std::string::npos);

  auto knn = db.Execute(
      "EXPLAIN SELECT * FROM t ORDER BY ST_Distance(geom, "
      "ST_MakePoint(1, 1)) LIMIT 1");
  ASSERT_TRUE(knn.ok());
  EXPECT_NE(knn->rows[0][0].string_value().find("KnnIndexScan"),
            std::string::npos);

  ASSERT_TRUE(db.Execute("CREATE TABLE u (id BIGINT, geom GEOMETRY)").ok());
  auto join = db.Execute(
      "EXPLAIN SELECT COUNT(*) FROM t, u WHERE ST_Intersects(t.geom, "
      "u.geom)");
  ASSERT_TRUE(join.ok());
  EXPECT_NE(join->rows[0][0].string_value().find("Join"), std::string::npos);
}

TEST(ExplainTest, ShowsPipelineStages) {
  Database db;
  ASSERT_TRUE(
      db.Execute("CREATE TABLE t (id BIGINT, k BIGINT)").ok());
  auto r = db.Execute(
      "EXPLAIN SELECT k, COUNT(*) FROM t WHERE id > 0 GROUP BY k "
      "ORDER BY k LIMIT 5");
  ASSERT_TRUE(r.ok());
  std::string all;
  for (const auto& row : r->rows) all += row[0].string_value() + "\n";
  EXPECT_NE(all.find("Filter"), std::string::npos);
  EXPECT_NE(all.find("GroupBy"), std::string::npos);
  EXPECT_NE(all.find("Aggregate"), std::string::npos);
  EXPECT_NE(all.find("Sort"), std::string::npos);
  EXPECT_NE(all.find("Limit 5"), std::string::npos);
  EXPECT_NE(all.find("Output: k, count"), std::string::npos);
}

TEST(ExplainAnalyzeTest, AnnotatesExecutedPlan) {
  Database db;
  ASSERT_TRUE(db.Execute("CREATE TABLE t (id BIGINT, geom GEOMETRY)").ok());
  for (int i = 0; i < 20; ++i) {
    ASSERT_TRUE(db.Execute("INSERT INTO t VALUES (" + std::to_string(i) +
                           ", ST_MakePoint(" + std::to_string(i) + ", 0))")
                    .ok());
  }
  ASSERT_TRUE(db.Execute("CREATE SPATIAL INDEX ON t (geom)").ok());
  auto r = db.Execute(
      "EXPLAIN ANALYZE SELECT * FROM t WHERE ST_Intersects(geom, "
      "ST_MakeEnvelope(0, 0, 5, 5))");
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  std::string all;
  for (const auto& row : r->rows) all += row[0].string_value() + "\n";
  // The executed plan carries actual counters on the scan and filter lines
  // plus a stage-timing footer.
  EXPECT_NE(all.find("IndexWindowScan"), std::string::npos);
  EXPECT_NE(all.find("actual:"), std::string::npos);
  EXPECT_NE(all.find("probes="), std::string::npos);
  EXPECT_NE(all.find("nodes="), std::string::npos);
  EXPECT_NE(all.find("candidates="), std::string::npos);
  EXPECT_NE(all.find("survivors="), std::string::npos);
  EXPECT_NE(all.find("Execution: parse"), std::string::npos);
  EXPECT_NE(all.find("Rows: examined="), std::string::npos);
}

TEST(ExplainAnalyzeTest, IndexedSpatialJoinReportsPipelineCounters) {
  Database db;
  ASSERT_TRUE(db.Execute("CREATE TABLE a (id BIGINT, geom GEOMETRY)").ok());
  ASSERT_TRUE(db.Execute("CREATE TABLE b (id BIGINT, geom GEOMETRY)").ok());
  for (int i = 0; i < 10; ++i) {
    const std::string v = std::to_string(i);
    ASSERT_TRUE(db.Execute("INSERT INTO a VALUES (" + v +
                           ", ST_MakeEnvelope(" + v + ", 0, " + v +
                           ".9, 1))")
                    .ok());
    ASSERT_TRUE(db.Execute("INSERT INTO b VALUES (" + v +
                           ", ST_MakeEnvelope(" + v + ".5, 0, " + v +
                           ".6, 1))")
                    .ok());
  }
  ASSERT_TRUE(db.Execute("CREATE SPATIAL INDEX ON b (geom)").ok());
  // Also capture the caller's trace to prove the ANALYZE run merges out.
  obs::QueryTrace trace;
  ExecLimits limits;
  limits.trace = &trace;
  ExecContext exec(limits);
  auto r = db.Execute(
      "EXPLAIN ANALYZE SELECT COUNT(*) FROM a, b WHERE "
      "ST_Intersects(a.geom, b.geom)",
      &exec);
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  std::string all;
  for (const auto& row : r->rows) all += row[0].string_value() + "\n";
  EXPECT_NE(all.find("IndexNestedLoopJoin"), std::string::npos);
  EXPECT_NE(all.find("actual:"), std::string::npos);
  // Ten outer probes against the b index: nodes visited, MBR candidates and
  // refinement survivors are all nonzero for this overlapping workload.
  EXPECT_GT(trace.index_probes, 0u);
  EXPECT_GT(trace.index_nodes_visited, 0u);
  EXPECT_GT(trace.index_candidates, 0u);
  EXPECT_GT(trace.refine_checks, 0u);
  EXPECT_GT(trace.refine_survivors, 0u);
  EXPECT_EQ(trace.queries, 1u);
  EXPECT_GT(trace.total_s, 0.0);
}

TEST(ExplainAnalyzeTest, SeqScanReportsRowsScanned) {
  Database db;
  ASSERT_TRUE(db.Execute("CREATE TABLE t (id BIGINT)").ok());
  ASSERT_TRUE(db.Execute("INSERT INTO t VALUES (1), (2), (3)").ok());
  auto r = db.Execute("EXPLAIN ANALYZE SELECT * FROM t WHERE id > 1");
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  std::string all;
  for (const auto& row : r->rows) all += row[0].string_value() + "\n";
  EXPECT_NE(all.find("rows_scanned=3"), std::string::npos);
  EXPECT_NE(all.find("checks=3"), std::string::npos);
  EXPECT_NE(all.find("survivors=2"), std::string::npos);
  EXPECT_NE(all.find("returned=2"), std::string::npos);
}

TEST(ExplainAnalyzeTest, PlainExplainStaysUnannotated) {
  Database db;
  ASSERT_TRUE(db.Execute("CREATE TABLE t (id BIGINT)").ok());
  auto r = db.Execute("EXPLAIN SELECT * FROM t");
  ASSERT_TRUE(r.ok());
  std::string all;
  for (const auto& row : r->rows) all += row[0].string_value() + "\n";
  EXPECT_EQ(all.find("actual:"), std::string::npos);
  EXPECT_EQ(all.find("Execution:"), std::string::npos);
}

}  // namespace
}  // namespace jackpine::engine
