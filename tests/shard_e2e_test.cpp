// End-to-end tests for the shard router: real pinedb servers on loopback
// ephemeral ports behind a jackpine:shard(...) URL. The tentpole guarantees:
// scatter-gather results identical to a single node for the whole suite,
// window pruning visible in the fanout metric, and per-shard resilience
// (breaker on a dead shard, shed pacing, deterministic per-shard chaos)
// with failures that name the endpoint.

#include <gtest/gtest.h>

#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "client/circuit_breaker.h"
#include "client/client.h"
#include "core/loader.h"
#include "core/micro_suite.h"
#include "core/runner.h"
#include "net/remote_driver.h"
#include "net/server.h"
#include "obs/metrics.h"
#include "shard/shard_router.h"
#include "tigergen/tigergen.h"

namespace jackpine {
namespace {

class ShardE2eTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    net::RegisterRemoteDriver();
    shard::RegisterShardDriver();
  }
};

tigergen::TigerDataset SmallDataset() {
  tigergen::TigerGenOptions gen;
  gen.scale = 0.05;
  gen.seed = 7;
  return tigergen::GenerateTiger(gen);
}

std::unique_ptr<net::Server> StartServer(const std::string& sut) {
  net::ServerOptions options;
  options.sut = sut;
  options.port = 0;
  auto server = net::Server::Start(options);
  EXPECT_TRUE(server.ok()) << server.status().ToString();
  return std::move(server).value();
}

std::string Endpoint(const net::Server& server) {
  return "127.0.0.1:" + std::to_string(server.port());
}

std::string ShardUrl(const std::vector<const net::Server*>& servers,
                     const std::string& sut, const std::string& opts = "") {
  std::string url = "jackpine:shard(";
  for (size_t i = 0; i < servers.size(); ++i) {
    if (i > 0) url += ',';
    url += Endpoint(*servers[i]);
  }
  if (!opts.empty()) url += ";" + opts;
  return url + ")/" + sut;
}

TEST_F(ShardE2eTest, DdlInsertSelectDistributesRows) {
  auto s0 = StartServer("pine-rtree");
  auto s1 = StartServer("pine-rtree");
  auto conn = client::Connection::Open(ShardUrl({s0.get(), s1.get()},
                                                "pine-rtree"));
  ASSERT_TRUE(conn.ok()) << conn.status().ToString();

  client::Statement stmt = conn->CreateStatement();
  ASSERT_TRUE(
      stmt.ExecuteUpdate("CREATE TABLE pts (id BIGINT, geom GEOMETRY)").ok());
  // Sixteen points spread over the whole extent: with the default 16x16
  // grid and two shards, both shards end up owning some of them.
  std::string values;
  for (int i = 0; i < 16; ++i) {
    if (i > 0) values += ", ";
    const double x = 3.0 + 6.0 * (i % 4) * 4.0, y = 3.0 + 6.0 * (i / 4) * 4.0;
    values += "(" + std::to_string(i) + ", ST_GeomFromText('POINT(" +
              std::to_string(x) + " " + std::to_string(y) + ")'))";
  }
  auto inserted = stmt.ExecuteUpdate("INSERT INTO pts VALUES " + values);
  ASSERT_TRUE(inserted.ok()) << inserted.status().ToString();
  EXPECT_EQ(*inserted, 16);  // logical rows, not per-shard copies

  // The router reports each row exactly once, in engine-canonical order.
  auto rs = stmt.ExecuteQuery("SELECT p.id FROM pts AS p ORDER BY p.id");
  ASSERT_TRUE(rs.ok()) << rs.status().ToString();
  ASSERT_EQ(rs->RowCount(), 16u);
  for (int i = 0; i < 16; ++i) {
    ASSERT_TRUE(rs->Next());
    EXPECT_EQ(rs->GetInt64(0).value(), i);
  }

  // The rows are genuinely partitioned: each server holds a strict subset
  // (the shards split the grid) and together they cover everything.
  auto count_on = [](net::Server* server) -> int64_t {
    client::Statement local = server->connection().CreateStatement();
    auto local_rs = local.ExecuteQuery("SELECT COUNT(*) FROM pts");
    EXPECT_TRUE(local_rs.ok()) << local_rs.status().ToString();
    EXPECT_TRUE(local_rs->Next());
    return local_rs->GetInt64(0).value();
  };
  const int64_t on0 = count_on(s0.get()), on1 = count_on(s1.get());
  EXPECT_GT(on0, 0);
  EXPECT_GT(on1, 0);
  EXPECT_LT(on0, 16);
  EXPECT_LT(on1, 16);
  EXPECT_GE(on0 + on1, 16);  // >= : border-straddlers are duplicated
}

// The acceptance bar: the full micro-topology suite through a 2-shard
// cluster returns identical row counts and checksums to a single in-process
// node, with the dataset itself loaded through the router.
TEST_F(ShardE2eTest, TwoShardSuiteMatchesSingleNodeExactly) {
  const tigergen::TigerDataset dataset = SmallDataset();

  auto local = client::Connection::Open("jackpine:pine-rtree");
  ASSERT_TRUE(local.ok());
  ASSERT_TRUE(core::LoadDataset(dataset, &*local).ok());

  auto s0 = StartServer("pine-rtree");
  auto s1 = StartServer("pine-rtree");
  auto sharded = client::Connection::Open(
      ShardUrl({s0.get(), s1.get()}, "pine-rtree", "replicate=county"));
  ASSERT_TRUE(sharded.ok()) << sharded.status().ToString();
  auto load = core::LoadDataset(dataset, &*sharded);
  ASSERT_TRUE(load.ok()) << load.status().ToString();
  EXPECT_EQ(load->rows, dataset.TotalRows());

  core::RunConfig config;
  config.warmup = 0;
  config.repetitions = 1;
  const auto suite = core::BuildTopologicalSuite(dataset);
  const auto local_runs = core::RunSuite(&*local, suite, config);
  const auto shard_runs = core::RunSuite(&*sharded, suite, config);
  ASSERT_EQ(local_runs.size(), shard_runs.size());
  for (size_t i = 0; i < local_runs.size(); ++i) {
    EXPECT_TRUE(shard_runs[i].ok)
        << shard_runs[i].query_id << ": " << shard_runs[i].error;
    EXPECT_EQ(local_runs[i].result_rows, shard_runs[i].result_rows)
        << local_runs[i].query_id;
    EXPECT_EQ(local_runs[i].checksum, shard_runs[i].checksum)
        << local_runs[i].query_id;
  }
}

// Window pruning is observable: a query whose predicate window lies inside
// one shard's cells contacts only that shard (shard.last_fanout == 1),
// while an unprunable scan fans out to the whole cluster.
TEST_F(ShardE2eTest, PrunedWindowContactsOnlyOwningShards) {
  auto s0 = StartServer("pine-rtree");
  auto s1 = StartServer("pine-rtree");
  auto conn = client::Connection::Open(ShardUrl({s0.get(), s1.get()},
                                                "pine-rtree"));
  ASSERT_TRUE(conn.ok()) << conn.status().ToString();
  client::Statement stmt = conn->CreateStatement();
  ASSERT_TRUE(
      stmt.ExecuteUpdate("CREATE TABLE pts (id BIGINT, geom GEOMETRY)").ok());
  ASSERT_TRUE(stmt.ExecuteUpdate(
                      "INSERT INTO pts VALUES "
                      "(1, ST_GeomFromText('POINT(1 1)')), "
                      "(2, ST_GeomFromText('POINT(98 98)'))")
                  .ok());

  obs::Gauge* last_fanout =
      obs::GlobalRegistry().GetGauge("shard.last_fanout");
  ASSERT_NE(last_fanout, nullptr);

  // Window wholly inside grid cell (0, 0): one owning shard.
  auto rs = stmt.ExecuteQuery(
      "SELECT p.id FROM pts AS p WHERE ST_Intersects(p.geom, "
      "ST_GeomFromText('POLYGON((0 0, 2 0, 2 2, 0 2, 0 0))'))");
  ASSERT_TRUE(rs.ok()) << rs.status().ToString();
  EXPECT_EQ(rs->RowCount(), 1u);
  EXPECT_EQ(last_fanout->value(), 1.0);

  // Unprunable scan: both shards.
  auto all = stmt.ExecuteQuery("SELECT COUNT(*) FROM pts");
  ASSERT_TRUE(all.ok()) << all.status().ToString();
  EXPECT_EQ(last_fanout->value(), 2.0);
}

// A dead shard: every statement that touches it fails with kUnavailable
// naming the endpoint, four consecutive transport failures open that
// shard's breaker, and further attempts fast-fail with a retry hint while
// the healthy shard keeps answering.
TEST_F(ShardE2eTest, DeadShardTripsBreakerAndNamesEndpoint) {
  // Bind-then-close for a port with nothing behind it.
  uint16_t dead_port;
  {
    auto doomed = StartServer("pine-rtree");
    dead_port = doomed->port();
  }
  auto live = StartServer("pine-rtree");

  shard::ShardOptions options;
  auto parsed = shard::ParseShardUrl(
      "shard(" + Endpoint(*live) + ",127.0.0.1:" +
      std::to_string(dead_port) + ")/pine-rtree");
  ASSERT_TRUE(parsed.ok()) << parsed.status().ToString();
  auto driver = shard::ShardDriver::Create(std::move(*parsed));
  ASSERT_TRUE(driver.ok()) << driver.status().ToString();
  auto session = (*driver)->NewSession();
  ASSERT_TRUE(session.ok()) << session.status().ToString();

  const std::string dead_label = "127.0.0.1:" + std::to_string(dead_port);
  ExecLimits limits;
  bool saw_fast_fail = false;
  for (int i = 0; i < 8 && !saw_fast_fail; ++i) {
    // Broadcast DDL touches every shard; fresh names keep the live shard
    // error-free so the dead shard's failure is the one reported.
    auto result = (*session)->ExecuteUpdate(
        "CREATE TABLE t" + std::to_string(i) + " (x BIGINT)", limits);
    ASSERT_FALSE(result.ok());
    EXPECT_EQ(result.status().code(), StatusCode::kUnavailable);
    if (IsBreakerFastFail(result.status())) {
      saw_fast_fail = true;
      EXPECT_GT(result.status().retry_after_ms(), 0u);
    } else {
      // Pre-breaker transport failures name the dead endpoint.
      EXPECT_NE(result.status().message().find(dead_label),
                std::string::npos)
          << result.status().message();
    }
  }
  EXPECT_TRUE(saw_fast_fail);
  EXPECT_EQ((*driver)->shard_driver(1)->breaker()->state(),
            client::CircuitBreaker::State::kOpen);
  EXPECT_EQ((*driver)->shard_driver(0)->breaker()->state(),
            client::CircuitBreaker::State::kClosed);

  // The live shard answered every broadcast despite its dead peer.
  client::Statement live_stmt = live->connection().CreateStatement();
  auto on_live = live_stmt.ExecuteQuery("SELECT COUNT(*) FROM t0");
  EXPECT_TRUE(on_live.ok()) << on_live.status().ToString();
}

// A saturated shard sheds with a structured retry hint; the benchmark
// runner's retry policy paces from it (shared RetryBudget) and the query
// succeeds once the shard frees up.
TEST_F(ShardE2eTest, ShedShardPacesRetryFromSharedBudget) {
  net::ServerOptions options;
  options.sut = "pine-rtree";
  options.port = 0;
  options.max_sessions = 1;
  options.max_wait_queue = 0;
  options.retry_after_ms = 30;
  auto server_or = net::Server::Start(options);
  ASSERT_TRUE(server_or.ok());
  auto& server = *server_or;
  {
    client::Statement preload = server->connection().CreateStatement();
    ASSERT_TRUE(preload.ExecuteUpdate("CREATE TABLE t (x BIGINT)").ok());
    ASSERT_TRUE(preload.ExecuteUpdate("INSERT INTO t VALUES (1)").ok());
  }

  // Occupy the single session slot with a direct connection.
  std::optional<client::Connection> occupier;
  {
    auto conn = client::Connection::Open(
        "jackpine:tcp://" + Endpoint(*server) + "/pine-rtree");
    ASSERT_TRUE(conn.ok()) << conn.status().ToString();
    occupier.emplace(*std::move(conn));
  }
  std::optional<client::Statement> occupier_stmt(
      occupier->CreateStatement());
  ASSERT_TRUE(occupier_stmt->ExecuteQuery("SELECT COUNT(*) FROM t").ok());

  auto sharded = client::Connection::Open(
      ShardUrl({server.get()}, "pine-rtree"));
  ASSERT_TRUE(sharded.ok()) << sharded.status().ToString();

  // Without retries the shed surfaces structurally: retryable, hinted, and
  // naming the saturated endpoint.
  {
    client::Statement stmt = sharded->CreateStatement();
    auto rs = stmt.ExecuteQuery("SELECT COUNT(*) FROM t");
    ASSERT_FALSE(rs.ok());
    EXPECT_TRUE(IsShed(rs.status())) << rs.status().ToString();
    EXPECT_GE(rs.status().retry_after_ms(), 30u);
    EXPECT_NE(rs.status().message().find(Endpoint(*server)),
              std::string::npos)
        << rs.status().message();
  }

  // The runner retries against the hint from a shared budget and records
  // the sheds; while the slot stays occupied it runs out of attempts...
  core::RunConfig config;
  config.warmup = 0;
  config.repetitions = 1;
  config.retry.max_attempts = 2;
  config.retry.backoff_base_s = 1e-3;
  config.retry.honor_retry_after = true;
  config.retry.budget = std::make_shared<core::RetryBudget>(10.0, 10.0, 0.1);
  core::QuerySpec q;
  q.id = "count";
  q.sql = "SELECT COUNT(*) FROM t";
  const core::RunResult blocked = core::RunQuery(&*sharded, q, config);
  EXPECT_FALSE(blocked.ok);
  EXPECT_GE(blocked.sheds, 2u);  // every attempt shed, each paced by the hint

  // ...and once the occupier leaves, the same connection recovers.
  occupier_stmt.reset();
  occupier.reset();
  const core::RunResult after = core::RunQuery(&*sharded, q, config);
  EXPECT_TRUE(after.ok) << after.error;
}

// Chaos composes per-shard and stays deterministic: two routers built from
// the same URL (same per-endpoint seed) observe byte-identical outcome
// sequences, and the injected failures name the wrapped shard.
TEST_F(ShardE2eTest, PerShardChaosIsDeterministic) {
  auto server = StartServer("pine-rtree");
  {
    client::Statement preload = server->connection().CreateStatement();
    ASSERT_TRUE(preload.ExecuteUpdate("CREATE TABLE t (x BIGINT)").ok());
  }
  const std::string url = "jackpine:shard(chaos(42,0.5,0)@" +
                          Endpoint(*server) + ")/pine-rtree";

  auto outcome_trace = [&](int n) {
    auto conn = client::Connection::Open(url);
    EXPECT_TRUE(conn.ok()) << conn.status().ToString();
    client::Statement stmt = conn->CreateStatement();
    std::string trace;
    for (int i = 0; i < n; ++i) {
      auto rs = stmt.ExecuteQuery("SELECT COUNT(*) FROM t");
      trace += rs.ok() ? "." : "[" + rs.status().ToString() + "]";
    }
    return trace;
  };

  const std::string first = outcome_trace(40);
  const std::string second = outcome_trace(40);
  EXPECT_EQ(first, second);
  // The trace genuinely mixes successes and injected shard faults, and the
  // faults say which shard they hit.
  EXPECT_NE(first.find('.'), std::string::npos);
  EXPECT_NE(first.find("chaos"), std::string::npos);
  EXPECT_NE(first.find(Endpoint(*server)), std::string::npos);
}

// --- High availability: replica groups, failover, staleness, hedging ----

uint64_t HaCounter(const char* name) {
  return obs::GlobalRegistry().GetCounter(name)->value();
}

// Writes broadcast to every replica of the owning shard, and when one
// replica dies the read scatter fails over to its sibling: the suite keeps
// answering with zero client-visible errors and the failover counter moves.
TEST_F(ShardE2eTest, ReplicaFailoverServesReadsAfterShutdown) {
  auto primary = StartServer("pine-rtree");
  auto secondary = StartServer("pine-rtree");
  // health_ms=0: no health steering, so reads deterministically try the
  // URL-order primary first and the failover is forced, not dodged.
  const std::string url = "jackpine:shard(" + Endpoint(*primary) + "|" +
                          Endpoint(*secondary) +
                          ";health_ms=0)/pine-rtree";
  auto conn = client::Connection::Open(url);
  ASSERT_TRUE(conn.ok()) << conn.status().ToString();
  client::Statement stmt = conn->CreateStatement();
  ASSERT_TRUE(
      stmt.ExecuteUpdate("CREATE TABLE pts (id BIGINT, geom GEOMETRY)").ok());
  auto inserted = stmt.ExecuteUpdate(
      "INSERT INTO pts VALUES (1, ST_GeomFromText('POINT(3 3)')), "
      "(2, ST_GeomFromText('POINT(50 50)'))");
  ASSERT_TRUE(inserted.ok()) << inserted.status().ToString();
  EXPECT_EQ(*inserted, 2);  // logical rows, not per-replica copies

  // The broadcast landed the full row set on BOTH replicas.
  for (net::Server* server : {primary.get(), secondary.get()}) {
    client::Statement local = server->connection().CreateStatement();
    auto rs = local.ExecuteQuery("SELECT COUNT(*) FROM pts");
    ASSERT_TRUE(rs.ok()) << rs.status().ToString();
    ASSERT_TRUE(rs->Next());
    EXPECT_EQ(rs->GetInt64(0).value(), 2);
  }

  const uint64_t failovers_before = HaCounter("shard.failover");
  primary->Shutdown();
  // Reads keep answering correctly through the surviving replica; the
  // retry is transparent — no client-visible failure.
  for (int i = 0; i < 3; ++i) {
    auto rs = stmt.ExecuteQuery("SELECT COUNT(*) FROM pts");
    ASSERT_TRUE(rs.ok()) << rs.status().ToString();
    ASSERT_TRUE(rs->Next());
    EXPECT_EQ(rs->GetInt64(0).value(), 2);
  }
  EXPECT_GT(HaCounter("shard.failover"), failovers_before);
}

// The session-latch regression: a router session whose shard died must
// discard the dead cached session and dial fresh, so a restarted shard
// rejoins transparently — the OLD session object keeps working.
TEST_F(ShardE2eTest, RestartedShardRejoinsExistingRouterSession) {
  net::ServerOptions options;
  options.sut = "pine-rtree";
  options.port = 0;
  auto first = net::Server::Start(options);
  ASSERT_TRUE(first.ok());
  const uint16_t port = (*first)->port();

  auto conn = client::Connection::Open(
      "jackpine:shard(127.0.0.1:" + std::to_string(port) +
      ";health_ms=0)/pine-rtree");
  ASSERT_TRUE(conn.ok()) << conn.status().ToString();
  client::Statement stmt = conn->CreateStatement();
  ASSERT_TRUE(stmt.ExecuteUpdate("CREATE TABLE t1 (x BIGINT)").ok());

  (*first)->Shutdown();
  first->reset();
  // With the shard down the session fails — transiently, not terminally.
  EXPECT_FALSE(stmt.ExecuteUpdate("CREATE TABLE t2 (x BIGINT)").ok());

  // Same port, fresh process-equivalent. The existing statement must
  // recover on its own: the cached dead session is discarded and redialed.
  options.port = port;
  auto second = net::Server::Start(options);
  ASSERT_TRUE(second.ok()) << second.status().ToString();
  auto rejoined = stmt.ExecuteUpdate("CREATE TABLE t3 (x BIGINT)");
  EXPECT_TRUE(rejoined.ok()) << rejoined.status().ToString();
}

// A write that misses a replica (while a sibling acked) marks the missed
// replica stale: it is excluded from reads until re-synced, so readers
// never observe the missing rows.
TEST_F(ShardE2eTest, MissedWriteMarksReplicaStaleAndReadsAvoidIt) {
  auto primary = StartServer("pine-rtree");
  auto secondary = StartServer("pine-rtree");
  const std::string shard_url = "shard(" + Endpoint(*primary) + "|" +
                                Endpoint(*secondary) +
                                ";health_ms=0)/pine-rtree";
  auto parsed = shard::ParseShardUrl(shard_url);
  ASSERT_TRUE(parsed.ok()) << parsed.status().ToString();
  auto driver = shard::ShardDriver::Create(std::move(*parsed));
  ASSERT_TRUE(driver.ok()) << driver.status().ToString();
  auto session = (*driver)->NewSession();
  ASSERT_TRUE(session.ok()) << session.status().ToString();

  ExecLimits limits;
  ASSERT_TRUE((*session)
                  ->ExecuteUpdate("CREATE TABLE t (x BIGINT)", limits)
                  .ok());
  EXPECT_FALSE((*driver)->replica_stale(0, 1));

  const uint64_t stale_before = HaCounter("shard.replica_stale");
  secondary->Shutdown();
  // The write succeeds on the primary's ack alone and the dead secondary
  // is marked stale.
  auto wrote = (*session)->ExecuteUpdate("INSERT INTO t VALUES (7)", limits);
  ASSERT_TRUE(wrote.ok()) << wrote.status().ToString();
  EXPECT_TRUE((*driver)->replica_stale(0, 1));
  EXPECT_GT(HaCounter("shard.replica_stale"), stale_before);

  // Reads exclude the stale replica — they see the committed row even
  // though the stale sibling never got it. (The secondary is also dead
  // here; staleness alone is what removes it from the read order, so the
  // read succeeds first try instead of burning a failover attempt.)
  const uint64_t failovers_before = HaCounter("shard.failover");
  auto rs = (*session)->ExecuteQuery("SELECT COUNT(*) FROM t", limits);
  ASSERT_TRUE(rs.ok()) << rs.status().ToString();
  ASSERT_EQ(rs->rows.size(), 1u);
  EXPECT_EQ(rs->rows[0][0].int_value(), 1);
  EXPECT_EQ(HaCounter("shard.failover"), failovers_before);
}

// Hedged reads: with a fixed hedge delay far below the primary's injected
// chaos latency, the duplicate launched on the sibling wins the race and
// the client sees fast, correct answers throughout.
TEST_F(ShardE2eTest, HedgedReadWinsOnASlowPrimary) {
  auto slow = StartServer("pine-rtree");
  auto fast = StartServer("pine-rtree");
  // Primary wrapped in pure-latency chaos (no failures): up to 200 ms per
  // query, seed-deterministic. hedge_ms=5 fires the hedge long before the
  // typical draw finishes sleeping.
  const std::string url = "jackpine:shard(chaos(1,0,200)@" +
                          Endpoint(*slow) + "|" + Endpoint(*fast) +
                          ";health_ms=0;hedge_ms=5)/pine-rtree";
  auto conn = client::Connection::Open(url);
  ASSERT_TRUE(conn.ok()) << conn.status().ToString();
  client::Statement stmt = conn->CreateStatement();
  ASSERT_TRUE(stmt.ExecuteUpdate("CREATE TABLE t (x BIGINT)").ok());
  ASSERT_TRUE(stmt.ExecuteUpdate("INSERT INTO t VALUES (1), (2)").ok());

  const uint64_t hedges_before = HaCounter("shard.hedges");
  const uint64_t wins_before = HaCounter("shard.hedge_wins");
  for (int i = 0; i < 10; ++i) {
    auto rs = stmt.ExecuteQuery("SELECT COUNT(*) FROM t");
    ASSERT_TRUE(rs.ok()) << rs.status().ToString();
    ASSERT_TRUE(rs->Next());
    EXPECT_EQ(rs->GetInt64(0).value(), 2);
  }
  // Ten uniform draws from [0, 200] ms: essentially impossible that none
  // exceeded the 5 ms hedge delay, and the sibling answers in well under a
  // draw, so at least one hedge launched and at least one won.
  EXPECT_GT(HaCounter("shard.hedges"), hedges_before);
  EXPECT_GT(HaCounter("shard.hedge_wins"), wins_before);
}

}  // namespace
}  // namespace jackpine
