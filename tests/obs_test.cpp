// Unit tests for jackpine::obs — the metrics registry (counters, gauges,
// fixed-bucket histograms), per-query traces, and the minimal JSON
// reader/writer behind the benchmark's machine-readable reports.

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <string>
#include <thread>
#include <vector>

#include "obs/json.h"
#include "obs/metrics.h"
#include "obs/span.h"
#include "obs/trace.h"

namespace jackpine::obs {
namespace {

// ---------------------------------------------------------------------------
// Counter / Gauge

TEST(CounterTest, AddsAndReads) {
  Counter c;
  EXPECT_EQ(c.value(), 0u);
  c.Add();
  c.Add(41);
  EXPECT_EQ(c.value(), 42u);
}

TEST(GaugeTest, StoresLastWrittenDouble) {
  Gauge g;
  EXPECT_EQ(g.value(), 0.0);
  g.Set(3.25);
  EXPECT_EQ(g.value(), 3.25);
  g.Set(-1e-9);
  EXPECT_EQ(g.value(), -1e-9);
}

// ---------------------------------------------------------------------------
// Histogram

TEST(HistogramTest, EmptySnapshotIsZero) {
  Histogram h;
  const Histogram::Snapshot s = h.snapshot();
  EXPECT_EQ(s.count, 0u);
  EXPECT_EQ(s.sum, 0.0);
  EXPECT_EQ(s.mean(), 0.0);
  EXPECT_EQ(s.Quantile(0.5), 0.0);
}

TEST(HistogramTest, BucketBoundsAreInclusiveUpper) {
  // Buckets: (-inf, 1], (1, 2], (2, 4], overflow (4, +inf).
  Histogram h({1.0, 2.0, 4.0});
  h.Observe(1.0);  // lands in bucket 0 (inclusive upper bound)
  h.Observe(1.5);  // bucket 1
  h.Observe(4.0);  // bucket 2
  h.Observe(9.0);  // overflow
  const Histogram::Snapshot s = h.snapshot();
  ASSERT_EQ(s.buckets.size(), 4u);
  EXPECT_EQ(s.buckets[0], 1u);
  EXPECT_EQ(s.buckets[1], 1u);
  EXPECT_EQ(s.buckets[2], 1u);
  EXPECT_EQ(s.buckets[3], 1u);
  EXPECT_EQ(s.count, 4u);
  EXPECT_DOUBLE_EQ(s.sum, 15.5);
  EXPECT_DOUBLE_EQ(s.mean(), 15.5 / 4.0);
}

TEST(HistogramTest, QuantileInterpolatesWithinBucket) {
  Histogram h({10.0, 20.0});
  for (int i = 0; i < 10; ++i) h.Observe(15.0);  // all in (10, 20]
  const Histogram::Snapshot s = h.snapshot();
  // The whole mass sits in one bucket: any quantile must land inside it.
  for (double q : {0.01, 0.5, 0.99}) {
    const double v = s.Quantile(q);
    EXPECT_GE(v, 10.0) << "q=" << q;
    EXPECT_LE(v, 20.0) << "q=" << q;
  }
  // Interpolation is monotone in q.
  EXPECT_LE(s.Quantile(0.25), s.Quantile(0.75));
}

TEST(HistogramTest, OverflowQuantileReportsLastBound) {
  Histogram h({1.0});
  h.Observe(100.0);
  // Overflow bucket has no upper bound: the quantile degrades to the
  // largest finite bound rather than inventing a value.
  EXPECT_DOUBLE_EQ(h.snapshot().Quantile(0.99), 1.0);
}

TEST(HistogramTest, DefaultLatencyBoundsSpanMicrosToSeconds) {
  const std::vector<double> bounds = Histogram::DefaultLatencyBounds();
  ASSERT_GE(bounds.size(), 10u);
  EXPECT_DOUBLE_EQ(bounds.front(), 1e-6);
  // Doubling from 1 us stops just short of 100 s (2^26 us ~= 67 s).
  EXPECT_GE(bounds.back(), 50.0);
  EXPECT_LT(bounds.back(), 100.0);
  for (size_t i = 1; i < bounds.size(); ++i) {
    EXPECT_GT(bounds[i], bounds[i - 1]);
  }
}

TEST(HistogramTest, PercentileAccuracyBoundedByBucketWidth) {
  Histogram h;  // default latency bounds, x2 geometric
  for (int i = 0; i < 1000; ++i) h.Observe(0.010);  // 10 ms
  const double p50 = h.snapshot().p50();
  // 10 ms falls in the (8.192ms, 16.384ms] bucket; the estimate must too.
  EXPECT_GE(p50, 0.008192);
  EXPECT_LE(p50, 0.016384);
}

// ---------------------------------------------------------------------------
// Registry

TEST(RegistryTest, SameNameYieldsSameInstrument) {
  Registry r;
  Counter* a = r.GetCounter("x");
  Counter* b = r.GetCounter("x");
  ASSERT_NE(a, nullptr);
  EXPECT_EQ(a, b);
  a->Add(3);
  EXPECT_EQ(b->value(), 3u);
}

TEST(RegistryTest, KindMismatchReturnsNull) {
  Registry r;
  ASSERT_NE(r.GetCounter("c"), nullptr);
  EXPECT_EQ(r.GetGauge("c"), nullptr);
  EXPECT_EQ(r.GetHistogram("c"), nullptr);
  ASSERT_NE(r.GetHistogram("h"), nullptr);
  EXPECT_EQ(r.GetCounter("h"), nullptr);
}

TEST(RegistryTest, SnapshotFlattensAndSorts) {
  Registry r;
  r.GetCounter("z.count")->Add(5);
  r.GetGauge("a.gauge")->Set(1.5);
  Histogram* h = r.GetHistogram("m.lat");
  h->Observe(0.001);
  h->Observe(0.002);
  const auto snap = r.Snapshot();
  // Sorted by name: a.gauge, m.lat.*, z.count.
  ASSERT_GE(snap.size(), 7u);
  EXPECT_EQ(snap.front().first, "a.gauge");
  EXPECT_EQ(snap.back().first, "z.count");
  EXPECT_EQ(snap.back().second, 5.0);
  bool saw_count = false, saw_p99 = false;
  for (const auto& [name, value] : snap) {
    if (name == "m.lat.count") {
      saw_count = true;
      EXPECT_EQ(value, 2.0);
    }
    if (name == "m.lat.p99_s") saw_p99 = true;
  }
  EXPECT_TRUE(saw_count);
  EXPECT_TRUE(saw_p99);
}

TEST(RegistryTest, RenderMentionsEveryName) {
  Registry r;
  r.GetCounter("alpha")->Add();
  r.GetGauge("beta")->Set(2.0);
  const std::string text = r.Render();
  EXPECT_NE(text.find("alpha"), std::string::npos);
  EXPECT_NE(text.find("beta"), std::string::npos);
}

// Concurrency: registration races and hot-path increments from many threads.
// Run under TSan (ctest preset tsan) to verify the lock discipline.
TEST(RegistryTest, ConcurrentRegistrationAndIncrements) {
  Registry r;
  constexpr int kThreads = 8;
  constexpr int kIncrements = 10000;
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&r] {
      Counter* c = r.GetCounter("shared.counter");
      Histogram* h = r.GetHistogram("shared.hist");
      ASSERT_NE(c, nullptr);
      ASSERT_NE(h, nullptr);
      for (int i = 0; i < kIncrements; ++i) {
        c->Add();
        h->Observe(1e-3);
      }
    });
  }
  for (std::thread& t : threads) t.join();
  EXPECT_EQ(r.GetCounter("shared.counter")->value(),
            static_cast<uint64_t>(kThreads) * kIncrements);
  const Histogram::Snapshot s = r.GetHistogram("shared.hist")->snapshot();
  EXPECT_EQ(s.count, static_cast<uint64_t>(kThreads) * kIncrements);
  EXPECT_NEAR(s.sum, kThreads * kIncrements * 1e-3, 1e-6);
}

TEST(RegistryTest, GlobalRegistryIsAProcessSingleton) {
  EXPECT_EQ(&GlobalRegistry(), &GlobalRegistry());
}

// ---------------------------------------------------------------------------
// QueryTrace

TEST(QueryTraceTest, MergeIsAdditive) {
  QueryTrace a, b;
  a.parse_s = 0.001;
  a.index_candidates = 10;
  a.refine_checks = 10;
  a.refine_survivors = 4;
  a.queries = 1;
  b.parse_s = 0.002;
  b.index_candidates = 5;
  b.queries = 1;
  a += b;
  EXPECT_DOUBLE_EQ(a.parse_s, 0.003);
  EXPECT_EQ(a.index_candidates, 15u);
  EXPECT_EQ(a.queries, 2u);
}

TEST(QueryTraceTest, Ratios) {
  QueryTrace t;
  EXPECT_EQ(t.RefineRatio(), 0.0);
  EXPECT_EQ(t.FilterRatio(), 0.0);
  t.index_candidates = 100;
  t.refine_checks = 80;
  t.refine_survivors = 20;
  EXPECT_DOUBLE_EQ(t.RefineRatio(), 0.25);
  EXPECT_DOUBLE_EQ(t.FilterRatio(), 0.20);
}

TEST(QueryTraceTest, EntriesRoundTrip) {
  QueryTrace t;
  t.parse_s = 0.5;
  t.plan_s = 0.25;
  t.exec_s = 1.0;
  t.total_s = 1.75;
  t.queries = 3;
  t.rows_scanned = 11;
  t.index_probes = 2;
  t.index_nodes_visited = 7;
  t.index_candidates = 40;
  t.refine_checks = 40;
  t.refine_survivors = 13;
  t.rows_examined = 41;
  t.rows_returned = 13;
  const QueryTrace back = QueryTrace::FromEntries(t.ToEntries());
  EXPECT_DOUBLE_EQ(back.parse_s, t.parse_s);
  EXPECT_DOUBLE_EQ(back.total_s, t.total_s);
  EXPECT_EQ(back.queries, t.queries);
  EXPECT_EQ(back.rows_scanned, t.rows_scanned);
  EXPECT_EQ(back.index_probes, t.index_probes);
  EXPECT_EQ(back.index_nodes_visited, t.index_nodes_visited);
  EXPECT_EQ(back.index_candidates, t.index_candidates);
  EXPECT_EQ(back.refine_checks, t.refine_checks);
  EXPECT_EQ(back.refine_survivors, t.refine_survivors);
  EXPECT_EQ(back.rows_examined, t.rows_examined);
  EXPECT_EQ(back.rows_returned, t.rows_returned);
}

TEST(QueryTraceTest, FromEntriesIgnoresUnknownNames) {
  const QueryTrace t = QueryTrace::FromEntries(
      {{"queries", 2.0}, {"some.future.field", 99.0}});
  EXPECT_EQ(t.queries, 2u);
  EXPECT_EQ(t.rows_scanned, 0u);
}

TEST(QueryTraceTest, ResetZeroesEverything) {
  QueryTrace t;
  t.queries = 5;
  t.exec_s = 1.0;
  t.Reset();
  EXPECT_EQ(t.queries, 0u);
  EXPECT_EQ(t.exec_s, 0.0);
}

TEST(QueryTraceTest, ToStringMentionsCoreCounters) {
  QueryTrace t;
  t.queries = 1;
  t.index_candidates = 7;
  const std::string s = t.ToString();
  EXPECT_NE(s.find("candidates"), std::string::npos);
}

// ---------------------------------------------------------------------------
// Json

TEST(JsonTest, ScalarRoundTrips) {
  EXPECT_EQ(Json::Null().Dump(), "null");
  EXPECT_EQ(Json::Bool(true).Dump(), "true");
  EXPECT_EQ(Json::Bool(false).Dump(), "false");
  EXPECT_EQ(Json::Int(42).Dump(), "42");
  EXPECT_EQ(Json::Int(-7).Dump(), "-7");
  EXPECT_EQ(Json::Str("hi").Dump(), "\"hi\"");
}

TEST(JsonTest, IntegersStayExact) {
  // 2^53 - 1: the largest integer every double represents exactly, and
  // larger than any counter the harness realistically exports.
  const int64_t big = (int64_t{1} << 53) - 1;
  auto parsed = Json::Parse(Json::Int(big).Dump());
  ASSERT_TRUE(parsed.ok());
  EXPECT_EQ(static_cast<int64_t>(parsed->number_value()), big);
}

TEST(JsonTest, StringEscapes) {
  const Json v = Json::Str("a\"b\\c\nd\te");
  auto parsed = Json::Parse(v.Dump());
  ASSERT_TRUE(parsed.ok());
  EXPECT_EQ(parsed->string_value(), "a\"b\\c\nd\te");
}

TEST(JsonTest, UnicodeEscapeDecodes) {
  auto parsed = Json::Parse("\"\\u0041\\u00e9\"");
  ASSERT_TRUE(parsed.ok());
  EXPECT_EQ(parsed->string_value(), "A\xc3\xa9");  // "Aé" in UTF-8
}

TEST(JsonTest, ObjectPreservesInsertionOrder) {
  Json o = Json::Object();
  o.Set("zebra", Json::Int(1));
  o.Set("apple", Json::Int(2));
  EXPECT_EQ(o.Dump(), "{\"zebra\":1,\"apple\":2}");
  // Set on an existing key replaces in place, keeping position.
  o.Set("zebra", Json::Int(3));
  EXPECT_EQ(o.Dump(), "{\"zebra\":3,\"apple\":2}");
}

TEST(JsonTest, ObjectAccessors) {
  Json o = Json::Object();
  o.Set("k", Json::Str("v"));
  EXPECT_TRUE(o.Has("k"));
  EXPECT_FALSE(o.Has("missing"));
  EXPECT_EQ(o.Get("k").string_value(), "v");
  EXPECT_TRUE(o.Get("missing").is_null());
}

TEST(JsonTest, NestedDocumentRoundTrips) {
  Json root = Json::Object();
  root.Set("title", Json::Str("report"));
  Json& arr = root.Set("values", Json::Array());
  for (int i = 0; i < 3; ++i) {
    Json& item = arr.Append(Json::Object());
    item.Set("i", Json::Int(i));
    item.Set("half", Json::Number(i / 2.0));
  }
  const std::string compact = root.Dump();
  const std::string pretty = root.Dump(/*pretty=*/true);
  for (const std::string& text : {compact, pretty}) {
    auto parsed = Json::Parse(text);
    ASSERT_TRUE(parsed.ok()) << parsed.status().ToString();
    EXPECT_EQ(parsed->Get("title").string_value(), "report");
    const Json& values = parsed->Get("values");
    ASSERT_EQ(values.size(), 3u);
    EXPECT_EQ(values.at(2).Get("i").number_value(), 2.0);
    EXPECT_EQ(values.at(1).Get("half").number_value(), 0.5);
  }
}

TEST(JsonTest, ParseRejectsMalformedInput) {
  const char* bad[] = {
      "",           "{",        "[1,]",       "{\"a\":}",  "tru",
      "\"unterminated", "1 2",  "{\"a\" 1}",  "[1 2]",     "\"\\x\"",
      "nullx",      "1.2.3",
  };
  for (const char* text : bad) {
    auto parsed = Json::Parse(text);
    EXPECT_FALSE(parsed.ok()) << "accepted: " << text;
    if (!parsed.ok()) {
      EXPECT_EQ(parsed.status().code(), StatusCode::kParseError) << text;
    }
  }
}

TEST(JsonTest, ParseCapsNestingDepth) {
  std::string deep(100, '[');
  deep += std::string(100, ']');
  auto parsed = Json::Parse(deep);
  EXPECT_FALSE(parsed.ok());
  EXPECT_EQ(parsed.status().code(), StatusCode::kParseError);
}

TEST(JsonTest, ParseAcceptsSurroundingWhitespace) {
  auto parsed = Json::Parse("  {\"a\": [1, 2.5, true, null]}  ");
  ASSERT_TRUE(parsed.ok());
  EXPECT_EQ(parsed->Get("a").size(), 4u);
}

// ---------------------------------------------------------------------------
// Span recorder

TEST(SpanTest, RecordsParentChildWithMonotoneTimes) {
  SpanRecorder rec(/*capacity=*/64);
  rec.set_enabled(true);
  const uint64_t trace_id = rec.NewTraceId();
  Span root = rec.StartSpan("client.query", trace_id);
  ASSERT_TRUE(root.active());
  const uint64_t root_id = root.span_id();
  {
    Span child = rec.StartSpan("client.send", trace_id, root_id);
    child.Annotate("frames", "1");
  }  // destructor ends and records
  root.End();

  std::vector<SpanRecord> spans = rec.Drain();
  ASSERT_EQ(spans.size(), 2u);
  // Drain sorts by start time: the root started first.
  EXPECT_EQ(spans[0].name, "client.query");
  EXPECT_EQ(spans[1].name, "client.send");
  EXPECT_EQ(spans[0].trace_id, trace_id);
  EXPECT_EQ(spans[1].trace_id, trace_id);
  EXPECT_EQ(spans[1].parent_id, spans[0].span_id);
  EXPECT_NE(spans[0].span_id, spans[1].span_id);
  for (const SpanRecord& s : spans) {
    EXPECT_LE(s.start_s, s.end_s) << s.name;
  }
  ASSERT_EQ(spans[1].annotations.size(), 1u);
  EXPECT_EQ(spans[1].annotations[0].first, "frames");
  EXPECT_EQ(spans[1].annotations[0].second, "1");
  // Drain removed everything.
  EXPECT_EQ(rec.buffered(), 0u);
}

TEST(SpanTest, DisabledRecorderIsInert) {
  SpanRecorder rec(/*capacity=*/64);
  ASSERT_FALSE(rec.enabled());
  Span span = rec.StartSpan("client.query", /*trace_id=*/7);
  EXPECT_FALSE(span.active());
  span.Annotate("k", "v");  // must be a no-op, not a crash
  span.End();
  EXPECT_TRUE(rec.Drain().empty());
  EXPECT_EQ(rec.dropped(), 0u);
}

TEST(SpanTest, AnnotationsAreBounded) {
  SpanRecorder rec(/*capacity=*/64);
  rec.set_enabled(true);
  Span span = rec.StartSpan("noisy", /*trace_id=*/1);
  for (size_t i = 0; i < kMaxSpanAnnotations + 5; ++i) {
    span.Annotate("k", "v");
  }
  span.End();
  std::vector<SpanRecord> spans = rec.Drain();
  ASSERT_EQ(spans.size(), 1u);
  EXPECT_EQ(spans[0].annotations.size(), kMaxSpanAnnotations);
}

TEST(SpanTest, OverflowDropsAndCountsNeverGrowsUnbounded) {
  // Tiny capacity: the recorder rounds shard capacity down but always
  // admits at least one span per shard; everything past the cap is dropped
  // and counted, both on the recorder and in the global registry.
  Counter* global_drops = GlobalRegistry().GetCounter("obs.spans_dropped");
  ASSERT_NE(global_drops, nullptr);
  const uint64_t global_before = global_drops->value();

  SpanRecorder rec(/*capacity=*/8);
  rec.set_enabled(true);
  constexpr size_t kAttempts = 256;
  for (size_t i = 0; i < kAttempts; ++i) {
    rec.StartSpan("flood", /*trace_id=*/1).End();
  }
  const size_t kept = rec.Drain().size();
  EXPECT_GT(kept, 0u);
  EXPECT_LT(kept, kAttempts);
  EXPECT_EQ(rec.dropped(), kAttempts - kept);
  EXPECT_EQ(global_drops->value() - global_before, kAttempts - kept);
}

TEST(SpanTest, IdsAreUniqueAcrossThreads) {
  SpanRecorder rec;
  constexpr int kThreads = 4;
  constexpr int kPerThread = 1000;
  std::vector<std::vector<uint64_t>> ids(kThreads);
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&rec, &ids, t] {
      for (int i = 0; i < kPerThread; ++i) ids[t].push_back(rec.NewSpanId());
    });
  }
  for (std::thread& t : threads) t.join();
  std::vector<uint64_t> all;
  for (const auto& v : ids) all.insert(all.end(), v.begin(), v.end());
  std::sort(all.begin(), all.end());
  EXPECT_EQ(std::adjacent_find(all.begin(), all.end()), all.end());
}

// The clock-offset merge: spans recorded on a "server" clock that runs a
// known amount ahead must land inside their client parent once ShiftSpans
// subtracts the offset — this is the correctness core of the cross-process
// timeline (DESIGN.md "Observability", clock-offset estimation).
TEST(SpanTest, ShiftSpansMergesRemoteClockOntoLocalTimeline) {
  constexpr double kOffset = 123.456;  // server clock ahead by this much

  // Client-side parent on the local timeline.
  SpanRecord rpc;
  rpc.trace_id = 42;
  rpc.span_id = 1;
  rpc.name = "client.rpc";
  rpc.start_s = 10.0;
  rpc.end_s = 10.9;

  // Server-side spans timed on the server's clock (local + offset), as the
  // wire ships them: nested inside the rpc window once corrected.
  std::vector<SpanRecord> remote(2);
  remote[0].trace_id = 42;
  remote[0].span_id = 2;
  remote[0].parent_id = 1;
  remote[0].name = "server.query";
  remote[0].start_s = 10.2 + kOffset;
  remote[0].end_s = 10.7 + kOffset;
  remote[1].trace_id = 42;
  remote[1].span_id = 3;
  remote[1].parent_id = 2;
  remote[1].name = "server.exec";
  remote[1].start_s = 10.3 + kOffset;
  remote[1].end_s = 10.6 + kOffset;

  ShiftSpans(&remote, kOffset, /*process=*/1);

  for (const SpanRecord& s : remote) {
    EXPECT_EQ(s.process, 1u) << s.name;
    // Offset-corrected containment in the client rpc window.
    EXPECT_GE(s.start_s, rpc.start_s) << s.name;
    EXPECT_LE(s.end_s, rpc.end_s) << s.name;
  }
  // Durations survive the shift exactly.
  EXPECT_DOUBLE_EQ(remote[0].end_s - remote[0].start_s, 0.5);
  // Nesting order survives too.
  EXPECT_GE(remote[1].start_s, remote[0].start_s);
  EXPECT_LE(remote[1].end_s, remote[0].end_s);
}

TEST(SpanTest, RecordStageSpansSynthesizesSequentialChildren) {
  SpanRecorder rec;
  rec.set_enabled(true);
  QueryTrace trace;
  trace.parse_s = 0.001;
  trace.plan_s = 0.002;
  trace.exec_s = 0.003;
  RecordStageSpans(&rec, /*trace_id=*/9, /*parent_id=*/5, /*anchor_s=*/100.0,
                   trace);
  std::vector<SpanRecord> spans = rec.Drain();
  ASSERT_EQ(spans.size(), 3u);
  EXPECT_EQ(spans[0].name, "engine.parse");
  EXPECT_EQ(spans[1].name, "engine.plan");
  EXPECT_EQ(spans[2].name, "engine.exec");
  double cursor = 100.0;
  for (const SpanRecord& s : spans) {
    EXPECT_EQ(s.trace_id, 9u);
    EXPECT_EQ(s.parent_id, 5u);
    EXPECT_DOUBLE_EQ(s.start_s, cursor);
    cursor = s.end_s;
  }
  EXPECT_NEAR(cursor, 100.0 + 0.006, 1e-12);

  // Zero-time stages are omitted, not emitted as zero-width spans.
  QueryTrace sparse;
  sparse.exec_s = 0.0005;
  RecordStageSpans(&rec, 9, 5, 0.0, sparse);
  spans = rec.Drain();
  ASSERT_EQ(spans.size(), 1u);
  EXPECT_EQ(spans[0].name, "engine.exec");
}

// Golden Chrome-trace export: a fixed two-process timeline must serialise
// to trace-event JSON that parses back (via the same obs::Json the runner
// uses to write it) with exact ts/dur/pid/args values.
TEST(SpanTest, ChromeTraceExportRoundTripsThroughJson) {
  std::vector<SpanRecord> spans(2);
  spans[0].trace_id = 0xabcd;
  spans[0].span_id = 1;
  spans[0].name = "client.rpc";
  spans[0].process = 0;
  spans[0].thread = 3;
  spans[0].start_s = 5.0;
  spans[0].end_s = 5.010;  // 10 ms
  spans[1].trace_id = 0xabcd;
  spans[1].span_id = 2;
  spans[1].parent_id = 1;
  spans[1].name = "server.query";
  spans[1].process = 1;
  spans[1].thread = 7;
  spans[1].start_s = 5.002;
  spans[1].end_s = 5.008;
  spans[1].annotations.emplace_back("rows", "12");

  auto parsed = Json::Parse(SpansToChromeTrace(spans).Dump(true));
  ASSERT_TRUE(parsed.ok()) << parsed.status().ToString();
  const Json& events = parsed->Get("traceEvents");
  // Two metadata events (one per process lane) + two span events.
  ASSERT_EQ(events.size(), 4u);

  EXPECT_EQ(events.at(0).Get("ph").string_value(), "M");
  EXPECT_EQ(events.at(0).Get("args").Get("name").string_value(), "client");
  EXPECT_EQ(events.at(1).Get("ph").string_value(), "M");
  EXPECT_EQ(events.at(1).Get("pid").number_value(), 1.0);
  EXPECT_EQ(events.at(1).Get("args").Get("name").string_value(), "server");

  const Json& rpc = events.at(2);
  EXPECT_EQ(rpc.Get("name").string_value(), "client.rpc");
  EXPECT_EQ(rpc.Get("ph").string_value(), "X");
  // Times normalise to the earliest span and export in microseconds.
  EXPECT_NEAR(rpc.Get("ts").number_value(), 0.0, 1e-6);
  EXPECT_NEAR(rpc.Get("dur").number_value(), 10'000.0, 1e-6);
  EXPECT_EQ(rpc.Get("pid").number_value(), 0.0);
  EXPECT_EQ(rpc.Get("tid").number_value(), 3.0);
  EXPECT_EQ(rpc.Get("args").Get("trace_id").string_value(),
            "000000000000abcd");
  EXPECT_FALSE(rpc.Get("args").Has("parent_id"));  // root span

  const Json& server = events.at(3);
  EXPECT_EQ(server.Get("name").string_value(), "server.query");
  EXPECT_NEAR(server.Get("ts").number_value(), 2'000.0, 1e-6);
  EXPECT_NEAR(server.Get("dur").number_value(), 6'000.0, 1e-6);
  EXPECT_EQ(server.Get("pid").number_value(), 1.0);
  EXPECT_EQ(server.Get("args").Get("parent_id").string_value(),
            "0000000000000001");
  EXPECT_EQ(server.Get("args").Get("rows").string_value(), "12");
}

// ---------------------------------------------------------------------------
// Prometheus exposition

TEST(PromTest, NameSanitizationAndPrefix) {
  EXPECT_EQ(PromName("server.queries", "jackpine_"),
            "jackpine_server_queries");
  EXPECT_EQ(PromName("a-b c.d", "x_"), "x_a_b_c_d");
}

TEST(PromTest, RenderPromTypesEveryInstrument) {
  Registry r;
  r.GetCounter("srv.requests")->Add(3);
  r.GetGauge("srv.queue_depth")->Set(2.5);
  Histogram* h = r.GetHistogram("srv.latency_s", {0.1, 1.0});
  h->Observe(0.05);
  h->Observe(0.5);
  h->Observe(10.0);  // overflow bucket

  const std::string prom = r.RenderProm();
  EXPECT_NE(prom.find("# TYPE jackpine_srv_requests counter"),
            std::string::npos);
  EXPECT_NE(prom.find("jackpine_srv_requests 3"), std::string::npos);
  EXPECT_NE(prom.find("# TYPE jackpine_srv_queue_depth gauge"),
            std::string::npos);
  EXPECT_NE(prom.find("# TYPE jackpine_srv_latency_s histogram"),
            std::string::npos);
  // Cumulative buckets: 1 at le=0.1, 2 at le=1, all 3 at le=+Inf.
  EXPECT_NE(prom.find("jackpine_srv_latency_s_bucket{le=\"0.1\"} 1"),
            std::string::npos);
  EXPECT_NE(prom.find("jackpine_srv_latency_s_bucket{le=\"1\"} 2"),
            std::string::npos);
  EXPECT_NE(prom.find("jackpine_srv_latency_s_bucket{le=\"+Inf\"} 3"),
            std::string::npos);
  EXPECT_NE(prom.find("jackpine_srv_latency_s_count 3"), std::string::npos);
  EXPECT_NE(prom.find("jackpine_srv_latency_s_sum"), std::string::npos);
}

TEST(PromTest, RenderPromEntriesFlattensToGauges) {
  const std::string prom = RenderPromEntries(
      {{"server.queries", 12.0}, {"engine.rows_scanned", 345.0}});
  EXPECT_NE(prom.find("# TYPE jackpine_server_queries gauge"),
            std::string::npos);
  EXPECT_NE(prom.find("jackpine_server_queries 12"), std::string::npos);
  EXPECT_NE(prom.find("jackpine_engine_rows_scanned 345"), std::string::npos);
}

}  // namespace
}  // namespace jackpine::obs
