// Unit tests for jackpine::obs — the metrics registry (counters, gauges,
// fixed-bucket histograms), per-query traces, and the minimal JSON
// reader/writer behind the benchmark's machine-readable reports.

#include <gtest/gtest.h>

#include <cmath>
#include <string>
#include <thread>
#include <vector>

#include "obs/json.h"
#include "obs/metrics.h"
#include "obs/trace.h"

namespace jackpine::obs {
namespace {

// ---------------------------------------------------------------------------
// Counter / Gauge

TEST(CounterTest, AddsAndReads) {
  Counter c;
  EXPECT_EQ(c.value(), 0u);
  c.Add();
  c.Add(41);
  EXPECT_EQ(c.value(), 42u);
}

TEST(GaugeTest, StoresLastWrittenDouble) {
  Gauge g;
  EXPECT_EQ(g.value(), 0.0);
  g.Set(3.25);
  EXPECT_EQ(g.value(), 3.25);
  g.Set(-1e-9);
  EXPECT_EQ(g.value(), -1e-9);
}

// ---------------------------------------------------------------------------
// Histogram

TEST(HistogramTest, EmptySnapshotIsZero) {
  Histogram h;
  const Histogram::Snapshot s = h.snapshot();
  EXPECT_EQ(s.count, 0u);
  EXPECT_EQ(s.sum, 0.0);
  EXPECT_EQ(s.mean(), 0.0);
  EXPECT_EQ(s.Quantile(0.5), 0.0);
}

TEST(HistogramTest, BucketBoundsAreInclusiveUpper) {
  // Buckets: (-inf, 1], (1, 2], (2, 4], overflow (4, +inf).
  Histogram h({1.0, 2.0, 4.0});
  h.Observe(1.0);  // lands in bucket 0 (inclusive upper bound)
  h.Observe(1.5);  // bucket 1
  h.Observe(4.0);  // bucket 2
  h.Observe(9.0);  // overflow
  const Histogram::Snapshot s = h.snapshot();
  ASSERT_EQ(s.buckets.size(), 4u);
  EXPECT_EQ(s.buckets[0], 1u);
  EXPECT_EQ(s.buckets[1], 1u);
  EXPECT_EQ(s.buckets[2], 1u);
  EXPECT_EQ(s.buckets[3], 1u);
  EXPECT_EQ(s.count, 4u);
  EXPECT_DOUBLE_EQ(s.sum, 15.5);
  EXPECT_DOUBLE_EQ(s.mean(), 15.5 / 4.0);
}

TEST(HistogramTest, QuantileInterpolatesWithinBucket) {
  Histogram h({10.0, 20.0});
  for (int i = 0; i < 10; ++i) h.Observe(15.0);  // all in (10, 20]
  const Histogram::Snapshot s = h.snapshot();
  // The whole mass sits in one bucket: any quantile must land inside it.
  for (double q : {0.01, 0.5, 0.99}) {
    const double v = s.Quantile(q);
    EXPECT_GE(v, 10.0) << "q=" << q;
    EXPECT_LE(v, 20.0) << "q=" << q;
  }
  // Interpolation is monotone in q.
  EXPECT_LE(s.Quantile(0.25), s.Quantile(0.75));
}

TEST(HistogramTest, OverflowQuantileReportsLastBound) {
  Histogram h({1.0});
  h.Observe(100.0);
  // Overflow bucket has no upper bound: the quantile degrades to the
  // largest finite bound rather than inventing a value.
  EXPECT_DOUBLE_EQ(h.snapshot().Quantile(0.99), 1.0);
}

TEST(HistogramTest, DefaultLatencyBoundsSpanMicrosToSeconds) {
  const std::vector<double> bounds = Histogram::DefaultLatencyBounds();
  ASSERT_GE(bounds.size(), 10u);
  EXPECT_DOUBLE_EQ(bounds.front(), 1e-6);
  // Doubling from 1 us stops just short of 100 s (2^26 us ~= 67 s).
  EXPECT_GE(bounds.back(), 50.0);
  EXPECT_LT(bounds.back(), 100.0);
  for (size_t i = 1; i < bounds.size(); ++i) {
    EXPECT_GT(bounds[i], bounds[i - 1]);
  }
}

TEST(HistogramTest, PercentileAccuracyBoundedByBucketWidth) {
  Histogram h;  // default latency bounds, x2 geometric
  for (int i = 0; i < 1000; ++i) h.Observe(0.010);  // 10 ms
  const double p50 = h.snapshot().p50();
  // 10 ms falls in the (8.192ms, 16.384ms] bucket; the estimate must too.
  EXPECT_GE(p50, 0.008192);
  EXPECT_LE(p50, 0.016384);
}

// ---------------------------------------------------------------------------
// Registry

TEST(RegistryTest, SameNameYieldsSameInstrument) {
  Registry r;
  Counter* a = r.GetCounter("x");
  Counter* b = r.GetCounter("x");
  ASSERT_NE(a, nullptr);
  EXPECT_EQ(a, b);
  a->Add(3);
  EXPECT_EQ(b->value(), 3u);
}

TEST(RegistryTest, KindMismatchReturnsNull) {
  Registry r;
  ASSERT_NE(r.GetCounter("c"), nullptr);
  EXPECT_EQ(r.GetGauge("c"), nullptr);
  EXPECT_EQ(r.GetHistogram("c"), nullptr);
  ASSERT_NE(r.GetHistogram("h"), nullptr);
  EXPECT_EQ(r.GetCounter("h"), nullptr);
}

TEST(RegistryTest, SnapshotFlattensAndSorts) {
  Registry r;
  r.GetCounter("z.count")->Add(5);
  r.GetGauge("a.gauge")->Set(1.5);
  Histogram* h = r.GetHistogram("m.lat");
  h->Observe(0.001);
  h->Observe(0.002);
  const auto snap = r.Snapshot();
  // Sorted by name: a.gauge, m.lat.*, z.count.
  ASSERT_GE(snap.size(), 7u);
  EXPECT_EQ(snap.front().first, "a.gauge");
  EXPECT_EQ(snap.back().first, "z.count");
  EXPECT_EQ(snap.back().second, 5.0);
  bool saw_count = false, saw_p99 = false;
  for (const auto& [name, value] : snap) {
    if (name == "m.lat.count") {
      saw_count = true;
      EXPECT_EQ(value, 2.0);
    }
    if (name == "m.lat.p99_s") saw_p99 = true;
  }
  EXPECT_TRUE(saw_count);
  EXPECT_TRUE(saw_p99);
}

TEST(RegistryTest, RenderMentionsEveryName) {
  Registry r;
  r.GetCounter("alpha")->Add();
  r.GetGauge("beta")->Set(2.0);
  const std::string text = r.Render();
  EXPECT_NE(text.find("alpha"), std::string::npos);
  EXPECT_NE(text.find("beta"), std::string::npos);
}

// Concurrency: registration races and hot-path increments from many threads.
// Run under TSan (ctest preset tsan) to verify the lock discipline.
TEST(RegistryTest, ConcurrentRegistrationAndIncrements) {
  Registry r;
  constexpr int kThreads = 8;
  constexpr int kIncrements = 10000;
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&r] {
      Counter* c = r.GetCounter("shared.counter");
      Histogram* h = r.GetHistogram("shared.hist");
      ASSERT_NE(c, nullptr);
      ASSERT_NE(h, nullptr);
      for (int i = 0; i < kIncrements; ++i) {
        c->Add();
        h->Observe(1e-3);
      }
    });
  }
  for (std::thread& t : threads) t.join();
  EXPECT_EQ(r.GetCounter("shared.counter")->value(),
            static_cast<uint64_t>(kThreads) * kIncrements);
  const Histogram::Snapshot s = r.GetHistogram("shared.hist")->snapshot();
  EXPECT_EQ(s.count, static_cast<uint64_t>(kThreads) * kIncrements);
  EXPECT_NEAR(s.sum, kThreads * kIncrements * 1e-3, 1e-6);
}

TEST(RegistryTest, GlobalRegistryIsAProcessSingleton) {
  EXPECT_EQ(&GlobalRegistry(), &GlobalRegistry());
}

// ---------------------------------------------------------------------------
// QueryTrace

TEST(QueryTraceTest, MergeIsAdditive) {
  QueryTrace a, b;
  a.parse_s = 0.001;
  a.index_candidates = 10;
  a.refine_checks = 10;
  a.refine_survivors = 4;
  a.queries = 1;
  b.parse_s = 0.002;
  b.index_candidates = 5;
  b.queries = 1;
  a += b;
  EXPECT_DOUBLE_EQ(a.parse_s, 0.003);
  EXPECT_EQ(a.index_candidates, 15u);
  EXPECT_EQ(a.queries, 2u);
}

TEST(QueryTraceTest, Ratios) {
  QueryTrace t;
  EXPECT_EQ(t.RefineRatio(), 0.0);
  EXPECT_EQ(t.FilterRatio(), 0.0);
  t.index_candidates = 100;
  t.refine_checks = 80;
  t.refine_survivors = 20;
  EXPECT_DOUBLE_EQ(t.RefineRatio(), 0.25);
  EXPECT_DOUBLE_EQ(t.FilterRatio(), 0.20);
}

TEST(QueryTraceTest, EntriesRoundTrip) {
  QueryTrace t;
  t.parse_s = 0.5;
  t.plan_s = 0.25;
  t.exec_s = 1.0;
  t.total_s = 1.75;
  t.queries = 3;
  t.rows_scanned = 11;
  t.index_probes = 2;
  t.index_nodes_visited = 7;
  t.index_candidates = 40;
  t.refine_checks = 40;
  t.refine_survivors = 13;
  t.rows_examined = 41;
  t.rows_returned = 13;
  const QueryTrace back = QueryTrace::FromEntries(t.ToEntries());
  EXPECT_DOUBLE_EQ(back.parse_s, t.parse_s);
  EXPECT_DOUBLE_EQ(back.total_s, t.total_s);
  EXPECT_EQ(back.queries, t.queries);
  EXPECT_EQ(back.rows_scanned, t.rows_scanned);
  EXPECT_EQ(back.index_probes, t.index_probes);
  EXPECT_EQ(back.index_nodes_visited, t.index_nodes_visited);
  EXPECT_EQ(back.index_candidates, t.index_candidates);
  EXPECT_EQ(back.refine_checks, t.refine_checks);
  EXPECT_EQ(back.refine_survivors, t.refine_survivors);
  EXPECT_EQ(back.rows_examined, t.rows_examined);
  EXPECT_EQ(back.rows_returned, t.rows_returned);
}

TEST(QueryTraceTest, FromEntriesIgnoresUnknownNames) {
  const QueryTrace t = QueryTrace::FromEntries(
      {{"queries", 2.0}, {"some.future.field", 99.0}});
  EXPECT_EQ(t.queries, 2u);
  EXPECT_EQ(t.rows_scanned, 0u);
}

TEST(QueryTraceTest, ResetZeroesEverything) {
  QueryTrace t;
  t.queries = 5;
  t.exec_s = 1.0;
  t.Reset();
  EXPECT_EQ(t.queries, 0u);
  EXPECT_EQ(t.exec_s, 0.0);
}

TEST(QueryTraceTest, ToStringMentionsCoreCounters) {
  QueryTrace t;
  t.queries = 1;
  t.index_candidates = 7;
  const std::string s = t.ToString();
  EXPECT_NE(s.find("candidates"), std::string::npos);
}

// ---------------------------------------------------------------------------
// Json

TEST(JsonTest, ScalarRoundTrips) {
  EXPECT_EQ(Json::Null().Dump(), "null");
  EXPECT_EQ(Json::Bool(true).Dump(), "true");
  EXPECT_EQ(Json::Bool(false).Dump(), "false");
  EXPECT_EQ(Json::Int(42).Dump(), "42");
  EXPECT_EQ(Json::Int(-7).Dump(), "-7");
  EXPECT_EQ(Json::Str("hi").Dump(), "\"hi\"");
}

TEST(JsonTest, IntegersStayExact) {
  // 2^53 - 1: the largest integer every double represents exactly, and
  // larger than any counter the harness realistically exports.
  const int64_t big = (int64_t{1} << 53) - 1;
  auto parsed = Json::Parse(Json::Int(big).Dump());
  ASSERT_TRUE(parsed.ok());
  EXPECT_EQ(static_cast<int64_t>(parsed->number_value()), big);
}

TEST(JsonTest, StringEscapes) {
  const Json v = Json::Str("a\"b\\c\nd\te");
  auto parsed = Json::Parse(v.Dump());
  ASSERT_TRUE(parsed.ok());
  EXPECT_EQ(parsed->string_value(), "a\"b\\c\nd\te");
}

TEST(JsonTest, UnicodeEscapeDecodes) {
  auto parsed = Json::Parse("\"\\u0041\\u00e9\"");
  ASSERT_TRUE(parsed.ok());
  EXPECT_EQ(parsed->string_value(), "A\xc3\xa9");  // "Aé" in UTF-8
}

TEST(JsonTest, ObjectPreservesInsertionOrder) {
  Json o = Json::Object();
  o.Set("zebra", Json::Int(1));
  o.Set("apple", Json::Int(2));
  EXPECT_EQ(o.Dump(), "{\"zebra\":1,\"apple\":2}");
  // Set on an existing key replaces in place, keeping position.
  o.Set("zebra", Json::Int(3));
  EXPECT_EQ(o.Dump(), "{\"zebra\":3,\"apple\":2}");
}

TEST(JsonTest, ObjectAccessors) {
  Json o = Json::Object();
  o.Set("k", Json::Str("v"));
  EXPECT_TRUE(o.Has("k"));
  EXPECT_FALSE(o.Has("missing"));
  EXPECT_EQ(o.Get("k").string_value(), "v");
  EXPECT_TRUE(o.Get("missing").is_null());
}

TEST(JsonTest, NestedDocumentRoundTrips) {
  Json root = Json::Object();
  root.Set("title", Json::Str("report"));
  Json& arr = root.Set("values", Json::Array());
  for (int i = 0; i < 3; ++i) {
    Json& item = arr.Append(Json::Object());
    item.Set("i", Json::Int(i));
    item.Set("half", Json::Number(i / 2.0));
  }
  const std::string compact = root.Dump();
  const std::string pretty = root.Dump(/*pretty=*/true);
  for (const std::string& text : {compact, pretty}) {
    auto parsed = Json::Parse(text);
    ASSERT_TRUE(parsed.ok()) << parsed.status().ToString();
    EXPECT_EQ(parsed->Get("title").string_value(), "report");
    const Json& values = parsed->Get("values");
    ASSERT_EQ(values.size(), 3u);
    EXPECT_EQ(values.at(2).Get("i").number_value(), 2.0);
    EXPECT_EQ(values.at(1).Get("half").number_value(), 0.5);
  }
}

TEST(JsonTest, ParseRejectsMalformedInput) {
  const char* bad[] = {
      "",           "{",        "[1,]",       "{\"a\":}",  "tru",
      "\"unterminated", "1 2",  "{\"a\" 1}",  "[1 2]",     "\"\\x\"",
      "nullx",      "1.2.3",
  };
  for (const char* text : bad) {
    auto parsed = Json::Parse(text);
    EXPECT_FALSE(parsed.ok()) << "accepted: " << text;
    if (!parsed.ok()) {
      EXPECT_EQ(parsed.status().code(), StatusCode::kParseError) << text;
    }
  }
}

TEST(JsonTest, ParseCapsNestingDepth) {
  std::string deep(100, '[');
  deep += std::string(100, ']');
  auto parsed = Json::Parse(deep);
  EXPECT_FALSE(parsed.ok());
  EXPECT_EQ(parsed.status().code(), StatusCode::kParseError);
}

TEST(JsonTest, ParseAcceptsSurroundingWhitespace) {
  auto parsed = Json::Parse("  {\"a\": [1, 2.5, true, null]}  ");
  ASSERT_TRUE(parsed.ok());
  EXPECT_EQ(parsed->Get("a").size(), 4u);
}

}  // namespace
}  // namespace jackpine::obs
