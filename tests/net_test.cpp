// End-to-end client/server tests: a real pinedb Server on a loopback
// ephemeral port, driven through the public client API with
// jackpine:tcp://... URLs. These are the tentpole guarantees: remote results
// identical to in-process, server-side deadline enforcement, per-session
// error isolation, chaos composition, and leak-free graceful shutdown.

#include <atomic>
#include <string>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "client/client.h"
#include "common/stopwatch.h"
#include "core/loader.h"
#include "core/micro_suite.h"
#include "core/runner.h"
#include "net/remote_driver.h"
#include "net/server.h"
#include "tigergen/tigergen.h"

namespace jackpine {
namespace {

class NetTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() { net::RegisterRemoteDriver(); }
};

tigergen::TigerDataset SmallDataset() {
  tigergen::TigerGenOptions gen;
  gen.scale = 0.05;
  gen.seed = 7;
  return tigergen::GenerateTiger(gen);
}

std::unique_ptr<net::Server> StartServer(const std::string& sut) {
  net::ServerOptions options;
  options.sut = sut;
  options.port = 0;  // ephemeral
  auto server = net::Server::Start(options);
  EXPECT_TRUE(server.ok()) << server.status().ToString();
  return std::move(server).value();
}

std::string RemoteUrl(const net::Server& server, const std::string& sut,
                      const std::string& chaos = "") {
  std::string url = "jackpine:";
  if (!chaos.empty()) url += "chaos(" + chaos + "):";
  url += "tcp://127.0.0.1:" + std::to_string(server.port()) + "/" + sut;
  return url;
}

TEST_F(NetTest, DdlInsertSelectWithGeometryRoundTrip) {
  auto server = StartServer("pine-rtree");
  auto conn = client::Connection::Open(RemoteUrl(*server, "pine-rtree"));
  ASSERT_TRUE(conn.ok()) << conn.status().ToString();
  EXPECT_FALSE(conn->is_local());

  client::Statement stmt = conn->CreateStatement();
  auto created =
      stmt.ExecuteUpdate("CREATE TABLE pts (id BIGINT, geom GEOMETRY)");
  ASSERT_TRUE(created.ok()) << created.status().ToString();
  auto inserted = stmt.ExecuteUpdate(
      "INSERT INTO pts VALUES (1, ST_GeomFromText('POINT (3 4)')), "
      "(2, ST_GeomFromText('LINESTRING (0 0, 1 1)'))");
  ASSERT_TRUE(inserted.ok()) << inserted.status().ToString();
  EXPECT_EQ(*inserted, 2);

  auto rs = stmt.ExecuteQuery(
      "SELECT id, ST_AsText(geom) FROM pts ORDER BY id");
  ASSERT_TRUE(rs.ok()) << rs.status().ToString();
  ASSERT_EQ(rs->RowCount(), 2u);
  ASSERT_TRUE(rs->Next());
  EXPECT_EQ(rs->GetInt64(0).value(), 1);
  EXPECT_EQ(rs->GetString(1).value(), "POINT (3 4)");

  // A geometry-typed column crosses the wire as WKB and comes back whole.
  auto geo_rs =
      stmt.ExecuteQuery("SELECT geom FROM pts WHERE id = 1");
  ASSERT_TRUE(geo_rs.ok()) << geo_rs.status().ToString();
  ASSERT_TRUE(geo_rs->Next());
  EXPECT_EQ(geo_rs->GetGeometry(0)->ToWkt(), "POINT (3 4)");
}

// The acceptance bar: the full micro-topology suite returns identical row
// counts and checksums whether the SUT is in-process or behind the server,
// with the dataset itself loaded through the wire (INSERT SQL path).
TEST_F(NetTest, MicroSuiteMatchesInProcessExactly) {
  const tigergen::TigerDataset dataset = SmallDataset();

  auto local = client::Connection::Open("jackpine:pine-rtree");
  ASSERT_TRUE(local.ok());
  ASSERT_TRUE(core::LoadDataset(dataset, &*local).ok());

  auto server = StartServer("pine-rtree");
  auto remote = client::Connection::Open(RemoteUrl(*server, "pine-rtree"));
  ASSERT_TRUE(remote.ok()) << remote.status().ToString();
  auto load = core::LoadDataset(dataset, &*remote);
  ASSERT_TRUE(load.ok()) << load.status().ToString();
  EXPECT_EQ(load->rows, dataset.TotalRows());

  core::RunConfig config;
  config.warmup = 0;
  config.repetitions = 1;
  const auto suite = core::BuildTopologicalSuite(dataset);
  const auto local_runs = core::RunSuite(&*local, suite, config);
  const auto remote_runs = core::RunSuite(&*remote, suite, config);
  ASSERT_EQ(local_runs.size(), remote_runs.size());
  for (size_t i = 0; i < local_runs.size(); ++i) {
    EXPECT_TRUE(remote_runs[i].ok) << remote_runs[i].query_id << ": "
                                   << remote_runs[i].error;
    EXPECT_EQ(local_runs[i].result_rows, remote_runs[i].result_rows)
        << local_runs[i].query_id;
    EXPECT_EQ(local_runs[i].checksum, remote_runs[i].checksum)
        << local_runs[i].query_id;
  }
}

// Deadlines ride in the Query frame and are enforced by ExecContext next to
// the data: a pathological cross join on an unindexed SUT stops server-side
// within a small multiple of the budget instead of hanging the client.
TEST_F(NetTest, DeadlineIsEnforcedServerSide) {
  auto server = StartServer("pine-scan");
  {
    tigergen::TigerGenOptions gen;
    gen.scale = 0.5;
    gen.seed = 7;
    ASSERT_TRUE(core::GenerateAndLoad(gen, &server->connection()).ok());
  }
  auto conn = client::Connection::Open(RemoteUrl(*server, "pine-scan"));
  ASSERT_TRUE(conn.ok()) << conn.status().ToString();
  client::Statement stmt = conn->CreateStatement();

  ExecLimits limits;
  limits.deadline_s = 0.05;
  stmt.SetExecLimits(limits);
  Stopwatch watch;
  auto rs = stmt.ExecuteQuery(
      "SELECT COUNT(*) FROM edges a, edges b "
      "WHERE ST_Intersects(a.geom, b.geom)");
  const double elapsed = watch.ElapsedSeconds();
  ASSERT_FALSE(rs.ok());
  EXPECT_EQ(rs.status().code(), StatusCode::kDeadlineExceeded);
  // Far below the seconds the join needs, though looser than the in-process
  // bound because the verdict makes a network round trip.
  EXPECT_LT(elapsed, 1.0);

  // The session survives its own timeout.
  auto ok_rs = stmt.ExecuteQuery("SELECT COUNT(*) FROM edges");
  EXPECT_TRUE(ok_rs.ok()) << ok_rs.status().ToString();
}

TEST_F(NetTest, RowAndByteBudgetsPropagate) {
  auto server = StartServer("pine-rtree");
  ASSERT_TRUE(
      core::LoadDataset(SmallDataset(), &server->connection()).ok());
  auto conn = client::Connection::Open(RemoteUrl(*server, "pine-rtree"));
  ASSERT_TRUE(conn.ok());
  client::Statement stmt = conn->CreateStatement();

  ExecLimits limits;
  limits.max_rows = 5;
  stmt.SetExecLimits(limits);
  auto rs = stmt.ExecuteQuery("SELECT tlid FROM edges");
  ASSERT_FALSE(rs.ok());
  EXPECT_EQ(rs.status().code(), StatusCode::kResourceExhausted);

  limits = ExecLimits();
  limits.max_result_bytes = 256;
  stmt.SetExecLimits(limits);
  auto geom_rs = stmt.ExecuteQuery("SELECT geom FROM edges");
  ASSERT_FALSE(geom_rs.ok());
  EXPECT_EQ(geom_rs.status().code(), StatusCode::kResourceExhausted);
}

// An engine error is an Error frame, not a dead connection: the same
// statement (same TCP session) keeps working afterwards.
TEST_F(NetTest, EngineErrorsLeaveTheSessionHealthy) {
  auto server = StartServer("pine-rtree");
  auto conn = client::Connection::Open(RemoteUrl(*server, "pine-rtree"));
  ASSERT_TRUE(conn.ok());
  client::Statement stmt = conn->CreateStatement();
  ASSERT_TRUE(stmt.ExecuteUpdate("CREATE TABLE t (x BIGINT)").ok());

  auto bad = stmt.ExecuteQuery("SELECT nope FROM t");
  ASSERT_FALSE(bad.ok());
  auto worse = stmt.ExecuteQuery("THIS IS NOT SQL");
  ASSERT_FALSE(worse.ok());

  auto good = stmt.ExecuteQuery("SELECT COUNT(*) FROM t");
  EXPECT_TRUE(good.ok()) << good.status().ToString();
  // Three queries, one session: errors were answered in-band.
  EXPECT_EQ(server->counters().sessions_opened, 1u);
  EXPECT_EQ(server->active_sessions(), 1u);
}

TEST_F(NetTest, HandshakeRejectsMismatchedSut) {
  auto server = StartServer("pine-rtree");
  auto conn = client::Connection::Open(RemoteUrl(*server, "pine-grid"));
  ASSERT_FALSE(conn.ok());
  EXPECT_NE(conn.status().message().find("handshake"), std::string::npos)
      << conn.status().message();
  EXPECT_NE(conn.status().message().find("pine-rtree"), std::string::npos)
      << conn.status().message();
}

TEST_F(NetTest, ConnectingToADeadPortFailsFastAsUnavailable) {
  // Bind-then-close to get a port with nothing behind it.
  uint16_t dead_port;
  {
    auto server = StartServer("pine-rtree");
    dead_port = server->port();
  }
  auto conn = client::Connection::Open(
      "jackpine:tcp://127.0.0.1:" + std::to_string(dead_port) + "/pine-rtree");
  ASSERT_FALSE(conn.ok());
  EXPECT_EQ(conn.status().code(), StatusCode::kUnavailable);
}

// Four client threads with their own Statements = four genuine server
// sessions executing concurrently over one shared engine.
TEST_F(NetTest, ConcurrentStatementsAreConcurrentSessions) {
  auto server = StartServer("pine-rtree");
  ASSERT_TRUE(
      core::LoadDataset(SmallDataset(), &server->connection()).ok());
  auto conn = client::Connection::Open(RemoteUrl(*server, "pine-rtree"));
  ASSERT_TRUE(conn.ok());

  constexpr int kClients = 4;
  constexpr int kQueriesPerClient = 20;
  std::atomic<int> failures{0};
  std::vector<std::thread> clients;
  for (int c = 0; c < kClients; ++c) {
    clients.emplace_back([&conn, &failures] {
      client::Statement stmt = conn->CreateStatement();
      for (int i = 0; i < kQueriesPerClient; ++i) {
        auto rs = stmt.ExecuteQuery("SELECT COUNT(*) FROM edges");
        if (!rs.ok() || rs->RowCount() != 1) failures.fetch_add(1);
      }
    });
  }
  for (std::thread& t : clients) t.join();
  EXPECT_EQ(failures.load(), 0);
  // The probe session plus one per client thread.
  EXPECT_GE(server->counters().sessions_opened,
            static_cast<uint64_t>(kClients));
  EXPECT_EQ(server->counters().queries,
            static_cast<uint64_t>(kClients * kQueriesPerClient));
}

// The multi-client throughput harness runs unchanged against a remote SUT.
TEST_F(NetTest, ConcurrentThroughputHarnessRunsRemotely) {
  const tigergen::TigerDataset dataset = SmallDataset();
  auto server = StartServer("pine-rtree");
  ASSERT_TRUE(core::LoadDataset(dataset, &server->connection()).ok());
  auto conn = client::Connection::Open(RemoteUrl(*server, "pine-rtree"));
  ASSERT_TRUE(conn.ok());

  const auto suite = core::BuildTopologicalSuite(dataset);
  const core::ThroughputResult tp =
      core::RunConcurrentThroughput(&*conn, suite, /*clients=*/4,
                                    /*rounds=*/1);
  EXPECT_EQ(tp.errors, 0u);
  EXPECT_EQ(tp.queries_executed, 4u * suite.size());
  EXPECT_GT(tp.QueriesPerSecond(), 0.0);
}

// Chaos is drawn client-side at the Statement seam, so wrapping a remote URL
// replays the exact same deterministic fault sequence as wrapping the local
// SUT — byte-identical outcome traces, as ISSUE.md requires.
std::string OutcomeTrace(client::Connection* conn, int n) {
  client::Statement stmt = conn->CreateStatement();
  EXPECT_TRUE(stmt.ExecuteUpdate("CREATE TABLE t (x BIGINT)").ok());
  std::string trace;
  for (int i = 0; i < n; ++i) {
    auto rs = stmt.ExecuteQuery("SELECT COUNT(*) FROM t");
    trace += rs.ok() ? "." : "[" + rs.status().ToString() + "]";
  }
  return trace;
}

TEST_F(NetTest, ChaosComposedRemoteReplaysTheInProcessSequence) {
  constexpr char kSpec[] = "1234,0.3,0";
  auto local = client::Connection::Open(
      std::string("jackpine:chaos(") + kSpec + "):pine-rtree");
  ASSERT_TRUE(local.ok()) << local.status().ToString();
  auto server = StartServer("pine-rtree");
  auto remote = client::Connection::Open(
      RemoteUrl(*server, "pine-rtree", kSpec));
  ASSERT_TRUE(remote.ok()) << remote.status().ToString();

  const std::string local_trace = OutcomeTrace(&*local, 60);
  const std::string remote_trace = OutcomeTrace(&*remote, 60);
  EXPECT_EQ(local_trace, remote_trace);
  // The trace genuinely mixes successes and injected faults.
  EXPECT_NE(local_trace.find('.'), std::string::npos);
  EXPECT_NE(local_trace.find("Unavailable"), std::string::npos);
}

TEST_F(NetTest, GracefulShutdownLeaksNoSessions) {
  auto server = StartServer("pine-rtree");
  {
    auto conn = client::Connection::Open(RemoteUrl(*server, "pine-rtree"));
    ASSERT_TRUE(conn.ok());
    client::Statement stmt = conn->CreateStatement();
    ASSERT_TRUE(stmt.ExecuteUpdate("CREATE TABLE t (x BIGINT)").ok());
    ASSERT_TRUE(stmt.ExecuteQuery("SELECT COUNT(*) FROM t").ok());
    // conn (and its sessions) close here with best-effort Close frames.
  }
  // Second client still mid-session when Shutdown lands: the server must
  // unblock and drain it rather than deadlock.
  auto lingering = client::Connection::Open(RemoteUrl(*server, "pine-rtree"));
  ASSERT_TRUE(lingering.ok());
  client::Statement lingering_stmt = lingering->CreateStatement();
  ASSERT_TRUE(lingering_stmt.ExecuteQuery("SELECT COUNT(*) FROM t").ok());

  server->Shutdown();
  const net::ServerCounters c = server->counters();
  EXPECT_EQ(c.sessions_opened, c.sessions_closed);
  EXPECT_GT(c.queries, 0u);
  EXPECT_EQ(server->active_sessions(), 0u);

  // After shutdown the lingering client sees kUnavailable, the retryable
  // code the benchmark's retry policy understands.
  auto rs = lingering_stmt.ExecuteQuery("SELECT COUNT(*) FROM t");
  ASSERT_FALSE(rs.ok());
  EXPECT_EQ(rs.status().code(), StatusCode::kUnavailable);
}

TEST_F(NetTest, SessionLimitRefusesPolitely) {
  net::ServerOptions options;
  options.sut = "pine-rtree";
  options.port = 0;
  options.max_sessions = 1;
  auto server = net::Server::Start(options);
  ASSERT_TRUE(server.ok());

  // The probe session of the first connection occupies the single slot.
  auto first = client::Connection::Open(RemoteUrl(**server, "pine-rtree"));
  ASSERT_TRUE(first.ok()) << first.status().ToString();
  client::Statement stmt = first->CreateStatement();
  ASSERT_TRUE(stmt.ExecuteUpdate("CREATE TABLE t (x BIGINT)").ok());

  auto second = client::Connection::Open(RemoteUrl(**server, "pine-rtree"));
  ASSERT_FALSE(second.ok());
  EXPECT_EQ(second.status().code(), StatusCode::kResourceExhausted);
  // The refused connection did not disturb the admitted one.
  EXPECT_TRUE(stmt.ExecuteQuery("SELECT COUNT(*) FROM t").ok());
}

}  // namespace
}  // namespace jackpine
