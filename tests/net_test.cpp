// End-to-end client/server tests: a real pinedb Server on a loopback
// ephemeral port, driven through the public client API with
// jackpine:tcp://... URLs. These are the tentpole guarantees: remote results
// identical to in-process, server-side deadline enforcement, per-session
// error isolation, chaos composition, and leak-free graceful shutdown.

#include <sys/socket.h>

#include <algorithm>
#include <atomic>
#include <chrono>
#include <memory>
#include <optional>
#include <set>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "client/client.h"
#include "common/stopwatch.h"
#include "common/string_util.h"
#include "core/loader.h"
#include "core/micro_suite.h"
#include "core/runner.h"
#include "net/remote_driver.h"
#include "net/server.h"
#include "net/socket.h"
#include "net/wire.h"
#include "obs/json.h"
#include "obs/metrics.h"
#include "obs/span.h"
#include "obs/trace.h"
#include "tigergen/tigergen.h"

namespace jackpine {
namespace {

class NetTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() { net::RegisterRemoteDriver(); }
};

tigergen::TigerDataset SmallDataset() {
  tigergen::TigerGenOptions gen;
  gen.scale = 0.05;
  gen.seed = 7;
  return tigergen::GenerateTiger(gen);
}

std::unique_ptr<net::Server> StartServer(const std::string& sut) {
  net::ServerOptions options;
  options.sut = sut;
  options.port = 0;  // ephemeral
  auto server = net::Server::Start(options);
  EXPECT_TRUE(server.ok()) << server.status().ToString();
  return std::move(server).value();
}

std::string RemoteUrl(const net::Server& server, const std::string& sut,
                      const std::string& chaos = "") {
  std::string url = "jackpine:";
  if (!chaos.empty()) url += "chaos(" + chaos + "):";
  url += "tcp://127.0.0.1:" + std::to_string(server.port()) + "/" + sut;
  return url;
}

TEST_F(NetTest, DdlInsertSelectWithGeometryRoundTrip) {
  auto server = StartServer("pine-rtree");
  auto conn = client::Connection::Open(RemoteUrl(*server, "pine-rtree"));
  ASSERT_TRUE(conn.ok()) << conn.status().ToString();
  EXPECT_FALSE(conn->is_local());

  client::Statement stmt = conn->CreateStatement();
  auto created =
      stmt.ExecuteUpdate("CREATE TABLE pts (id BIGINT, geom GEOMETRY)");
  ASSERT_TRUE(created.ok()) << created.status().ToString();
  auto inserted = stmt.ExecuteUpdate(
      "INSERT INTO pts VALUES (1, ST_GeomFromText('POINT (3 4)')), "
      "(2, ST_GeomFromText('LINESTRING (0 0, 1 1)'))");
  ASSERT_TRUE(inserted.ok()) << inserted.status().ToString();
  EXPECT_EQ(*inserted, 2);

  auto rs = stmt.ExecuteQuery(
      "SELECT id, ST_AsText(geom) FROM pts ORDER BY id");
  ASSERT_TRUE(rs.ok()) << rs.status().ToString();
  ASSERT_EQ(rs->RowCount(), 2u);
  ASSERT_TRUE(rs->Next());
  EXPECT_EQ(rs->GetInt64(0).value(), 1);
  EXPECT_EQ(rs->GetString(1).value(), "POINT (3 4)");

  // A geometry-typed column crosses the wire as WKB and comes back whole.
  auto geo_rs =
      stmt.ExecuteQuery("SELECT geom FROM pts WHERE id = 1");
  ASSERT_TRUE(geo_rs.ok()) << geo_rs.status().ToString();
  ASSERT_TRUE(geo_rs->Next());
  EXPECT_EQ(geo_rs->GetGeometry(0)->ToWkt(), "POINT (3 4)");
}

// The acceptance bar: the full micro-topology suite returns identical row
// counts and checksums whether the SUT is in-process or behind the server,
// with the dataset itself loaded through the wire (INSERT SQL path).
TEST_F(NetTest, MicroSuiteMatchesInProcessExactly) {
  const tigergen::TigerDataset dataset = SmallDataset();

  auto local = client::Connection::Open("jackpine:pine-rtree");
  ASSERT_TRUE(local.ok());
  ASSERT_TRUE(core::LoadDataset(dataset, &*local).ok());

  auto server = StartServer("pine-rtree");
  auto remote = client::Connection::Open(RemoteUrl(*server, "pine-rtree"));
  ASSERT_TRUE(remote.ok()) << remote.status().ToString();
  auto load = core::LoadDataset(dataset, &*remote);
  ASSERT_TRUE(load.ok()) << load.status().ToString();
  EXPECT_EQ(load->rows, dataset.TotalRows());

  core::RunConfig config;
  config.warmup = 0;
  config.repetitions = 1;
  const auto suite = core::BuildTopologicalSuite(dataset);
  const auto local_runs = core::RunSuite(&*local, suite, config);
  const auto remote_runs = core::RunSuite(&*remote, suite, config);
  ASSERT_EQ(local_runs.size(), remote_runs.size());
  for (size_t i = 0; i < local_runs.size(); ++i) {
    EXPECT_TRUE(remote_runs[i].ok) << remote_runs[i].query_id << ": "
                                   << remote_runs[i].error;
    EXPECT_EQ(local_runs[i].result_rows, remote_runs[i].result_rows)
        << local_runs[i].query_id;
    EXPECT_EQ(local_runs[i].checksum, remote_runs[i].checksum)
        << local_runs[i].query_id;
  }
}

// Deadlines ride in the Query frame and are enforced by ExecContext next to
// the data: a pathological cross join on an unindexed SUT stops server-side
// within a small multiple of the budget instead of hanging the client.
TEST_F(NetTest, DeadlineIsEnforcedServerSide) {
  auto server = StartServer("pine-scan");
  {
    tigergen::TigerGenOptions gen;
    gen.scale = 0.5;
    gen.seed = 7;
    ASSERT_TRUE(core::GenerateAndLoad(gen, &server->connection()).ok());
  }
  auto conn = client::Connection::Open(RemoteUrl(*server, "pine-scan"));
  ASSERT_TRUE(conn.ok()) << conn.status().ToString();
  client::Statement stmt = conn->CreateStatement();

  ExecLimits limits;
  limits.deadline_s = 0.05;
  stmt.SetExecLimits(limits);
  Stopwatch watch;
  auto rs = stmt.ExecuteQuery(
      "SELECT COUNT(*) FROM edges a, edges b "
      "WHERE ST_Intersects(a.geom, b.geom)");
  const double elapsed = watch.ElapsedSeconds();
  ASSERT_FALSE(rs.ok());
  EXPECT_EQ(rs.status().code(), StatusCode::kDeadlineExceeded);
  // Far below the seconds the join needs, though looser than the in-process
  // bound because the verdict makes a network round trip.
  EXPECT_LT(elapsed, 1.0);

  // The session survives its own timeout.
  auto ok_rs = stmt.ExecuteQuery("SELECT COUNT(*) FROM edges");
  EXPECT_TRUE(ok_rs.ok()) << ok_rs.status().ToString();
}

TEST_F(NetTest, RowAndByteBudgetsPropagate) {
  auto server = StartServer("pine-rtree");
  ASSERT_TRUE(
      core::LoadDataset(SmallDataset(), &server->connection()).ok());
  auto conn = client::Connection::Open(RemoteUrl(*server, "pine-rtree"));
  ASSERT_TRUE(conn.ok());
  client::Statement stmt = conn->CreateStatement();

  ExecLimits limits;
  limits.max_rows = 5;
  stmt.SetExecLimits(limits);
  auto rs = stmt.ExecuteQuery("SELECT tlid FROM edges");
  ASSERT_FALSE(rs.ok());
  EXPECT_EQ(rs.status().code(), StatusCode::kResourceExhausted);

  limits = ExecLimits();
  limits.max_result_bytes = 256;
  stmt.SetExecLimits(limits);
  auto geom_rs = stmt.ExecuteQuery("SELECT geom FROM edges");
  ASSERT_FALSE(geom_rs.ok());
  EXPECT_EQ(geom_rs.status().code(), StatusCode::kResourceExhausted);
}

// An engine error is an Error frame, not a dead connection: the same
// statement (same TCP session) keeps working afterwards.
TEST_F(NetTest, EngineErrorsLeaveTheSessionHealthy) {
  auto server = StartServer("pine-rtree");
  auto conn = client::Connection::Open(RemoteUrl(*server, "pine-rtree"));
  ASSERT_TRUE(conn.ok());
  client::Statement stmt = conn->CreateStatement();
  ASSERT_TRUE(stmt.ExecuteUpdate("CREATE TABLE t (x BIGINT)").ok());

  auto bad = stmt.ExecuteQuery("SELECT nope FROM t");
  ASSERT_FALSE(bad.ok());
  auto worse = stmt.ExecuteQuery("THIS IS NOT SQL");
  ASSERT_FALSE(worse.ok());

  auto good = stmt.ExecuteQuery("SELECT COUNT(*) FROM t");
  EXPECT_TRUE(good.ok()) << good.status().ToString();
  // Three queries, one session: errors were answered in-band.
  EXPECT_EQ(server->counters().sessions_opened, 1u);
  EXPECT_EQ(server->active_sessions(), 1u);
}

TEST_F(NetTest, HandshakeRejectsMismatchedSut) {
  auto server = StartServer("pine-rtree");
  auto conn = client::Connection::Open(RemoteUrl(*server, "pine-grid"));
  ASSERT_FALSE(conn.ok());
  EXPECT_NE(conn.status().message().find("handshake"), std::string::npos)
      << conn.status().message();
  EXPECT_NE(conn.status().message().find("pine-rtree"), std::string::npos)
      << conn.status().message();
}

TEST_F(NetTest, ConnectingToADeadPortFailsFastAsUnavailable) {
  // Bind-then-close to get a port with nothing behind it.
  uint16_t dead_port;
  {
    auto server = StartServer("pine-rtree");
    dead_port = server->port();
  }
  auto conn = client::Connection::Open(
      "jackpine:tcp://127.0.0.1:" + std::to_string(dead_port) + "/pine-rtree");
  ASSERT_FALSE(conn.ok());
  EXPECT_EQ(conn.status().code(), StatusCode::kUnavailable);
}

// Four client threads with their own Statements = four genuine server
// sessions executing concurrently over one shared engine.
TEST_F(NetTest, ConcurrentStatementsAreConcurrentSessions) {
  auto server = StartServer("pine-rtree");
  ASSERT_TRUE(
      core::LoadDataset(SmallDataset(), &server->connection()).ok());
  auto conn = client::Connection::Open(RemoteUrl(*server, "pine-rtree"));
  ASSERT_TRUE(conn.ok());

  constexpr int kClients = 4;
  constexpr int kQueriesPerClient = 20;
  std::atomic<int> failures{0};
  std::vector<std::thread> clients;
  for (int c = 0; c < kClients; ++c) {
    clients.emplace_back([&conn, &failures] {
      client::Statement stmt = conn->CreateStatement();
      for (int i = 0; i < kQueriesPerClient; ++i) {
        auto rs = stmt.ExecuteQuery("SELECT COUNT(*) FROM edges");
        if (!rs.ok() || rs->RowCount() != 1) failures.fetch_add(1);
      }
    });
  }
  for (std::thread& t : clients) t.join();
  EXPECT_EQ(failures.load(), 0);
  // The probe session plus one per client thread.
  EXPECT_GE(server->counters().sessions_opened,
            static_cast<uint64_t>(kClients));
  EXPECT_EQ(server->counters().queries,
            static_cast<uint64_t>(kClients * kQueriesPerClient));
}

// The multi-client throughput harness runs unchanged against a remote SUT.
TEST_F(NetTest, ConcurrentThroughputHarnessRunsRemotely) {
  const tigergen::TigerDataset dataset = SmallDataset();
  auto server = StartServer("pine-rtree");
  ASSERT_TRUE(core::LoadDataset(dataset, &server->connection()).ok());
  auto conn = client::Connection::Open(RemoteUrl(*server, "pine-rtree"));
  ASSERT_TRUE(conn.ok());

  const auto suite = core::BuildTopologicalSuite(dataset);
  const core::ThroughputResult tp =
      core::RunConcurrentThroughput(&*conn, suite, /*clients=*/4,
                                    /*rounds=*/1);
  EXPECT_EQ(tp.errors, 0u);
  EXPECT_EQ(tp.queries_executed, 4u * suite.size());
  EXPECT_GT(tp.QueriesPerSecond(), 0.0);
}

// Chaos is drawn client-side at the Statement seam, so wrapping a remote URL
// replays the exact same deterministic fault sequence as wrapping the local
// SUT — byte-identical outcome traces, as ISSUE.md requires.
std::string OutcomeTrace(client::Connection* conn, int n) {
  client::Statement stmt = conn->CreateStatement();
  EXPECT_TRUE(stmt.ExecuteUpdate("CREATE TABLE t (x BIGINT)").ok());
  std::string trace;
  for (int i = 0; i < n; ++i) {
    auto rs = stmt.ExecuteQuery("SELECT COUNT(*) FROM t");
    trace += rs.ok() ? "." : "[" + rs.status().ToString() + "]";
  }
  return trace;
}

TEST_F(NetTest, ChaosComposedRemoteReplaysTheInProcessSequence) {
  constexpr char kSpec[] = "1234,0.3,0";
  auto local = client::Connection::Open(
      std::string("jackpine:chaos(") + kSpec + "):pine-rtree");
  ASSERT_TRUE(local.ok()) << local.status().ToString();
  auto server = StartServer("pine-rtree");
  auto remote = client::Connection::Open(
      RemoteUrl(*server, "pine-rtree", kSpec));
  ASSERT_TRUE(remote.ok()) << remote.status().ToString();

  const std::string local_trace = OutcomeTrace(&*local, 60);
  const std::string remote_trace = OutcomeTrace(&*remote, 60);
  EXPECT_EQ(local_trace, remote_trace);
  // The trace genuinely mixes successes and injected faults.
  EXPECT_NE(local_trace.find('.'), std::string::npos);
  EXPECT_NE(local_trace.find("Unavailable"), std::string::npos);
}

TEST_F(NetTest, GracefulShutdownLeaksNoSessions) {
  auto server = StartServer("pine-rtree");
  {
    auto conn = client::Connection::Open(RemoteUrl(*server, "pine-rtree"));
    ASSERT_TRUE(conn.ok());
    client::Statement stmt = conn->CreateStatement();
    ASSERT_TRUE(stmt.ExecuteUpdate("CREATE TABLE t (x BIGINT)").ok());
    ASSERT_TRUE(stmt.ExecuteQuery("SELECT COUNT(*) FROM t").ok());
    // conn (and its sessions) close here with best-effort Close frames.
  }
  // Second client still mid-session when Shutdown lands: the server must
  // unblock and drain it rather than deadlock.
  auto lingering = client::Connection::Open(RemoteUrl(*server, "pine-rtree"));
  ASSERT_TRUE(lingering.ok());
  client::Statement lingering_stmt = lingering->CreateStatement();
  ASSERT_TRUE(lingering_stmt.ExecuteQuery("SELECT COUNT(*) FROM t").ok());

  server->Shutdown();
  const net::ServerCounters c = server->counters();
  EXPECT_EQ(c.sessions_opened, c.sessions_closed);
  EXPECT_GT(c.queries, 0u);
  EXPECT_EQ(server->active_sessions(), 0u);

  // After shutdown the lingering client sees kUnavailable, the retryable
  // code the benchmark's retry policy understands.
  auto rs = lingering_stmt.ExecuteQuery("SELECT COUNT(*) FROM t");
  ASSERT_FALSE(rs.ok());
  EXPECT_EQ(rs.status().code(), StatusCode::kUnavailable);
}

TEST_F(NetTest, SessionLimitRefusesPolitely) {
  net::ServerOptions options;
  options.sut = "pine-rtree";
  options.port = 0;
  options.max_sessions = 1;
  options.max_wait_queue = 0;  // no queue: over-limit connections shed at once
  auto server = net::Server::Start(options);
  ASSERT_TRUE(server.ok());

  // The probe session of the first connection occupies the single slot.
  auto first = client::Connection::Open(RemoteUrl(**server, "pine-rtree"));
  ASSERT_TRUE(first.ok()) << first.status().ToString();
  client::Statement stmt = first->CreateStatement();
  ASSERT_TRUE(stmt.ExecuteUpdate("CREATE TABLE t (x BIGINT)").ok());

  auto second = client::Connection::Open(RemoteUrl(**server, "pine-rtree"));
  ASSERT_FALSE(second.ok());
  EXPECT_EQ(second.status().code(), StatusCode::kResourceExhausted);
  // The shed is structured: the retry-after hint survives the handshake
  // wrapper, so a retrying client knows to back off rather than hammer.
  EXPECT_GT(second.status().retry_after_ms(), 0u);
  EXPECT_TRUE(IsShed(second.status())) << second.status().ToString();
  EXPECT_GE((*server)->counters().sessions_shed, 1u);
  // The refused connection did not disturb the admitted one.
  EXPECT_TRUE(stmt.ExecuteQuery("SELECT COUNT(*) FROM t").ok());
}

// A connection that arrives while the server is saturated parks in the wait
// queue and is admitted (not shed) once a slot frees.
TEST_F(NetTest, QueuedConnectionAdmittedWhenSlotFrees) {
  net::ServerOptions options;
  options.sut = "pine-rtree";
  options.port = 0;
  options.max_sessions = 1;
  options.max_wait_queue = 4;
  options.queue_timeout_s = 30.0;  // plenty: the test frees the slot itself
  auto server_or = net::Server::Start(options);
  ASSERT_TRUE(server_or.ok());
  auto& server = *server_or;

  std::optional<client::Connection> first;
  {
    auto conn = client::Connection::Open(RemoteUrl(*server, "pine-rtree"));
    ASSERT_TRUE(conn.ok()) << conn.status().ToString();
    first.emplace(*std::move(conn));
  }
  // The Statement owns the server session occupying the single slot, so it
  // must be destroyed along with the connection to free it.
  std::optional<client::Statement> stmt(first->CreateStatement());
  ASSERT_TRUE(stmt->ExecuteUpdate("CREATE TABLE t (x BIGINT)").ok());

  // The second connection blocks in the queue until `first` closes.
  Status second_status;
  std::thread waiter([&] {
    auto conn = client::Connection::Open(RemoteUrl(*server, "pine-rtree"));
    if (conn.ok()) {
      client::Statement s = conn->CreateStatement();
      second_status = s.ExecuteQuery("SELECT COUNT(*) FROM t").status();
    } else {
      second_status = conn.status();
    }
  });
  // Wait until the server has actually parked it, bounded at ~5 s.
  for (int i = 0; i < 500 && server->counters().sessions_queued == 0; ++i) {
    std::this_thread::sleep_for(std::chrono::milliseconds(10));
  }
  EXPECT_GE(server->counters().sessions_queued, 1u);
  stmt.reset();   // closes the occupying session...
  first.reset();  // ...and the dispatcher promotes the waiter into the slot
  waiter.join();
  EXPECT_TRUE(second_status.ok()) << second_status.ToString();
  EXPECT_EQ(server->counters().sessions_shed, 0u);
}

// The tentpole end-to-end: saturating clients against a tiny session budget.
// Sheds come back as structured retryable errors, the retry budget caps the
// amplification, real work still completes, and the server survives.
TEST_F(NetTest, OverloadRunDegradesGracefullyEndToEnd) {
  const tigergen::TigerDataset dataset = SmallDataset();
  net::ServerOptions options;
  options.sut = "pine-rtree";
  options.port = 0;
  options.max_sessions = 2;
  options.max_wait_queue = 1;
  options.queue_timeout_s = 0.2;
  options.retry_after_ms = 50;
  auto server_or = net::Server::Start(options);
  ASSERT_TRUE(server_or.ok());
  auto& server = *server_or;
  ASSERT_TRUE(core::LoadDataset(dataset, &server->connection()).ok());

  auto conn = client::Connection::Open(RemoteUrl(*server, "pine-rtree"));
  ASSERT_TRUE(conn.ok()) << conn.status().ToString();

  core::RunConfig config;
  config.retry.max_attempts = 3;
  config.retry.backoff_base_s = 1e-3;
  config.retry.budget =
      std::make_shared<core::RetryBudget>(20.0, 20.0, 0.1);
  const auto suite = core::BuildTopologicalSuite(dataset);
  const core::OverloadResult ov = core::RunOverload(
      &*conn, suite, /*clients=*/6, /*rounds=*/1, config);

  // Real work completed despite the overload...
  EXPECT_GT(ov.queries_ok, 0u);
  EXPECT_GT(ov.GoodputQps(), 0.0);
  // ...and the excess was shed with structure, not dropped connections.
  EXPECT_GT(ov.sheds, 0u);
  EXPECT_GE(server->counters().sessions_shed, 1u);
  // Every query slot lands in exactly one bucket.
  EXPECT_EQ(ov.queries_ok + ov.failures,
            6u * suite.size());

  // The server is still healthy afterwards: existing sessions answer.
  client::Statement stmt = conn->CreateStatement();
  EXPECT_TRUE(stmt.ExecuteQuery("SELECT COUNT(*) FROM edges").ok());
  server->Shutdown();
  const net::ServerCounters c = server->counters();
  EXPECT_EQ(c.sessions_opened, c.sessions_closed);
  EXPECT_EQ(server->active_sessions(), 0u);
}

// The whole overload pipeline is deterministic when the fault source is the
// seeded chaos model: same seed + same budget -> identical counters.
TEST_F(NetTest, OverloadCountersAreDeterministicUnderSeededChaos) {
  const tigergen::TigerDataset dataset = SmallDataset();
  const auto suite = core::BuildTopologicalSuite(dataset);
  auto run_once = [&]() {
    auto conn =
        client::Connection::Open("jackpine:chaos(9,0.4,0):pine-rtree");
    EXPECT_TRUE(conn.ok()) << conn.status().ToString();
    EXPECT_TRUE(core::LoadDataset(dataset, &*conn).ok());
    core::RunConfig config;
    config.retry.max_attempts = 2;
    config.retry.backoff_base_s = 1e-4;
    config.retry.budget = std::make_shared<core::RetryBudget>(3.0, 3.0, 0.0);
    return core::RunOverload(&*conn, suite, /*clients=*/1, /*rounds=*/1,
                             config);
  };
  const core::OverloadResult a = run_once();
  const core::OverloadResult b = run_once();
  EXPECT_EQ(a.attempts, b.attempts);
  EXPECT_EQ(a.queries_ok, b.queries_ok);
  EXPECT_EQ(a.failures, b.failures);
  EXPECT_EQ(a.transient_errors, b.transient_errors);
  EXPECT_EQ(a.budget_denied, b.budget_denied);
}

// Crash recovery: the suite keeps running when the server dies mid-stream,
// the failures surface as retryable kUnavailable, and a restarted server on
// the same port picks the client back up through EnsureSession's reconnect.
TEST_F(NetTest, CrashRecoveryAcrossServerRestart) {
  net::ServerOptions options;
  options.sut = "pine-rtree";
  options.port = 0;
  auto server_or = net::Server::Start(options);
  ASSERT_TRUE(server_or.ok());
  auto server = std::move(server_or).value();
  const uint16_t port = server->port();
  {
    tigergen::TigerGenOptions gen;
    gen.scale = 0.05;
    gen.seed = 7;
    ASSERT_TRUE(core::GenerateAndLoad(gen, &server->connection()).ok());
  }
  auto conn = client::Connection::Open(
      "jackpine:tcp://127.0.0.1:" + std::to_string(port) + "/pine-rtree");
  ASSERT_TRUE(conn.ok()) << conn.status().ToString();
  client::Statement stmt = conn->CreateStatement();
  ASSERT_TRUE(stmt.ExecuteQuery("SELECT COUNT(*) FROM edges").ok());

  // Kill the server mid-suite.
  server->Shutdown();
  server.reset();

  // The runner records the outage as a retryable failure and the suite
  // moves on instead of aborting (two transport failures stay below the
  // breaker's threshold of four).
  core::RunConfig config;
  config.warmup = 0;
  config.repetitions = 1;
  config.retry.max_attempts = 2;
  config.retry.backoff_base_s = 1e-3;
  core::QuerySpec q;
  q.id = "count-edges";
  q.sql = "SELECT COUNT(*) FROM edges";
  const core::RunResult down = core::RunQuery(&*conn, q, config);
  EXPECT_FALSE(down.ok);
  EXPECT_EQ(down.error_code, StatusCode::kUnavailable);
  EXPECT_EQ(down.attempts, 2u);
  EXPECT_EQ(down.transient_errors, 2u);

  // Restart on the same port (SO_REUSEADDR) and reload the data.
  options.port = port;
  auto restarted = net::Server::Start(options);
  ASSERT_TRUE(restarted.ok()) << restarted.status().ToString();
  {
    tigergen::TigerGenOptions gen;
    gen.scale = 0.05;
    gen.seed = 7;
    ASSERT_TRUE(
        core::GenerateAndLoad(gen, &(*restarted)->connection()).ok());
  }
  // The very same client object reconnects and the suite continues.
  const core::RunResult back = core::RunQuery(&*conn, q, config);
  EXPECT_TRUE(back.ok) << back.error;
}

// With the server gone, repeated transport failures trip the per-connection
// breaker: later queries fail instantly with a structured fast-fail instead
// of burning a connect timeout each, and a restart heals it via the
// half-open probe.
TEST_F(NetTest, BreakerFastFailsWhileDownThenRecovers) {
  net::ServerOptions options;
  options.sut = "pine-rtree";
  options.port = 0;
  auto server_or = net::Server::Start(options);
  ASSERT_TRUE(server_or.ok());
  auto server = std::move(server_or).value();
  const uint16_t port = server->port();
  auto conn = client::Connection::Open(
      "jackpine:tcp://127.0.0.1:" + std::to_string(port) + "/pine-rtree");
  ASSERT_TRUE(conn.ok());
  client::Statement stmt = conn->CreateStatement();
  ASSERT_TRUE(stmt.ExecuteUpdate("CREATE TABLE t (x BIGINT)").ok());

  server->Shutdown();
  server.reset();

  // Each failed query is one transport failure; the breaker (threshold 4)
  // opens, after which failures are fast-fails carrying a retry hint.
  bool saw_fast_fail = false;
  for (int i = 0; i < 8 && !saw_fast_fail; ++i) {
    auto rs = stmt.ExecuteQuery("SELECT COUNT(*) FROM t");
    ASSERT_FALSE(rs.ok());
    EXPECT_EQ(rs.status().code(), StatusCode::kUnavailable);
    if (IsBreakerFastFail(rs.status())) {
      saw_fast_fail = true;
      EXPECT_NE(rs.status().message().find("circuit breaker"),
                std::string::npos)
          << rs.status().message();
    }
  }
  EXPECT_TRUE(saw_fast_fail);

  // Restart on the same port; once the cooldown lapses, the half-open probe
  // reconnects and the connection is healthy again.
  options.port = port;
  auto restarted = net::Server::Start(options);
  ASSERT_TRUE(restarted.ok()) << restarted.status().ToString();
  client::Statement cstmt =
      (*restarted)->connection().CreateStatement();
  ASSERT_TRUE(cstmt.ExecuteUpdate("CREATE TABLE t (x BIGINT)").ok());
  std::this_thread::sleep_for(std::chrono::milliseconds(300));
  bool recovered = false;
  for (int i = 0; i < 20 && !recovered; ++i) {
    recovered = stmt.ExecuteQuery("SELECT COUNT(*) FROM t").ok();
    if (!recovered) {
      std::this_thread::sleep_for(std::chrono::milliseconds(100));
    }
  }
  EXPECT_TRUE(recovered);
}

// Sessions idle past --idle-timeout-s are reaped server-side; the client's
// next query sees the EOF as one retryable failure and reconnects.
TEST_F(NetTest, IdleSessionsAreReaped) {
  net::ServerOptions options;
  options.sut = "pine-rtree";
  options.port = 0;
  options.idle_timeout_s = 0.15;
  auto server_or = net::Server::Start(options);
  ASSERT_TRUE(server_or.ok());
  auto& server = *server_or;
  auto conn = client::Connection::Open(RemoteUrl(*server, "pine-rtree"));
  ASSERT_TRUE(conn.ok()) << conn.status().ToString();
  client::Statement stmt = conn->CreateStatement();
  ASSERT_TRUE(stmt.ExecuteUpdate("CREATE TABLE t (x BIGINT)").ok());

  // Go idle well past the timeout; the server should close the session.
  for (int i = 0; i < 100 && server->active_sessions() > 0; ++i) {
    std::this_thread::sleep_for(std::chrono::milliseconds(50));
  }
  EXPECT_EQ(server->active_sessions(), 0u);
  EXPECT_GE(server->counters().idle_reaped, 1u);

  // The reap was silent (no Error frame): the next query turns the EOF into
  // a single retryable kUnavailable, and the one after reconnects cleanly.
  auto first = stmt.ExecuteQuery("SELECT COUNT(*) FROM t");
  EXPECT_FALSE(first.ok());
  EXPECT_EQ(first.status().code(), StatusCode::kUnavailable);
  auto second = stmt.ExecuteQuery("SELECT COUNT(*) FROM t");
  EXPECT_TRUE(second.ok()) << second.status().ToString();
}

// A client that requests a huge result and then never reads it must not pin
// a server session forever: with --send-timeout-s set, the blocked send
// times out and the session is torn down.
TEST_F(NetTest, SlowClientSendTimesOutInsteadOfPinningTheServer) {
  net::ServerOptions options;
  options.sut = "pine-rtree";
  options.port = 0;
  options.send_timeout_s = 0.5;
  auto server_or = net::Server::Start(options);
  ASSERT_TRUE(server_or.ok());
  auto& server = *server_or;
  ASSERT_TRUE(core::LoadDataset(SmallDataset(), &server->connection()).ok());

  // A raw wire-level client, so the test controls (refuses) the reads.
  auto sock_or = net::Socket::Connect("127.0.0.1", server->port());
  ASSERT_TRUE(sock_or.ok()) << sock_or.status().ToString();
  net::Socket sock = std::move(sock_or).value();
  // Shrink our receive buffer so the server's blocked send trips the
  // timeout regardless of how large the kernel would otherwise auto-tune.
  const int rcvbuf = 4096;
  setsockopt(sock.fd(), SOL_SOCKET, SO_RCVBUF, &rcvbuf, sizeof(rcvbuf));

  net::HelloMsg hello;
  hello.sut = "pine-rtree";
  hello.peer_info = "slow-client-test";
  ASSERT_TRUE(sock.SendAll(net::EncodeFrame(net::FrameType::kHello,
                                            net::EncodeHello(hello)))
                  .ok());
  // A ~40k-row cross join with two geometry columns: far more bytes than
  // the socket buffers hold. Never read a single reply byte.
  net::QueryMsg query;
  query.sql = "SELECT a.geom, b.geom FROM edges a, edges b";
  ASSERT_TRUE(sock.SendAll(net::EncodeFrame(net::FrameType::kQuery,
                                            net::EncodeQuery(query)))
                  .ok());

  // The server must record a send timeout and reap the session within a
  // small multiple of --send-timeout-s, with the socket still open here.
  bool timed_out = false;
  for (int i = 0; i < 200 && !timed_out; ++i) {
    timed_out = server->counters().send_timeouts >= 1;
    if (!timed_out) std::this_thread::sleep_for(std::chrono::milliseconds(50));
  }
  EXPECT_TRUE(timed_out);
  for (int i = 0; i < 100 && server->active_sessions() > 0; ++i) {
    std::this_thread::sleep_for(std::chrono::milliseconds(50));
  }
  EXPECT_EQ(server->active_sessions(), 0u);
}

// Server-side chaos injects faults in-band at the execution seam: queries
// fail with structured Error frames, updates are never injected, and the
// session itself stays healthy.
TEST_F(NetTest, ServerChaosInjectsInBandErrors) {
  net::ServerOptions options;
  options.sut = "pine-rtree";
  options.port = 0;
  options.chaos.seed = 5;
  options.chaos.error_rate = 1.0;
  options.chaos.latency_ms = 0.0;
  auto server_or = net::Server::Start(options);
  ASSERT_TRUE(server_or.ok());
  auto& server = *server_or;
  auto conn = client::Connection::Open(RemoteUrl(*server, "pine-rtree"));
  ASSERT_TRUE(conn.ok()) << conn.status().ToString();
  client::Statement stmt = conn->CreateStatement();

  // Updates bypass injection even at rate 1.0 (mirrors the client driver).
  ASSERT_TRUE(stmt.ExecuteUpdate("CREATE TABLE t (x BIGINT)").ok());
  auto rs = stmt.ExecuteQuery("SELECT COUNT(*) FROM t");
  ASSERT_FALSE(rs.ok());
  EXPECT_EQ(rs.status().code(), StatusCode::kUnavailable);
  EXPECT_NE(rs.status().message().find("chaos"), std::string::npos)
      << rs.status().message();
  // In-band: the TCP session survived its own injected failure.
  auto again = stmt.ExecuteQuery("SELECT COUNT(*) FROM t");
  EXPECT_FALSE(again.ok());
  EXPECT_EQ(server->counters().sessions_opened, 1u);
  EXPECT_GE(server->counters().chaos_injected, 2u);
}

// --- Observability over the wire ----------------------------------------

// The same query through jackpine:tcp:// yields the same execution trace
// counters as in-process: the server records a per-session trace and the
// remote driver fetches it with a Stats(kSession) round trip after each
// query. Times differ (they are server-side wall clock), counters must not.
TEST_F(NetTest, RemoteTraceMatchesLocalCounters) {
  const tigergen::TigerDataset dataset = SmallDataset();

  auto local = client::Connection::Open("jackpine:pine-rtree");
  ASSERT_TRUE(local.ok());
  ASSERT_TRUE(core::LoadDataset(dataset, &*local).ok());

  auto server = StartServer("pine-rtree");
  ASSERT_TRUE(core::LoadDataset(dataset, &server->connection()).ok());
  auto remote = client::Connection::Open(RemoteUrl(*server, "pine-rtree"));
  ASSERT_TRUE(remote.ok()) << remote.status().ToString();

  const std::string sql =
      "SELECT COUNT(*) FROM edges a, arealm b "
      "WHERE ST_Intersects(a.geom, b.geom)";

  obs::QueryTrace local_trace;
  {
    client::Statement stmt = local->CreateStatement();
    stmt.SetTrace(&local_trace);
    auto rs = stmt.ExecuteQuery(sql);
    ASSERT_TRUE(rs.ok()) << rs.status().ToString();
  }
  obs::QueryTrace remote_trace;
  {
    client::Statement stmt = remote->CreateStatement();
    stmt.SetTrace(&remote_trace);
    auto rs = stmt.ExecuteQuery(sql);
    ASSERT_TRUE(rs.ok()) << rs.status().ToString();
  }

  // The indexed spatial join exercises the whole pipeline.
  EXPECT_GT(local_trace.index_probes, 0u);
  EXPECT_GT(local_trace.index_nodes_visited, 0u);
  EXPECT_GT(local_trace.index_candidates, 0u);
  EXPECT_GT(local_trace.refine_checks, 0u);

  EXPECT_EQ(remote_trace.queries, local_trace.queries);
  EXPECT_EQ(remote_trace.rows_scanned, local_trace.rows_scanned);
  EXPECT_EQ(remote_trace.index_probes, local_trace.index_probes);
  EXPECT_EQ(remote_trace.index_nodes_visited,
            local_trace.index_nodes_visited);
  EXPECT_EQ(remote_trace.index_candidates, local_trace.index_candidates);
  EXPECT_EQ(remote_trace.refine_checks, local_trace.refine_checks);
  EXPECT_EQ(remote_trace.refine_survivors, local_trace.refine_survivors);
  EXPECT_EQ(remote_trace.rows_examined, local_trace.rows_examined);
  EXPECT_EQ(remote_trace.rows_returned, local_trace.rows_returned);
  EXPECT_GT(remote_trace.total_s, 0.0);
}

TEST_F(NetTest, RowsExaminedCrossesTheWire) {
  const tigergen::TigerDataset dataset = SmallDataset();

  auto local = client::Connection::Open("jackpine:pine-rtree");
  ASSERT_TRUE(local.ok());
  ASSERT_TRUE(core::LoadDataset(dataset, &*local).ok());

  auto server = StartServer("pine-rtree");
  ASSERT_TRUE(core::LoadDataset(dataset, &server->connection()).ok());
  auto remote = client::Connection::Open(RemoteUrl(*server, "pine-rtree"));
  ASSERT_TRUE(remote.ok()) << remote.status().ToString();

  // A filtering query examines more rows than it returns.
  const std::string sql = "SELECT * FROM pointlm WHERE ST_X(geom) < 10";
  client::Statement local_stmt = local->CreateStatement();
  auto local_rs = local_stmt.ExecuteQuery(sql);
  ASSERT_TRUE(local_rs.ok());
  client::Statement remote_stmt = remote->CreateStatement();
  auto remote_rs = remote_stmt.ExecuteQuery(sql);
  ASSERT_TRUE(remote_rs.ok()) << remote_rs.status().ToString();

  EXPECT_GT(local_rs->RowsExamined(), 0u);
  EXPECT_GT(local_rs->RowsExamined(), local_rs->RowCount());
  EXPECT_EQ(remote_rs->RowsExamined(), local_rs->RowsExamined());
  EXPECT_EQ(remote_rs->RowCount(), local_rs->RowCount());
}

TEST_F(NetTest, QueryServerStatsScrapesGlobalCounters) {
  auto server = StartServer("pine-rtree");
  ASSERT_TRUE(core::LoadDataset(SmallDataset(), &server->connection()).ok());
  auto conn = client::Connection::Open(RemoteUrl(*server, "pine-rtree"));
  ASSERT_TRUE(conn.ok()) << conn.status().ToString();
  client::Statement stmt = conn->CreateStatement();
  for (int i = 0; i < 3; ++i) {
    ASSERT_TRUE(stmt.ExecuteQuery("SELECT COUNT(*) FROM edges").ok());
  }

  auto entries =
      net::QueryServerStats("127.0.0.1", server->port(), net::StatsScope::kGlobal);
  ASSERT_TRUE(entries.ok()) << entries.status().ToString();
  auto value = [&](const std::string& name) -> double {
    for (const auto& [n, v] : *entries) {
      if (n == name) return v;
    }
    ADD_FAILURE() << "missing stats entry " << name;
    return -1.0;
  };
  EXPECT_GE(value("server.queries"), 3.0);
  // The stats connection itself counts as an opened session.
  EXPECT_GE(value("server.sessions_opened"), 2.0);
  EXPECT_GE(value("server.sessions_opened"), value("server.sessions_closed"));
  EXPECT_EQ(value("server.sessions_shed"), 0.0);
  EXPECT_GT(value("engine.rows_scanned") + value("engine.index_probes"), 0.0);
  // Entries arrive sorted by name — the contract `pinedb stats` prints.
  for (size_t i = 1; i < entries->size(); ++i) {
    EXPECT_LE((*entries)[i - 1].first, (*entries)[i].first);
  }
}

TEST_F(NetTest, QueryServerStatsSessionScopeStartsEmpty) {
  auto server = StartServer("pine-rtree");
  // The scrape's own session never ran a query: every counter reads zero.
  auto entries = net::QueryServerStats("127.0.0.1", server->port(),
                                       net::StatsScope::kSession);
  ASSERT_TRUE(entries.ok()) << entries.status().ToString();
  const obs::QueryTrace t = obs::QueryTrace::FromEntries(*entries);
  EXPECT_EQ(t.queries, 0u);
  EXPECT_EQ(t.rows_scanned, 0u);
  EXPECT_EQ(t.total_s, 0.0);
}

// The distributed-tracing acceptance bar: one traced remote query yields
// client spans (process 0) and server spans (process 1) sharing a single
// trace_id, stitched parent->child across the wire, with the server's root
// span offset-corrected into the client's rpc window.
TEST_F(NetTest, TracedRemoteQueryMergesClientAndServerSpans) {
  obs::SpanRecorder& rec = obs::GlobalSpanRecorder();
  rec.Drain();  // discard spans other tests may have left behind
  rec.set_enabled(true);

  auto server = StartServer("pine-rtree");
  // Tracing negotiates in the Hello, so the recorder must already be on
  // when the connection opens.
  auto conn = client::Connection::Open(RemoteUrl(*server, "pine-rtree"));
  ASSERT_TRUE(conn.ok()) << conn.status().ToString();
  client::Statement stmt = conn->CreateStatement();
  ASSERT_TRUE(
      stmt.ExecuteUpdate("CREATE TABLE pts (id BIGINT, geom GEOMETRY)").ok());
  ASSERT_TRUE(stmt.ExecuteUpdate(
                      "INSERT INTO pts VALUES "
                      "(1, ST_GeomFromText('POINT (3 4)'))")
                  .ok());

  ExecLimits limits;
  limits.spans = &rec;
  limits.trace_id = rec.NewTraceId();
  stmt.SetExecLimits(limits);
  ASSERT_TRUE(stmt.ExecuteQuery("SELECT COUNT(*) FROM pts").ok());

  rec.set_enabled(false);
  const std::vector<obs::SpanRecord> spans = rec.Drain();
  auto find = [&](const char* name) -> const obs::SpanRecord* {
    for (const obs::SpanRecord& s : spans) {
      if (s.name == name && s.trace_id == limits.trace_id) return &s;
    }
    return nullptr;
  };
  const obs::SpanRecord* rpc = find("client.rpc");
  const obs::SpanRecord* send = find("client.send");
  const obs::SpanRecord* recv = find("client.recv");
  const obs::SpanRecord* server_root = find("server.query");
  const obs::SpanRecord* server_exec = find("server.exec");
  const obs::SpanRecord* engine_exec = find("engine.exec");
  ASSERT_NE(rpc, nullptr);
  ASSERT_NE(send, nullptr);
  ASSERT_NE(recv, nullptr);
  ASSERT_NE(server_root, nullptr);
  ASSERT_NE(server_exec, nullptr);
  ASSERT_NE(engine_exec, nullptr);

  // Process lanes: client spans local, shipped server spans stamped 1.
  EXPECT_EQ(rpc->process, 0u);
  EXPECT_EQ(send->process, 0u);
  EXPECT_EQ(server_root->process, 1u);
  EXPECT_EQ(server_exec->process, 1u);
  EXPECT_EQ(engine_exec->process, 1u);

  // The tree stitches across the wire: the Query frame carried the rpc
  // span's id, so the server's root span parents under it.
  EXPECT_EQ(send->parent_id, rpc->span_id);
  EXPECT_EQ(recv->parent_id, rpc->span_id);
  EXPECT_EQ(server_root->parent_id, rpc->span_id);
  EXPECT_EQ(server_exec->parent_id, server_root->span_id);
  EXPECT_EQ(engine_exec->parent_id, server_exec->span_id);

  // Offset correction: the Hello-handshake estimate carries up to half the
  // handshake RTT of error, so containment in the rpc window is asserted
  // with a matching tolerance — on loopback well under a millisecond. The
  // nesting *within* the server process is exact (one clock).
  constexpr double kOffsetSlack = 1e-3;
  EXPECT_GE(server_root->start_s, rpc->start_s - kOffsetSlack);
  EXPECT_LE(server_root->end_s, rpc->end_s + kOffsetSlack);
  EXPECT_LE(server_root->start_s, server_exec->start_s);
  EXPECT_GE(server_root->end_s, server_exec->end_s);
}

// Cross-version interop, new client -> old server: a strict pre-span
// decoder rejects the Hello's trailing capability byte, and the client must
// fall back to a traceless handshake instead of failing the connection.
TEST_F(NetTest, TracingClientFallsBackAgainstPreSpanServer) {
  auto listener = net::Listener::Listen("127.0.0.1", 0);
  ASSERT_TRUE(listener.ok()) << listener.status().ToString();
  const uint16_t port = listener->port();

  // A minimal fake server speaking the pre-span handshake: any Hello with
  // bytes after peer_info is a parse error (what an old decoder reports),
  // a clean legacy Hello gets a legacy ack.
  std::thread old_server([&listener] {
    for (int i = 0; i < 2; ++i) {
      auto sock = listener->Accept();
      ASSERT_TRUE(sock.ok()) << sock.status().ToString();
      net::FrameDecoder decoder;
      std::optional<net::Frame> hello;
      char buf[512];
      while (!hello.has_value()) {
        auto n = sock->Recv(buf, sizeof(buf));
        ASSERT_TRUE(n.ok() && *n > 0);
        decoder.Feed(std::string_view(buf, *n));
        auto next = decoder.Next();
        ASSERT_TRUE(next.ok());
        hello = *next;
      }
      ASSERT_EQ(hello->type, net::FrameType::kHello);
      auto msg = net::DecodeHello(hello->payload);
      ASSERT_TRUE(msg.ok());
      if (msg->trace_flags != 0) {
        // Old strict decoder: trailing bytes are a protocol violation.
        ASSERT_TRUE(sock->SendAll(net::EncodeFrame(
                            net::FrameType::kError,
                            net::EncodeError(Status::ParseError(
                                "wire: 8 bytes left after payload"))))
                        .ok());
        continue;
      }
      net::HelloMsg ack;
      ack.sut = msg->sut;
      ack.peer_info = "old-pinedb/1";
      ASSERT_TRUE(sock->SendAll(net::EncodeFrame(net::FrameType::kHello,
                                                 net::EncodeHello(ack)))
                      .ok());
      // Drain until the client hangs up so its Close frame is consumed.
      while (true) {
        auto n = sock->Recv(buf, sizeof(buf));
        if (!n.ok() || *n == 0) break;
      }
      return;
    }
  });

  obs::SpanRecorder& rec = obs::GlobalSpanRecorder();
  rec.Drain();
  rec.set_enabled(true);  // makes the client request tracing in its Hello
  {
    auto conn = client::Connection::Open(
        "jackpine:tcp://127.0.0.1:" + std::to_string(port) + "/pine-rtree");
    EXPECT_TRUE(conn.ok()) << conn.status().ToString();
  }
  rec.set_enabled(false);
  // The fallback leaves its breadcrumb on the connect span.
  bool saw_fallback = false;
  for (const obs::SpanRecord& s : rec.Drain()) {
    if (s.name != "client.connect") continue;
    for (const auto& [key, value] : s.annotations) {
      saw_fallback |= (key == "trace_fallback" && value == "1");
    }
  }
  EXPECT_TRUE(saw_fallback);
  old_server.join();
}

// The health-probe round trip against a live server: PingEndpoint dials,
// handshakes, sends a Ping, and reads back the echo with the server's
// clock in the trailing field.
TEST_F(NetTest, PingEndpointProbesALiveServer) {
  auto server = StartServer("pine-rtree");
  auto probe =
      net::PingEndpoint("127.0.0.1", server->port(), /*timeout_s=*/5.0);
  ASSERT_TRUE(probe.ok()) << probe.status().ToString();
  EXPECT_FALSE(probe->legacy);
  EXPECT_GE(probe->rtt_s, 0.0);
  EXPECT_LT(probe->rtt_s, 5.0);
  EXPECT_EQ(server->counters().pings, 1u);
  // A dead endpoint is an error, not a legacy success: grab an ephemeral
  // port by closing a listener, then probe the freed port.
  uint16_t dead_port;
  {
    auto listener = net::Listener::Listen("127.0.0.1", 0);
    ASSERT_TRUE(listener.ok());
    dead_port = listener->port();
  }
  EXPECT_FALSE(net::PingEndpoint("127.0.0.1", dead_port, 1.0).ok());
}

// Cross-version interop for the probe: a pre-Ping server answers the
// unknown frame type with an error, and PingEndpoint must report that
// endpoint as up-but-legacy rather than down — an old fleet member is
// still a valid failover target even though it cannot be latency-profiled.
TEST_F(NetTest, PingEndpointTreatsPrePingServerAsLegacyUp) {
  auto listener = net::Listener::Listen("127.0.0.1", 0);
  ASSERT_TRUE(listener.ok()) << listener.status().ToString();
  const uint16_t port = listener->port();

  // Fake old server: a normal Hello ack, then every later frame — it does
  // not know type 8 — is rejected the way the old decoder would, as a
  // parse error on the unknown frame type.
  std::thread old_server([&listener] {
    auto sock = listener->Accept();
    ASSERT_TRUE(sock.ok()) << sock.status().ToString();
    net::FrameDecoder decoder;
    char buf[512];
    bool greeted = false;
    while (true) {
      auto n = sock->Recv(buf, sizeof(buf));
      if (!n.ok() || *n == 0) return;
      decoder.Feed(std::string_view(buf, *n));
      while (true) {
        auto next = decoder.Next();
        if (!next.ok()) {
          // The mutant frame type already tripped this decoder; answer as
          // the old server's session loop would and hang up.
          ASSERT_TRUE(sock->SendAll(net::EncodeFrame(
                              net::FrameType::kError,
                              net::EncodeError(Status::ParseError(
                                  "wire: unknown frame type 8"))))
                          .ok());
          return;
        }
        if (!next->has_value()) break;
        if ((*next)->type == net::FrameType::kHello && !greeted) {
          greeted = true;
          auto msg = net::DecodeHello((*next)->payload);
          ASSERT_TRUE(msg.ok());
          net::HelloMsg ack;
          ack.sut = msg->sut;
          ack.peer_info = "old-pinedb/1";
          ASSERT_TRUE(sock->SendAll(net::EncodeFrame(net::FrameType::kHello,
                                                     net::EncodeHello(ack)))
                          .ok());
          continue;
        }
        // Any post-handshake frame from a new client (the Ping) gets the
        // old server's unexpected-frame rejection.
        ASSERT_TRUE(sock->SendAll(net::EncodeFrame(
                            net::FrameType::kError,
                            net::EncodeError(Status::InvalidArgument(
                                "protocol: unexpected frame type 8 "
                                "mid-session"))))
                        .ok());
        return;
      }
    }
  });

  auto probe = net::PingEndpoint("127.0.0.1", port, /*timeout_s=*/5.0);
  old_server.join();
  ASSERT_TRUE(probe.ok()) << probe.status().ToString();
  EXPECT_TRUE(probe->legacy);
  EXPECT_GE(probe->rtt_s, 0.0);
}

// ----------------------------------------------------------- result cache --

TEST_F(NetTest, RepeatedSelectsHitTheResultCache) {
  auto server = StartServer("pine-rtree");
  ASSERT_NE(server->query_cache(), nullptr);
  ASSERT_TRUE(core::LoadDataset(SmallDataset(), &server->connection()).ok());
  auto conn = client::Connection::Open(RemoteUrl(*server, "pine-rtree"));
  ASSERT_TRUE(conn.ok()) << conn.status().ToString();
  client::Statement stmt = conn->CreateStatement();

  const std::string sql = "SELECT COUNT(*) FROM edges";
  auto first = stmt.ExecuteQuery(sql);
  ASSERT_TRUE(first.ok()) << first.status().ToString();
  const uint64_t checksum = first->Checksum();
  // Spelling variants of the same SELECT land on the same entry.
  auto second = stmt.ExecuteQuery("select COUNT(*)  from EDGES -- again");
  ASSERT_TRUE(second.ok()) << second.status().ToString();
  EXPECT_EQ(second->Checksum(), checksum);

  const cache::CacheStats stats = server->query_cache()->stats();
  EXPECT_EQ(stats.misses, 1u);
  EXPECT_EQ(stats.admissions, 1u);
  EXPECT_EQ(stats.hits, 1u);
  EXPECT_GT(stats.bytes, 0u);
}

TEST_F(NetTest, CacheOffServerServesIdenticalResults) {
  net::ServerOptions options;
  options.sut = "pine-rtree";
  options.cache_off = true;
  auto off = net::Server::Start(options);
  ASSERT_TRUE(off.ok()) << off.status().ToString();
  EXPECT_EQ((*off)->query_cache(), nullptr);
  ASSERT_TRUE(core::LoadDataset(SmallDataset(), &(*off)->connection()).ok());

  auto on = StartServer("pine-rtree");
  ASSERT_TRUE(core::LoadDataset(SmallDataset(), &on->connection()).ok());

  auto conn_off = client::Connection::Open(RemoteUrl(**off, "pine-rtree"));
  auto conn_on = client::Connection::Open(RemoteUrl(*on, "pine-rtree"));
  ASSERT_TRUE(conn_off.ok());
  ASSERT_TRUE(conn_on.ok());
  client::Statement stmt_off = conn_off->CreateStatement();
  client::Statement stmt_on = conn_on->CreateStatement();
  const char* queries[] = {
      "SELECT COUNT(*) FROM edges",
      "SELECT plid FROM pointlm ORDER BY plid",
      "SELECT COUNT(*) FROM edges a, arealm b "
      "WHERE ST_Intersects(a.geom, b.geom)",
  };
  for (const char* sql : queries) {
    // Twice each, so the cache-on server serves the repeat from cache; the
    // cached reply must be byte-identical to the engine execution.
    for (int rep = 0; rep < 2; ++rep) {
      auto rs_off = stmt_off.ExecuteQuery(sql);
      auto rs_on = stmt_on.ExecuteQuery(sql);
      ASSERT_TRUE(rs_off.ok()) << sql;
      ASSERT_TRUE(rs_on.ok()) << sql;
      EXPECT_EQ(rs_on->Checksum(), rs_off->Checksum()) << sql;
      EXPECT_EQ(rs_on->RowCount(), rs_off->RowCount()) << sql;
    }
  }
  EXPECT_GT(on->query_cache()->stats().hits, 0u);
}

// Regression: EXPLAIN ANALYZE must re-run the engine even when the analyzed
// SELECT is cache-hot — per-operator actuals served from a cache would all
// read zero.
TEST_F(NetTest, ExplainAnalyzeStaysTruthfulOnACacheHotQuery) {
  auto server = StartServer("pine-rtree");
  ASSERT_TRUE(core::LoadDataset(SmallDataset(), &server->connection()).ok());
  auto conn = client::Connection::Open(RemoteUrl(*server, "pine-rtree"));
  ASSERT_TRUE(conn.ok()) << conn.status().ToString();
  client::Statement stmt = conn->CreateStatement();

  const std::string sql = "SELECT * FROM edges WHERE ST_X(ST_StartPoint(geom)) < 100";
  for (int i = 0; i < 3; ++i) {
    ASSERT_TRUE(stmt.ExecuteQuery(sql).ok());
  }
  ASSERT_GT(server->query_cache()->stats().hits, 0u);

  auto rs = stmt.ExecuteQuery("EXPLAIN ANALYZE " + sql);
  ASSERT_TRUE(rs.ok()) << rs.status().ToString();
  std::string plan;
  while (rs->Next()) plan += rs->GetString(0).value_or("") + "\n";
  EXPECT_NE(plan.find("actual:"), std::string::npos) << plan;
  EXPECT_NE(plan.find("Rows: examined="), std::string::npos) << plan;
  EXPECT_EQ(plan.find("Rows: examined=0"), std::string::npos) << plan;
}

// A session that negotiated span tracing bypasses the cache: its spans and
// stage timings must describe executions that really happened.
TEST_F(NetTest, SpanTracedSessionsBypassTheCache) {
  obs::SpanRecorder& rec = obs::GlobalSpanRecorder();
  rec.Drain();
  rec.set_enabled(true);

  auto server = StartServer("pine-rtree");
  ASSERT_TRUE(core::LoadDataset(SmallDataset(), &server->connection()).ok());
  auto conn = client::Connection::Open(RemoteUrl(*server, "pine-rtree"));
  ASSERT_TRUE(conn.ok()) << conn.status().ToString();
  client::Statement stmt = conn->CreateStatement();
  for (int i = 0; i < 3; ++i) {
    ASSERT_TRUE(stmt.ExecuteQuery("SELECT COUNT(*) FROM edges").ok());
  }
  rec.set_enabled(false);
  rec.Drain();

  const cache::CacheStats stats = server->query_cache()->stats();
  EXPECT_EQ(stats.hits, 0u);
  EXPECT_EQ(stats.admissions, 0u);
  EXPECT_GE(stats.bypass, 3u);
}

// A session whose client folds server-side traces (Statement::SetTrace
// fetches session stats after each query) becomes bypass after the first
// fetch, so per-query counters keep describing real executions.
TEST_F(NetTest, TraceFetchingSessionsLatchToBypass) {
  auto server = StartServer("pine-rtree");
  ASSERT_TRUE(core::LoadDataset(SmallDataset(), &server->connection()).ok());
  auto conn = client::Connection::Open(RemoteUrl(*server, "pine-rtree"));
  ASSERT_TRUE(conn.ok()) << conn.status().ToString();

  const std::string sql = "SELECT COUNT(*) FROM pointlm";
  client::Statement stmt = conn->CreateStatement();
  obs::QueryTrace t1, t2;
  stmt.SetTrace(&t1);
  ASSERT_TRUE(stmt.ExecuteQuery(sql).ok());  // miss; stats fetch latches
  stmt.SetTrace(&t2);
  ASSERT_TRUE(stmt.ExecuteQuery(sql).ok());  // bypassed, engine re-runs
  EXPECT_GT(t1.rows_examined, 0u);
  EXPECT_EQ(t2.rows_examined, t1.rows_examined);

  const cache::CacheStats stats = server->query_cache()->stats();
  EXPECT_EQ(stats.hits, 0u);
  EXPECT_GE(stats.bypass, 1u);
}

TEST_F(NetTest, DmlInvalidatesCachedEntriesOverTheWire) {
  auto server = StartServer("pine-rtree");
  auto conn = client::Connection::Open(RemoteUrl(*server, "pine-rtree"));
  ASSERT_TRUE(conn.ok()) << conn.status().ToString();
  client::Statement stmt = conn->CreateStatement();
  ASSERT_TRUE(
      stmt.ExecuteUpdate("CREATE TABLE pts (id BIGINT, geom GEOMETRY)").ok());
  ASSERT_TRUE(
      stmt.ExecuteUpdate("INSERT INTO pts VALUES (1, ST_MakePoint(1, 1))")
          .ok());

  const std::string sql = "SELECT COUNT(*) FROM pts";
  auto rs = stmt.ExecuteQuery(sql);
  ASSERT_TRUE(rs.ok());
  ASSERT_TRUE(rs->Next());
  EXPECT_EQ(rs->GetInt64(0).value(), 1);
  ASSERT_TRUE(stmt.ExecuteQuery(sql).ok());  // cache the one-row answer
  ASSERT_GE(server->query_cache()->stats().admissions, 1u);

  ASSERT_TRUE(
      stmt.ExecuteUpdate("INSERT INTO pts VALUES (2, ST_MakePoint(2, 2))")
          .ok());
  auto fresh = stmt.ExecuteQuery(sql);
  ASSERT_TRUE(fresh.ok());
  ASSERT_TRUE(fresh->Next());
  EXPECT_EQ(fresh->GetInt64(0).value(), 2);
  EXPECT_GE(server->query_cache()->stats().invalidations, 1u);
}

// The coalescing invariant: N sessions racing the same cold query produce
// exactly one admission, and every session that did not execute was served
// a hit or the leader's shared entry. Deterministic regardless of timing —
// threads that overlap the flight coalesce, threads that arrive later hit.
TEST_F(NetTest, ColdConcurrentQueriesCoalesceToOneExecution) {
  auto server = StartServer("pine-rtree");
  ASSERT_TRUE(core::LoadDataset(SmallDataset(), &server->connection()).ok());

  constexpr int kThreads = 8;
  const std::string sql =
      "SELECT COUNT(*) FROM edges a, arealm b "
      "WHERE ST_Intersects(a.geom, b.geom)";
  std::vector<uint64_t> checksums(kThreads, 0);
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      auto conn = client::Connection::Open(RemoteUrl(*server, "pine-rtree"));
      ASSERT_TRUE(conn.ok()) << conn.status().ToString();
      client::Statement stmt = conn->CreateStatement();
      auto rs = stmt.ExecuteQuery(sql);
      ASSERT_TRUE(rs.ok()) << rs.status().ToString();
      checksums[t] = rs->Checksum();
    });
  }
  for (std::thread& t : threads) t.join();
  for (int t = 1; t < kThreads; ++t) EXPECT_EQ(checksums[t], checksums[0]);

  const cache::CacheStats stats = server->query_cache()->stats();
  EXPECT_EQ(stats.admissions, 1u);
  EXPECT_EQ(stats.hits + stats.coalesced, static_cast<uint64_t>(kThreads - 1));
}

// --- Query intelligence plane over the wire ------------------------------

// Two spellings of one statement land in one /statements row; an errored
// query lands in its own row with the status code tallied. The scrape rides
// the Stats frame with scope kStatements (protocol rev 3).
TEST_F(NetTest, StatementsScopeAggregatesByFingerprintOverTheWire) {
  auto server = StartServer("pine-rtree");
  auto conn = client::Connection::Open(RemoteUrl(*server, "pine-rtree"));
  ASSERT_TRUE(conn.ok()) << conn.status().ToString();
  client::Statement stmt = conn->CreateStatement();
  ASSERT_TRUE(stmt.ExecuteUpdate("CREATE TABLE t (x BIGINT)").ok());
  ASSERT_TRUE(stmt.ExecuteQuery("SELECT COUNT(*) FROM t").ok());
  ASSERT_TRUE(
      stmt.ExecuteQuery("select   count(*)\nfrom T -- same statement").ok());
  ASSERT_FALSE(stmt.ExecuteQuery("SELECT * FROM missing_table").ok());

  auto json = net::QueryServerStatsJson("127.0.0.1", server->port(),
                                        net::StatsScope::kStatements);
  ASSERT_TRUE(json.ok()) << json.status().ToString();
  auto doc = obs::Json::Parse(*json);
  ASSERT_TRUE(doc.ok()) << *json;
  // CREATE TABLE + 3 queries, every one recorded exactly once.
  EXPECT_EQ(doc->Get("recorded").number_value(), 4.0);

  const obs::Json& rows = doc->Get("statements");
  double count_calls = -1.0, missing_errors = -1.0;
  for (size_t i = 0; i < rows.size(); ++i) {
    const obs::Json& row = rows.at(i);
    const std::string& fp = row.Get("fingerprint").string_value();
    if (fp == "select count ( * ) from t") {
      count_calls = row.Get("calls").number_value();
      EXPECT_EQ(row.Get("errors").number_value(), 0.0);
    } else if (fp == "select * from missing_table") {
      missing_errors = row.Get("errors").number_value();
    }
  }
  EXPECT_EQ(count_calls, 2.0);  // both spellings, one fingerprint
  EXPECT_EQ(missing_errors, 1.0);
}

// Chaos-injected server latency crosses the slow threshold, so the flight
// recorder must capture those queries — with the injected delay charged to
// wait_s.chaos_delay, not to execution — and every errored query besides.
// The chaos stream is seeded, so the capture is deterministic.
TEST_F(NetTest, FlightRecorderCapturesChaosDelayedQueriesOverSlowMs) {
  net::ServerOptions options;
  options.sut = "pine-rtree";
  options.port = 0;
  options.chaos.seed = 11;
  options.chaos.latency_ms = 60.0;  // uniform seeded draws per query
  options.slow_ms = 1.0;            // far below the injected delays
  auto server_or = net::Server::Start(options);
  ASSERT_TRUE(server_or.ok()) << server_or.status().ToString();
  auto& server = *server_or;

  auto conn = client::Connection::Open(RemoteUrl(*server, "pine-rtree"));
  ASSERT_TRUE(conn.ok()) << conn.status().ToString();
  client::Statement stmt = conn->CreateStatement();
  // Updates are never chaos-injected and finish in microseconds: not slow.
  ASSERT_TRUE(stmt.ExecuteUpdate("CREATE TABLE t (x BIGINT)").ok());
  for (int i = 0; i < 3; ++i) {
    ASSERT_TRUE(stmt.ExecuteQuery("SELECT COUNT(*) FROM t").ok());
  }
  ASSERT_FALSE(stmt.ExecuteQuery("SELECT * FROM missing_table").ok());

  EXPECT_GE(server->flight_recorder().captured_slow(), 1u);
  EXPECT_GE(server->flight_recorder().captured_errors(), 1u);

  auto json = net::QueryServerStatsJson("127.0.0.1", server->port(),
                                        net::StatsScope::kSlow);
  ASSERT_TRUE(json.ok()) << json.status().ToString();
  auto doc = obs::Json::Parse(*json);
  ASSERT_TRUE(doc.ok()) << *json;
  EXPECT_NEAR(doc->Get("slow_threshold_s").number_value(), 0.001, 1e-9);

  const obs::Json& entries = doc->Get("entries");
  ASSERT_GE(entries.size(), 2u);
  size_t slow_ok = 0, errored = 0;
  for (size_t i = 0; i < entries.size(); ++i) {
    const obs::Json& e = entries.at(i);
    const obs::Json& wait = e.Get("wait_s");
    if (e.Get("status").string_value() == "OK") {
      ++slow_ok;
      EXPECT_EQ(e.Get("fingerprint").string_value(),
                "select count ( * ) from t");
      // The injected delay is what made it slow, and it is charged to the
      // chaos bucket inside a total that spans decode -> reply-sent.
      EXPECT_GT(wait.Get("chaos_delay").number_value(), 0.001);
      EXPECT_GE(wait.Get("total").number_value(),
                wait.Get("chaos_delay").number_value());
    } else {
      ++errored;
      EXPECT_EQ(e.Get("fingerprint").string_value(),
                "select * from missing_table");
      EXPECT_FALSE(e.Get("error").string_value().empty());
    }
  }
  EXPECT_GE(slow_ok, 1u);
  EXPECT_EQ(errored, 1u);
}

// The /metrics exposition a pinedb binary serves is the composition of the
// typed registry rendering with the Stats-frame entries that have no
// registry backing (matched by name so racing values cannot duplicate a
// family). Reproduce that composition here and require it to be consistent
// with a wire Stats(kGlobal) snapshot: every entry surfaces exactly once.
TEST_F(NetTest, MetricsCompositionCoversStatsFrameWithoutDuplicates) {
  auto server = StartServer("pine-rtree");
  auto conn = client::Connection::Open(RemoteUrl(*server, "pine-rtree"));
  ASSERT_TRUE(conn.ok()) << conn.status().ToString();
  client::Statement stmt = conn->CreateStatement();
  ASSERT_TRUE(stmt.ExecuteUpdate("CREATE TABLE t (x BIGINT)").ok());
  ASSERT_TRUE(stmt.ExecuteQuery("SELECT COUNT(*) FROM t").ok());

  auto entries = net::QueryServerStats("127.0.0.1", server->port(),
                                       net::StatsScope::kGlobal);
  ASSERT_TRUE(entries.ok()) << entries.status().ToString();

  // The same composition pinedb's /metrics handler performs.
  std::vector<std::string> registry_names;
  for (const auto& [name, value] : obs::GlobalRegistry().Snapshot()) {
    registry_names.push_back(name);
  }
  std::sort(registry_names.begin(), registry_names.end());
  std::vector<std::pair<std::string, double>> extra;
  for (const auto& entry : *entries) {
    if (!std::binary_search(registry_names.begin(), registry_names.end(),
                            entry.first)) {
      extra.push_back(entry);
    }
  }
  std::string exposition = obs::RenderPromPreamble();
  exposition +=
      obs::GlobalRegistry().RenderProm("jackpine_", /*build_info=*/false);
  exposition += obs::RenderPromEntries(extra, "jackpine_",
                                       /*build_info=*/false);

  // Every non-registry Stats-frame entry appears under its sanitized name.
  // Registry-backed entries surface with full typing instead (a histogram's
  // flattened .p95_s wire entry becomes _bucket/_sum/_count series), so for
  // those assert the typed family is present.
  for (const auto& [name, value] : extra) {
    EXPECT_NE(exposition.find(obs::PromName(name, "jackpine_")),
              std::string::npos)
        << name;
  }
  EXPECT_NE(
      exposition.find("# TYPE jackpine_engine_query_latency_s histogram"),
      std::string::npos);
  std::set<std::string> families;
  std::istringstream in(exposition);
  std::string line;
  while (std::getline(in, line)) {
    if (line.rfind("# TYPE ", 0) != 0) continue;
    const std::string family = line.substr(7, line.find(' ', 7) - 7);
    EXPECT_TRUE(families.insert(family).second)
        << "duplicate family: " << family;
  }
  // Spot-check a value that cannot move between the scrape and the render:
  // no queries run in between, so the typed counter agrees exactly.
  double wire_queries = -1.0;
  for (const auto& [name, value] : *entries) {
    if (name == "server.queries") wire_queries = value;
  }
  ASSERT_GE(wire_queries, 1.0);
  EXPECT_NE(exposition.find(
                StrFormat("jackpine_server_queries %.9g\n", wire_queries)),
            std::string::npos)
      << exposition;
}

}  // namespace
}  // namespace jackpine
