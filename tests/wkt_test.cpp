// WKT reader/writer tests, including round-trip properties.

#include <gtest/gtest.h>

#include "common/random.h"
#include "geom/wkt_reader.h"
#include "geom/wkt_writer.h"

namespace jackpine::geom {
namespace {

Geometry Parse(const std::string& wkt) {
  auto r = GeometryFromWkt(wkt);
  EXPECT_TRUE(r.ok()) << wkt << " -> " << r.status().ToString();
  return r.ok() ? std::move(r).value() : Geometry();
}

TEST(WktReaderTest, Point) {
  Geometry g = Parse("POINT (3 4)");
  EXPECT_EQ(g.type(), GeometryType::kPoint);
  EXPECT_EQ(g.AsPoint(), (Coord{3, 4}));
}

TEST(WktReaderTest, PointWithNegativesAndExponents) {
  Geometry g = Parse("point(-1.5e2 +0.25)");
  EXPECT_EQ(g.AsPoint(), (Coord{-150, 0.25}));
}

TEST(WktReaderTest, EmptyForms) {
  EXPECT_TRUE(Parse("POINT EMPTY").IsEmpty());
  EXPECT_TRUE(Parse("LINESTRING EMPTY").IsEmpty());
  EXPECT_TRUE(Parse("POLYGON EMPTY").IsEmpty());
  EXPECT_TRUE(Parse("MULTIPOLYGON EMPTY").IsEmpty());
  EXPECT_TRUE(Parse("GEOMETRYCOLLECTION EMPTY").IsEmpty());
  EXPECT_EQ(Parse("POINT EMPTY").type(), GeometryType::kPoint);
}

TEST(WktReaderTest, LineString) {
  Geometry g = Parse("LINESTRING (0 0, 1 1, 2 0)");
  EXPECT_EQ(g.AsLineString().size(), 3u);
}

TEST(WktReaderTest, PolygonWithHole) {
  Geometry g = Parse(
      "POLYGON ((0 0, 10 0, 10 10, 0 10, 0 0), (2 2, 4 2, 4 4, 2 4, 2 2))");
  EXPECT_EQ(g.AsPolygon().holes.size(), 1u);
}

TEST(WktReaderTest, MultiPointBothSpellings) {
  Geometry a = Parse("MULTIPOINT ((1 2), (3 4))");
  Geometry b = Parse("MULTIPOINT (1 2, 3 4)");
  EXPECT_TRUE(a.ExactlyEquals(b));
}

TEST(WktReaderTest, MultiLineString) {
  Geometry g = Parse("MULTILINESTRING ((0 0, 1 1), (2 2, 3 3, 4 4))");
  EXPECT_EQ(g.Parts().size(), 2u);
  EXPECT_EQ(g.NumPoints(), 5u);
}

TEST(WktReaderTest, MultiPolygon) {
  Geometry g = Parse(
      "MULTIPOLYGON (((0 0, 1 0, 1 1, 0 1, 0 0)), "
      "((5 5, 6 5, 6 6, 5 6, 5 5)))");
  EXPECT_EQ(g.Parts().size(), 2u);
  EXPECT_EQ(g.Dimension(), 2);
}

TEST(WktReaderTest, GeometryCollection) {
  Geometry g = Parse(
      "GEOMETRYCOLLECTION (POINT (1 2), LINESTRING (0 0, 1 1))");
  EXPECT_EQ(g.Parts().size(), 2u);
}

TEST(WktReaderTest, RejectsGarbage) {
  EXPECT_FALSE(GeometryFromWkt("").ok());
  EXPECT_FALSE(GeometryFromWkt("CIRCLE (0 0, 5)").ok());
  EXPECT_FALSE(GeometryFromWkt("POINT (1)").ok());
  EXPECT_FALSE(GeometryFromWkt("POINT (1 2").ok());
  EXPECT_FALSE(GeometryFromWkt("POINT (1 2) extra").ok());
  EXPECT_FALSE(GeometryFromWkt("LINESTRING (0 0)").ok());
  EXPECT_FALSE(GeometryFromWkt("POLYGON ((0 0, 1 1))").ok());
}

TEST(WktWriterTest, WritesCanonicalForms) {
  EXPECT_EQ(Geometry::MakePoint(1, 2).ToWkt(), "POINT (1 2)");
  EXPECT_EQ(Geometry::MakeEmpty(GeometryType::kPolygon).ToWkt(),
            "POLYGON EMPTY");
  EXPECT_EQ(Parse("LINESTRING (0 0, 1.5 2)").ToWkt(),
            "LINESTRING (0 0, 1.5 2)");
}

TEST(WktWriterTest, PrecisionControl) {
  WktWriter coarse(3);
  EXPECT_EQ(coarse.Write(Geometry::MakePoint(1.23456, 2)), "POINT (1.23 2)");
}

// --- Round-trip property sweep --------------------------------------------

struct RoundTripCase {
  const char* wkt;
};

class WktRoundTrip : public ::testing::TestWithParam<RoundTripCase> {};

TEST_P(WktRoundTrip, ParseWriteParseIsStable) {
  Geometry g1 = Parse(GetParam().wkt);
  const std::string w1 = g1.ToWkt();
  Geometry g2 = Parse(w1);
  EXPECT_TRUE(g1.ExactlyEquals(g2)) << w1;
  EXPECT_EQ(w1, g2.ToWkt());
}

INSTANTIATE_TEST_SUITE_P(
    Corpus, WktRoundTrip,
    ::testing::Values(
        RoundTripCase{"POINT (1 2)"}, RoundTripCase{"POINT EMPTY"},
        RoundTripCase{"POINT (-1.25 3.5e3)"},
        RoundTripCase{"LINESTRING (0 0, 1 1, 2 0, 3 9.75)"},
        RoundTripCase{"POLYGON ((0 0, 10 0, 10 10, 0 10, 0 0))"},
        RoundTripCase{
            "POLYGON ((0 0, 10 0, 10 10, 0 10, 0 0), "
            "(2 2, 2 4, 4 4, 4 2, 2 2))"},
        RoundTripCase{"MULTIPOINT ((1 2), (3 4), (5 6))"},
        RoundTripCase{"MULTILINESTRING ((0 0, 1 1), (2 2, 3 3))"},
        RoundTripCase{
            "MULTIPOLYGON (((0 0, 1 0, 1 1, 0 1, 0 0)), "
            "((5 5, 6 5, 6 6, 5 6, 5 5)))"},
        RoundTripCase{
            "GEOMETRYCOLLECTION (POINT (1 2), LINESTRING (0 0, 1 1), "
            "POLYGON ((0 0, 2 0, 2 2, 0 2, 0 0)))"}));

// Randomised round trips: random geometries survive WKT serialisation.
TEST(WktRoundTripRandom, RandomLineStrings) {
  jackpine::Rng rng(2024);
  for (int iter = 0; iter < 50; ++iter) {
    std::vector<Coord> pts;
    const int n = static_cast<int>(rng.NextInt(2, 20));
    for (int i = 0; i < n; ++i) {
      pts.push_back({rng.NextDouble(-1e3, 1e3), rng.NextDouble(-1e3, 1e3)});
    }
    auto line = Geometry::MakeLineString(pts);
    ASSERT_TRUE(line.ok());
    Geometry again = Parse(line->ToWkt());
    EXPECT_TRUE(line->ExactlyEquals(again));
  }
}

}  // namespace
}  // namespace jackpine::geom
