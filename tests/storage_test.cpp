// jackpine::storage: CRC vectors, record/snapshot codecs under hostile
// input (bit-flip and truncation sweeps, the same discipline as
// wire_test.cpp), the WAL torn-tail policy, fault-injected append/fsync/read
// failures through FaultVfs, and full StorageManager recovery round-trips.
// The sweeps run under the sanitizer jobs in CI, so every decoder is also a
// memory-safety sweep.

#include <atomic>
#include <cstdint>
#include <filesystem>
#include <string>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "client/client.h"
#include "engine/database.h"
#include "geom/wkt_reader.h"
#include "storage/crc32c.h"
#include "storage/record.h"
#include "storage/storage.h"
#include "storage/vfs.h"
#include "storage/wal.h"

namespace jackpine::storage {
namespace {

namespace fs = std::filesystem;

// Fresh temp directory per test; removed on teardown.
class StorageTest : public ::testing::Test {
 protected:
  void SetUp() override {
    dir_ = (fs::temp_directory_path() /
            ("jackpine_storage_" +
             std::to_string(::testing::UnitTest::GetInstance()
                                ->random_seed()) +
             "_" + ::testing::UnitTest::GetInstance()
                       ->current_test_info()
                       ->name()))
               .string();
    fs::remove_all(dir_);
  }
  void TearDown() override { fs::remove_all(dir_); }

  std::string dir_;
};

engine::Value GeoValue(const char* wkt) {
  auto g = geom::GeometryFromWkt(wkt);
  EXPECT_TRUE(g.ok()) << g.status().ToString();
  return engine::Value::Geo(*std::move(g));
}

engine::Schema PointSchema() {
  return engine::Schema({engine::Column{"id", engine::DataType::kInt64},
                         engine::Column{"g", engine::DataType::kGeometry}});
}

WalRecord SampleInsert(uint64_t lsn) {
  WalRecord r;
  r.kind = WalRecordKind::kInsert;
  r.lsn = lsn;
  r.table = "pts";
  r.rows.push_back({engine::Value::Int(1), GeoValue("POINT(1 2)")});
  r.rows.push_back(
      {engine::Value::Int(2), GeoValue("LINESTRING(0 0, 3 4, 5 5)")});
  return r;
}

// --- CRC32C -----------------------------------------------------------

TEST(Crc32cTest, KnownVectors) {
  // The canonical Castagnoli check value.
  EXPECT_EQ(Crc32c("123456789"), 0xE3069283u);
  EXPECT_EQ(Crc32c(""), 0u);
  // 32 zero bytes, per RFC 3720 appendix B.4.
  EXPECT_EQ(Crc32c(std::string(32, '\0')), 0x8A9136AAu);
}

TEST(Crc32cTest, ExtendMatchesOneShot) {
  const std::string data = "the quick brown fox jumps over the lazy dog";
  for (size_t split = 0; split <= data.size(); ++split) {
    const uint32_t crc = Crc32cExtend(Crc32c(data.substr(0, split)),
                                      data.substr(split));
    EXPECT_EQ(crc, Crc32c(data)) << "split at " << split;
  }
}

TEST(Crc32cTest, MaskRoundTripsAndDiffers) {
  for (uint32_t crc : {0u, 1u, 0xE3069283u, 0xFFFFFFFFu, 0xDEADBEEFu}) {
    EXPECT_EQ(UnmaskCrc(MaskCrc(crc)), crc);
    EXPECT_NE(MaskCrc(crc), crc);
  }
}

// --- WAL record codec -------------------------------------------------

TEST(WalRecordTest, RoundTripsEveryKind) {
  std::vector<WalRecord> records;
  {
    WalRecord r;
    r.kind = WalRecordKind::kCreateTable;
    r.lsn = 1;
    r.table = "pts";
    r.schema = PointSchema();
    records.push_back(r);
  }
  records.push_back(SampleInsert(2));
  {
    WalRecord r;
    r.kind = WalRecordKind::kUpdate;
    r.lsn = 3;
    r.table = "pts";
    r.row_index = 1;
    r.rows.push_back({engine::Value::Int(7), GeoValue("POINT(9 9)")});
    records.push_back(r);
  }
  {
    WalRecord r;
    r.kind = WalRecordKind::kDelete;
    r.lsn = 4;
    r.table = "pts";
    r.row_index = 0;
    records.push_back(r);
  }
  {
    WalRecord r;
    r.kind = WalRecordKind::kCreateIndex;
    r.lsn = 5;
    r.table = "pts";
    r.column = 1;
    records.push_back(r);
  }
  {
    WalRecord r;
    r.kind = WalRecordKind::kDropIndex;
    r.lsn = 6;
    r.table = "pts";
    r.column = 1;
    records.push_back(r);
  }
  {
    WalRecord r;
    r.kind = WalRecordKind::kCheckpoint;
    r.lsn = 7;
    records.push_back(r);
  }

  for (const WalRecord& original : records) {
    const std::string payload = EncodeWalRecord(original);
    auto decoded = DecodeWalRecord(payload);
    ASSERT_TRUE(decoded.ok())
        << WalRecordKindName(original.kind) << ": "
        << decoded.status().ToString();
    EXPECT_EQ(decoded->kind, original.kind);
    EXPECT_EQ(decoded->lsn, original.lsn);
    EXPECT_EQ(decoded->table, original.table);
    EXPECT_EQ(decoded->row_index, original.row_index);
    EXPECT_EQ(decoded->column, original.column);
    // Byte-identical re-encoding is the strongest cheap equality: it covers
    // schema, rows and geometry WKB without a Value comparator.
    EXPECT_EQ(EncodeWalRecord(*decoded), payload)
        << WalRecordKindName(original.kind);
  }
}

TEST(WalRecordTest, DecoderRejectsTrailingBytes) {
  std::string payload = EncodeWalRecord(SampleInsert(1));
  payload.push_back('\0');
  auto decoded = DecodeWalRecord(payload);
  ASSERT_FALSE(decoded.ok());
  EXPECT_EQ(decoded.status().code(), StatusCode::kDataLoss);
}

TEST(WalRecordTest, TruncatedPayloadsFailCleanlyAtEveryLength) {
  const std::string payload = EncodeWalRecord(SampleInsert(1));
  for (size_t len = 0; len < payload.size(); ++len) {
    auto decoded = DecodeWalRecord(payload.substr(0, len));
    EXPECT_FALSE(decoded.ok()) << "length " << len;
  }
}

TEST(WalRecordTest, BitFlipSweepNeverCrashesDecoder) {
  // Without the CRC frame, a flipped payload may still decode (the frame
  // CRC is what detects it — see WalFileTest below); the decoder's own
  // guarantee is bounded, crash-free behaviour on arbitrary bytes.
  const std::string payload = EncodeWalRecord(SampleInsert(1));
  for (size_t bit = 0; bit < payload.size() * 8; ++bit) {
    std::string mutant = payload;
    mutant[bit / 8] = static_cast<char>(mutant[bit / 8] ^ (1 << (bit % 8)));
    DecodeWalRecord(mutant).status();  // must not crash or hang
  }
}

TEST(WalRecordTest, HostileRowCountDoesNotAllocate) {
  // kInsert with a row count far beyond the payload: the bounded reader
  // must reject before reserving.
  std::string payload;
  payload.push_back(static_cast<char>(WalRecordKind::kInsert));
  payload.append(8, '\0');                  // lsn
  payload.append("\x03\0\0\0pts", 7);       // table
  payload.append("\xff\xff\xff\xff\xff\xff\xff\x7f", 8);  // row count
  auto decoded = DecodeWalRecord(payload);
  ASSERT_FALSE(decoded.ok());
  EXPECT_EQ(decoded.status().code(), StatusCode::kDataLoss);
}

// --- Snapshot codec ---------------------------------------------------

Snapshot SampleSnapshot() {
  Snapshot snapshot;
  snapshot.last_lsn = 42;
  SnapshotTable table;
  table.name = "pts";
  table.schema = PointSchema();
  table.rows.push_back({engine::Value::Int(1), GeoValue("POINT(1 2)")});
  table.rows.push_back(
      {engine::Value::Int(2), GeoValue("POLYGON((0 0,4 0,4 4,0 4,0 0))")});
  table.indexed_columns = {1};
  snapshot.tables.push_back(std::move(table));
  return snapshot;
}

TEST(SnapshotTest, RoundTrips) {
  const Snapshot original = SampleSnapshot();
  const std::string encoded = EncodeSnapshot(original);
  auto decoded = DecodeSnapshot(encoded);
  ASSERT_TRUE(decoded.ok()) << decoded.status().ToString();
  EXPECT_EQ(decoded->last_lsn, original.last_lsn);
  ASSERT_EQ(decoded->tables.size(), 1u);
  EXPECT_EQ(decoded->tables[0].name, "pts");
  EXPECT_EQ(decoded->tables[0].rows.size(), 2u);
  EXPECT_EQ(decoded->tables[0].indexed_columns,
            std::vector<uint32_t>({1}));
  EXPECT_EQ(EncodeSnapshot(*decoded), encoded);
}

TEST(SnapshotTest, BitFlipSweepAlwaysDetected) {
  // Unlike the bare record codec, the snapshot carries its own CRC frame:
  // every single-bit flip anywhere in the file must be *detected*, not
  // merely survived — CRC32C guarantees detection of all 1-bit errors.
  const std::string encoded = EncodeSnapshot(SampleSnapshot());
  for (size_t bit = 0; bit < encoded.size() * 8; ++bit) {
    std::string mutant = encoded;
    mutant[bit / 8] = static_cast<char>(mutant[bit / 8] ^ (1 << (bit % 8)));
    auto decoded = DecodeSnapshot(mutant);
    ASSERT_FALSE(decoded.ok()) << "bit " << bit << " undetected";
    EXPECT_EQ(decoded.status().code(), StatusCode::kDataLoss);
  }
}

TEST(SnapshotTest, TruncationSweepAlwaysDetected) {
  const std::string encoded = EncodeSnapshot(SampleSnapshot());
  for (size_t len = 0; len < encoded.size(); ++len) {
    auto decoded = DecodeSnapshot(encoded.substr(0, len));
    ASSERT_FALSE(decoded.ok()) << "length " << len;
  }
}

// --- WAL file: torn-tail policy ---------------------------------------

// Writes `count` records through a real WalWriter (window 0) and returns
// the resulting file bytes plus the frame boundaries.
struct BuiltWal {
  std::string bytes;
  std::vector<size_t> boundaries;  // file offsets at which a frame ends
};

BuiltWal BuildWalFile(const std::string& path, size_t count) {
  BuiltWal built;
  auto writer = WalWriter::Open(RealVfs(), path, /*window=*/0.0,
                                /*next_lsn=*/1);
  EXPECT_TRUE(writer.ok()) << writer.status().ToString();
  built.boundaries.push_back(kMagicLen);
  for (size_t i = 0; i < count; ++i) {
    auto lsn = (*writer)->Append(SampleInsert(0));
    EXPECT_TRUE(lsn.ok()) << lsn.status().ToString();
    built.boundaries.push_back(static_cast<size_t>((*writer)->bytes()));
  }
  EXPECT_TRUE((*writer)->Close().ok());
  auto bytes = RealVfs()->ReadFile(path);
  EXPECT_TRUE(bytes.ok());
  built.bytes = *std::move(bytes);
  return built;
}

using WalFileTest = StorageTest;

TEST_F(WalFileTest, TornTailTruncationSweepAtEveryByte) {
  ASSERT_TRUE(RealVfs()->CreateDir(dir_).ok());
  const std::string path = JoinPath(dir_, "wal.pinelog");
  const BuiltWal built = BuildWalFile(path, 4);

  // The acceptance sweep from DESIGN.md: for every possible crash offset,
  // recovery yields exactly the committed prefix of records — never a
  // partial record, never an error for a tail-only tear.
  const std::string mutant_path = JoinPath(dir_, "torn.pinelog");
  for (size_t len = 0; len <= built.bytes.size(); ++len) {
    ASSERT_TRUE(RealVfs()->Remove(mutant_path).ok() ||
                !RealVfs()->FileExists(mutant_path));
    {
      auto f = RealVfs()->OpenAppend(mutant_path);
      ASSERT_TRUE(f.ok());
      ASSERT_TRUE((*f)->Append(
          std::string_view(built.bytes).substr(0, len)).ok());
      ASSERT_TRUE((*f)->Close().ok());
    }
    auto replay = ReadWal(RealVfs(), mutant_path);
    ASSERT_TRUE(replay.ok())
        << "offset " << len << ": " << replay.status().ToString();
    // Complete frames wholly inside the prefix survive; everything after
    // the last boundary <= len is reported as a torn tail.
    size_t expect_records = 0;
    size_t expect_valid = 0;
    for (size_t b = 0; b < built.boundaries.size(); ++b) {
      if (built.boundaries[b] <= len) {
        expect_records = b;  // boundaries[0] is the magic header
        expect_valid = built.boundaries[b];
      }
    }
    EXPECT_EQ(replay->records.size(), expect_records) << "offset " << len;
    if (len >= kMagicLen) {
      EXPECT_EQ(replay->valid_bytes, expect_valid) << "offset " << len;
      EXPECT_EQ(replay->truncated_bytes, len - expect_valid)
          << "offset " << len;
    }
    for (size_t i = 0; i < replay->records.size(); ++i) {
      EXPECT_EQ(replay->records[i].lsn, i + 1);
    }
  }
}

TEST_F(WalFileTest, MidLogCorruptionIsDataLossNotSilentPrefix) {
  ASSERT_TRUE(RealVfs()->CreateDir(dir_).ok());
  const std::string path = JoinPath(dir_, "wal.pinelog");
  const BuiltWal built = BuildWalFile(path, 3);

  // Flip one payload byte of the FIRST record: a bad CRC followed by more
  // frames cannot be a torn tail, so loading the prefix would silently
  // drop acked records 2 and 3 — the policy is to refuse.
  std::string corrupt = built.bytes;
  corrupt[built.boundaries[0] + 9] ^= 0x01;  // inside record 1's payload
  const std::string corrupt_path = JoinPath(dir_, "corrupt.pinelog");
  {
    auto f = RealVfs()->OpenAppend(corrupt_path);
    ASSERT_TRUE(f.ok());
    ASSERT_TRUE((*f)->Append(corrupt).ok());
    ASSERT_TRUE((*f)->Close().ok());
  }
  auto replay = ReadWal(RealVfs(), corrupt_path);
  ASSERT_FALSE(replay.ok());
  EXPECT_EQ(replay.status().code(), StatusCode::kDataLoss);
}

TEST_F(WalFileTest, BitFlipSweepNeverYieldsCorruptRecord) {
  ASSERT_TRUE(RealVfs()->CreateDir(dir_).ok());
  const std::string path = JoinPath(dir_, "wal.pinelog");
  const BuiltWal built = BuildWalFile(path, 2);
  const std::string mutant_path = JoinPath(dir_, "mutant.pinelog");

  // Reference payloads for prefix comparison.
  std::vector<std::string> payloads;
  auto reference = ReadWal(RealVfs(), path);
  ASSERT_TRUE(reference.ok());
  for (const WalRecord& r : reference->records) {
    payloads.push_back(EncodeWalRecord(r));
  }

  for (size_t bit = 0; bit < built.bytes.size() * 8; ++bit) {
    std::string mutant = built.bytes;
    mutant[bit / 8] = static_cast<char>(mutant[bit / 8] ^ (1 << (bit % 8)));
    ASSERT_TRUE(RealVfs()->Remove(mutant_path).ok() ||
                !RealVfs()->FileExists(mutant_path));
    {
      auto f = RealVfs()->OpenAppend(mutant_path);
      ASSERT_TRUE(f.ok());
      ASSERT_TRUE((*f)->Append(mutant).ok());
      ASSERT_TRUE((*f)->Close().ok());
    }
    auto replay = ReadWal(RealVfs(), mutant_path);
    if (!replay.ok()) continue;  // detected: structured refusal is fine
    // Whatever survived must be an exact prefix of the committed records.
    ASSERT_LE(replay->records.size(), payloads.size()) << "bit " << bit;
    for (size_t i = 0; i < replay->records.size(); ++i) {
      EXPECT_EQ(EncodeWalRecord(replay->records[i]), payloads[i])
          << "bit " << bit << " yielded a corrupt record " << i;
    }
  }
}

// --- FaultVfs ----------------------------------------------------------

using FaultTest = StorageTest;

engine::DatabaseOptions RtreeOptions() {
  engine::DatabaseOptions options;
  options.index_kind = index::IndexKind::kRtree;
  return options;
}

StorageOptions DurableOptions(const std::string& dir, Vfs* vfs,
                              double window_s = 0.0) {
  StorageOptions options;
  options.dir = dir;
  options.group_commit_window_s = window_s;
  options.vfs = vfs;
  return options;
}

int64_t CountRows(engine::Database* db, const char* table) {
  auto r = db->Execute(std::string("SELECT COUNT(*) FROM ") + table);
  EXPECT_TRUE(r.ok()) << r.status().ToString();
  return r->rows[0][0].int_value();
}

TEST_F(FaultTest, EnospcFailsStatementAndLatchesFailStop) {
  FaultVfs vfs(RealVfs());
  engine::Database db(RtreeOptions());
  auto manager = StorageManager::Open(DurableOptions(dir_, &vfs), &db);
  ASSERT_TRUE(manager.ok()) << manager.status().ToString();

  ASSERT_TRUE(db.Execute("CREATE TABLE pts (id BIGINT, g GEOMETRY)").ok());
  ASSERT_TRUE(
      db.Execute("INSERT INTO pts VALUES (1, ST_GeomFromText('POINT(1 2)'))")
          .ok());

  // The next append tears 5 bytes onto disk and reports ENOSPC.
  vfs.FailAppend(/*after=*/0, /*torn_bytes=*/5,
                 StatusCode::kResourceExhausted);
  auto failed =
      db.Execute("INSERT INTO pts VALUES (2, ST_GeomFromText('POINT(3 4)'))");
  ASSERT_FALSE(failed.ok());
  // The failed statement must not have applied in memory...
  EXPECT_EQ(CountRows(&db, "pts"), 1);
  // ...and the writer is fail-stopped: even with the device healed, the
  // possibly-torn tail makes further appends unsafe.
  vfs.ClearFaults();
  auto after =
      db.Execute("INSERT INTO pts VALUES (3, ST_GeomFromText('POINT(5 6)'))");
  ASSERT_FALSE(after.ok());
  EXPECT_EQ(after.status().code(), StatusCode::kDataLoss);
  EXPECT_EQ(CountRows(&db, "pts"), 1);

  // Recovery truncates the torn tail and restores exactly the acked state.
  db.set_mutation_observer(nullptr);
  engine::Database recovered(RtreeOptions());
  auto reopened = StorageManager::Open(DurableOptions(dir_, &vfs), &recovered);
  ASSERT_TRUE(reopened.ok()) << reopened.status().ToString();
  EXPECT_EQ((*reopened)->recovery_info().wal_truncated_bytes, 5u);
  EXPECT_EQ(CountRows(&recovered, "pts"), 1);
}

TEST_F(FaultTest, FsyncFailureIsFailStop) {
  FaultVfs vfs(RealVfs());
  engine::Database db(RtreeOptions());
  auto manager = StorageManager::Open(DurableOptions(dir_, &vfs), &db);
  ASSERT_TRUE(manager.ok()) << manager.status().ToString();
  ASSERT_TRUE(db.Execute("CREATE TABLE pts (id BIGINT, g GEOMETRY)").ok());

  vfs.FailSync(/*after=*/0);  // every fsync from here on fails
  auto failed =
      db.Execute("INSERT INTO pts VALUES (1, ST_GeomFromText('POINT(1 2)'))");
  ASSERT_FALSE(failed.ok());
  EXPECT_EQ(failed.status().code(), StatusCode::kDataLoss);

  vfs.ClearFaults();
  auto after =
      db.Execute("INSERT INTO pts VALUES (2, ST_GeomFromText('POINT(3 4)'))");
  ASSERT_FALSE(after.ok());
  EXPECT_EQ(after.status().code(), StatusCode::kDataLoss);
  db.set_mutation_observer(nullptr);
}

TEST_F(FaultTest, InjectedReadCorruptionIsDataLossOnRecovery) {
  FaultVfs vfs(RealVfs());
  {
    engine::Database db(RtreeOptions());
    auto manager = StorageManager::Open(DurableOptions(dir_, &vfs), &db);
    ASSERT_TRUE(manager.ok());
    ASSERT_TRUE(db.Execute("CREATE TABLE pts (id BIGINT, g GEOMETRY)").ok());
    for (int i = 0; i < 3; ++i) {
      ASSERT_TRUE(db.Execute("INSERT INTO pts VALUES (1, "
                             "ST_GeomFromText('POINT(1 2)'))")
                      .ok());
    }
    // Abandon without Close(): leave a multi-record WAL behind.
    db.set_mutation_observer(nullptr);
  }
  // Bit rot in the FIRST record's payload (offset past magic + header):
  // mid-log corruption, because records follow it.
  vfs.CorruptRead("wal.pinelog", kMagicLen + 9, 0x10);
  engine::Database recovered(RtreeOptions());
  auto reopened = StorageManager::Open(DurableOptions(dir_, &vfs), &recovered);
  ASSERT_FALSE(reopened.ok());
  EXPECT_EQ(reopened.status().code(), StatusCode::kDataLoss);

  // The same directory with the rot healed recovers fine.
  vfs.ClearFaults();
  engine::Database healthy(RtreeOptions());
  auto healed = StorageManager::Open(DurableOptions(dir_, &vfs), &healthy);
  ASSERT_TRUE(healed.ok()) << healed.status().ToString();
  EXPECT_EQ(CountRows(&healthy, "pts"), 3);
}

TEST_F(FaultTest, CorruptedSnapshotIsDataLoss) {
  FaultVfs vfs(RealVfs());
  {
    engine::Database db(RtreeOptions());
    auto manager = StorageManager::Open(DurableOptions(dir_, &vfs), &db);
    ASSERT_TRUE(manager.ok());
    ASSERT_TRUE(db.Execute("CREATE TABLE pts (id BIGINT, g GEOMETRY)").ok());
    ASSERT_TRUE(db.Execute("INSERT INTO pts VALUES (1, "
                           "ST_GeomFromText('POINT(1 2)'))")
                    .ok());
    ASSERT_TRUE((*manager)->Close().ok());  // writes snapshot.pine
  }
  vfs.CorruptRead("snapshot.pine", 40, 0xff);
  engine::Database recovered(RtreeOptions());
  auto reopened = StorageManager::Open(DurableOptions(dir_, &vfs), &recovered);
  ASSERT_FALSE(reopened.ok());
  EXPECT_EQ(reopened.status().code(), StatusCode::kDataLoss);
}

// --- StorageManager recovery round-trips -------------------------------

using RecoveryTest = StorageTest;

uint64_t QueryChecksum(engine::Database* db, const std::string& sql) {
  auto r = db->Execute(sql);
  EXPECT_TRUE(r.ok()) << r.status().ToString();
  return r->Checksum();
}

TEST_F(RecoveryTest, CloseAndReopenRoundTripsDataAndIndexes) {
  const std::string query =
      "SELECT id FROM pts WHERE ST_Intersects(g, "
      "ST_GeomFromText('POLYGON((0 0,10 0,10 10,0 10,0 0))'))";
  uint64_t checksum = 0;
  {
    engine::Database db(RtreeOptions());
    auto manager = StorageManager::Open(DurableOptions(dir_, RealVfs()), &db);
    ASSERT_TRUE(manager.ok()) << manager.status().ToString();
    ASSERT_TRUE(db.Execute("CREATE TABLE pts (id BIGINT, g GEOMETRY)").ok());
    for (int i = 0; i < 20; ++i) {
      ASSERT_TRUE(db.Execute("INSERT INTO pts VALUES (" + std::to_string(i) +
                             ", ST_GeomFromText('POINT(" +
                             std::to_string(i % 7) + " " +
                             std::to_string(i % 5) + ")'))")
                      .ok());
    }
    ASSERT_TRUE(db.Execute("CREATE SPATIAL INDEX ON pts (g)").ok());
    checksum = QueryChecksum(&db, query);
    ASSERT_TRUE((*manager)->Close().ok());
  }
  engine::Database recovered(RtreeOptions());
  auto manager =
      StorageManager::Open(DurableOptions(dir_, RealVfs()), &recovered);
  ASSERT_TRUE(manager.ok()) << manager.status().ToString();
  EXPECT_TRUE((*manager)->recovery_info().snapshot_loaded);
  EXPECT_EQ((*manager)->recovery_info().snapshot_rows, 20u);
  EXPECT_EQ(CountRows(&recovered, "pts"), 20);
  // The spatial index came back too.
  const engine::Table* table = recovered.catalog().GetTable("pts");
  ASSERT_NE(table, nullptr);
  EXPECT_NE(table->GetSpatialIndex(1), nullptr);
  EXPECT_EQ(QueryChecksum(&recovered, query), checksum);
}

TEST_F(RecoveryTest, CrashAfterCheckpointReplaysSnapshotPlusWal) {
  uint64_t checksum = 0;
  {
    engine::Database db(RtreeOptions());
    auto manager = StorageManager::Open(DurableOptions(dir_, RealVfs()), &db);
    ASSERT_TRUE(manager.ok());
    ASSERT_TRUE(db.Execute("CREATE TABLE pts (id BIGINT, g GEOMETRY)").ok());
    for (int i = 0; i < 5; ++i) {
      ASSERT_TRUE(db.Execute("INSERT INTO pts VALUES (" + std::to_string(i) +
                             ", ST_GeomFromText('POINT(1 2)'))")
                      .ok());
    }
    ASSERT_TRUE((*manager)->Checkpoint().ok());
    // Post-checkpoint mutations live only in the WAL.
    for (int i = 5; i < 9; ++i) {
      ASSERT_TRUE(db.Execute("INSERT INTO pts VALUES (" + std::to_string(i) +
                             ", ST_GeomFromText('POINT(3 4)'))")
                      .ok());
    }
    checksum = QueryChecksum(&db, "SELECT id FROM pts");
    // Simulate a crash: detach without Close(), so no final checkpoint.
    db.set_mutation_observer(nullptr);
  }
  engine::Database recovered(RtreeOptions());
  auto manager =
      StorageManager::Open(DurableOptions(dir_, RealVfs()), &recovered);
  ASSERT_TRUE(manager.ok()) << manager.status().ToString();
  const RecoveryInfo& info = (*manager)->recovery_info();
  EXPECT_TRUE(info.snapshot_loaded);
  EXPECT_EQ(info.snapshot_rows, 5u);
  EXPECT_GE(info.wal_records_applied, 4u);  // the post-checkpoint inserts
  EXPECT_EQ(CountRows(&recovered, "pts"), 9);
  EXPECT_EQ(QueryChecksum(&recovered, "SELECT id FROM pts"), checksum);
}

TEST_F(RecoveryTest, UpdateAndDeleteRecordsReplay) {
  // No SQL reaches kUpdate/kDelete yet; exercise the replay path by
  // appending the records straight into a WAL the manager then recovers.
  ASSERT_TRUE(RealVfs()->CreateDir(dir_).ok());
  const std::string path = StorageManager::WalPath(dir_);
  {
    auto writer = WalWriter::Open(RealVfs(), path, 0.0, 1);
    ASSERT_TRUE(writer.ok());
    WalRecord create;
    create.kind = WalRecordKind::kCreateTable;
    create.table = "pts";
    create.schema = PointSchema();
    ASSERT_TRUE((*writer)->Append(std::move(create)).ok());
    WalRecord insert = SampleInsert(0);  // rows (1, POINT), (2, LINESTRING)
    ASSERT_TRUE((*writer)->Append(std::move(insert)).ok());
    WalRecord update;
    update.kind = WalRecordKind::kUpdate;
    update.table = "pts";
    update.row_index = 0;
    update.rows.push_back(
        {engine::Value::Int(99), GeoValue("POINT(7 7)")});
    ASSERT_TRUE((*writer)->Append(std::move(update)).ok());
    WalRecord del;
    del.kind = WalRecordKind::kDelete;
    del.table = "pts";
    del.row_index = 1;  // removes the LINESTRING row
    ASSERT_TRUE((*writer)->Append(std::move(del)).ok());
    ASSERT_TRUE((*writer)->Close().ok());
  }
  engine::Database db(RtreeOptions());
  auto manager = StorageManager::Open(DurableOptions(dir_, RealVfs()), &db);
  ASSERT_TRUE(manager.ok()) << manager.status().ToString();
  EXPECT_EQ(CountRows(&db, "pts"), 1);
  auto r = db.Execute("SELECT id FROM pts");
  ASSERT_TRUE(r.ok());
  ASSERT_EQ(r->rows.size(), 1u);
  EXPECT_EQ(r->rows[0][0].int_value(), 99);
}

TEST_F(RecoveryTest, GroupCommitConcurrentInsertsAllDurable) {
  constexpr int kThreads = 4;
  constexpr int kPerThread = 25;
  {
    engine::Database db(RtreeOptions());
    auto manager = StorageManager::Open(
        DurableOptions(dir_, RealVfs(), /*window_s=*/0.002), &db);
    ASSERT_TRUE(manager.ok());
    ASSERT_TRUE(db.Execute("CREATE TABLE pts (id BIGINT, g GEOMETRY)").ok());
    std::vector<std::thread> threads;
    std::atomic<int> failures{0};
    for (int t = 0; t < kThreads; ++t) {
      threads.emplace_back([&db, &failures, t] {
        for (int i = 0; i < kPerThread; ++i) {
          auto r = db.Execute(
              "INSERT INTO pts VALUES (" + std::to_string(t * 1000 + i) +
              ", ST_GeomFromText('POINT(1 2)'))");
          if (!r.ok()) failures.fetch_add(1);
        }
      });
    }
    for (auto& t : threads) t.join();
    EXPECT_EQ(failures.load(), 0);
    // Crash-abandon: every *acked* insert must survive without Close().
    db.set_mutation_observer(nullptr);
  }
  engine::Database recovered(RtreeOptions());
  auto manager =
      StorageManager::Open(DurableOptions(dir_, RealVfs()), &recovered);
  ASSERT_TRUE(manager.ok()) << manager.status().ToString();
  EXPECT_EQ(CountRows(&recovered, "pts"), kThreads * kPerThread);
}

TEST_F(RecoveryTest, DuplicateCreateTableStillFailsUnderObserver) {
  engine::Database db(RtreeOptions());
  auto manager = StorageManager::Open(DurableOptions(dir_, RealVfs()), &db);
  ASSERT_TRUE(manager.ok());
  ASSERT_TRUE(db.Execute("CREATE TABLE pts (id BIGINT, g GEOMETRY)").ok());
  auto dup = db.Execute("CREATE TABLE pts (id BIGINT, g GEOMETRY)");
  ASSERT_FALSE(dup.ok());
  EXPECT_EQ(dup.status().code(), StatusCode::kAlreadyExists);
  // The refused statement must not have been logged: recovery sees one
  // create, not two.
  ASSERT_TRUE((*manager)->Close().ok());
  engine::Database recovered(RtreeOptions());
  auto reopened =
      StorageManager::Open(DurableOptions(dir_, RealVfs()), &recovered);
  ASSERT_TRUE(reopened.ok()) << reopened.status().ToString();
}

TEST_F(RecoveryTest, DataDirMovesBetweenIndexKinds) {
  // The index structure is SUT configuration, not durable state: a dir
  // written by pine-rtree recovers under pine-grid with grid indexes.
  {
    engine::Database db(RtreeOptions());
    auto manager = StorageManager::Open(DurableOptions(dir_, RealVfs()), &db);
    ASSERT_TRUE(manager.ok());
    ASSERT_TRUE(db.Execute("CREATE TABLE pts (id BIGINT, g GEOMETRY)").ok());
    ASSERT_TRUE(db.Execute("INSERT INTO pts VALUES (1, "
                           "ST_GeomFromText('POINT(1 2)'))")
                    .ok());
    ASSERT_TRUE(db.Execute("CREATE SPATIAL INDEX ON pts (g)").ok());
    ASSERT_TRUE((*manager)->Close().ok());
  }
  engine::DatabaseOptions grid;
  grid.index_kind = index::IndexKind::kGrid;
  engine::Database db(grid);
  auto manager = StorageManager::Open(DurableOptions(dir_, RealVfs()), &db);
  ASSERT_TRUE(manager.ok()) << manager.status().ToString();
  const engine::Table* table = db.catalog().GetTable("pts");
  ASSERT_NE(table, nullptr);
  const index::SpatialIndex* idx = table->GetSpatialIndex(1);
  ASSERT_NE(idx, nullptr);
  EXPECT_EQ(idx->kind(), index::IndexKind::kGrid);
}

TEST_F(RecoveryTest, CheckpointResetsWalAndClearsNothingAcked) {
  engine::Database db(RtreeOptions());
  auto manager = StorageManager::Open(DurableOptions(dir_, RealVfs()), &db);
  ASSERT_TRUE(manager.ok());
  ASSERT_TRUE(db.Execute("CREATE TABLE pts (id BIGINT, g GEOMETRY)").ok());
  for (int i = 0; i < 10; ++i) {
    ASSERT_TRUE(db.Execute("INSERT INTO pts VALUES (1, "
                           "ST_GeomFromText('POINT(1 2)'))")
                    .ok());
  }
  const uint64_t before = (*manager)->wal_bytes();
  ASSERT_TRUE((*manager)->Checkpoint().ok());
  // The WAL shrank to magic + the checkpoint barrier record.
  EXPECT_LT((*manager)->wal_bytes(), before);
  EXPECT_EQ((*manager)->checkpoints(), 1u);
  // Mutations after the checkpoint keep working and keep recovering.
  ASSERT_TRUE(db.Execute("INSERT INTO pts VALUES (2, "
                         "ST_GeomFromText('POINT(3 4)'))")
                  .ok());
  db.set_mutation_observer(nullptr);
  engine::Database recovered(RtreeOptions());
  auto reopened =
      StorageManager::Open(DurableOptions(dir_, RealVfs()), &recovered);
  ASSERT_TRUE(reopened.ok()) << reopened.status().ToString();
  EXPECT_EQ(CountRows(&recovered, "pts"), 11);
}

TEST_F(RecoveryTest, RejectedCreateIndexIsNeverLogged) {
  // CREATE INDEX on a non-geometry column must fail *before* the observer
  // hook: a kCreateIndex record for a column the rebuild would refuse is a
  // poison pill that turns the next recovery into kDataLoss.
  {
    engine::Database db(RtreeOptions());
    auto manager = StorageManager::Open(DurableOptions(dir_, RealVfs()), &db);
    ASSERT_TRUE(manager.ok());
    ASSERT_TRUE(db.Execute("CREATE TABLE pts (id BIGINT, g GEOMETRY)").ok());
    ASSERT_TRUE(db.Execute("INSERT INTO pts VALUES (1, "
                           "ST_GeomFromText('POINT(1 2)'))")
                    .ok());
    auto rejected = db.Execute("CREATE SPATIAL INDEX ON pts (id)");
    ASSERT_FALSE(rejected.ok());
    EXPECT_EQ(rejected.status().code(), StatusCode::kInvalidArgument);
    // Storage is still healthy (no fail-stop latch from the refusal)...
    ASSERT_TRUE(db.Execute("INSERT INTO pts VALUES (2, "
                           "ST_GeomFromText('POINT(3 4)'))")
                    .ok());
    // ...and a crash-abandon leaves the poison-free WAL behind.
    db.set_mutation_observer(nullptr);
  }
  engine::Database recovered(RtreeOptions());
  auto reopened =
      StorageManager::Open(DurableOptions(dir_, RealVfs()), &recovered);
  ASSERT_TRUE(reopened.ok()) << reopened.status().ToString();
  EXPECT_EQ((*reopened)->recovery_info().indexes_dropped, 0u);
  EXPECT_EQ(CountRows(&recovered, "pts"), 2);
}

TEST_F(RecoveryTest, PoisonCreateIndexRecordDropsIndexNotData) {
  // A kCreateIndex for a non-geometry column (a foreign or pre-fix writer)
  // must not make the whole dir unrecoverable: every row is intact, and the
  // index is SUT configuration. Recovery drops it and reports the count.
  ASSERT_TRUE(RealVfs()->CreateDir(dir_).ok());
  const std::string path = StorageManager::WalPath(dir_);
  {
    auto writer = WalWriter::Open(RealVfs(), path, 0.0, 1);
    ASSERT_TRUE(writer.ok());
    WalRecord create;
    create.kind = WalRecordKind::kCreateTable;
    create.table = "pts";
    create.schema = PointSchema();
    ASSERT_TRUE((*writer)->Append(std::move(create)).ok());
    ASSERT_TRUE((*writer)->Append(SampleInsert(0)).ok());
    WalRecord poison;
    poison.kind = WalRecordKind::kCreateIndex;
    poison.table = "pts";
    poison.column = 0;  // BIGINT: BuildSpatialIndex will refuse
    ASSERT_TRUE((*writer)->Append(std::move(poison)).ok());
    ASSERT_TRUE((*writer)->Close().ok());
  }
  engine::Database db(RtreeOptions());
  auto manager = StorageManager::Open(DurableOptions(dir_, RealVfs()), &db);
  ASSERT_TRUE(manager.ok()) << manager.status().ToString();
  EXPECT_EQ((*manager)->recovery_info().indexes_dropped, 1u);
  EXPECT_EQ(CountRows(&db, "pts"), 2);
  const engine::Table* table = db.catalog().GetTable("pts");
  ASSERT_NE(table, nullptr);
  EXPECT_EQ(table->GetSpatialIndex(0), nullptr);
}

TEST_F(WalFileTest, GroupCommitWindowBatchesSequentialAppends) {
  // The window is a real deadline, not a hint: appends that land inside it
  // — even from a single sequential writer — share one fsync instead of
  // degenerating to fsync-per-append.
  ASSERT_TRUE(RealVfs()->CreateDir(dir_).ok());
  const std::string path = JoinPath(dir_, "wal.pinelog");
  auto writer = WalWriter::Open(RealVfs(), path, /*window=*/0.5,
                                /*next_lsn=*/1);
  ASSERT_TRUE(writer.ok()) << writer.status().ToString();
  const uint64_t header_fsyncs = (*writer)->fsyncs();  // magic stamp
  uint64_t last = 0;
  for (int i = 0; i < 5; ++i) {
    auto lsn = (*writer)->Append(SampleInsert(0));
    ASSERT_TRUE(lsn.ok()) << lsn.status().ToString();
    last = *lsn;
  }
  ASSERT_TRUE((*writer)->WaitSynced(last).ok());
  // All five appends fit one 500 ms window; allow one extra fsync in case
  // a scheduler stall pushed a straggler into a second window.
  EXPECT_LE((*writer)->fsyncs() - header_fsyncs, 2u);
  ASSERT_TRUE((*writer)->Close().ok());
}

}  // namespace
}  // namespace jackpine::storage
