// Tests for the planner's access-path selection: index windows, index
// nested-loop joins, k-NN detection, and constant folding.

#include <gtest/gtest.h>

#include "engine/database.h"
#include "engine/planner.h"
#include "engine/sql_parser.h"

namespace jackpine::engine {
namespace {

class PlannerTest : public ::testing::Test {
 protected:
  void SetUp() override {
    ASSERT_TRUE(db_.Execute("CREATE TABLE pts (id BIGINT, geom GEOMETRY)")
                    .ok());
    ASSERT_TRUE(
        db_.Execute("CREATE TABLE areas (id BIGINT, geom GEOMETRY)").ok());
    for (int i = 0; i < 20; ++i) {
      ASSERT_TRUE(db_.Execute("INSERT INTO pts VALUES (" +
                              std::to_string(i) + ", ST_MakePoint(" +
                              std::to_string(i) + ", 0))")
                      .ok());
    }
    ASSERT_TRUE(db_.Execute(
                       "INSERT INTO areas VALUES (1, ST_MakeEnvelope(0, -1, "
                       "5, 1)), (2, ST_MakeEnvelope(10, -1, 15, 1))")
                    .ok());
    ASSERT_TRUE(db_.Execute("CREATE SPATIAL INDEX ON pts (geom)").ok());
    ASSERT_TRUE(db_.Execute("CREATE SPATIAL INDEX ON areas (geom)").ok());
  }

  PhysicalPlan Plan(const std::string& sql) {
    auto stmt = ParseSql(sql);
    EXPECT_TRUE(stmt.ok()) << stmt.status().ToString();
    auto plan = PlanSelect(std::get<SelectStatement>(*stmt), db_.catalog(),
                           EvalContext{});
    EXPECT_TRUE(plan.ok()) << sql << " -> " << plan.status().ToString();
    return plan.ok() ? std::move(plan).value() : PhysicalPlan{};
  }

  Database db_;
};

TEST_F(PlannerTest, WindowFromIntersectsConstant) {
  PhysicalPlan p = Plan(
      "SELECT * FROM pts WHERE ST_Intersects(geom, "
      "ST_MakeEnvelope(2, -1, 4, 1))");
  EXPECT_TRUE(p.use_window);
  EXPECT_EQ(p.window, geom::Envelope(2, -1, 4, 1));
  EXPECT_FALSE(p.use_knn);
  EXPECT_FALSE(p.use_join_index);
}

TEST_F(PlannerTest, WindowFromReversedArguments) {
  PhysicalPlan p = Plan(
      "SELECT * FROM pts WHERE ST_Contains("
      "ST_MakeEnvelope(2, -1, 4, 1), geom)");
  EXPECT_TRUE(p.use_window);
}

TEST_F(PlannerTest, WindowFromDWithinExpandsEnvelope) {
  PhysicalPlan p = Plan(
      "SELECT * FROM pts WHERE ST_DWithin(geom, ST_MakePoint(5, 0), 2)");
  ASSERT_TRUE(p.use_window);
  EXPECT_EQ(p.window, geom::Envelope(3, -2, 7, 2));
}

TEST_F(PlannerTest, WindowFoundInsideConjunction) {
  PhysicalPlan p = Plan(
      "SELECT * FROM pts WHERE id > 3 AND ST_Intersects(geom, "
      "ST_MakeEnvelope(0, 0, 1, 1)) AND id < 10");
  EXPECT_TRUE(p.use_window);
}

TEST_F(PlannerTest, DisjointIsNeverIndexAssisted) {
  PhysicalPlan p = Plan(
      "SELECT * FROM pts WHERE ST_Disjoint(geom, "
      "ST_MakeEnvelope(2, -1, 4, 1))");
  EXPECT_FALSE(p.use_window);
}

TEST_F(PlannerTest, NoIndexNoWindow) {
  ASSERT_TRUE(db_.Execute("DROP SPATIAL INDEX ON pts (geom)").ok());
  PhysicalPlan p = Plan(
      "SELECT * FROM pts WHERE ST_Intersects(geom, "
      "ST_MakeEnvelope(2, -1, 4, 1))");
  EXPECT_FALSE(p.use_window);
}

TEST_F(PlannerTest, PredicateUnderOrIsNotIndexed) {
  PhysicalPlan p = Plan(
      "SELECT * FROM pts WHERE id = 1 OR ST_Intersects(geom, "
      "ST_MakeEnvelope(2, -1, 4, 1))");
  EXPECT_FALSE(p.use_window);  // not a top-level conjunct
}

TEST_F(PlannerTest, JoinUsesIndexOnLargerSide) {
  PhysicalPlan p = Plan(
      "SELECT COUNT(*) FROM pts p, areas a "
      "WHERE ST_Within(p.geom, a.geom)");
  ASSERT_TRUE(p.use_join_index);
  // pts (20 rows) is larger than areas (2 rows): probe pts, loop areas.
  EXPECT_EQ(p.tables[p.inner_table]->name(), "pts");
  EXPECT_EQ(p.tables[p.outer_table]->name(), "areas");
}

TEST_F(PlannerTest, JoinDWithinCarriesExpansion) {
  PhysicalPlan p = Plan(
      "SELECT COUNT(*) FROM pts p, areas a "
      "WHERE ST_DWithin(p.geom, a.geom, 3.5)");
  ASSERT_TRUE(p.use_join_index);
  EXPECT_DOUBLE_EQ(p.join_expand, 3.5);
}

TEST_F(PlannerTest, JoinFallsBackToNestedLoop) {
  ASSERT_TRUE(db_.Execute("DROP SPATIAL INDEX ON pts (geom)").ok());
  ASSERT_TRUE(db_.Execute("DROP SPATIAL INDEX ON areas (geom)").ok());
  PhysicalPlan p = Plan(
      "SELECT COUNT(*) FROM pts p, areas a "
      "WHERE ST_Within(p.geom, a.geom)");
  EXPECT_FALSE(p.use_join_index);
}

TEST_F(PlannerTest, KnnDetected) {
  PhysicalPlan p = Plan(
      "SELECT id FROM pts ORDER BY ST_Distance(geom, ST_MakePoint(7, 0)) "
      "LIMIT 3");
  ASSERT_TRUE(p.use_knn);
  EXPECT_EQ(p.knn_center, (geom::Coord{7, 0}));
  EXPECT_EQ(*p.limit, 3);
}

TEST_F(PlannerTest, KnnNotUsedWithWhereOrDescOrNoLimit) {
  EXPECT_FALSE(Plan("SELECT id FROM pts WHERE id > 1 ORDER BY "
                    "ST_Distance(geom, ST_MakePoint(7, 0)) LIMIT 3")
                   .use_knn);
  EXPECT_FALSE(Plan("SELECT id FROM pts ORDER BY "
                    "ST_Distance(geom, ST_MakePoint(7, 0)) DESC LIMIT 3")
                   .use_knn);
  EXPECT_FALSE(Plan("SELECT id FROM pts ORDER BY "
                    "ST_Distance(geom, ST_MakePoint(7, 0))")
                   .use_knn);
}

TEST_F(PlannerTest, ConstantsAreFoldedOncePerQuery) {
  PhysicalPlan p = Plan(
      "SELECT * FROM pts WHERE ST_Intersects(geom, "
      "ST_GeomFromText('POLYGON ((0 0, 4 0, 4 4, 0 4, 0 0))'))");
  ASSERT_TRUE(p.where.has_value());
  // The ST_GeomFromText subtree must have been folded to a literal.
  const BoundExpr& call = *p.where;
  ASSERT_EQ(call.kind, BoundExpr::Kind::kCall);
  bool found_literal_geometry = false;
  for (const BoundExpr& arg : call.children) {
    if (arg.kind == BoundExpr::Kind::kLiteral &&
        arg.literal.type() == DataType::kGeometry) {
      found_literal_geometry = true;
    }
  }
  EXPECT_TRUE(found_literal_geometry);
}

TEST_F(PlannerTest, OutputNaming) {
  PhysicalPlan p = Plan(
      "SELECT id, ST_Area(geom) AS a, ST_Length(geom) FROM areas");
  ASSERT_EQ(p.outputs.size(), 3u);
  EXPECT_EQ(p.outputs[0].name, "id");
  EXPECT_EQ(p.outputs[1].name, "a");
  EXPECT_EQ(p.outputs[2].name, "st_length");
}

TEST_F(PlannerTest, AmbiguousColumnRejected) {
  auto stmt = ParseSql("SELECT geom FROM pts p, areas a");
  ASSERT_TRUE(stmt.ok());
  auto plan = PlanSelect(std::get<SelectStatement>(*stmt), db_.catalog(),
                         EvalContext{});
  EXPECT_FALSE(plan.ok());
}

}  // namespace
}  // namespace jackpine::engine
