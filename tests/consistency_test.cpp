// Cross-module consistency properties: the topological predicates, the
// overlay operations, and the distance computation are three independent
// code paths that must tell one coherent story about the same geometries.
// Random convex polygons (hulls of random point clouds) drive the sweep.

#include <cmath>

#include <gtest/gtest.h>

#include "algo/buffer.h"
#include "algo/convex_hull.h"
#include "algo/distance.h"
#include "algo/measures.h"
#include "algo/overlay.h"
#include "algo/point_in_polygon.h"
#include "common/random.h"
#include "topo/predicates.h"

namespace jackpine {
namespace {

using algo::Area;
using algo::Distance;
using algo::Overlay;
using algo::OverlayOp;
using geom::Coord;
using geom::Geometry;

Geometry RandomConvexPolygon(Rng* rng, double cx, double cy, double radius) {
  std::vector<Coord> cloud;
  const int n = static_cast<int>(rng->NextInt(5, 14));
  for (int i = 0; i < n; ++i) {
    cloud.push_back({cx + rng->NextDouble(-radius, radius),
                     cy + rng->NextDouble(-radius, radius)});
  }
  Geometry hull = algo::ConvexHull(
      *Geometry::MakeMultiPoint([&] {
        std::vector<Geometry> pts;
        for (const Coord& c : cloud) pts.push_back(Geometry::MakePoint(c));
        return pts;
      }()));
  if (hull.type() == geom::GeometryType::kPolygon) return hull;
  // Degenerate cloud: fall back to a box.
  return Geometry::MakeRectangle(
      geom::Envelope(cx - radius, cy - radius, cx + radius, cy + radius));
}

class ConsistencySweep : public ::testing::TestWithParam<uint64_t> {};

TEST_P(ConsistencySweep, PredicatesOverlayDistanceAgree) {
  Rng rng(GetParam());
  for (int iter = 0; iter < 25; ++iter) {
    Geometry a = RandomConvexPolygon(&rng, rng.NextDouble(0, 10),
                                     rng.NextDouble(0, 10), 3);
    Geometry b = RandomConvexPolygon(&rng, rng.NextDouble(0, 10),
                                     rng.NextDouble(0, 10), 3);
    const bool intersects = topo::Intersects(a, b);
    const double dist = Distance(a, b);
    auto inter = Overlay(a, b, OverlayOp::kIntersection);
    ASSERT_TRUE(inter.ok()) << inter.status().ToString();
    const double inter_area = Area(*inter);

    // Distance is zero exactly when the point sets intersect.
    EXPECT_EQ(intersects, dist == 0.0)
        << a.ToWkt() << " vs " << b.ToWkt() << " dist=" << dist;

    // A positive intersection area certainly means intersecting; random
    // convex polygons that intersect do so with interior overlap (touching
    // configurations have measure zero), so the converse holds up to the
    // overlay's perturbation epsilon.
    if (inter_area > 1e-6) {
      EXPECT_TRUE(intersects);
      EXPECT_TRUE(topo::Overlaps(a, b) || topo::Within(a, b) ||
                  topo::Contains(a, b) || topo::Equals(a, b))
          << a.ToWkt() << " vs " << b.ToWkt();
    }
    if (intersects) {
      EXPECT_GT(inter_area, 0.0);
    } else {
      EXPECT_TRUE(inter->IsEmpty());
      EXPECT_GT(dist, 0.0);
    }

    // Containment and clipping agree on areas.
    if (topo::Within(a, b)) {
      EXPECT_NEAR(inter_area, Area(a), Area(a) * 1e-6);
      auto diff = Overlay(a, b, OverlayOp::kDifference);
      ASSERT_TRUE(diff.ok());
      EXPECT_NEAR(Area(*diff), 0.0, Area(a) * 1e-6);
    }
  }
}

TEST_P(ConsistencySweep, BufferCoversAndGrowsMonotonically) {
  Rng rng(GetParam() ^ 0x9e37);
  for (int iter = 0; iter < 8; ++iter) {
    // Random polyline.
    std::vector<Coord> pts;
    const int n = static_cast<int>(rng.NextInt(2, 6));
    for (int i = 0; i < n; ++i) {
      pts.push_back({rng.NextDouble(0, 10), rng.NextDouble(0, 10)});
    }
    auto line = Geometry::MakeLineString(pts);
    ASSERT_TRUE(line.ok());
    auto small = algo::Buffer(*line, 0.3);
    auto big = algo::Buffer(*line, 0.9);
    ASSERT_TRUE(small.ok() && big.ok());
    // The buffer covers the input...
    EXPECT_EQ(Distance(*small, *line), 0.0);
    for (const Coord& c : line->AsLineString()) {
      EXPECT_NE(algo::Locate(c, *small), algo::Location::kExterior);
    }
    // ...and a bigger radius yields a bigger region containing the smaller.
    EXPECT_GT(Area(*big), Area(*small));
    auto leftover = Overlay(*small, *big, OverlayOp::kDifference);
    ASSERT_TRUE(leftover.ok());
    EXPECT_NEAR(Area(*leftover), 0.0, Area(*small) * 1e-3);
  }
}

TEST_P(ConsistencySweep, HullCoversInputAndIsConvex) {
  Rng rng(GetParam() ^ 0x51);
  for (int iter = 0; iter < 20; ++iter) {
    std::vector<Geometry> pts;
    const int n = static_cast<int>(rng.NextInt(3, 30));
    for (int i = 0; i < n; ++i) {
      pts.push_back(Geometry::MakePoint(rng.NextDouble(0, 100),
                                        rng.NextDouble(0, 100)));
    }
    auto mp = Geometry::MakeMultiPoint(pts);
    ASSERT_TRUE(mp.ok());
    const Geometry hull = algo::ConvexHull(*mp);
    for (const Geometry& p : pts) {
      EXPECT_NE(algo::Locate(p.AsPoint(), hull), algo::Location::kExterior);
    }
    if (hull.type() == geom::GeometryType::kPolygon) {
      // Convexity: hull of the hull is (area-)identical.
      const Geometry hull2 = algo::ConvexHull(hull);
      EXPECT_NEAR(Area(hull2), Area(hull), Area(hull) * 1e-12 + 1e-12);
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, ConsistencySweep,
                         ::testing::Values(101, 202, 303, 404));

}  // namespace
}  // namespace jackpine
