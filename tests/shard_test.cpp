// Unit tests for jackpine::shard: the Hilbert curve, the consistent-hash
// partitioner, the shard URL grammar, SQL serialization, scatter planning,
// and — via a socket-free mini cluster of in-process engines — the exactness
// of the owner-cell dedup and merge semantics against a single-node
// reference database.

#include <gtest/gtest.h>

#include <algorithm>
#include <map>
#include <memory>
#include <set>
#include <string>
#include <variant>
#include <vector>

#include "common/string_util.h"
#include "engine/database.h"
#include "engine/sql_parser.h"
#include "shard/hilbert.h"
#include "shard/merge.h"
#include "shard/partitioner.h"
#include "shard/shard_router.h"
#include "shard/sql_rewrite.h"

namespace jackpine::shard {
namespace {

engine::Statement MustParse(const std::string& sql) {
  Result<engine::Statement> parsed = engine::ParseSql(sql);
  EXPECT_TRUE(parsed.ok()) << sql << ": " << parsed.status().ToString();
  return std::move(*parsed);
}

std::vector<std::string> Names(size_t n) {
  std::vector<std::string> names;
  for (size_t i = 0; i < n; ++i) {
    names.push_back(StrFormat("127.0.0.1:%zu", 7700 + i));
  }
  return names;
}

TEST(HilbertTest, BijectionOverTheGrid) {
  const uint32_t order = 4, side = 1u << order;
  std::set<uint64_t> seen;
  for (uint32_t y = 0; y < side; ++y) {
    for (uint32_t x = 0; x < side; ++x) {
      const uint64_t d = HilbertIndex(order, x, y);
      EXPECT_LT(d, uint64_t{side} * side);
      EXPECT_TRUE(seen.insert(d).second) << "duplicate index " << d;
    }
  }
  EXPECT_EQ(seen.size(), size_t{side} * side);
}

TEST(HilbertTest, ConsecutiveIndexesAreGridAdjacent) {
  // The locality property the ring key relies on: walking the curve moves
  // one grid step at a time, so nearby cells get nearby ring positions.
  const uint32_t order = 4, side = 1u << order;
  std::map<uint64_t, std::pair<uint32_t, uint32_t>> by_index;
  for (uint32_t y = 0; y < side; ++y) {
    for (uint32_t x = 0; x < side; ++x) {
      by_index[HilbertIndex(order, x, y)] = {x, y};
    }
  }
  for (uint64_t d = 0; d + 1 < uint64_t{side} * side; ++d) {
    const auto [x0, y0] = by_index[d];
    const auto [x1, y1] = by_index[d + 1];
    const uint32_t manhattan = (x0 > x1 ? x0 - x1 : x1 - x0) +
                               (y0 > y1 ? y0 - y1 : y1 - y0);
    EXPECT_EQ(manhattan, 1u) << "jump at curve position " << d;
  }
}

TEST(PartitionerTest, CellsForSingleCellAndStraddle) {
  Partitioner part(PartitionConfig{}, Names(2));  // 16x16 over 0..100
  // Wholly inside cell (0, 0): extent 6.25 per cell.
  EXPECT_EQ(part.CellsFor(geom::Envelope(1, 1, 2, 2), 0.0),
            (std::vector<uint32_t>{0}));
  // Straddles the first vertical cell border at x = 6.25.
  EXPECT_EQ(part.CellsFor(geom::Envelope(6, 1, 7, 2), 0.0),
            (std::vector<uint32_t>{0, 1}));
  // Null envelope (geometry-less row) lives in cell 0.
  EXPECT_EQ(part.CellsFor(geom::Envelope(), 0.0),
            (std::vector<uint32_t>{0}));
  // Out-of-bounds clamps to the border cell instead of vanishing.
  EXPECT_EQ(part.CellsFor(geom::Envelope(-50, -50, -40, -40), 0.0),
            (std::vector<uint32_t>{0}));
  EXPECT_EQ(part.CellsFor(geom::Envelope(500, 500, 501, 501), 0.0),
            (std::vector<uint32_t>{255}));
}

TEST(PartitionerTest, EveryShardOwnsCells) {
  Partitioner part(PartitionConfig{}, Names(4));
  std::vector<size_t> owned(4, 0);
  for (uint32_t c = 0; c < part.num_cells(); ++c) {
    ASSERT_LT(part.OwnerShard(c), 4u);
    ++owned[part.OwnerShard(c)];
  }
  for (size_t s = 0; s < 4; ++s) {
    EXPECT_GT(owned[s], 0u) << "shard " << s << " owns nothing";
  }
}

TEST(PartitionerTest, AddingShardMovesOnlyItsArc) {
  // The consistent-hash property: growing the cluster from 3 to 4 shards
  // re-homes cells only onto the new shard; no cell moves between the
  // surviving shards.
  Partitioner before(PartitionConfig{}, Names(3));
  Partitioner after(PartitionConfig{}, Names(4));
  uint32_t moved = 0;
  for (uint32_t c = 0; c < before.num_cells(); ++c) {
    if (after.OwnerShard(c) != before.OwnerShard(c)) {
      EXPECT_EQ(after.OwnerShard(c), 3u)
          << "cell " << c << " moved between surviving shards";
      ++moved;
    }
  }
  EXPECT_GT(moved, 0u);                         // the new shard got an arc
  EXPECT_LT(moved, before.num_cells());         // but not everything
}

TEST(PartitionerTest, CanonicalShardIsOwnerOfLowestSharedCell) {
  Partitioner part(PartitionConfig{}, Names(3));
  const geom::Envelope box(6, 1, 7, 2);
  const std::vector<uint32_t> cells = part.CellsFor(box, part.margin());
  EXPECT_EQ(part.CanonicalShard(box, part.AllCells()),
            part.OwnerShard(cells.front()));
  // A contacted set that misses every cell of the row: out of scope.
  EXPECT_EQ(part.CanonicalShard(box, {200, 201}), part.num_shards());
}

TEST(ShardUrlTest, ParsesEndpointsAndOptions) {
  auto parsed = ParseShardUrl(
      "shard(127.0.0.1:7701,127.0.0.1:7702;grid=32;margin=2.5;vnodes=16;"
      "bounds=-10:-10:10:10;replicate=county|lookup)/pine-rtree");
  ASSERT_TRUE(parsed.ok()) << parsed.status().ToString();
  EXPECT_EQ(parsed->sut, "pine-rtree");
  ASSERT_EQ(parsed->shards.size(), 2u);
  ASSERT_EQ(parsed->shards[0].size(), 1u);
  EXPECT_EQ(parsed->shards[0][0].endpoint.host, "127.0.0.1");
  EXPECT_EQ(parsed->shards[0][0].endpoint.port, 7701);
  EXPECT_EQ(parsed->shards[0][0].endpoint.scheme, "tcp");
  EXPECT_EQ(parsed->shards[0][0].endpoint.sut, "pine-rtree");
  EXPECT_EQ(parsed->shards[1][0].endpoint.port, 7702);
  EXPECT_EQ(parsed->partition.grid_order, 5u);  // 2^5 = 32
  EXPECT_DOUBLE_EQ(parsed->partition.margin, 2.5);
  EXPECT_EQ(parsed->partition.virtual_nodes, 16u);
  EXPECT_DOUBLE_EQ(parsed->partition.bounds.min_x(), -10.0);
  EXPECT_DOUBLE_EQ(parsed->partition.bounds.max_y(), 10.0);
  EXPECT_EQ(parsed->replicated_tables,
            (std::vector<std::string>{"county", "lookup"}));
  EXPECT_FALSE(parsed->shards[0][0].chaos.has_value());
  // HA defaults: health auto, hedging off.
  EXPECT_LT(parsed->health_ms, 0.0);
  EXPECT_LT(parsed->hedge_ms, 0.0);
}

TEST(ShardUrlTest, ParsesPerEndpointChaosWrap) {
  auto parsed = ParseShardUrl(
      "shard(chaos(7,0.5,0)@127.0.0.1:7701,127.0.0.1:7702)/pine-grid");
  ASSERT_TRUE(parsed.ok()) << parsed.status().ToString();
  ASSERT_EQ(parsed->shards.size(), 2u);
  ASSERT_TRUE(parsed->shards[0][0].chaos.has_value());
  EXPECT_EQ(parsed->shards[0][0].chaos->seed, 7u);
  EXPECT_DOUBLE_EQ(parsed->shards[0][0].chaos->error_rate, 0.5);
  EXPECT_FALSE(parsed->shards[1][0].chaos.has_value());
  EXPECT_EQ(parsed->shards[0][0].endpoint.port, 7701);
}

TEST(ShardUrlTest, ParsesReplicaGroupsAndHaOptions) {
  // '|' inside a slot separates replicas; chaos wraps compose per replica
  // and survive both the ',' and '|' splits.
  auto parsed = ParseShardUrl(
      "shard(127.0.0.1:7701|127.0.0.1:7711|chaos(3,0.25,0)@127.0.0.1:7721,"
      "127.0.0.1:7702|127.0.0.1:7712;health_ms=50;hedge_ms=5)/pine-rtree");
  ASSERT_TRUE(parsed.ok()) << parsed.status().ToString();
  ASSERT_EQ(parsed->shards.size(), 2u);
  ASSERT_EQ(parsed->shards[0].size(), 3u);
  ASSERT_EQ(parsed->shards[1].size(), 2u);
  EXPECT_EQ(parsed->shards[0][0].endpoint.port, 7701);
  EXPECT_EQ(parsed->shards[0][1].endpoint.port, 7711);
  EXPECT_EQ(parsed->shards[0][2].endpoint.port, 7721);
  ASSERT_TRUE(parsed->shards[0][2].chaos.has_value());
  EXPECT_EQ(parsed->shards[0][2].chaos->seed, 3u);
  EXPECT_EQ(parsed->shards[1][1].endpoint.port, 7712);
  for (const auto& group : parsed->shards) {
    for (const auto& replica : group) {
      EXPECT_EQ(replica.endpoint.sut, "pine-rtree");
    }
  }
  EXPECT_DOUBLE_EQ(parsed->health_ms, 50.0);
  EXPECT_DOUBLE_EQ(parsed->hedge_ms, 5.0);
}

TEST(ShardUrlTest, ReplicaGroupsDoNotMoveTheRing) {
  // Ring identity is the primary replica's label: adding replicas to a slot
  // must not re-home any cell, or a grown cluster would read wrong shards.
  auto bare = ParseShardUrl("shard(127.0.0.1:7701,127.0.0.1:7702)/x");
  auto replicated = ParseShardUrl(
      "shard(127.0.0.1:7701|127.0.0.1:7711,"
      "127.0.0.1:7702|127.0.0.1:7712)/x");
  ASSERT_TRUE(bare.ok());
  ASSERT_TRUE(replicated.ok());
  auto driver_a = ShardDriver::Create(std::move(*bare));
  auto driver_b = ShardDriver::Create(std::move(*replicated));
  ASSERT_TRUE(driver_a.ok()) << driver_a.status().ToString();
  ASSERT_TRUE(driver_b.ok()) << driver_b.status().ToString();
  const Partitioner& pa = (*driver_a)->partitioner();
  const Partitioner& pb = (*driver_b)->partitioner();
  for (uint32_t c = 0; c < pa.num_cells(); ++c) {
    ASSERT_EQ(pa.OwnerShard(c), pb.OwnerShard(c)) << "cell " << c;
  }
  EXPECT_EQ((*driver_b)->num_replicas(0), 2u);
  EXPECT_FALSE((*driver_b)->replica_stale(0, 1));
}

TEST(ShardUrlTest, RejectsMalformedUrls) {
  EXPECT_FALSE(ParseShardUrl("shard()/pine-rtree").ok());
  EXPECT_FALSE(ParseShardUrl("shard(127.0.0.1:7701)").ok());        // no /sut
  EXPECT_FALSE(ParseShardUrl("shard(127.0.0.1:notaport)/x").ok());
  EXPECT_FALSE(ParseShardUrl("shard(127.0.0.1:7701;grid=17)/x").ok());
  EXPECT_FALSE(ParseShardUrl("shard(127.0.0.1:7701;margin=-1)/x").ok());
  EXPECT_FALSE(ParseShardUrl("shard(127.0.0.1:7701;bounds=1:2:3)/x").ok());
  EXPECT_FALSE(ParseShardUrl("shard(127.0.0.1:7701;wat=1)/x").ok());
  EXPECT_FALSE(ParseShardUrl("shard(127.0.0.1:7701/x").ok());  // unbalanced
  // Replica-group malformations: a bad replica spec and negative HA knobs.
  EXPECT_FALSE(ParseShardUrl("shard(127.0.0.1:7701|:bad)/x").ok());
  EXPECT_FALSE(ParseShardUrl("shard(127.0.0.1:7701;health_ms=-1)/x").ok());
  EXPECT_FALSE(ParseShardUrl("shard(127.0.0.1:7701;hedge_ms=-1)/x").ok());
}

// ---------------------------------------------------------------------------
// CombineStatuses: the scatter/failover error-priority lattice. Exercised
// directly because every distributed failure in the router funnels through
// it — a wrong pick surfaces as a retry loop hammering a dead cluster or a
// shed hint that undershoots the slowest shard.

Status MakeShed(uint32_t retry_after_ms) {
  Status s = Status::ResourceExhausted("shed");
  s.set_retry_after_ms(retry_after_ms);
  return s;
}

// kUnavailable + a retry hint is the breaker's fast-fail shape (status.h).
Status MakeFastFail(uint32_t retry_after_ms) {
  Status s = Status::Unavailable("breaker open");
  s.set_retry_after_ms(retry_after_ms);
  return s;
}

TEST(CombineStatusesTest, EmptyAndAllOkCombineToOk) {
  EXPECT_TRUE(CombineStatuses({}).ok());
  EXPECT_TRUE(CombineStatuses({Status::Ok(), Status::Ok()}).ok());
}

TEST(CombineStatusesTest, SingleErrorPassesThrough) {
  const Status only = Status::Unavailable("shard 1 down");
  const Status combined = CombineStatuses({Status::Ok(), only});
  EXPECT_EQ(combined.code(), StatusCode::kUnavailable);
  EXPECT_EQ(combined.message(), "shard 1 down");
}

TEST(CombineStatusesTest, NonRetryableBeatsEveryRetryClass) {
  const Status fatal = Status::InvalidArgument("bad sql");
  const Status combined = CombineStatuses(
      {MakeShed(500), fatal, Status::Unavailable("transient")});
  EXPECT_EQ(combined.code(), StatusCode::kInvalidArgument);
  EXPECT_EQ(combined.message(), "bad sql");
}

TEST(CombineStatusesTest, ShedBeatsBreakerFastFailAndKeepsMaxHint) {
  const Status combined =
      CombineStatuses({MakeFastFail(1000), MakeShed(100), MakeShed(250)});
  EXPECT_TRUE(IsShed(combined));
  EXPECT_EQ(combined.retry_after_ms(), 250u);
}

TEST(CombineStatusesTest, BreakerFastFailBeatsPlainTransientAndKeepsMaxHint) {
  const Status combined = CombineStatuses(
      {Status::Unavailable("transient"), MakeFastFail(50), MakeFastFail(90)});
  EXPECT_TRUE(IsBreakerFastFail(combined));
  EXPECT_EQ(combined.retry_after_ms(), 90u);
}

TEST(CombineStatusesTest, PlainTransientsFallBackToTheFirstError) {
  const Status combined =
      CombineStatuses({Status::Ok(), Status::Unavailable("first"),
                       Status::Unavailable("second")});
  EXPECT_EQ(combined.code(), StatusCode::kUnavailable);
  EXPECT_EQ(combined.message(), "first");
}

TEST(CombineStatusesTest, DeadlineExceededIsNonRetryableAndShortCircuits) {
  // A blown per-query deadline is not transient in this taxonomy — retrying
  // (or failing over) would just blow it again — so it outranks even a shed.
  const Status combined = CombineStatuses(
      {MakeShed(500), Status::DeadlineExceeded("query budget exhausted")});
  EXPECT_EQ(combined.code(), StatusCode::kDeadlineExceeded);
}

TEST(SerializeTest, RoundTripsThroughTheParser) {
  const std::vector<std::string> queries = {
      "SELECT * FROM edges",
      "SELECT e.tlid AS id, ST_Length(e.geom) FROM edges AS e "
      "WHERE ST_Intersects(e.geom, ST_GeomFromText('POINT(1 2)')) "
      "ORDER BY ST_Length(e.geom) DESC LIMIT 10",
      "SELECT COUNT(*), SUM(a.val + 1) FROM areas AS a "
      "WHERE a.val > 3.5 AND NOT a.flag GROUP BY a.kind",
      "SELECT c.name FROM county AS c, edges AS e "
      "WHERE ST_Crosses(e.geom, c.geom) AND e.mtfcc = 'S1100'",
      "INSERT INTO t VALUES (1, 'it''s', ST_GeomFromText('POINT(0 0)')), "
      "(2, NULL, NULL)",
      "CREATE TABLE t (id BIGINT, name VARCHAR, geom GEOMETRY)",
  };
  for (const std::string& sql : queries) {
    const std::string once = SerializeStatement(MustParse(sql));
    const std::string twice = SerializeStatement(MustParse(once));
    EXPECT_EQ(once, twice) << "not a fixpoint for: " << sql;
  }
}

// ---------------------------------------------------------------------------
// Mini cluster: N in-process engine databases standing in for N pinedb
// servers, plus a single-node reference database holding every row. Rows are
// routed exactly like ShardSession routes INSERTs; queries run through
// PlanSelect + MergeResults. Exactness = every merged result matches the
// reference database's answer for the original SQL.

class MiniCluster {
 public:
  explicit MiniCluster(size_t shards, PartitionConfig config = {})
      : part_(config, Names(shards)) {
    for (size_t i = 0; i < shards; ++i) {
      dbs_.push_back(std::make_unique<engine::Database>(
          engine::DatabaseOptions{}));
    }
    reference_ = std::make_unique<engine::Database>(engine::DatabaseOptions{});
  }

  const Partitioner& part() const { return part_; }
  const ShardCatalog& catalog() const { return catalog_; }

  void Ddl(const std::string& sql) {
    engine::Statement stmt = MustParse(sql);
    if (auto* ct = std::get_if<engine::CreateTableStatement>(&stmt)) {
      catalog_.AddFromDdl(*ct, /*replicated=*/false);
    }
    for (auto& db : dbs_) Exec(db.get(), sql);
    Exec(reference_.get(), sql);
  }

  // Routes one INSERT to every shard whose margin-expanded cells `env`
  // touches (the storage rule), and to the reference unconditionally.
  void Insert(const std::string& sql, const geom::Envelope& env) {
    const std::vector<uint32_t> cells = part_.CellsFor(env, part_.margin());
    for (size_t s : part_.ShardsFor(cells)) Exec(dbs_[s].get(), sql);
    Exec(reference_.get(), sql);
  }

  struct Outcome {
    ScatterPlan plan;
    engine::QueryResult sharded;
    engine::QueryResult reference;
  };

  Outcome Run(const std::string& sql) {
    Outcome out;
    engine::Statement stmt = MustParse(sql);
    auto* select = std::get_if<engine::SelectStatement>(&stmt);
    EXPECT_NE(select, nullptr) << sql;
    Result<ScatterPlan> plan = PlanSelect(*select, catalog_, part_);
    EXPECT_TRUE(plan.ok()) << sql << ": " << plan.status().ToString();
    if (!plan.ok()) return out;
    out.plan = std::move(*plan);
    std::vector<ShardBatch> batches;
    for (size_t s : out.plan.targets) {
      batches.push_back(ShardBatch{s, Exec(dbs_[s].get(), out.plan.subquery)});
    }
    if (out.plan.single_target) {
      out.sharded = std::move(batches[0].result);
    } else {
      Result<engine::QueryResult> merged =
          MergeResults(out.plan, part_, batches);
      EXPECT_TRUE(merged.ok()) << sql << ": " << merged.status().ToString();
      if (merged.ok()) out.sharded = std::move(*merged);
    }
    out.reference = Exec(reference_.get(), sql);
    return out;
  }

 private:
  static engine::QueryResult Exec(engine::Database* db,
                                  const std::string& sql) {
    Result<engine::QueryResult> result = db->Execute(sql);
    EXPECT_TRUE(result.ok()) << sql << ": " << result.status().ToString();
    return result.ok() ? std::move(*result) : engine::QueryResult{};
  }

  Partitioner part_;
  ShardCatalog catalog_;
  std::vector<std::unique_ptr<engine::Database>> dbs_;
  std::unique_ptr<engine::Database> reference_;
};

std::vector<std::string> RowStrings(const engine::QueryResult& r) {
  std::vector<std::string> out;
  for (const engine::Row& row : r.rows) {
    std::string s;
    for (const engine::Value& v : row) {
      s += v.ToDisplayString();
      s += '|';
    }
    out.push_back(std::move(s));
  }
  return out;
}

// Finds a rectangle (1 unit tall/wide around a border) straddling two cells
// owned by *different* shards, so dedup genuinely has duplicates to kill.
geom::Envelope StraddlingBox(const Partitioner& part) {
  const uint32_t side = part.config().GridSide();
  const double extent =
      (part.config().bounds.max_x() - part.config().bounds.min_x()) /
      static_cast<double>(side);
  for (uint32_t cy = 0; cy < side; ++cy) {
    for (uint32_t cx = 0; cx + 1 < side; ++cx) {
      if (part.OwnerShard(cy * side + cx) !=
          part.OwnerShard(cy * side + cx + 1)) {
        const double bx = part.config().bounds.min_x() +
                          static_cast<double>(cx + 1) * extent;
        const double by =
            part.config().bounds.min_y() + static_cast<double>(cy) * extent;
        return geom::Envelope(bx - 1.0, by + 1.0, bx + 1.0, by + 2.0);
      }
    }
  }
  ADD_FAILURE() << "no owner boundary found";
  return geom::Envelope(0, 0, 1, 1);
}

std::string RectWkt(const geom::Envelope& e) {
  return StrFormat(
      "POLYGON((%.3f %.3f, %.3f %.3f, %.3f %.3f, %.3f %.3f, %.3f %.3f))",
      e.min_x(), e.min_y(), e.max_x(), e.min_y(), e.max_x(), e.max_y(),
      e.min_x(), e.max_y(), e.min_x(), e.min_y());
}

constexpr const char* kItemsDdl =
    "CREATE TABLE items (id BIGINT, score BIGINT, geom GEOMETRY)";

void InsertPoint(MiniCluster* cluster, int64_t id, int64_t score, double x,
                 double y) {
  cluster->Insert(
      StrFormat("INSERT INTO items VALUES (%lld, %lld, "
                "ST_GeomFromText('POINT(%.3f %.3f)'))",
                static_cast<long long>(id), static_cast<long long>(score), x,
                y),
      geom::Envelope(x, y, x, y));
}

TEST(MergeTest, BorderStraddlersReportedOnce) {
  MiniCluster cluster(3);
  cluster.Ddl(kItemsDdl);
  const geom::Envelope box = StraddlingBox(cluster.part());
  // The straddler is stored on at least two shards; scattered points fill
  // the rest of the grid.
  cluster.Insert(StrFormat("INSERT INTO items VALUES (1, 10, "
                           "ST_GeomFromText('%s'))",
                           RectWkt(box).c_str()),
                 box);
  InsertPoint(&cluster, 2, 20, 3.0, 3.0);
  InsertPoint(&cluster, 3, 30, 50.0, 50.0);
  InsertPoint(&cluster, 4, 40, 97.0, 97.0);

  MiniCluster::Outcome out = cluster.Run("SELECT * FROM items");
  EXPECT_EQ(out.plan.mode, MergeMode::kConcat);
  EXPECT_FALSE(out.plan.pruned);
  EXPECT_EQ(out.sharded.rows.size(), 4u);  // the straddler only once
  EXPECT_EQ(out.sharded.Checksum(), out.reference.Checksum());
  EXPECT_EQ(out.sharded.columns, out.reference.columns);
}

TEST(MergeTest, ZeroRowShardContributesNothing) {
  MiniCluster cluster(2);
  cluster.Ddl(kItemsDdl);
  // Every row lands in cell (0,0)'s corner — one shard almost certainly
  // holds nothing, and the scatter still merges cleanly.
  for (int i = 0; i < 5; ++i) {
    InsertPoint(&cluster, i, i * 10, 1.0 + 0.1 * i, 1.0);
  }
  MiniCluster::Outcome out = cluster.Run("SELECT * FROM items");
  EXPECT_EQ(out.sharded.rows.size(), 5u);
  EXPECT_EQ(out.sharded.Checksum(), out.reference.Checksum());
}

TEST(MergeTest, OrderByTiesMatchSingleNodeOrder) {
  MiniCluster cluster(3);
  cluster.Ddl(kItemsDdl);
  // Tied scores on different shards: the merge must reproduce the single
  // node's deterministic tie order (canonical row order), not interleave
  // arbitrarily.
  InsertPoint(&cluster, 1, 7, 2.0, 2.0);
  InsertPoint(&cluster, 2, 7, 93.0, 7.0);
  InsertPoint(&cluster, 3, 7, 50.0, 93.0);
  InsertPoint(&cluster, 4, 1, 20.0, 80.0);
  InsertPoint(&cluster, 5, 9, 80.0, 20.0);

  MiniCluster::Outcome out =
      cluster.Run("SELECT i.id, i.score FROM items AS i ORDER BY i.score");
  EXPECT_EQ(out.plan.mode, MergeMode::kEngine);
  EXPECT_EQ(RowStrings(out.sharded), RowStrings(out.reference));
}

TEST(MergeTest, LimitCutoffAtShardBoundary) {
  MiniCluster cluster(3);
  cluster.Ddl(kItemsDdl);
  for (int i = 0; i < 12; ++i) {
    InsertPoint(&cluster, i, 100 - i, 3.0 + 8.0 * i, 3.0 + 8.0 * i);
  }
  // Top-k whose cutoff lands mid-shard: per-shard top-k pushdown plus the
  // global re-fold must agree with the reference exactly.
  MiniCluster::Outcome out = cluster.Run(
      "SELECT i.id FROM items AS i ORDER BY i.score DESC LIMIT 5");
  EXPECT_EQ(out.plan.mode, MergeMode::kEngine);
  // The pushdown: every subquery ships at most LIMIT rows per shard.
  EXPECT_NE(out.plan.subquery.find("LIMIT 5"), std::string::npos)
      << out.plan.subquery;
  EXPECT_EQ(out.sharded.rows.size(), 5u);
  EXPECT_EQ(RowStrings(out.sharded), RowStrings(out.reference));
}

TEST(MergeTest, PlainLimitCountsExactly) {
  MiniCluster cluster(2);
  cluster.Ddl(kItemsDdl);
  for (int i = 0; i < 10; ++i) {
    InsertPoint(&cluster, i, i, 5.0 + 9.0 * i, 50.0);
  }
  // LIMIT without ORDER BY: which rows is unspecified, but the count is
  // exact — and must not be eaten by dedup (LIMIT applies post-dedup).
  MiniCluster::Outcome out = cluster.Run("SELECT * FROM items LIMIT 7");
  EXPECT_EQ(out.sharded.rows.size(), 7u);
  // And the subquery must NOT push the limit down (a shard's first 7 rows
  // may include border duplicates destined for dedup).
  EXPECT_EQ(out.plan.subquery.find("LIMIT"), std::string::npos)
      << out.plan.subquery;
}

TEST(MergeTest, AggregatesAndGroupByAreExact) {
  MiniCluster cluster(3);
  cluster.Ddl(kItemsDdl);
  const geom::Envelope box = StraddlingBox(cluster.part());
  cluster.Insert(StrFormat("INSERT INTO items VALUES (100, 5, "
                           "ST_GeomFromText('%s'))",
                           RectWkt(box).c_str()),
                 box);
  for (int i = 0; i < 9; ++i) {
    InsertPoint(&cluster, i, i % 3, 4.0 + 10.0 * i, 60.0);
  }
  for (const char* sql : {
           "SELECT COUNT(*) FROM items",
           "SELECT SUM(i.score), MIN(i.id), MAX(i.id) FROM items AS i",
           "SELECT i.score, COUNT(*) FROM items AS i GROUP BY i.score "
           "ORDER BY i.score",
           "SELECT AVG(i.score) FROM items AS i WHERE i.id < 50",
       }) {
    MiniCluster::Outcome out = cluster.Run(sql);
    EXPECT_EQ(out.plan.mode, MergeMode::kEngine) << sql;
    EXPECT_EQ(RowStrings(out.sharded), RowStrings(out.reference)) << sql;
  }
}

TEST(MergeTest, PrunedWindowQueryIsExact) {
  MiniCluster cluster(4);
  cluster.Ddl(kItemsDdl);
  for (int i = 0; i < 16; ++i) {
    InsertPoint(&cluster, i, i, 3.0 + 6.0 * (i % 4), 3.0 + 6.0 * (i / 4));
  }
  MiniCluster::Outcome out = cluster.Run(
      "SELECT i.id FROM items AS i WHERE ST_Intersects(i.geom, "
      "ST_GeomFromText('POLYGON((0 0, 5 0, 5 5, 0 5, 0 0))'))");
  EXPECT_TRUE(out.plan.pruned);
  EXPECT_LT(out.plan.targets.size(), 4u);  // the window prunes shards
  EXPECT_EQ(out.sharded.Checksum(), out.reference.Checksum());
  EXPECT_EQ(out.sharded.rows.size(), out.reference.rows.size());
}

TEST(MergeTest, ColocatedSpatialJoinIsExact) {
  MiniCluster cluster(3);
  cluster.Ddl(kItemsDdl);
  cluster.Ddl("CREATE TABLE zones (zid BIGINT, geom GEOMETRY)");
  const geom::Envelope z1(0, 0, 30, 30), z2(40, 40, 90, 90);
  cluster.Insert(StrFormat("INSERT INTO zones VALUES (1, "
                           "ST_GeomFromText('%s'))",
                           RectWkt(z1).c_str()),
                 z1);
  cluster.Insert(StrFormat("INSERT INTO zones VALUES (2, "
                           "ST_GeomFromText('%s'))",
                           RectWkt(z2).c_str()),
                 z2);
  for (int i = 0; i < 10; ++i) {
    InsertPoint(&cluster, i, i, 5.0 + 9.0 * i, 5.0 + 9.0 * i);
  }
  MiniCluster::Outcome out = cluster.Run(
      "SELECT z.zid, i.id FROM zones AS z, items AS i "
      "WHERE ST_Contains(z.geom, i.geom)");
  EXPECT_EQ(out.sharded.Checksum(), out.reference.Checksum());
  EXPECT_EQ(out.sharded.rows.size(), out.reference.rows.size());
}

TEST(PlanTest, ClassificationAndErrors) {
  MiniCluster cluster(2);
  cluster.Ddl(kItemsDdl);
  cluster.Ddl("CREATE TABLE zones (zid BIGINT, geom GEOMETRY)");

  // Unknown table: the router's canonical error.
  engine::Statement stmt = MustParse("SELECT * FROM nope");
  Result<ScatterPlan> plan = PlanSelect(
      *std::get_if<engine::SelectStatement>(&stmt), cluster.catalog(),
      cluster.part());
  EXPECT_FALSE(plan.ok());
  EXPECT_EQ(plan.status().code(), StatusCode::kNotFound);

  // Partitioned-partitioned join without a co-locating spatial predicate.
  stmt = MustParse("SELECT * FROM items AS i, zones AS z WHERE i.id = z.zid");
  plan = PlanSelect(*std::get_if<engine::SelectStatement>(&stmt),
                    cluster.catalog(), cluster.part());
  EXPECT_FALSE(plan.ok());
  EXPECT_EQ(plan.status().code(), StatusCode::kInvalidArgument);

  // ST_DWithin beyond what the storage margin proves local.
  stmt = MustParse(
      "SELECT * FROM items AS i, zones AS z "
      "WHERE ST_DWithin(i.geom, z.geom, 50.0)");
  plan = PlanSelect(*std::get_if<engine::SelectStatement>(&stmt),
                    cluster.catalog(), cluster.part());
  EXPECT_FALSE(plan.ok());
  EXPECT_EQ(plan.status().code(), StatusCode::kInvalidArgument);
  EXPECT_NE(plan.status().message().find("margin"), std::string::npos);
}

TEST(PlanTest, SingleShardClusterPassesThrough) {
  MiniCluster cluster(1);
  cluster.Ddl(kItemsDdl);
  engine::Statement stmt =
      MustParse("SELECT COUNT(*) FROM items ORDER BY COUNT(*)");
  Result<ScatterPlan> plan = PlanSelect(
      *std::get_if<engine::SelectStatement>(&stmt), cluster.catalog(),
      cluster.part());
  ASSERT_TRUE(plan.ok()) << plan.status().ToString();
  EXPECT_TRUE(plan->single_target);
  EXPECT_EQ(plan->targets, (std::vector<size_t>{0}));
}

}  // namespace
}  // namespace jackpine::shard
