// Tests for the fault-tolerant execution layer (DESIGN.md "Fault model"):
// ExecContext deadlines / budgets / cancellation threaded through the
// engine, the chaos driver's deterministic fault injection at the Statement
// seam, the runner's retry policy and error taxonomy, and graceful
// degradation at suite and scenario level.

#include <atomic>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "client/client.h"
#include "common/exec_context.h"
#include "common/stopwatch.h"
#include "core/loader.h"
#include "core/report.h"
#include "core/runner.h"
#include "tigergen/tigergen.h"

namespace jackpine {
namespace {

tigergen::TigerDataset SmallDataset() {
  tigergen::TigerGenOptions gen;
  gen.scale = 0.05;
  gen.seed = 7;
  return tigergen::GenerateTiger(gen);
}

client::Connection LoadedConnection(const std::string& url) {
  auto conn = client::Connection::Open(url);
  EXPECT_TRUE(conn.ok()) << conn.status().ToString();
  EXPECT_TRUE(core::LoadDataset(SmallDataset(), &*conn).ok());
  return *std::move(conn);
}

// A connection whose cross join is genuinely slow (~2000 edges, so the
// unindexed exact join faces millions of candidate pairs): deadline and
// cancellation tests need a query that would run for seconds if the fault
// model failed to stop it.
client::Connection SlowScanConnection() {
  tigergen::TigerGenOptions gen;
  gen.scale = 0.5;
  gen.seed = 7;
  auto conn = client::Connection::Open("jackpine:pine-scan");
  EXPECT_TRUE(conn.ok()) << conn.status().ToString();
  EXPECT_TRUE(core::LoadDataset(tigergen::GenerateTiger(gen), &*conn).ok());
  return *std::move(conn);
}

// An unindexed exact-predicate cross join: the pathological query class the
// fault model exists for. On pine-scan this runs far longer than any
// deadline used below.
constexpr char kCrossJoinSql[] =
    "SELECT COUNT(*) FROM edges a, edges b "
    "WHERE ST_Intersects(a.geom, b.geom)";

// ---------------------------------------------------------------------------
// ExecContext unit behaviour.
// ---------------------------------------------------------------------------

TEST(ExecContextTest, UnlimitedContextAlwaysPasses) {
  ExecContext ctx;
  for (int i = 0; i < 3000; ++i) {
    EXPECT_TRUE(ctx.CheckTick().ok());
  }
  EXPECT_TRUE(ctx.ChargeRows(1 << 30).ok());
  EXPECT_TRUE(ctx.ChargeBytes(uint64_t{1} << 40).ok());
}

TEST(ExecContextTest, RowBudgetLatchesResourceExhausted) {
  ExecLimits limits;
  limits.max_rows = 10;
  ExecContext ctx(limits);
  EXPECT_TRUE(ctx.ChargeRows(10).ok());
  const Status first = ctx.ChargeRows(1);
  EXPECT_EQ(first.code(), StatusCode::kResourceExhausted);
  // The failure latches: every later check reports the same error.
  EXPECT_EQ(ctx.Check().code(), StatusCode::kResourceExhausted);
  EXPECT_EQ(ctx.CheckTick().code(), StatusCode::kResourceExhausted);
  EXPECT_EQ(ctx.ChargeRows(0).code(), StatusCode::kResourceExhausted);
}

TEST(ExecContextTest, ByteBudgetExhausts) {
  ExecLimits limits;
  limits.max_result_bytes = 100;
  ExecContext ctx(limits);
  EXPECT_TRUE(ctx.ChargeBytes(60).ok());
  EXPECT_EQ(ctx.ChargeBytes(60).code(), StatusCode::kResourceExhausted);
}

TEST(ExecContextTest, DeadlineExpires) {
  ExecLimits limits;
  limits.deadline_s = 0.005;
  ExecContext ctx(limits);
  EXPECT_TRUE(ctx.Check().ok());
  std::this_thread::sleep_for(std::chrono::milliseconds(10));
  EXPECT_EQ(ctx.Check().code(), StatusCode::kDeadlineExceeded);
}

TEST(ExecContextTest, CancellationWinsOverDeadline) {
  ExecLimits limits;
  limits.deadline_s = 3600.0;
  limits.cancel = std::make_shared<std::atomic<bool>>(false);
  ExecContext ctx(limits);
  EXPECT_TRUE(ctx.Check().ok());
  limits.cancel->store(true);
  EXPECT_EQ(ctx.Check().code(), StatusCode::kCancelled);
}

// ---------------------------------------------------------------------------
// Deadline / budget enforcement through the whole stack.
// ---------------------------------------------------------------------------

TEST(DeadlineTest, CrossJoinStopsWithinTwiceTheDeadline) {
  client::Connection conn = SlowScanConnection();
  client::Statement stmt = conn.CreateStatement();
  constexpr double kDeadline = 0.05;
  ExecLimits limits;
  limits.deadline_s = kDeadline;
  stmt.SetExecLimits(limits);
  Stopwatch watch;
  auto rs = stmt.ExecuteQuery(kCrossJoinSql);
  const double elapsed = watch.ElapsedSeconds();
  ASSERT_FALSE(rs.ok());
  EXPECT_EQ(rs.status().code(), StatusCode::kDeadlineExceeded);
  // Acceptance bound: the row-granular ticks must notice the deadline well
  // within 2x of the configured budget.
  EXPECT_LT(elapsed, 2 * kDeadline);
  // The connection stays usable after the timeout.
  auto ok_rs = stmt.ExecuteQuery("SELECT COUNT(*) FROM edges");
  EXPECT_TRUE(ok_rs.ok()) << ok_rs.status().ToString();
}

TEST(DeadlineTest, RowBudgetReturnsResourceExhausted) {
  client::Connection conn = LoadedConnection("jackpine:pine-rtree");
  client::Statement stmt = conn.CreateStatement();
  ExecLimits limits;
  limits.max_rows = 5;
  stmt.SetExecLimits(limits);
  auto rs = stmt.ExecuteQuery("SELECT tlid FROM edges");
  ASSERT_FALSE(rs.ok());
  EXPECT_EQ(rs.status().code(), StatusCode::kResourceExhausted);
}

TEST(DeadlineTest, MemoryBudgetReturnsResourceExhausted) {
  client::Connection conn = LoadedConnection("jackpine:pine-rtree");
  client::Statement stmt = conn.CreateStatement();
  ExecLimits limits;
  limits.max_result_bytes = 256;
  stmt.SetExecLimits(limits);
  auto rs = stmt.ExecuteQuery("SELECT geom FROM edges");
  ASSERT_FALSE(rs.ok());
  EXPECT_EQ(rs.status().code(), StatusCode::kResourceExhausted);
}

TEST(DeadlineTest, PresetCancelFlagAbortsQuery) {
  client::Connection conn = LoadedConnection("jackpine:pine-scan");
  client::Statement stmt = conn.CreateStatement();
  ExecLimits limits;
  limits.cancel = std::make_shared<std::atomic<bool>>(true);
  stmt.SetExecLimits(limits);
  auto rs = stmt.ExecuteQuery(kCrossJoinSql);
  ASSERT_FALSE(rs.ok());
  EXPECT_EQ(rs.status().code(), StatusCode::kCancelled);
}

TEST(DeadlineTest, ConcurrentCancellationStopsRunningQuery) {
  client::Connection conn = SlowScanConnection();
  client::Statement stmt = conn.CreateStatement();
  ExecLimits limits;
  limits.cancel = std::make_shared<std::atomic<bool>>(false);
  stmt.SetExecLimits(limits);
  std::thread canceller([flag = limits.cancel]() {
    std::this_thread::sleep_for(std::chrono::milliseconds(20));
    flag->store(true);
  });
  Stopwatch watch;
  auto rs = stmt.ExecuteQuery(kCrossJoinSql);
  canceller.join();
  ASSERT_FALSE(rs.ok());
  EXPECT_EQ(rs.status().code(), StatusCode::kCancelled);
  EXPECT_LT(watch.ElapsedSeconds(), 2.0);
}

// ---------------------------------------------------------------------------
// Chaos driver.
// ---------------------------------------------------------------------------

TEST(ChaosTest, ParsesUrlForm) {
  auto conn = client::Connection::Open("jackpine:chaos(42,0.25,3):pine-rtree");
  ASSERT_TRUE(conn.ok()) << conn.status().ToString();
  EXPECT_EQ(conn->config().name, "pine-rtree");
  ASSERT_NE(conn->chaos(), nullptr);
  EXPECT_EQ(conn->chaos()->config().seed, 42u);
  EXPECT_DOUBLE_EQ(conn->chaos()->config().error_rate, 0.25);
  EXPECT_DOUBLE_EQ(conn->chaos()->config().latency_ms, 3.0);
  // A plain URL carries no chaos state.
  auto plain = client::Connection::Open("jackpine:pine-rtree");
  ASSERT_TRUE(plain.ok());
  EXPECT_EQ(plain->chaos(), nullptr);
}

TEST(ChaosTest, RejectsMalformedSpecs) {
  EXPECT_FALSE(client::Connection::Open("jackpine:chaos(42):pine-rtree").ok());
  EXPECT_FALSE(
      client::Connection::Open("jackpine:chaos(42,2.0,0):pine-rtree").ok());
  EXPECT_FALSE(
      client::Connection::Open("jackpine:chaos(42,0.1,-1):pine-rtree").ok());
  EXPECT_FALSE(
      client::Connection::Open("jackpine:chaos(x,0.1,0):pine-rtree").ok());
  EXPECT_FALSE(client::Connection::Open("jackpine:chaos(42,0.1,0)").ok());
  EXPECT_FALSE(
      client::Connection::Open("jackpine:chaos(42,0.1,0):oracle").ok());
  EXPECT_FALSE(client::ParseChaosSpec("chaos(1,2,3").ok());
}

TEST(ChaosTest, InjectedLatencyClampsToDeadline) {
  // 60 s of injected latency against a 50 ms deadline: the sleep must be
  // clamped to the remaining budget and surface as kDeadlineExceeded, not
  // stall the client for the full injected delay.
  auto conn = client::Connection::Open("jackpine:chaos(5,0.0,60000):pine-rtree");
  ASSERT_TRUE(conn.ok()) << conn.status().ToString();
  client::Statement stmt = conn->CreateStatement();
  ASSERT_TRUE(stmt.ExecuteUpdate("CREATE TABLE t (x BIGINT)").ok());
  ExecLimits limits;
  limits.deadline_s = 0.05;
  stmt.SetExecLimits(limits);
  Stopwatch watch;
  auto rs = stmt.ExecuteQuery("SELECT COUNT(*) FROM t");
  ASSERT_FALSE(rs.ok());
  EXPECT_EQ(rs.status().code(), StatusCode::kDeadlineExceeded);
  EXPECT_NE(rs.status().message().find("chaos"), std::string::npos)
      << rs.status().message();
  EXPECT_LT(watch.ElapsedSeconds(), 2.0);  // nowhere near the 60 s delay
}

TEST(ChaosTest, ShortLatencyStillRunsUnderDeadline) {
  // Injected latency below the deadline delays but does not fail the query.
  auto conn = client::Connection::Open("jackpine:chaos(5,0.0,5):pine-rtree");
  ASSERT_TRUE(conn.ok()) << conn.status().ToString();
  client::Statement stmt = conn->CreateStatement();
  ASSERT_TRUE(stmt.ExecuteUpdate("CREATE TABLE t (x BIGINT)").ok());
  ExecLimits limits;
  limits.deadline_s = 30.0;
  stmt.SetExecLimits(limits);
  EXPECT_TRUE(stmt.ExecuteQuery("SELECT COUNT(*) FROM t").ok());
}

// Runs `n` identical queries through a fresh chaos connection and renders
// the outcome sequence as a string: "." for success, "[<status>]" for each
// failure (the status text includes the draw index).
std::string ChaosTrace(const std::string& url, int n) {
  auto conn = client::Connection::Open(url);
  EXPECT_TRUE(conn.ok()) << conn.status().ToString();
  client::Statement stmt = conn->CreateStatement();
  EXPECT_TRUE(stmt.ExecuteUpdate("CREATE TABLE t (x BIGINT)").ok());
  std::string trace;
  for (int i = 0; i < n; ++i) {
    auto rs = stmt.ExecuteQuery("SELECT COUNT(*) FROM t");
    trace += rs.ok() ? "." : "[" + rs.status().ToString() + "]";
  }
  return trace;
}

TEST(ChaosTest, SameSeedProducesByteIdenticalErrorSequence) {
  const std::string url = "jackpine:chaos(1234,0.3,0):pine-rtree";
  const std::string a = ChaosTrace(url, 60);
  const std::string b = ChaosTrace(url, 60);
  EXPECT_EQ(a, b);  // deterministic replay, byte for byte
  // The trace must actually mix successes and injected failures.
  EXPECT_NE(a.find('.'), std::string::npos);
  EXPECT_NE(a.find("Unavailable"), std::string::npos);
  // A different seed permutes the sequence.
  EXPECT_NE(a, ChaosTrace("jackpine:chaos(77,0.3,0):pine-rtree", 60));
}

TEST(ChaosTest, ZeroRateInjectsNothingAndBulkLoadIsNeverInjected) {
  // error-rate 1.0 would fail every query; the loader must still succeed
  // because ExecuteUpdate bypasses injection.
  client::Connection conn =
      LoadedConnection("jackpine:chaos(9,1.0,0):pine-rtree");
  client::Statement stmt = conn.CreateStatement();
  auto rs = stmt.ExecuteQuery("SELECT COUNT(*) FROM edges");
  ASSERT_FALSE(rs.ok());
  EXPECT_EQ(rs.status().code(), StatusCode::kUnavailable);
  // Zero rate: nothing injected even over many draws.
  auto quiet = client::Connection::Open("jackpine:chaos(9,0.0,0):pine-rtree");
  ASSERT_TRUE(quiet.ok());
  client::Statement qstmt = quiet->CreateStatement();
  ASSERT_TRUE(qstmt.ExecuteUpdate("CREATE TABLE t (x BIGINT)").ok());
  for (int i = 0; i < 100; ++i) {
    EXPECT_TRUE(qstmt.ExecuteQuery("SELECT COUNT(*) FROM t").ok());
  }
}

// ---------------------------------------------------------------------------
// Retrying runner.
// ---------------------------------------------------------------------------

core::QuerySpec CountEdgesSpec() {
  core::QuerySpec q;
  q.id = "count-edges";
  q.sql = "SELECT COUNT(*) FROM edges";
  return q;
}

TEST(RetryRunnerTest, TransientFailuresAreRetriedToSuccess) {
  client::Connection conn =
      LoadedConnection("jackpine:chaos(5,0.3,0):pine-rtree");
  core::RunConfig config;
  config.warmup = 1;
  config.repetitions = 3;
  config.retry.max_attempts = 10;
  config.retry.backoff_base_s = 1e-4;  // keep the test fast
  const core::RunResult r = core::RunQuery(&conn, CountEdgesSpec(), config);
  ASSERT_TRUE(r.ok) << r.error;
  // Every extra attempt beyond the 4 execution slots was a retried
  // transient, so the accounting identity must hold exactly.
  EXPECT_EQ(r.attempts, 4u + r.transient_errors);
  // Seeded stream: chaos(5, 0.3) injects at least one failure in the first
  // handful of draws, so the retry path genuinely ran.
  EXPECT_GT(r.transient_errors, 0u);
  EXPECT_EQ(r.timeouts, 0u);
  EXPECT_EQ(r.error_code, StatusCode::kOk);
}

TEST(RetryRunnerTest, NonTransientErrorsAreNotRetried) {
  client::Connection conn = LoadedConnection("jackpine:pine-rtree");
  core::QuerySpec bad;
  bad.id = "bad";
  bad.sql = "SELECT * FROM missing_table";
  core::RunConfig config;
  config.warmup = 1;
  config.retry.max_attempts = 5;
  const core::RunResult r = core::RunQuery(&conn, bad, config);
  EXPECT_FALSE(r.ok);
  EXPECT_EQ(r.attempts, 1u);  // NotFound is deterministic: one try only
  EXPECT_EQ(r.error_code, StatusCode::kNotFound);
}

TEST(RetryRunnerTest, DeadlineRecordedAsTimeoutAndSuiteContinues) {
  client::Connection conn = SlowScanConnection();
  core::RunConfig config;
  config.warmup = 0;
  config.repetitions = 1;
  config.limits.deadline_s = 0.03;
  core::QuerySpec slow;
  slow.id = "slow";
  slow.sql = kCrossJoinSql;
  std::vector<core::QuerySpec> suite = {slow, CountEdgesSpec()};
  Stopwatch watch;
  const std::vector<core::RunResult> results =
      core::RunSuite(&conn, suite, config);
  ASSERT_EQ(results.size(), 2u);
  EXPECT_FALSE(results[0].ok);
  EXPECT_EQ(results[0].error_code, StatusCode::kDeadlineExceeded);
  EXPECT_EQ(results[0].timeouts, 1u);
  EXPECT_EQ(results[0].attempts, 1u);  // timeouts never retry
  // The suite keeps going: the fast query after the hung one still runs.
  EXPECT_TRUE(results[1].ok) << results[1].error;
  // Both deadline-bounded, so the whole suite is fast.
  EXPECT_LT(watch.ElapsedSeconds(), 2.0);
}

TEST(RetryRunnerTest, ScenarioDegradesGracefully) {
  client::Connection conn = LoadedConnection("jackpine:pine-rtree");
  core::Scenario scenario;
  scenario.id = "mixed";
  scenario.name = "mixed demo";
  core::QuerySpec bad;
  bad.id = "bad";
  bad.sql = "SELECT * FROM missing_table";
  scenario.queries = {CountEdgesSpec(), bad, CountEdgesSpec()};
  core::RunConfig config;
  config.warmup = 0;
  config.repetitions = 2;
  const core::ScenarioResult r = core::RunScenario(&conn, scenario, config);
  EXPECT_EQ(r.failed, 1u);
  ASSERT_EQ(r.queries.size(), 3u);
  EXPECT_TRUE(r.queries[0].ok);
  EXPECT_FALSE(r.queries[1].ok);
  EXPECT_TRUE(r.queries[2].ok);
  // total_s sums exactly the successful queries' means.
  EXPECT_DOUBLE_EQ(
      r.total_s, r.queries[0].timing.mean_s + r.queries[2].timing.mean_s);
}

TEST(RetryRunnerTest, ConcurrentThroughputUnderChaosAccountsExactly) {
  client::Connection conn =
      LoadedConnection("jackpine:chaos(11,0.2,0):pine-rtree");
  std::vector<core::QuerySpec> workload(2);
  workload[0].sql = "SELECT COUNT(*) FROM edges";
  workload[1].sql =
      "SELECT COUNT(*) FROM pointlm WHERE ST_DWithin(geom, "
      "ST_MakePoint(50, 50), 20)";
  core::RunConfig config;
  config.retry.max_attempts = 2;
  config.retry.backoff_base_s = 1e-4;
  constexpr int kClients = 4;
  constexpr int kRounds = 10;
  const core::ThroughputResult t = core::RunConcurrentThroughput(
      &conn, workload, kClients, kRounds, config);
  // Every query slot lands in exactly one bucket: no slot is lost or double
  // counted even with seeded faults and retries racing across threads.
  EXPECT_EQ(t.queries_executed + t.errors,
            static_cast<size_t>(kClients) * kRounds * workload.size());
  EXPECT_GT(t.transient_errors, 0u);  // the 20% fault rate actually fired
  EXPECT_GT(t.QueriesPerSecond(), 0.0);
}

TEST(RetryRunnerTest, SequentialThroughputRecordsFaultCounters) {
  client::Connection conn =
      LoadedConnection("jackpine:chaos(3,0.5,0):pine-rtree");
  std::vector<core::QuerySpec> workload(1);
  workload[0].sql = "SELECT COUNT(*) FROM edges";
  core::RunConfig config;
  config.retry.max_attempts = 1;  // no retry: every injection is an error
  const core::ThroughputResult t =
      core::RunThroughput(&conn, workload, /*rounds=*/40, config);
  EXPECT_EQ(t.queries_executed + t.errors, 40u);
  EXPECT_EQ(t.errors, t.transient_errors);  // all failures were injections
  EXPECT_GT(t.errors, 0u);
  EXPECT_LT(t.errors, 40u);
}

TEST(RetryRunnerTest, RetryBudgetCapsTheRetrySequence) {
  // error-rate 1.0: every attempt fails with a transient injection, so only
  // the budget decides how many retries happen. Two tokens with no refill
  // allow exactly two retries: 3 attempts total, then one denial ends it
  // even though max_attempts would have allowed five.
  client::Connection conn =
      LoadedConnection("jackpine:chaos(5,1.0,0):pine-rtree");
  core::RunConfig config;
  config.warmup = 0;
  config.repetitions = 1;
  config.retry.max_attempts = 5;
  config.retry.backoff_base_s = 1e-4;
  config.retry.budget = std::make_shared<core::RetryBudget>(
      /*initial_tokens=*/2.0, /*max_tokens=*/2.0, /*fill_per_success=*/0.0);
  const core::RunResult r = core::RunQuery(&conn, CountEdgesSpec(), config);
  EXPECT_FALSE(r.ok);
  EXPECT_EQ(r.attempts, 3u);
  EXPECT_EQ(r.budget_denied, 1u);
  EXPECT_EQ(r.transient_errors, 3u);
  EXPECT_EQ(config.retry.budget->denied(), 1u);
  EXPECT_DOUBLE_EQ(config.retry.budget->tokens(), 0.0);
}

TEST(RetryRunnerTest, SuccessesRefillTheRetryBudget) {
  core::RetryBudget budget(/*initial_tokens=*/1.0, /*max_tokens=*/2.0,
                           /*fill_per_success=*/0.5);
  EXPECT_TRUE(budget.TryAcquire());   // 1.0 -> 0.0
  EXPECT_FALSE(budget.TryAcquire());  // empty: denied
  EXPECT_EQ(budget.denied(), 1u);
  budget.OnSuccess();
  budget.OnSuccess();                // 0.0 -> 1.0
  EXPECT_TRUE(budget.TryAcquire());
  for (int i = 0; i < 10; ++i) budget.OnSuccess();
  EXPECT_DOUBLE_EQ(budget.tokens(), 2.0);  // capped at max_tokens
}

// ---------------------------------------------------------------------------
// Error-taxonomy report.
// ---------------------------------------------------------------------------

TEST(ErrorTaxonomyTest, RendersPerSutCounts) {
  core::RunResult ok;
  ok.sut = "pine-rtree";
  ok.ok = true;
  ok.attempts = 1;
  core::RunResult timeout = ok;
  timeout.ok = false;
  timeout.error_code = StatusCode::kDeadlineExceeded;
  timeout.timeouts = 1;
  core::RunResult flaky = ok;
  flaky.sut = "pine-scan";
  flaky.ok = false;
  flaky.error_code = StatusCode::kUnavailable;
  flaky.transient_errors = 3;
  flaky.attempts = 3;
  const std::string table = core::RenderErrorTaxonomyTable(
      "fault taxonomy", {{ok, timeout}, {flaky}});
  EXPECT_NE(table.find("== fault taxonomy =="), std::string::npos);
  EXPECT_NE(table.find("pine-rtree"), std::string::npos);
  EXPECT_NE(table.find("DeadlineExceeded x1"), std::string::npos);
  EXPECT_NE(table.find("Unavailable x1"), std::string::npos);
  // Clean SUT rows show "-" in the final-errors column.
  const std::string clean =
      core::RenderErrorTaxonomyTable("clean", {{ok}});
  EXPECT_NE(clean.find("-"), std::string::npos);
}

TEST(ErrorTaxonomyTest, EndToEndChaosRunFeedsTaxonomy) {
  client::Connection conn =
      LoadedConnection("jackpine:chaos(21,0.4,0):pine-rtree");
  core::RunConfig config;
  config.warmup = 0;
  config.repetitions = 2;
  config.retry.max_attempts = 1;  // surface the injections as final errors
  std::vector<core::QuerySpec> suite = {CountEdgesSpec()};
  const auto runs = core::RunSuite(&conn, suite, config);
  const std::string table =
      core::RenderErrorTaxonomyTable("chaos run", {runs});
  EXPECT_NE(table.find("chaos run"), std::string::npos);
  EXPECT_NE(table.find("pine-rtree"), std::string::npos);
}

}  // namespace
}  // namespace jackpine
