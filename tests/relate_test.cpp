// Tests for the Relate engine: full DE-9IM matrices for representative
// geometry configurations of every dimension pair.

#include <gtest/gtest.h>

#include "geom/wkt_reader.h"
#include "topo/relate.h"

namespace jackpine::topo {
namespace {

using geom::Geometry;

Geometry Wkt(const std::string& s) {
  auto r = geom::GeometryFromWkt(s);
  EXPECT_TRUE(r.ok()) << s << ": " << r.status().ToString();
  return std::move(r).value();
}

std::string M(const std::string& a, const std::string& b) {
  return Relate(Wkt(a), Wkt(b)).ToString();
}

// --- point / point ----------------------------------------------------------

TEST(RelateTest, PointPointEqual) {
  EXPECT_EQ(M("POINT (1 1)", "POINT (1 1)"), "0FFFFFFF2");
}

TEST(RelateTest, PointPointDistinct) {
  EXPECT_EQ(M("POINT (1 1)", "POINT (2 2)"), "FF0FFF0F2");
}

// --- point / line ------------------------------------------------------------

TEST(RelateTest, PointOnLineInterior) {
  EXPECT_EQ(M("POINT (1 0)", "LINESTRING (0 0, 2 0)"), "0FFFFF102");
}

TEST(RelateTest, PointOnLineEndpoint) {
  EXPECT_EQ(M("POINT (0 0)", "LINESTRING (0 0, 2 0)"), "F0FFFF102");
}

TEST(RelateTest, PointOffLine) {
  EXPECT_EQ(M("POINT (5 5)", "LINESTRING (0 0, 2 0)"), "FF0FFF102");
}

// --- point / polygon -----------------------------------------------------------

TEST(RelateTest, PointInPolygon) {
  EXPECT_EQ(M("POINT (1 1)", "POLYGON ((0 0, 2 0, 2 2, 0 2, 0 0))"),
            "0FFFFF212");
}

TEST(RelateTest, PointOnPolygonBoundary) {
  EXPECT_EQ(M("POINT (2 1)", "POLYGON ((0 0, 2 0, 2 2, 0 2, 0 0))"),
            "F0FFFF212");
}

TEST(RelateTest, PointOutsidePolygon) {
  EXPECT_EQ(M("POINT (9 9)", "POLYGON ((0 0, 2 0, 2 2, 0 2, 0 0))"),
            "FF0FFF212");
}

// --- line / line -----------------------------------------------------------------

TEST(RelateTest, LinesCrossProperly) {
  EXPECT_EQ(M("LINESTRING (0 0, 2 2)", "LINESTRING (0 2, 2 0)"),
            "0F1FF0102");
}

TEST(RelateTest, LinesTouchAtEndpoints) {
  EXPECT_EQ(M("LINESTRING (0 0, 1 1)", "LINESTRING (1 1, 2 0)"),
            "FF1F00102");
}

TEST(RelateTest, LineEndpointTouchesInterior) {
  // B's endpoint is interior to A and vice versa? Here A's endpoint (1,0)
  // lies in the middle of B.
  EXPECT_EQ(M("LINESTRING (1 0, 1 5)", "LINESTRING (0 0, 2 0)"),
            "FF10F0102");
}

TEST(RelateTest, EqualLines) {
  EXPECT_EQ(M("LINESTRING (0 0, 2 0)", "LINESTRING (0 0, 2 0)"),
            "1FFF0FFF2");
}

TEST(RelateTest, LineWithinLongerLine) {
  EXPECT_EQ(M("LINESTRING (1 0, 2 0)", "LINESTRING (0 0, 4 0)"),
            "1FF0FF102");
}

TEST(RelateTest, PartialCollinearOverlap) {
  EXPECT_EQ(M("LINESTRING (0 0, 2 0)", "LINESTRING (1 0, 3 0)"),
            "1010F0102");
}

TEST(RelateTest, DisjointLines) {
  EXPECT_EQ(M("LINESTRING (0 0, 1 0)", "LINESTRING (0 5, 1 5)"),
            "FF1FF0102");
}

// --- line / polygon ----------------------------------------------------------------

TEST(RelateTest, LineCrossesPolygon) {
  EXPECT_EQ(
      M("LINESTRING (-1 1, 3 1)", "POLYGON ((0 0, 2 0, 2 2, 0 2, 0 0))"),
      "101FF0212");
}

TEST(RelateTest, LineWithinPolygon) {
  EXPECT_EQ(
      M("LINESTRING (0.5 1, 1.5 1)", "POLYGON ((0 0, 2 0, 2 2, 0 2, 0 0))"),
      "1FF0FF212");
}

TEST(RelateTest, LineTouchesPolygonBoundaryAlongEdge) {
  EXPECT_EQ(
      M("LINESTRING (0 0, 2 0)", "POLYGON ((0 0, 2 0, 2 2, 0 2, 0 0))"),
      "F1FF0F212");
}

TEST(RelateTest, LineTouchesPolygonAtPoint) {
  EXPECT_EQ(
      M("LINESTRING (2 1, 4 1)", "POLYGON ((0 0, 2 0, 2 2, 0 2, 0 0))"),
      "FF1F00212");
}

TEST(RelateTest, LineDisjointFromPolygon) {
  EXPECT_EQ(
      M("LINESTRING (5 5, 6 6)", "POLYGON ((0 0, 2 0, 2 2, 0 2, 0 0))"),
      "FF1FF0212");
}

TEST(RelateTest, LineEnteringThroughBoundaryEndingInside) {
  EXPECT_EQ(
      M("LINESTRING (-1 1, 1 1)", "POLYGON ((0 0, 2 0, 2 2, 0 2, 0 0))"),
      "1010F0212");
}

// --- polygon / polygon -------------------------------------------------------------

TEST(RelateTest, OverlappingPolygons) {
  EXPECT_EQ(M("POLYGON ((0 0, 2 0, 2 2, 0 2, 0 0))",
              "POLYGON ((1 1, 3 1, 3 3, 1 3, 1 1))"),
            "212101212");
}

TEST(RelateTest, EqualPolygons) {
  EXPECT_EQ(M("POLYGON ((0 0, 2 0, 2 2, 0 2, 0 0))",
              "POLYGON ((0 0, 2 0, 2 2, 0 2, 0 0))"),
            "2FFF1FFF2");
}

TEST(RelateTest, PolygonProperlyInside) {
  EXPECT_EQ(M("POLYGON ((1 1, 2 1, 2 2, 1 2, 1 1))",
              "POLYGON ((0 0, 4 0, 4 4, 0 4, 0 0))"),
            "2FF1FF212");
}

TEST(RelateTest, PolygonsShareEdgeOnly) {
  EXPECT_EQ(M("POLYGON ((0 0, 2 0, 2 2, 0 2, 0 0))",
              "POLYGON ((2 0, 4 0, 4 2, 2 2, 2 0))"),
            "FF2F11212");
}

TEST(RelateTest, PolygonsShareCornerOnly) {
  EXPECT_EQ(M("POLYGON ((0 0, 2 0, 2 2, 0 2, 0 0))",
              "POLYGON ((2 2, 4 2, 4 4, 2 4, 2 2))"),
            "FF2F01212");
}

TEST(RelateTest, DisjointPolygons) {
  EXPECT_EQ(M("POLYGON ((0 0, 1 0, 1 1, 0 1, 0 0))",
              "POLYGON ((5 5, 6 5, 6 6, 5 6, 5 5))"),
            "FF2FF1212");
}

TEST(RelateTest, PolygonInsideHoleIsDisjoint) {
  EXPECT_EQ(M("POLYGON ((4 4, 6 4, 6 6, 4 6, 4 4))",
              "POLYGON ((0 0, 10 0, 10 10, 0 10, 0 0), "
              "(3 3, 3 7, 7 7, 7 3, 3 3))"),
            "FF2FF1212");
}

TEST(RelateTest, InnerPolygonTouchingBoundaryFromInside) {
  EXPECT_EQ(M("POLYGON ((0 0, 2 0, 2 2, 0 2, 0 0))",
              "POLYGON ((0 0, 4 0, 4 4, 0 4, 0 0))"),
            "2FF11F212");
}

// --- empties --------------------------------------------------------------------

TEST(RelateTest, EmptyVersusPolygon) {
  EXPECT_EQ(M("POLYGON EMPTY", "POLYGON ((0 0, 1 0, 1 1, 0 1, 0 0))"),
            "FFFFFF212");
  EXPECT_EQ(M("POLYGON ((0 0, 1 0, 1 1, 0 1, 0 0))", "POLYGON EMPTY"),
            "FF2FF1FF2");
  EXPECT_EQ(M("POINT EMPTY", "POINT EMPTY"), "FFFFFFFF2");
}

// --- multi geometries -------------------------------------------------------------

TEST(RelateTest, MultiPointAgainstPolygon) {
  EXPECT_EQ(M("MULTIPOINT ((1 1), (9 9))",
              "POLYGON ((0 0, 2 0, 2 2, 0 2, 0 0))"),
            "0F0FFF212");
}

TEST(RelateTest, MultiLineStringBoundaryModTwo) {
  // Two segments joined at (1,0): the join is interior, outer ends are
  // boundary; relate against a point at the join must report interior.
  EXPECT_EQ(M("MULTILINESTRING ((0 0, 1 0), (1 0, 2 0))", "POINT (1 0)"),
            "0F1FF0FF2");
}

TEST(RelateTest, RelateMatchesHelper) {
  EXPECT_TRUE(RelateMatches(Wkt("POINT (1 1)"),
                            Wkt("POLYGON ((0 0, 2 0, 2 2, 0 2, 0 0))"),
                            "T*F**F***"));  // within
  EXPECT_FALSE(RelateMatches(Wkt("POINT (5 5)"),
                             Wkt("POLYGON ((0 0, 2 0, 2 2, 0 2, 0 0))"),
                             "T*F**F***"));
}

}  // namespace
}  // namespace jackpine::topo
