// Tests for the synthetic TIGER-like dataset generator: determinism, schema
// properties, spatial structure (county tiling, urban skew, address ranges).

#include <set>

#include <gtest/gtest.h>

#include "algo/measures.h"
#include "topo/predicates.h"
#include "tigergen/tigergen.h"

namespace jackpine::tigergen {
namespace {

TigerGenOptions SmallOptions() {
  TigerGenOptions options;
  options.scale = 0.1;
  options.seed = 42;
  return options;
}

TEST(TigerGenTest, DeterministicInSeed) {
  const TigerDataset a = GenerateTiger(SmallOptions());
  const TigerDataset b = GenerateTiger(SmallOptions());
  ASSERT_EQ(a.TotalRows(), b.TotalRows());
  for (size_t i = 0; i < a.edges.size(); ++i) {
    EXPECT_TRUE(a.edges[i].geom.ExactlyEquals(b.edges[i].geom));
    EXPECT_EQ(a.edges[i].fullname, b.edges[i].fullname);
  }
  TigerGenOptions other = SmallOptions();
  other.seed = 43;
  const TigerDataset c = GenerateTiger(other);
  EXPECT_FALSE(a.edges[0].geom.ExactlyEquals(c.edges[0].geom));
}

TEST(TigerGenTest, ScaleControlsCardinalities) {
  TigerGenOptions small = SmallOptions();
  TigerGenOptions big = SmallOptions();
  big.scale = 0.4;
  const TigerDataset s = GenerateTiger(small);
  const TigerDataset b = GenerateTiger(big);
  EXPECT_NEAR(static_cast<double>(b.edges.size()) / s.edges.size(), 4.0, 0.5);
  EXPECT_GT(b.pointlm.size(), s.pointlm.size());
  // TIGER-like ratios: edges dominate everything.
  EXPECT_GT(s.edges.size(), s.pointlm.size());
  EXPECT_GT(s.pointlm.size(), s.counties.size());
}

TEST(TigerGenTest, CountiesTileTheExtentWithSharedBoundaries) {
  const TigerDataset ds = GenerateTiger(SmallOptions());
  ASSERT_GE(ds.counties.size(), 4u);
  // Total county area == extent area (a partition).
  double total = 0.0;
  for (const County& c : ds.counties) total += algo::Area(c.geom);
  EXPECT_NEAR(total, ds.extent.Area(), ds.extent.Area() * 1e-9);
  // Adjacent counties touch; at least one touching pair must exist, and no
  // two counties overlap.
  int touching = 0;
  for (size_t i = 0; i < ds.counties.size(); ++i) {
    for (size_t j = i + 1; j < ds.counties.size(); ++j) {
      if (topo::Touches(ds.counties[i].geom, ds.counties[j].geom)) ++touching;
      EXPECT_FALSE(topo::Overlaps(ds.counties[i].geom, ds.counties[j].geom));
    }
  }
  EXPECT_GT(touching, 0);
  // Distinct FIPS codes.
  std::set<int64_t> fips;
  for (const County& c : ds.counties) fips.insert(c.fips);
  EXPECT_EQ(fips.size(), ds.counties.size());
}

TEST(TigerGenTest, EdgesHaveValidGeometryAndAddresses) {
  const TigerDataset ds = GenerateTiger(SmallOptions());
  ASSERT_FALSE(ds.edges.empty());
  size_t addressable = 0;
  for (const Edge& e : ds.edges) {
    EXPECT_EQ(e.geom.type(), geom::GeometryType::kLineString);
    EXPECT_GE(e.geom.NumPoints(), 2u);
    EXPECT_TRUE(e.geom.Validate().ok());
    EXPECT_TRUE(ds.extent.Contains(e.geom.envelope()));
    EXPECT_TRUE(e.mtfcc == "S1100" || e.mtfcc == "S1200" ||
                e.mtfcc == "S1400");
    if (e.ltoadd > e.lfromadd) {
      ++addressable;
      // Left side even, right side odd (the TIGER convention).
      EXPECT_EQ(e.lfromadd % 2, 0);
      EXPECT_EQ(e.rfromadd % 2, 1);
      EXPECT_LT(e.rfromadd, e.rtoadd);
    }
  }
  EXPECT_GT(addressable, ds.edges.size() / 2);
}

TEST(TigerGenTest, UrbanSkewConcentratesLocalRoads) {
  TigerGenOptions options = SmallOptions();
  options.scale = 0.3;
  const TigerDataset ds = GenerateTiger(options);
  // Count local roads within 10% of the extent of any urban centre vs a
  // same-total-area set of control discs; skew means urban wins clearly.
  const double radius = ds.extent.Width() * 0.1;
  size_t near_urban = 0;
  for (const Edge& e : ds.edges) {
    if (e.mtfcc != "S1400") continue;
    const geom::Coord c = e.geom.envelope().Center();
    for (const geom::Coord& u : ds.urban_centers) {
      if (geom::DistanceBetween(c, u) < radius) {
        ++near_urban;
        break;
      }
    }
  }
  size_t total_local = 0;
  for (const Edge& e : ds.edges) {
    if (e.mtfcc == "S1400") ++total_local;
  }
  // Urban discs cover ~ pi r^2 * centers / extent^2 of the area; with 4ish
  // centers and r = 10% that is ~13% of the area. Local roads should be far
  // more concentrated than uniform.
  EXPECT_GT(static_cast<double>(near_urban) / total_local, 0.35);
}

TEST(TigerGenTest, LandmarksAndWaterAreValidPolygons) {
  const TigerDataset ds = GenerateTiger(SmallOptions());
  for (const AreaLandmark& a : ds.arealm) {
    EXPECT_EQ(a.geom.type(), geom::GeometryType::kPolygon);
    EXPECT_TRUE(a.geom.Validate().ok()) << a.fullname;
    EXPECT_GT(algo::Area(a.geom), 0.0);
  }
  for (const AreaWater& w : ds.areawater) {
    EXPECT_TRUE(w.geom.Validate().ok()) << w.fullname;
    EXPECT_NEAR(w.areasqm, algo::Area(w.geom) * 1e6,
                std::abs(w.areasqm) * 1e-9);
  }
  for (const PointLandmark& p : ds.pointlm) {
    EXPECT_EQ(p.geom.type(), geom::GeometryType::kPoint);
    EXPECT_TRUE(ds.extent.Contains(p.geom.AsPoint()));
  }
}

TEST(TigerGenTest, CountyAssignmentsAreRealFips) {
  const TigerDataset ds = GenerateTiger(SmallOptions());
  std::set<int64_t> fips;
  for (const County& c : ds.counties) fips.insert(c.fips);
  for (const Edge& e : ds.edges) EXPECT_TRUE(fips.count(e.county_fips));
  for (const PointLandmark& p : ds.pointlm) {
    EXPECT_TRUE(fips.count(p.county_fips));
  }
}

}  // namespace
}  // namespace jackpine::tigergen
