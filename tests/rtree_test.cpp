// Tests for the R-tree: insertion, STR bulk load, window queries, k-NN,
// structural invariants.

#include <algorithm>
#include <set>

#include <gtest/gtest.h>

#include "common/random.h"
#include "index/rtree.h"

namespace jackpine::index {
namespace {

using geom::Coord;
using geom::Envelope;

std::vector<IndexEntry> GridEntries(int n_per_side) {
  std::vector<IndexEntry> entries;
  int64_t id = 0;
  for (int y = 0; y < n_per_side; ++y) {
    for (int x = 0; x < n_per_side; ++x) {
      entries.push_back(
          {Envelope(x, y, x + 0.5, y + 0.5), id++});
    }
  }
  return entries;
}

TEST(RTreeTest, EmptyTree) {
  RTree tree;
  EXPECT_EQ(tree.size(), 0u);
  std::vector<int64_t> out;
  tree.Query(Envelope(0, 0, 100, 100), &out);
  EXPECT_TRUE(out.empty());
  tree.Nearest({0, 0}, 5, &out);
  EXPECT_TRUE(out.empty());
}

TEST(RTreeTest, SingleEntry) {
  RTree tree;
  tree.Insert(Envelope(1, 1, 2, 2), 42);
  std::vector<int64_t> out;
  tree.Query(Envelope(0, 0, 3, 3), &out);
  ASSERT_EQ(out.size(), 1u);
  EXPECT_EQ(out[0], 42);
  out.clear();
  tree.Query(Envelope(5, 5, 6, 6), &out);
  EXPECT_TRUE(out.empty());
}

TEST(RTreeTest, WindowQueryExactness) {
  RTree tree;
  for (const IndexEntry& e : GridEntries(20)) tree.Insert(e.box, e.id);
  EXPECT_EQ(tree.size(), 400u);
  std::vector<int64_t> out;
  // Window covering cells (2..4) x (2..4) fully and partially.
  tree.Query(Envelope(2.1, 2.1, 4.4, 4.4), &out);
  std::set<int64_t> got(out.begin(), out.end());
  std::set<int64_t> expected;
  for (int y = 2; y <= 4; ++y) {
    for (int x = 2; x <= 4; ++x) expected.insert(y * 20 + x);
  }
  EXPECT_EQ(got, expected);
}

TEST(RTreeTest, BulkLoadMatchesInsertResults) {
  const auto entries = GridEntries(15);
  RTree inserted;
  for (const IndexEntry& e : entries) inserted.Insert(e.box, e.id);
  RTree bulk;
  bulk.BulkLoad(entries);
  EXPECT_EQ(bulk.size(), inserted.size());

  jackpine::Rng rng(3);
  for (int i = 0; i < 50; ++i) {
    const double x = rng.NextDouble(0, 15);
    const double y = rng.NextDouble(0, 15);
    Envelope w(x, y, x + rng.NextDouble(0, 5), y + rng.NextDouble(0, 5));
    std::vector<int64_t> a, b;
    inserted.Query(w, &a);
    bulk.Query(w, &b);
    std::sort(a.begin(), a.end());
    std::sort(b.begin(), b.end());
    EXPECT_EQ(a, b);
  }
}

TEST(RTreeTest, StrBulkLoadIsShallow) {
  RTree tree(16);
  tree.BulkLoad(GridEntries(40));  // 1600 entries
  EXPECT_EQ(tree.size(), 1600u);
  // 1600 entries at fanout 16: leaves=100, level2=7, root -> height 3.
  EXPECT_LE(tree.Height(), 4);
  EXPECT_GE(tree.Height(), 3);
  EXPECT_GT(tree.NodeCount(), 100u);
}

TEST(RTreeTest, NearestBasics) {
  RTree tree;
  tree.Insert(Envelope(0, 0, 0, 0), 1);
  tree.Insert(Envelope(5, 0, 5, 0), 2);
  tree.Insert(Envelope(10, 0, 10, 0), 3);
  std::vector<int64_t> out;
  tree.Nearest({6, 0}, 2, &out);
  ASSERT_EQ(out.size(), 2u);
  EXPECT_EQ(out[0], 2);  // distance 1
  EXPECT_EQ(out[1], 3);  // distance 4
}

TEST(RTreeTest, NearestKLargerThanSize) {
  RTree tree;
  tree.Insert(Envelope(0, 0, 1, 1), 1);
  tree.Insert(Envelope(2, 2, 3, 3), 2);
  std::vector<int64_t> out;
  tree.Nearest({0, 0}, 10, &out);
  EXPECT_EQ(out.size(), 2u);
}

TEST(RTreeTest, NearestMatchesBruteForce) {
  jackpine::Rng rng(7);
  RTree tree;
  std::vector<IndexEntry> entries;
  for (int i = 0; i < 500; ++i) {
    const double x = rng.NextDouble(0, 100);
    const double y = rng.NextDouble(0, 100);
    Envelope box(x, y, x + rng.NextDouble(0, 2), y + rng.NextDouble(0, 2));
    entries.push_back({box, i});
    tree.Insert(box, i);
  }
  for (int probe = 0; probe < 20; ++probe) {
    const Coord p{rng.NextDouble(0, 100), rng.NextDouble(0, 100)};
    std::vector<int64_t> got;
    tree.Nearest(p, 10, &got);
    ASSERT_EQ(got.size(), 10u);
    // Brute-force reference.
    std::vector<std::pair<double, int64_t>> ref;
    for (const IndexEntry& e : entries) {
      ref.emplace_back(e.box.DistanceTo(p), e.id);
    }
    std::sort(ref.begin(), ref.end());
    // Distances must match (ids may tie-swap).
    for (size_t k = 0; k < got.size(); ++k) {
      double got_dist = 0.0;
      for (const IndexEntry& e : entries) {
        if (e.id == got[k]) got_dist = e.box.DistanceTo(p);
      }
      EXPECT_NEAR(got_dist, ref[k].first, 1e-12);
    }
  }
}

TEST(RTreeTest, DuplicateBoxesAllRetrievable) {
  RTree tree;
  for (int i = 0; i < 100; ++i) tree.Insert(Envelope(1, 1, 2, 2), i);
  std::vector<int64_t> out;
  tree.Query(Envelope(0, 0, 3, 3), &out);
  EXPECT_EQ(out.size(), 100u);
}

TEST(RTreeTest, HugeInsertLoadStaysBalanced) {
  jackpine::Rng rng(11);
  RTree tree;
  for (int i = 0; i < 5000; ++i) {
    const double x = rng.NextDouble(0, 1000);
    const double y = rng.NextDouble(0, 1000);
    tree.Insert(Envelope(x, y, x + 1, y + 1), i);
  }
  EXPECT_EQ(tree.size(), 5000u);
  EXPECT_LE(tree.Height(), 6);
  std::vector<int64_t> out;
  tree.Query(Envelope(0, 0, 1000, 1000), &out);
  EXPECT_EQ(out.size(), 5000u);
}

}  // namespace
}  // namespace jackpine::index
