// Tests for linear referencing: interpolation, location, closest point,
// substrings — the geocoding substrate.

#include <gtest/gtest.h>

#include "algo/linear_reference.h"
#include "algo/measures.h"
#include "geom/wkt_reader.h"

namespace jackpine::algo {
namespace {

using geom::Coord;
using geom::Geometry;

Geometry Wkt(const std::string& s) {
  auto r = geom::GeometryFromWkt(s);
  EXPECT_TRUE(r.ok()) << r.status().ToString();
  return std::move(r).value();
}

TEST(LinearRefTest, InterpolateEndpointsAndMid) {
  Geometry line = Wkt("LINESTRING (0 0, 10 0)");
  EXPECT_EQ(LineInterpolatePoint(line, 0.0)->AsPoint(), (Coord{0, 0}));
  EXPECT_EQ(LineInterpolatePoint(line, 1.0)->AsPoint(), (Coord{10, 0}));
  EXPECT_EQ(LineInterpolatePoint(line, 0.5)->AsPoint(), (Coord{5, 0}));
}

TEST(LinearRefTest, InterpolateIsArcLengthNotVertexCount) {
  // Two segments with very different lengths.
  Geometry line = Wkt("LINESTRING (0 0, 1 0, 10 0)");
  EXPECT_EQ(LineInterpolatePoint(line, 0.5)->AsPoint(), (Coord{5, 0}));
}

TEST(LinearRefTest, InterpolateClampsFraction) {
  Geometry line = Wkt("LINESTRING (0 0, 10 0)");
  EXPECT_EQ(LineInterpolatePoint(line, -0.5)->AsPoint(), (Coord{0, 0}));
  EXPECT_EQ(LineInterpolatePoint(line, 1.5)->AsPoint(), (Coord{10, 0}));
}

TEST(LinearRefTest, InterpolateRejectsNonLine) {
  EXPECT_FALSE(LineInterpolatePoint(Geometry::MakePoint(0, 0), 0.5).ok());
  EXPECT_FALSE(
      LineInterpolatePoint(Geometry::MakeEmpty(geom::GeometryType::kLineString),
                           0.5)
          .ok());
}

TEST(LinearRefTest, LocatePointBasics) {
  Geometry line = Wkt("LINESTRING (0 0, 10 0)");
  EXPECT_DOUBLE_EQ(*LineLocatePoint(line, {5, 3}), 0.5);
  EXPECT_DOUBLE_EQ(*LineLocatePoint(line, {-4, 0}), 0.0);
  EXPECT_DOUBLE_EQ(*LineLocatePoint(line, {14, 2}), 1.0);
}

TEST(LinearRefTest, LocateRoundTripsInterpolate) {
  Geometry line = Wkt("LINESTRING (0 0, 4 3, 8 0, 12 3)");
  for (double f : {0.1, 0.25, 0.5, 0.75, 0.9}) {
    auto p = LineInterpolatePoint(line, f);
    ASSERT_TRUE(p.ok());
    auto back = LineLocatePoint(line, p->AsPoint());
    ASSERT_TRUE(back.ok());
    EXPECT_NEAR(*back, f, 1e-9);
  }
}

TEST(LinearRefTest, ClosestPointOnPolygonInterior) {
  Geometry poly = Wkt("POLYGON ((0 0, 10 0, 10 10, 0 10, 0 0))");
  EXPECT_EQ(ClosestPoint(poly, {5, 5}).AsPoint(), (Coord{5, 5}));
  EXPECT_EQ(ClosestPoint(poly, {15, 5}).AsPoint(), (Coord{10, 5}));
}

TEST(LinearRefTest, ClosestPointOnLine) {
  Geometry line = Wkt("LINESTRING (0 0, 10 0)");
  EXPECT_EQ(ClosestPoint(line, {3, 4}).AsPoint(), (Coord{3, 0}));
}

TEST(LinearRefTest, ClosestPointEmpty) {
  EXPECT_TRUE(ClosestPoint(Geometry(), {0, 0}).IsEmpty());
}

TEST(LinearRefTest, SubstringBasics) {
  Geometry line = Wkt("LINESTRING (0 0, 10 0)");
  auto mid = LineSubstring(line, 0.25, 0.75);
  ASSERT_TRUE(mid.ok());
  EXPECT_NEAR(Length(*mid), 5.0, 1e-9);
  EXPECT_EQ(mid->AsLineString().front(), (Coord{2.5, 0}));
  EXPECT_EQ(mid->AsLineString().back(), (Coord{7.5, 0}));
}

TEST(LinearRefTest, SubstringKeepsInteriorVertices) {
  Geometry line = Wkt("LINESTRING (0 0, 5 5, 10 0)");
  auto sub = LineSubstring(line, 0.1, 0.9);
  ASSERT_TRUE(sub.ok());
  EXPECT_EQ(sub->AsLineString().size(), 3u);  // includes the bend
}

TEST(LinearRefTest, SubstringCollapsesToPoint) {
  Geometry line = Wkt("LINESTRING (0 0, 10 0)");
  auto pt = LineSubstring(line, 0.5, 0.5);
  ASSERT_TRUE(pt.ok());
  EXPECT_EQ(pt->type(), geom::GeometryType::kPoint);
  EXPECT_EQ(pt->AsPoint(), (Coord{5, 0}));
}

TEST(LinearRefTest, SubstringSwapsReversedRange) {
  Geometry line = Wkt("LINESTRING (0 0, 10 0)");
  auto sub = LineSubstring(line, 0.8, 0.2);
  ASSERT_TRUE(sub.ok());
  EXPECT_NEAR(Length(*sub), 6.0, 1e-9);
}

// Address interpolation, the way the geocoding scenario uses it: house
// number -> fraction -> point.
TEST(LinearRefTest, AddressInterpolation) {
  Geometry road = Wkt("LINESTRING (100 0, 200 0)");
  const int64_t from = 100, to = 198, house = 149;
  const double frac = static_cast<double>(house - from) / (to - from);
  auto p = LineInterpolatePoint(road, frac);
  ASSERT_TRUE(p.ok());
  EXPECT_NEAR(p->AsPoint().x, 100 + 100.0 * 0.5, 1e-9);
}

}  // namespace
}  // namespace jackpine::algo
