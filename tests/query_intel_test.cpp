// Unit tests for the query intelligence plane (DESIGN.md "Observability"):
// the shared SQL normalizer and its agreement with the cache key, the
// fingerprint statistics map, the slow-query flight recorder, the structured
// logger, the Prometheus exposition details (HELP/TYPE pairing, build info,
// sanitization-collision dedup), and the embedded HTTP telemetry endpoint.

#include <gtest/gtest.h>

#include <cstdint>
#include <set>
#include <sstream>
#include <string>
#include <vector>

#include "cache/cache_key.h"
#include "common/status.h"
#include "engine/sql_normalize.h"
#include "net/socket.h"
#include "obs/flight_recorder.h"
#include "obs/http_exposition.h"
#include "obs/json.h"
#include "obs/log.h"
#include "obs/metrics.h"
#include "obs/statements.h"

namespace jackpine {
namespace {

// ---------------------------------------------------------------------------
// Shared SQL normalizer

TEST(SqlNormalizeTest, WhitespaceCaseAndCommentsCollapse) {
  const std::string a = engine::SqlFingerprint(
      "SELECT   COUNT(*)\n\tFROM Arealm -- trailing comment\n");
  const std::string b = engine::SqlFingerprint(
      "/* leading */ select count ( * ) from AREALM");
  EXPECT_EQ(a, b);
  EXPECT_EQ(a, "select count ( * ) from arealm");
}

TEST(SqlNormalizeTest, StringLiteralsStayCaseSensitive) {
  const std::string upper =
      engine::SqlFingerprint("select * from t where name = 'Main St'");
  const std::string lower =
      engine::SqlFingerprint("select * from t where name = 'main st'");
  EXPECT_NE(upper, lower);
  EXPECT_NE(upper.find("'Main St'"), std::string::npos);
}

TEST(SqlNormalizeTest, EscapedQuoteLiteralRoundTrips) {
  // The lexer unescapes '' inside a literal; the canonical form must
  // re-escape it so the fingerprint is itself valid SQL (idempotence).
  const std::string fp =
      engine::SqlFingerprint("SELECT * FROM t WHERE name = 'it''s'");
  EXPECT_NE(fp.find("'it''s'"), std::string::npos);
  EXPECT_EQ(engine::SqlFingerprint(fp), fp);
}

TEST(SqlNormalizeTest, BlockCommentInsideLiteralIsPreserved) {
  // A /* */ sequence inside a string literal is data, not a comment; only
  // the real comment outside the literal vanishes.
  const std::string fp = engine::SqlFingerprint(
      "select /* real comment */ '/* not a comment */' from t");
  EXPECT_NE(fp.find("'/* not a comment */'"), std::string::npos);
  EXPECT_EQ(fp.find("real comment"), std::string::npos);
  EXPECT_EQ(engine::SqlFingerprint(fp), fp);
}

TEST(SqlNormalizeTest, QuotedIdentifierFallsBackToCollapsedRawText) {
  // The lexer has no double-quoted-identifier support, so this statement
  // does not tokenize; the fingerprint falls back to whitespace-collapsed
  // raw text — still deterministic across re-spacings, never empty.
  EXPECT_FALSE(engine::NormalizeSqlText("select \"Name\" from t").has_value());
  const std::string a = engine::SqlFingerprint("select  \"Name\"   from t");
  const std::string b = engine::SqlFingerprint("select \"Name\" from t\n");
  EXPECT_EQ(a, b);
  EXPECT_EQ(a, "select \"Name\" from t");
  // Case is NOT folded on the fallback path (we cannot tell identifiers
  // from quoted data without tokens), so it differs from the lexable form.
  EXPECT_NE(a, engine::SqlFingerprint("select name from t"));
}

TEST(SqlNormalizeTest, UnlexableInputStillGetsANonEmptyBucket) {
  const std::string fp = engine::SqlFingerprint("  ??? \t ??? ");
  EXPECT_EQ(fp, "??? ???");
  EXPECT_EQ(engine::SqlFingerprint("???\n???"), fp);
}

TEST(SqlNormalizeTest, FingerprintHashIsStableAndDiscriminates) {
  const uint64_t h1 = engine::FingerprintHash("select 1");
  EXPECT_EQ(h1, engine::FingerprintHash("select 1"));
  EXPECT_NE(h1, engine::FingerprintHash("select 2"));
  // FNV-1a offset basis for the empty string.
  EXPECT_EQ(engine::FingerprintHash(""), 1469598103934665603ull);
}

// The load-bearing property of the whole plane: cache identity and stats
// identity are the same string, so a /statements row and a cache entry for
// the same SELECT can never drift apart.
TEST(SqlNormalizeTest, CacheKeyTextEqualsFingerprintForCacheableSelects) {
  const std::vector<std::string> variants = {
      "SELECT COUNT(*) FROM Arealm WHERE ST_Area(geom) > 1.5",
      "select count(*)\nfrom arealm  where st_area(geom) > 1.5 -- c",
      "select * from t where name = 'it''s'",
      "select '/* kept */' from t /* dropped */",
  };
  for (const std::string& sql : variants) {
    auto normalized = cache::NormalizeSelect(sql);
    ASSERT_TRUE(normalized.has_value()) << sql;
    EXPECT_EQ(normalized->text, engine::SqlFingerprint(sql)) << sql;
  }
}

TEST(SqlNormalizeTest, NonSelectsFingerprintButDoNotCache) {
  const std::string sql = "INSERT INTO t VALUES (1, 'x')";
  EXPECT_FALSE(cache::NormalizeSelect(sql).has_value());
  EXPECT_EQ(engine::SqlFingerprint(sql), "insert into t values ( 1 , 'x' )");
}

// ---------------------------------------------------------------------------
// Fingerprint statistics

TEST(StatementStatsTest, RecordAggregatesOneRowPerFingerprint) {
  obs::StatementStats stats;
  obs::StatementUpdate ok;
  ok.latency_s = 0.010;
  ok.rows_examined = 100;
  ok.rows_returned = 5;
  ok.result_bytes = 640;
  stats.Record("select 1", ok);
  ok.cache_hit = true;
  stats.Record("select 1", ok);
  obs::StatementUpdate err;
  err.code = StatusCode::kNotFound;
  err.latency_s = 0.002;
  err.coalesced = true;
  stats.Record("select 1", err);

  const auto rows = stats.Snapshot();
  ASSERT_EQ(rows.size(), 1u);
  const obs::StatementStats::Row& row = rows[0];
  EXPECT_EQ(row.fingerprint, "select 1");
  EXPECT_EQ(row.calls, 3u);
  EXPECT_EQ(row.errors, 1u);
  EXPECT_EQ(row.errors_by_code[static_cast<size_t>(StatusCode::kNotFound)],
            1u);
  EXPECT_EQ(row.latency.count, 3u);
  EXPECT_NEAR(row.latency.sum, 0.022, 1e-9);
  EXPECT_EQ(row.rows_examined, 200u);
  EXPECT_EQ(row.rows_returned, 10u);
  EXPECT_EQ(row.result_bytes, 1280u);
  EXPECT_EQ(row.cache_hits, 1u);
  EXPECT_EQ(row.coalesced, 1u);
  EXPECT_EQ(stats.recorded(), 3u);
  EXPECT_EQ(stats.tracked(), 1u);
}

TEST(StatementStatsTest, EmptyFingerprintIsDropped) {
  obs::StatementStats stats;
  stats.Record("", obs::StatementUpdate{});
  EXPECT_EQ(stats.recorded(), 0u);
  EXPECT_EQ(stats.tracked(), 0u);
}

TEST(StatementStatsTest, SnapshotOrdersMostCalledFirstAndTopKCuts) {
  obs::StatementStats stats;
  for (int i = 0; i < 3; ++i) stats.Record("hot", obs::StatementUpdate{});
  stats.Record("cold_b", obs::StatementUpdate{});
  stats.Record("cold_a", obs::StatementUpdate{});

  const auto rows = stats.Snapshot();
  ASSERT_EQ(rows.size(), 3u);
  EXPECT_EQ(rows[0].fingerprint, "hot");
  // Ties by fingerprint, ascending.
  EXPECT_EQ(rows[1].fingerprint, "cold_a");
  EXPECT_EQ(rows[2].fingerprint, "cold_b");

  EXPECT_EQ(stats.TopK(1).size(), 1u);
  EXPECT_EQ(stats.TopK(1)[0].fingerprint, "hot");
  EXPECT_EQ(stats.TopK(0).size(), 3u);  // 0 = all
}

TEST(StatementStatsTest, EvictionIsDeterministicLowestCallsLargestText) {
  obs::StatementStats::Options options;
  options.capacity = 3;
  options.shards = 1;  // single shard so capacity applies to one map
  obs::StatementStats stats(options);
  for (int i = 0; i < 3; ++i) stats.Record("aaa", obs::StatementUpdate{});
  stats.Record("bbb", obs::StatementUpdate{});
  stats.Record("ccc", obs::StatementUpdate{});
  // At capacity. Inserting "ddd" must evict among the fewest-called
  // ({bbb: 1, ccc: 1}); the tie breaks to the lexicographically-largest
  // fingerprint, so "ccc" goes.
  stats.Record("ddd", obs::StatementUpdate{});
  EXPECT_EQ(stats.evicted(), 1u);

  std::set<std::string> tracked;
  for (const auto& row : stats.Snapshot()) tracked.insert(row.fingerprint);
  EXPECT_EQ(tracked, (std::set<std::string>{"aaa", "bbb", "ddd"}));
}

TEST(StatementStatsTest, ToJsonCarriesMetaAndRows) {
  obs::StatementStats stats;
  obs::StatementUpdate err;
  err.code = StatusCode::kInvalidArgument;
  err.latency_s = 0.5;
  stats.Record("select broken", err);

  auto doc = obs::Json::Parse(stats.ToJson(0).Dump());
  ASSERT_TRUE(doc.ok());
  EXPECT_EQ(doc->Get("tracked").number_value(), 1.0);
  EXPECT_EQ(doc->Get("recorded").number_value(), 1.0);
  EXPECT_EQ(doc->Get("evicted").number_value(), 0.0);
  const obs::Json& rows = doc->Get("statements");
  ASSERT_EQ(rows.size(), 1u);
  EXPECT_EQ(rows.at(0).Get("fingerprint").string_value(), "select broken");
  EXPECT_EQ(rows.at(0).Get("calls").number_value(), 1.0);
  EXPECT_EQ(rows.at(0).Get("errors").number_value(), 1.0);
  // errors_by_code keys are status-code names, values exact counts.
  EXPECT_EQ(
      rows.at(0).Get("errors_by_code").Get("InvalidArgument").number_value(),
      1.0);
}

TEST(StatementStatsTest, MetaCountersLandInTheRegistry) {
  obs::Registry registry;
  obs::StatementStats::Options options;
  options.registry = &registry;
  obs::StatementStats stats(options);
  stats.Record("select 1", obs::StatementUpdate{});
  stats.Record("select 2", obs::StatementUpdate{});

  double recorded = -1.0, tracked = -1.0;
  for (const auto& [name, value] : registry.Snapshot()) {
    if (name == "statements.recorded") recorded = value;
    if (name == "statements.tracked") tracked = value;
  }
  EXPECT_EQ(recorded, 2.0);
  EXPECT_EQ(tracked, 2.0);
}

// ---------------------------------------------------------------------------
// Flight recorder

obs::FlightRecord MakeRecord(std::string fingerprint, double total_s,
                             StatusCode code = StatusCode::kOk) {
  obs::FlightRecord rec;
  rec.fingerprint = std::move(fingerprint);
  rec.sql = rec.fingerprint;
  rec.total_s = total_s;
  rec.code = code;
  return rec;
}

TEST(FlightRecorderTest, FastSuccessesAreNotCaptured) {
  obs::FlightRecorder recorder;  // slow_threshold_s = 0.25
  EXPECT_FALSE(recorder.Note(MakeRecord("select 1", 0.001)));
  EXPECT_EQ(recorder.Snapshot().size(), 0u);
  EXPECT_EQ(recorder.captured_slow(), 0u);
  EXPECT_EQ(recorder.captured_errors(), 0u);
}

TEST(FlightRecorderTest, SlowAndErroredQueriesAreCaptured) {
  obs::FlightRecorder::Options options;
  options.slow_threshold_s = 0.1;
  obs::FlightRecorder recorder(options);
  EXPECT_TRUE(recorder.Note(MakeRecord("slow", 0.2)));
  EXPECT_TRUE(
      recorder.Note(MakeRecord("bad", 0.001, StatusCode::kInvalidArgument)));
  EXPECT_EQ(recorder.captured_slow(), 1u);
  EXPECT_EQ(recorder.captured_errors(), 1u);

  const auto entries = recorder.Snapshot();
  ASSERT_EQ(entries.size(), 2u);
  EXPECT_EQ(entries[0].fingerprint, "slow");
  EXPECT_EQ(entries[1].fingerprint, "bad");
  EXPECT_EQ(entries[1].code, StatusCode::kInvalidArgument);
}

TEST(FlightRecorderTest, RingOverwritesOldestFirst) {
  obs::FlightRecorder::Options options;
  options.capacity = 2;
  options.slow_threshold_s = 0.1;
  obs::FlightRecorder recorder(options);
  recorder.Note(MakeRecord("first", 0.2));
  recorder.Note(MakeRecord("second", 0.2));
  recorder.Note(MakeRecord("third", 0.2));

  const auto entries = recorder.Snapshot();
  ASSERT_EQ(entries.size(), 2u);
  EXPECT_EQ(entries[0].fingerprint, "second");  // oldest surviving
  EXPECT_EQ(entries[1].fingerprint, "third");
  EXPECT_EQ(recorder.captured_slow(), 3u);  // counts are not ring-bounded
}

TEST(FlightRecorderTest, ToJsonCarriesWaitBreakdown) {
  obs::FlightRecorder::Options options;
  options.slow_threshold_s = 0.1;
  obs::FlightRecorder recorder(options);
  obs::FlightRecord rec = MakeRecord("slow one", 0.3);
  rec.exec_s = 0.25;
  rec.chaos_delay_s = 0.04;
  rec.rows_returned = 7;
  recorder.Note(std::move(rec));

  auto doc = obs::Json::Parse(recorder.ToJson().Dump());
  ASSERT_TRUE(doc.ok());
  EXPECT_NEAR(doc->Get("slow_threshold_s").number_value(), 0.1, 1e-12);
  EXPECT_EQ(doc->Get("captured_slow").number_value(), 1.0);
  const obs::Json& entries = doc->Get("entries");
  ASSERT_EQ(entries.size(), 1u);
  const obs::Json& entry = entries.at(0);
  EXPECT_EQ(entry.Get("fingerprint").string_value(), "slow one");
  EXPECT_NEAR(entry.Get("wait_s").Get("total").number_value(), 0.3, 1e-12);
  EXPECT_NEAR(entry.Get("wait_s").Get("exec").number_value(), 0.25, 1e-12);
  EXPECT_NEAR(entry.Get("wait_s").Get("chaos_delay").number_value(), 0.04,
              1e-12);
  EXPECT_EQ(entry.Get("rows_returned").number_value(), 7.0);
}

// ---------------------------------------------------------------------------
// Structured logging

TEST(LogTest, ParseLogLevelAcceptsNamesCaseInsensitively) {
  EXPECT_EQ(obs::ParseLogLevel("debug"), obs::LogLevel::kDebug);
  EXPECT_EQ(obs::ParseLogLevel("INFO"), obs::LogLevel::kInfo);
  EXPECT_EQ(obs::ParseLogLevel("Warning"), obs::LogLevel::kWarn);
  EXPECT_EQ(obs::ParseLogLevel("error"), obs::LogLevel::kError);
  EXPECT_FALSE(obs::ParseLogLevel("verbose").has_value());
}

TEST(LogTest, TextFormatCarriesLevelComponentAndFields) {
  obs::Logger logger;
  const std::string line = logger.Format(
      obs::LogLevel::kWarn, "server", "shedding connection",
      {{"retry_after_ms", "250"}});
  EXPECT_NE(line.find("warn"), std::string::npos);
  EXPECT_NE(line.find("server: shedding connection"), std::string::npos);
  EXPECT_NE(line.find(" retry_after_ms=250"), std::string::npos);
  EXPECT_EQ(line.back(), '\n');
  // RFC 3339 timestamp shape: [YYYY-MM-DDTHH:MM:SS.mmmZ].
  EXPECT_EQ(line.front(), '[');
  EXPECT_EQ(line[11], 'T');
  EXPECT_EQ(line[24], 'Z');
}

TEST(LogTest, JsonFormatIsOneParsableObjectPerLine) {
  obs::Logger logger;
  logger.Configure(obs::LogLevel::kDebug, /*json=*/true, stderr);
  const std::string line = logger.Format(
      obs::LogLevel::kError, "shard", "replica \"down\"",
      {{"endpoint", "127.0.0.1:7777"}});
  auto doc = obs::Json::Parse(line);
  ASSERT_TRUE(doc.ok()) << line;
  EXPECT_EQ(doc->Get("level").string_value(), "error");
  EXPECT_EQ(doc->Get("component").string_value(), "shard");
  // The quote escape survives the round trip.
  EXPECT_EQ(doc->Get("msg").string_value(), "replica \"down\"");
  EXPECT_EQ(doc->Get("endpoint").string_value(), "127.0.0.1:7777");
  EXPECT_FALSE(doc->Get("ts").string_value().empty());
}

TEST(LogTest, LevelGateFiltersBelowMinimum) {
  obs::Logger logger;
  logger.Configure(obs::LogLevel::kWarn, /*json=*/false, stderr);
  EXPECT_FALSE(logger.enabled(obs::LogLevel::kDebug));
  EXPECT_FALSE(logger.enabled(obs::LogLevel::kInfo));
  EXPECT_TRUE(logger.enabled(obs::LogLevel::kWarn));
  EXPECT_TRUE(logger.enabled(obs::LogLevel::kError));
}

// ---------------------------------------------------------------------------
// Prometheus exposition: HELP/TYPE pairing, build info, collision dedup

// Asserts the 0.0.4 text-format invariants the CI lint also checks: every
// family declares # HELP then # TYPE (in that order) exactly once, and every
// sample line belongs to the family it follows.
void CheckExpositionFormat(const std::string& prom) {
  std::istringstream in(prom);
  std::string line;
  std::set<std::string> families;
  std::string pending_help;  // family name from the last unmatched HELP
  while (std::getline(in, line)) {
    if (line.empty()) continue;
    if (line.rfind("# HELP ", 0) == 0) {
      const std::string name = line.substr(7, line.find(' ', 7) - 7);
      EXPECT_TRUE(pending_help.empty()) << "HELP without TYPE: " << line;
      EXPECT_EQ(families.count(name), 0u) << "duplicate family: " << name;
      pending_help = name;
    } else if (line.rfind("# TYPE ", 0) == 0) {
      const std::string name = line.substr(7, line.find(' ', 7) - 7);
      EXPECT_EQ(name, pending_help) << "TYPE not paired with HELP: " << line;
      families.insert(name);
      pending_help.clear();
    }
  }
  EXPECT_TRUE(pending_help.empty()) << "trailing HELP without TYPE";
}

TEST(PromExpositionTest, PreambleCarriesBuildInfoAndUptime) {
  const std::string preamble = obs::RenderPromPreamble();
  CheckExpositionFormat(preamble);
  EXPECT_NE(preamble.find("# TYPE jackpine_build_info gauge"),
            std::string::npos);
  EXPECT_NE(preamble.find("jackpine_build_info{version=\""),
            std::string::npos);
  EXPECT_NE(preamble.find("git_sha=\""), std::string::npos);
  EXPECT_NE(preamble.find("# TYPE jackpine_uptime_seconds gauge"),
            std::string::npos);
}

TEST(PromExpositionTest, RenderPromPairsHelpBeforeTypeAndHonorsHelpText) {
  obs::Registry r;
  r.GetCounter("srv.requests", "Requests accepted.")->Add(1);
  r.GetGauge("srv.depth")->Set(1.0);
  r.GetHistogram("srv.latency_s", {0.1, 1.0}, "Latency.")->Observe(0.5);

  const std::string prom = r.RenderProm("jackpine_", /*build_info=*/true);
  CheckExpositionFormat(prom);
  EXPECT_NE(prom.find("# HELP jackpine_srv_requests Requests accepted.\n"
                      "# TYPE jackpine_srv_requests counter"),
            std::string::npos);
  EXPECT_NE(prom.find("# HELP jackpine_srv_latency_s Latency.\n"
                      "# TYPE jackpine_srv_latency_s histogram"),
            std::string::npos);
  // build_info=true prepends the preamble exactly once, at the top.
  EXPECT_EQ(prom.rfind("# HELP jackpine_build_info", 0), 0u);
  EXPECT_EQ(prom.find("jackpine_build_info{",
                      prom.find("jackpine_build_info{") + 1),
            std::string::npos);
  // build_info=false omits it, for composed expositions.
  EXPECT_EQ(r.RenderProm("jackpine_", false).find("jackpine_build_info"),
            std::string::npos);
}

TEST(PromExpositionTest, SanitizationCollisionsDedupDeterministically) {
  // "srv-hit", "srv.hit" and "srv_hit" all sanitize to jackpine_srv_hit.
  // The dedup is deterministic in the *registry names*: the first in name
  // order keeps the plain family ('-' < '.' < '_' in ASCII), later ones get
  // a numeric _2, _3 suffix — registration order must not matter.
  obs::Registry r;
  r.GetCounter("srv.hit")->Add(1);
  r.GetCounter("srv_hit")->Add(2);
  r.GetCounter("srv-hit")->Add(3);

  const std::string prom = r.RenderProm("jackpine_", /*build_info=*/false);
  CheckExpositionFormat(prom);  // rejects duplicate families
  EXPECT_NE(prom.find("jackpine_srv_hit 3"), std::string::npos) << prom;
  EXPECT_NE(prom.find("jackpine_srv_hit_2 1"), std::string::npos);
  EXPECT_NE(prom.find("jackpine_srv_hit_3 2"), std::string::npos);
}

TEST(PromExpositionTest, RenderPromEntriesDedupsLikeTheRegistry) {
  const std::string prom = obs::RenderPromEntries(
      {{"a.b", 1.0}, {"a_b", 2.0}}, "jackpine_", /*build_info=*/false);
  CheckExpositionFormat(prom);
  EXPECT_NE(prom.find("jackpine_a_b 1"), std::string::npos);
  EXPECT_NE(prom.find("jackpine_a_b_2 2"), std::string::npos);
}

// ---------------------------------------------------------------------------
// Embedded HTTP telemetry endpoint

// Minimal HTTP/1.0 GET against the telemetry server; returns the full
// response (status line + headers + body).
std::string HttpGet(uint16_t port, const std::string& path) {
  auto sock = net::Socket::Connect("127.0.0.1", port);
  if (!sock.ok()) return "connect failed: " + sock.status().ToString();
  EXPECT_TRUE(sock->SetRecvTimeout(10.0).ok());
  const std::string request = "GET " + path + " HTTP/1.0\r\n\r\n";
  if (auto sent = sock->SendAll(request); !sent.ok()) {
    return "send failed: " + sent.ToString();
  }
  std::string response;
  char buf[4096];
  for (;;) {
    auto n = sock->Recv(buf, sizeof(buf));
    if (!n.ok() || *n == 0) break;  // Connection: close ends the response
    response.append(buf, *n);
  }
  return response;
}

TEST(TelemetryServerTest, ServesRegisteredRoutesAnd404s) {
  obs::TelemetryServer::Options options;  // port 0 = ephemeral
  auto server = obs::TelemetryServer::Create(options);
  ASSERT_TRUE(server.ok()) << server.status().ToString();
  (*server)->Handle("/metrics", [] {
    obs::HttpResponse resp;
    resp.content_type = obs::kPromContentType;
    resp.body = "# HELP jackpine_x test\n# TYPE jackpine_x gauge\n"
                "jackpine_x 1\n";
    return resp;
  });
  (*server)->StartServing();
  const uint16_t port = (*server)->port();
  ASSERT_NE(port, 0);

  // /healthz is pre-registered.
  const std::string health = HttpGet(port, "/healthz");
  EXPECT_NE(health.find("200"), std::string::npos) << health;
  EXPECT_NE(health.find("ok"), std::string::npos);

  const std::string metrics = HttpGet(port, "/metrics");
  EXPECT_NE(metrics.find("200"), std::string::npos);
  EXPECT_NE(metrics.find("version=0.0.4"), std::string::npos);
  EXPECT_NE(metrics.find("jackpine_x 1"), std::string::npos);

  // Query strings are stripped before routing.
  EXPECT_NE(HttpGet(port, "/metrics?debug=1").find("jackpine_x 1"),
            std::string::npos);

  const std::string missing = HttpGet(port, "/nope");
  EXPECT_NE(missing.find("404"), std::string::npos) << missing;

  EXPECT_GE((*server)->requests_served(), 4u);
  (*server)->Shutdown();
}

TEST(TelemetryServerTest, ShutdownIsIdempotentAndStopsServing) {
  auto server = obs::TelemetryServer::Start(obs::TelemetryServer::Options{});
  ASSERT_TRUE(server.ok()) << server.status().ToString();
  const uint16_t port = (*server)->port();
  EXPECT_NE(HttpGet(port, "/healthz").find("200"), std::string::npos);
  (*server)->Shutdown();
  (*server)->Shutdown();  // no-op
  const std::string after = HttpGet(port, "/healthz");
  EXPECT_EQ(after.find("200 OK"), std::string::npos);
}

}  // namespace
}  // namespace jackpine
