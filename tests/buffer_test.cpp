// Tests for ST_Buffer: dilation of points, lines and polygons.

#include <gtest/gtest.h>

#include "algo/buffer.h"
#include "algo/distance.h"
#include "algo/measures.h"
#include "algo/point_in_polygon.h"
#include "geom/wkt_reader.h"

namespace jackpine::algo {
namespace {

using geom::Coord;
using geom::Geometry;
using geom::GeometryType;

Geometry Wkt(const std::string& s) {
  auto r = geom::GeometryFromWkt(s);
  EXPECT_TRUE(r.ok()) << r.status().ToString();
  return std::move(r).value();
}

Geometry Buf(const Geometry& g, double r, int qs = 8) {
  auto result = Buffer(g, r, qs);
  EXPECT_TRUE(result.ok()) << result.status().ToString();
  return result.ok() ? std::move(result).value() : Geometry();
}

TEST(BufferTest, PointBufferIsDisc) {
  Geometry b = Buf(Geometry::MakePoint(0, 0), 2.0);
  EXPECT_EQ(b.Dimension(), 2);
  // Inscribed polygon area approaches pi*r^2 from below.
  EXPECT_GT(Area(b), M_PI * 4.0 * 0.95);
  EXPECT_LE(Area(b), M_PI * 4.0 + 1e-9);
  EXPECT_EQ(Locate({0, 0}, b), Location::kInterior);
  EXPECT_EQ(Locate({1.9, 0}, b), Location::kInterior);
  EXPECT_EQ(Locate({2.5, 0}, b), Location::kExterior);
}

TEST(BufferTest, MoreQuadrantSegmentsTightensTheDisc) {
  const double coarse = Area(Buf(Geometry::MakePoint(0, 0), 1.0, 2));
  const double fine = Area(Buf(Geometry::MakePoint(0, 0), 1.0, 16));
  EXPECT_LT(coarse, fine);
  EXPECT_LT(fine, M_PI);
}

TEST(BufferTest, LineBufferIsCapsule) {
  Geometry line = Wkt("LINESTRING (0 0, 10 0)");
  Geometry b = Buf(line, 1.0);
  EXPECT_EQ(b.Dimension(), 2);
  // Capsule area = 2*r*len + pi*r^2 (sampled slightly below).
  const double expected = 2.0 * 10.0 + M_PI;
  EXPECT_NEAR(Area(b), expected, expected * 0.05);
  EXPECT_EQ(Locate({5, 0.9}, b), Location::kInterior);
  EXPECT_EQ(Locate({5, 1.5}, b), Location::kExterior);
  EXPECT_EQ(Locate({-0.9, 0}, b), Location::kInterior);  // round cap
}

TEST(BufferTest, BentLineBufferCoversJoint) {
  Geometry line = Wkt("LINESTRING (0 0, 5 0, 5 5)");
  Geometry b = Buf(line, 0.5);
  EXPECT_EQ(Locate({5, 0}, b), Location::kInterior);
  EXPECT_EQ(Locate({5.4, 0.4}, b), Location::kInterior);  // outside corner
  EXPECT_EQ(Locate({2.5, 0.4}, b), Location::kInterior);
  EXPECT_EQ(Locate({2.5, 2.5}, b), Location::kExterior);
}

TEST(BufferTest, PolygonBufferGrows) {
  Geometry square = Wkt("POLYGON ((0 0, 4 0, 4 4, 0 4, 0 0))");
  Geometry b = Buf(square, 1.0);
  // Dilated square area = 16 + perimeter*r + pi*r^2.
  const double expected = 16.0 + 16.0 + M_PI;
  EXPECT_NEAR(Area(b), expected, expected * 0.05);
  EXPECT_EQ(Locate({2, 2}, b), Location::kInterior);    // original interior
  EXPECT_EQ(Locate({-0.9, 2}, b), Location::kInterior); // dilated margin
  EXPECT_EQ(Locate({-1.5, 2}, b), Location::kExterior);
}

TEST(BufferTest, BufferContainsOriginal) {
  Geometry line = Wkt("LINESTRING (0 0, 3 1, 6 0, 9 2)");
  Geometry b = Buf(line, 0.25);
  EXPECT_DOUBLE_EQ(Distance(b, line), 0.0);
  for (const Coord& c : line.AsLineString()) {
    EXPECT_NE(Locate(c, b), Location::kExterior);
  }
}

TEST(BufferTest, MultiGeometryBuffer) {
  Geometry mp = Wkt("MULTIPOINT ((0 0), (10 0))");
  Geometry b = Buf(mp, 1.0);
  EXPECT_EQ(b.type(), GeometryType::kMultiPolygon);
  EXPECT_NEAR(Area(b), 2.0 * M_PI, 2.0 * M_PI * 0.05);
}

TEST(BufferTest, OverlappingDiscsDissolve) {
  Geometry mp = Wkt("MULTIPOINT ((0 0), (1 0))");
  Geometry b = Buf(mp, 1.0);
  EXPECT_EQ(b.type(), GeometryType::kPolygon);  // dissolved into one
  EXPECT_LT(Area(b), 2.0 * M_PI);               // minus the lens overlap
  EXPECT_GT(Area(b), M_PI);
}

TEST(BufferTest, ZeroAndNegativeRadius) {
  EXPECT_TRUE(Buf(Geometry::MakePoint(0, 0), 0.0).IsEmpty());
  EXPECT_TRUE(Buf(Wkt("LINESTRING (0 0, 1 1)"), -1.0).IsEmpty());
  // Polygon erosion is a documented unsupported case.
  EXPECT_FALSE(Buffer(Wkt("POLYGON ((0 0, 4 0, 4 4, 0 4, 0 0))"), -1.0).ok());
}

TEST(BufferTest, EmptyInput) {
  EXPECT_TRUE(Buf(Geometry(), 1.0).IsEmpty());
}

}  // namespace
}  // namespace jackpine::algo
