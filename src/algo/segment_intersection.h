// Segment-segment intersection, the workhorse of relate and overlay.

#ifndef JACKPINE_ALGO_SEGMENT_INTERSECTION_H_
#define JACKPINE_ALGO_SEGMENT_INTERSECTION_H_

#include <optional>

#include "geom/coord.h"

namespace jackpine::algo {

using geom::Coord;

enum class SegSegKind : uint8_t {
  kNone,     // segments do not meet
  kPoint,    // single intersection point (crossing or endpoint touch)
  kOverlap,  // collinear overlap along a sub-segment
};

struct SegSegResult {
  SegSegKind kind = SegSegKind::kNone;
  // kPoint: p0 is the point. kOverlap: [p0, p1] is the shared sub-segment.
  Coord p0{};
  Coord p1{};
  // kPoint only: true when the intersection is interior to both segments
  // (a proper crossing, touching neither segment's endpoints).
  bool proper = false;
};

// Computes how closed segments [a0,a1] and [b0,b1] intersect.
SegSegResult IntersectSegments(const Coord& a0, const Coord& a1,
                               const Coord& b0, const Coord& b1);

// Parametric position of p along segment [a, b], clamped to [0, 1].
// p is assumed (near-)collinear with the segment.
double ParamAlongSegment(const Coord& p, const Coord& a, const Coord& b);

// Closest point on closed segment [a, b] to p.
Coord ClosestPointOnSegment(const Coord& p, const Coord& a, const Coord& b);

// Minimum distances involving segments.
double DistancePointToSegment(const Coord& p, const Coord& a, const Coord& b);

// True if p lies within `relative_eps * coordinate_scale` of the closed
// segment [a, b]. Point-location on boundaries uses this instead of the
// exact PointOnSegment because probe points (portion midpoints, interpolated
// cut points) carry a few ulps of rounding error; see topo/relate.h.
bool PointNearSegment(const Coord& p, const Coord& a, const Coord& b,
                      double relative_eps = 1e-9);
double DistanceSegmentToSegment(const Coord& a0, const Coord& a1,
                                const Coord& b0, const Coord& b1);

}  // namespace jackpine::algo

#endif  // JACKPINE_ALGO_SEGMENT_INTERSECTION_H_
