#include "algo/convex_hull.h"

#include <algorithm>
#include <cassert>

#include "algo/orientation.h"

namespace jackpine::algo {

using geom::Coord;
using geom::Geometry;
using geom::GeometryType;
using geom::Ring;

namespace {

void CollectCoords(const Geometry& g, std::vector<Coord>* out) {
  if (g.IsEmpty()) return;
  switch (g.type()) {
    case GeometryType::kPoint:
      out->push_back(g.AsPoint());
      return;
    case GeometryType::kLineString:
      out->insert(out->end(), g.AsLineString().begin(), g.AsLineString().end());
      return;
    case GeometryType::kPolygon: {
      const geom::PolygonData& poly = g.AsPolygon();
      out->insert(out->end(), poly.shell.begin(), poly.shell.end());
      for (const Ring& hole : poly.holes) {
        out->insert(out->end(), hole.begin(), hole.end());
      }
      return;
    }
    default:
      for (const Geometry& part : g.Parts()) CollectCoords(part, out);
      return;
  }
}

}  // namespace

Ring ConvexHullRing(std::vector<Coord> pts) {
  std::sort(pts.begin(), pts.end(), [](const Coord& a, const Coord& b) {
    return a.x < b.x || (a.x == b.x && a.y < b.y);
  });
  pts.erase(std::unique(pts.begin(), pts.end()), pts.end());
  const size_t n = pts.size();
  if (n < 3) {
    Ring r = pts;
    return r;
  }
  // Lower then upper hull; strict right turns removed, so collinear points
  // on the hull edge are dropped.
  Ring hull(2 * n);
  size_t k = 0;
  for (size_t i = 0; i < n; ++i) {
    while (k >= 2 && Orientation(hull[k - 2], hull[k - 1], pts[i]) <= 0) --k;
    hull[k++] = pts[i];
  }
  const size_t lower = k + 1;
  for (size_t i = n - 1; i-- > 0;) {
    while (k >= lower && Orientation(hull[k - 2], hull[k - 1], pts[i]) <= 0) {
      --k;
    }
    hull[k++] = pts[i];
  }
  hull.resize(k);  // closed: last == first
  return hull;
}

Geometry ConvexHull(const Geometry& g) {
  std::vector<Coord> pts;
  CollectCoords(g, &pts);
  if (pts.empty()) return Geometry();
  Ring hull = ConvexHullRing(std::move(pts));
  if (hull.size() == 1) return Geometry::MakePoint(hull[0]);
  if (hull.size() == 2) {
    auto line = Geometry::MakeLineString({hull[0], hull[1]});
    assert(line.ok());
    return std::move(line).value();
  }
  if (hull.size() == 3 && hull.front() == hull.back()) {
    // Degenerate closed pair (collinear duplicates collapsed to 2 points).
    auto line = Geometry::MakeLineString({hull[0], hull[1]});
    assert(line.ok());
    return std::move(line).value();
  }
  auto poly = Geometry::MakePolygon(std::move(hull));
  assert(poly.ok());
  return std::move(poly).value();
}

}  // namespace jackpine::algo
