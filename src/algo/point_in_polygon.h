// Point location against polygonal and lineal geometries.

#ifndef JACKPINE_ALGO_POINT_IN_POLYGON_H_
#define JACKPINE_ALGO_POINT_IN_POLYGON_H_

#include "algo/orientation.h"
#include "geom/geometry.h"

namespace jackpine::algo {

// Ray-casting location of `p` against a single closed ring.
Location LocateInRing(const Coord& p, const geom::Ring& ring);

// Location against a polygon with holes: interior means inside the shell and
// outside every hole; on any ring is boundary.
Location LocateInPolygon(const Coord& p, const geom::PolygonData& polygon);

// Location of `p` against an arbitrary geometry's point set, following OGC
// semantics per type:
//  - polygonal: as above, unioned over parts;
//  - lineal: boundary = endpoints (mod-2 over parts), interior = rest of
//    the curve;
//  - puntal: each point is interior (points have empty boundary).
// For mixed collections the strongest location wins
// (Interior > Boundary > Exterior).
Location Locate(const Coord& p, const geom::Geometry& g);

// Convenience predicates on top of Locate.
inline bool CoversPoint(const geom::Geometry& g, const Coord& p) {
  return Locate(p, g) != Location::kExterior;
}
inline bool ContainsPointProperly(const geom::Geometry& g, const Coord& p) {
  return Locate(p, g) == Location::kInterior;
}

}  // namespace jackpine::algo

#endif  // JACKPINE_ALGO_POINT_IN_POLYGON_H_
