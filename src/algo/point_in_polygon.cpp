#include "algo/point_in_polygon.h"

#include <algorithm>
#include <cmath>

#include "algo/segment_intersection.h"
#include "geom/coord.h"

namespace jackpine::algo {

using geom::Geometry;
using geom::GeometryType;
using geom::PolygonData;
using geom::Ring;

Location LocateInRing(const Coord& p, const Ring& ring) {
  // Crossing-number ray cast along +x with exact boundary detection.
  bool inside = false;
  for (size_t i = 0; i + 1 < ring.size(); ++i) {
    const Coord& a = ring[i];
    const Coord& b = ring[i + 1];
    if (PointNearSegment(p, a, b)) return Location::kBoundary;
    // Standard half-open rule avoids double-counting vertices.
    if ((a.y > p.y) != (b.y > p.y)) {
      const double x_at =
          a.x + (p.y - a.y) * (b.x - a.x) / (b.y - a.y);
      if (x_at > p.x) inside = !inside;
    }
  }
  return inside ? Location::kInterior : Location::kExterior;
}

Location LocateInPolygon(const Coord& p, const PolygonData& polygon) {
  const Location shell = LocateInRing(p, polygon.shell);
  if (shell != Location::kInterior) return shell;
  for (const Ring& hole : polygon.holes) {
    const Location h = LocateInRing(p, hole);
    if (h == Location::kBoundary) return Location::kBoundary;
    if (h == Location::kInterior) return Location::kExterior;
  }
  return Location::kInterior;
}

namespace {

// Location against a single linestring: endpoints are boundary candidates,
// any other covered point is interior.
Location LocateOnLineString(const Coord& p, const std::vector<Coord>& pts) {
  if (pts.empty()) return Location::kExterior;
  bool on_curve = false;
  for (size_t i = 0; i + 1 < pts.size(); ++i) {
    if (PointNearSegment(p, pts[i], pts[i + 1])) {
      on_curve = true;
      break;
    }
  }
  if (!on_curve) return Location::kExterior;
  const bool closed = pts.front() == pts.back();
  const double eps =
      1e-9 * std::max({std::abs(p.x), std::abs(p.y), 1.0});
  if (!closed && (DistanceBetween(p, pts.front()) <= eps ||
                  DistanceBetween(p, pts.back()) <= eps)) {
    return Location::kBoundary;
  }
  return Location::kInterior;
}

}  // namespace

Location Locate(const Coord& p, const Geometry& g) {
  if (g.IsEmpty()) return Location::kExterior;
  switch (g.type()) {
    case GeometryType::kPoint:
      return p == g.AsPoint() ? Location::kInterior : Location::kExterior;
    case GeometryType::kLineString:
      return LocateOnLineString(p, g.AsLineString());
    case GeometryType::kPolygon:
      return LocateInPolygon(p, g.AsPolygon());
    case GeometryType::kMultiLineString: {
      // Mod-2 rule: a shared endpoint of an even number of parts is interior.
      bool on_any = false;
      bool interior_any = false;
      int endpoint_hits = 0;
      for (const Geometry& part : g.Parts()) {
        if (part.IsEmpty()) continue;
        const Location loc = LocateOnLineString(p, part.AsLineString());
        if (loc == Location::kInterior) interior_any = true;
        if (loc == Location::kBoundary) ++endpoint_hits;
        if (loc != Location::kExterior) on_any = true;
      }
      if (!on_any) return Location::kExterior;
      if (interior_any) return Location::kInterior;
      return (endpoint_hits % 2 == 1) ? Location::kBoundary
                                      : Location::kInterior;
    }
    default: {
      // MultiPoint, MultiPolygon, GeometryCollection: strongest wins.
      Location best = Location::kExterior;
      for (const Geometry& part : g.Parts()) {
        const Location loc = Locate(p, part);
        if (loc == Location::kInterior) return Location::kInterior;
        if (loc == Location::kBoundary) best = Location::kBoundary;
      }
      return best;
    }
  }
}

}  // namespace jackpine::algo
