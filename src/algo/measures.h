// Metric measures: area, length, centroid.
//
// These back the ST_Area / ST_Length / ST_Perimeter / ST_Centroid SQL
// functions in pinedb and the spatial-analysis micro benchmark (E2).

#ifndef JACKPINE_ALGO_MEASURES_H_
#define JACKPINE_ALGO_MEASURES_H_

#include "geom/geometry.h"

namespace jackpine::algo {

// Area of polygonal parts (holes subtracted); 0 for points and lines.
double Area(const geom::Geometry& g);

// Length of lineal parts; for polygonal parts, 0 (use Perimeter).
double Length(const geom::Geometry& g);

// Total ring length of polygonal parts (shell + holes); 0 otherwise.
double Perimeter(const geom::Geometry& g);

// Centroid following the PostGIS convention: computed over the
// highest-dimension parts (area-weighted for polygons, length-weighted for
// lines, arithmetic mean for points). Returns an empty POINT for empty input.
geom::Geometry Centroid(const geom::Geometry& g);

}  // namespace jackpine::algo

#endif  // JACKPINE_ALGO_MEASURES_H_
