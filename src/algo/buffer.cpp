#include "algo/buffer.h"

#include <cmath>
#include <vector>

#include "algo/overlay.h"

namespace jackpine::algo {

using geom::Coord;
using geom::Geometry;
using geom::GeometryType;
using geom::Ring;

namespace {

// A sampled circle as a CCW ring. `phase` rotates the sampling so circles at
// shared endpoints of adjacent capsules do not produce coincident vertices
// (which would be degenerate for the union).
Geometry CirclePolygon(const Coord& center, double radius, int samples,
                       double phase) {
  Ring ring;
  ring.reserve(static_cast<size_t>(samples) + 1);
  for (int i = 0; i < samples; ++i) {
    const double t = phase + 2.0 * M_PI * i / samples;
    ring.push_back(
        {center.x + radius * std::cos(t), center.y + radius * std::sin(t)});
  }
  ring.push_back(ring.front());
  auto poly = Geometry::MakePolygon(std::move(ring));
  return poly.ok() ? std::move(poly).value()
                   : Geometry::MakeEmpty(GeometryType::kPolygon);
}

// The rectangle swept by a segment offset by +-radius, as a polygon.
Geometry SegmentRectangle(const Coord& a, const Coord& b, double radius) {
  const double dx = b.x - a.x;
  const double dy = b.y - a.y;
  const double len = std::hypot(dx, dy);
  if (len == 0.0) return Geometry::MakeEmpty(GeometryType::kPolygon);
  const double nx = -dy / len * radius;
  const double ny = dx / len * radius;
  Ring ring = {{a.x + nx, a.y + ny},
               {b.x + nx, b.y + ny},
               {b.x - nx, b.y - ny},
               {a.x - nx, a.y - ny},
               {a.x + nx, a.y + ny}};
  auto poly = Geometry::MakePolygon(std::move(ring));
  return poly.ok() ? std::move(poly).value()
                   : Geometry::MakeEmpty(GeometryType::kPolygon);
}

// Appends the capsule pieces covering a path's dilation.
void AppendPathPieces(const std::vector<Coord>& pts, double radius,
                      int samples, std::vector<Geometry>* pieces) {
  for (size_t i = 0; i < pts.size(); ++i) {
    // Vary the phase per vertex deterministically to avoid coincident
    // circle vertices where consecutive paths share endpoints.
    const double phase = 0.37 * static_cast<double>(i % 17);
    if (i + 1 < pts.size() || pts.size() == 1 || pts[i] != pts.front()) {
      pieces->push_back(CirclePolygon(pts[i], radius, samples, phase));
    }
    if (i + 1 < pts.size()) {
      Geometry rect = SegmentRectangle(pts[i], pts[i + 1], radius);
      if (!rect.IsEmpty()) pieces->push_back(std::move(rect));
    }
  }
}

}  // namespace

Result<Geometry> Buffer(const Geometry& g, double radius,
                        int quadrant_segments) {
  if (g.IsEmpty()) return Geometry::MakeEmpty(GeometryType::kPolygon);
  if (radius <= 0.0) {
    if (g.Dimension() == 2) {
      return Status::InvalidArgument(
          "negative/zero polygon buffers (erosion) are not supported");
    }
    return Geometry::MakeEmpty(GeometryType::kPolygon);
  }
  const int samples = std::max(8, 4 * quadrant_segments);

  std::vector<Geometry> pieces;
  for (const Geometry& leaf : g.Leaves()) {
    switch (leaf.type()) {
      case GeometryType::kPoint:
        pieces.push_back(CirclePolygon(leaf.AsPoint(), radius, samples, 0.0));
        break;
      case GeometryType::kLineString:
        AppendPathPieces(leaf.AsLineString(), radius, samples, &pieces);
        break;
      case GeometryType::kPolygon: {
        const geom::PolygonData& poly = leaf.AsPolygon();
        // The body plus dilated boundary covers the buffered polygon.
        // (Holes shrink under dilation; covering them entirely when the
        // radius exceeds the hole's inradius is handled by the hole-boundary
        // capsules overlapping across the hole.)
        auto body = Geometry::MakePolygon(poly.shell, poly.holes);
        if (body.ok()) pieces.push_back(std::move(body).value());
        AppendPathPieces(poly.shell, radius, samples, &pieces);
        for (const Ring& hole : poly.holes) {
          AppendPathPieces(hole, radius, samples, &pieces);
        }
        break;
      }
      default:
        break;
    }
  }
  return UnionAll(pieces);
}

}  // namespace jackpine::algo
