#include "algo/measures.h"

#include <cmath>

namespace jackpine::algo {

using geom::Coord;
using geom::Geometry;
using geom::GeometryType;
using geom::PolygonData;
using geom::Ring;
using geom::SignedRingArea;

double Area(const Geometry& g) {
  if (g.IsEmpty()) return 0.0;
  switch (g.type()) {
    case GeometryType::kPolygon: {
      const PolygonData& poly = g.AsPolygon();
      double area = std::abs(SignedRingArea(poly.shell));
      for (const Ring& hole : poly.holes) {
        area -= std::abs(SignedRingArea(hole));
      }
      return area;
    }
    case GeometryType::kMultiPolygon:
    case GeometryType::kGeometryCollection: {
      double area = 0.0;
      for (const Geometry& part : g.Parts()) area += Area(part);
      return area;
    }
    default:
      return 0.0;
  }
}

namespace {

double PathLength(const std::vector<Coord>& pts) {
  double len = 0.0;
  for (size_t i = 0; i + 1 < pts.size(); ++i) {
    len += DistanceBetween(pts[i], pts[i + 1]);
  }
  return len;
}

}  // namespace

double Length(const Geometry& g) {
  if (g.IsEmpty()) return 0.0;
  switch (g.type()) {
    case GeometryType::kLineString:
      return PathLength(g.AsLineString());
    case GeometryType::kMultiLineString:
    case GeometryType::kGeometryCollection: {
      double len = 0.0;
      for (const Geometry& part : g.Parts()) len += Length(part);
      return len;
    }
    default:
      return 0.0;
  }
}

double Perimeter(const Geometry& g) {
  if (g.IsEmpty()) return 0.0;
  switch (g.type()) {
    case GeometryType::kPolygon: {
      const PolygonData& poly = g.AsPolygon();
      double len = PathLength(poly.shell);
      for (const Ring& hole : poly.holes) len += PathLength(hole);
      return len;
    }
    case GeometryType::kMultiPolygon:
    case GeometryType::kGeometryCollection: {
      double len = 0.0;
      for (const Geometry& part : g.Parts()) len += Perimeter(part);
      return len;
    }
    default:
      return 0.0;
  }
}

namespace {

struct CentroidAccum {
  double wx = 0.0;
  double wy = 0.0;
  double weight = 0.0;

  void Add(const Coord& c, double w) {
    wx += c.x * w;
    wy += c.y * w;
    weight += w;
  }
};

// Area-weighted ring centroid contribution (signed, so holes cancel).
void AccumulateRing(const Ring& ring, CentroidAccum* acc) {
  for (size_t i = 0; i + 1 < ring.size(); ++i) {
    const Coord& a = ring[i];
    const Coord& b = ring[i + 1];
    const double cross = a.x * b.y - b.x * a.y;
    acc->Add({(a.x + b.x) / 3.0, (a.y + b.y) / 3.0}, cross / 2.0);
  }
}

void AccumulateGeometry(const Geometry& g, int target_dim, CentroidAccum* acc) {
  if (g.IsEmpty()) return;
  switch (g.type()) {
    case GeometryType::kPoint:
      if (target_dim == 0) acc->Add(g.AsPoint(), 1.0);
      return;
    case GeometryType::kLineString:
      if (target_dim == 1) {
        const std::vector<Coord>& pts = g.AsLineString();
        for (size_t i = 0; i + 1 < pts.size(); ++i) {
          const double w = DistanceBetween(pts[i], pts[i + 1]);
          acc->Add({(pts[i].x + pts[i + 1].x) / 2.0,
                    (pts[i].y + pts[i + 1].y) / 2.0},
                   w);
        }
      }
      return;
    case GeometryType::kPolygon:
      if (target_dim == 2) {
        const PolygonData& poly = g.AsPolygon();
        AccumulateRing(poly.shell, acc);
        // Holes are stored clockwise, so their signed contributions subtract.
        for (const Ring& hole : poly.holes) AccumulateRing(hole, acc);
      }
      return;
    default:
      for (const Geometry& part : g.Parts()) {
        AccumulateGeometry(part, target_dim, acc);
      }
      return;
  }
}

}  // namespace

Geometry Centroid(const Geometry& g) {
  const int dim = g.Dimension();
  if (dim < 0) return Geometry::MakeEmpty(GeometryType::kPoint);
  CentroidAccum acc;
  AccumulateGeometry(g, dim, &acc);
  if (acc.weight == 0.0) {
    // Degenerate (e.g. zero-area polygon): fall back to envelope centre.
    if (g.envelope().IsNull()) return Geometry::MakeEmpty(GeometryType::kPoint);
    return Geometry::MakePoint(g.envelope().Center());
  }
  return Geometry::MakePoint(acc.wx / acc.weight, acc.wy / acc.weight);
}

}  // namespace jackpine::algo
