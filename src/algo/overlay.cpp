#include "algo/overlay.h"

#include <algorithm>
#include <cmath>
#include <deque>
#include <functional>
#include <map>

#include "algo/orientation.h"
#include "algo/point_in_polygon.h"
#include "algo/segment_intersection.h"
#include "common/string_util.h"

namespace jackpine::algo {

using geom::Coord;
using geom::Envelope;
using geom::Geometry;
using geom::GeometryType;
using geom::PolygonData;
using geom::Ring;

namespace {

// A polygonal region: a set of interior-disjoint polygons with holes.
using Region = std::vector<PolygonData>;

Envelope RingEnvelope(const Ring& ring) {
  Envelope e;
  for (const Coord& c : ring) e.ExpandToInclude(c);
  return e;
}

Envelope PolyEnvelope(const PolygonData& poly) {
  return RingEnvelope(poly.shell);
}

// A point in the interior of a simple ring: probe the centroid first, then
// midpoints of chords through the lowest-leftmost (convex) vertex.
Coord RingInteriorPoint(const Ring& ring) {
  // Centroid of the ring polygon.
  double a2 = 0.0, cx = 0.0, cy = 0.0;
  for (size_t i = 0; i + 1 < ring.size(); ++i) {
    const double cr = ring[i].x * ring[i + 1].y - ring[i + 1].x * ring[i].y;
    a2 += cr;
    cx += (ring[i].x + ring[i + 1].x) * cr;
    cy += (ring[i].y + ring[i + 1].y) * cr;
  }
  if (a2 != 0.0) {
    Coord c{cx / (3.0 * a2), cy / (3.0 * a2)};
    if (LocateInRing(c, ring) == Location::kInterior) return c;
  }
  // Fallback: shrink the corner triangle at the lowest-leftmost vertex.
  size_t vi = 0;
  for (size_t i = 0; i + 1 < ring.size(); ++i) {
    if (ring[i].x < ring[vi].x ||
        (ring[i].x == ring[vi].x && ring[i].y < ring[vi].y)) {
      vi = i;
    }
  }
  const size_t n = ring.size() - 1;
  const Coord& v = ring[vi];
  const Coord& prev = ring[(vi + n - 1) % n];
  const Coord& next = ring[(vi + 1) % n];
  double t = 0.5;
  for (int iter = 0; iter < 40; ++iter) {
    Coord c{v.x + t * ((prev.x + next.x) / 2.0 - v.x),
            v.y + t * ((prev.y + next.y) / 2.0 - v.y)};
    if (LocateInRing(c, ring) == Location::kInterior) return c;
    t *= 0.5;
  }
  return v;  // degenerate ring; caller tolerates a boundary point
}

// ---------------------------------------------------------------------------
// Greiner–Hormann clipping on simple (hole-free, closed) rings.
// ---------------------------------------------------------------------------

struct GhVertex {
  Coord p;
  GhVertex* next = nullptr;
  GhVertex* prev = nullptr;
  bool intersect = false;
  GhVertex* neighbor = nullptr;
  bool entry = false;
  bool visited = false;
};

// Owns all vertices of one circular list.
struct GhList {
  std::deque<GhVertex> arena;
  std::vector<GhVertex*> originals;  // original ring vertices in order

  GhVertex* New(const Coord& p) {
    arena.push_back(GhVertex{p});
    return &arena.back();
  }

  // Builds the circular list from a closed ring (closing duplicate dropped).
  void Build(const Ring& ring) {
    const size_t n = ring.size() - 1;
    for (size_t i = 0; i < n; ++i) originals.push_back(New(ring[i]));
    for (size_t i = 0; i < n; ++i) {
      originals[i]->next = originals[(i + 1) % n];
      originals[i]->prev = originals[(i + n - 1) % n];
    }
  }
};

// Inserts `v` into the list between `from` and the next *original* vertex,
// ordered by alpha among already-inserted intersection vertices.
void InsertSorted(GhVertex* from, GhVertex* to_orig, GhVertex* v,
                  double alpha,
                  std::map<const GhVertex*, double>* alphas) {
  (*alphas)[v] = alpha;
  GhVertex* cur = from;
  while (cur->next != to_orig && (*alphas)[cur->next] < alpha) {
    cur = cur->next;
  }
  v->next = cur->next;
  v->prev = cur;
  cur->next->prev = v;
  cur->next = v;
}

// Result of one GH run: either rings, or "degenerate, please perturb".
struct GhOutcome {
  bool degenerate = false;
  bool no_intersections = false;
  std::vector<Ring> rings;
};

enum class GhMode { kIntersection, kUnion, kDifference };

GhOutcome RunGreinerHormann(const Ring& ring_a, const Ring& ring_b,
                            GhMode mode) {
  GhOutcome out;
  GhList la, lb;
  la.Build(ring_a);
  lb.Build(ring_b);
  std::map<const GhVertex*, double> alpha_a, alpha_b;

  bool any_intersections = false;
  for (size_t i = 0; i < la.originals.size(); ++i) {
    GhVertex* a0 = la.originals[i];
    GhVertex* a1 = la.originals[(i + 1) % la.originals.size()];
    for (size_t j = 0; j < lb.originals.size(); ++j) {
      GhVertex* b0 = lb.originals[j];
      GhVertex* b1 = lb.originals[(j + 1) % lb.originals.size()];
      const SegSegResult r = IntersectSegments(a0->p, a1->p, b0->p, b1->p);
      if (r.kind == SegSegKind::kNone) continue;
      if (r.kind == SegSegKind::kOverlap || !r.proper) {
        out.degenerate = true;
        return out;
      }
      const double ta = ParamAlongSegment(r.p0, a0->p, a1->p);
      const double tb = ParamAlongSegment(r.p0, b0->p, b1->p);
      if (ta <= 0.0 || ta >= 1.0 || tb <= 0.0 || tb >= 1.0) {
        out.degenerate = true;  // numerically endpoint-grazing
        return out;
      }
      GhVertex* va = la.New(r.p0);
      GhVertex* vb = lb.New(r.p0);
      va->intersect = vb->intersect = true;
      va->neighbor = vb;
      vb->neighbor = va;
      InsertSorted(a0, a1, va, ta, &alpha_a);
      InsertSorted(b0, b1, vb, tb, &alpha_b);
      any_intersections = true;
    }
  }

  if (!any_intersections) {
    out.no_intersections = true;
    return out;
  }
  // Closed curves cross an even number of times; an odd count means a
  // crossing was lost to near-parallel coincident edges — degenerate.
  size_t crossings = 0;
  for (const GhVertex& v : la.arena) {
    if (v.intersect) ++crossings;
  }
  if (crossings % 2 != 0) {
    out.degenerate = true;
    return out;
  }

  // Phase 2: entry/exit marking.
  const Location loc_a = LocateInRing(la.originals[0]->p, ring_b);
  const Location loc_b = LocateInRing(lb.originals[0]->p, ring_a);
  if (loc_a == Location::kBoundary || loc_b == Location::kBoundary) {
    out.degenerate = true;
    return out;
  }
  bool status_a = (loc_a == Location::kExterior);
  bool status_b = (loc_b == Location::kExterior);
  // Intersection: both normal. Union: both inverted. Difference (a - b):
  // invert the subject's marking only (Greiner & Hormann, section 5).
  if (mode == GhMode::kUnion) {
    status_a = !status_a;
    status_b = !status_b;
  } else if (mode == GhMode::kDifference) {
    status_a = !status_a;
  }
  for (GhVertex* v = la.originals[0];;) {
    if (v->intersect) {
      v->entry = status_a;
      status_a = !status_a;
    }
    v = v->next;
    if (v == la.originals[0]) break;
  }
  for (GhVertex* v = lb.originals[0];;) {
    if (v->intersect) {
      v->entry = status_b;
      status_b = !status_b;
    }
    v = v->next;
    if (v == lb.originals[0]) break;
  }

  // Phase 3: trace result rings.
  for (GhVertex& start : la.arena) {
    if (!start.intersect || start.visited) continue;
    Ring ring;
    GhVertex* v = &start;
    ring.push_back(v->p);
    // Bounded by total vertex count to guard against marker inconsistencies
    // caused by near-degenerate inputs (treated as degenerate => retry).
    const size_t limit = 4 * (la.arena.size() + lb.arena.size()) + 16;
    size_t steps = 0;
    bool failed = false;
    do {
      v->visited = true;
      if (v->neighbor != nullptr) v->neighbor->visited = true;
      if (v->entry) {
        do {
          v = v->next;
          ring.push_back(v->p);
        } while (!v->intersect && ++steps < limit);
      } else {
        do {
          v = v->prev;
          ring.push_back(v->p);
        } while (!v->intersect && ++steps < limit);
      }
      if (++steps >= limit) {
        failed = true;
        break;
      }
      v = v->neighbor;
    } while (v != &start && v->neighbor != &start);
    if (failed) {
      out.degenerate = true;
      out.rings.clear();
      return out;
    }
    // Close and clean the ring.
    if (ring.front() != ring.back()) ring.push_back(ring.front());
    Ring clean;
    for (const Coord& c : ring) {
      if (clean.empty() || clean.back() != c) clean.push_back(c);
    }
    if (!clean.empty() && clean.front() != clean.back()) {
      clean.push_back(clean.front());
    }
    if (clean.size() >= 4) out.rings.push_back(std::move(clean));
  }
  return out;
}

// ---------------------------------------------------------------------------
// Ring-set -> Region classification (shells vs holes by nesting parity).
// ---------------------------------------------------------------------------

Region RingsToRegion(std::vector<Ring> rings) {
  // Drop effectively-empty rings.
  std::vector<std::pair<double, Ring>> sized;
  for (Ring& r : rings) {
    const double area = std::abs(geom::SignedRingArea(r));
    if (area > 0.0) sized.emplace_back(area, std::move(r));
  }
  std::sort(sized.begin(), sized.end(),
            [](const auto& a, const auto& b) { return a.first > b.first; });

  struct Placed {
    Ring ring;
    bool is_shell;
    size_t poly_index;  // valid when is_shell
  };
  std::vector<Placed> placed;
  Region region;
  for (auto& [area, ring] : sized) {
    (void)area;
    const Coord rep = RingInteriorPoint(ring);
    int depth = 0;
    size_t innermost_shell_poly = SIZE_MAX;
    for (const Placed& p : placed) {
      if (LocateInRing(rep, p.ring) == Location::kInterior) {
        ++depth;
        if (p.is_shell) innermost_shell_poly = p.poly_index;
      }
    }
    if (depth % 2 == 0) {
      // Shell: orient CCW.
      if (!geom::IsCcw(ring)) std::reverse(ring.begin(), ring.end());
      region.push_back(PolygonData{ring, {}});
      placed.push_back(Placed{std::move(ring), true, region.size() - 1});
    } else {
      // Hole: orient CW, attach to the innermost containing shell.
      if (geom::IsCcw(ring)) std::reverse(ring.begin(), ring.end());
      if (innermost_shell_poly != SIZE_MAX) {
        region[innermost_shell_poly].holes.push_back(ring);
      }
      placed.push_back(Placed{std::move(ring), false, 0});
    }
  }
  return region;
}

// ---------------------------------------------------------------------------
// Robust GH wrapper with the deterministic perturbation ladder.
// ---------------------------------------------------------------------------

Ring PerturbRing(const Ring& ring, const Envelope& scale_env, int attempt) {
  const double extent =
      std::max({scale_env.Width(), scale_env.Height(), 1e-12});
  const double eps = extent * 1e-9 * std::pow(4.0, attempt);
  // Golden-angle rotation of the translation direction per attempt so that
  // successive attempts never share a degeneracy direction.
  const double theta = 2.399963229728653 * (attempt + 1);
  const double dx = eps * std::cos(theta);
  const double dy = eps * std::sin(theta);
  const Coord center = scale_env.Center();
  const double s = 1.0 + eps / extent;
  // A tiny rotation is essential: translation and scaling alone keep edges
  // parallel, so two polygons sharing a collinear seam would keep producing
  // parallel (never properly crossing) edge pairs on every attempt.
  const double rot = eps / extent;  // radians
  const double cr = std::cos(rot);
  const double sr = std::sin(rot);
  Ring out;
  out.reserve(ring.size());
  for (const Coord& c : ring) {
    const double rx = (c.x - center.x) * s;
    const double ry = (c.y - center.y) * s;
    out.push_back({center.x + rx * cr - ry * sr + dx,
                   center.y + rx * sr + ry * cr + dy});
  }
  return out;
}

// GH on two simple rings, retrying with perturbed `ring_b` on degeneracy.
// On success fills `region` (may be empty). `no_intersections` reports the
// disjoint/containment case so the caller can resolve it.
Status GhOp(const Ring& ring_a, const Ring& ring_b, GhMode mode,
            Region* region, bool* no_intersections) {
  constexpr int kMaxAttempts = 10;
  Envelope env = RingEnvelope(ring_a);
  env.ExpandToInclude(RingEnvelope(ring_b));
  for (int attempt = 0; attempt < kMaxAttempts; ++attempt) {
    const Ring& b = attempt == 0 ? ring_b : PerturbRing(ring_b, env, attempt);
    const Ring* b_ptr = attempt == 0 ? &ring_b : &b;
    GhOutcome out = RunGreinerHormann(ring_a, *b_ptr, mode);
    if (out.degenerate) continue;
    if (out.no_intersections) {
      *no_intersections = true;
      region->clear();
      return Status::Ok();
    }
    *no_intersections = false;
    *region = RingsToRegion(std::move(out.rings));
    return Status::Ok();
  }
  return Status::Internal(
      "overlay: perturbation ladder exhausted on degenerate input");
}

// Containment of one simple ring in another. Only called when the rings'
// boundaries do not cross, so every vertex of `inner` lies on one side of
// `outer`: the first vertex with a definite (non-boundary) location decides.
bool RingInsideRing(const Ring& inner, const Ring& outer) {
  for (const Coord& v : inner) {
    const Location loc = LocateInRing(v, outer);
    if (loc == Location::kInterior) return true;
    if (loc == Location::kExterior) return false;
  }
  // All vertices on the boundary: coincident rings count as contained.
  return true;
}

// a_shell OP b_shell for hole-free rings, resolving the no-intersection case.
Status SimpleRingOp(const Ring& a, const Ring& b, GhMode mode, Region* out) {
  bool no_int = false;
  JACKPINE_RETURN_IF_ERROR(GhOp(a, b, mode, out, &no_int));
  if (!no_int) return Status::Ok();
  const bool a_in_b = RingInsideRing(a, b);
  const bool b_in_a = !a_in_b && RingInsideRing(b, a);
  out->clear();
  switch (mode) {
    case GhMode::kIntersection:
      if (a_in_b) out->push_back(PolygonData{a, {}});
      if (b_in_a) out->push_back(PolygonData{b, {}});
      break;
    case GhMode::kUnion:
      if (a_in_b) {
        out->push_back(PolygonData{b, {}});
      } else if (b_in_a) {
        out->push_back(PolygonData{a, {}});
      } else {
        out->push_back(PolygonData{a, {}});
        out->push_back(PolygonData{b, {}});
      }
      break;
    case GhMode::kDifference:
      if (a_in_b) {
        // a entirely consumed.
      } else if (b_in_a) {
        Ring hole = b;
        if (geom::IsCcw(hole)) std::reverse(hole.begin(), hole.end());
        out->push_back(PolygonData{a, {hole}});
      } else {
        out->push_back(PolygonData{a, {}});
      }
      break;
  }
  return Status::Ok();
}

// Forward declarations of the region algebra.
Status DiffRegionSimple(const Region& a, const Ring& q, Region* out,
                        int depth = 0);
Status IntersectRegionSimple(const Region& a, const Ring& q, Region* out);

// True if the boundaries of the two rings meet at all.
bool RingsBoundaryIntersect(const Ring& r1, const Ring& r2) {
  if (!RingEnvelope(r1).Intersects(RingEnvelope(r2))) return false;
  for (size_t i = 0; i + 1 < r1.size(); ++i) {
    for (size_t j = 0; j + 1 < r2.size(); ++j) {
      if (IntersectSegments(r1[i], r1[i + 1], r2[j], r2[j + 1]).kind !=
          SegSegKind::kNone) {
        return true;
      }
    }
  }
  return false;
}

// A - q where q is a simple ring polygon.
Status DiffRegionSimple(const Region& a, const Ring& q, Region* out,
                        int depth) {
  if (depth > 64) {
    return Status::Internal("overlay: hole-subtraction recursion too deep");
  }
  out->clear();
  const Envelope qenv = RingEnvelope(q);
  for (const PolygonData& poly : a) {
    if (!PolyEnvelope(poly).Intersects(qenv)) {
      out->push_back(poly);
      continue;
    }
    // Exact fast path: when q's boundary meets neither the shell nor any
    // hole, the subtraction is pure bookkeeping — q becomes a hole, is
    // swallowed by a hole that contains it, or swallows holes it contains.
    // Besides being cheap, this path is what terminates hole-vs-hole
    // subtraction (the general path re-derives polygons hole by hole and
    // would alternate forever between two disjoint holes).
    if (!RingsBoundaryIntersect(poly.shell, q)) {
      if (!RingInsideRing(q, poly.shell)) {
        if (RingInsideRing(poly.shell, q)) {
          // q contains the whole shell: the polygon is consumed.
          continue;
        }
        // q outside the shell entirely (envelopes overlapped only).
        out->push_back(poly);
        continue;
      }
      bool resolved = true;
      bool noop = false;
      std::vector<Ring> new_holes;
      for (const Ring& hole : poly.holes) {
        if (RingsBoundaryIntersect(hole, q)) {
          resolved = false;  // q overlaps a hole boundary: general path
          break;
        }
        if (RingInsideRing(q, hole)) {
          noop = true;  // q inside an existing hole: nothing to subtract
          break;
        }
        if (RingInsideRing(hole, q)) continue;  // hole swallowed by q
        new_holes.push_back(hole);
      }
      if (noop) {
        out->push_back(poly);
        continue;
      }
      if (resolved) {
        Ring q_hole = q;
        if (geom::IsCcw(q_hole)) {
          std::reverse(q_hole.begin(), q_hole.end());
        }
        new_holes.push_back(std::move(q_hole));
        out->push_back(PolygonData{poly.shell, std::move(new_holes)});
        continue;
      }
    }
    Region pieces;
    JACKPINE_RETURN_IF_ERROR(
        SimpleRingOp(poly.shell, q, GhMode::kDifference, &pieces));
    // Re-subtract the polygon's own holes from the produced pieces.
    for (const Ring& hole : poly.holes) {
      Region next;
      JACKPINE_RETURN_IF_ERROR(DiffRegionSimple(pieces, hole, &next, depth + 1));
      pieces = std::move(next);
    }
    out->insert(out->end(), pieces.begin(), pieces.end());
  }
  return Status::Ok();
}

// A intersect q where q is a simple ring polygon.
Status IntersectRegionSimple(const Region& a, const Ring& q, Region* out) {
  out->clear();
  const Envelope qenv = RingEnvelope(q);
  for (const PolygonData& poly : a) {
    if (!PolyEnvelope(poly).Intersects(qenv)) continue;
    Region pieces;
    JACKPINE_RETURN_IF_ERROR(
        SimpleRingOp(poly.shell, q, GhMode::kIntersection, &pieces));
    for (const Ring& hole : poly.holes) {
      Region next;
      JACKPINE_RETURN_IF_ERROR(DiffRegionSimple(pieces, hole, &next));
      pieces = std::move(next);
    }
    out->insert(out->end(), pieces.begin(), pieces.end());
  }
  return Status::Ok();
}

// A - B for general regions: A - (Sb - holes) = (A - Sb) u (A ∩ holes).
Status DiffRegion(const Region& a, const Region& b, Region* out) {
  Region cur = a;
  for (const PolygonData& bp : b) {
    Region keep;
    JACKPINE_RETURN_IF_ERROR(DiffRegionSimple(cur, bp.shell, &keep));
    for (const Ring& hole : bp.holes) {
      Region recovered;
      JACKPINE_RETURN_IF_ERROR(IntersectRegionSimple(cur, hole, &recovered));
      keep.insert(keep.end(), recovered.begin(), recovered.end());
    }
    cur = std::move(keep);
  }
  *out = std::move(cur);
  return Status::Ok();
}

Status IntersectRegion(const Region& a, const Region& b, Region* out) {
  out->clear();
  for (const PolygonData& ap : a) {
    // A part of `a` clipped against region b = union over b's parts; parts
    // of b are interior-disjoint, so concatenation is exact.
    for (const PolygonData& bp : b) {
      if (!PolyEnvelope(ap).Intersects(PolyEnvelope(bp))) continue;
      Region pieces;
      JACKPINE_RETURN_IF_ERROR(
          SimpleRingOp(ap.shell, bp.shell, GhMode::kIntersection, &pieces));
      for (const Ring& hole : ap.holes) {
        Region next;
        JACKPINE_RETURN_IF_ERROR(DiffRegionSimple(pieces, hole, &next));
        pieces = std::move(next);
      }
      for (const Ring& hole : bp.holes) {
        Region next;
        JACKPINE_RETURN_IF_ERROR(DiffRegionSimple(pieces, hole, &next));
        pieces = std::move(next);
      }
      out->insert(out->end(), pieces.begin(), pieces.end());
    }
  }
  return Status::Ok();
}

// Quick interior-overlap test used to decide whether a union can dissolve.
bool PolysIntersect(const PolygonData& a, const PolygonData& b) {
  if (!PolyEnvelope(a).Intersects(PolyEnvelope(b))) return false;
  for (size_t i = 0; i + 1 < a.shell.size(); ++i) {
    for (size_t j = 0; j + 1 < b.shell.size(); ++j) {
      if (IntersectSegments(a.shell[i], a.shell[i + 1], b.shell[j],
                            b.shell[j + 1])
              .kind != SegSegKind::kNone) {
        return true;
      }
    }
  }
  return LocateInPolygon(RingInteriorPoint(a.shell), b) !=
             Location::kExterior ||
         LocateInPolygon(RingInteriorPoint(b.shell), a) != Location::kExterior;
}

// Dissolved union of two polygons (with holes):
// (Sa - Ha) u (Sb - Hb) = (Sa u Sb) - (Ha - b) - (Hb - a).
Status UnionTwoPolys(const PolygonData& a, const PolygonData& b, Region* out) {
  Region shells;
  JACKPINE_RETURN_IF_ERROR(
      SimpleRingOp(a.shell, b.shell, GhMode::kUnion, &shells));
  Region cur = std::move(shells);
  for (const Ring& hole : a.holes) {
    Region hole_minus_b;
    JACKPINE_RETURN_IF_ERROR(
        DiffRegion(Region{PolygonData{hole, {}}}, Region{b}, &hole_minus_b));
    Region next;
    JACKPINE_RETURN_IF_ERROR(DiffRegion(cur, hole_minus_b, &next));
    cur = std::move(next);
  }
  for (const Ring& hole : b.holes) {
    Region hole_minus_a;
    JACKPINE_RETURN_IF_ERROR(
        DiffRegion(Region{PolygonData{hole, {}}}, Region{a}, &hole_minus_a));
    Region next;
    JACKPINE_RETURN_IF_ERROR(DiffRegion(cur, hole_minus_a, &next));
    cur = std::move(next);
  }
  *out = std::move(cur);
  return Status::Ok();
}

// Cascaded union of all parts: repeatedly merge intersecting parts.
Status UnionRegion(const Region& a, const Region& b, Region* out) {
  std::vector<PolygonData> work = a;
  work.insert(work.end(), b.begin(), b.end());
  Region done;
  while (!work.empty()) {
    PolygonData cur = std::move(work.back());
    work.pop_back();
    bool merged_any = true;
    while (merged_any) {
      merged_any = false;
      for (size_t i = 0; i < work.size(); ++i) {
        if (!PolysIntersect(cur, work[i])) continue;
        Region merged;
        JACKPINE_RETURN_IF_ERROR(UnionTwoPolys(cur, work[i], &merged));
        if (merged.size() != 1) {
          // The pair did not dissolve into one polygon: a touching-only
          // contact that the perturbation ladder resolved as disjoint (or a
          // genuinely multi-part result). Keep both parts as they are —
          // re-queueing would retry the same non-merging pair forever. The
          // union as a point set stays correct; the parts merely share a
          // boundary seam.
          continue;
        }
        work.erase(work.begin() + static_cast<ptrdiff_t>(i));
        cur = std::move(merged.front());
        merged_any = true;
        break;
      }
    }
    done.push_back(std::move(cur));
  }
  *out = std::move(done);
  return Status::Ok();
}

// ---------------------------------------------------------------------------
// Geometry <-> Region conversion.
// ---------------------------------------------------------------------------

bool IsPolygonal(const Geometry& g) {
  return g.type() == GeometryType::kPolygon ||
         g.type() == GeometryType::kMultiPolygon;
}
bool IsLineal(const Geometry& g) {
  return g.type() == GeometryType::kLineString ||
         g.type() == GeometryType::kMultiLineString;
}
bool IsPuntal(const Geometry& g) {
  return g.type() == GeometryType::kPoint ||
         g.type() == GeometryType::kMultiPoint;
}

Region ToRegion(const Geometry& g) {
  Region region;
  for (const Geometry& leaf : g.Leaves()) {
    if (leaf.type() == GeometryType::kPolygon) {
      region.push_back(leaf.AsPolygon());
    }
  }
  return region;
}

Geometry RegionToGeometry(const Region& region) {
  std::vector<Geometry> polys;
  for (const PolygonData& p : region) {
    auto poly = Geometry::MakePolygon(p.shell, p.holes);
    if (poly.ok() && !poly->IsEmpty()) polys.push_back(std::move(poly).value());
  }
  if (polys.empty()) return Geometry::MakeEmpty(GeometryType::kPolygon);
  if (polys.size() == 1) return polys[0];
  auto multi = Geometry::MakeMultiPolygon(std::move(polys));
  return multi.ok() ? std::move(multi).value()
                    : Geometry::MakeEmpty(GeometryType::kMultiPolygon);
}

// ---------------------------------------------------------------------------
// Lineal clipping and line/line overlay.
// ---------------------------------------------------------------------------

// All boundary segments of a polygonal geometry.
std::vector<std::pair<Coord, Coord>> AreaBoundarySegments(const Geometry& g) {
  std::vector<std::pair<Coord, Coord>> segs;
  for (const Geometry& leaf : g.Leaves()) {
    if (leaf.type() != GeometryType::kPolygon) continue;
    const PolygonData& poly = leaf.AsPolygon();
    auto add = [&segs](const Ring& r) {
      for (size_t i = 0; i + 1 < r.size(); ++i) {
        segs.emplace_back(r[i], r[i + 1]);
      }
    };
    add(poly.shell);
    for (const Ring& hole : poly.holes) add(hole);
  }
  return segs;
}

// All segments of a lineal geometry.
std::vector<std::pair<Coord, Coord>> LineSegments(const Geometry& g) {
  std::vector<std::pair<Coord, Coord>> segs;
  for (const Geometry& leaf : g.Leaves()) {
    if (leaf.type() != GeometryType::kLineString) continue;
    const std::vector<Coord>& pts = leaf.AsLineString();
    for (size_t i = 0; i + 1 < pts.size(); ++i) {
      segs.emplace_back(pts[i], pts[i + 1]);
    }
  }
  return segs;
}

// Splits `path` at every intersection with `cut_segs` and returns the kept
// sub-paths according to `keep(midpoint)`.
std::vector<std::vector<Coord>> SplitAndFilterPath(
    const std::vector<Coord>& path,
    const std::vector<std::pair<Coord, Coord>>& cut_segs,
    const std::function<bool(const Coord&)>& keep) {
  std::vector<std::vector<Coord>> kept;
  std::vector<Coord> current;
  auto flush = [&]() {
    if (current.size() >= 2) kept.push_back(current);
    current.clear();
  };
  for (size_t i = 0; i + 1 < path.size(); ++i) {
    const Coord& a = path[i];
    const Coord& b = path[i + 1];
    std::vector<double> cuts = {0.0, 1.0};
    const Envelope seg_env(a, b);
    for (const auto& [c0, c1] : cut_segs) {
      if (!seg_env.Intersects(Envelope(c0, c1))) continue;
      const SegSegResult r = IntersectSegments(a, b, c0, c1);
      if (r.kind == SegSegKind::kPoint) {
        cuts.push_back(ParamAlongSegment(r.p0, a, b));
      } else if (r.kind == SegSegKind::kOverlap) {
        cuts.push_back(ParamAlongSegment(r.p0, a, b));
        cuts.push_back(ParamAlongSegment(r.p1, a, b));
      }
    }
    std::sort(cuts.begin(), cuts.end());
    cuts.erase(std::unique(cuts.begin(), cuts.end()), cuts.end());
    for (size_t k = 0; k + 1 < cuts.size(); ++k) {
      const double t0 = cuts[k];
      const double t1 = cuts[k + 1];
      if (t1 - t0 <= 0.0) continue;
      const Coord p0{a.x + t0 * (b.x - a.x), a.y + t0 * (b.y - a.y)};
      const Coord p1{a.x + t1 * (b.x - a.x), a.y + t1 * (b.y - a.y)};
      const Coord mid{(p0.x + p1.x) / 2.0, (p0.y + p1.y) / 2.0};
      if (keep(mid)) {
        if (current.empty()) {
          current.push_back(p0);
        } else if (current.back() != p0) {
          flush();
          current.push_back(p0);
        }
        current.push_back(p1);
      } else {
        flush();
      }
    }
  }
  flush();
  return kept;
}

Geometry LinesToGeometry(std::vector<std::vector<Coord>> paths) {
  std::vector<Geometry> lines;
  for (std::vector<Coord>& p : paths) {
    auto line = Geometry::MakeLineString(std::move(p));
    if (line.ok()) lines.push_back(std::move(line).value());
  }
  if (lines.empty()) return Geometry::MakeEmpty(GeometryType::kLineString);
  if (lines.size() == 1) return lines[0];
  auto multi = Geometry::MakeMultiLineString(std::move(lines));
  return multi.ok() ? std::move(multi).value()
                    : Geometry::MakeEmpty(GeometryType::kMultiLineString);
}

}  // namespace

Geometry ClipLineToArea(const Geometry& line, const Geometry& area,
                        bool inside) {
  const auto cut_segs = AreaBoundarySegments(area);
  auto keep = [&area, inside](const Coord& mid) {
    const Location loc = Locate(mid, area);
    return inside ? loc != Location::kExterior : loc == Location::kExterior;
  };
  std::vector<std::vector<Coord>> kept;
  for (const Geometry& leaf : line.Leaves()) {
    if (leaf.type() != GeometryType::kLineString) continue;
    auto parts = SplitAndFilterPath(leaf.AsLineString(), cut_segs, keep);
    kept.insert(kept.end(), std::make_move_iterator(parts.begin()),
                std::make_move_iterator(parts.end()));
  }
  return LinesToGeometry(std::move(kept));
}

namespace {

// line OP line.
Geometry LineLineOverlay(const Geometry& a, const Geometry& b, OverlayOp op) {
  const auto segs_b = LineSegments(b);
  const auto segs_a = LineSegments(a);
  auto on_b = [&b](const Coord& mid) {
    return Locate(mid, b) != Location::kExterior;
  };
  auto off_b = [&b](const Coord& mid) {
    return Locate(mid, b) == Location::kExterior;
  };
  auto off_a = [&a](const Coord& mid) {
    return Locate(mid, a) == Location::kExterior;
  };

  switch (op) {
    case OverlayOp::kIntersection: {
      // Collinear overlaps as lines plus isolated crossing points.
      std::vector<std::vector<Coord>> overlap_paths;
      for (const Geometry& leaf : a.Leaves()) {
        if (leaf.type() != GeometryType::kLineString) continue;
        auto parts = SplitAndFilterPath(leaf.AsLineString(), segs_b, on_b);
        overlap_paths.insert(overlap_paths.end(),
                             std::make_move_iterator(parts.begin()),
                             std::make_move_iterator(parts.end()));
      }
      Geometry lines = LinesToGeometry(overlap_paths);
      // Crossing points not covered by the overlap lines.
      std::vector<Geometry> points;
      for (const auto& [a0, a1] : segs_a) {
        for (const auto& [b0, b1] : segs_b) {
          const SegSegResult r = IntersectSegments(a0, a1, b0, b1);
          if (r.kind != SegSegKind::kPoint) continue;
          if (!lines.IsEmpty() && Locate(r.p0, lines) != Location::kExterior) {
            continue;
          }
          bool dup = false;
          for (const Geometry& p : points) {
            if (p.AsPoint() == r.p0) {
              dup = true;
              break;
            }
          }
          if (!dup) points.push_back(Geometry::MakePoint(r.p0));
        }
      }
      if (points.empty()) return lines;
      if (lines.IsEmpty()) {
        if (points.size() == 1) return points[0];
        auto mp = Geometry::MakeMultiPoint(std::move(points));
        return mp.ok() ? std::move(mp).value() : Geometry();
      }
      points.push_back(lines);
      return Geometry::MakeCollection(std::move(points));
    }
    case OverlayOp::kDifference: {
      std::vector<std::vector<Coord>> kept;
      for (const Geometry& leaf : a.Leaves()) {
        if (leaf.type() != GeometryType::kLineString) continue;
        auto parts = SplitAndFilterPath(leaf.AsLineString(), segs_b, off_b);
        kept.insert(kept.end(), std::make_move_iterator(parts.begin()),
                    std::make_move_iterator(parts.end()));
      }
      return LinesToGeometry(std::move(kept));
    }
    case OverlayOp::kUnion: {
      // a plus the portions of b not already covered by a.
      std::vector<std::vector<Coord>> extra;
      for (const Geometry& leaf : b.Leaves()) {
        if (leaf.type() != GeometryType::kLineString) continue;
        auto parts = SplitAndFilterPath(leaf.AsLineString(), segs_a, off_a);
        extra.insert(extra.end(), std::make_move_iterator(parts.begin()),
                     std::make_move_iterator(parts.end()));
      }
      std::vector<Geometry> lines = a.Leaves();
      Geometry more = LinesToGeometry(std::move(extra));
      for (Geometry& l : more.Leaves()) lines.push_back(std::move(l));
      auto multi = Geometry::MakeMultiLineString(std::move(lines));
      return multi.ok() ? std::move(multi).value() : a;
    }
    case OverlayOp::kSymDifference: {
      Geometry a_minus_b = LineLineOverlay(a, b, OverlayOp::kDifference);
      Geometry b_minus_a = LineLineOverlay(b, a, OverlayOp::kDifference);
      std::vector<Geometry> lines = a_minus_b.Leaves();
      for (Geometry& l : b_minus_a.Leaves()) lines.push_back(std::move(l));
      if (lines.empty()) return Geometry::MakeEmpty(GeometryType::kLineString);
      auto multi = Geometry::MakeMultiLineString(std::move(lines));
      return multi.ok() ? std::move(multi).value() : a_minus_b;
    }
  }
  return Geometry();
}

// point-set OP any geometry.
Geometry PointOverlay(const Geometry& points, const Geometry& other,
                      OverlayOp op, bool keep_covered) {
  std::vector<Geometry> kept;
  for (const Geometry& leaf : points.Leaves()) {
    if (leaf.type() != GeometryType::kPoint) continue;
    const bool covered = Locate(leaf.AsPoint(), other) != Location::kExterior;
    if (covered == keep_covered) kept.push_back(leaf);
  }
  (void)op;
  if (kept.empty()) return Geometry::MakeEmpty(GeometryType::kPoint);
  if (kept.size() == 1) return kept[0];
  auto mp = Geometry::MakeMultiPoint(std::move(kept));
  return mp.ok() ? std::move(mp).value() : Geometry();
}

Geometry StripEmpty(std::vector<Geometry> parts) {
  std::vector<Geometry> keep;
  for (Geometry& g : parts) {
    if (!g.IsEmpty()) keep.push_back(std::move(g));
  }
  if (keep.empty()) return Geometry();
  if (keep.size() == 1) return keep[0];
  return Geometry::MakeCollection(std::move(keep));
}

}  // namespace

Result<Geometry> Overlay(const Geometry& a, const Geometry& b, OverlayOp op) {
  // Empty-operand fast paths.
  if (a.IsEmpty() || b.IsEmpty()) {
    switch (op) {
      case OverlayOp::kIntersection:
        return Geometry::MakeEmpty(a.type());
      case OverlayOp::kDifference:
        return a;
      case OverlayOp::kUnion:
      case OverlayOp::kSymDifference:
        return a.IsEmpty() ? b : a;
    }
  }
  if (a.type() == GeometryType::kGeometryCollection ||
      b.type() == GeometryType::kGeometryCollection) {
    return Status::Unimplemented(
        "overlay on GEOMETRYCOLLECTION operands is not supported");
  }

  // Same-dimension cases.
  if (IsPolygonal(a) && IsPolygonal(b)) {
    const Region ra = ToRegion(a);
    const Region rb = ToRegion(b);
    Region out;
    switch (op) {
      case OverlayOp::kIntersection:
        JACKPINE_RETURN_IF_ERROR(IntersectRegion(ra, rb, &out));
        break;
      case OverlayOp::kUnion:
        JACKPINE_RETURN_IF_ERROR(UnionRegion(ra, rb, &out));
        break;
      case OverlayOp::kDifference:
        JACKPINE_RETURN_IF_ERROR(DiffRegion(ra, rb, &out));
        break;
      case OverlayOp::kSymDifference: {
        Region amb, bma;
        JACKPINE_RETURN_IF_ERROR(DiffRegion(ra, rb, &amb));
        JACKPINE_RETURN_IF_ERROR(DiffRegion(rb, ra, &bma));
        // Interior-disjoint by construction; concatenation is exact.
        out = std::move(amb);
        out.insert(out.end(), bma.begin(), bma.end());
        break;
      }
    }
    return RegionToGeometry(out);
  }
  if (IsLineal(a) && IsLineal(b)) return LineLineOverlay(a, b, op);
  if (IsPuntal(a) && IsPuntal(b)) {
    switch (op) {
      case OverlayOp::kIntersection:
        return PointOverlay(a, b, op, /*keep_covered=*/true);
      case OverlayOp::kDifference:
        return PointOverlay(a, b, op, /*keep_covered=*/false);
      case OverlayOp::kUnion: {
        std::vector<Geometry> pts = a.Leaves();
        Geometry extra = PointOverlay(b, a, op, /*keep_covered=*/false);
        for (Geometry& p : extra.Leaves()) pts.push_back(std::move(p));
        auto mp = Geometry::MakeMultiPoint(std::move(pts));
        return mp.ok() ? std::move(mp).value() : a;
      }
      case OverlayOp::kSymDifference: {
        Geometry amb = PointOverlay(a, b, op, /*keep_covered=*/false);
        Geometry bma = PointOverlay(b, a, op, /*keep_covered=*/false);
        std::vector<Geometry> pts = amb.Leaves();
        for (Geometry& p : bma.Leaves()) pts.push_back(std::move(p));
        if (pts.empty()) return Geometry::MakeEmpty(GeometryType::kPoint);
        auto mp = Geometry::MakeMultiPoint(std::move(pts));
        return mp.ok() ? std::move(mp).value() : amb;
      }
    }
  }

  // Mixed-dimension cases.
  const bool a_higher = a.Dimension() > b.Dimension();
  const Geometry& hi = a_higher ? a : b;
  const Geometry& lo = a_higher ? b : a;
  switch (op) {
    case OverlayOp::kIntersection: {
      if (IsPuntal(lo)) return PointOverlay(lo, hi, op, /*keep_covered=*/true);
      // line ∩ polygon.
      return ClipLineToArea(lo, hi, /*inside=*/true);
    }
    case OverlayOp::kDifference: {
      if (a_higher) return a;  // removing a lower-dim set changes nothing
      if (IsPuntal(a)) return PointOverlay(a, b, op, /*keep_covered=*/false);
      return ClipLineToArea(a, b, /*inside=*/false);
    }
    case OverlayOp::kUnion:
    case OverlayOp::kSymDifference: {
      // Collection of the higher-dim geometry and the uncovered part of the
      // lower-dim one (the PostGIS convention).
      Geometry lo_outside;
      if (IsPuntal(lo)) {
        lo_outside = PointOverlay(lo, hi, op, /*keep_covered=*/false);
      } else {
        lo_outside = ClipLineToArea(lo, hi, /*inside=*/false);
      }
      return StripEmpty({hi, lo_outside});
    }
  }
  return Status::Internal("overlay: unhandled case");
}

Result<Geometry> UnionAll(const std::vector<Geometry>& geometries) {
  Region region;
  std::vector<Geometry> non_area;
  for (const Geometry& g : geometries) {
    for (const Geometry& leaf : g.Leaves()) {
      if (leaf.type() == GeometryType::kPolygon) {
        Region next;
        JACKPINE_RETURN_IF_ERROR(
            UnionRegion(region, Region{leaf.AsPolygon()}, &next));
        region = std::move(next);
      } else {
        non_area.push_back(leaf);
      }
    }
  }
  Geometry area = RegionToGeometry(region);
  if (non_area.empty()) return area;
  if (area.IsEmpty() && non_area.size() == 1) return non_area[0];
  std::vector<Geometry> parts = std::move(non_area);
  if (!area.IsEmpty()) parts.push_back(area);
  return Geometry::MakeCollection(std::move(parts));
}

}  // namespace jackpine::algo
