#include "algo/segment_intersection.h"

#include <algorithm>
#include <cmath>

#include "algo/orientation.h"

namespace jackpine::algo {

namespace {

// Envelope-style quick rejection for two segments.
bool BoxesOverlap(const Coord& a0, const Coord& a1, const Coord& b0,
                  const Coord& b1) {
  return std::max(b0.x, b1.x) >= std::min(a0.x, a1.x) &&
         std::min(b0.x, b1.x) <= std::max(a0.x, a1.x) &&
         std::max(b0.y, b1.y) >= std::min(a0.y, a1.y) &&
         std::min(b0.y, b1.y) <= std::max(a0.y, a1.y);
}

}  // namespace

double ParamAlongSegment(const Coord& p, const Coord& a, const Coord& b) {
  const double dx = b.x - a.x;
  const double dy = b.y - a.y;
  const double len2 = dx * dx + dy * dy;
  if (len2 == 0.0) return 0.0;
  const double t = ((p.x - a.x) * dx + (p.y - a.y) * dy) / len2;
  return std::clamp(t, 0.0, 1.0);
}

Coord ClosestPointOnSegment(const Coord& p, const Coord& a, const Coord& b) {
  const double t = ParamAlongSegment(p, a, b);
  return {a.x + t * (b.x - a.x), a.y + t * (b.y - a.y)};
}

double DistancePointToSegment(const Coord& p, const Coord& a, const Coord& b) {
  return DistanceBetween(p, ClosestPointOnSegment(p, a, b));
}

bool PointNearSegment(const Coord& p, const Coord& a, const Coord& b,
                      double relative_eps) {
  const double scale =
      std::max({std::abs(a.x), std::abs(a.y), std::abs(b.x), std::abs(b.y),
                std::abs(p.x), std::abs(p.y), 1.0});
  const double eps = relative_eps * scale;
  if (p.x < std::min(a.x, b.x) - eps || p.x > std::max(a.x, b.x) + eps ||
      p.y < std::min(a.y, b.y) - eps || p.y > std::max(a.y, b.y) + eps) {
    return false;
  }
  return DistancePointToSegment(p, a, b) <= eps;
}

double DistanceSegmentToSegment(const Coord& a0, const Coord& a1,
                                const Coord& b0, const Coord& b1) {
  if (IntersectSegments(a0, a1, b0, b1).kind != SegSegKind::kNone) return 0.0;
  return std::min(std::min(DistancePointToSegment(a0, b0, b1),
                           DistancePointToSegment(a1, b0, b1)),
                  std::min(DistancePointToSegment(b0, a0, a1),
                           DistancePointToSegment(b1, a0, a1)));
}

SegSegResult IntersectSegments(const Coord& a0, const Coord& a1,
                               const Coord& b0, const Coord& b1) {
  SegSegResult out;
  if (!BoxesOverlap(a0, a1, b0, b1)) return out;

  const int o1 = Orientation(a0, a1, b0);
  const int o2 = Orientation(a0, a1, b1);
  const int o3 = Orientation(b0, b1, a0);
  const int o4 = Orientation(b0, b1, a1);

  if (o1 != o2 && o3 != o4 && o1 != 0 && o2 != 0 && o3 != 0 && o4 != 0) {
    // Proper crossing: solve the 2x2 linear system for the crossing point.
    const double dax = a1.x - a0.x;
    const double day = a1.y - a0.y;
    const double dbx = b1.x - b0.x;
    const double dby = b1.y - b0.y;
    const double denom = dax * dby - day * dbx;
    // denom != 0 because the orientations certify non-parallel.
    const double t = ((b0.x - a0.x) * dby - (b0.y - a0.y) * dbx) / denom;
    out.kind = SegSegKind::kPoint;
    out.p0 = {a0.x + t * dax, a0.y + t * day};
    out.proper = true;
    return out;
  }

  if (o1 == 0 && o2 == 0 && o3 == 0 && o4 == 0) {
    // Collinear. Project on the dominant axis to find the shared interval.
    const bool use_x = std::abs(a1.x - a0.x) >= std::abs(a1.y - a0.y);
    auto key = [use_x](const Coord& c) { return use_x ? c.x : c.y; };
    Coord alo = a0, ahi = a1, blo = b0, bhi = b1;
    if (key(alo) > key(ahi)) std::swap(alo, ahi);
    if (key(blo) > key(bhi)) std::swap(blo, bhi);
    const Coord lo = key(alo) >= key(blo) ? alo : blo;
    const Coord hi = key(ahi) <= key(bhi) ? ahi : bhi;
    if (key(lo) > key(hi)) return out;  // disjoint collinear
    if (lo == hi) {
      out.kind = SegSegKind::kPoint;
      out.p0 = lo;
      return out;
    }
    out.kind = SegSegKind::kOverlap;
    out.p0 = lo;
    out.p1 = hi;
    return out;
  }

  // Non-collinear but with an endpoint touching the other segment.
  if (o1 == 0 && PointOnSegment(b0, a0, a1)) {
    out.kind = SegSegKind::kPoint;
    out.p0 = b0;
    return out;
  }
  if (o2 == 0 && PointOnSegment(b1, a0, a1)) {
    out.kind = SegSegKind::kPoint;
    out.p0 = b1;
    return out;
  }
  if (o3 == 0 && PointOnSegment(a0, b0, b1)) {
    out.kind = SegSegKind::kPoint;
    out.p0 = a0;
    return out;
  }
  if (o4 == 0 && PointOnSegment(a1, b0, b1)) {
    out.kind = SegSegKind::kPoint;
    out.p0 = a1;
    return out;
  }
  return out;
}

}  // namespace jackpine::algo
