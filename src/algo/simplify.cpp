#include "algo/simplify.h"

#include <vector>

#include "algo/segment_intersection.h"

namespace jackpine::algo {

using geom::Coord;
using geom::Geometry;
using geom::GeometryType;
using geom::Ring;

namespace {

void DouglasPeucker(const std::vector<Coord>& pts, size_t lo, size_t hi,
                    double tolerance, std::vector<bool>* keep) {
  if (hi <= lo + 1) return;
  double worst = -1.0;
  size_t worst_idx = lo;
  for (size_t i = lo + 1; i < hi; ++i) {
    const double d = DistancePointToSegment(pts[i], pts[lo], pts[hi]);
    if (d > worst) {
      worst = d;
      worst_idx = i;
    }
  }
  if (worst > tolerance) {
    (*keep)[worst_idx] = true;
    DouglasPeucker(pts, lo, worst_idx, tolerance, keep);
    DouglasPeucker(pts, worst_idx, hi, tolerance, keep);
  }
}

}  // namespace

std::vector<Coord> SimplifyPath(const std::vector<Coord>& pts,
                                double tolerance) {
  if (pts.size() <= 2) return pts;
  std::vector<bool> keep(pts.size(), false);
  keep.front() = keep.back() = true;
  DouglasPeucker(pts, 0, pts.size() - 1, tolerance, &keep);
  std::vector<Coord> out;
  for (size_t i = 0; i < pts.size(); ++i) {
    if (keep[i]) out.push_back(pts[i]);
  }
  return out;
}

Geometry Simplify(const Geometry& g, double tolerance) {
  if (g.IsEmpty()) return g;
  switch (g.type()) {
    case GeometryType::kPoint:
    case GeometryType::kMultiPoint:
      return g;
    case GeometryType::kLineString: {
      std::vector<Coord> out = SimplifyPath(g.AsLineString(), tolerance);
      if (out.size() < 2) return Geometry::MakeEmpty(GeometryType::kLineString);
      auto line = Geometry::MakeLineString(std::move(out));
      return line.ok() ? std::move(line).value() : g;
    }
    case GeometryType::kPolygon: {
      const geom::PolygonData& poly = g.AsPolygon();
      Ring shell = SimplifyPath(poly.shell, tolerance);
      if (shell.size() < 4) return Geometry::MakeEmpty(GeometryType::kPolygon);
      std::vector<Ring> holes;
      for (const Ring& hole : poly.holes) {
        Ring h = SimplifyPath(hole, tolerance);
        if (h.size() >= 4) holes.push_back(std::move(h));
      }
      auto out = Geometry::MakePolygon(std::move(shell), std::move(holes));
      return out.ok() ? std::move(out).value() : g;
    }
    default: {
      std::vector<Geometry> parts;
      for (const Geometry& part : g.Parts()) {
        Geometry s = Simplify(part, tolerance);
        if (!s.IsEmpty()) parts.push_back(std::move(s));
      }
      if (parts.empty()) return Geometry::MakeEmpty(g.type());
      return Geometry::MakeCollectionOfType(g.type(), std::move(parts));
    }
  }
}

}  // namespace jackpine::algo
