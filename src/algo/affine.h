// Affine transformations of geometries (ST_Translate / ST_Rotate /
// ST_Scale) and directional measures (ST_Azimuth). Map-rendering scenarios
// use these for viewport mathematics.

#ifndef JACKPINE_ALGO_AFFINE_H_
#define JACKPINE_ALGO_AFFINE_H_

#include "common/status.h"
#include "geom/geometry.h"

namespace jackpine::algo {

// A 2-D affine map: p -> (a*x + b*y + dx, c*x + d*y + dy).
struct AffineTransform {
  double a = 1.0, b = 0.0, c = 0.0, d = 1.0;
  double dx = 0.0, dy = 0.0;

  static AffineTransform Translation(double tx, double ty);
  static AffineTransform Scaling(double sx, double sy,
                                 const geom::Coord& origin = {0, 0});
  // Counter-clockwise rotation by `radians` around `origin`.
  static AffineTransform Rotation(double radians,
                                  const geom::Coord& origin = {0, 0});

  geom::Coord Apply(const geom::Coord& p) const {
    return {a * p.x + b * p.y + dx, c * p.x + d * p.y + dy};
  }

  // Composition: (this * other)(p) == this(other(p)).
  AffineTransform Compose(const AffineTransform& other) const;
};

// Applies `t` to every coordinate of `g`. Ring orientation is re-normalised,
// so reflections (negative-determinant transforms) stay valid polygons.
geom::Geometry Transform(const geom::Geometry& g, const AffineTransform& t);

// North-based azimuth from `a` to `b` in radians, clockwise, in [0, 2*pi)
// (the PostGIS convention). Identical points yield an error.
Result<double> Azimuth(const geom::Coord& a, const geom::Coord& b);

}  // namespace jackpine::algo

#endif  // JACKPINE_ALGO_AFFINE_H_
