// Geometry overlay (boolean) operations: ST_Intersection, ST_Union,
// ST_Difference, ST_SymDifference.
//
// Polygon/polygon booleans use the Greiner–Hormann clipping algorithm on
// rings. Greiner–Hormann does not handle degenerate configurations (shared
// vertices, collinear edge overlaps), so degeneracies are detected and the
// second operand is perturbed by a deterministic, envelope-scaled epsilon and
// the operation retried; see DESIGN.md "overlay robustness". The perturbation
// is at most ~1e-6 of the inputs' extent, far below the precision the
// benchmark queries care about.
//
// Mixed-dimension combinations are supported where the benchmark needs them:
// line/polygon clipping (flood-risk and toxic-spill scenarios), point/any,
// and line/line overlap extraction.

#ifndef JACKPINE_ALGO_OVERLAY_H_
#define JACKPINE_ALGO_OVERLAY_H_

#include <vector>

#include "common/status.h"
#include "geom/geometry.h"

namespace jackpine::algo {

enum class OverlayOp : uint8_t {
  kIntersection,
  kUnion,
  kDifference,     // a - b
  kSymDifference,  // (a - b) u (b - a)
};

// Point-set overlay of two geometries. The result's type is the natural one
// (POLYGON / MULTIPOLYGON for area results, MULTILINESTRING for clipped
// lines, GEOMETRYCOLLECTION when mixed). Returns an error only when the
// perturbation ladder fails to resolve a degenerate polygon overlay.
Result<geom::Geometry> Overlay(const geom::Geometry& a, const geom::Geometry& b,
                               OverlayOp op);

inline Result<geom::Geometry> Intersection(const geom::Geometry& a,
                                           const geom::Geometry& b) {
  return Overlay(a, b, OverlayOp::kIntersection);
}
inline Result<geom::Geometry> Union(const geom::Geometry& a,
                                    const geom::Geometry& b) {
  return Overlay(a, b, OverlayOp::kUnion);
}
inline Result<geom::Geometry> Difference(const geom::Geometry& a,
                                         const geom::Geometry& b) {
  return Overlay(a, b, OverlayOp::kDifference);
}
inline Result<geom::Geometry> SymDifference(const geom::Geometry& a,
                                            const geom::Geometry& b) {
  return Overlay(a, b, OverlayOp::kSymDifference);
}

// Cascaded union of many polygonal geometries (used by ST_Buffer and the
// flood-risk scenario). Non-polygonal parts are passed through unioned as a
// collection.
Result<geom::Geometry> UnionAll(const std::vector<geom::Geometry>& geometries);

// Clips the lineal geometry `line` against polygonal geometry `area`:
// `inside` = true keeps the covered portions, false the uncovered ones.
// Exposed directly because the scenario queries use it heavily.
geom::Geometry ClipLineToArea(const geom::Geometry& line,
                              const geom::Geometry& area, bool inside);

}  // namespace jackpine::algo

#endif  // JACKPINE_ALGO_OVERLAY_H_
