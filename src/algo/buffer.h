// ST_Buffer: dilation of a geometry by a radius.
//
// The buffer is built as the dissolved union of convex pieces: a sampled
// circle for each vertex/point and a rectangle for each segment (together a
// "capsule" per segment), plus the polygon body itself for areal inputs.
// Union robustness relies on the overlay module's perturbation ladder; the
// arc approximation uses `quadrant_segments` samples per quarter circle
// (PostGIS default 8).

#ifndef JACKPINE_ALGO_BUFFER_H_
#define JACKPINE_ALGO_BUFFER_H_

#include "common/status.h"
#include "geom/geometry.h"

namespace jackpine::algo {

// Positive-radius buffer of any geometry. radius <= 0 returns an empty
// polygon for puntal/lineal inputs; negative buffers of polygons (erosion)
// are not supported and return InvalidArgument (documented limitation).
Result<geom::Geometry> Buffer(const geom::Geometry& g, double radius,
                              int quadrant_segments = 8);

}  // namespace jackpine::algo

#endif  // JACKPINE_ALGO_BUFFER_H_
