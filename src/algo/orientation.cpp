#include "algo/orientation.h"

#include <algorithm>
#include <cmath>

namespace jackpine::algo {

double Cross(const Coord& a, const Coord& b, const Coord& c) {
  return (b.x - a.x) * (c.y - a.y) - (b.y - a.y) * (c.x - a.x);
}

int Orientation(const Coord& a, const Coord& b, const Coord& c) {
  // Shewchuk-style static filter: if |det| exceeds the worst-case rounding
  // error of the double computation, the sign is certain.
  const double detleft = (b.x - a.x) * (c.y - a.y);
  const double detright = (b.y - a.y) * (c.x - a.x);
  const double det = detleft - detright;
  const double detsum = std::abs(detleft) + std::abs(detright);
  constexpr double kErrBound = 3.3306690738754716e-16;  // ~ 2^-52 * 1.5
  if (std::abs(det) >= kErrBound * detsum) {
    return det > 0 ? 1 : (det < 0 ? -1 : 0);
  }
  // Uncertain zone: evaluate in quad precision, where the sign is EXACT for
  // double inputs. Doubles convert exactly; a difference of two doubles and
  // a product of two such differences (<= 108 mantissa bits) are exact in
  // the 113-bit __float128 format, and the final subtraction rounds to zero
  // only when the true value is zero.
  const __float128 ax = a.x, ay = a.y, bx = b.x, by = b.y, cx = c.x, cy = c.y;
  const __float128 d = (bx - ax) * (cy - ay) - (by - ay) * (cx - ax);
  if (d > 0) return 1;
  if (d < 0) return -1;
  return 0;
}

bool PointOnSegment(const Coord& p, const Coord& a, const Coord& b) {
  if (Orientation(a, b, p) != 0) return false;
  return p.x >= std::min(a.x, b.x) && p.x <= std::max(a.x, b.x) &&
         p.y >= std::min(a.y, b.y) && p.y <= std::max(a.y, b.y);
}

}  // namespace jackpine::algo
