#include "algo/linear_reference.h"

#include <algorithm>
#include <cmath>
#include <limits>

#include "algo/point_in_polygon.h"
#include "algo/segment_intersection.h"

namespace jackpine::algo {

using geom::Coord;
using geom::Geometry;
using geom::GeometryType;

namespace {

Status RequireLineString(const Geometry& g) {
  if (g.type() != GeometryType::kLineString || g.IsEmpty()) {
    return Status::InvalidArgument("expected a non-empty LINESTRING");
  }
  return Status::Ok();
}

double PathLength(const std::vector<Coord>& pts) {
  double len = 0.0;
  for (size_t i = 0; i + 1 < pts.size(); ++i) {
    len += DistanceBetween(pts[i], pts[i + 1]);
  }
  return len;
}

Coord PointAtDistance(const std::vector<Coord>& pts, double target) {
  double walked = 0.0;
  for (size_t i = 0; i + 1 < pts.size(); ++i) {
    const double seg = DistanceBetween(pts[i], pts[i + 1]);
    if (walked + seg >= target && seg > 0.0) {
      const double t = (target - walked) / seg;
      return {pts[i].x + t * (pts[i + 1].x - pts[i].x),
              pts[i].y + t * (pts[i + 1].y - pts[i].y)};
    }
    walked += seg;
  }
  return pts.back();
}

}  // namespace

Result<Geometry> LineInterpolatePoint(const Geometry& line, double fraction) {
  JACKPINE_RETURN_IF_ERROR(RequireLineString(line));
  const std::vector<Coord>& pts = line.AsLineString();
  const double f = std::clamp(fraction, 0.0, 1.0);
  return Geometry::MakePoint(PointAtDistance(pts, f * PathLength(pts)));
}

Result<double> LineLocatePoint(const Geometry& line, const Coord& p) {
  JACKPINE_RETURN_IF_ERROR(RequireLineString(line));
  const std::vector<Coord>& pts = line.AsLineString();
  const double total = PathLength(pts);
  if (total == 0.0) return 0.0;
  double best_dist = std::numeric_limits<double>::infinity();
  double best_at = 0.0;
  double walked = 0.0;
  for (size_t i = 0; i + 1 < pts.size(); ++i) {
    const Coord closest = ClosestPointOnSegment(p, pts[i], pts[i + 1]);
    const double d = DistanceBetween(p, closest);
    if (d < best_dist) {
      best_dist = d;
      best_at = walked + DistanceBetween(pts[i], closest);
    }
    walked += DistanceBetween(pts[i], pts[i + 1]);
  }
  return std::clamp(best_at / total, 0.0, 1.0);
}

Geometry ClosestPoint(const Geometry& g, const Coord& p) {
  if (g.IsEmpty()) return Geometry::MakeEmpty(GeometryType::kPoint);
  double best_dist = std::numeric_limits<double>::infinity();
  Coord best = p;
  for (const Geometry& leaf : g.Leaves()) {
    switch (leaf.type()) {
      case GeometryType::kPoint: {
        const double d = DistanceBetween(p, leaf.AsPoint());
        if (d < best_dist) {
          best_dist = d;
          best = leaf.AsPoint();
        }
        break;
      }
      case GeometryType::kLineString: {
        const std::vector<Coord>& pts = leaf.AsLineString();
        for (size_t i = 0; i + 1 < pts.size(); ++i) {
          const Coord c = ClosestPointOnSegment(p, pts[i], pts[i + 1]);
          const double d = DistanceBetween(p, c);
          if (d < best_dist) {
            best_dist = d;
            best = c;
          }
        }
        break;
      }
      case GeometryType::kPolygon: {
        // Inside the polygon the closest point is p itself.
        const geom::PolygonData& poly = leaf.AsPolygon();
        auto scan = [&](const geom::Ring& ring) {
          for (size_t i = 0; i + 1 < ring.size(); ++i) {
            const Coord c = ClosestPointOnSegment(p, ring[i], ring[i + 1]);
            const double d = DistanceBetween(p, c);
            if (d < best_dist) {
              best_dist = d;
              best = c;
            }
          }
        };
        // Cheap interior test via the winding of the shell only would be
        // wrong with holes; LocateInPolygon handles both.
        if (LocateInPolygon(p, poly) != Location::kExterior) {
          return Geometry::MakePoint(p);
        }
        scan(poly.shell);
        for (const geom::Ring& hole : poly.holes) scan(hole);
        break;
      }
      default:
        break;
    }
  }
  return Geometry::MakePoint(best);
}

Result<Geometry> LineSubstring(const Geometry& line, double from, double to) {
  JACKPINE_RETURN_IF_ERROR(RequireLineString(line));
  double f0 = std::clamp(from, 0.0, 1.0);
  double f1 = std::clamp(to, 0.0, 1.0);
  if (f0 > f1) std::swap(f0, f1);
  const std::vector<Coord>& pts = line.AsLineString();
  const double total = PathLength(pts);
  const double d0 = f0 * total;
  const double d1 = f1 * total;
  if (d1 - d0 <= 0.0) {
    return Geometry::MakePoint(PointAtDistance(pts, d0));
  }
  std::vector<Coord> out;
  out.push_back(PointAtDistance(pts, d0));
  double walked = 0.0;
  for (size_t i = 0; i + 1 < pts.size(); ++i) {
    const double seg = DistanceBetween(pts[i], pts[i + 1]);
    const double end = walked + seg;
    if (end > d0 && end < d1 && pts[i + 1] != out.back()) {
      out.push_back(pts[i + 1]);
    }
    walked = end;
    if (walked >= d1) break;
  }
  const Coord last = PointAtDistance(pts, d1);
  if (last != out.back()) out.push_back(last);
  if (out.size() < 2) return Geometry::MakePoint(out.front());
  return Geometry::MakeLineString(std::move(out));
}

}  // namespace jackpine::algo
