// Convex hull (Andrew's monotone chain).

#ifndef JACKPINE_ALGO_CONVEX_HULL_H_
#define JACKPINE_ALGO_CONVEX_HULL_H_

#include "geom/geometry.h"

namespace jackpine::algo {

// Convex hull of all coordinates in `g`. Result type follows PostGIS:
// POLYGON for >= 3 non-collinear points, LINESTRING for collinear input,
// POINT for a single point, empty GEOMETRYCOLLECTION for empty input.
geom::Geometry ConvexHull(const geom::Geometry& g);

// Hull of a raw coordinate set (CCW, closed ring, no repeated last point
// except the closure). Exposed for tests and the overlay code.
geom::Ring ConvexHullRing(std::vector<geom::Coord> points);

}  // namespace jackpine::algo

#endif  // JACKPINE_ALGO_CONVEX_HULL_H_
