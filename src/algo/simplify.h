// Douglas–Peucker line simplification (ST_Simplify).

#ifndef JACKPINE_ALGO_SIMPLIFY_H_
#define JACKPINE_ALGO_SIMPLIFY_H_

#include "geom/geometry.h"

namespace jackpine::algo {

// Simplifies lineal and polygonal geometries with the Douglas–Peucker
// algorithm at the given distance tolerance. Points pass through unchanged.
// Polygon rings that collapse below 4 points are dropped (a collapsed shell
// makes the polygon empty), matching the PostGIS contract.
geom::Geometry Simplify(const geom::Geometry& g, double tolerance);

// Raw path simplification; keeps first and last points.
std::vector<geom::Coord> SimplifyPath(const std::vector<geom::Coord>& pts,
                                      double tolerance);

}  // namespace jackpine::algo

#endif  // JACKPINE_ALGO_SIMPLIFY_H_
