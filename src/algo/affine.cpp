#include "algo/affine.h"

#include <cmath>

namespace jackpine::algo {

using geom::Coord;
using geom::Geometry;
using geom::GeometryType;
using geom::Ring;

AffineTransform AffineTransform::Translation(double tx, double ty) {
  AffineTransform t;
  t.dx = tx;
  t.dy = ty;
  return t;
}

AffineTransform AffineTransform::Scaling(double sx, double sy,
                                         const Coord& origin) {
  AffineTransform t;
  t.a = sx;
  t.d = sy;
  t.dx = origin.x * (1.0 - sx);
  t.dy = origin.y * (1.0 - sy);
  return t;
}

AffineTransform AffineTransform::Rotation(double radians,
                                          const Coord& origin) {
  const double cs = std::cos(radians);
  const double sn = std::sin(radians);
  AffineTransform t;
  t.a = cs;
  t.b = -sn;
  t.c = sn;
  t.d = cs;
  t.dx = origin.x - cs * origin.x + sn * origin.y;
  t.dy = origin.y - sn * origin.x - cs * origin.y;
  return t;
}

AffineTransform AffineTransform::Compose(const AffineTransform& o) const {
  AffineTransform t;
  t.a = a * o.a + b * o.c;
  t.b = a * o.b + b * o.d;
  t.c = c * o.a + d * o.c;
  t.d = c * o.b + d * o.d;
  t.dx = a * o.dx + b * o.dy + dx;
  t.dy = c * o.dx + d * o.dy + dy;
  return t;
}

namespace {

std::vector<Coord> TransformPath(const std::vector<Coord>& pts,
                                 const AffineTransform& t) {
  std::vector<Coord> out;
  out.reserve(pts.size());
  for (const Coord& c : pts) out.push_back(t.Apply(c));
  return out;
}

}  // namespace

Geometry Transform(const Geometry& g, const AffineTransform& t) {
  if (g.IsEmpty()) return g;
  switch (g.type()) {
    case GeometryType::kPoint:
      return Geometry::MakePoint(t.Apply(g.AsPoint()));
    case GeometryType::kLineString: {
      auto line = Geometry::MakeLineString(TransformPath(g.AsLineString(), t));
      return line.ok() ? std::move(line).value() : g;
    }
    case GeometryType::kPolygon: {
      const geom::PolygonData& poly = g.AsPolygon();
      Ring shell = TransformPath(poly.shell, t);
      std::vector<Ring> holes;
      for (const Ring& hole : poly.holes) {
        holes.push_back(TransformPath(hole, t));
      }
      // MakePolygon re-normalises ring orientation, which handles
      // reflections (negative determinant) transparently.
      auto out = Geometry::MakePolygon(std::move(shell), std::move(holes));
      return out.ok() ? std::move(out).value() : g;
    }
    default: {
      std::vector<Geometry> parts;
      for (const Geometry& part : g.Parts()) {
        parts.push_back(Transform(part, t));
      }
      return Geometry::MakeCollectionOfType(g.type(), std::move(parts));
    }
  }
}

Result<double> Azimuth(const Coord& a, const Coord& b) {
  if (a == b) {
    return Status::InvalidArgument("azimuth of coincident points");
  }
  // atan2 measured from north (positive y), clockwise.
  double az = std::atan2(b.x - a.x, b.y - a.y);
  if (az < 0) az += 2.0 * M_PI;
  return az;
}

}  // namespace jackpine::algo
