// Geometry-to-geometry Euclidean distance (ST_Distance, ST_DWithin).

#ifndef JACKPINE_ALGO_DISTANCE_H_
#define JACKPINE_ALGO_DISTANCE_H_

#include "geom/geometry.h"

namespace jackpine::geom {
class Envelope;
}  // namespace jackpine::geom

namespace jackpine::algo {

// Minimum distance between the point sets of `a` and `b`; 0 when they
// intersect. Returns +inf if either geometry is empty (PostGIS returns NULL;
// the SQL layer maps +inf to NULL).
double Distance(const geom::Geometry& a, const geom::Geometry& b);

// True if Distance(a, b) <= d, with an envelope short-circuit that makes it
// the cheap form for index-refined range queries.
bool WithinDistance(const geom::Geometry& a, const geom::Geometry& b,
                    double d);

}  // namespace jackpine::algo

#endif  // JACKPINE_ALGO_DISTANCE_H_
