#include "algo/distance.h"

#include <algorithm>
#include <limits>
#include <vector>

#include "algo/point_in_polygon.h"
#include "algo/segment_intersection.h"

namespace jackpine::algo {

using geom::Coord;
using geom::Geometry;
using geom::GeometryType;
using geom::Ring;

namespace {

constexpr double kInf = std::numeric_limits<double>::infinity();

// Collects the boundary paths of a simple geometry: the line itself, or the
// polygon's rings.
std::vector<const std::vector<Coord>*> BoundaryPaths(const Geometry& g) {
  std::vector<const std::vector<Coord>*> paths;
  if (g.type() == GeometryType::kLineString) {
    paths.push_back(&g.AsLineString());
  } else if (g.type() == GeometryType::kPolygon) {
    const geom::PolygonData& poly = g.AsPolygon();
    paths.push_back(&poly.shell);
    for (const Ring& hole : poly.holes) paths.push_back(&hole);
  }
  return paths;
}

double PathToPathDistance(const std::vector<Coord>& a,
                          const std::vector<Coord>& b) {
  double best = kInf;
  for (size_t i = 0; i + 1 < a.size(); ++i) {
    for (size_t j = 0; j + 1 < b.size(); ++j) {
      best = std::min(best,
                      DistanceSegmentToSegment(a[i], a[i + 1], b[j], b[j + 1]));
      if (best == 0.0) return 0.0;
    }
  }
  return best;
}

double PointToPathDistance(const Coord& p, const std::vector<Coord>& path) {
  double best = kInf;
  for (size_t i = 0; i + 1 < path.size(); ++i) {
    best = std::min(best, DistancePointToSegment(p, path[i], path[i + 1]));
  }
  return best;
}

// Distance between two simple (non-collection) non-empty geometries.
double SimpleDistance(const Geometry& a, const Geometry& b) {
  // Point-point / point-anything fast paths.
  if (a.type() == GeometryType::kPoint && b.type() == GeometryType::kPoint) {
    return DistanceBetween(a.AsPoint(), b.AsPoint());
  }
  if (a.type() == GeometryType::kPoint) {
    const Coord& p = a.AsPoint();
    if (b.type() == GeometryType::kPolygon &&
        LocateInPolygon(p, b.AsPolygon()) != Location::kExterior) {
      return 0.0;
    }
    double best = kInf;
    for (const auto* path : BoundaryPaths(b)) {
      best = std::min(best, PointToPathDistance(p, *path));
    }
    return best;
  }
  if (b.type() == GeometryType::kPoint) return SimpleDistance(b, a);

  // Containment makes the distance zero even without boundary contact.
  if (a.type() == GeometryType::kPolygon) {
    for (const auto* path : BoundaryPaths(b)) {
      if (!path->empty() &&
          LocateInPolygon(path->front(), a.AsPolygon()) != Location::kExterior) {
        return 0.0;
      }
    }
  }
  if (b.type() == GeometryType::kPolygon) {
    for (const auto* path : BoundaryPaths(a)) {
      if (!path->empty() &&
          LocateInPolygon(path->front(), b.AsPolygon()) != Location::kExterior) {
        return 0.0;
      }
    }
  }

  double best = kInf;
  for (const auto* pa : BoundaryPaths(a)) {
    for (const auto* pb : BoundaryPaths(b)) {
      best = std::min(best, PathToPathDistance(*pa, *pb));
      if (best == 0.0) return 0.0;
    }
  }
  return best;
}

}  // namespace

double Distance(const Geometry& a, const Geometry& b) {
  if (a.IsEmpty() || b.IsEmpty()) return kInf;
  double best = kInf;
  for (const Geometry& la : a.Leaves()) {
    for (const Geometry& lb : b.Leaves()) {
      // Envelope lower bound prunes component pairs that cannot improve.
      if (la.envelope().DistanceTo(lb.envelope()) >= best) continue;
      best = std::min(best, SimpleDistance(la, lb));
      if (best == 0.0) return 0.0;
    }
  }
  return best;
}

bool WithinDistance(const Geometry& a, const Geometry& b, double d) {
  if (a.IsEmpty() || b.IsEmpty()) return false;
  if (a.envelope().DistanceTo(b.envelope()) > d) return false;
  return Distance(a, b) <= d;
}

}  // namespace jackpine::algo
