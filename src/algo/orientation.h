// Basic orientation / incidence primitives underlying every other algorithm.

#ifndef JACKPINE_ALGO_ORIENTATION_H_
#define JACKPINE_ALGO_ORIENTATION_H_

#include "geom/coord.h"

namespace jackpine::algo {

using geom::Coord;

// Where a point lies relative to a geometry's interior/boundary/exterior.
// This is the OGC point-set "Location" used throughout topo::Relate.
enum class Location : uint8_t { kInterior, kBoundary, kExterior };

// Sign of the z-component of (b-a) x (c-a):
//  +1  c is to the left of a->b (counter-clockwise turn)
//   0  collinear
//  -1  c is to the right (clockwise turn)
// Uses an error-bound filter so that results are exact for inputs whose
// cross product magnitude exceeds the rounding error bound.
int Orientation(const Coord& a, const Coord& b, const Coord& c);

// Raw double-precision cross product (b-a) x (c-a).
double Cross(const Coord& a, const Coord& b, const Coord& c);

// True if p lies on the closed segment [a, b].
bool PointOnSegment(const Coord& p, const Coord& a, const Coord& b);

// True if a, b, c are collinear (per Orientation == 0).
inline bool Collinear(const Coord& a, const Coord& b, const Coord& c) {
  return Orientation(a, b, c) == 0;
}

}  // namespace jackpine::algo

#endif  // JACKPINE_ALGO_ORIENTATION_H_
