// Linear referencing along linestrings: the primitives behind the geocoding
// and reverse-geocoding macro scenarios (address interpolation on TIGER
// edges) and the SQL functions ST_LineInterpolatePoint / ST_LineLocatePoint /
// ST_ClosestPoint / ST_LineSubstring.

#ifndef JACKPINE_ALGO_LINEAR_REFERENCE_H_
#define JACKPINE_ALGO_LINEAR_REFERENCE_H_

#include "common/status.h"
#include "geom/geometry.h"

namespace jackpine::algo {

// Point at `fraction` (clamped to [0,1]) of the line's length from its start.
Result<geom::Geometry> LineInterpolatePoint(const geom::Geometry& line,
                                            double fraction);

// Fraction of the line's length at which the point of the line closest to
// `p` lies.
Result<double> LineLocatePoint(const geom::Geometry& line,
                               const geom::Coord& p);

// The point of `g` closest to `p` (works for any geometry type).
geom::Geometry ClosestPoint(const geom::Geometry& g, const geom::Coord& p);

// The sub-line between fractions `from` and `to` (clamped, from <= to after
// swapping). Returns a POINT geometry when the range collapses.
Result<geom::Geometry> LineSubstring(const geom::Geometry& line, double from,
                                     double to);

}  // namespace jackpine::algo

#endif  // JACKPINE_ALGO_LINEAR_REFERENCE_H_
