// The JDBC-like client layer.
//
// The original Jackpine harness is portable across DBMSs because it speaks
// only JDBC: Connection -> Statement -> ResultSet. This module reproduces
// that seam in C++: the benchmark core (src/core) sees only these classes
// and a connection URL, never the engine underneath, so any engine exposing
// this interface can be benchmarked.

#ifndef JACKPINE_CLIENT_CLIENT_H_
#define JACKPINE_CLIENT_CLIENT_H_

#include <functional>
#include <memory>
#include <mutex>
#include <string>
#include <string_view>
#include <vector>

#include "client/driver.h"
#include "common/exec_context.h"
#include "common/random.h"
#include "engine/database.h"

namespace jackpine::client {

// One system under test: a named engine configuration.
struct SutConfig {
  std::string name;
  index::IndexKind index_kind = index::IndexKind::kRtree;
  topo::PredicateMode predicate_mode = topo::PredicateMode::kExact;
  bool incremental_index_build = false;
  bool fold_constants = true;
  // Human-readable description of the DBMS role this SUT plays (DESIGN.md).
  std::string role;
};

// The four standard SUTs: pine-rtree, pine-mbr, pine-grid, pine-scan.
const std::vector<SutConfig>& StandardSuts();

// Composite-target openers: a URL tail of the form "<name>(...)<suffix>"
// (e.g. "shard(ep1,ep2)/pine-rtree") resolves through this registry before
// the plain SUT-name lookup, which is how subsystems like jackpine::shard
// plug whole-cluster drivers into the jackpine: URL namespace without the
// client layer knowing them. The opener receives the full tail, including
// the "<name>(" prefix, and returns the driver plus the SutConfig label the
// Connection should carry. "chaos" is reserved (handled by Connection::Open
// itself); later registrations for a name replace earlier ones.
struct OpenedTarget {
  SutConfig config;
  std::shared_ptr<Driver> driver;
};
using TargetOpener =
    std::function<Result<OpenedTarget>(std::string_view rest)>;
void RegisterTargetOpener(const std::string& name, TargetOpener opener);
bool HasTargetOpener(const std::string& name);

// Lookup by name ("pine-rtree", ...).
Result<SutConfig> SutByName(std::string_view name);

// Deterministic fault injection wrapped around a real SUT (DESIGN.md "Fault
// model"), parsed from the chaos URL form
//
//   jackpine:chaos(<seed>,<error-rate>,<latency-ms>):<sut-name>
//
// e.g. "jackpine:chaos(7,0.1,2):pine-rtree". The chaos layer sits at the
// Statement seam — exactly where a networked JDBC driver fails — so each
// ExecuteQuery first draws from a seeded per-connection stream: with
// probability error-rate the call returns kUnavailable before touching the
// engine (a dropped connection), and it sleeps uniformly in [0, latency-ms)
// to model network jitter. ExecuteUpdate (the bulk-load seam) is never
// injected, so fixtures always load. The stream is a pure function of the
// seed and the draw sequence: replaying the same workload with the same URL
// yields byte-identical error sequences.
struct ChaosConfig {
  uint64_t seed = 0;
  double error_rate = 0.0;  // in [0, 1]
  double latency_ms = 0.0;  // max injected delay per query
};

// Parses "chaos(<seed>,<error-rate>,<latency-ms>)" (no trailing ':<sut>').
Result<ChaosConfig> ParseChaosSpec(std::string_view spec);

// Mutable chaos state shared by every Statement of a connection. The mutex
// serialises draws, so concurrent clients are data-race-free and the global
// draw sequence stays deterministic even though its assignment to threads
// is scheduler-dependent.
class ChaosState {
 public:
  explicit ChaosState(const ChaosConfig& config)
      : config_(config), rng_(config.seed) {}

  struct Fault {
    bool fail = false;
    double delay_ms = 0.0;
    uint64_t sequence = 0;  // 1-based draw index, for replay diagnostics
  };
  Fault NextFault();

  const ChaosConfig& config() const { return config_; }

 private:
  ChaosConfig config_;
  std::mutex mu_;
  Rng rng_;
  uint64_t draws_ = 0;
};

// Cursor over a query result, in the JDBC style: starts before the first
// row; Next() advances and reports whether a row is available (false once
// the cursor moves past the last row, and on every call after that).
// Column indexes are 0-based (a deliberate departure from JDBC's 1-based
// columns); only the internal row cursor counts from 1 (0 = before the
// first row), mirroring JDBC's getRow(). Accessors with no current row
// return an error (typed getters) or NULL (GetValue/IsNull).
class ResultSet {
 public:
  explicit ResultSet(engine::QueryResult result);

  bool Next();
  // True while the cursor is positioned on a row (after a successful
  // Next(), before the cursor falls off the end).
  bool HasRow() const {
    return cursor_ >= 1 && cursor_ <= result_.rows.size();
  }
  size_t ColumnCount() const { return result_.columns.size(); }
  const std::string& ColumnName(size_t i) const { return result_.columns[i]; }
  size_t RowCount() const { return result_.rows.size(); }

  bool IsNull(size_t col) const;
  Result<int64_t> GetInt64(size_t col) const;
  Result<double> GetDouble(size_t col) const;
  Result<std::string> GetString(size_t col) const;
  Result<bool> GetBool(size_t col) const;
  Result<geom::Geometry> GetGeometry(size_t col) const;
  const engine::Value& GetValue(size_t col) const;

  // Rows the engine materialised while producing this result (candidates +
  // scanned rows, before refinement/limit). The gap to RowCount() is the
  // filter-and-refine overhead; propagated over the wire for remote results.
  uint64_t RowsExamined() const { return result_.rows_examined; }

  // Order-independent checksum of the whole result (cross-SUT validation).
  uint64_t Checksum() const { return result_.Checksum(); }
  const engine::QueryResult& raw() const { return result_; }
  // Moves the result out (the cursor is dead afterwards); used by the wire
  // server to re-serialise results without copying them.
  engine::QueryResult ReleaseRaw() { return std::move(result_); }

 private:
  engine::QueryResult result_;
  // Number of Next() calls that returned true so far == the 1-based index
  // of the current row; 0 means "before the first row" (no current row).
  size_t cursor_ = 0;
};

class Connection;

// Executes SQL through a connection's driver. When the connection was opened
// through a chaos URL, every ExecuteQuery passes through the fault-injection
// seam first (see ChaosConfig above). Each Statement executes on its own
// DriverSession (opened lazily on first use): against the in-process engine
// that is free, against a remote pinedb server it is one TCP session, so
// concurrent Statements become concurrent server sessions.
class Statement {
 public:
  Result<ResultSet> ExecuteQuery(std::string_view sql);
  // Returns rows_affected for DDL/DML. Never chaos-injected (bulk loading
  // must stay deterministic), but still honours the exec limits.
  Result<int64_t> ExecuteUpdate(std::string_view sql);

  // Per-execution fault limits: every subsequent Execute* builds a fresh
  // ExecContext from these, so the deadline clock restarts per query. The
  // JDBC analogue is Statement.setQueryTimeout().
  void SetExecLimits(ExecLimits limits) { limits_ = std::move(limits); }
  const ExecLimits& exec_limits() const { return limits_; }

  // Attaches a per-query trace sink (obs/trace.h): every subsequent
  // ExecuteQuery accumulates its stage times and filter-and-refine counters
  // into `trace`. Local sessions record directly; remote sessions fetch the
  // server-side session trace after each query. Pass nullptr to detach.
  // `trace` must outlive the statement's executions.
  void SetTrace(obs::QueryTrace* trace) { limits_.trace = trace; }

 private:
  friend class Connection;
  Statement(std::shared_ptr<Driver> driver, std::shared_ptr<ChaosState> chaos)
      : driver_(std::move(driver)), chaos_(std::move(chaos)) {}

  // Opens the session on first use and reopens it after a transport
  // failure; returns the error when the backend is unreachable.
  Status EnsureSession();

  std::shared_ptr<Driver> driver_;
  std::shared_ptr<DriverSession> session_;
  std::shared_ptr<ChaosState> chaos_;  // null unless opened via chaos URL
  ExecLimits limits_;
};

// A connection to a pinedb instance: in-process (freshly created) or remote
// (a pinedb server reached over the wire protocol).
class Connection {
 public:
  // URL forms:
  //   "jackpine:<sut-name>"                    in-process connection
  //   "jackpine:<scheme>://<host>:<port>/<sut>" remote pinedb server
  //   "jackpine:chaos(<seed>,<rate>,<latency-ms>):<target>" fault-injecting
  //     wrapper around either target form
  // e.g. "jackpine:pine-rtree", "jackpine:tcp://127.0.0.1:7744/pine-rtree"
  // or "jackpine:chaos(7,0.1,2):tcp://127.0.0.1:7744/pine-rtree". Remote
  // schemes come from the driver registry (client/driver.h); the chaos layer
  // composes unchanged because it sits at the Statement seam, above the
  // driver.
  static Result<Connection> Open(std::string_view url);
  static Connection Open(const SutConfig& config);

  Statement CreateStatement() { return Statement(driver_, chaos_); }
  const SutConfig& config() const { return config_; }

  // Null unless the connection was opened through a chaos URL.
  const ChaosState* chaos() const { return chaos_.get(); }

  // True when the engine runs in this process (no wire protocol involved).
  bool is_local() const { return db_ != nullptr; }

  // The in-process engine, or null for remote connections. The bulk loader
  // uses this to pick the fast Append path over row-by-row INSERT SQL.
  engine::Database* local_database() { return db_.get(); }

  // Escape hatch for the bulk loader and tests; a real driver would not
  // expose this. Only valid for local connections (is_local()).
  engine::Database& database() { return *db_; }

 private:
  // Opens the URL tail after "jackpine:" and any chaos prefix: an
  // in-process SUT name or a registered remote endpoint.
  static Result<Connection> OpenTarget(std::string_view rest);

  Connection(SutConfig config, std::shared_ptr<engine::Database> db,
             std::shared_ptr<Driver> driver)
      : config_(std::move(config)),
        db_(std::move(db)),
        driver_(std::move(driver)) {}
  SutConfig config_;
  std::shared_ptr<engine::Database> db_;  // null for remote connections
  std::shared_ptr<Driver> driver_;
  std::shared_ptr<ChaosState> chaos_;  // shared with every Statement
};

}  // namespace jackpine::client

#endif  // JACKPINE_CLIENT_CLIENT_H_
