// The JDBC-like client layer.
//
// The original Jackpine harness is portable across DBMSs because it speaks
// only JDBC: Connection -> Statement -> ResultSet. This module reproduces
// that seam in C++: the benchmark core (src/core) sees only these classes
// and a connection URL, never the engine underneath, so any engine exposing
// this interface can be benchmarked.

#ifndef JACKPINE_CLIENT_CLIENT_H_
#define JACKPINE_CLIENT_CLIENT_H_

#include <memory>
#include <string>
#include <string_view>
#include <vector>

#include "engine/database.h"

namespace jackpine::client {

// One system under test: a named engine configuration.
struct SutConfig {
  std::string name;
  index::IndexKind index_kind = index::IndexKind::kRtree;
  topo::PredicateMode predicate_mode = topo::PredicateMode::kExact;
  bool incremental_index_build = false;
  bool fold_constants = true;
  // Human-readable description of the DBMS role this SUT plays (DESIGN.md).
  std::string role;
};

// The four standard SUTs: pine-rtree, pine-mbr, pine-grid, pine-scan.
const std::vector<SutConfig>& StandardSuts();

// Lookup by name ("pine-rtree", ...).
Result<SutConfig> SutByName(std::string_view name);

// Cursor over a query result, in the JDBC style: starts before the first
// row; Next() advances and reports whether a row is available. Column
// indexes are 0-based (a deliberate departure from JDBC's 1-based columns).
class ResultSet {
 public:
  explicit ResultSet(engine::QueryResult result);

  bool Next();
  size_t ColumnCount() const { return result_.columns.size(); }
  const std::string& ColumnName(size_t i) const { return result_.columns[i]; }
  size_t RowCount() const { return result_.rows.size(); }

  bool IsNull(size_t col) const;
  Result<int64_t> GetInt64(size_t col) const;
  Result<double> GetDouble(size_t col) const;
  Result<std::string> GetString(size_t col) const;
  Result<bool> GetBool(size_t col) const;
  Result<geom::Geometry> GetGeometry(size_t col) const;
  const engine::Value& GetValue(size_t col) const;

  // Order-independent checksum of the whole result (cross-SUT validation).
  uint64_t Checksum() const { return result_.Checksum(); }
  const engine::QueryResult& raw() const { return result_; }

 private:
  engine::QueryResult result_;
  size_t cursor_ = 0;   // 1-based position of the current row
};

class Connection;

// Executes SQL on a connection's database.
class Statement {
 public:
  Result<ResultSet> ExecuteQuery(std::string_view sql);
  // Returns rows_affected for DDL/DML.
  Result<int64_t> ExecuteUpdate(std::string_view sql);

 private:
  friend class Connection;
  explicit Statement(std::shared_ptr<engine::Database> db)
      : db_(std::move(db)) {}
  std::shared_ptr<engine::Database> db_;
};

// A connection to a (freshly created, in-process) pinedb instance.
class Connection {
 public:
  // URL form: "jackpine:<sut-name>", e.g. "jackpine:pine-rtree".
  static Result<Connection> Open(std::string_view url);
  static Connection Open(const SutConfig& config);

  Statement CreateStatement() { return Statement(db_); }
  const SutConfig& config() const { return config_; }

  // Escape hatch for the bulk loader and tests; a real driver would not
  // expose this.
  engine::Database& database() { return *db_; }

 private:
  Connection(SutConfig config, std::shared_ptr<engine::Database> db)
      : config_(std::move(config)), db_(std::move(db)) {}
  SutConfig config_;
  std::shared_ptr<engine::Database> db_;
};

}  // namespace jackpine::client

#endif  // JACKPINE_CLIENT_CLIENT_H_
