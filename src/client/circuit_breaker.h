// Per-connection circuit breaker (DESIGN.md "Fault model", overload
// semantics).
//
// A remote connection that keeps failing at the transport level is almost
// certainly talking to a dead or drowning server; hammering it with fresh
// TCP connects from every retry multiplies the very load that killed it.
// The breaker sits in front of every new transport attempt of a
// client::Connection (all Statements of a connection share one breaker):
//
//   closed     every attempt is admitted; consecutive transport failures
//              are counted, any success resets the streak
//   open       after `failure_threshold` consecutive failures: attempts
//              fast-fail locally with kUnavailable carrying a
//              retry_after_ms hint (IsBreakerFastFail), no syscall made
//   half-open  after `open_duration_s`: exactly one probe attempt is
//              admitted; success closes the breaker, failure re-opens it
//              for another full cooldown
//
// Only *transport* failures (kUnavailable without a retry hint) feed the
// streak. A shed (kResourceExhausted + retry_after_ms) proves the server is
// alive and answering, so it never trips the breaker — and when the shed
// outcome belongs to the half-open probe it *closes* the breaker. Any other
// non-transport probe outcome re-opens for a fresh cooldown: every probe
// verdict settles the half-open state, so the breaker can never wedge with
// a probe marked in flight that no caller will ever resolve.

#ifndef JACKPINE_CLIENT_CIRCUIT_BREAKER_H_
#define JACKPINE_CLIENT_CIRCUIT_BREAKER_H_

#include <cstdint>
#include <chrono>
#include <mutex>

#include "common/status.h"

namespace jackpine::client {

struct CircuitBreakerOptions {
  // Consecutive transport failures that open the breaker.
  int failure_threshold = 4;
  // Cooldown before the half-open probe is admitted.
  double open_duration_s = 0.25;
};

class CircuitBreaker {
 public:
  enum class State { kClosed, kOpen, kHalfOpen };

  explicit CircuitBreaker(CircuitBreakerOptions options = {})
      : options_(options) {}

  // Gate before a new transport attempt: OK when closed; OK exactly once
  // per cooldown when the breaker transitions to half-open (that call is
  // the probe); otherwise kUnavailable with retry_after_ms set to the
  // remaining cooldown — or a small fraction of it while a probe is in
  // flight, since its verdict is imminent (IsBreakerFastFail matches both).
  Status Admit();

  // Report the attempt's outcome. OnSuccess closes the breaker and resets
  // the failure streak. OnFailure feeds the streak only for transport
  // failures (plain kUnavailable). Every probe outcome settles the
  // half-open state: a shed closes the breaker (the peer answered), any
  // other failure re-opens it for a fresh cooldown.
  void OnSuccess();
  void OnFailure(const Status& status);

  State state() const;
  int consecutive_failures() const;
  uint64_t fast_fails() const;  // attempts refused while open
  uint64_t opens() const;       // closed/half-open -> open transitions

 private:
  using Clock = std::chrono::steady_clock;

  CircuitBreakerOptions options_;
  mutable std::mutex mu_;
  State state_ = State::kClosed;
  int consecutive_failures_ = 0;
  bool probe_in_flight_ = false;
  Clock::time_point opened_at_{};
  uint64_t fast_fails_ = 0;
  uint64_t opens_ = 0;
};

}  // namespace jackpine::client

#endif  // JACKPINE_CLIENT_CIRCUIT_BREAKER_H_
