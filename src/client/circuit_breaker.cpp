#include "client/circuit_breaker.h"

#include <algorithm>
#include <cmath>

#include "common/string_util.h"

namespace jackpine::client {

Status CircuitBreaker::Admit() {
  std::lock_guard<std::mutex> lock(mu_);
  if (state_ == State::kClosed) return Status::Ok();

  const auto now = Clock::now();
  const auto cooldown = std::chrono::duration<double>(options_.open_duration_s);
  if (state_ == State::kOpen && now - opened_at_ >= cooldown) {
    state_ = State::kHalfOpen;
    probe_in_flight_ = false;
  }
  if (state_ == State::kHalfOpen && !probe_in_flight_) {
    probe_in_flight_ = true;  // this caller is the probe
    return Status::Ok();
  }

  ++fast_fails_;
  double remaining_s = options_.open_duration_s;
  if (state_ == State::kOpen) {
    remaining_s = std::chrono::duration<double>(cooldown - (now - opened_at_))
                      .count();
  }
  // At least 1 ms so the hint stays distinguishable from "no hint".
  const uint32_t retry_after_ms = static_cast<uint32_t>(
      std::max(1.0, std::ceil(remaining_s * 1e3)));
  Status status = Status::Unavailable(StrFormat(
      "circuit breaker open after %d consecutive transport failures",
      std::max(consecutive_failures_, options_.failure_threshold)));
  status.set_retry_after_ms(retry_after_ms);
  return status;
}

void CircuitBreaker::OnSuccess() {
  std::lock_guard<std::mutex> lock(mu_);
  state_ = State::kClosed;
  consecutive_failures_ = 0;
  probe_in_flight_ = false;
}

void CircuitBreaker::OnFailure(const Status& status) {
  // Only transport failures count: a shed or any deterministic error proves
  // the peer (or the request) is answering, and our own fast-fails must not
  // feed back into the streak.
  if (!IsTransient(status.code()) || IsBreakerFastFail(status)) return;
  std::lock_guard<std::mutex> lock(mu_);
  ++consecutive_failures_;
  if (state_ == State::kHalfOpen ||
      (state_ == State::kClosed &&
       consecutive_failures_ >= options_.failure_threshold)) {
    state_ = State::kOpen;
    opened_at_ = Clock::now();
    probe_in_flight_ = false;
    ++opens_;
  }
}

CircuitBreaker::State CircuitBreaker::state() const {
  std::lock_guard<std::mutex> lock(mu_);
  return state_;
}

int CircuitBreaker::consecutive_failures() const {
  std::lock_guard<std::mutex> lock(mu_);
  return consecutive_failures_;
}

uint64_t CircuitBreaker::fast_fails() const {
  std::lock_guard<std::mutex> lock(mu_);
  return fast_fails_;
}

uint64_t CircuitBreaker::opens() const {
  std::lock_guard<std::mutex> lock(mu_);
  return opens_;
}

}  // namespace jackpine::client
