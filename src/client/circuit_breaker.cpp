#include "client/circuit_breaker.h"

#include <algorithm>
#include <cmath>

#include "common/string_util.h"

namespace jackpine::client {

Status CircuitBreaker::Admit() {
  std::lock_guard<std::mutex> lock(mu_);
  if (state_ == State::kClosed) return Status::Ok();

  const auto now = Clock::now();
  const auto cooldown = std::chrono::duration<double>(options_.open_duration_s);
  if (state_ == State::kOpen && now - opened_at_ >= cooldown) {
    state_ = State::kHalfOpen;
    probe_in_flight_ = false;
  }
  if (state_ == State::kHalfOpen && !probe_in_flight_) {
    probe_in_flight_ = true;  // this caller is the probe
    return Status::Ok();
  }

  ++fast_fails_;
  double remaining_s = options_.open_duration_s;
  if (state_ == State::kOpen) {
    remaining_s = std::chrono::duration<double>(cooldown - (now - opened_at_))
                      .count();
  } else {
    // Half-open with the probe still in flight: its verdict is imminent, so
    // hinting a whole fresh cooldown would overstate the wait. A small
    // fraction keeps honor_retry_after callers close behind the probe.
    remaining_s = options_.open_duration_s / 16.0;
  }
  // At least 1 ms so the hint stays distinguishable from "no hint".
  const uint32_t retry_after_ms = static_cast<uint32_t>(
      std::max(1.0, std::ceil(remaining_s * 1e3)));
  Status status = Status::Unavailable(StrFormat(
      "circuit breaker open after %d consecutive transport failures",
      std::max(consecutive_failures_, options_.failure_threshold)));
  status.set_retry_after_ms(retry_after_ms);
  return status;
}

void CircuitBreaker::OnSuccess() {
  std::lock_guard<std::mutex> lock(mu_);
  state_ = State::kClosed;
  consecutive_failures_ = 0;
  probe_in_flight_ = false;
}

void CircuitBreaker::OnFailure(const Status& status) {
  // Our own fast-fail never touched the transport; it carries no signal and
  // must not feed back into the streak.
  if (IsBreakerFastFail(status)) return;
  std::lock_guard<std::mutex> lock(mu_);
  if (IsShed(status)) {
    // A shed is a live server's admission control answering: the transport
    // works, so a shed settles a half-open probe by closing the breaker and
    // never feeds the streak.
    state_ = State::kClosed;
    consecutive_failures_ = 0;
    probe_in_flight_ = false;
    return;
  }
  if (!IsTransient(status.code())) {
    // Deterministic outcomes (handshake rejection, recv timeout) don't feed
    // the streak, but they must still settle a half-open probe: an early
    // return with probe_in_flight_ set would wedge the breaker half-open
    // forever, every Admit() fast-failing with nothing left to clear it.
    // Such a probe outcome is not health either, so re-open conservatively
    // for a fresh cooldown.
    if (state_ == State::kHalfOpen) {
      state_ = State::kOpen;
      opened_at_ = Clock::now();
      probe_in_flight_ = false;
      ++opens_;
    }
    return;
  }
  ++consecutive_failures_;
  if (state_ == State::kHalfOpen ||
      (state_ == State::kClosed &&
       consecutive_failures_ >= options_.failure_threshold)) {
    state_ = State::kOpen;
    opened_at_ = Clock::now();
    probe_in_flight_ = false;
    ++opens_;
  }
}

CircuitBreaker::State CircuitBreaker::state() const {
  std::lock_guard<std::mutex> lock(mu_);
  return state_;
}

int CircuitBreaker::consecutive_failures() const {
  std::lock_guard<std::mutex> lock(mu_);
  return consecutive_failures_;
}

uint64_t CircuitBreaker::fast_fails() const {
  std::lock_guard<std::mutex> lock(mu_);
  return fast_fails_;
}

uint64_t CircuitBreaker::opens() const {
  std::lock_guard<std::mutex> lock(mu_);
  return opens_;
}

}  // namespace jackpine::client
