#include "client/circuit_breaker.h"

#include <algorithm>
#include <cmath>

#include "common/string_util.h"
#include "obs/span.h"

namespace jackpine::client {

namespace {

// Breaker flips become instant spans on the global recorder (trace 0: they
// belong to the connection, not to any one query) so a trace export shows
// when the breaker changed state relative to the query timeline. The
// recorder's shard mutex is a leaf lock, safe to take under the breaker's.
void RecordTransition(const char* from, const char* to, int failures) {
  obs::SpanRecorder& recorder = obs::GlobalSpanRecorder();
  if (!recorder.enabled()) return;
  obs::SpanRecord span;
  span.span_id = recorder.NewSpanId();
  span.thread = obs::CurrentThreadLane();
  span.start_s = obs::SpanNowS();
  span.end_s = span.start_s;
  span.name = "client.breaker";
  span.annotations.emplace_back("from", from);
  span.annotations.emplace_back("to", to);
  span.annotations.emplace_back("consecutive_failures",
                                StrFormat("%d", failures));
  recorder.Record(std::move(span));
}

}  // namespace

Status CircuitBreaker::Admit() {
  std::lock_guard<std::mutex> lock(mu_);
  if (state_ == State::kClosed) return Status::Ok();

  const auto now = Clock::now();
  const auto cooldown = std::chrono::duration<double>(options_.open_duration_s);
  if (state_ == State::kOpen && now - opened_at_ >= cooldown) {
    state_ = State::kHalfOpen;
    probe_in_flight_ = false;
    RecordTransition("open", "half_open", consecutive_failures_);
  }
  if (state_ == State::kHalfOpen && !probe_in_flight_) {
    probe_in_flight_ = true;  // this caller is the probe
    return Status::Ok();
  }

  ++fast_fails_;
  double remaining_s = options_.open_duration_s;
  if (state_ == State::kOpen) {
    remaining_s = std::chrono::duration<double>(cooldown - (now - opened_at_))
                      .count();
  } else {
    // Half-open with the probe still in flight: its verdict is imminent, so
    // hinting a whole fresh cooldown would overstate the wait. A small
    // fraction keeps honor_retry_after callers close behind the probe.
    remaining_s = options_.open_duration_s / 16.0;
  }
  // At least 1 ms so the hint stays distinguishable from "no hint".
  const uint32_t retry_after_ms = static_cast<uint32_t>(
      std::max(1.0, std::ceil(remaining_s * 1e3)));
  Status status = Status::Unavailable(StrFormat(
      "circuit breaker open after %d consecutive transport failures",
      std::max(consecutive_failures_, options_.failure_threshold)));
  status.set_retry_after_ms(retry_after_ms);
  return status;
}

void CircuitBreaker::OnSuccess() {
  std::lock_guard<std::mutex> lock(mu_);
  if (state_ != State::kClosed) {
    RecordTransition(state_ == State::kOpen ? "open" : "half_open", "closed",
                     consecutive_failures_);
  }
  state_ = State::kClosed;
  consecutive_failures_ = 0;
  probe_in_flight_ = false;
}

void CircuitBreaker::OnFailure(const Status& status) {
  // Our own fast-fail never touched the transport; it carries no signal and
  // must not feed back into the streak.
  if (IsBreakerFastFail(status)) return;
  std::lock_guard<std::mutex> lock(mu_);
  if (IsShed(status)) {
    // A shed is a live server's admission control answering: the transport
    // works, so a shed settles a half-open probe by closing the breaker and
    // never feeds the streak.
    if (state_ != State::kClosed) {
      RecordTransition(state_ == State::kOpen ? "open" : "half_open",
                       "closed", consecutive_failures_);
    }
    state_ = State::kClosed;
    consecutive_failures_ = 0;
    probe_in_flight_ = false;
    return;
  }
  if (!IsTransient(status.code())) {
    // Deterministic outcomes (handshake rejection, recv timeout) don't feed
    // the streak, but they must still settle a half-open probe: an early
    // return with probe_in_flight_ set would wedge the breaker half-open
    // forever, every Admit() fast-failing with nothing left to clear it.
    // Such a probe outcome is not health either, so re-open conservatively
    // for a fresh cooldown.
    if (state_ == State::kHalfOpen) {
      state_ = State::kOpen;
      opened_at_ = Clock::now();
      probe_in_flight_ = false;
      ++opens_;
      RecordTransition("half_open", "open", consecutive_failures_);
    }
    return;
  }
  ++consecutive_failures_;
  if (state_ == State::kHalfOpen ||
      (state_ == State::kClosed &&
       consecutive_failures_ >= options_.failure_threshold)) {
    RecordTransition(state_ == State::kHalfOpen ? "half_open" : "closed",
                     "open", consecutive_failures_);
    state_ = State::kOpen;
    opened_at_ = Clock::now();
    probe_in_flight_ = false;
    ++opens_;
  }
}

CircuitBreaker::State CircuitBreaker::state() const {
  std::lock_guard<std::mutex> lock(mu_);
  return state_;
}

int CircuitBreaker::consecutive_failures() const {
  std::lock_guard<std::mutex> lock(mu_);
  return consecutive_failures_;
}

uint64_t CircuitBreaker::fast_fails() const {
  std::lock_guard<std::mutex> lock(mu_);
  return fast_fails_;
}

uint64_t CircuitBreaker::opens() const {
  std::lock_guard<std::mutex> lock(mu_);
  return opens_;
}

}  // namespace jackpine::client
