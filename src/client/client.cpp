#include "client/client.h"

#include <chrono>
#include <cstdlib>
#include <thread>

#include "common/string_util.h"

namespace jackpine::client {

const std::vector<SutConfig>& StandardSuts() {
  static const std::vector<SutConfig>& suts = *new std::vector<SutConfig>{
      {"pine-rtree", index::IndexKind::kRtree, topo::PredicateMode::kExact,
       false, true,
       "open-source DBMS with R-tree and exact DE-9IM (PostGIS role)"},
      {"pine-mbr", index::IndexKind::kRtree, topo::PredicateMode::kMbrOnly,
       false, true,
       "open-source DBMS with MBR-only predicates (MySQL-2011 role)"},
      {"pine-grid", index::IndexKind::kGrid, topo::PredicateMode::kExact,
       false, true, "commercial DBMS with grid index and exact predicates"},
      {"pine-scan", index::IndexKind::kNone, topo::PredicateMode::kExact,
       false, true, "any DBMS with the spatial index disabled (ablation)"},
  };
  return suts;
}

Result<SutConfig> SutByName(std::string_view name) {
  for (const SutConfig& sut : StandardSuts()) {
    if (EqualsIgnoreCase(sut.name, name)) return sut;
  }
  return Status::NotFound(
      StrFormat("unknown SUT '%s'", std::string(name).c_str()));
}

ChaosState::Fault ChaosState::NextFault() {
  std::lock_guard<std::mutex> lock(mu_);
  Fault fault;
  fault.sequence = ++draws_;
  // Both draws happen unconditionally so the stream position is a pure
  // function of the draw count, regardless of the configured rates.
  const double fail_roll = rng_.NextDouble();
  const double delay_roll = rng_.NextDouble();
  fault.fail = fail_roll < config_.error_rate;
  fault.delay_ms = delay_roll * config_.latency_ms;
  return fault;
}

Result<ChaosConfig> ParseChaosSpec(std::string_view spec) {
  constexpr std::string_view kHead = "chaos(";
  if (!StartsWith(spec, kHead) || !EndsWith(spec, ")")) {
    return Status::InvalidArgument(StrFormat(
        "bad chaos spec '%s': expected chaos(<seed>,<error-rate>,<latency-ms>)",
        std::string(spec).c_str()));
  }
  const std::string body(
      spec.substr(kHead.size(), spec.size() - kHead.size() - 1));
  const std::vector<std::string> parts = Split(body, ',');
  if (parts.size() != 3) {
    return Status::InvalidArgument(StrFormat(
        "bad chaos spec '%s': expected 3 comma-separated fields, got %zu",
        std::string(spec).c_str(), parts.size()));
  }
  ChaosConfig config;
  char* end = nullptr;
  config.seed = std::strtoull(parts[0].c_str(), &end, 10);
  if (end == parts[0].c_str() || *end != '\0') {
    return Status::InvalidArgument(
        StrFormat("bad chaos seed '%s'", parts[0].c_str()));
  }
  config.error_rate = std::strtod(parts[1].c_str(), &end);
  if (end == parts[1].c_str() || *end != '\0' || config.error_rate < 0.0 ||
      config.error_rate > 1.0) {
    return Status::InvalidArgument(StrFormat(
        "bad chaos error-rate '%s': expected a number in [0, 1]",
        parts[1].c_str()));
  }
  config.latency_ms = std::strtod(parts[2].c_str(), &end);
  if (end == parts[2].c_str() || *end != '\0' || config.latency_ms < 0.0) {
    return Status::InvalidArgument(StrFormat(
        "bad chaos latency-ms '%s': expected a non-negative number",
        parts[2].c_str()));
  }
  return config;
}

ResultSet::ResultSet(engine::QueryResult result) : result_(std::move(result)) {}

bool ResultSet::Next() {
  if (cursor_ >= result_.rows.size()) {
    // Latch in the after-last position: there is no current row any more,
    // and further Next() calls keep returning false (JDBC semantics).
    cursor_ = result_.rows.size() + 1;
    return false;
  }
  ++cursor_;
  return true;
}

namespace {

Status NoRow() { return Status::OutOfRange("ResultSet: no current row"); }

}  // namespace

const engine::Value& ResultSet::GetValue(size_t col) const {
  static const engine::Value& null_value = *new engine::Value();
  if (!HasRow() || col >= result_.rows[cursor_ - 1].size()) {
    return null_value;
  }
  return result_.rows[cursor_ - 1][col];
}

bool ResultSet::IsNull(size_t col) const { return GetValue(col).is_null(); }

Result<int64_t> ResultSet::GetInt64(size_t col) const {
  if (!HasRow()) return NoRow();
  return GetValue(col).AsInt64();
}

Result<double> ResultSet::GetDouble(size_t col) const {
  if (!HasRow()) return NoRow();
  return GetValue(col).AsDouble();
}

Result<std::string> ResultSet::GetString(size_t col) const {
  if (!HasRow()) return NoRow();
  const engine::Value& v = GetValue(col);
  if (v.type() != engine::DataType::kString) {
    return Status::InvalidArgument("not a string column");
  }
  return v.string_value();
}

Result<bool> ResultSet::GetBool(size_t col) const {
  if (!HasRow()) return NoRow();
  return GetValue(col).AsBool();
}

Result<geom::Geometry> ResultSet::GetGeometry(size_t col) const {
  if (!HasRow()) return NoRow();
  return GetValue(col).AsGeometry();
}

Result<ResultSet> Statement::ExecuteQuery(std::string_view sql) {
  if (chaos_ != nullptr) {
    const ChaosState::Fault fault = chaos_->NextFault();
    if (fault.delay_ms > 0.0) {
      std::this_thread::sleep_for(
          std::chrono::duration<double, std::milli>(fault.delay_ms));
    }
    if (fault.fail) {
      return Status::Unavailable(StrFormat(
          "chaos: injected transient failure (draw #%llu)",
          static_cast<unsigned long long>(fault.sequence)));
    }
  }
  ExecContext exec(limits_);
  JACKPINE_ASSIGN_OR_RETURN(
      engine::QueryResult result,
      db_->Execute(sql, limits_.Unlimited() ? nullptr : &exec));
  return ResultSet(std::move(result));
}

Result<int64_t> Statement::ExecuteUpdate(std::string_view sql) {
  ExecContext exec(limits_);
  JACKPINE_ASSIGN_OR_RETURN(
      engine::QueryResult result,
      db_->Execute(sql, limits_.Unlimited() ? nullptr : &exec));
  if (result.rows.size() == 1 && result.columns.size() == 1 &&
      result.columns[0] == "rows_affected") {
    return result.rows[0][0].AsInt64();
  }
  return static_cast<int64_t>(result.rows.size());
}

Result<Connection> Connection::Open(std::string_view url) {
  constexpr std::string_view kPrefix = "jackpine:";
  if (!StartsWith(url, kPrefix)) {
    return Status::InvalidArgument(
        StrFormat("bad URL '%s': expected jackpine:<sut-name>",
                  std::string(url).c_str()));
  }
  std::string_view rest = url.substr(kPrefix.size());
  if (StartsWith(rest, "chaos(")) {
    // jackpine:chaos(<seed>,<error-rate>,<latency-ms>):<sut-name>
    const size_t close = rest.find(')');
    if (close == std::string_view::npos || close + 1 >= rest.size() ||
        rest[close + 1] != ':') {
      return Status::InvalidArgument(StrFormat(
          "bad URL '%s': expected jackpine:chaos(...):<sut-name>",
          std::string(url).c_str()));
    }
    JACKPINE_ASSIGN_OR_RETURN(ChaosConfig chaos,
                              ParseChaosSpec(rest.substr(0, close + 1)));
    JACKPINE_ASSIGN_OR_RETURN(SutConfig config,
                              SutByName(rest.substr(close + 2)));
    Connection conn = Open(config);
    conn.chaos_ = std::make_shared<ChaosState>(chaos);
    return conn;
  }
  JACKPINE_ASSIGN_OR_RETURN(SutConfig config, SutByName(rest));
  return Open(config);
}

Connection Connection::Open(const SutConfig& config) {
  engine::DatabaseOptions options;
  options.name = config.name;
  options.index_kind = config.index_kind;
  options.predicate_mode = config.predicate_mode;
  options.incremental_index_build = config.incremental_index_build;
  options.fold_constants = config.fold_constants;
  return Connection(config, std::make_shared<engine::Database>(options));
}

}  // namespace jackpine::client
