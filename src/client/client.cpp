#include "client/client.h"

#include "common/string_util.h"

namespace jackpine::client {

const std::vector<SutConfig>& StandardSuts() {
  static const std::vector<SutConfig>& suts = *new std::vector<SutConfig>{
      {"pine-rtree", index::IndexKind::kRtree, topo::PredicateMode::kExact,
       false, true,
       "open-source DBMS with R-tree and exact DE-9IM (PostGIS role)"},
      {"pine-mbr", index::IndexKind::kRtree, topo::PredicateMode::kMbrOnly,
       false, true,
       "open-source DBMS with MBR-only predicates (MySQL-2011 role)"},
      {"pine-grid", index::IndexKind::kGrid, topo::PredicateMode::kExact,
       false, true, "commercial DBMS with grid index and exact predicates"},
      {"pine-scan", index::IndexKind::kNone, topo::PredicateMode::kExact,
       false, true, "any DBMS with the spatial index disabled (ablation)"},
  };
  return suts;
}

Result<SutConfig> SutByName(std::string_view name) {
  for (const SutConfig& sut : StandardSuts()) {
    if (EqualsIgnoreCase(sut.name, name)) return sut;
  }
  return Status::NotFound(
      StrFormat("unknown SUT '%s'", std::string(name).c_str()));
}

ResultSet::ResultSet(engine::QueryResult result) : result_(std::move(result)) {}

bool ResultSet::Next() {
  if (cursor_ >= result_.rows.size()) return false;
  ++cursor_;
  return true;
}

namespace {

Status NoRow() { return Status::OutOfRange("ResultSet: no current row"); }

}  // namespace

const engine::Value& ResultSet::GetValue(size_t col) const {
  static const engine::Value& null_value = *new engine::Value();
  if (cursor_ == 0 || cursor_ > result_.rows.size() ||
      col >= result_.rows[cursor_ - 1].size()) {
    return null_value;
  }
  return result_.rows[cursor_ - 1][col];
}

bool ResultSet::IsNull(size_t col) const { return GetValue(col).is_null(); }

Result<int64_t> ResultSet::GetInt64(size_t col) const {
  if (cursor_ == 0) return NoRow();
  return GetValue(col).AsInt64();
}

Result<double> ResultSet::GetDouble(size_t col) const {
  if (cursor_ == 0) return NoRow();
  return GetValue(col).AsDouble();
}

Result<std::string> ResultSet::GetString(size_t col) const {
  if (cursor_ == 0) return NoRow();
  const engine::Value& v = GetValue(col);
  if (v.type() != engine::DataType::kString) {
    return Status::InvalidArgument("not a string column");
  }
  return v.string_value();
}

Result<bool> ResultSet::GetBool(size_t col) const {
  if (cursor_ == 0) return NoRow();
  return GetValue(col).AsBool();
}

Result<geom::Geometry> ResultSet::GetGeometry(size_t col) const {
  if (cursor_ == 0) return NoRow();
  return GetValue(col).AsGeometry();
}

Result<ResultSet> Statement::ExecuteQuery(std::string_view sql) {
  JACKPINE_ASSIGN_OR_RETURN(engine::QueryResult result, db_->Execute(sql));
  return ResultSet(std::move(result));
}

Result<int64_t> Statement::ExecuteUpdate(std::string_view sql) {
  JACKPINE_ASSIGN_OR_RETURN(engine::QueryResult result, db_->Execute(sql));
  if (result.rows.size() == 1 && result.columns.size() == 1 &&
      result.columns[0] == "rows_affected") {
    return result.rows[0][0].AsInt64();
  }
  return static_cast<int64_t>(result.rows.size());
}

Result<Connection> Connection::Open(std::string_view url) {
  constexpr std::string_view kPrefix = "jackpine:";
  if (!StartsWith(url, kPrefix)) {
    return Status::InvalidArgument(
        StrFormat("bad URL '%s': expected jackpine:<sut-name>",
                  std::string(url).c_str()));
  }
  JACKPINE_ASSIGN_OR_RETURN(SutConfig config,
                            SutByName(url.substr(kPrefix.size())));
  return Open(config);
}

Connection Connection::Open(const SutConfig& config) {
  engine::DatabaseOptions options;
  options.name = config.name;
  options.index_kind = config.index_kind;
  options.predicate_mode = config.predicate_mode;
  options.incremental_index_build = config.incremental_index_build;
  options.fold_constants = config.fold_constants;
  return Connection(config, std::make_shared<engine::Database>(options));
}

}  // namespace jackpine::client
