#include "client/client.h"

#include <algorithm>
#include <chrono>
#include <cstdlib>
#include <map>
#include <thread>

#include "common/string_util.h"
#include "obs/span.h"
#include "obs/trace.h"

namespace jackpine::client {

namespace {

// The in-process backend: every session shares the one engine, so a session
// is just a handle on the Database plus the ExecContext plumbing that
// Statement used to own directly.
class LocalSession : public DriverSession {
 public:
  explicit LocalSession(std::shared_ptr<engine::Database> db)
      : db_(std::move(db)) {}

  Result<engine::QueryResult> ExecuteQuery(std::string_view sql,
                                           const ExecLimits& limits) override {
    const bool span_traced = limits.spans != nullptr &&
                             limits.spans->enabled() && limits.trace_id != 0;
    if (span_traced) {
      // Local engines trace too: the execution becomes an engine.exec span
      // whose parse/plan/exec children come from the stage clock, so a
      // local run and a remote run yield the same span shapes (minus the
      // wire spans). The stage times land in a scratch trace first so they
      // can feed both the span timeline and the caller's trace sink.
      obs::QueryTrace scratch;
      ExecLimits span_limits = limits;
      span_limits.trace = &scratch;
      ExecContext exec(span_limits);
      obs::Span span = limits.spans->StartSpan(
          "engine.exec", limits.trace_id, limits.parent_span_id);
      Result<engine::QueryResult> result = db_->Execute(sql, &exec);
      obs::RecordStageSpans(limits.spans, limits.trace_id, span.span_id(),
                            span.start_s(), scratch);
      if (limits.trace != nullptr) *limits.trace += scratch;
      return result;
    }
    ExecContext exec(limits);
    // A trace sink forces a real context even with no limits set, so the
    // engine has somewhere to record the stage times.
    const bool need_context = !limits.Unlimited() || limits.trace != nullptr;
    return db_->Execute(sql, need_context ? &exec : nullptr);
  }

  Result<engine::QueryResult> ExecuteUpdate(std::string_view sql,
                                            const ExecLimits& limits) override {
    return ExecuteQuery(sql, limits);
  }

 private:
  std::shared_ptr<engine::Database> db_;
};

class LocalDriver : public Driver {
 public:
  explicit LocalDriver(std::shared_ptr<engine::Database> db)
      : session_(std::make_shared<LocalSession>(std::move(db))) {}

  Result<std::shared_ptr<DriverSession>> NewSession() override {
    // Local sessions are stateless, so all Statements share one.
    return std::shared_ptr<DriverSession>(session_);
  }

 private:
  std::shared_ptr<LocalSession> session_;
};

struct DriverRegistry {
  std::mutex mu;
  std::map<std::string, DriverFactory> factories;
};

DriverRegistry& Registry() {
  static DriverRegistry& registry = *new DriverRegistry();
  return registry;
}

struct TargetOpenerRegistry {
  std::mutex mu;
  std::map<std::string, TargetOpener> openers;
};

TargetOpenerRegistry& OpenerRegistry() {
  static TargetOpenerRegistry& registry = *new TargetOpenerRegistry();
  return registry;
}

TargetOpener FindTargetOpener(const std::string& name) {
  TargetOpenerRegistry& registry = OpenerRegistry();
  std::lock_guard<std::mutex> lock(registry.mu);
  auto it = registry.openers.find(ToLowerAscii(name));
  return it != registry.openers.end() ? it->second : TargetOpener();
}

}  // namespace

void RegisterDriverScheme(const std::string& scheme, DriverFactory factory) {
  DriverRegistry& registry = Registry();
  std::lock_guard<std::mutex> lock(registry.mu);
  registry.factories[ToLowerAscii(scheme)] = std::move(factory);
}

bool HasDriverScheme(const std::string& scheme) {
  DriverRegistry& registry = Registry();
  std::lock_guard<std::mutex> lock(registry.mu);
  return registry.factories.count(ToLowerAscii(scheme)) > 0;
}

void RegisterTargetOpener(const std::string& name, TargetOpener opener) {
  TargetOpenerRegistry& registry = OpenerRegistry();
  std::lock_guard<std::mutex> lock(registry.mu);
  registry.openers[ToLowerAscii(name)] = std::move(opener);
}

bool HasTargetOpener(const std::string& name) {
  TargetOpenerRegistry& registry = OpenerRegistry();
  std::lock_guard<std::mutex> lock(registry.mu);
  return registry.openers.count(ToLowerAscii(name)) > 0;
}

bool LooksLikeRemoteUrl(std::string_view rest) {
  return rest.find("://") != std::string_view::npos;
}

Result<RemoteEndpoint> ParseRemoteUrl(std::string_view rest) {
  const std::string url(rest);
  const size_t scheme_end = rest.find("://");
  if (scheme_end == std::string_view::npos || scheme_end == 0) {
    return Status::InvalidArgument(StrFormat(
        "bad remote URL '%s': scheme: expected <scheme>://<host>:<port>/<sut>",
        url.c_str()));
  }
  RemoteEndpoint ep;
  ep.scheme = ToLowerAscii(rest.substr(0, scheme_end));
  std::string_view authority = rest.substr(scheme_end + 3);
  const size_t slash = authority.find('/');
  if (slash == std::string_view::npos) {
    return Status::InvalidArgument(StrFormat(
        "bad remote URL '%s': SUT: missing '/<sut-name>' after the port",
        url.c_str()));
  }
  ep.sut = std::string(authority.substr(slash + 1));
  authority = authority.substr(0, slash);
  const size_t colon = authority.rfind(':');
  if (colon == std::string_view::npos) {
    return Status::InvalidArgument(StrFormat(
        "bad remote URL '%s': port: expected <host>:<port>", url.c_str()));
  }
  ep.host = std::string(authority.substr(0, colon));
  if (ep.host.empty()) {
    return Status::InvalidArgument(
        StrFormat("bad remote URL '%s': host: empty", url.c_str()));
  }
  const std::string port_str(authority.substr(colon + 1));
  char* end = nullptr;
  const unsigned long port = std::strtoul(port_str.c_str(), &end, 10);
  if (port_str.empty() || end == port_str.c_str() || *end != '\0' ||
      port == 0 || port > 65535) {
    return Status::InvalidArgument(StrFormat(
        "bad remote URL '%s': port: '%s' is not a TCP port in [1, 65535]",
        url.c_str(), port_str.c_str()));
  }
  ep.port = static_cast<uint16_t>(port);
  if (ep.sut.empty()) {
    return Status::InvalidArgument(
        StrFormat("bad remote URL '%s': SUT: empty name", url.c_str()));
  }
  return ep;
}

const std::vector<SutConfig>& StandardSuts() {
  static const std::vector<SutConfig>& suts = *new std::vector<SutConfig>{
      {"pine-rtree", index::IndexKind::kRtree, topo::PredicateMode::kExact,
       false, true,
       "open-source DBMS with R-tree and exact DE-9IM (PostGIS role)"},
      {"pine-mbr", index::IndexKind::kRtree, topo::PredicateMode::kMbrOnly,
       false, true,
       "open-source DBMS with MBR-only predicates (MySQL-2011 role)"},
      {"pine-grid", index::IndexKind::kGrid, topo::PredicateMode::kExact,
       false, true, "commercial DBMS with grid index and exact predicates"},
      {"pine-scan", index::IndexKind::kNone, topo::PredicateMode::kExact,
       false, true, "any DBMS with the spatial index disabled (ablation)"},
  };
  return suts;
}

Result<SutConfig> SutByName(std::string_view name) {
  for (const SutConfig& sut : StandardSuts()) {
    if (EqualsIgnoreCase(sut.name, name)) return sut;
  }
  return Status::NotFound(
      StrFormat("unknown SUT '%s'", std::string(name).c_str()));
}

ChaosState::Fault ChaosState::NextFault() {
  std::lock_guard<std::mutex> lock(mu_);
  Fault fault;
  fault.sequence = ++draws_;
  // Both draws happen unconditionally so the stream position is a pure
  // function of the draw count, regardless of the configured rates.
  const double fail_roll = rng_.NextDouble();
  const double delay_roll = rng_.NextDouble();
  fault.fail = fail_roll < config_.error_rate;
  fault.delay_ms = delay_roll * config_.latency_ms;
  return fault;
}

Result<ChaosConfig> ParseChaosSpec(std::string_view spec) {
  constexpr std::string_view kHead = "chaos(";
  if (!StartsWith(spec, kHead) || !EndsWith(spec, ")")) {
    return Status::InvalidArgument(StrFormat(
        "bad chaos spec '%s': expected chaos(<seed>,<error-rate>,<latency-ms>)",
        std::string(spec).c_str()));
  }
  const std::string body(
      spec.substr(kHead.size(), spec.size() - kHead.size() - 1));
  const std::vector<std::string> parts = Split(body, ',');
  if (parts.size() != 3) {
    return Status::InvalidArgument(StrFormat(
        "bad chaos spec '%s': expected 3 comma-separated fields, got %zu",
        std::string(spec).c_str(), parts.size()));
  }
  ChaosConfig config;
  char* end = nullptr;
  config.seed = std::strtoull(parts[0].c_str(), &end, 10);
  if (end == parts[0].c_str() || *end != '\0') {
    return Status::InvalidArgument(
        StrFormat("bad chaos seed '%s'", parts[0].c_str()));
  }
  config.error_rate = std::strtod(parts[1].c_str(), &end);
  if (end == parts[1].c_str() || *end != '\0' || config.error_rate < 0.0 ||
      config.error_rate > 1.0) {
    return Status::InvalidArgument(StrFormat(
        "bad chaos error-rate '%s': expected a number in [0, 1]",
        parts[1].c_str()));
  }
  config.latency_ms = std::strtod(parts[2].c_str(), &end);
  if (end == parts[2].c_str() || *end != '\0' || config.latency_ms < 0.0) {
    return Status::InvalidArgument(StrFormat(
        "bad chaos latency-ms '%s': expected a non-negative number",
        parts[2].c_str()));
  }
  return config;
}

ResultSet::ResultSet(engine::QueryResult result) : result_(std::move(result)) {}

bool ResultSet::Next() {
  if (cursor_ >= result_.rows.size()) {
    // Latch in the after-last position: there is no current row any more,
    // and further Next() calls keep returning false (JDBC semantics).
    cursor_ = result_.rows.size() + 1;
    return false;
  }
  ++cursor_;
  return true;
}

namespace {

Status NoRow() { return Status::OutOfRange("ResultSet: no current row"); }

}  // namespace

const engine::Value& ResultSet::GetValue(size_t col) const {
  static const engine::Value& null_value = *new engine::Value();
  if (!HasRow() || col >= result_.rows[cursor_ - 1].size()) {
    return null_value;
  }
  return result_.rows[cursor_ - 1][col];
}

bool ResultSet::IsNull(size_t col) const { return GetValue(col).is_null(); }

Result<int64_t> ResultSet::GetInt64(size_t col) const {
  if (!HasRow()) return NoRow();
  return GetValue(col).AsInt64();
}

Result<double> ResultSet::GetDouble(size_t col) const {
  if (!HasRow()) return NoRow();
  return GetValue(col).AsDouble();
}

Result<std::string> ResultSet::GetString(size_t col) const {
  if (!HasRow()) return NoRow();
  const engine::Value& v = GetValue(col);
  if (v.type() != engine::DataType::kString) {
    return Status::InvalidArgument("not a string column");
  }
  return v.string_value();
}

Result<bool> ResultSet::GetBool(size_t col) const {
  if (!HasRow()) return NoRow();
  return GetValue(col).AsBool();
}

Result<geom::Geometry> ResultSet::GetGeometry(size_t col) const {
  if (!HasRow()) return NoRow();
  return GetValue(col).AsGeometry();
}

Status Statement::EnsureSession() {
  if (session_ != nullptr && session_->healthy()) return Status::Ok();
  JACKPINE_ASSIGN_OR_RETURN(session_, driver_->NewSession());
  return Status::Ok();
}

Result<ResultSet> Statement::ExecuteQuery(std::string_view sql) {
  if (chaos_ != nullptr) {
    const ChaosState::Fault fault = chaos_->NextFault();
    // The injected delay counts against the query's deadline: sleeping past
    // it would let chaos latency defeat the fault-tolerance contract, so the
    // sleep is clamped to the remaining budget and the query times out the
    // way a real driver's socket timeout would. The draw itself always
    // happens, so the deterministic chaos stream is unperturbed.
    double delay_ms = fault.delay_ms;
    const bool deadline_mid_sleep =
        limits_.deadline_s > 0.0 && delay_ms >= limits_.deadline_s * 1e3;
    if (deadline_mid_sleep) delay_ms = limits_.deadline_s * 1e3;
    if (delay_ms > 0.0) {
      std::this_thread::sleep_for(
          std::chrono::duration<double, std::milli>(delay_ms));
    }
    if (deadline_mid_sleep) {
      return Status::DeadlineExceeded(StrFormat(
          "chaos: injected %.3f ms delay exceeded the %.3f s deadline "
          "(draw #%llu)",
          fault.delay_ms, limits_.deadline_s,
          static_cast<unsigned long long>(fault.sequence)));
    }
    if (fault.fail) {
      return Status::Unavailable(StrFormat(
          "chaos: injected transient failure (draw #%llu)",
          static_cast<unsigned long long>(fault.sequence)));
    }
  }
  JACKPINE_RETURN_IF_ERROR(EnsureSession());
  JACKPINE_ASSIGN_OR_RETURN(engine::QueryResult result,
                            session_->ExecuteQuery(sql, limits_));
  return ResultSet(std::move(result));
}

Result<int64_t> Statement::ExecuteUpdate(std::string_view sql) {
  JACKPINE_RETURN_IF_ERROR(EnsureSession());
  JACKPINE_ASSIGN_OR_RETURN(engine::QueryResult result,
                            session_->ExecuteUpdate(sql, limits_));
  if (result.rows.size() == 1 && result.columns.size() == 1 &&
      result.columns[0] == "rows_affected") {
    return result.rows[0][0].AsInt64();
  }
  return static_cast<int64_t>(result.rows.size());
}

Result<Connection> Connection::OpenTarget(std::string_view rest) {
  // Composite targets ("shard(...)/sut", ...) resolve through the opener
  // registry. The name ends at the first '('; real remote URLs never match
  // because "://" sorts them into the branch below.
  if (const size_t paren = rest.find('(');
      paren != std::string_view::npos && paren > 0 &&
      !LooksLikeRemoteUrl(rest)) {
    if (TargetOpener opener =
            FindTargetOpener(std::string(rest.substr(0, paren)))) {
      JACKPINE_ASSIGN_OR_RETURN(OpenedTarget opened, opener(rest));
      Connection conn(std::move(opened.config), nullptr,
                      std::move(opened.driver));
      return conn;
    }
  }
  if (LooksLikeRemoteUrl(rest)) {
    JACKPINE_ASSIGN_OR_RETURN(RemoteEndpoint ep, ParseRemoteUrl(rest));
    // The client-side SutConfig mirrors the server's standard SUT so the
    // runner's reports stay labelled; the engine configuration itself lives
    // server-side.
    auto config_or = SutByName(ep.sut);
    if (!config_or.ok()) {
      return Status::InvalidArgument(
          StrFormat("bad remote URL '%s': SUT: unknown name '%s'",
                    std::string(rest).c_str(), ep.sut.c_str()));
    }
    DriverFactory factory;
    {
      DriverRegistry& registry = Registry();
      std::lock_guard<std::mutex> lock(registry.mu);
      auto it = registry.factories.find(ep.scheme);
      if (it != registry.factories.end()) factory = it->second;
    }
    if (!factory) {
      return Status::InvalidArgument(StrFormat(
          "bad remote URL '%s': scheme: no driver registered for '%s' "
          "(link jackpine_net and call net::RegisterRemoteDriver())",
          std::string(rest).c_str(), ep.scheme.c_str()));
    }
    JACKPINE_ASSIGN_OR_RETURN(std::shared_ptr<Driver> driver, factory(ep));
    return Connection(*std::move(config_or), nullptr, std::move(driver));
  }
  auto config_or = SutByName(rest);
  if (!config_or.ok()) {
    return Status::InvalidArgument(StrFormat(
        "bad URL '%s': SUT: unknown name (expected one of the standard SUTs "
        "or <scheme>://<host>:<port>/<sut>): %s",
        std::string(rest).c_str(), config_or.status().message().c_str()));
  }
  return Connection::Open(*std::move(config_or));
}

Result<Connection> Connection::Open(std::string_view url) {
  constexpr std::string_view kPrefix = "jackpine:";
  if (!StartsWith(url, kPrefix)) {
    return Status::InvalidArgument(StrFormat(
        "bad URL '%s': scheme: expected the 'jackpine:' prefix",
        std::string(url).c_str()));
  }
  std::string_view rest = url.substr(kPrefix.size());
  if (StartsWith(rest, "chaos(")) {
    // jackpine:chaos(<seed>,<error-rate>,<latency-ms>):<target>
    const size_t close = rest.find(')');
    if (close == std::string_view::npos || close + 1 >= rest.size() ||
        rest[close + 1] != ':') {
      return Status::InvalidArgument(StrFormat(
          "bad URL '%s': expected jackpine:chaos(...):<target>",
          std::string(url).c_str()));
    }
    JACKPINE_ASSIGN_OR_RETURN(ChaosConfig chaos,
                              ParseChaosSpec(rest.substr(0, close + 1)));
    JACKPINE_ASSIGN_OR_RETURN(Connection conn,
                              OpenTarget(rest.substr(close + 2)));
    conn.chaos_ = std::make_shared<ChaosState>(chaos);
    return conn;
  }
  return OpenTarget(rest);
}

Connection Connection::Open(const SutConfig& config) {
  engine::DatabaseOptions options;
  options.name = config.name;
  options.index_kind = config.index_kind;
  options.predicate_mode = config.predicate_mode;
  options.incremental_index_build = config.incremental_index_build;
  options.fold_constants = config.fold_constants;
  auto db = std::make_shared<engine::Database>(options);
  auto driver = std::make_shared<LocalDriver>(db);
  return Connection(config, std::move(db), std::move(driver));
}

}  // namespace jackpine::client
