// The driver seam behind client::Connection.
//
// The original Jackpine harness is backend-agnostic because it speaks JDBC:
// the same benchmark code drives PostGIS, MySQL and Informix through one
// Connection/Statement interface, and the driver decides whether SQL runs in
// process or crosses a network. This header reproduces that seam: a Driver
// produces DriverSessions, a Statement executes through exactly one session,
// and Connection::Open picks the driver from the URL. The in-process engine
// is one driver; jackpine::net registers another ("tcp") that speaks the
// pinedb wire protocol, so remote benchmarking needs no changes above this
// line.

#ifndef JACKPINE_CLIENT_DRIVER_H_
#define JACKPINE_CLIENT_DRIVER_H_

#include <cstdint>
#include <functional>
#include <memory>
#include <string>
#include <string_view>

#include "common/exec_context.h"
#include "common/status.h"
#include "engine/executor.h"

namespace jackpine::client {

// One execution session against a backend — the unit a Statement talks to.
// Local sessions share the in-process engine and are trivially healthy; a
// remote session owns one TCP connection to a pinedb server and turns
// unhealthy when the transport breaks (the Statement then opens a fresh
// session on the next execution, the way a JDBC driver reconnects).
class DriverSession {
 public:
  virtual ~DriverSession() = default;

  // Executes one SELECT. `limits` carries the per-query deadline and
  // budgets; local sessions enforce them via ExecContext, remote sessions
  // ship them in the Query frame so the server enforces them.
  virtual Result<engine::QueryResult> ExecuteQuery(std::string_view sql,
                                                   const ExecLimits& limits) = 0;

  // Executes DDL/DML. Same result shape as the engine: a single
  // "rows_affected" cell.
  virtual Result<engine::QueryResult> ExecuteUpdate(
      std::string_view sql, const ExecLimits& limits) = 0;

  // False once the session can no longer execute (broken transport).
  virtual bool healthy() const { return true; }

  // Best-effort cancellation of the in-flight call from another thread —
  // the hedged-scatter loser path. A remote session shuts its socket down
  // (the blocked recv fails, the session turns unhealthy, and the failure
  // is charged to the abort, not the endpoint's circuit breaker); the
  // default is a no-op for backends with nothing to interrupt.
  virtual void Abort() {}
};

// A connection backend: hands out sessions for Statements.
class Driver {
 public:
  virtual ~Driver() = default;
  virtual Result<std::shared_ptr<DriverSession>> NewSession() = 0;
};

// A parsed remote endpoint, from the URL tail "<scheme>://<host>:<port>/<sut>"
// (e.g. "tcp://127.0.0.1:7744/pine-rtree" in
// "jackpine:tcp://127.0.0.1:7744/pine-rtree").
struct RemoteEndpoint {
  std::string scheme;
  std::string host;
  uint16_t port = 0;
  std::string sut;
};

// True when the URL tail after "jackpine:" (and any chaos prefix) names a
// remote endpoint rather than an in-process SUT.
bool LooksLikeRemoteUrl(std::string_view rest);

// Parses "<scheme>://<host>:<port>/<sut>". Errors are structured
// kInvalidArgument naming the offending component (scheme / host / port /
// SUT) so a misconfigured URL is diagnosable from the runner's
// error-taxonomy table alone.
Result<RemoteEndpoint> ParseRemoteUrl(std::string_view rest);

// Remote-driver registry, keyed by URL scheme. jackpine::net installs the
// "tcp" factory via net::RegisterRemoteDriver(); Connection::Open consults
// the registry whenever the URL tail looks remote. Registration is
// idempotent and thread-safe.
using DriverFactory =
    std::function<Result<std::shared_ptr<Driver>>(const RemoteEndpoint&)>;
void RegisterDriverScheme(const std::string& scheme, DriverFactory factory);
bool HasDriverScheme(const std::string& scheme);

}  // namespace jackpine::client

#endif  // JACKPINE_CLIENT_DRIVER_H_
