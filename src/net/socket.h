// Minimal POSIX TCP wrappers for the pinedb wire protocol.
//
// Only what the client driver and server need: connect, listen/accept,
// full-buffer send, chunk receive with an optional timeout. Transport
// failures map onto the fault-model status codes — kUnavailable for broken
// or refused connections (retryable, like a dropped JDBC connection) and
// kDeadlineExceeded for receive/send timeouts — so the retrying runner
// composes with remote SUTs without knowing sockets exist.
//
// Every blocking syscall here (connect, accept, send, recv) retries or
// resolves EINTR instead of surfacing it as a spurious kUnavailable: a
// signal landing mid-benchmark (SIGINT forwarded by a harness, a profiler's
// SIGPROF) must not masquerade as a transport fault.

#ifndef JACKPINE_NET_SOCKET_H_
#define JACKPINE_NET_SOCKET_H_

#include <cstdint>
#include <string>

#include "common/status.h"

namespace jackpine::net {

// An owned, connected TCP socket. Movable, non-copyable.
class Socket {
 public:
  Socket() = default;
  explicit Socket(int fd) : fd_(fd) {}
  ~Socket() { Close(); }
  Socket(Socket&& other) noexcept
      : fd_(other.fd_), send_timeout_s_(other.send_timeout_s_) {
    other.fd_ = -1;
  }
  Socket& operator=(Socket&& other) noexcept;
  Socket(const Socket&) = delete;
  Socket& operator=(const Socket&) = delete;

  static Result<Socket> Connect(const std::string& host, uint16_t port);

  bool valid() const { return fd_ >= 0; }
  int fd() const { return fd_; }

  // Sends the whole buffer, looping over partial writes. kUnavailable on a
  // broken connection, kDeadlineExceeded when a send timeout (see
  // SetSendTimeout) expires with the peer not draining.
  Status SendAll(std::string_view data);

  // Receives up to `max` bytes into `buf`. Returns 0 on orderly EOF,
  // kDeadlineExceeded when the receive timeout expires, kUnavailable on any
  // other transport failure.
  Result<size_t> Recv(char* buf, size_t max);

  // Receive timeout for subsequent Recv calls; <= 0 means block forever.
  Status SetRecvTimeout(double seconds);

  // Send timeout for subsequent SendAll calls; <= 0 means block forever.
  // With a timeout set, a peer that stops draining its receive buffer turns
  // a blocked send into kDeadlineExceeded instead of pinning the sender.
  // The timeout bounds each blocked send() *and*, wall-clock, the whole
  // SendAll call, so a peer trickling one byte per window cannot keep
  // resetting the clock.
  Status SetSendTimeout(double seconds);

  // Half-close both directions; unblocks a peer (or own thread) stuck in
  // Recv. Safe to call concurrently with Recv, unlike Close.
  void ShutdownBoth();

  void Close();

 private:
  int fd_ = -1;
  // Wall-clock bound on one SendAll, mirroring the SO_SNDTIMEO value; 0
  // means unbounded.
  double send_timeout_s_ = 0.0;
};

// A listening TCP socket.
class Listener {
 public:
  Listener() = default;
  ~Listener() { Close(); }
  Listener(Listener&& other) noexcept : fd_(other.fd_), port_(other.port_) {
    other.fd_ = -1;
  }
  Listener(const Listener&) = delete;
  Listener& operator=(const Listener&) = delete;

  // Binds and listens. `port` 0 picks an ephemeral port, readable from
  // port() afterwards.
  static Result<Listener> Listen(const std::string& host, uint16_t port,
                                 int backlog = 64);

  // Blocks for the next connection. Fails with kUnavailable after
  // Shutdown() — the server's acceptor loop uses that as its exit signal.
  Result<Socket> Accept();

  uint16_t port() const { return port_; }
  bool valid() const { return fd_ >= 0; }

  // Unblocks a pending Accept and makes all future ones fail.
  void Shutdown();
  void Close();

 private:
  int fd_ = -1;
  uint16_t port_ = 0;
};

}  // namespace jackpine::net

#endif  // JACKPINE_NET_SOCKET_H_
