// The client side of the wire protocol: a client::Driver that talks to a
// pinedb server.
//
// Each DriverSession is one TCP connection with its own Hello handshake, so
// every client::Statement of a remote Connection becomes one server session
// — the multi-client throughput mode turns into genuinely concurrent
// client/server traffic, which is the round-trip the paper measured over
// JDBC. Transport failures surface as kUnavailable (retryable; the
// Statement opens a fresh session on the next execution) and receive
// timeouts as kDeadlineExceeded, mirroring a JDBC socket timeout.
//
// All sessions of one RemoteDriver share a CircuitBreaker: consecutive
// transport failures open it, and while open every new connect attempt
// fast-fails locally with kUnavailable + retry_after_ms instead of dialing
// a server that is likely down or drowning. Server sheds (kResourceExhausted
// with a retry hint) never trip the breaker — they prove the server is up.

#ifndef JACKPINE_NET_REMOTE_DRIVER_H_
#define JACKPINE_NET_REMOTE_DRIVER_H_

#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <utility>
#include <vector>

#include "client/circuit_breaker.h"
#include "client/driver.h"
#include "net/wire.h"

namespace jackpine::net {

class RemoteDriver : public client::Driver {
 public:
  explicit RemoteDriver(client::RemoteEndpoint endpoint)
      : endpoint_(std::move(endpoint)) {}

  // Connects and handshakes; kUnavailable when the server is unreachable,
  // kInvalidArgument when it hosts a different SUT.
  Result<std::shared_ptr<client::DriverSession>> NewSession() override;

  const client::RemoteEndpoint& endpoint() const { return endpoint_; }

  // Shared across all sessions of this driver; exposed so runners and tests
  // can inspect fast-fail/open counts.
  const std::shared_ptr<client::CircuitBreaker>& breaker() const {
    return breaker_;
  }

 private:
  friend Result<std::shared_ptr<client::Driver>> OpenRemoteDriver(
      const client::RemoteEndpoint& endpoint);

  client::RemoteEndpoint endpoint_;
  std::shared_ptr<client::CircuitBreaker> breaker_ =
      std::make_shared<client::CircuitBreaker>();
  std::mutex mu_;  // guards probe_
  // The session opened to validate the endpoint at Connection::Open time,
  // handed to the first Statement instead of reconnecting.
  std::shared_ptr<client::DriverSession> probe_;
};

// Connects eagerly (one probe session) so a bad host/port/SUT fails at
// Connection::Open rather than at the first query.
Result<std::shared_ptr<client::Driver>> OpenRemoteDriver(
    const client::RemoteEndpoint& endpoint);

// Installs the "tcp" scheme in the client driver registry, enabling
// jackpine:tcp://host:port/sut URLs. Idempotent; call once at startup.
void RegisterRemoteDriver();

// One-shot stats scrape: connect, handshake (any SUT), send a Stats request
// for `scope`, return the reply's (name, value) entries. The observability
// equivalent of a curl against a metrics endpoint — used by `pinedb stats`,
// tests, and the CI smoke step.
Result<std::vector<std::pair<std::string, double>>> QueryServerStats(
    const std::string& host, uint16_t port,
    StatsScope scope = StatsScope::kGlobal);

// One-shot scrape of the JSON-document scopes (kStatements, kSlow):
// returns the server's JSON text verbatim. A legacy server that predates
// these scopes answers with a kParseError Error frame, which surfaces here
// as that error Status — callers can distinguish "old server" from "down".
Result<std::string> QueryServerStatsJson(const std::string& host,
                                         uint16_t port, StatsScope scope);

// One successful health probe: what it measured and what it learned about
// the peer.
struct PingProbe {
  double rtt_s = 0.0;  // connect + Hello + Ping round trip, client clock
  // True when the server predates the Ping frame: it answered the probe
  // with a kParseError Error frame (its decoder rejects type 8). The
  // endpoint is alive — the handshake succeeded — it just cannot be
  // latency-probed beyond the handshake itself.
  bool legacy = false;
};

// One-shot liveness/latency probe: connect, handshake (any SUT), send one
// Ping, time the round trip. An error Status means the endpoint is down or
// unreachable; a legacy server that rejects the Ping frame still counts as
// up (see PingProbe::legacy). `timeout_s` bounds the receive wait.
Result<PingProbe> PingEndpoint(const std::string& host, uint16_t port,
                               double timeout_s = 2.0);

}  // namespace jackpine::net

#endif  // JACKPINE_NET_REMOTE_DRIVER_H_
