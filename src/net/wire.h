// The pinedb wire protocol: length-prefixed binary frames.
//
// This is the layer the paper's JDBC drivers occupy: everything a remote
// benchmark measures beyond raw query time — result serialisation, batching,
// connection handling — happens here. The format is deliberately simple and
// fully little-endian:
//
//   frame   := type:u8 length:u32 payload[length]
//   Hello       (1)  version:u32 sut:str info:str
//                    [trace_flags:u8 [server_time_s:f64]]  both directions
//   Query       (2)  sql:str deadline_s:f64 max_rows:u64
//                    max_result_bytes:u64 batch_rows:u32
//                    [trace_id:u64 parent_span_id:u64]
//   Update      (3)  same payload as Query (DDL/DML; never chaos-injected)
//   ResultBatch (4)  flags:u8 [columns] rows [rows_examined:u64]
//                                                       server -> client
//   Error       (5)  code:u8 message:str [retry_after_ms:u32]  server -> client
//   Close       (6)  (empty)                            client -> server
//   Stats       (7)  request: scope:u8 (0=global 1=session 2=spans
//                                       3=statements 4=slow)
//                    reply:   count:u32 (name:str value:f64)*
//                             — or a SpanList for scope 2, or one JSON
//                               document (json:str) for scopes 3/4
//   Ping        (8)  seq:u64 [sender_time_s:f64]  both directions; the
//                    server echoes the seq, stamping its own clock in the
//                    optional trailing field (health probes measure RTT
//                    client-side either way)
//
// str is u32 length + bytes. A query response is a sequence of ResultBatch
// frames — the column header rides in the first, the kLast flag marks the
// final one — so large results stream in bounded batches and backpressure is
// simply the server blocking on send while the client drains. Geometry
// values cross the wire as WKB (geom/wkb.h), every other value as its
// natural fixed-width or length-prefixed encoding.
//
// Deadlines propagate as a field in the Query frame: the server rebuilds
// ExecLimits from it, so ExecContext budgets are enforced server-side and a
// remote query times out exactly like a local one.
//
// Every decode path is defensive: truncated, oversized or corrupted input
// yields a clean Status (kParseError / kInvalidArgument), never a crash, an
// unbounded allocation, or a hang (tests/wire_test.cpp feeds it garbage
// under asan/ubsan to keep that true).

#ifndef JACKPINE_NET_WIRE_H_
#define JACKPINE_NET_WIRE_H_

#include <cstdint>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

#include "common/status.h"
#include "engine/executor.h"
#include "obs/span.h"

namespace jackpine::net {

// Bumped on any incompatible format change; the Hello exchange rejects
// mismatched peers.
inline constexpr uint32_t kProtocolVersion = 1;

// Upper bound on a single frame payload. Large results are split into
// batches well below this; a length field above it is treated as corruption
// rather than an allocation request.
inline constexpr uint32_t kMaxFramePayload = 64u << 20;  // 64 MiB

enum class FrameType : uint8_t {
  kHello = 1,
  kQuery = 2,
  kUpdate = 3,
  kResultBatch = 4,
  kError = 5,
  kClose = 6,
  // Observability scrape (obs/): request carries a scope byte, reply the
  // flat (name, value) entry list. A pre-stats peer treats type 7 as a
  // framing error and drops the connection, so clients only send it to
  // servers that completed a version-matched Hello.
  kStats = 7,
  // Liveness/latency probe (shard health checking): the server echoes the
  // frame back with the same seq. A pre-ping server rejects type 8 as a
  // framing error and answers with a kParseError Error frame before closing
  // — the prober treats that reply as "alive, legacy" rather than down, so
  // mixed-version clusters keep health-checking (the same fallback contract
  // as the Hello trace negotiation).
  kPing = 8,
};

struct Frame {
  FrameType type = FrameType::kClose;
  std::string payload;
};

// Serialises one frame (header + payload).
std::string EncodeFrame(FrameType type, std::string_view payload);

// Incremental decoder over a byte stream. Feed() appends received bytes;
// Next() yields complete frames. A malformed header (unknown type,
// oversized length) latches an error that every subsequent Next() repeats,
// because nothing after a framing error can be trusted.
class FrameDecoder {
 public:
  explicit FrameDecoder(size_t max_payload = kMaxFramePayload)
      : max_payload_(max_payload) {}

  void Feed(std::string_view bytes) { buffer_.append(bytes); }

  // A complete frame, std::nullopt when more bytes are needed, or an error
  // on malformed input.
  Result<std::optional<Frame>> Next();

  size_t buffered_bytes() const { return buffer_.size(); }

 private:
  size_t max_payload_;
  std::string buffer_;
  Status failure_;  // latched framing error
};

// --- Frame payloads ---------------------------------------------------

struct HelloMsg {
  uint32_t protocol_version = kProtocolVersion;
  std::string sut;        // requested (client) / served (server) SUT name
  std::string peer_info;  // free-form software identifier
  // Span-tracing capability negotiation (optional trailing fields, same
  // legacy-compatible scheme as Error's retry_after_ms): a tracing client
  // appends a flags byte with kWantTrace; a capable server answers with
  // kHasServerTime plus its span-clock reading, from which the client
  // estimates the clock offset (DESIGN.md "Observability"). With tracing
  // off nothing is appended, so the frame stays byte-identical to the
  // pre-span encoding and old strict decoders still accept it. A payload
  // ending after peer_info decodes as flags 0 (a pre-span peer).
  static constexpr uint8_t kWantTrace = 1;      // client requests tracing
  static constexpr uint8_t kHasServerTime = 2;  // server_time_s follows
  uint8_t trace_flags = 0;
  double server_time_s = 0.0;  // server's SpanNowS() while answering Hello
};

struct QueryMsg {
  std::string sql;
  // ExecLimits fields, zero meaning unlimited (common/exec_context.h).
  double deadline_s = 0.0;
  uint64_t max_rows = 0;
  uint64_t max_result_bytes = 0;
  // Client hint for rows per ResultBatch; 0 = server default.
  uint32_t batch_rows = 0;
  // Propagated trace context (optional trailing fields): the trace id every
  // server-side span of this query joins, and the client span to parent the
  // server's root span under. Emitted only when trace_id is nonzero — an
  // untraced frame keeps the pre-span encoding, so old strict decoders
  // still parse it, and a payload ending after batch_rows decodes as
  // untraced. Clients only set these on sessions whose Hello negotiated
  // tracing, so an old server never sees the trailing bytes.
  uint64_t trace_id = 0;
  uint64_t parent_span_id = 0;
};

struct ErrorMsg {
  StatusCode code = StatusCode::kInternal;
  std::string message;
  // Overload pacing hint (0 = none): the server shed this request and the
  // client should wait at least this long before retrying. Encoded as an
  // optional trailing u32, emitted only when nonzero — a hintless frame
  // keeps the pre-overload encoding, so old peers (whose strict decoder
  // rejects trailing bytes) still parse every Error except an actual shed,
  // and the decoder treats a payload ending after the message as hint 0.
  uint32_t retry_after_ms = 0;
};

struct ResultBatchMsg {
  static constexpr uint8_t kLast = 1;       // final batch of this result
  static constexpr uint8_t kHasHeader = 2;  // carries the column names
  bool last = true;
  std::vector<std::string> columns;  // only meaningful with kHasHeader
  bool has_header = false;
  std::vector<engine::Row> rows;
  // Server-side QueryResult::rows_examined, riding in the header batch as an
  // optional trailing u64 — emitted only when nonzero, the same
  // legacy-compatible scheme as Error's retry_after_ms: a payload ending
  // after the rows decodes as zero, so frames from a pre-stats server still
  // parse, and a zero-count frame still parses on a pre-stats client.
  uint64_t rows_examined = 0;
};

// Stats scrape request: which registry to read.
enum class StatsScope : uint8_t {
  kGlobal = 0,   // process-wide: server counters + engine stats + registry
  kSession = 1,  // this session's per-query trace since its last query
  // Drains the session's span buffer; the kStats reply carries a SpanList
  // payload instead of flat entries. Only sent on sessions whose Hello
  // negotiated tracing (an old server rejects scope 2 as a parse error).
  kSpans = 2,
  // Query-intelligence scrapes (obs/statements.h, obs/flight_recorder.h):
  // the kStats reply carries one JSON document (StatsJsonMsg) instead of
  // flat entries — the same documents the HTTP /statements and /slow
  // endpoints serve. Additive in the kSpans tradition: a pre-statements
  // server rejects scopes 3/4 with a kParseError Error frame, which the
  // scrape helper surfaces as a plain error, never a hang or a crash.
  kStatements = 3,  // fingerprint statistics, most-called first
  kSlow = 4,        // slow-query flight recorder dump
};

struct StatsRequestMsg {
  StatsScope scope = StatsScope::kGlobal;
};

// Flat (name, value) entries — the shape Registry::Snapshot() and
// QueryTrace::ToEntries() already produce.
struct StatsReplyMsg {
  std::vector<std::pair<std::string, double>> entries;
};

std::string EncodeHello(const HelloMsg& msg);
Result<HelloMsg> DecodeHello(std::string_view payload);

std::string EncodeQuery(const QueryMsg& msg);
Result<QueryMsg> DecodeQuery(std::string_view payload);

// The Status's retry_after_ms() rides along in the frame when nonzero.
std::string EncodeError(const Status& status);
Result<ErrorMsg> DecodeError(std::string_view payload);

// Rebuilds the client-visible Status from a decoded Error frame, retry
// hint included.
Status ErrorToStatus(const ErrorMsg& msg);

std::string EncodeResultBatch(const ResultBatchMsg& msg);
Result<ResultBatchMsg> DecodeResultBatch(std::string_view payload);

// Health probe payload. `sender_time_s` is an optional trailing field in
// the Error/Hello style: emitted only when nonzero, so a plain ping keeps
// the minimal seq-only encoding, and a payload ending after the seq decodes
// as 0.0 (a peer without a clock reading).
struct PingMsg {
  uint64_t seq = 0;
  double sender_time_s = 0.0;
};

std::string EncodePing(const PingMsg& msg);
Result<PingMsg> DecodePing(std::string_view payload);

std::string EncodeStatsRequest(const StatsRequestMsg& msg);
Result<StatsRequestMsg> DecodeStatsRequest(std::string_view payload);

std::string EncodeStatsReply(const StatsReplyMsg& msg);
Result<StatsReplyMsg> DecodeStatsReply(std::string_view payload);

// The kStats reply payload for a StatsScope::kSpans request: the server
// session's drained spans, times on the *server's* span clock (the client
// offset-corrects them; see obs::ShiftSpans). The `process` lane does not
// cross the wire — the receiver assigns it.
struct SpanListMsg {
  std::vector<obs::SpanRecord> spans;
};

std::string EncodeSpanList(const SpanListMsg& msg);
Result<SpanListMsg> DecodeSpanList(std::string_view payload);

// The kStats reply payload for StatsScope::kStatements / kSlow: one JSON
// document, produced by StatementStats::ToJson / FlightRecorder::ToJson.
// JSON rather than a bespoke binary shape because these are operator-facing
// diagnostic dumps — the same bytes the HTTP endpoint serves — and their
// schema will grow; the strict obs::Json parser validates them on receipt.
struct StatsJsonMsg {
  std::string json;
};

std::string EncodeStatsJson(const StatsJsonMsg& msg);
Result<StatsJsonMsg> DecodeStatsJson(std::string_view payload);

// Splits a query result into ready-to-send ResultBatch frames of at most
// `batch_rows` rows (and roughly kBatchByteTarget payload bytes, whichever
// limit hits first). Always yields at least one frame — an empty result is
// one header-carrying kLast batch.
inline constexpr size_t kDefaultBatchRows = 512;
inline constexpr size_t kBatchByteTarget = 1u << 20;  // 1 MiB
std::vector<std::string> EncodeResultFrames(const engine::QueryResult& result,
                                            size_t batch_rows);

// Client-side accumulator for a streamed result.
class ResultAssembler {
 public:
  // Folds one batch in; rejects a headerless first batch or rows after the
  // last batch.
  Status Add(ResultBatchMsg batch);
  bool done() const { return done_; }
  engine::QueryResult Take() { return std::move(result_); }

 private:
  engine::QueryResult result_;
  bool saw_header_ = false;
  bool done_ = false;
};

}  // namespace jackpine::net

#endif  // JACKPINE_NET_WIRE_H_
