#include "net/wire.h"

#include <cstring>

#include "common/string_util.h"
#include "geom/wkb.h"

namespace jackpine::net {

namespace {

using engine::Value;

// --- Primitive writers ------------------------------------------------

void AppendU8(std::string* out, uint8_t v) {
  out->push_back(static_cast<char>(v));
}

void AppendU32(std::string* out, uint32_t v) {
  char buf[4];
  std::memcpy(buf, &v, 4);
  out->append(buf, 4);
}

void AppendU64(std::string* out, uint64_t v) {
  char buf[8];
  std::memcpy(buf, &v, 8);
  out->append(buf, 8);
}

void AppendF64(std::string* out, double v) {
  uint64_t bits;
  std::memcpy(&bits, &v, 8);
  AppendU64(out, bits);
}

void AppendStr(std::string* out, std::string_view s) {
  AppendU32(out, static_cast<uint32_t>(s.size()));
  out->append(s);
}

// --- Bounded reader ---------------------------------------------------

// Every Read* checks the remaining byte count before touching memory, and
// length-prefixed fields are validated against the remaining input before
// any allocation, so corrupted lengths cannot trigger OOM or overread.
class Reader {
 public:
  explicit Reader(std::string_view data) : data_(data) {}

  Result<uint8_t> ReadU8() {
    if (remaining() < 1) return Err("truncated (u8)");
    return static_cast<uint8_t>(data_[pos_++]);
  }

  Result<uint32_t> ReadU32() {
    if (remaining() < 4) return Err("truncated (u32)");
    uint32_t v;
    std::memcpy(&v, data_.data() + pos_, 4);
    pos_ += 4;
    return v;
  }

  Result<uint64_t> ReadU64() {
    if (remaining() < 8) return Err("truncated (u64)");
    uint64_t v;
    std::memcpy(&v, data_.data() + pos_, 8);
    pos_ += 8;
    return v;
  }

  Result<double> ReadF64() {
    JACKPINE_ASSIGN_OR_RETURN(uint64_t bits, ReadU64());
    double v;
    std::memcpy(&v, &bits, 8);
    return v;
  }

  Result<std::string> ReadStr() {
    JACKPINE_ASSIGN_OR_RETURN(uint32_t n, ReadU32());
    if (n > remaining()) return Err("string length exceeds input");
    std::string s(data_.substr(pos_, n));
    pos_ += n;
    return s;
  }

  size_t remaining() const { return data_.size() - pos_; }

  Status ExpectEnd() const {
    if (remaining() != 0) {
      return Status::ParseError(StrFormat(
          "wire: %zu trailing bytes in frame payload", remaining()));
    }
    return Status::Ok();
  }

 private:
  Status Err(const char* what) const {
    return Status::ParseError(
        StrFormat("wire: at offset %zu: %s", pos_, what));
  }

  std::string_view data_;
  size_t pos_ = 0;
};

// --- Values -----------------------------------------------------------

enum class ValueTag : uint8_t {
  kNull = 0,
  kBool = 1,
  kInt64 = 2,
  kDouble = 3,
  kString = 4,
  kGeometry = 5,
};

void AppendValue(std::string* out, const Value& v) {
  switch (v.type()) {
    case engine::DataType::kNull:
      AppendU8(out, static_cast<uint8_t>(ValueTag::kNull));
      return;
    case engine::DataType::kBool:
      AppendU8(out, static_cast<uint8_t>(ValueTag::kBool));
      AppendU8(out, v.bool_value() ? 1 : 0);
      return;
    case engine::DataType::kInt64:
      AppendU8(out, static_cast<uint8_t>(ValueTag::kInt64));
      AppendU64(out, static_cast<uint64_t>(v.int_value()));
      return;
    case engine::DataType::kDouble:
      AppendU8(out, static_cast<uint8_t>(ValueTag::kDouble));
      AppendF64(out, v.double_value());
      return;
    case engine::DataType::kString:
      AppendU8(out, static_cast<uint8_t>(ValueTag::kString));
      AppendStr(out, v.string_value());
      return;
    case engine::DataType::kGeometry:
      AppendU8(out, static_cast<uint8_t>(ValueTag::kGeometry));
      AppendStr(out, geom::ToWkb(v.geometry_value()));
      return;
  }
  AppendU8(out, static_cast<uint8_t>(ValueTag::kNull));
}

Result<Value> ReadValue(Reader* r) {
  JACKPINE_ASSIGN_OR_RETURN(uint8_t tag, r->ReadU8());
  switch (static_cast<ValueTag>(tag)) {
    case ValueTag::kNull:
      return Value::MakeNull();
    case ValueTag::kBool: {
      JACKPINE_ASSIGN_OR_RETURN(uint8_t b, r->ReadU8());
      if (b > 1) return Status::ParseError("wire: bad bool value");
      return Value::Bool(b == 1);
    }
    case ValueTag::kInt64: {
      JACKPINE_ASSIGN_OR_RETURN(uint64_t v, r->ReadU64());
      return Value::Int(static_cast<int64_t>(v));
    }
    case ValueTag::kDouble: {
      JACKPINE_ASSIGN_OR_RETURN(double v, r->ReadF64());
      return Value::Real(v);
    }
    case ValueTag::kString: {
      JACKPINE_ASSIGN_OR_RETURN(std::string s, r->ReadStr());
      return Value::Str(std::move(s));
    }
    case ValueTag::kGeometry: {
      JACKPINE_ASSIGN_OR_RETURN(std::string wkb, r->ReadStr());
      JACKPINE_ASSIGN_OR_RETURN(geom::Geometry g, geom::FromWkb(wkb));
      return Value::Geo(std::move(g));
    }
  }
  return Status::ParseError(StrFormat("wire: unknown value tag %u", tag));
}

bool KnownFrameType(uint8_t t) {
  return t >= static_cast<uint8_t>(FrameType::kHello) &&
         t <= static_cast<uint8_t>(FrameType::kPing);
}

bool KnownStatusCode(uint8_t c) {
  return c <= static_cast<uint8_t>(StatusCode::kDataLoss);
}

}  // namespace

std::string EncodeFrame(FrameType type, std::string_view payload) {
  std::string out;
  out.reserve(5 + payload.size());
  AppendU8(&out, static_cast<uint8_t>(type));
  AppendU32(&out, static_cast<uint32_t>(payload.size()));
  out.append(payload);
  return out;
}

Result<std::optional<Frame>> FrameDecoder::Next() {
  if (!failure_.ok()) return failure_;
  if (buffer_.size() < 5) return std::optional<Frame>(std::nullopt);
  const uint8_t type = static_cast<uint8_t>(buffer_[0]);
  uint32_t length;
  std::memcpy(&length, buffer_.data() + 1, 4);
  if (!KnownFrameType(type)) {
    failure_ = Status::ParseError(
        StrFormat("wire: unknown frame type %u", type));
    return failure_;
  }
  if (length > max_payload_) {
    failure_ = Status::ParseError(StrFormat(
        "wire: frame payload of %u bytes exceeds the %zu-byte limit",
        length, max_payload_));
    return failure_;
  }
  if (buffer_.size() < 5 + static_cast<size_t>(length)) {
    return std::optional<Frame>(std::nullopt);
  }
  Frame frame;
  frame.type = static_cast<FrameType>(type);
  frame.payload = buffer_.substr(5, length);
  buffer_.erase(0, 5 + static_cast<size_t>(length));
  return std::optional<Frame>(std::move(frame));
}

std::string EncodeHello(const HelloMsg& msg) {
  std::string out;
  AppendU32(&out, msg.protocol_version);
  AppendStr(&out, msg.sut);
  AppendStr(&out, msg.peer_info);
  // Trace negotiation is an optional trailing field: with tracing off the
  // frame stays byte-identical to the pre-span encoding, so old strict
  // decoders keep accepting it (see the struct comment).
  if (msg.trace_flags != 0) {
    AppendU8(&out, msg.trace_flags);
    if ((msg.trace_flags & HelloMsg::kHasServerTime) != 0) {
      AppendF64(&out, msg.server_time_s);
    }
  }
  return out;
}

Result<HelloMsg> DecodeHello(std::string_view payload) {
  Reader r(payload);
  HelloMsg msg;
  JACKPINE_ASSIGN_OR_RETURN(msg.protocol_version, r.ReadU32());
  JACKPINE_ASSIGN_OR_RETURN(msg.sut, r.ReadStr());
  JACKPINE_ASSIGN_OR_RETURN(msg.peer_info, r.ReadStr());
  // Trailing trace negotiation: a payload ending here is a pre-span peer.
  if (r.remaining() > 0) {
    JACKPINE_ASSIGN_OR_RETURN(msg.trace_flags, r.ReadU8());
    const uint8_t known = HelloMsg::kWantTrace | HelloMsg::kHasServerTime;
    if ((msg.trace_flags & ~known) != 0 || msg.trace_flags == 0) {
      return Status::ParseError(StrFormat(
          "wire: bad Hello trace flags 0x%02x", msg.trace_flags));
    }
    if ((msg.trace_flags & HelloMsg::kHasServerTime) != 0) {
      JACKPINE_ASSIGN_OR_RETURN(msg.server_time_s, r.ReadF64());
    }
  }
  JACKPINE_RETURN_IF_ERROR(r.ExpectEnd());
  return msg;
}

std::string EncodeQuery(const QueryMsg& msg) {
  std::string out;
  AppendStr(&out, msg.sql);
  AppendF64(&out, msg.deadline_s);
  AppendU64(&out, msg.max_rows);
  AppendU64(&out, msg.max_result_bytes);
  AppendU32(&out, msg.batch_rows);
  // Trace context is an optional trailing pair, emitted only for traced
  // queries on trace-negotiated sessions — an untraced frame keeps the
  // pre-span encoding old strict decoders accept.
  if (msg.trace_id != 0) {
    AppendU64(&out, msg.trace_id);
    AppendU64(&out, msg.parent_span_id);
  }
  return out;
}

Result<QueryMsg> DecodeQuery(std::string_view payload) {
  Reader r(payload);
  QueryMsg msg;
  JACKPINE_ASSIGN_OR_RETURN(msg.sql, r.ReadStr());
  JACKPINE_ASSIGN_OR_RETURN(msg.deadline_s, r.ReadF64());
  JACKPINE_ASSIGN_OR_RETURN(msg.max_rows, r.ReadU64());
  JACKPINE_ASSIGN_OR_RETURN(msg.max_result_bytes, r.ReadU64());
  JACKPINE_ASSIGN_OR_RETURN(msg.batch_rows, r.ReadU32());
  // Trailing trace context: a payload ending here is an untraced query.
  if (r.remaining() > 0) {
    JACKPINE_ASSIGN_OR_RETURN(msg.trace_id, r.ReadU64());
    JACKPINE_ASSIGN_OR_RETURN(msg.parent_span_id, r.ReadU64());
  }
  JACKPINE_RETURN_IF_ERROR(r.ExpectEnd());
  return msg;
}

std::string EncodeError(const Status& status) {
  std::string out;
  AppendU8(&out, static_cast<uint8_t>(status.code()));
  AppendStr(&out, status.message());
  // The retry hint is an optional trailing field, emitted only when set:
  // a hintless frame is byte-identical to the pre-overload encoding, whose
  // strict decoder rejects trailing bytes — so an old peer keeps decoding
  // every Error except an actual shed, without a protocol version bump.
  if (status.retry_after_ms() != 0) AppendU32(&out, status.retry_after_ms());
  return out;
}

Result<ErrorMsg> DecodeError(std::string_view payload) {
  Reader r(payload);
  JACKPINE_ASSIGN_OR_RETURN(uint8_t code, r.ReadU8());
  ErrorMsg msg;
  // An unknown code from a newer peer degrades to kInternal instead of
  // failing the decode: the message text still tells the operator what
  // happened.
  msg.code = KnownStatusCode(code) ? static_cast<StatusCode>(code)
                                   : StatusCode::kInternal;
  if (msg.code == StatusCode::kOk) {
    return Status::ParseError("wire: Error frame carrying OK status");
  }
  JACKPINE_ASSIGN_OR_RETURN(msg.message, r.ReadStr());
  // The retry hint is a trailing field: a payload ending after the message
  // is a pre-overload peer's frame and means "no hint".
  if (r.remaining() > 0) {
    JACKPINE_ASSIGN_OR_RETURN(msg.retry_after_ms, r.ReadU32());
  }
  JACKPINE_RETURN_IF_ERROR(r.ExpectEnd());
  return msg;
}

Status ErrorToStatus(const ErrorMsg& msg) {
  Status status(msg.code, msg.message);
  status.set_retry_after_ms(msg.retry_after_ms);
  return status;
}

std::string EncodeResultBatch(const ResultBatchMsg& msg) {
  std::string out;
  uint8_t flags = 0;
  if (msg.last) flags |= ResultBatchMsg::kLast;
  if (msg.has_header) flags |= ResultBatchMsg::kHasHeader;
  AppendU8(&out, flags);
  if (msg.has_header) {
    AppendU32(&out, static_cast<uint32_t>(msg.columns.size()));
    for (const std::string& c : msg.columns) AppendStr(&out, c);
  }
  AppendU32(&out, static_cast<uint32_t>(msg.rows.size()));
  for (const engine::Row& row : msg.rows) {
    AppendU32(&out, static_cast<uint32_t>(row.size()));
    for (const Value& v : row) AppendValue(&out, v);
  }
  // Optional trailing field, header batch only (see the struct comment).
  if (msg.has_header && msg.rows_examined != 0) {
    AppendU64(&out, msg.rows_examined);
  }
  return out;
}

Result<ResultBatchMsg> DecodeResultBatch(std::string_view payload) {
  Reader r(payload);
  JACKPINE_ASSIGN_OR_RETURN(uint8_t flags, r.ReadU8());
  if ((flags & ~(ResultBatchMsg::kLast | ResultBatchMsg::kHasHeader)) != 0) {
    return Status::ParseError(
        StrFormat("wire: unknown ResultBatch flags 0x%02x", flags));
  }
  ResultBatchMsg msg;
  msg.last = (flags & ResultBatchMsg::kLast) != 0;
  msg.has_header = (flags & ResultBatchMsg::kHasHeader) != 0;
  if (msg.has_header) {
    JACKPINE_ASSIGN_OR_RETURN(uint32_t ncols, r.ReadU32());
    // A column name takes at least 4 bytes on the wire.
    if (static_cast<uint64_t>(ncols) * 4 > r.remaining()) {
      return Status::ParseError("wire: column count exceeds input");
    }
    msg.columns.reserve(ncols);
    for (uint32_t i = 0; i < ncols; ++i) {
      JACKPINE_ASSIGN_OR_RETURN(std::string name, r.ReadStr());
      msg.columns.push_back(std::move(name));
    }
  }
  JACKPINE_ASSIGN_OR_RETURN(uint32_t nrows, r.ReadU32());
  // A row takes at least 4 bytes (its value count) on the wire.
  if (static_cast<uint64_t>(nrows) * 4 > r.remaining()) {
    return Status::ParseError("wire: row count exceeds input");
  }
  msg.rows.reserve(nrows);
  for (uint32_t i = 0; i < nrows; ++i) {
    JACKPINE_ASSIGN_OR_RETURN(uint32_t nvals, r.ReadU32());
    // A value takes at least 1 byte (its tag) on the wire.
    if (static_cast<uint64_t>(nvals) > r.remaining()) {
      return Status::ParseError("wire: value count exceeds input");
    }
    engine::Row row;
    row.reserve(nvals);
    for (uint32_t v = 0; v < nvals; ++v) {
      JACKPINE_ASSIGN_OR_RETURN(Value value, ReadValue(&r));
      row.push_back(std::move(value));
    }
    msg.rows.push_back(std::move(row));
  }
  if (msg.has_header && r.remaining() > 0) {
    JACKPINE_ASSIGN_OR_RETURN(msg.rows_examined, r.ReadU64());
  }
  JACKPINE_RETURN_IF_ERROR(r.ExpectEnd());
  return msg;
}

std::string EncodePing(const PingMsg& msg) {
  std::string out;
  AppendU64(&out, msg.seq);
  // Optional trailing clock reading, emitted only when nonzero so a plain
  // ping keeps the minimal encoding (same scheme as Error's retry hint).
  if (msg.sender_time_s != 0.0) AppendF64(&out, msg.sender_time_s);
  return out;
}

Result<PingMsg> DecodePing(std::string_view payload) {
  Reader r(payload);
  PingMsg msg;
  JACKPINE_ASSIGN_OR_RETURN(msg.seq, r.ReadU64());
  if (r.remaining() > 0) {
    JACKPINE_ASSIGN_OR_RETURN(msg.sender_time_s, r.ReadF64());
  }
  JACKPINE_RETURN_IF_ERROR(r.ExpectEnd());
  return msg;
}

std::string EncodeStatsRequest(const StatsRequestMsg& msg) {
  std::string out;
  AppendU8(&out, static_cast<uint8_t>(msg.scope));
  return out;
}

Result<StatsRequestMsg> DecodeStatsRequest(std::string_view payload) {
  Reader r(payload);
  JACKPINE_ASSIGN_OR_RETURN(uint8_t scope, r.ReadU8());
  if (scope > static_cast<uint8_t>(StatsScope::kSlow)) {
    return Status::ParseError(
        StrFormat("wire: unknown stats scope %u", scope));
  }
  JACKPINE_RETURN_IF_ERROR(r.ExpectEnd());
  StatsRequestMsg msg;
  msg.scope = static_cast<StatsScope>(scope);
  return msg;
}

std::string EncodeStatsReply(const StatsReplyMsg& msg) {
  std::string out;
  AppendU32(&out, static_cast<uint32_t>(msg.entries.size()));
  for (const auto& [name, value] : msg.entries) {
    AppendStr(&out, name);
    AppendF64(&out, value);
  }
  return out;
}

Result<StatsReplyMsg> DecodeStatsReply(std::string_view payload) {
  Reader r(payload);
  JACKPINE_ASSIGN_OR_RETURN(uint32_t count, r.ReadU32());
  // An entry takes at least 12 bytes (name length + f64) on the wire.
  if (static_cast<uint64_t>(count) * 12 > r.remaining()) {
    return Status::ParseError("wire: stats entry count exceeds input");
  }
  StatsReplyMsg msg;
  msg.entries.reserve(count);
  for (uint32_t i = 0; i < count; ++i) {
    JACKPINE_ASSIGN_OR_RETURN(std::string name, r.ReadStr());
    JACKPINE_ASSIGN_OR_RETURN(double value, r.ReadF64());
    msg.entries.emplace_back(std::move(name), value);
  }
  JACKPINE_RETURN_IF_ERROR(r.ExpectEnd());
  return msg;
}

std::string EncodeStatsJson(const StatsJsonMsg& msg) {
  std::string out;
  AppendStr(&out, msg.json);
  return out;
}

Result<StatsJsonMsg> DecodeStatsJson(std::string_view payload) {
  Reader r(payload);
  StatsJsonMsg msg;
  JACKPINE_ASSIGN_OR_RETURN(msg.json, r.ReadStr());
  JACKPINE_RETURN_IF_ERROR(r.ExpectEnd());
  return msg;
}

std::string EncodeSpanList(const SpanListMsg& msg) {
  std::string out;
  AppendU32(&out, static_cast<uint32_t>(msg.spans.size()));
  for (const obs::SpanRecord& s : msg.spans) {
    AppendU64(&out, s.trace_id);
    AppendU64(&out, s.span_id);
    AppendU64(&out, s.parent_id);
    AppendU32(&out, s.thread);
    AppendF64(&out, s.start_s);
    AppendF64(&out, s.end_s);
    AppendStr(&out, s.name);
    AppendU32(&out, static_cast<uint32_t>(s.annotations.size()));
    for (const auto& [key, value] : s.annotations) {
      AppendStr(&out, key);
      AppendStr(&out, value);
    }
  }
  return out;
}

Result<SpanListMsg> DecodeSpanList(std::string_view payload) {
  Reader r(payload);
  JACKPINE_ASSIGN_OR_RETURN(uint32_t count, r.ReadU32());
  // A span takes at least 52 bytes (three u64 ids, thread, two f64 times,
  // two u32 lengths) on the wire.
  if (static_cast<uint64_t>(count) * 52 > r.remaining()) {
    return Status::ParseError("wire: span count exceeds input");
  }
  SpanListMsg msg;
  msg.spans.reserve(count);
  for (uint32_t i = 0; i < count; ++i) {
    obs::SpanRecord s;
    JACKPINE_ASSIGN_OR_RETURN(s.trace_id, r.ReadU64());
    JACKPINE_ASSIGN_OR_RETURN(s.span_id, r.ReadU64());
    JACKPINE_ASSIGN_OR_RETURN(s.parent_id, r.ReadU64());
    JACKPINE_ASSIGN_OR_RETURN(s.thread, r.ReadU32());
    JACKPINE_ASSIGN_OR_RETURN(s.start_s, r.ReadF64());
    JACKPINE_ASSIGN_OR_RETURN(s.end_s, r.ReadF64());
    JACKPINE_ASSIGN_OR_RETURN(s.name, r.ReadStr());
    JACKPINE_ASSIGN_OR_RETURN(uint32_t nann, r.ReadU32());
    // An annotation takes at least 8 bytes (two string lengths); the
    // recorder also never emits more than kMaxSpanAnnotations per span.
    if (nann > obs::kMaxSpanAnnotations ||
        static_cast<uint64_t>(nann) * 8 > r.remaining()) {
      return Status::ParseError("wire: span annotation count exceeds limit");
    }
    s.annotations.reserve(nann);
    for (uint32_t a = 0; a < nann; ++a) {
      JACKPINE_ASSIGN_OR_RETURN(std::string key, r.ReadStr());
      JACKPINE_ASSIGN_OR_RETURN(std::string value, r.ReadStr());
      s.annotations.emplace_back(std::move(key), std::move(value));
    }
    msg.spans.push_back(std::move(s));
  }
  JACKPINE_RETURN_IF_ERROR(r.ExpectEnd());
  return msg;
}

std::vector<std::string> EncodeResultFrames(const engine::QueryResult& result,
                                            size_t batch_rows) {
  if (batch_rows == 0) batch_rows = kDefaultBatchRows;
  std::vector<std::string> frames;
  size_t next_row = 0;
  bool first = true;
  do {
    ResultBatchMsg batch;
    batch.has_header = first;
    if (first) {
      batch.columns = result.columns;
      batch.rows_examined = result.rows_examined;
    }
    // Rows per batch: capped by count, and flushed early once the encoded
    // payload would pass the byte target so one batch of huge geometries
    // cannot balloon toward the frame limit.
    std::string payload_probe;
    while (next_row < result.rows.size() && batch.rows.size() < batch_rows) {
      batch.rows.push_back(result.rows[next_row++]);
      if (batch.rows.size() % 16 == 0) {
        payload_probe = EncodeResultBatch(batch);
        if (payload_probe.size() >= kBatchByteTarget) break;
      }
    }
    batch.last = next_row >= result.rows.size();
    frames.push_back(EncodeFrame(FrameType::kResultBatch,
                                 EncodeResultBatch(batch)));
    first = false;
  } while (next_row < result.rows.size());
  return frames;
}

Status ResultAssembler::Add(ResultBatchMsg batch) {
  if (done_) {
    return Status::ParseError("wire: ResultBatch after the last batch");
  }
  if (!saw_header_) {
    if (!batch.has_header) {
      return Status::ParseError("wire: first ResultBatch carries no header");
    }
    result_.columns = std::move(batch.columns);
    result_.rows_examined = batch.rows_examined;
    saw_header_ = true;
  }
  for (engine::Row& row : batch.rows) {
    result_.rows.push_back(std::move(row));
  }
  done_ = batch.last;
  return Status::Ok();
}

}  // namespace jackpine::net
