#include "net/server.h"

#include <chrono>
#include <thread>
#include <utility>

#include <algorithm>

#include "common/string_util.h"
#include "engine/sql_normalize.h"
#include "net/wire.h"
#include "obs/json.h"
#include "obs/metrics.h"
#include "obs/span.h"
#include "obs/trace.h"

namespace jackpine::net {

namespace {

constexpr size_t kRecvChunk = 64 * 1024;

// Send timeout for shed notifications: an overloaded server must not let a
// dead peer pin the thread that is trying to turn it away.
constexpr double kShedSendTimeoutS = 1.0;

}  // namespace

Server::Server(ServerOptions options, client::Connection connection,
               Listener listener)
    : options_(std::move(options)),
      connection_(std::make_unique<client::Connection>(std::move(connection))),
      listener_(std::move(listener)),
      started_at_(std::chrono::steady_clock::now()) {
  if (options_.chaos.error_rate > 0.0 || options_.chaos.latency_ms > 0.0) {
    chaos_state_ = std::make_unique<client::ChaosState>(options_.chaos);
  }
  query_latency_ = obs::GlobalRegistry().GetHistogram(
      "server.query_latency_s", {},
      "Server-side execution latency per query (seconds).");
  obs::StatementStats::Options stmt_options;
  stmt_options.capacity = options_.statements_capacity;
  stmt_options.registry = &obs::GlobalRegistry();
  statement_stats_ = std::make_unique<obs::StatementStats>(stmt_options);
  obs::FlightRecorder::Options flight_options;
  flight_options.capacity = options_.flight_capacity;
  flight_options.slow_threshold_s = options_.slow_ms / 1e3;
  flight_options.registry = &obs::GlobalRegistry();
  flight_recorder_ = std::make_unique<obs::FlightRecorder>(flight_options);
  if (!options_.cache_off && options_.cache_mb > 0 &&
      connection_->local_database() != nullptr) {
    cache::QueryCacheConfig cache_config;
    cache_config.budget_bytes = options_.cache_mb * (1ull << 20);
    query_cache_ = std::make_unique<cache::QueryCache>(cache_config);
  }
}

Result<std::unique_ptr<Server>> Server::Create(const ServerOptions& options) {
  // Touch the global span recorder so obs.spans_dropped is registered from
  // the start: `pinedb stats` shows the drop counter at zero instead of
  // omitting it until the first overflowing session (no silent caps).
  (void)obs::GlobalSpanRecorder();
  JACKPINE_ASSIGN_OR_RETURN(client::SutConfig sut,
                            client::SutByName(options.sut));
  client::Connection connection = client::Connection::Open(sut);
  JACKPINE_ASSIGN_OR_RETURN(Listener listener,
                            Listener::Listen(options.host, options.port));
  // make_unique needs a public constructor; the server's is private.
  return std::unique_ptr<Server>(
      new Server(options, std::move(connection), std::move(listener)));
}

void Server::StartServing() {
  if (serving_) return;
  // Chain the cache's table-version observer here, not in Create: the
  // pinedb binary attaches the durability StorageManager between Create and
  // StartServing, and version hooks must wrap whatever observer ends up
  // innermost. Preloads before StartServing leave tables at version 0
  // (even = stable), which is exactly right for read-mostly fixtures.
  if (query_cache_ != nullptr && !cache_attached_) {
    query_cache_->AttachTo(connection_->local_database());
    cache_attached_ = true;
  }
  serving_ = true;
  acceptor_ = std::thread([this] { AcceptLoop(); });
  dispatcher_ = std::thread([this] { DispatchLoop(); });
}

Result<std::unique_ptr<Server>> Server::Start(const ServerOptions& options) {
  JACKPINE_ASSIGN_OR_RETURN(std::unique_ptr<Server> server, Create(options));
  server->StartServing();
  return server;
}

Server::~Server() { Shutdown(); }

ServerCounters Server::counters() const {
  ServerCounters c;
  c.sessions_opened = sessions_opened_.load();
  c.sessions_closed = sessions_closed_.load();
  c.queries = queries_.load();
  c.updates = updates_.load();
  c.rows_returned = rows_returned_.load();
  c.bytes_sent = bytes_sent_.load();
  c.errors = errors_.load();
  c.sessions_queued = sessions_queued_.load();
  c.sessions_shed = sessions_shed_.load();
  c.idle_reaped = idle_reaped_.load();
  c.send_timeouts = send_timeouts_.load();
  c.chaos_injected = chaos_injected_.load();
  c.pings = pings_.load();
  return c;
}

size_t Server::active_sessions() const { return active_.load(); }

std::vector<std::pair<std::string, double>> Server::GlobalStatsEntries()
    const {
  std::vector<std::pair<std::string, double>> out;
  const ServerCounters c = counters();
  const auto put = [&out](const char* name, uint64_t v) {
    out.emplace_back(name, static_cast<double>(v));
  };
  put("server.sessions_opened", c.sessions_opened);
  put("server.sessions_closed", c.sessions_closed);
  put("server.sessions_active", active_.load());
  put("server.queries", c.queries);
  put("server.updates", c.updates);
  put("server.rows_returned", c.rows_returned);
  put("server.bytes_sent", c.bytes_sent);
  put("server.errors", c.errors);
  put("server.sessions_queued", c.sessions_queued);
  put("server.sessions_shed", c.sessions_shed);
  put("server.idle_reaped", c.idle_reaped);
  put("server.send_timeouts", c.send_timeouts);
  put("server.chaos_injected", c.chaos_injected);
  put("server.pings", c.pings);
  out.emplace_back("server.uptime_s",
                   std::chrono::duration<double>(
                       std::chrono::steady_clock::now() - started_at_)
                       .count());
  if (engine::Database* db = connection_->local_database()) {
    const engine::ExecStats& s = db->stats();
    put("engine.rows_scanned", s.rows_scanned.load());
    put("engine.index_probes", s.index_probes.load());
    put("engine.index_candidates", s.index_candidates.load());
    put("engine.refine_checks", s.refine_checks.load());
  }
  for (auto& entry : obs::GlobalRegistry().Snapshot()) {
    out.push_back(std::move(entry));
  }
  std::sort(out.begin(), out.end());
  return out;
}

std::vector<std::unique_ptr<Server::Session>> Server::CollectFinishedLocked() {
  std::vector<std::unique_ptr<Session>> finished;
  for (auto it = sessions_.begin(); it != sessions_.end();) {
    if ((*it)->done.load()) {
      finished.push_back(std::move(*it));
      it = sessions_.erase(it);
    } else {
      ++it;
    }
  }
  return finished;
}

void Server::ReapFinishedSessions() {
  std::vector<std::unique_ptr<Session>> finished;
  {
    std::lock_guard<std::mutex> lock(mu_);
    finished = CollectFinishedLocked();
  }
  for (auto& s : finished) {
    if (s->thread.joinable()) s->thread.join();
  }
}

void Server::AcceptLoop() {
  while (!stopping_.load()) {
    Result<Socket> accepted = listener_.Accept();
    if (!accepted.ok()) {
      if (stopping_.load()) return;
      // Transient accept failure (e.g. EMFILE): keep serving.
      continue;
    }
    ReapFinishedSessions();
    Socket socket = std::move(accepted).value();
    const auto accepted_at = std::chrono::steady_clock::now();
    bool enqueued = false;
    bool shed = false;
    {
      std::lock_guard<std::mutex> lock(mu_);
      if (stopping_.load()) return;
      if (pending_.empty() && active_.load() < options_.max_sessions) {
        // Fast path; pending_ must be empty so queued connections keep
        // their FIFO position.
        SpawnSessionLocked(std::move(socket), accepted_at, /*queued=*/false);
      } else if (pending_.size() < options_.max_wait_queue) {
        // Admission queue: hold the connection until a slot frees instead
        // of bouncing it, so short bursts ride out with no shed at all.
        sessions_queued_.fetch_add(1);
        pending_.push_back(
            Pending{std::move(socket), std::chrono::steady_clock::now()});
        enqueued = true;
      } else {
        shed = true;
      }
    }
    if (enqueued) cv_.notify_all();
    if (shed) Shed(std::move(socket));
  }
}

void Server::DispatchLoop() {
  std::unique_lock<std::mutex> lock(mu_);
  while (!stopping_.load()) {
    // Reclaim sessions that ended on their own (idle reap, send timeout,
    // client close): the acceptor only reaps on the next incoming
    // connection, which may never come, and finished Session objects and
    // their joined thread handles must not accumulate until then.
    if (std::vector<std::unique_ptr<Session>> finished =
            CollectFinishedLocked();
        !finished.empty()) {
      lock.unlock();
      for (auto& s : finished) {
        if (s->thread.joinable()) s->thread.join();
      }
      finished.clear();
      lock.lock();
      continue;  // re-evaluate queue and stop state after dropping the lock
    }
    // Shed queue heads that outwaited their budget (FIFO: nobody behind
    // the head has waited longer).
    while (!pending_.empty() && options_.queue_timeout_s > 0.0) {
      const double waited =
          std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                        pending_.front().enqueued)
              .count();
      if (waited < options_.queue_timeout_s) break;
      Socket victim = std::move(pending_.front().socket);
      pending_.pop_front();
      lock.unlock();
      Shed(std::move(victim));
      lock.lock();
      if (stopping_.load()) return;
    }
    // Promote while there is room.
    while (!pending_.empty() && active_.load() < options_.max_sessions) {
      Socket socket = std::move(pending_.front().socket);
      const auto enqueued_at = pending_.front().enqueued;
      pending_.pop_front();
      SpawnSessionLocked(std::move(socket), enqueued_at, /*queued=*/true);
    }
    if (stopping_.load()) return;
    if (pending_.empty() || options_.queue_timeout_s <= 0.0) {
      // Nothing to time out: sleep until a connection is queued or a
      // session ends.
      cv_.wait(lock);
    } else {
      const auto deadline =
          pending_.front().enqueued +
          std::chrono::duration_cast<std::chrono::steady_clock::duration>(
              std::chrono::duration<double>(options_.queue_timeout_s));
      cv_.wait_until(lock, deadline);
    }
  }
}

void Server::Shed(Socket socket) {
  sessions_shed_.fetch_add(1);
  Status status = Status::ResourceExhausted(StrFormat(
      "server overloaded: at its %zu-session limit and the wait queue "
      "cannot hold the connection",
      options_.max_sessions));
  status.set_retry_after_ms(options_.retry_after_ms);
  const std::string frame =
      EncodeFrame(FrameType::kError, EncodeError(status));
  (void)socket.SetSendTimeout(kShedSendTimeoutS);
  if (socket.SendAll(frame).ok()) bytes_sent_.fetch_add(frame.size());
  // The socket closes on scope exit.
}

void Server::SpawnSessionLocked(
    Socket socket, std::chrono::steady_clock::time_point accepted_at,
    bool queued) {
  auto session = std::make_unique<Session>();
  session->socket = std::move(socket);
  session->accepted_at = accepted_at;
  session->dispatched_at = std::chrono::steady_clock::now();
  session->queued = queued;
  Session* raw = session.get();
  sessions_opened_.fetch_add(1);
  active_.fetch_add(1);
  session->thread = std::thread([this, raw] { ServeSession(raw); });
  sessions_.push_back(std::move(session));
}

void Server::ServeSession(Session* session) {
  Socket& sock = session->socket;
  FrameDecoder decoder;
  client::Statement stmt = connection_->CreateStatement();
  // Per-session trace, reset before every query: a Stats(kSession) request
  // reads the most recent query's stage/pipeline trace, which is what the
  // remote driver fetches to mirror a local SetTrace.
  obs::QueryTrace session_trace;
  // Per-session span sink, enabled only when the client's Hello negotiated
  // tracing; drained by a Stats(kSpans) request. Bounded: past capacity the
  // recorder drops spans and charges obs.spans_dropped rather than growing.
  obs::SpanRecorder spans(4096);
  // The queue-wait span is attributed to the first traced query: the wait
  // happened once, before the session existed, so it parents there.
  bool queue_wait_reported = false;
  // Same rule for the flight recorder's queue_wait_s field: charged to the
  // session's first recorded query only.
  bool queue_wait_charged = false;
  char buf[kRecvChunk];

  if (options_.idle_timeout_s > 0.0) {
    (void)sock.SetRecvTimeout(options_.idle_timeout_s);
  }
  if (options_.send_timeout_s > 0.0) {
    (void)sock.SetSendTimeout(options_.send_timeout_s);
  }

  // Charges the send-timeout counter when a blocked send expired; the
  // session ends either way, freeing the thread a non-draining client was
  // pinning.
  auto note_send_failure = [&](const Status& status) {
    if (status.code() == StatusCode::kDeadlineExceeded) {
      send_timeouts_.fetch_add(1);
    }
  };

  // Sends one frame, charging the byte counter; false on transport failure.
  auto send_frame = [&](FrameType type, const std::string& payload) {
    const std::string frame = EncodeFrame(type, payload);
    const Status sent = sock.SendAll(frame);
    if (!sent.ok()) {
      note_send_failure(sent);
      return false;
    }
    bytes_sent_.fetch_add(frame.size());
    return true;
  };
  auto send_error = [&](const Status& status) {
    errors_.fetch_add(1);
    return send_frame(FrameType::kError, EncodeError(status));
  };

  // Reads the next complete frame; nullopt ends the session (EOF, transport
  // failure, or a framing error the peer cannot recover from).
  auto next_frame = [&]() -> std::optional<Frame> {
    for (;;) {
      Result<std::optional<Frame>> frame = decoder.Next();
      if (!frame.ok()) {
        (void)send_error(frame.status());
        return std::nullopt;
      }
      if (frame->has_value()) return std::move(**frame);
      Result<size_t> n = sock.Recv(buf, sizeof(buf));
      if (!n.ok()) {
        if (n.status().code() == StatusCode::kDeadlineExceeded) {
          // Idle reap: close silently, no Error frame. The client's next
          // query sees EOF, maps it to kUnavailable, and reconnects in a
          // single step — an "idle" error frame would cost a round trip to
          // say the same thing.
          idle_reaped_.fetch_add(1);
        }
        return std::nullopt;
      }
      if (*n == 0) return std::nullopt;
      decoder.Feed(std::string_view(buf, *n));
    }
  };

  // Latched once the session asks for Stats(kSession): from then on the
  // session counts as trace-interested and bypasses the result cache.
  bool session_stats_fetched = false;

  // Handshake: the session speaks nothing before a valid Hello.
  bool handshake_ok = false;
  if (std::optional<Frame> frame = next_frame()) {
    if (frame->type != FrameType::kHello) {
      (void)send_error(Status::InvalidArgument(
          "protocol: expected a Hello frame before anything else"));
    } else if (Result<HelloMsg> hello = DecodeHello(frame->payload);
               !hello.ok()) {
      (void)send_error(hello.status());
    } else if (hello->protocol_version != kProtocolVersion) {
      (void)send_error(Status::InvalidArgument(StrFormat(
          "protocol: version %u not supported (server speaks %u)",
          hello->protocol_version, kProtocolVersion)));
    } else if (!hello->sut.empty() &&
               !EqualsIgnoreCase(hello->sut, options_.sut)) {
      (void)send_error(Status::InvalidArgument(StrFormat(
          "SUT: this server hosts '%s', not '%s'", options_.sut.c_str(),
          hello->sut.c_str())));
    } else {
      HelloMsg reply;
      reply.sut = options_.sut;
      reply.peer_info = "pinedb/1";
      if ((hello->trace_flags & HelloMsg::kWantTrace) != 0) {
        // Capability ack plus one clock sample: the client combines this
        // reading with its own send/receive times to estimate the per-
        // connection clock offset (NTP-style midpoint; see obs/span.h).
        reply.trace_flags = HelloMsg::kHasServerTime;
        reply.server_time_s = obs::SpanNowS();
        spans.set_enabled(true);
      }
      handshake_ok = send_frame(FrameType::kHello, EncodeHello(reply));
    }
  }

  while (handshake_ok && !stopping_.load()) {
    std::optional<Frame> frame = next_frame();
    if (!frame.has_value()) break;
    if (frame->type == FrameType::kClose) break;

    if (frame->type == FrameType::kStats) {
      Result<StatsRequestMsg> req = DecodeStatsRequest(frame->payload);
      if (!req.ok()) {
        (void)send_error(req.status());
        break;  // framing is suspect; isolate by ending this session only
      }
      if (req->scope == StatsScope::kSpans) {
        // Ship-and-drain: the reply empties the session's span buffer, so
        // repeated scrapes never resend a span.
        SpanListMsg span_reply;
        span_reply.spans = spans.Drain();
        if (!send_frame(FrameType::kStats, EncodeSpanList(span_reply))) break;
        continue;
      }
      if (req->scope == StatsScope::kStatements ||
          req->scope == StatsScope::kSlow) {
        // Query-intelligence scrapes ship as JSON documents, not flat
        // entries: rows are keyed by fingerprint strings and the flight
        // recorder carries nested wait breakdowns, neither of which fits
        // the (name, double) shape of the other scopes.
        StatsJsonMsg json_reply;
        json_reply.json = req->scope == StatsScope::kStatements
                              ? statement_stats_->ToJson(0).Dump()
                              : flight_recorder_->ToJson().Dump();
        if (!send_frame(FrameType::kStats, EncodeStatsJson(json_reply))) {
          break;
        }
        continue;
      }
      StatsReplyMsg reply;
      if (req->scope == StatsScope::kSession) {
        // A session fetching per-query engine counters is a tracing client
        // (the remote driver with SetTrace does this after every query):
        // bypass the result cache from here on so those counters keep
        // reflecting real executions, never replayed ones.
        session_stats_fetched = true;
        reply.entries = session_trace.ToEntries();
      } else {
        reply.entries = GlobalStatsEntries();
      }
      if (!send_frame(FrameType::kStats, EncodeStatsReply(reply))) break;
      continue;
    }

    if (frame->type == FrameType::kPing) {
      // Health-probe echo: same seq back, our clock in the trailing field.
      // Cheap by design — no engine work, no session state — so probe RTT
      // approximates queueing + wire latency, not query cost.
      Result<PingMsg> ping = DecodePing(frame->payload);
      if (!ping.ok()) {
        (void)send_error(ping.status());
        break;  // framing is suspect; isolate by ending this session only
      }
      pings_.fetch_add(1);
      PingMsg pong;
      pong.seq = ping->seq;
      pong.sender_time_s = obs::SpanNowS();
      if (!send_frame(FrameType::kPing, EncodePing(pong))) break;
      continue;
    }

    if (frame->type != FrameType::kQuery &&
        frame->type != FrameType::kUpdate) {
      if (!send_error(Status::InvalidArgument(StrFormat(
              "protocol: unexpected frame type %u mid-session",
              static_cast<unsigned>(frame->type))))) {
        break;
      }
      continue;
    }

    const bool session_traced = spans.enabled();
    const double decode_start_s = session_traced ? obs::SpanNowS() : 0.0;
    Result<QueryMsg> msg = DecodeQuery(frame->payload);
    const double decode_end_s = session_traced ? obs::SpanNowS() : 0.0;
    if (!msg.ok()) {
      (void)send_error(msg.status());
      break;  // framing is suspect; isolate by ending this session only
    }

    // Deadline propagation: rebuild the client's limits so ExecContext
    // enforces them server-side, next to the data. Every query also records
    // into the session trace (fresh per query) so a follow-up
    // Stats(kSession) round trip can hand it to the client.
    session_trace.Reset();
    ExecLimits limits;
    limits.deadline_s = msg->deadline_s;
    limits.max_rows = msg->max_rows;
    limits.max_result_bytes = msg->max_result_bytes;
    limits.trace = &session_trace;
    stmt.SetExecLimits(limits);

    const bool is_query = frame->type == FrameType::kQuery;
    (is_query ? queries_ : updates_).fetch_add(1);

    // Root span of this query's server-side work, parented under the
    // client's rpc span via the propagated trace context. A scope guard so
    // every exit from this iteration — chaos shed, engine error, transport
    // failure — still closes and records it.
    const bool traced = session_traced && msg->trace_id != 0;
    struct RootSpanGuard {
      obs::SpanRecorder* rec = nullptr;
      obs::SpanRecord span;
      ~RootSpanGuard() {
        if (rec == nullptr) return;
        span.end_s = obs::SpanNowS();
        rec->Record(std::move(span));
      }
    } root;
    if (traced) {
      root.span.trace_id = msg->trace_id;
      root.span.span_id = spans.NewSpanId();
      root.span.parent_id = msg->parent_span_id;
      root.span.thread = obs::CurrentThreadLane();
      root.span.start_s = decode_start_s;
      root.span.name = is_query ? "server.query" : "server.update";
      root.rec = &spans;

      obs::SpanRecord decode;
      decode.trace_id = msg->trace_id;
      decode.span_id = spans.NewSpanId();
      decode.parent_id = root.span.span_id;
      decode.thread = root.span.thread;
      decode.start_s = decode_start_s;
      decode.end_s = decode_end_s;
      decode.name = "server.decode";
      spans.Record(std::move(decode));

      if (!queue_wait_reported) {
        queue_wait_reported = true;
        obs::SpanRecord wait;
        wait.trace_id = msg->trace_id;
        wait.span_id = spans.NewSpanId();
        wait.parent_id = root.span.span_id;
        wait.thread = root.span.thread;
        wait.start_s = obs::ToSpanSeconds(session->accepted_at);
        wait.end_s = obs::ToSpanSeconds(session->dispatched_at);
        wait.name = "server.queue_wait";
        wait.annotations.emplace_back("queued",
                                      session->queued ? "1" : "0");
        spans.Record(std::move(wait));
      }
    }

    // Query-intelligence state (DESIGN.md "Observability"). The cache
    // declarations are hoisted above the chaos seam so `record_query` can
    // reuse the cache's normalized text as the fingerprint whenever the
    // cache already computed it — one normalizer, one identity.
    std::shared_ptr<const cache::ResultCache::Entry> cache_entry;
    std::optional<cache::QueryCache::Prepared> cache_prepared;
    bool cache_leader = false;
    bool cache_hit = false;
    bool cache_coalesced = false;
    const auto query_started = std::chrono::steady_clock::now();
    double chaos_delay_s = 0.0;
    double cache_wait_s = 0.0;
    double exec_seconds = 0.0;
    double send_seconds = 0.0;
    uint64_t reply_bytes = 0;

    // Lands this query in the fingerprint statistics and — when it erred or
    // outran slow_ms — the flight recorder. Called exactly once on every
    // exit path: chaos shed, engine error, success, even when the reply
    // send fails (the query still happened). latency here is the full
    // server-side residence time from decode to recording, which includes
    // injected chaos delay and coalesce waits; the exec-only view stays in
    // server.query_latency_s.
    auto record_query = [&](const Status& status, uint64_t rows) {
      const double total_s =
          std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                        query_started)
              .count();
      std::string fingerprint = cache_prepared.has_value()
                                    ? cache_prepared->query.text
                                    : engine::SqlFingerprint(msg->sql);
      obs::StatementUpdate update;
      update.code = status.code();
      update.latency_s = total_s;
      update.rows_examined = session_trace.rows_examined;
      update.rows_returned = rows;
      update.result_bytes = reply_bytes;
      update.cache_hit = cache_hit;
      update.coalesced = cache_coalesced;
      statement_stats_->Record(fingerprint, update);

      obs::FlightRecord rec;
      rec.ts_s = obs::SpanNowS();
      rec.fingerprint = std::move(fingerprint);
      rec.sql = msg->sql;
      rec.trace_id = traced ? msg->trace_id : 0;
      rec.span_id = traced ? root.span.span_id : 0;
      rec.code = status.code();
      if (!status.ok()) rec.error = status.message();
      rec.is_query = is_query;
      rec.cache_hit = cache_hit;
      rec.coalesced = cache_coalesced;
      rec.total_s = total_s;
      if (!queue_wait_charged) {
        queue_wait_charged = true;
        rec.queue_wait_s = std::chrono::duration<double>(
                               session->dispatched_at - session->accepted_at)
                               .count();
      }
      rec.chaos_delay_s = chaos_delay_s;
      rec.cache_wait_s = cache_wait_s;
      rec.exec_s = exec_seconds;
      rec.send_s = send_seconds;
      rec.rows_returned = rows;
      rec.result_bytes = reply_bytes;
      rec.trace = session_trace;
      flight_recorder_->Note(std::move(rec));
    };

    // Server-side chaos, mirroring the client layer's semantics: queries
    // only (updates are the fixture-load seam and must always land), the
    // injected delay is clamped to the query deadline, and failures go out
    // in-band as Error frames so the transport — and the session — stay
    // healthy. This models a flaky backend, not a flaky network.
    if (is_query && chaos_state_ != nullptr) {
      const client::ChaosState::Fault fault = chaos_state_->NextFault();
      double delay_ms = fault.delay_ms;
      const bool deadline_mid_sleep =
          msg->deadline_s > 0.0 && delay_ms >= msg->deadline_s * 1e3;
      if (deadline_mid_sleep) delay_ms = msg->deadline_s * 1e3;
      if (delay_ms > 0.0) {
        chaos_delay_s = delay_ms / 1e3;
        std::this_thread::sleep_for(
            std::chrono::duration<double, std::milli>(delay_ms));
      }
      if (deadline_mid_sleep) {
        chaos_injected_.fetch_add(1);
        const Status shed = Status::DeadlineExceeded(StrFormat(
            "chaos: injected %.3f ms server delay exceeded the %.3f s "
            "deadline (draw #%llu)",
            fault.delay_ms, msg->deadline_s,
            static_cast<unsigned long long>(fault.sequence)));
        record_query(shed, 0);
        if (!send_error(shed)) break;
        continue;
      }
      if (fault.fail) {
        chaos_injected_.fetch_add(1);
        const Status shed = Status::Unavailable(StrFormat(
            "chaos: injected server-side transient failure (draw #%llu)",
            static_cast<unsigned long long>(fault.sequence)));
        record_query(shed, 0);
        if (!send_error(shed)) break;
        continue;
      }
    }

    // Result cache in front of the engine (DESIGN.md "Result cache &
    // coalescing"). Sessions that negotiated span tracing or fetch
    // Stats(kSession) bypass it — a replayed hit would report the miss
    // execution's per-operator actuals instead of freshly measured ones —
    // and EXPLAIN/EXPLAIN ANALYZE/DDL/DML are uncacheable by Prepare.
    // When `cache_entry` ends up non-null the reply is served from it.
    if (is_query && query_cache_ != nullptr) {
      const bool cache_bypass = session_traced || session_stats_fetched;
      const double lookup_start_s = traced ? obs::SpanNowS() : 0.0;
      const char* outcome = "uncacheable";
      if (cache_bypass) {
        query_cache_->NoteBypass();
        outcome = "bypass";
      } else {
        cache_prepared = query_cache_->Prepare(msg->sql, limits.max_rows,
                                               limits.max_result_bytes);
        if (cache_prepared.has_value()) {
          cache_entry = query_cache_->Lookup(*cache_prepared);
          cache_hit = cache_entry != nullptr;
          outcome = cache_hit ? "hit" : "miss";
        }
      }
      if (traced) {
        obs::SpanRecord lookup;
        lookup.trace_id = msg->trace_id;
        lookup.span_id = spans.NewSpanId();
        lookup.parent_id = root.span.span_id;
        lookup.thread = root.span.thread;
        lookup.start_s = lookup_start_s;
        lookup.end_s = obs::SpanNowS();
        lookup.name = "server.cache_lookup";
        lookup.annotations.emplace_back("outcome", outcome);
        spans.Record(std::move(lookup));
      }
      if (cache_prepared.has_value() && cache_entry == nullptr) {
        // Coalesce the miss: first session in becomes the leader and
        // executes; followers wait out at most their own deadline, then
        // fall back to executing solo (no admission) — a short-deadline
        // follower is never held hostage by a long-running leader.
        cache::RequestCoalescer::Ticket ticket =
            query_cache_->JoinFlight(*cache_prepared);
        cache_leader = ticket.leader;
        if (ticket.leader) {
          // Double-check: another leader may have admitted the key between
          // this session's miss and its Join. Serving that entry (and
          // publishing it to this flight's followers) keeps "one execution
          // per cold key" an invariant rather than a likelihood.
          cache_entry = query_cache_->RecheckAsLeader(*cache_prepared);
          if (cache_entry != nullptr) {
            cache_leader = false;
            cache_hit = true;
          }
        } else {
          const double wait_start_s = traced ? obs::SpanNowS() : 0.0;
          const auto wait_started = std::chrono::steady_clock::now();
          cache_entry = query_cache_->WaitShared(ticket, msg->deadline_s);
          cache_wait_s = std::chrono::duration<double>(
                             std::chrono::steady_clock::now() - wait_started)
                             .count();
          cache_coalesced = cache_entry != nullptr;
          if (traced) {
            obs::SpanRecord wait;
            wait.trace_id = msg->trace_id;
            wait.span_id = spans.NewSpanId();
            wait.parent_id = root.span.span_id;
            wait.thread = root.span.thread;
            wait.start_s = wait_start_s;
            wait.end_s = obs::SpanNowS();
            wait.name = "cache.coalesce_wait";
            wait.annotations.emplace_back(
                "shared", cache_entry != nullptr ? "1" : "0");
            spans.Record(std::move(wait));
          }
        }
      }
    }

    engine::QueryResult result;
    Status exec_status;
    const double exec_start_s = session_traced ? obs::SpanNowS() : 0.0;
    const auto exec_started = std::chrono::steady_clock::now();
    if (is_query) {
      if (cache_entry != nullptr) {
        // Replay the miss execution's engine trace so a later
        // Stats(kSession) fetch reports the counters that produced these
        // rows — deterministic per entry lifetime — instead of zeros.
        session_trace = cache_entry->trace;
      } else {
        Result<client::ResultSet> rs = stmt.ExecuteQuery(msg->sql);
        if (rs.ok()) {
          result = rs->ReleaseRaw();
        } else {
          exec_status = rs.status();
        }
        if (cache_leader && cache_prepared.has_value()) {
          if (exec_status.ok()) {
            cache_entry = query_cache_->FinishFlight(
                *cache_prepared, std::move(result), session_trace);
          } else {
            // Errors are never admitted and never fanned out: a deadline
            // or budget violation is this session's outcome, not the hot
            // query's result. Followers re-execute for themselves.
            query_cache_->AbortFlight(*cache_prepared);
          }
        }
      }
    } else {
      Result<int64_t> affected = stmt.ExecuteUpdate(msg->sql);
      if (affected.ok()) {
        // Same shape the engine gives DDL/DML locally, so the remote
        // driver's rows_affected parsing is uniform.
        result.columns = {"rows_affected"};
        result.rows = {{engine::Value::Int(*affected)}};
      } else {
        exec_status = affected.status();
      }
    }
    exec_seconds = std::chrono::duration<double>(
                       std::chrono::steady_clock::now() - exec_started)
                       .count();
    if (is_query) query_latency_->Observe(exec_seconds);
    if (traced) {
      obs::SpanRecord exec;
      exec.trace_id = msg->trace_id;
      exec.span_id = spans.NewSpanId();
      exec.parent_id = root.span.span_id;
      exec.thread = root.span.thread;
      exec.start_s = exec_start_s;
      exec.end_s = obs::SpanNowS();
      exec.name = "server.exec";
      if (!exec_status.ok()) {
        exec.annotations.emplace_back("error",
                                      StatusCodeName(exec_status.code()));
      }
      // The engine's stage clock (parse/plan/exec) becomes child spans of
      // the execution span, so the merged timeline reaches engine depth.
      obs::RecordStageSpans(&spans, msg->trace_id, exec.span_id, exec_start_s,
                            session_trace);
      spans.Record(std::move(exec));
    }

    if (!exec_status.ok()) {
      // Engine-level failure: answer and keep serving — one bad query must
      // not take the session (let alone the server) down.
      record_query(exec_status, 0);
      if (!send_error(exec_status)) break;
      continue;
    }

    // Hits, coalesced followers and the admitting leader all reply from the
    // shared immutable entry; only solo executions reply from `result`.
    const engine::QueryResult& reply_result =
        cache_entry != nullptr ? cache_entry->result : result;
    rows_returned_.fetch_add(reply_result.rows.size());
    const size_t batch_rows =
        msg->batch_rows > 0 ? msg->batch_rows : options_.batch_rows;
    const double send_start_s = traced ? obs::SpanNowS() : 0.0;
    const auto send_started = std::chrono::steady_clock::now();
    bool sent_ok = true;
    size_t frames_sent = 0;
    for (const std::string& out :
         EncodeResultFrames(reply_result, batch_rows)) {
      // Backpressure: SendAll blocks while the client drains earlier
      // batches, so result memory on both sides stays bounded by the batch
      // size, not the result size.
      const Status sent = sock.SendAll(out);
      if (!sent.ok()) {
        note_send_failure(sent);
        sent_ok = false;
        break;
      }
      bytes_sent_.fetch_add(out.size());
      reply_bytes += out.size();
      ++frames_sent;
    }
    send_seconds = std::chrono::duration<double>(
                       std::chrono::steady_clock::now() - send_started)
                       .count();
    record_query(Status::Ok(), reply_result.rows.size());
    if (traced) {
      // Encode + send of the result stream; with backpressure this is where
      // a slow client shows up in the trace.
      obs::SpanRecord send;
      send.trace_id = msg->trace_id;
      send.span_id = spans.NewSpanId();
      send.parent_id = root.span.span_id;
      send.thread = root.span.thread;
      send.start_s = send_start_s;
      send.end_s = obs::SpanNowS();
      send.name = "server.send";
      send.annotations.emplace_back("frames", StrFormat("%zu", frames_sent));
      send.annotations.emplace_back(
          "rows", StrFormat("%zu", result.rows.size()));
      spans.Record(std::move(send));
    }
    if (!sent_ok) break;
  }

  // Only shut down here: the fd itself is closed by the Session destructor
  // after the thread is joined, so Shutdown()'s concurrent ShutdownBoth on
  // this socket never races a close.
  session->socket.ShutdownBoth();
  sessions_closed_.fetch_add(1);
  active_.fetch_sub(1);
  session->done.store(true);
  // Lock-then-notify so the dispatcher cannot check active_ and block
  // between our decrement and the wakeup (it holds mu_ across that window).
  { std::lock_guard<std::mutex> lock(mu_); }
  cv_.notify_all();
}

void Server::Shutdown() {
  stopping_.store(true);
  listener_.Shutdown();
  if (acceptor_.joinable()) acceptor_.join();
  { std::lock_guard<std::mutex> lock(mu_); }
  cv_.notify_all();
  if (dispatcher_.joinable()) dispatcher_.join();
  // Queued connections never became sessions; close them without an
  // answer. The peer sees EOF -> kUnavailable -> retry, which is the
  // accurate story while the server is going away.
  {
    std::lock_guard<std::mutex> lock(mu_);
    pending_.clear();
  }
  // With the acceptor gone no new session can appear; unblock the live ones
  // and join them all.
  {
    std::lock_guard<std::mutex> lock(mu_);
    for (auto& s : sessions_) s->socket.ShutdownBoth();
  }
  std::vector<std::unique_ptr<Session>> sessions;
  {
    std::lock_guard<std::mutex> lock(mu_);
    sessions.swap(sessions_);
  }
  for (auto& s : sessions) {
    if (s->thread.joinable()) s->thread.join();
  }
  listener_.Close();
}

}  // namespace jackpine::net
