#include "net/server.h"

#include <utility>

#include "common/string_util.h"
#include "net/wire.h"

namespace jackpine::net {

namespace {

constexpr size_t kRecvChunk = 64 * 1024;

}  // namespace

Server::Server(ServerOptions options, client::Connection connection,
               Listener listener)
    : options_(std::move(options)),
      connection_(std::make_unique<client::Connection>(std::move(connection))),
      listener_(std::move(listener)) {}

Result<std::unique_ptr<Server>> Server::Create(const ServerOptions& options) {
  JACKPINE_ASSIGN_OR_RETURN(client::SutConfig sut,
                            client::SutByName(options.sut));
  client::Connection connection = client::Connection::Open(sut);
  JACKPINE_ASSIGN_OR_RETURN(Listener listener,
                            Listener::Listen(options.host, options.port));
  // make_unique needs a public constructor; the server's is private.
  return std::unique_ptr<Server>(
      new Server(options, std::move(connection), std::move(listener)));
}

void Server::StartServing() {
  if (serving_) return;
  serving_ = true;
  acceptor_ = std::thread([this] { AcceptLoop(); });
}

Result<std::unique_ptr<Server>> Server::Start(const ServerOptions& options) {
  JACKPINE_ASSIGN_OR_RETURN(std::unique_ptr<Server> server, Create(options));
  server->StartServing();
  return server;
}

Server::~Server() { Shutdown(); }

ServerCounters Server::counters() const {
  ServerCounters c;
  c.sessions_opened = sessions_opened_.load();
  c.sessions_closed = sessions_closed_.load();
  c.queries = queries_.load();
  c.updates = updates_.load();
  c.rows_returned = rows_returned_.load();
  c.bytes_sent = bytes_sent_.load();
  c.errors = errors_.load();
  return c;
}

size_t Server::active_sessions() const {
  std::lock_guard<std::mutex> lock(mu_);
  size_t active = 0;
  for (const auto& s : sessions_) {
    if (!s->done.load()) ++active;
  }
  return active;
}

void Server::ReapFinishedSessions() {
  std::vector<std::unique_ptr<Session>> finished;
  {
    std::lock_guard<std::mutex> lock(mu_);
    for (auto it = sessions_.begin(); it != sessions_.end();) {
      if ((*it)->done.load()) {
        finished.push_back(std::move(*it));
        it = sessions_.erase(it);
      } else {
        ++it;
      }
    }
  }
  for (auto& s : finished) {
    if (s->thread.joinable()) s->thread.join();
  }
}

void Server::AcceptLoop() {
  while (!stopping_.load()) {
    Result<Socket> accepted = listener_.Accept();
    if (!accepted.ok()) {
      if (stopping_.load()) return;
      // Transient accept failure (e.g. EMFILE): keep serving.
      continue;
    }
    ReapFinishedSessions();
    std::lock_guard<std::mutex> lock(mu_);
    if (stopping_.load()) return;
    if (sessions_.size() >= options_.max_sessions) {
      Socket refused = std::move(accepted).value();
      const std::string frame = EncodeFrame(
          FrameType::kError,
          EncodeError(Status::ResourceExhausted(StrFormat(
              "server at its %zu-session limit", options_.max_sessions))));
      (void)refused.SendAll(frame);
      continue;  // refused socket closes on scope exit
    }
    auto session = std::make_unique<Session>();
    session->socket = std::move(accepted).value();
    Session* raw = session.get();
    sessions_opened_.fetch_add(1);
    session->thread = std::thread([this, raw] { ServeSession(raw); });
    sessions_.push_back(std::move(session));
  }
}

void Server::ServeSession(Session* session) {
  Socket& sock = session->socket;
  FrameDecoder decoder;
  client::Statement stmt = connection_->CreateStatement();
  char buf[kRecvChunk];

  // Sends one frame, charging the byte counter; false on transport failure.
  auto send_frame = [&](FrameType type, const std::string& payload) {
    const std::string frame = EncodeFrame(type, payload);
    if (!sock.SendAll(frame).ok()) return false;
    bytes_sent_.fetch_add(frame.size());
    return true;
  };
  auto send_error = [&](const Status& status) {
    errors_.fetch_add(1);
    return send_frame(FrameType::kError, EncodeError(status));
  };

  // Reads the next complete frame; nullopt ends the session (EOF, transport
  // failure, or a framing error the peer cannot recover from).
  auto next_frame = [&]() -> std::optional<Frame> {
    for (;;) {
      Result<std::optional<Frame>> frame = decoder.Next();
      if (!frame.ok()) {
        (void)send_error(frame.status());
        return std::nullopt;
      }
      if (frame->has_value()) return std::move(**frame);
      Result<size_t> n = sock.Recv(buf, sizeof(buf));
      if (!n.ok() || *n == 0) return std::nullopt;
      decoder.Feed(std::string_view(buf, *n));
    }
  };

  // Handshake: the session speaks nothing before a valid Hello.
  bool handshake_ok = false;
  if (std::optional<Frame> frame = next_frame()) {
    if (frame->type != FrameType::kHello) {
      (void)send_error(Status::InvalidArgument(
          "protocol: expected a Hello frame before anything else"));
    } else if (Result<HelloMsg> hello = DecodeHello(frame->payload);
               !hello.ok()) {
      (void)send_error(hello.status());
    } else if (hello->protocol_version != kProtocolVersion) {
      (void)send_error(Status::InvalidArgument(StrFormat(
          "protocol: version %u not supported (server speaks %u)",
          hello->protocol_version, kProtocolVersion)));
    } else if (!hello->sut.empty() &&
               !EqualsIgnoreCase(hello->sut, options_.sut)) {
      (void)send_error(Status::InvalidArgument(StrFormat(
          "SUT: this server hosts '%s', not '%s'", options_.sut.c_str(),
          hello->sut.c_str())));
    } else {
      HelloMsg reply;
      reply.sut = options_.sut;
      reply.peer_info = "pinedb/1";
      handshake_ok = send_frame(FrameType::kHello, EncodeHello(reply));
    }
  }

  while (handshake_ok && !stopping_.load()) {
    std::optional<Frame> frame = next_frame();
    if (!frame.has_value()) break;
    if (frame->type == FrameType::kClose) break;

    if (frame->type != FrameType::kQuery &&
        frame->type != FrameType::kUpdate) {
      if (!send_error(Status::InvalidArgument(StrFormat(
              "protocol: unexpected frame type %u mid-session",
              static_cast<unsigned>(frame->type))))) {
        break;
      }
      continue;
    }

    Result<QueryMsg> msg = DecodeQuery(frame->payload);
    if (!msg.ok()) {
      (void)send_error(msg.status());
      break;  // framing is suspect; isolate by ending this session only
    }

    // Deadline propagation: rebuild the client's limits so ExecContext
    // enforces them server-side, next to the data.
    ExecLimits limits;
    limits.deadline_s = msg->deadline_s;
    limits.max_rows = msg->max_rows;
    limits.max_result_bytes = msg->max_result_bytes;
    stmt.SetExecLimits(limits);

    const bool is_query = frame->type == FrameType::kQuery;
    (is_query ? queries_ : updates_).fetch_add(1);

    engine::QueryResult result;
    Status exec_status;
    if (is_query) {
      Result<client::ResultSet> rs = stmt.ExecuteQuery(msg->sql);
      if (rs.ok()) {
        result = rs->ReleaseRaw();
      } else {
        exec_status = rs.status();
      }
    } else {
      Result<int64_t> affected = stmt.ExecuteUpdate(msg->sql);
      if (affected.ok()) {
        // Same shape the engine gives DDL/DML locally, so the remote
        // driver's rows_affected parsing is uniform.
        result.columns = {"rows_affected"};
        result.rows = {{engine::Value::Int(*affected)}};
      } else {
        exec_status = affected.status();
      }
    }

    if (!exec_status.ok()) {
      // Engine-level failure: answer and keep serving — one bad query must
      // not take the session (let alone the server) down.
      if (!send_error(exec_status)) break;
      continue;
    }

    rows_returned_.fetch_add(result.rows.size());
    const size_t batch_rows =
        msg->batch_rows > 0 ? msg->batch_rows : options_.batch_rows;
    bool sent_ok = true;
    for (const std::string& out : EncodeResultFrames(result, batch_rows)) {
      // Backpressure: SendAll blocks while the client drains earlier
      // batches, so result memory on both sides stays bounded by the batch
      // size, not the result size.
      if (!sock.SendAll(out).ok()) {
        sent_ok = false;
        break;
      }
      bytes_sent_.fetch_add(out.size());
    }
    if (!sent_ok) break;
  }

  // Only shut down here: the fd itself is closed by the Session destructor
  // after the thread is joined, so Shutdown()'s concurrent ShutdownBoth on
  // this socket never races a close.
  session->socket.ShutdownBoth();
  sessions_closed_.fetch_add(1);
  session->done.store(true);
}

void Server::Shutdown() {
  stopping_.store(true);
  listener_.Shutdown();
  if (acceptor_.joinable()) acceptor_.join();
  // With the acceptor gone no new session can appear; unblock the live ones
  // and join them all.
  {
    std::lock_guard<std::mutex> lock(mu_);
    for (auto& s : sessions_) s->socket.ShutdownBoth();
  }
  std::vector<std::unique_ptr<Session>> sessions;
  {
    std::lock_guard<std::mutex> lock(mu_);
    sessions.swap(sessions_);
  }
  for (auto& s : sessions) {
    if (s->thread.joinable()) s->thread.join();
  }
  listener_.Close();
}

}  // namespace jackpine::net
