#include "net/remote_driver.h"

#include <algorithm>

#include "common/string_util.h"
#include "net/socket.h"
#include "net/wire.h"
#include "obs/span.h"
#include "obs/trace.h"

namespace jackpine::net {

namespace {

constexpr size_t kRecvChunk = 64 * 1024;

// Extra slack on the socket receive timeout beyond the query deadline: the
// deadline is enforced server-side by ExecContext; the socket timeout only
// catches a server that died mid-query. kCheckInterval-grained checking and
// result shipping legitimately run past the deadline by a little.
constexpr double kDeadlineGraceS = 2.0;

std::string EndpointLabel(const client::RemoteEndpoint& endpoint) {
  return StrFormat("%s:%u", endpoint.host.c_str(), unsigned{endpoint.port});
}

// Prefixes `host:port` onto connect/transport failures so a scatter-gather
// caller fanning out over many endpoints can tell which shard failed.
// Idempotent (the label is never added twice) and hint-preserving (a shed's
// retry_after_ms survives the rewrap).
Status NameEndpoint(Status status, const std::string& label) {
  if (status.ok() || status.message().find(label) != std::string::npos) {
    return status;
  }
  Status named(status.code(),
               StrFormat("%s: %s", label.c_str(), status.message().c_str()));
  named.set_retry_after_ms(status.retry_after_ms());
  return named;
}

class RemoteSession : public client::DriverSession {
 public:
  RemoteSession(Socket socket, std::string endpoint_label,
                std::shared_ptr<client::CircuitBreaker> breaker)
      : socket_(std::move(socket)),
        endpoint_label_(std::move(endpoint_label)),
        breaker_(std::move(breaker)) {}

  // Connect + Hello/Hello handshake. When span tracing is on globally the
  // Hello asks the server for tracing; a pre-span server rejects the
  // trailing flags byte as a parse error, so the client falls back once to
  // a legacy Hello and keeps its spans client-side only.
  static Result<std::shared_ptr<client::DriverSession>> Open(
      const client::RemoteEndpoint& endpoint,
      std::shared_ptr<client::CircuitBreaker> breaker) {
    obs::SpanRecorder& recorder = obs::GlobalSpanRecorder();
    obs::Span connect;
    if (recorder.enabled()) {
      connect = recorder.StartSpan("client.connect");
      connect.Annotate("host", endpoint.host);
      connect.Annotate("port", StrFormat("%u", unsigned{endpoint.port}));
    }
    const bool want_trace = recorder.enabled();
    Result<std::shared_ptr<client::DriverSession>> session =
        OpenOnce(endpoint, breaker, want_trace);
    if (!session.ok() && want_trace &&
        session.status().code() == StatusCode::kParseError) {
      connect.Annotate("trace_fallback", "1");
      session = OpenOnce(endpoint, breaker, /*want_trace=*/false);
    }
    if (!session.ok()) {
      return NameEndpoint(session.status(), EndpointLabel(endpoint));
    }
    return session;
  }

  static Result<std::shared_ptr<client::DriverSession>> OpenOnce(
      const client::RemoteEndpoint& endpoint,
      std::shared_ptr<client::CircuitBreaker> breaker, bool want_trace) {
    JACKPINE_ASSIGN_OR_RETURN(Socket socket,
                              Socket::Connect(endpoint.host, endpoint.port));
    auto session = std::make_shared<RemoteSession>(
        std::move(socket), EndpointLabel(endpoint), std::move(breaker));
    HelloMsg hello;
    hello.sut = endpoint.sut;
    hello.peer_info = "jackpine-client/1";
    if (want_trace) hello.trace_flags = HelloMsg::kWantTrace;
    JACKPINE_RETURN_IF_ERROR(session->socket_.SetRecvTimeout(10.0));
    // NTP-style clock sample around the handshake round trip: the server
    // stamps its span clock into the ack, which this client pairs with the
    // send/receive midpoint to estimate the per-connection offset used to
    // shift server spans onto the client timeline (obs::ShiftSpans).
    const double t0 = obs::SpanNowS();
    JACKPINE_ASSIGN_OR_RETURN(
        Frame reply,
        session->RoundTripFrame(FrameType::kHello, EncodeHello(hello)));
    const double t1 = obs::SpanNowS();
    if (reply.type == FrameType::kError) {
      JACKPINE_ASSIGN_OR_RETURN(ErrorMsg err, DecodeError(reply.payload));
      // Re-wrap with context but keep the retry hint: a shed at handshake
      // time carries the server's retry_after_ms.
      Status status(err.code, StrFormat("server rejected the handshake: %s",
                                        err.message.c_str()));
      status.set_retry_after_ms(err.retry_after_ms);
      return status;
    }
    if (reply.type != FrameType::kHello) {
      return Status::Unavailable("protocol: handshake reply is not a Hello");
    }
    JACKPINE_ASSIGN_OR_RETURN(HelloMsg ack, DecodeHello(reply.payload));
    if (ack.protocol_version != kProtocolVersion) {
      return Status::InvalidArgument(StrFormat(
          "protocol: server speaks version %u, client speaks %u",
          ack.protocol_version, kProtocolVersion));
    }
    if (want_trace && (ack.trace_flags & HelloMsg::kHasServerTime) != 0) {
      session->peer_traces_ = true;
      session->clock_offset_s_ = ack.server_time_s - (t0 + t1) / 2.0;
    }
    return std::shared_ptr<client::DriverSession>(std::move(session));
  }

  ~RemoteSession() override {
    if (healthy_) {
      // Best-effort goodbye so the server logs a graceful close.
      (void)socket_.SendAll(EncodeFrame(FrameType::kClose, ""));
    }
    socket_.Close();
  }

  Result<engine::QueryResult> ExecuteQuery(std::string_view sql,
                                           const ExecLimits& limits) override {
    return Execute(FrameType::kQuery, sql, limits);
  }

  Result<engine::QueryResult> ExecuteUpdate(std::string_view sql,
                                            const ExecLimits& limits) override {
    return Execute(FrameType::kUpdate, sql, limits);
  }

  bool healthy() const override { return healthy_; }

  // Hedge-loser cancellation: shuts the socket down so a blocked recv in
  // Execute fails immediately. Deliberately lock-free — Execute holds mu_
  // for the whole round trip, so taking it here would defeat the point.
  // The resulting transport failure poisons this session (the caller
  // re-dials) but is NOT charged to the endpoint's breaker: the endpoint
  // did nothing wrong, we hung up on it.
  void Abort() override {
    aborted_.store(true, std::memory_order_release);
    socket_.ShutdownBoth();
  }

 private:
  Result<engine::QueryResult> Execute(FrameType type, std::string_view sql,
                                      const ExecLimits& limits) {
    std::lock_guard<std::mutex> lock(mu_);
    if (!healthy_) {
      return Status::Unavailable("remote session is broken; reconnect");
    }
    QueryMsg msg;
    msg.sql = std::string(sql);
    msg.deadline_s = limits.deadline_s;
    msg.max_rows = limits.max_rows;
    msg.max_result_bytes = limits.max_result_bytes;
    // Span tracing: the rpc span covers the whole round trip; the trace
    // context rides in the Query frame only when this session's Hello
    // negotiated tracing, so a pre-span server never sees the trailing
    // fields. Updates stay untraced — they are the fixture-load seam.
    const bool traced = limits.spans != nullptr && limits.spans->enabled() &&
                        limits.trace_id != 0 && type == FrameType::kQuery;
    obs::Span rpc;
    if (traced) {
      rpc = limits.spans->StartSpan("client.rpc", limits.trace_id,
                                    limits.parent_span_id);
      if (peer_traces_) {
        msg.trace_id = limits.trace_id;
        msg.parent_span_id = rpc.span_id();
      }
    }
    Result<engine::QueryResult> result =
        RoundTripQuery(type, msg, traced ? limits.spans : nullptr,
                       limits.trace_id, rpc.span_id());
    rpc.End();
    // Trace propagation: the server recorded this query's trace session-side
    // (pipeline counters and stage times next to the data); one follow-up
    // Stats round trip folds it into the caller's sink, so SetTrace behaves
    // identically against a local engine and a remote one. Only the times
    // differ (they are server wall-clock, excluding the network).
    if (result.ok() && limits.trace != nullptr && !transport_failed_ &&
        type == FrameType::kQuery) {
      Result<Frame> reply = RoundTripFrame(
          FrameType::kStats,
          EncodeStatsRequest(StatsRequestMsg{StatsScope::kSession}));
      if (reply.ok() && reply->type == FrameType::kStats) {
        if (Result<StatsReplyMsg> stats = DecodeStatsReply(reply->payload);
            stats.ok()) {
          *limits.trace += obs::QueryTrace::FromEntries(stats->entries);
        }
      }
      // A failed stats fetch costs the trace, not the query: the result
      // stands, and transport_failed_ (set by RoundTripFrame on a dead
      // stream) still routes through the breaker below.
    }
    // Span shipping: drain the server session's spans and shift them onto
    // the client timeline with the handshake-estimated clock offset. Same
    // failure policy as the trace fetch — a lost fetch costs spans only.
    if (result.ok() && traced && peer_traces_ && !transport_failed_) {
      Result<Frame> reply = RoundTripFrame(
          FrameType::kStats,
          EncodeStatsRequest(StatsRequestMsg{StatsScope::kSpans}));
      if (reply.ok() && reply->type == FrameType::kStats) {
        if (Result<SpanListMsg> list = DecodeSpanList(reply->payload);
            list.ok()) {
          obs::ShiftSpans(&list->spans, clock_offset_s_, /*process=*/1);
          for (obs::SpanRecord& span : list->spans) {
            limits.spans->Record(std::move(span));
          }
        }
      }
    }
    // Transport-level failures poison the session: the stream position is
    // unknown, so the only safe recovery is a fresh connection. Server-side
    // engine errors (delivered as Error frames) leave it healthy — and prove
    // the transport is alive, which feeds the breaker's success side.
    if (transport_failed_) {
      healthy_ = false;
      // Transport errors come from the endpoint-blind socket layer; name
      // the peer so a multi-shard caller can attribute the failure.
      if (!result.ok()) {
        result = NameEndpoint(result.status(), endpoint_label_);
      }
      // An aborted call failed because *we* shut the socket (hedge loser);
      // charging the endpoint's breaker would poison a healthy replica.
      if (breaker_ && !aborted_.load(std::memory_order_acquire)) {
        breaker_->OnFailure(result.status());
      }
    } else if (breaker_) {
      breaker_->OnSuccess();
    }
    return result;
  }

  // `recorder` (nullable) receives client.send / client.recv child spans
  // under `parent_span_id` when the caller is tracing this round trip.
  Result<engine::QueryResult> RoundTripQuery(FrameType type,
                                             const QueryMsg& msg,
                                             obs::SpanRecorder* recorder,
                                             uint64_t trace_id,
                                             uint64_t parent_span_id) {
    const double timeout_s =
        msg.deadline_s > 0.0 ? msg.deadline_s + kDeadlineGraceS : 0.0;
    JACKPINE_RETURN_IF_ERROR(MarkTransport(socket_.SetRecvTimeout(timeout_s)));
    obs::Span send;
    if (recorder != nullptr) {
      send = recorder->StartSpan("client.send", trace_id, parent_span_id);
    }
    JACKPINE_RETURN_IF_ERROR(MarkTransport(
        socket_.SendAll(EncodeFrame(type, EncodeQuery(msg)))));
    send.End();
    obs::Span recv;
    if (recorder != nullptr) {
      recv = recorder->StartSpan("client.recv", trace_id, parent_span_id);
    }
    ResultAssembler assembler;
    while (!assembler.done()) {
      JACKPINE_ASSIGN_OR_RETURN(Frame frame, NextFrame());
      if (frame.type == FrameType::kError) {
        JACKPINE_ASSIGN_OR_RETURN(ErrorMsg err, DecodeError(frame.payload));
        return ErrorToStatus(err);
      }
      if (frame.type != FrameType::kResultBatch) {
        transport_failed_ = true;
        return Status::Unavailable(StrFormat(
            "protocol: unexpected frame type %u in a result stream",
            static_cast<unsigned>(frame.type)));
      }
      JACKPINE_ASSIGN_OR_RETURN(ResultBatchMsg batch,
                                DecodeResultBatch(frame.payload));
      JACKPINE_RETURN_IF_ERROR(assembler.Add(std::move(batch)));
    }
    return assembler.Take();
  }

  Result<Frame> RoundTripFrame(FrameType type, const std::string& payload) {
    JACKPINE_RETURN_IF_ERROR(
        MarkTransport(socket_.SendAll(EncodeFrame(type, payload))));
    return NextFrame();
  }

  // Reads until one complete frame is decoded. EOF and receive errors are
  // transport failures; so are framing errors (the stream is unusable).
  Result<Frame> NextFrame() {
    for (;;) {
      Result<std::optional<Frame>> frame = decoder_.Next();
      if (!frame.ok()) {
        transport_failed_ = true;
        return frame.status();
      }
      if (frame->has_value()) return std::move(**frame);
      char buf[kRecvChunk];
      Result<size_t> n = socket_.Recv(buf, sizeof(buf));
      JACKPINE_RETURN_IF_ERROR(MarkTransport(n.status()));
      if (*n == 0) {
        transport_failed_ = true;
        return Status::Unavailable("server closed the connection");
      }
      decoder_.Feed(std::string_view(buf, *n));
    }
  }

  Status MarkTransport(const Status& status) {
    if (!status.ok()) transport_failed_ = true;
    return status;
  }

  Socket socket_;
  std::string endpoint_label_;
  std::shared_ptr<client::CircuitBreaker> breaker_;
  FrameDecoder decoder_;
  std::mutex mu_;  // one in-flight request per session
  bool healthy_ = true;
  bool transport_failed_ = false;
  // Set by Abort() from another thread while Execute holds mu_.
  std::atomic<bool> aborted_{false};
  // Hello-negotiated tracing capability and the clock offset estimated from
  // that handshake: client_time = server_time - clock_offset_s_.
  bool peer_traces_ = false;
  double clock_offset_s_ = 0.0;
};

}  // namespace

Result<std::shared_ptr<client::DriverSession>> RemoteDriver::NewSession() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (probe_ != nullptr) {
      std::shared_ptr<client::DriverSession> probe = std::move(probe_);
      probe_ = nullptr;
      return probe;
    }
  }
  // Every fresh transport attempt passes the shared breaker: while it is
  // open, reconnects fast-fail locally instead of dialing a dead server.
  if (Status admit = breaker_->Admit(); !admit.ok()) {
    return NameEndpoint(std::move(admit), EndpointLabel(endpoint_));
  }
  Result<std::shared_ptr<client::DriverSession>> session =
      RemoteSession::Open(endpoint_, breaker_);
  if (session.ok()) {
    breaker_->OnSuccess();
  } else {
    breaker_->OnFailure(session.status());
  }
  return session;
}

Result<std::shared_ptr<client::Driver>> OpenRemoteDriver(
    const client::RemoteEndpoint& endpoint) {
  auto driver = std::make_shared<RemoteDriver>(endpoint);
  // Fail fast on a dead host or mismatched SUT, and keep the validated
  // session for the first Statement.
  JACKPINE_ASSIGN_OR_RETURN(driver->probe_, driver->NewSession());
  return std::shared_ptr<client::Driver>(std::move(driver));
}

Result<std::vector<std::pair<std::string, double>>> QueryServerStats(
    const std::string& host, uint16_t port, StatsScope scope) {
  JACKPINE_ASSIGN_OR_RETURN(Socket socket, Socket::Connect(host, port));
  JACKPINE_RETURN_IF_ERROR(socket.SetRecvTimeout(10.0));
  FrameDecoder decoder;
  char buf[kRecvChunk];
  const auto next_frame = [&]() -> Result<Frame> {
    for (;;) {
      JACKPINE_ASSIGN_OR_RETURN(std::optional<Frame> frame, decoder.Next());
      if (frame.has_value()) return std::move(*frame);
      JACKPINE_ASSIGN_OR_RETURN(size_t n, socket.Recv(buf, sizeof(buf)));
      if (n == 0) return Status::Unavailable("server closed the connection");
      decoder.Feed(std::string_view(buf, n));
    }
  };
  const auto fail_on_error = [](const Frame& frame) -> Status {
    if (frame.type != FrameType::kError) return Status::Ok();
    JACKPINE_ASSIGN_OR_RETURN(ErrorMsg err, DecodeError(frame.payload));
    return ErrorToStatus(err);
  };

  // Handshake with an empty SUT name: the scrape works against whatever the
  // server hosts.
  HelloMsg hello;
  hello.peer_info = "jackpine-stats/1";
  JACKPINE_RETURN_IF_ERROR(
      socket.SendAll(EncodeFrame(FrameType::kHello, EncodeHello(hello))));
  JACKPINE_ASSIGN_OR_RETURN(Frame ack, next_frame());
  JACKPINE_RETURN_IF_ERROR(fail_on_error(ack));
  if (ack.type != FrameType::kHello) {
    return Status::Unavailable("protocol: handshake reply is not a Hello");
  }

  StatsRequestMsg request;
  request.scope = scope;
  JACKPINE_RETURN_IF_ERROR(socket.SendAll(
      EncodeFrame(FrameType::kStats, EncodeStatsRequest(request))));
  JACKPINE_ASSIGN_OR_RETURN(Frame reply, next_frame());
  JACKPINE_RETURN_IF_ERROR(fail_on_error(reply));
  if (reply.type != FrameType::kStats) {
    return Status::Unavailable(StrFormat(
        "protocol: unexpected frame type %u in a stats reply",
        static_cast<unsigned>(reply.type)));
  }
  JACKPINE_ASSIGN_OR_RETURN(StatsReplyMsg stats,
                            DecodeStatsReply(reply.payload));
  (void)socket.SendAll(EncodeFrame(FrameType::kClose, ""));
  return stats.entries;
}

Result<std::string> QueryServerStatsJson(const std::string& host,
                                         uint16_t port, StatsScope scope) {
  JACKPINE_ASSIGN_OR_RETURN(Socket socket, Socket::Connect(host, port));
  JACKPINE_RETURN_IF_ERROR(socket.SetRecvTimeout(10.0));
  FrameDecoder decoder;
  char buf[kRecvChunk];
  const auto next_frame = [&]() -> Result<Frame> {
    for (;;) {
      JACKPINE_ASSIGN_OR_RETURN(std::optional<Frame> frame, decoder.Next());
      if (frame.has_value()) return std::move(*frame);
      JACKPINE_ASSIGN_OR_RETURN(size_t n, socket.Recv(buf, sizeof(buf)));
      if (n == 0) return Status::Unavailable("server closed the connection");
      decoder.Feed(std::string_view(buf, n));
    }
  };
  const auto fail_on_error = [](const Frame& frame) -> Status {
    if (frame.type != FrameType::kError) return Status::Ok();
    JACKPINE_ASSIGN_OR_RETURN(ErrorMsg err, DecodeError(frame.payload));
    return ErrorToStatus(err);
  };

  HelloMsg hello;
  hello.peer_info = "jackpine-stats/1";
  JACKPINE_RETURN_IF_ERROR(
      socket.SendAll(EncodeFrame(FrameType::kHello, EncodeHello(hello))));
  JACKPINE_ASSIGN_OR_RETURN(Frame ack, next_frame());
  JACKPINE_RETURN_IF_ERROR(fail_on_error(ack));
  if (ack.type != FrameType::kHello) {
    return Status::Unavailable("protocol: handshake reply is not a Hello");
  }

  StatsRequestMsg request;
  request.scope = scope;
  JACKPINE_RETURN_IF_ERROR(socket.SendAll(
      EncodeFrame(FrameType::kStats, EncodeStatsRequest(request))));
  JACKPINE_ASSIGN_OR_RETURN(Frame reply, next_frame());
  JACKPINE_RETURN_IF_ERROR(fail_on_error(reply));
  if (reply.type != FrameType::kStats) {
    return Status::Unavailable(StrFormat(
        "protocol: unexpected frame type %u in a stats reply",
        static_cast<unsigned>(reply.type)));
  }
  JACKPINE_ASSIGN_OR_RETURN(StatsJsonMsg doc, DecodeStatsJson(reply.payload));
  (void)socket.SendAll(EncodeFrame(FrameType::kClose, ""));
  return std::move(doc.json);
}

Result<PingProbe> PingEndpoint(const std::string& host, uint16_t port,
                               double timeout_s) {
  const double t0 = obs::SpanNowS();
  JACKPINE_ASSIGN_OR_RETURN(Socket socket, Socket::Connect(host, port));
  JACKPINE_RETURN_IF_ERROR(socket.SetRecvTimeout(timeout_s));
  FrameDecoder decoder;
  char buf[kRecvChunk];
  const auto next_frame = [&]() -> Result<Frame> {
    for (;;) {
      JACKPINE_ASSIGN_OR_RETURN(std::optional<Frame> frame, decoder.Next());
      if (frame.has_value()) return std::move(*frame);
      JACKPINE_ASSIGN_OR_RETURN(size_t n, socket.Recv(buf, sizeof(buf)));
      if (n == 0) return Status::Unavailable("server closed the connection");
      decoder.Feed(std::string_view(buf, n));
    }
  };

  // Handshake with an empty SUT name, like the stats scrape: health is a
  // property of the process, not of what it hosts. A handshake-time Error
  // (version mismatch, shed) fails the probe — a server that cannot admit a
  // trivial session should not take scatter traffic either.
  HelloMsg hello;
  hello.peer_info = "jackpine-health/1";
  JACKPINE_RETURN_IF_ERROR(
      socket.SendAll(EncodeFrame(FrameType::kHello, EncodeHello(hello))));
  JACKPINE_ASSIGN_OR_RETURN(Frame ack, next_frame());
  if (ack.type == FrameType::kError) {
    JACKPINE_ASSIGN_OR_RETURN(ErrorMsg err, DecodeError(ack.payload));
    return ErrorToStatus(err);
  }
  if (ack.type != FrameType::kHello) {
    return Status::Unavailable("protocol: handshake reply is not a Hello");
  }

  PingMsg ping;
  ping.seq = 1;
  JACKPINE_RETURN_IF_ERROR(
      socket.SendAll(EncodeFrame(FrameType::kPing, EncodePing(ping))));
  JACKPINE_ASSIGN_OR_RETURN(Frame reply, next_frame());
  PingProbe probe;
  if (reply.type == FrameType::kError) {
    JACKPINE_ASSIGN_OR_RETURN(ErrorMsg err, DecodeError(reply.payload));
    if (err.code == StatusCode::kParseError ||
        err.code == StatusCode::kInvalidArgument) {
      // A pre-ping server: its decoder (kParseError) or its session loop
      // (kInvalidArgument) rejected the frame. It completed the handshake,
      // so it is alive — report up with the handshake-bounded RTT. Do not
      // send a Close: a decoder-level rejection already latched its stream.
      probe.legacy = true;
      probe.rtt_s = obs::SpanNowS() - t0;
      return probe;
    }
    return ErrorToStatus(err);
  }
  if (reply.type != FrameType::kPing) {
    return Status::Unavailable(StrFormat(
        "protocol: unexpected frame type %u in a ping reply",
        static_cast<unsigned>(reply.type)));
  }
  JACKPINE_ASSIGN_OR_RETURN(PingMsg pong, DecodePing(reply.payload));
  if (pong.seq != ping.seq) {
    return Status::Unavailable("protocol: ping reply echoed the wrong seq");
  }
  probe.rtt_s = obs::SpanNowS() - t0;
  (void)socket.SendAll(EncodeFrame(FrameType::kClose, ""));
  return probe;
}

void RegisterRemoteDriver() {
  client::RegisterDriverScheme(
      "tcp", [](const client::RemoteEndpoint& endpoint) {
        return OpenRemoteDriver(endpoint);
      });
}

namespace {
// Self-registration for binaries that link this translation unit; explicit
// RegisterRemoteDriver() calls remain the portable path because a static
// library member with no referenced symbols may be dropped by the linker.
[[maybe_unused]] const bool kRegistered = [] {
  RegisterRemoteDriver();
  return true;
}();
}  // namespace

}  // namespace jackpine::net
