// The pinedb server: any SUT behind the wire protocol.
//
// One engine instance (a local client::Connection for the configured SUT) is
// shared across all sessions; each accepted TCP connection gets its own
// session thread with its own client::Statement, mirroring how the paper's
// DBMSs multiplex JDBC connections onto one database. Sessions are
// error-isolated: an engine error is answered with an Error frame and the
// session keeps serving; a protocol violation or transport failure ends
// only that session. Shutdown() is graceful — it stops the acceptor,
// unblocks every session, and joins all threads before returning.

#ifndef JACKPINE_NET_SERVER_H_
#define JACKPINE_NET_SERVER_H_

#include <atomic>
#include <cstdint>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "client/client.h"
#include "net/socket.h"

namespace jackpine::net {

struct ServerOptions {
  std::string host = "127.0.0.1";
  uint16_t port = 0;  // 0 = pick an ephemeral port, see Server::port()
  std::string sut = "pine-rtree";
  // Rows per ResultBatch when the client does not ask for a size.
  size_t batch_rows = 512;
  // Sessions beyond this are refused with an Error frame at the handshake.
  size_t max_sessions = 256;
};

// Aggregate per-session counters, surfaced into the benchmark report tables
// by the pinedb binary. Monotonic over the server's lifetime.
struct ServerCounters {
  uint64_t sessions_opened = 0;
  uint64_t sessions_closed = 0;
  uint64_t queries = 0;         // Query frames answered (ok or error)
  uint64_t updates = 0;         // Update frames answered (ok or error)
  uint64_t rows_returned = 0;   // result rows shipped
  uint64_t bytes_sent = 0;      // frame bytes shipped (results + errors)
  uint64_t errors = 0;          // Error frames sent
};

class Server {
 public:
  // Opens the SUT and binds the listener, but does not accept yet: the
  // caller may preload the engine through connection() first.
  static Result<std::unique_ptr<Server>> Create(const ServerOptions& options);

  // Spawns the acceptor. Idempotent.
  void StartServing();

  // Create + StartServing in one step.
  static Result<std::unique_ptr<Server>> Start(const ServerOptions& options);

  ~Server();

  uint16_t port() const { return listener_.port(); }
  const ServerOptions& options() const { return options_; }

  // The wrapped local SUT, e.g. for server-side dataset preloading.
  client::Connection& connection() { return *connection_; }

  ServerCounters counters() const;
  size_t active_sessions() const;

  // Graceful shutdown: stop accepting, unblock and join every session.
  // Idempotent; also run by the destructor.
  void Shutdown();

 private:
  struct Session {
    Socket socket;
    std::thread thread;
    std::atomic<bool> done{false};
  };

  Server(ServerOptions options, client::Connection connection,
         Listener listener);

  void AcceptLoop();
  void ServeSession(Session* session);
  // Joins and drops sessions whose threads have finished.
  void ReapFinishedSessions();

  ServerOptions options_;
  std::unique_ptr<client::Connection> connection_;
  Listener listener_;
  std::thread acceptor_;
  bool serving_ = false;
  std::atomic<bool> stopping_{false};

  mutable std::mutex mu_;  // guards sessions_
  std::vector<std::unique_ptr<Session>> sessions_;

  std::atomic<uint64_t> sessions_opened_{0};
  std::atomic<uint64_t> sessions_closed_{0};
  std::atomic<uint64_t> queries_{0};
  std::atomic<uint64_t> updates_{0};
  std::atomic<uint64_t> rows_returned_{0};
  std::atomic<uint64_t> bytes_sent_{0};
  std::atomic<uint64_t> errors_{0};
};

}  // namespace jackpine::net

#endif  // JACKPINE_NET_SERVER_H_
