// The pinedb server: any SUT behind the wire protocol.
//
// One engine instance (a local client::Connection for the configured SUT) is
// shared across all sessions; each accepted TCP connection gets its own
// session thread with its own client::Statement, mirroring how the paper's
// DBMSs multiplex JDBC connections onto one database. Sessions are
// error-isolated: an engine error is answered with an Error frame and the
// session keeps serving; a protocol violation or transport failure ends
// only that session. Shutdown() is graceful — it stops the acceptor,
// unblocks every session, and joins all threads before returning.
//
// Overload protection (DESIGN.md "Fault model"): connections beyond
// max_sessions first wait in a bounded queue; when the queue is full or a
// queued connection waits past queue_timeout_s it is *shed* — answered with
// a structured kResourceExhausted Error frame carrying retry_after_ms so
// well-behaved clients back off instead of hammering the accept loop.
// Sessions idle past idle_timeout_s are reaped, and send_timeout_s bounds
// how long a slow client that stops draining results can pin a session
// thread. The optional chaos config injects the PR-1 deterministic fault
// model at the server's execution seam.

#ifndef JACKPINE_NET_SERVER_H_
#define JACKPINE_NET_SERVER_H_

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#include "cache/query_cache.h"
#include "client/client.h"
#include "net/socket.h"
#include "obs/flight_recorder.h"
#include "obs/metrics.h"
#include "obs/statements.h"

namespace jackpine::net {

struct ServerOptions {
  std::string host = "127.0.0.1";
  uint16_t port = 0;  // 0 = pick an ephemeral port, see Server::port()
  std::string sut = "pine-rtree";
  // Rows per ResultBatch when the client does not ask for a size.
  size_t batch_rows = 512;
  // Concurrent session threads. Connections beyond this wait in the
  // admission queue (below) instead of being refused outright.
  size_t max_sessions = 256;
  // Bounded admission queue in front of max_sessions. A connection arriving
  // with the queue full is shed immediately; 0 disables queueing (over-limit
  // connections shed at once, the pre-overload behaviour).
  size_t max_wait_queue = 64;
  // A queued connection waiting longer than this is shed. <= 0 waits
  // forever (until a slot frees or the server shuts down).
  double queue_timeout_s = 2.0;
  // Retry hint stamped on every shed's Error frame.
  uint32_t retry_after_ms = 250;
  // A session receiving no frame for this long is reaped (closed silently;
  // the client's next query sees EOF and reconnects). <= 0 disables.
  double idle_timeout_s = 0.0;
  // Bound on how long one blocked send to a non-draining client can pin a
  // session thread; on expiry the session ends. <= 0 disables.
  double send_timeout_s = 0.0;
  // Server-side deterministic fault injection at the execution seam, active
  // when error_rate > 0 or latency_ms > 0. Failures are delivered in-band
  // as kUnavailable Error frames — the transport stays healthy, modelling a
  // flaky backend rather than a flaky network.
  client::ChaosConfig chaos;
  // Result cache + request coalescing in front of the engine (DESIGN.md
  // "Result cache & coalescing"). On by default for plain SELECTs;
  // EXPLAIN/EXPLAIN ANALYZE and sessions that negotiated tracing or fetch
  // per-session stats bypass it so per-operator actuals stay truthful.
  size_t cache_mb = 64;
  bool cache_off = false;
  // Query-intelligence plane (DESIGN.md "Observability"): every query —
  // including cache hits and errors — lands in the per-fingerprint
  // statement statistics, and queries slower than slow_ms (plus all
  // errors) are captured by the flight recorder. Both are bounded.
  double slow_ms = 250.0;            // <= 0 disables slow capture
  size_t statements_capacity = 512;  // distinct fingerprints tracked
  size_t flight_capacity = 128;      // flight-recorder ring size
};

// Aggregate per-session counters, surfaced into the benchmark report tables
// by the pinedb binary. Monotonic over the server's lifetime.
struct ServerCounters {
  uint64_t sessions_opened = 0;
  uint64_t sessions_closed = 0;
  uint64_t queries = 0;         // Query frames answered (ok or error)
  uint64_t updates = 0;         // Update frames answered (ok or error)
  uint64_t rows_returned = 0;   // result rows shipped
  uint64_t bytes_sent = 0;      // frame bytes shipped (results + errors)
  uint64_t errors = 0;          // Error frames sent (engine/protocol)
  uint64_t sessions_queued = 0; // connections that waited in the queue
  uint64_t sessions_shed = 0;   // connections refused with retry_after_ms
  uint64_t idle_reaped = 0;     // sessions closed by the idle timeout
  uint64_t send_timeouts = 0;   // sessions ended by a blocked send
  uint64_t chaos_injected = 0;  // server-side chaos faults delivered
  uint64_t pings = 0;           // health-probe Ping frames echoed
};

class Server {
 public:
  // Opens the SUT and binds the listener, but does not accept yet: the
  // caller may preload the engine through connection() first.
  static Result<std::unique_ptr<Server>> Create(const ServerOptions& options);

  // Spawns the acceptor. Idempotent.
  void StartServing();

  // Create + StartServing in one step.
  static Result<std::unique_ptr<Server>> Start(const ServerOptions& options);

  ~Server();

  uint16_t port() const { return listener_.port(); }
  const ServerOptions& options() const { return options_; }

  // The wrapped local SUT, e.g. for server-side dataset preloading.
  client::Connection& connection() { return *connection_; }

  // The result cache, or null when --cache-off (or no local engine to
  // observe). Exposed for exact per-server stats in tests and benchmarks;
  // the process-wide registry aggregates across servers.
  cache::QueryCache* query_cache() { return query_cache_.get(); }

  // Per-server query intelligence (exact per-server assertions in tests,
  // same precedent as query_cache); the process-wide registry carries the
  // aggregated statements.* / flight.* meta-counters.
  obs::StatementStats& statement_stats() { return *statement_stats_; }
  const obs::StatementStats& statement_stats() const {
    return *statement_stats_;
  }
  obs::FlightRecorder& flight_recorder() { return *flight_recorder_; }
  const obs::FlightRecorder& flight_recorder() const {
    return *flight_recorder_;
  }

  ServerCounters counters() const;
  size_t active_sessions() const;

  // The global stats scrape: every ServerCounters field ("server.*"), the
  // engine's ExecStats ("engine.*") and the process-wide metrics registry,
  // flattened into sorted (name, value) entries — the payload of a
  // StatsScope::kGlobal reply and of `pinedb stats`.
  std::vector<std::pair<std::string, double>> GlobalStatsEntries() const;

  // Graceful shutdown: stop accepting, unblock and join every session.
  // Idempotent; also run by the destructor.
  void Shutdown();

 private:
  struct Session {
    Socket socket;
    std::thread thread;
    std::atomic<bool> done{false};
    // Admission timeline for the server.queue_wait span: when the acceptor
    // took the connection, whether it sat in the wait queue, and when a
    // session thread finally picked it up.
    std::chrono::steady_clock::time_point accepted_at{};
    std::chrono::steady_clock::time_point dispatched_at{};
    bool queued = false;
  };
  // A connection admitted past the accept() but not yet given a session
  // thread: it sits in the wait queue until a slot frees or it times out.
  struct Pending {
    Socket socket;
    std::chrono::steady_clock::time_point enqueued;
  };

  Server(ServerOptions options, client::Connection connection,
         Listener listener);

  void AcceptLoop();
  // Promotes queued connections into sessions as slots free up, shedding
  // the ones that outwait queue_timeout_s.
  void DispatchLoop();
  // Answers with a structured shed (kResourceExhausted + retry_after_ms)
  // and closes. The one polite thing an overloaded server can still afford.
  void Shed(Socket socket);
  // Starts a session thread for the socket. Caller holds mu_. `accepted_at`
  // is when the acceptor first saw the connection (= enqueue time for
  // connections promoted out of the wait queue).
  void SpawnSessionLocked(Socket socket,
                          std::chrono::steady_clock::time_point accepted_at,
                          bool queued);
  void ServeSession(Session* session);
  // Joins and drops sessions whose threads have finished.
  void ReapFinishedSessions();
  // Extracts the finished sessions from sessions_ for the caller to join
  // outside the lock. Caller holds mu_.
  std::vector<std::unique_ptr<Session>> CollectFinishedLocked();

  ServerOptions options_;
  std::unique_ptr<client::Connection> connection_;
  Listener listener_;
  std::thread acceptor_;
  std::thread dispatcher_;
  bool serving_ = false;
  std::atomic<bool> stopping_{false};
  std::unique_ptr<client::ChaosState> chaos_state_;  // null when disabled
  std::unique_ptr<cache::QueryCache> query_cache_;   // null when disabled
  bool cache_attached_ = false;
  std::unique_ptr<obs::StatementStats> statement_stats_;
  std::unique_ptr<obs::FlightRecorder> flight_recorder_;
  std::chrono::steady_clock::time_point started_at_{};
  // Per-query server-side execution latency, in the global registry so the
  // Stats scrape and the Prometheus exposition both see its buckets.
  obs::Histogram* query_latency_ = nullptr;

  mutable std::mutex mu_;  // guards sessions_ and pending_
  std::vector<std::unique_ptr<Session>> sessions_;
  std::deque<Pending> pending_;
  // Signalled when a session ends (a slot freed) or pending_ grows.
  std::condition_variable cv_;
  std::atomic<size_t> active_{0};

  std::atomic<uint64_t> sessions_opened_{0};
  std::atomic<uint64_t> sessions_closed_{0};
  std::atomic<uint64_t> queries_{0};
  std::atomic<uint64_t> updates_{0};
  std::atomic<uint64_t> rows_returned_{0};
  std::atomic<uint64_t> bytes_sent_{0};
  std::atomic<uint64_t> errors_{0};
  std::atomic<uint64_t> sessions_queued_{0};
  std::atomic<uint64_t> sessions_shed_{0};
  std::atomic<uint64_t> idle_reaped_{0};
  std::atomic<uint64_t> send_timeouts_{0};
  std::atomic<uint64_t> chaos_injected_{0};
  std::atomic<uint64_t> pings_{0};
};

}  // namespace jackpine::net

#endif  // JACKPINE_NET_SERVER_H_
