// The pinedb server binary: serves any SUT over the wire protocol.
//
//   pinedb serve [--host H] [--port P] [--sut NAME] [--batch-rows N]
//                [--preload] [--scale S] [--seed N]
//                [--data-dir DIR] [--group-commit-ms MS]
//                [--checkpoint-interval-s S]
//                [--max-sessions N] [--max-wait-queue N]
//                [--queue-timeout-ms N] [--retry-after-ms N]
//                [--idle-timeout-s S] [--send-timeout-s S]
//                [--chaos SEED,RATE,LATENCY_MS]
//                [--cache-mb N] [--cache-off]
//                [--metrics-port P] [--slow-ms MS]
//                [--statements-capacity N] [--flight-capacity N]
//                [--log-json] [--log-level LEVEL]
//   pinedb checkpoint --data-dir DIR [--sut NAME]
//   pinedb stats [--host H] [--port P] [--session] [--prom]
//                [--statements] [--slow]
//
// --data-dir makes the SUT durable (DESIGN.md "Durability"): on startup the
// directory's newest snapshot is loaded and the write-ahead log replayed
// (recovering whatever a previous process acked before it died, kill -9
// included); while serving, every mutating statement is WAL-logged and
// group-commit fsynced before its ack; on graceful shutdown the state is
// folded into a fresh checkpoint snapshot. If the directory is
// unrecoverable (mid-log corruption, snapshot CRC failure) the server
// refuses to start rather than serve a partial state — that is the
// kDataLoss contract. `pinedb checkpoint` runs the same recovery offline
// and compacts the directory to a snapshot + empty log (exit 1 on
// kDataLoss), which is both the repair tool and the CI crash-recovery
// smoke's integrity check.
//
// --preload generates the TIGER-like dataset (same generator and defaults as
// benchmark_runner, so a given --scale/--seed pair yields the identical
// dataset) and loads it before the server accepts connections; without it,
// remote clients load through the wire the way the paper's harness loaded
// over JDBC. Once serving, the binary prints the machine-parseable line
// `LISTENING <port>` on stdout — with --port 0 that is the only way a
// harness learns the ephemeral port. On SIGINT/SIGTERM the server drains
// its sessions, prints the per-session counters as a report table, and
// exits non-zero if any session leaked — CI's client/server smoke job
// asserts on exactly that.
//
// The overload knobs map 1:1 onto ServerOptions (see net/server.h): the
// admission queue in front of --max-sessions, the shed retry hint, idle
// reaping, slow-client send timeouts, and server-side chaos injection.
//
// The result cache (--cache-mb, default 64; --cache-off disables) serves
// repeated plain SELECTs from memory with TinyLFU admission, DML-driven
// invalidation and request coalescing (DESIGN.md "Result cache &
// coalescing"); cache.* counters appear in `pinedb stats` and as
// jackpine_cache_* in the --prom exposition.
//
// `pinedb stats` is the observability scrape: it connects to a running
// server, requests a Stats frame, and prints the (name, value) entries —
// server.* counters, engine.* ExecStats, and the process-wide metrics
// registry. --session scrapes the scraper's own (empty) session trace,
// which is mostly useful for protocol debugging. CI greps this output
// after the overload smoke run to assert sheds and queue depth were
// actually exercised. --prom renders the same scrape in Prometheus text
// exposition format (`# HELP`/`# TYPE` lines, jackpine_-prefixed sanitized
// names, build_info and uptime gauges) so `pinedb stats --prom`-style
// pipelines and node_exporter's textfile collector can ingest it directly.
//
// The query-intelligence plane (DESIGN.md "Observability"):
//   --metrics-port starts the embedded HTTP telemetry endpoint
//     (GET /metrics, /statements, /slow, /healthz; the readiness line
//     `METRICS <port>` mirrors `LISTENING <port>`),
//   --slow-ms sets the flight recorder's slow threshold (<= 0 disables
//     slow capture; errors are always captured),
//   `pinedb stats --statements` / `--slow` scrape the same documents over
//     the wire protocol (StatsScope::kStatements / kSlow) for hosts where
//     no HTTP port was opened,
//   and the flight recorder's ring is dumped as JSON on graceful shutdown
//     so a post-mortem never loses the last slow queries.
// --log-json / --log-level reconfigure the process-wide structured logger
// (obs/log.h) that the serve path narrates through.

#include <algorithm>
#include <atomic>
#include <chrono>
#include <csignal>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <memory>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#include "client/client.h"
#include "common/string_util.h"
#include "core/loader.h"
#include "core/report.h"
#include "net/remote_driver.h"
#include "net/server.h"
#include "obs/http_exposition.h"
#include "obs/json.h"
#include "obs/log.h"
#include "obs/metrics.h"
#include "storage/storage.h"

using namespace jackpine;  // binary code; the library itself never does this

namespace {

std::atomic<int> g_signals{0};

void HandleSignal(int) {
  // First signal: graceful drain + final checkpoint. Second: the operator
  // means it — exit now (the data dir recovers on the next start, which is
  // the whole point of the WAL).
  if (g_signals.fetch_add(1) >= 1) std::_Exit(130);
}

int Usage(const char* argv0) {
  std::fprintf(stderr,
               "usage: %s serve [--host H] [--port P] [--sut NAME]\n"
               "                [--batch-rows N] [--preload] [--scale S] "
               "[--seed N]\n"
               "                [--data-dir DIR] [--group-commit-ms MS]\n"
               "                [--checkpoint-interval-s S]\n"
               "                [--max-sessions N] [--max-wait-queue N]\n"
               "                [--queue-timeout-ms N] [--retry-after-ms N]\n"
               "                [--idle-timeout-s S] [--send-timeout-s S]\n"
               "                [--chaos SEED,RATE,LATENCY_MS]\n"
               "                [--cache-mb N] [--cache-off]\n"
               "                [--metrics-port P] [--slow-ms MS]\n"
               "                [--statements-capacity N] "
               "[--flight-capacity N]\n"
               "                [--log-json] [--log-level LEVEL]\n"
               "       %s checkpoint --data-dir DIR [--sut NAME]\n"
               "       %s stats [--host H] [--port P] [--session] [--prom]\n"
               "                [--statements] [--slow]\n",
               argv0, argv0, argv0);
  return 2;
}

void PrintRecoveryTable(const storage::RecoveryInfo& r) {
  std::printf(
      "%s\n",
      core::RenderKeyValueTable(
          "pinedb recovery",
          {{"snapshot loaded", r.snapshot_loaded ? "yes" : "no"},
           {"snapshot tables",
            StrFormat("%llu", static_cast<unsigned long long>(r.snapshot_tables))},
           {"snapshot rows",
            StrFormat("%llu", static_cast<unsigned long long>(r.snapshot_rows))},
           {"wal records applied",
            StrFormat("%llu",
                      static_cast<unsigned long long>(r.wal_records_applied))},
           {"wal records skipped",
            StrFormat("%llu",
                      static_cast<unsigned long long>(r.wal_records_skipped))},
           {"wal torn bytes truncated",
            StrFormat("%llu",
                      static_cast<unsigned long long>(r.wal_truncated_bytes))},
           {"indexes dropped",
            StrFormat("%llu",
                      static_cast<unsigned long long>(r.indexes_dropped))},
           {"recovery time", StrFormat("%.3f ms", r.recovery_s * 1e3)}})
          .c_str());
}

// `pinedb checkpoint`: offline recover-and-compact. Exit 0 means the data
// dir recovered cleanly and now holds a fresh snapshot + empty log; exit 1
// means kDataLoss (or any other failure) — CI's crash-recovery smoke
// asserts on this.
int RunCheckpoint(int argc, char** argv) {
  std::string data_dir;
  std::string sut = "pine-rtree";
  for (int i = 2; i < argc; ++i) {
    if (!std::strcmp(argv[i], "--data-dir") && i + 1 < argc) {
      data_dir = argv[++i];
    } else if (!std::strcmp(argv[i], "--sut") && i + 1 < argc) {
      sut = argv[++i];
    } else {
      return Usage(argv[0]);
    }
  }
  if (data_dir.empty()) {
    std::fprintf(stderr, "pinedb checkpoint: --data-dir is required\n");
    return 2;
  }
  auto config = client::SutByName(sut);
  if (!config.ok()) {
    std::fprintf(stderr, "pinedb checkpoint: %s\n",
                 config.status().ToString().c_str());
    return 2;
  }
  client::Connection conn = client::Connection::Open(*config);
  storage::StorageOptions sopts;
  sopts.dir = data_dir;
  auto manager = storage::StorageManager::Open(sopts, &conn.database());
  if (!manager.ok()) {
    std::fprintf(stderr, "pinedb checkpoint: %s\n",
                 manager.status().ToString().c_str());
    return 1;
  }
  PrintRecoveryTable((*manager)->recovery_info());
  const Status closed = (*manager)->Close();
  if (!closed.ok()) {
    std::fprintf(stderr, "pinedb checkpoint: %s\n", closed.ToString().c_str());
    return 1;
  }
  std::printf("pinedb checkpoint: ok\n");
  return 0;
}

// `pinedb stats`: scrape a running server and print its stats entries in
// `name value` lines, machine-greppable for the CI smoke step.
int RunStats(int argc, char** argv) {
  std::string host = "127.0.0.1";
  uint16_t port = 0;
  net::StatsScope scope = net::StatsScope::kGlobal;
  bool prom = false;
  for (int i = 2; i < argc; ++i) {
    if (!std::strcmp(argv[i], "--host") && i + 1 < argc) {
      host = argv[++i];
    } else if (!std::strcmp(argv[i], "--port") && i + 1 < argc) {
      port = static_cast<uint16_t>(std::atoi(argv[++i]));
    } else if (!std::strcmp(argv[i], "--session")) {
      scope = net::StatsScope::kSession;
    } else if (!std::strcmp(argv[i], "--statements")) {
      scope = net::StatsScope::kStatements;
    } else if (!std::strcmp(argv[i], "--slow")) {
      scope = net::StatsScope::kSlow;
    } else if (!std::strcmp(argv[i], "--prom")) {
      prom = true;
    } else {
      return Usage(argv[0]);
    }
  }
  if (port == 0) {
    std::fprintf(stderr, "pinedb stats: --port is required\n");
    return 2;
  }
  if (scope == net::StatsScope::kStatements ||
      scope == net::StatsScope::kSlow) {
    // JSON-document scopes print verbatim: the same payload /statements and
    // /slow serve over HTTP, fetched through the wire protocol instead.
    auto doc = net::QueryServerStatsJson(host, port, scope);
    if (!doc.ok()) {
      std::fprintf(stderr, "pinedb stats: %s\n",
                   doc.status().ToString().c_str());
      return 1;
    }
    std::printf("%s\n", doc->c_str());
    return 0;
  }
  auto entries = net::QueryServerStats(host, port, scope);
  if (!entries.ok()) {
    std::fprintf(stderr, "pinedb stats: %s\n",
                 entries.status().ToString().c_str());
    return 1;
  }
  if (prom) {
    // The scrape crosses the wire as flat entries, so every sample renders
    // as a gauge — histogram bucket structure is exact only in-process
    // (pinedb_shell's \prom); the bucket entries still carry their counts.
    std::fputs(obs::RenderPromEntries(*entries).c_str(), stdout);
    return 0;
  }
  for (const auto& [name, value] : *entries) {
    std::printf("%s %.9g\n", name.c_str(), value);
  }
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 2) return Usage(argv[0]);
  if (!std::strcmp(argv[1], "stats")) return RunStats(argc, argv);
  if (!std::strcmp(argv[1], "checkpoint")) return RunCheckpoint(argc, argv);
  if (std::strcmp(argv[1], "serve") != 0) return Usage(argv[0]);

  net::ServerOptions options;
  bool preload = false;
  double scale = 0.5;
  uint64_t seed = 42;
  std::string data_dir;
  double group_commit_ms = 1.0;
  double checkpoint_interval_s = 60.0;
  uint16_t metrics_port = 0;
  bool metrics_enabled = false;
  bool log_json = false;
  obs::LogLevel log_level = obs::LogLevel::kInfo;
  for (int i = 2; i < argc; ++i) {
    if (!std::strcmp(argv[i], "--host") && i + 1 < argc) {
      options.host = argv[++i];
    } else if (!std::strcmp(argv[i], "--port") && i + 1 < argc) {
      options.port = static_cast<uint16_t>(std::atoi(argv[++i]));
    } else if (!std::strcmp(argv[i], "--sut") && i + 1 < argc) {
      options.sut = argv[++i];
    } else if (!std::strcmp(argv[i], "--batch-rows") && i + 1 < argc) {
      options.batch_rows = static_cast<size_t>(std::atoll(argv[++i]));
    } else if (!std::strcmp(argv[i], "--preload")) {
      preload = true;
    } else if (!std::strcmp(argv[i], "--scale") && i + 1 < argc) {
      scale = std::atof(argv[++i]);
    } else if (!std::strcmp(argv[i], "--seed") && i + 1 < argc) {
      seed = static_cast<uint64_t>(std::atoll(argv[++i]));
    } else if (!std::strcmp(argv[i], "--data-dir") && i + 1 < argc) {
      data_dir = argv[++i];
    } else if (!std::strcmp(argv[i], "--group-commit-ms") && i + 1 < argc) {
      group_commit_ms = std::atof(argv[++i]);
    } else if (!std::strcmp(argv[i], "--checkpoint-interval-s") &&
               i + 1 < argc) {
      checkpoint_interval_s = std::atof(argv[++i]);
    } else if (!std::strcmp(argv[i], "--max-sessions") && i + 1 < argc) {
      options.max_sessions = static_cast<size_t>(std::atoll(argv[++i]));
    } else if (!std::strcmp(argv[i], "--max-wait-queue") && i + 1 < argc) {
      options.max_wait_queue = static_cast<size_t>(std::atoll(argv[++i]));
    } else if (!std::strcmp(argv[i], "--queue-timeout-ms") && i + 1 < argc) {
      options.queue_timeout_s = std::atof(argv[++i]) / 1e3;
    } else if (!std::strcmp(argv[i], "--retry-after-ms") && i + 1 < argc) {
      options.retry_after_ms = static_cast<uint32_t>(std::atoll(argv[++i]));
    } else if (!std::strcmp(argv[i], "--cache-mb") && i + 1 < argc) {
      options.cache_mb = static_cast<size_t>(std::atoll(argv[++i]));
    } else if (!std::strcmp(argv[i], "--cache-off")) {
      options.cache_off = true;
    } else if (!std::strcmp(argv[i], "--idle-timeout-s") && i + 1 < argc) {
      options.idle_timeout_s = std::atof(argv[++i]);
    } else if (!std::strcmp(argv[i], "--send-timeout-s") && i + 1 < argc) {
      options.send_timeout_s = std::atof(argv[++i]);
    } else if (!std::strcmp(argv[i], "--metrics-port") && i + 1 < argc) {
      metrics_port = static_cast<uint16_t>(std::atoi(argv[++i]));
      metrics_enabled = true;  // 0 still binds, on an ephemeral port
    } else if (!std::strcmp(argv[i], "--slow-ms") && i + 1 < argc) {
      options.slow_ms = std::atof(argv[++i]);
    } else if (!std::strcmp(argv[i], "--statements-capacity") &&
               i + 1 < argc) {
      options.statements_capacity = static_cast<size_t>(std::atoll(argv[++i]));
    } else if (!std::strcmp(argv[i], "--flight-capacity") && i + 1 < argc) {
      options.flight_capacity = static_cast<size_t>(std::atoll(argv[++i]));
    } else if (!std::strcmp(argv[i], "--log-json")) {
      log_json = true;
    } else if (!std::strcmp(argv[i], "--log-level") && i + 1 < argc) {
      auto parsed = obs::ParseLogLevel(argv[++i]);
      if (!parsed.has_value()) {
        std::fprintf(stderr, "pinedb: unknown --log-level '%s'\n", argv[i]);
        return 2;
      }
      log_level = *parsed;
    } else if (!std::strcmp(argv[i], "--chaos") && i + 1 < argc) {
      // Same spec grammar as the chaos URL scheme, minus the wrapper.
      auto chaos = client::ParseChaosSpec(
          StrFormat("chaos(%s)", argv[++i]));
      if (!chaos.ok()) {
        std::fprintf(stderr, "pinedb: %s\n",
                     chaos.status().ToString().c_str());
        return 2;
      }
      options.chaos = *chaos;
    } else {
      return Usage(argv[0]);
    }
  }

  obs::Logger::Global().Configure(log_level, log_json);

  auto server_or = net::Server::Create(options);
  if (!server_or.ok()) {
    obs::LogError("pinedb", "server startup failed",
                  {{"error", server_or.status().ToString()}});
    return 1;
  }
  std::unique_ptr<net::Server> server = std::move(server_or).value();

  std::unique_ptr<storage::StorageManager> store;
  if (!data_dir.empty()) {
    storage::StorageOptions sopts;
    sopts.dir = data_dir;
    sopts.group_commit_window_s = group_commit_ms / 1e3;
    sopts.checkpoint_interval_s = checkpoint_interval_s;
    auto opened =
        storage::StorageManager::Open(sopts, &server->connection().database());
    if (!opened.ok()) {
      // kDataLoss here means the directory is unrecoverable; refusing to
      // serve beats serving a silently partial database.
      obs::LogError("storage", "recovery failed; refusing to serve",
                    {{"dir", data_dir},
                     {"error", opened.status().ToString()}});
      return 1;
    }
    store = std::move(opened).value();
    PrintRecoveryTable(store->recovery_info());
    const storage::RecoveryInfo& r = store->recovery_info();
    obs::LogInfo(
        "storage", "recovery complete",
        {{"dir", data_dir},
         {"snapshot_rows",
          StrFormat("%llu", static_cast<unsigned long long>(r.snapshot_rows))},
         {"wal_records_applied",
          StrFormat("%llu",
                    static_cast<unsigned long long>(r.wal_records_applied))},
         {"recovery_ms", StrFormat("%.3f", r.recovery_s * 1e3)}});
    if (preload && (r.snapshot_rows > 0 || r.wal_records_applied > 0)) {
      std::printf(
          "pinedb: data dir already holds recovered state; skipping "
          "--preload\n");
      preload = false;
    }
  }

  if (preload) {
    tigergen::TigerGenOptions gen;
    gen.seed = seed;
    gen.scale = scale;
    auto load = core::GenerateAndLoad(gen, &server->connection());
    if (!load.ok()) {
      obs::LogError("pinedb", "preload failed",
                    {{"error", load.status().ToString()}});
      return 1;
    }
    std::printf("pinedb: preloaded %zu rows (scale %.2f, seed %llu)\n",
                load->rows, scale, static_cast<unsigned long long>(seed));
    if (store != nullptr) {
      // The bulk loader appends through the engine's fast path, below the
      // WAL seam; a checkpoint makes the preloaded dataset durable.
      const Status ckpt = store->Checkpoint();
      if (!ckpt.ok()) {
        obs::LogError("storage", "post-preload checkpoint failed",
                      {{"error", ckpt.ToString()}});
        return 1;
      }
      std::printf("pinedb: preload checkpointed to %s\n", data_dir.c_str());
    }
  }

  // The embedded HTTP telemetry endpoint (DESIGN.md "Observability").
  // /metrics composes the typed registry exposition (counters, gauges,
  // histograms with buckets) with the server/engine counters that live
  // outside the registry — the same union a Stats(kGlobal) frame ships —
  // under one build_info/uptime preamble so no family appears twice.
  std::unique_ptr<obs::TelemetryServer> telemetry;
  if (metrics_enabled) {
    obs::TelemetryServer::Options topts;
    topts.host = options.host;
    topts.port = metrics_port;
    auto created = obs::TelemetryServer::Create(topts);
    if (!created.ok()) {
      obs::LogError("telemetry", "metrics endpoint failed to bind",
                    {{"port", StrFormat("%u", metrics_port)},
                     {"error", created.status().ToString()}});
      return 1;
    }
    telemetry = std::move(created).value();
    net::Server* srv = server.get();
    telemetry->Handle("/metrics", [srv] {
      std::string body = obs::RenderPromPreamble();
      body += obs::GlobalRegistry().RenderProm("jackpine_",
                                               /*build_info=*/false);
      // Entries the registry does not back (server.* counters, engine.*
      // ExecStats): render the Stats-frame view minus everything the typed
      // exposition above already covered. Matched by name — counter values
      // race between the two snapshots, the identities do not.
      std::vector<std::string> registry_names;
      for (auto& [name, value] : obs::GlobalRegistry().Snapshot()) {
        registry_names.push_back(name);
      }
      std::sort(registry_names.begin(), registry_names.end());
      std::vector<std::pair<std::string, double>> extra;
      for (auto& entry : srv->GlobalStatsEntries()) {
        if (!std::binary_search(registry_names.begin(), registry_names.end(),
                                entry.first)) {
          extra.push_back(std::move(entry));
        }
      }
      body += obs::RenderPromEntries(extra, "jackpine_",
                                     /*build_info=*/false);
      obs::HttpResponse resp;
      resp.content_type = obs::kPromContentType;
      resp.body = std::move(body);
      return resp;
    });
    telemetry->Handle("/statements", [srv] {
      obs::HttpResponse resp;
      resp.content_type = "application/json";
      resp.body = srv->statement_stats().ToJson(0).Dump();
      return resp;
    });
    telemetry->Handle("/slow", [srv] {
      obs::HttpResponse resp;
      resp.content_type = "application/json";
      resp.body = srv->flight_recorder().ToJson().Dump();
      return resp;
    });
  }

  std::signal(SIGINT, HandleSignal);
  std::signal(SIGTERM, HandleSignal);
  server->StartServing();
  if (telemetry != nullptr) telemetry->StartServing();
  std::printf("pinedb: serving SUT '%s' on %s:%u\n", options.sut.c_str(),
              options.host.c_str(), static_cast<unsigned>(server->port()));
  obs::LogInfo("pinedb", "serving",
               {{"sut", options.sut},
                {"host", options.host},
                {"port", StrFormat("%u", server->port())}});
  // Machine-parseable readiness line; with --port 0 this is the only way a
  // harness learns which ephemeral port the kernel picked.
  std::printf("LISTENING %u\n", static_cast<unsigned>(server->port()));
  if (telemetry != nullptr) {
    // Same contract for the telemetry port: with --metrics-port 0 the
    // harness parses this line to find the scrape endpoint.
    std::printf("METRICS %u\n", static_cast<unsigned>(telemetry->port()));
  }
  std::fflush(stdout);

  while (g_signals.load() == 0) {
    std::this_thread::sleep_for(std::chrono::milliseconds(100));
  }

  std::printf("pinedb: shutting down\n");
  obs::LogInfo("pinedb", "shutting down");
  if (telemetry != nullptr) telemetry->Shutdown();
  server->Shutdown();
  // Post-mortem flight-recorder dump (DESIGN.md "Observability"): the last
  // slow/errored queries survive the process even when nobody was scraping
  // /slow. One JSON document, machine-parseable, empty ring included.
  std::printf("FLIGHT_RECORDER %s\n",
              server->flight_recorder().ToJson().Dump().c_str());
  int exit_code = 0;
  if (store != nullptr) {
    // Sessions are drained; fold everything into a final checkpoint so the
    // next start recovers from the snapshot without replaying the log.
    const Status closed = store->Close();
    if (!closed.ok()) {
      obs::LogError("storage", "final checkpoint failed",
                    {{"error", closed.ToString()}});
      exit_code = 1;
    } else {
      std::printf("pinedb: final checkpoint written to %s\n",
                  data_dir.c_str());
    }
  }
  const net::ServerCounters c = server->counters();
  std::printf("%s\n",
              core::RenderKeyValueTable(
                  "pinedb session counters",
                  {{"sessions opened", StrFormat("%llu",
                        static_cast<unsigned long long>(c.sessions_opened))},
                   {"sessions closed", StrFormat("%llu",
                        static_cast<unsigned long long>(c.sessions_closed))},
                   {"queries", StrFormat("%llu",
                        static_cast<unsigned long long>(c.queries))},
                   {"updates", StrFormat("%llu",
                        static_cast<unsigned long long>(c.updates))},
                   {"rows returned", StrFormat("%llu",
                        static_cast<unsigned long long>(c.rows_returned))},
                   {"bytes sent", StrFormat("%llu",
                        static_cast<unsigned long long>(c.bytes_sent))},
                   {"errors", StrFormat("%llu",
                        static_cast<unsigned long long>(c.errors))},
                   {"sessions queued", StrFormat("%llu",
                        static_cast<unsigned long long>(c.sessions_queued))},
                   {"sessions shed", StrFormat("%llu",
                        static_cast<unsigned long long>(c.sessions_shed))},
                   {"idle reaped", StrFormat("%llu",
                        static_cast<unsigned long long>(c.idle_reaped))},
                   {"send timeouts", StrFormat("%llu",
                        static_cast<unsigned long long>(c.send_timeouts))},
                   {"chaos injected", StrFormat("%llu",
                        static_cast<unsigned long long>(c.chaos_injected))}})
                  .c_str());
  if (c.sessions_opened != c.sessions_closed) {
    obs::LogError("pinedb", "leaked sessions",
                  {{"count", StrFormat("%llu",
                                       static_cast<unsigned long long>(
                                           c.sessions_opened -
                                           c.sessions_closed))}});
    return 1;
  }
  return exit_code;
}
