// The pinedb server binary: serves any SUT over the wire protocol.
//
//   pinedb serve [--host H] [--port P] [--sut NAME] [--batch-rows N]
//                [--preload] [--scale S] [--seed N]
//
// --preload generates the TIGER-like dataset (same generator and defaults as
// benchmark_runner, so a given --scale/--seed pair yields the identical
// dataset) and loads it before the server accepts connections; without it,
// remote clients load through the wire the way the paper's harness loaded
// over JDBC. On SIGINT/SIGTERM the server drains its sessions, prints the
// per-session counters as a report table, and exits non-zero if any session
// leaked — CI's client/server smoke job asserts on exactly that.

#include <atomic>
#include <chrono>
#include <csignal>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <thread>

#include "common/string_util.h"
#include "core/loader.h"
#include "core/report.h"
#include "net/server.h"

using namespace jackpine;  // binary code; the library itself never does this

namespace {

std::atomic<bool> g_stop{false};

void HandleSignal(int) { g_stop.store(true); }

int Usage(const char* argv0) {
  std::fprintf(stderr,
               "usage: %s serve [--host H] [--port P] [--sut NAME]\n"
               "                [--batch-rows N] [--preload] [--scale S] "
               "[--seed N]\n",
               argv0);
  return 2;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 2 || std::strcmp(argv[1], "serve") != 0) return Usage(argv[0]);

  net::ServerOptions options;
  bool preload = false;
  double scale = 0.5;
  uint64_t seed = 42;
  for (int i = 2; i < argc; ++i) {
    if (!std::strcmp(argv[i], "--host") && i + 1 < argc) {
      options.host = argv[++i];
    } else if (!std::strcmp(argv[i], "--port") && i + 1 < argc) {
      options.port = static_cast<uint16_t>(std::atoi(argv[++i]));
    } else if (!std::strcmp(argv[i], "--sut") && i + 1 < argc) {
      options.sut = argv[++i];
    } else if (!std::strcmp(argv[i], "--batch-rows") && i + 1 < argc) {
      options.batch_rows = static_cast<size_t>(std::atoll(argv[++i]));
    } else if (!std::strcmp(argv[i], "--preload")) {
      preload = true;
    } else if (!std::strcmp(argv[i], "--scale") && i + 1 < argc) {
      scale = std::atof(argv[++i]);
    } else if (!std::strcmp(argv[i], "--seed") && i + 1 < argc) {
      seed = static_cast<uint64_t>(std::atoll(argv[++i]));
    } else {
      return Usage(argv[0]);
    }
  }

  auto server_or = net::Server::Create(options);
  if (!server_or.ok()) {
    std::fprintf(stderr, "pinedb: %s\n",
                 server_or.status().ToString().c_str());
    return 1;
  }
  std::unique_ptr<net::Server> server = std::move(server_or).value();

  if (preload) {
    tigergen::TigerGenOptions gen;
    gen.seed = seed;
    gen.scale = scale;
    auto load = core::GenerateAndLoad(gen, &server->connection());
    if (!load.ok()) {
      std::fprintf(stderr, "pinedb: preload failed: %s\n",
                   load.status().ToString().c_str());
      return 1;
    }
    std::printf("pinedb: preloaded %zu rows (scale %.2f, seed %llu)\n",
                load->rows, scale, static_cast<unsigned long long>(seed));
  }

  std::signal(SIGINT, HandleSignal);
  std::signal(SIGTERM, HandleSignal);
  server->StartServing();
  std::printf("pinedb: serving SUT '%s' on %s:%u\n", options.sut.c_str(),
              options.host.c_str(), static_cast<unsigned>(server->port()));
  std::fflush(stdout);

  while (!g_stop.load()) {
    std::this_thread::sleep_for(std::chrono::milliseconds(100));
  }

  std::printf("pinedb: shutting down\n");
  server->Shutdown();
  const net::ServerCounters c = server->counters();
  std::printf("%s\n",
              core::RenderKeyValueTable(
                  "pinedb session counters",
                  {{"sessions opened", StrFormat("%llu",
                        static_cast<unsigned long long>(c.sessions_opened))},
                   {"sessions closed", StrFormat("%llu",
                        static_cast<unsigned long long>(c.sessions_closed))},
                   {"queries", StrFormat("%llu",
                        static_cast<unsigned long long>(c.queries))},
                   {"updates", StrFormat("%llu",
                        static_cast<unsigned long long>(c.updates))},
                   {"rows returned", StrFormat("%llu",
                        static_cast<unsigned long long>(c.rows_returned))},
                   {"bytes sent", StrFormat("%llu",
                        static_cast<unsigned long long>(c.bytes_sent))},
                   {"errors", StrFormat("%llu",
                        static_cast<unsigned long long>(c.errors))}})
                  .c_str());
  if (c.sessions_opened != c.sessions_closed) {
    std::fprintf(stderr, "pinedb: leaked %llu session(s)\n",
                 static_cast<unsigned long long>(c.sessions_opened -
                                                 c.sessions_closed));
    return 1;
  }
  return 0;
}
