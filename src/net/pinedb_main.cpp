// The pinedb server binary: serves any SUT over the wire protocol.
//
//   pinedb serve [--host H] [--port P] [--sut NAME] [--batch-rows N]
//                [--preload] [--scale S] [--seed N]
//                [--data-dir DIR] [--group-commit-ms MS]
//                [--checkpoint-interval-s S]
//                [--max-sessions N] [--max-wait-queue N]
//                [--queue-timeout-ms N] [--retry-after-ms N]
//                [--idle-timeout-s S] [--send-timeout-s S]
//                [--chaos SEED,RATE,LATENCY_MS]
//                [--cache-mb N] [--cache-off]
//   pinedb checkpoint --data-dir DIR [--sut NAME]
//   pinedb stats [--host H] [--port P] [--session] [--prom]
//
// --data-dir makes the SUT durable (DESIGN.md "Durability"): on startup the
// directory's newest snapshot is loaded and the write-ahead log replayed
// (recovering whatever a previous process acked before it died, kill -9
// included); while serving, every mutating statement is WAL-logged and
// group-commit fsynced before its ack; on graceful shutdown the state is
// folded into a fresh checkpoint snapshot. If the directory is
// unrecoverable (mid-log corruption, snapshot CRC failure) the server
// refuses to start rather than serve a partial state — that is the
// kDataLoss contract. `pinedb checkpoint` runs the same recovery offline
// and compacts the directory to a snapshot + empty log (exit 1 on
// kDataLoss), which is both the repair tool and the CI crash-recovery
// smoke's integrity check.
//
// --preload generates the TIGER-like dataset (same generator and defaults as
// benchmark_runner, so a given --scale/--seed pair yields the identical
// dataset) and loads it before the server accepts connections; without it,
// remote clients load through the wire the way the paper's harness loaded
// over JDBC. Once serving, the binary prints the machine-parseable line
// `LISTENING <port>` on stdout — with --port 0 that is the only way a
// harness learns the ephemeral port. On SIGINT/SIGTERM the server drains
// its sessions, prints the per-session counters as a report table, and
// exits non-zero if any session leaked — CI's client/server smoke job
// asserts on exactly that.
//
// The overload knobs map 1:1 onto ServerOptions (see net/server.h): the
// admission queue in front of --max-sessions, the shed retry hint, idle
// reaping, slow-client send timeouts, and server-side chaos injection.
//
// The result cache (--cache-mb, default 64; --cache-off disables) serves
// repeated plain SELECTs from memory with TinyLFU admission, DML-driven
// invalidation and request coalescing (DESIGN.md "Result cache &
// coalescing"); cache.* counters appear in `pinedb stats` and as
// jackpine_cache_* in the --prom exposition.
//
// `pinedb stats` is the observability scrape: it connects to a running
// server, requests a Stats frame, and prints the (name, value) entries —
// server.* counters, engine.* ExecStats, and the process-wide metrics
// registry. --session scrapes the scraper's own (empty) session trace,
// which is mostly useful for protocol debugging. CI greps this output
// after the overload smoke run to assert sheds and queue depth were
// actually exercised. --prom renders the same scrape in Prometheus text
// exposition format (`# TYPE` lines, jackpine_-prefixed sanitized names)
// so `pinedb stats --prom | curl`-style pipelines and node_exporter's
// textfile collector can ingest it directly.

#include <atomic>
#include <chrono>
#include <csignal>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <thread>

#include "client/client.h"
#include "common/string_util.h"
#include "core/loader.h"
#include "core/report.h"
#include "net/remote_driver.h"
#include "net/server.h"
#include "obs/metrics.h"
#include "storage/storage.h"

using namespace jackpine;  // binary code; the library itself never does this

namespace {

std::atomic<int> g_signals{0};

void HandleSignal(int) {
  // First signal: graceful drain + final checkpoint. Second: the operator
  // means it — exit now (the data dir recovers on the next start, which is
  // the whole point of the WAL).
  if (g_signals.fetch_add(1) >= 1) std::_Exit(130);
}

int Usage(const char* argv0) {
  std::fprintf(stderr,
               "usage: %s serve [--host H] [--port P] [--sut NAME]\n"
               "                [--batch-rows N] [--preload] [--scale S] "
               "[--seed N]\n"
               "                [--data-dir DIR] [--group-commit-ms MS]\n"
               "                [--checkpoint-interval-s S]\n"
               "                [--max-sessions N] [--max-wait-queue N]\n"
               "                [--queue-timeout-ms N] [--retry-after-ms N]\n"
               "                [--idle-timeout-s S] [--send-timeout-s S]\n"
               "                [--chaos SEED,RATE,LATENCY_MS]\n"
               "                [--cache-mb N] [--cache-off]\n"
               "       %s checkpoint --data-dir DIR [--sut NAME]\n"
               "       %s stats [--host H] [--port P] [--session] [--prom]\n",
               argv0, argv0, argv0);
  return 2;
}

void PrintRecoveryTable(const storage::RecoveryInfo& r) {
  std::printf(
      "%s\n",
      core::RenderKeyValueTable(
          "pinedb recovery",
          {{"snapshot loaded", r.snapshot_loaded ? "yes" : "no"},
           {"snapshot tables",
            StrFormat("%llu", static_cast<unsigned long long>(r.snapshot_tables))},
           {"snapshot rows",
            StrFormat("%llu", static_cast<unsigned long long>(r.snapshot_rows))},
           {"wal records applied",
            StrFormat("%llu",
                      static_cast<unsigned long long>(r.wal_records_applied))},
           {"wal records skipped",
            StrFormat("%llu",
                      static_cast<unsigned long long>(r.wal_records_skipped))},
           {"wal torn bytes truncated",
            StrFormat("%llu",
                      static_cast<unsigned long long>(r.wal_truncated_bytes))},
           {"indexes dropped",
            StrFormat("%llu",
                      static_cast<unsigned long long>(r.indexes_dropped))},
           {"recovery time", StrFormat("%.3f ms", r.recovery_s * 1e3)}})
          .c_str());
}

// `pinedb checkpoint`: offline recover-and-compact. Exit 0 means the data
// dir recovered cleanly and now holds a fresh snapshot + empty log; exit 1
// means kDataLoss (or any other failure) — CI's crash-recovery smoke
// asserts on this.
int RunCheckpoint(int argc, char** argv) {
  std::string data_dir;
  std::string sut = "pine-rtree";
  for (int i = 2; i < argc; ++i) {
    if (!std::strcmp(argv[i], "--data-dir") && i + 1 < argc) {
      data_dir = argv[++i];
    } else if (!std::strcmp(argv[i], "--sut") && i + 1 < argc) {
      sut = argv[++i];
    } else {
      return Usage(argv[0]);
    }
  }
  if (data_dir.empty()) {
    std::fprintf(stderr, "pinedb checkpoint: --data-dir is required\n");
    return 2;
  }
  auto config = client::SutByName(sut);
  if (!config.ok()) {
    std::fprintf(stderr, "pinedb checkpoint: %s\n",
                 config.status().ToString().c_str());
    return 2;
  }
  client::Connection conn = client::Connection::Open(*config);
  storage::StorageOptions sopts;
  sopts.dir = data_dir;
  auto manager = storage::StorageManager::Open(sopts, &conn.database());
  if (!manager.ok()) {
    std::fprintf(stderr, "pinedb checkpoint: %s\n",
                 manager.status().ToString().c_str());
    return 1;
  }
  PrintRecoveryTable((*manager)->recovery_info());
  const Status closed = (*manager)->Close();
  if (!closed.ok()) {
    std::fprintf(stderr, "pinedb checkpoint: %s\n", closed.ToString().c_str());
    return 1;
  }
  std::printf("pinedb checkpoint: ok\n");
  return 0;
}

// `pinedb stats`: scrape a running server and print its stats entries in
// `name value` lines, machine-greppable for the CI smoke step.
int RunStats(int argc, char** argv) {
  std::string host = "127.0.0.1";
  uint16_t port = 0;
  net::StatsScope scope = net::StatsScope::kGlobal;
  bool prom = false;
  for (int i = 2; i < argc; ++i) {
    if (!std::strcmp(argv[i], "--host") && i + 1 < argc) {
      host = argv[++i];
    } else if (!std::strcmp(argv[i], "--port") && i + 1 < argc) {
      port = static_cast<uint16_t>(std::atoi(argv[++i]));
    } else if (!std::strcmp(argv[i], "--session")) {
      scope = net::StatsScope::kSession;
    } else if (!std::strcmp(argv[i], "--prom")) {
      prom = true;
    } else {
      return Usage(argv[0]);
    }
  }
  if (port == 0) {
    std::fprintf(stderr, "pinedb stats: --port is required\n");
    return 2;
  }
  auto entries = net::QueryServerStats(host, port, scope);
  if (!entries.ok()) {
    std::fprintf(stderr, "pinedb stats: %s\n",
                 entries.status().ToString().c_str());
    return 1;
  }
  if (prom) {
    // The scrape crosses the wire as flat entries, so every sample renders
    // as a gauge — histogram bucket structure is exact only in-process
    // (pinedb_shell's \prom); the bucket entries still carry their counts.
    std::fputs(obs::RenderPromEntries(*entries).c_str(), stdout);
    return 0;
  }
  for (const auto& [name, value] : *entries) {
    std::printf("%s %.9g\n", name.c_str(), value);
  }
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 2) return Usage(argv[0]);
  if (!std::strcmp(argv[1], "stats")) return RunStats(argc, argv);
  if (!std::strcmp(argv[1], "checkpoint")) return RunCheckpoint(argc, argv);
  if (std::strcmp(argv[1], "serve") != 0) return Usage(argv[0]);

  net::ServerOptions options;
  bool preload = false;
  double scale = 0.5;
  uint64_t seed = 42;
  std::string data_dir;
  double group_commit_ms = 1.0;
  double checkpoint_interval_s = 60.0;
  for (int i = 2; i < argc; ++i) {
    if (!std::strcmp(argv[i], "--host") && i + 1 < argc) {
      options.host = argv[++i];
    } else if (!std::strcmp(argv[i], "--port") && i + 1 < argc) {
      options.port = static_cast<uint16_t>(std::atoi(argv[++i]));
    } else if (!std::strcmp(argv[i], "--sut") && i + 1 < argc) {
      options.sut = argv[++i];
    } else if (!std::strcmp(argv[i], "--batch-rows") && i + 1 < argc) {
      options.batch_rows = static_cast<size_t>(std::atoll(argv[++i]));
    } else if (!std::strcmp(argv[i], "--preload")) {
      preload = true;
    } else if (!std::strcmp(argv[i], "--scale") && i + 1 < argc) {
      scale = std::atof(argv[++i]);
    } else if (!std::strcmp(argv[i], "--seed") && i + 1 < argc) {
      seed = static_cast<uint64_t>(std::atoll(argv[++i]));
    } else if (!std::strcmp(argv[i], "--data-dir") && i + 1 < argc) {
      data_dir = argv[++i];
    } else if (!std::strcmp(argv[i], "--group-commit-ms") && i + 1 < argc) {
      group_commit_ms = std::atof(argv[++i]);
    } else if (!std::strcmp(argv[i], "--checkpoint-interval-s") &&
               i + 1 < argc) {
      checkpoint_interval_s = std::atof(argv[++i]);
    } else if (!std::strcmp(argv[i], "--max-sessions") && i + 1 < argc) {
      options.max_sessions = static_cast<size_t>(std::atoll(argv[++i]));
    } else if (!std::strcmp(argv[i], "--max-wait-queue") && i + 1 < argc) {
      options.max_wait_queue = static_cast<size_t>(std::atoll(argv[++i]));
    } else if (!std::strcmp(argv[i], "--queue-timeout-ms") && i + 1 < argc) {
      options.queue_timeout_s = std::atof(argv[++i]) / 1e3;
    } else if (!std::strcmp(argv[i], "--retry-after-ms") && i + 1 < argc) {
      options.retry_after_ms = static_cast<uint32_t>(std::atoll(argv[++i]));
    } else if (!std::strcmp(argv[i], "--cache-mb") && i + 1 < argc) {
      options.cache_mb = static_cast<size_t>(std::atoll(argv[++i]));
    } else if (!std::strcmp(argv[i], "--cache-off")) {
      options.cache_off = true;
    } else if (!std::strcmp(argv[i], "--idle-timeout-s") && i + 1 < argc) {
      options.idle_timeout_s = std::atof(argv[++i]);
    } else if (!std::strcmp(argv[i], "--send-timeout-s") && i + 1 < argc) {
      options.send_timeout_s = std::atof(argv[++i]);
    } else if (!std::strcmp(argv[i], "--chaos") && i + 1 < argc) {
      // Same spec grammar as the chaos URL scheme, minus the wrapper.
      auto chaos = client::ParseChaosSpec(
          StrFormat("chaos(%s)", argv[++i]));
      if (!chaos.ok()) {
        std::fprintf(stderr, "pinedb: %s\n",
                     chaos.status().ToString().c_str());
        return 2;
      }
      options.chaos = *chaos;
    } else {
      return Usage(argv[0]);
    }
  }

  auto server_or = net::Server::Create(options);
  if (!server_or.ok()) {
    std::fprintf(stderr, "pinedb: %s\n",
                 server_or.status().ToString().c_str());
    return 1;
  }
  std::unique_ptr<net::Server> server = std::move(server_or).value();

  std::unique_ptr<storage::StorageManager> store;
  if (!data_dir.empty()) {
    storage::StorageOptions sopts;
    sopts.dir = data_dir;
    sopts.group_commit_window_s = group_commit_ms / 1e3;
    sopts.checkpoint_interval_s = checkpoint_interval_s;
    auto opened =
        storage::StorageManager::Open(sopts, &server->connection().database());
    if (!opened.ok()) {
      // kDataLoss here means the directory is unrecoverable; refusing to
      // serve beats serving a silently partial database.
      std::fprintf(stderr, "pinedb: storage recovery failed: %s\n",
                   opened.status().ToString().c_str());
      return 1;
    }
    store = std::move(opened).value();
    PrintRecoveryTable(store->recovery_info());
    const storage::RecoveryInfo& r = store->recovery_info();
    if (preload && (r.snapshot_rows > 0 || r.wal_records_applied > 0)) {
      std::printf(
          "pinedb: data dir already holds recovered state; skipping "
          "--preload\n");
      preload = false;
    }
  }

  if (preload) {
    tigergen::TigerGenOptions gen;
    gen.seed = seed;
    gen.scale = scale;
    auto load = core::GenerateAndLoad(gen, &server->connection());
    if (!load.ok()) {
      std::fprintf(stderr, "pinedb: preload failed: %s\n",
                   load.status().ToString().c_str());
      return 1;
    }
    std::printf("pinedb: preloaded %zu rows (scale %.2f, seed %llu)\n",
                load->rows, scale, static_cast<unsigned long long>(seed));
    if (store != nullptr) {
      // The bulk loader appends through the engine's fast path, below the
      // WAL seam; a checkpoint makes the preloaded dataset durable.
      const Status ckpt = store->Checkpoint();
      if (!ckpt.ok()) {
        std::fprintf(stderr, "pinedb: post-preload checkpoint failed: %s\n",
                     ckpt.ToString().c_str());
        return 1;
      }
      std::printf("pinedb: preload checkpointed to %s\n", data_dir.c_str());
    }
  }

  std::signal(SIGINT, HandleSignal);
  std::signal(SIGTERM, HandleSignal);
  server->StartServing();
  std::printf("pinedb: serving SUT '%s' on %s:%u\n", options.sut.c_str(),
              options.host.c_str(), static_cast<unsigned>(server->port()));
  // Machine-parseable readiness line; with --port 0 this is the only way a
  // harness learns which ephemeral port the kernel picked.
  std::printf("LISTENING %u\n", static_cast<unsigned>(server->port()));
  std::fflush(stdout);

  while (g_signals.load() == 0) {
    std::this_thread::sleep_for(std::chrono::milliseconds(100));
  }

  std::printf("pinedb: shutting down\n");
  server->Shutdown();
  int exit_code = 0;
  if (store != nullptr) {
    // Sessions are drained; fold everything into a final checkpoint so the
    // next start recovers from the snapshot without replaying the log.
    const Status closed = store->Close();
    if (!closed.ok()) {
      std::fprintf(stderr, "pinedb: final checkpoint failed: %s\n",
                   closed.ToString().c_str());
      exit_code = 1;
    } else {
      std::printf("pinedb: final checkpoint written to %s\n",
                  data_dir.c_str());
    }
  }
  const net::ServerCounters c = server->counters();
  std::printf("%s\n",
              core::RenderKeyValueTable(
                  "pinedb session counters",
                  {{"sessions opened", StrFormat("%llu",
                        static_cast<unsigned long long>(c.sessions_opened))},
                   {"sessions closed", StrFormat("%llu",
                        static_cast<unsigned long long>(c.sessions_closed))},
                   {"queries", StrFormat("%llu",
                        static_cast<unsigned long long>(c.queries))},
                   {"updates", StrFormat("%llu",
                        static_cast<unsigned long long>(c.updates))},
                   {"rows returned", StrFormat("%llu",
                        static_cast<unsigned long long>(c.rows_returned))},
                   {"bytes sent", StrFormat("%llu",
                        static_cast<unsigned long long>(c.bytes_sent))},
                   {"errors", StrFormat("%llu",
                        static_cast<unsigned long long>(c.errors))},
                   {"sessions queued", StrFormat("%llu",
                        static_cast<unsigned long long>(c.sessions_queued))},
                   {"sessions shed", StrFormat("%llu",
                        static_cast<unsigned long long>(c.sessions_shed))},
                   {"idle reaped", StrFormat("%llu",
                        static_cast<unsigned long long>(c.idle_reaped))},
                   {"send timeouts", StrFormat("%llu",
                        static_cast<unsigned long long>(c.send_timeouts))},
                   {"chaos injected", StrFormat("%llu",
                        static_cast<unsigned long long>(c.chaos_injected))}})
                  .c_str());
  if (c.sessions_opened != c.sessions_closed) {
    std::fprintf(stderr, "pinedb: leaked %llu session(s)\n",
                 static_cast<unsigned long long>(c.sessions_opened -
                                                 c.sessions_closed));
    return 1;
  }
  return exit_code;
}
