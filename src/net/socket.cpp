#include "net/socket.h"

#include <arpa/inet.h>
#include <cerrno>
#include <chrono>
#include <cmath>
#include <cstring>
#include <netdb.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <poll.h>
#include <sys/socket.h>
#include <sys/time.h>
#include <unistd.h>

#include "common/string_util.h"

namespace jackpine::net {

namespace {

Status Errno(const char* what) {
  return Status::Unavailable(
      StrFormat("%s: %s", what, std::strerror(errno)));
}

// EINTR handling for connect: unlike send/recv/accept, an interrupted
// connect must NOT be re-issued — POSIX says the connection attempt keeps
// running in the background and a second connect() yields EALREADY. The
// correct resolution is to wait for writability and read the verdict from
// SO_ERROR. Returns 0 on an established connection, the failure errno
// otherwise.
int FinishInterruptedConnect(int fd) {
  pollfd pfd{};
  pfd.fd = fd;
  pfd.events = POLLOUT;
  int rc;
  do {
    rc = ::poll(&pfd, 1, /*timeout_ms=*/-1);
  } while (rc < 0 && errno == EINTR);
  if (rc < 0) return errno;
  int err = 0;
  socklen_t len = sizeof(err);
  if (::getsockopt(fd, SOL_SOCKET, SO_ERROR, &err, &len) != 0) return errno;
  return err;
}

// Resolves host:port to the first usable IPv4/IPv6 address.
Result<int> OpenAndBindOrConnect(const std::string& host, uint16_t port,
                                 bool listen_mode) {
  addrinfo hints{};
  hints.ai_family = AF_UNSPEC;
  hints.ai_socktype = SOCK_STREAM;
  if (listen_mode) hints.ai_flags = AI_PASSIVE;
  addrinfo* addrs = nullptr;
  const std::string port_str = StrFormat("%u", static_cast<unsigned>(port));
  const int rc = ::getaddrinfo(host.empty() ? nullptr : host.c_str(),
                               port_str.c_str(), &hints, &addrs);
  if (rc != 0) {
    return Status::Unavailable(StrFormat("resolve '%s': %s", host.c_str(),
                                         gai_strerror(rc)));
  }
  Status last = Status::Unavailable(
      StrFormat("no usable address for '%s'", host.c_str()));
  for (addrinfo* a = addrs; a != nullptr; a = a->ai_next) {
    const int fd = ::socket(a->ai_family, a->ai_socktype, a->ai_protocol);
    if (fd < 0) {
      last = Errno("socket");
      continue;
    }
    if (listen_mode) {
      const int one = 1;
      ::setsockopt(fd, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));
      if (::bind(fd, a->ai_addr, a->ai_addrlen) == 0) {
        ::freeaddrinfo(addrs);
        return fd;
      }
      last = Errno("bind");
    } else {
      int rc = ::connect(fd, a->ai_addr, a->ai_addrlen);
      if (rc != 0 && errno == EINTR) {
        errno = FinishInterruptedConnect(fd);
        rc = errno == 0 ? 0 : -1;
      }
      if (rc == 0) {
        ::freeaddrinfo(addrs);
        return fd;
      }
      last = Errno("connect");
    }
    ::close(fd);
  }
  ::freeaddrinfo(addrs);
  return last;
}

}  // namespace

Socket& Socket::operator=(Socket&& other) noexcept {
  if (this != &other) {
    Close();
    fd_ = other.fd_;
    send_timeout_s_ = other.send_timeout_s_;
    other.fd_ = -1;
  }
  return *this;
}

Result<Socket> Socket::Connect(const std::string& host, uint16_t port) {
  JACKPINE_ASSIGN_OR_RETURN(int fd,
                            OpenAndBindOrConnect(host, port, false));
  // The protocol is strict request/response; disabling Nagle keeps small
  // Query frames from waiting behind delayed ACKs.
  const int one = 1;
  ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
  return Socket(fd);
}

Status Socket::SendAll(std::string_view data) {
  // SO_SNDTIMEO only bounds each individual send(); a peer that drains one
  // byte per timeout window would reset that clock forever. The wall-clock
  // deadline below bounds the whole call, so send_timeout_s caps the total
  // time one buffer can pin the sending thread.
  const bool bounded = send_timeout_s_ > 0.0;
  std::chrono::steady_clock::time_point deadline;
  if (bounded) {
    deadline = std::chrono::steady_clock::now() +
               std::chrono::duration_cast<std::chrono::steady_clock::duration>(
                   std::chrono::duration<double>(send_timeout_s_));
  }
  size_t sent = 0;
  while (sent < data.size()) {
    // MSG_NOSIGNAL: a peer that vanished mid-send yields EPIPE, not a
    // process-wide SIGPIPE.
    const ssize_t n = ::send(fd_, data.data() + sent, data.size() - sent,
                             MSG_NOSIGNAL);
    if (n < 0) {
      if (errno == EINTR) continue;
      if (errno == EAGAIN || errno == EWOULDBLOCK) {
        // SO_SNDTIMEO expired with the peer's window still closed: a slow
        // or stuck client, not a broken transport.
        return Status::DeadlineExceeded(
            "send: timed out waiting for the peer to drain");
      }
      return Errno("send");
    }
    sent += static_cast<size_t>(n);
    if (bounded && sent < data.size() &&
        std::chrono::steady_clock::now() >= deadline) {
      return Status::DeadlineExceeded(
          "send: peer drained too slowly; buffer exceeded the send timeout");
    }
  }
  return Status::Ok();
}

Result<size_t> Socket::Recv(char* buf, size_t max) {
  for (;;) {
    const ssize_t n = ::recv(fd_, buf, max, 0);
    if (n >= 0) return static_cast<size_t>(n);
    if (errno == EINTR) continue;
    if (errno == EAGAIN || errno == EWOULDBLOCK) {
      return Status::DeadlineExceeded("recv: timed out waiting for the peer");
    }
    return Errno("recv");
  }
}

namespace {

timeval ToTimeval(double seconds) {
  timeval tv{};
  if (seconds > 0.0) {
    tv.tv_sec = static_cast<time_t>(seconds);
    tv.tv_usec = static_cast<suseconds_t>(
        (seconds - std::floor(seconds)) * 1e6);
  }
  return tv;
}

}  // namespace

Status Socket::SetRecvTimeout(double seconds) {
  const timeval tv = ToTimeval(seconds);
  if (::setsockopt(fd_, SOL_SOCKET, SO_RCVTIMEO, &tv, sizeof(tv)) != 0) {
    return Errno("setsockopt(SO_RCVTIMEO)");
  }
  return Status::Ok();
}

Status Socket::SetSendTimeout(double seconds) {
  const timeval tv = ToTimeval(seconds);
  if (::setsockopt(fd_, SOL_SOCKET, SO_SNDTIMEO, &tv, sizeof(tv)) != 0) {
    return Errno("setsockopt(SO_SNDTIMEO)");
  }
  send_timeout_s_ = seconds > 0.0 ? seconds : 0.0;
  return Status::Ok();
}

void Socket::ShutdownBoth() {
  if (fd_ >= 0) ::shutdown(fd_, SHUT_RDWR);
}

void Socket::Close() {
  if (fd_ >= 0) {
    ::close(fd_);
    fd_ = -1;
  }
}

Result<Listener> Listener::Listen(const std::string& host, uint16_t port,
                                  int backlog) {
  JACKPINE_ASSIGN_OR_RETURN(int fd, OpenAndBindOrConnect(host, port, true));
  if (::listen(fd, backlog) != 0) {
    const Status err = Errno("listen");
    ::close(fd);
    return err;
  }
  Listener listener;
  listener.fd_ = fd;
  // Read back the bound port (meaningful when asked for port 0).
  sockaddr_storage addr{};
  socklen_t len = sizeof(addr);
  if (::getsockname(fd, reinterpret_cast<sockaddr*>(&addr), &len) == 0) {
    if (addr.ss_family == AF_INET) {
      listener.port_ =
          ntohs(reinterpret_cast<sockaddr_in*>(&addr)->sin_port);
    } else if (addr.ss_family == AF_INET6) {
      listener.port_ =
          ntohs(reinterpret_cast<sockaddr_in6*>(&addr)->sin6_port);
    }
  }
  if (listener.port_ == 0) listener.port_ = port;
  return listener;
}

Result<Socket> Listener::Accept() {
  for (;;) {
    const int fd = ::accept(fd_, nullptr, nullptr);
    if (fd >= 0) {
      const int one = 1;
      ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
      return Socket(fd);
    }
    if (errno == EINTR) continue;
    return Errno("accept");
  }
}

void Listener::Shutdown() {
  if (fd_ >= 0) ::shutdown(fd_, SHUT_RDWR);
}

void Listener::Close() {
  if (fd_ >= 0) {
    ::close(fd_);
    fd_ = -1;
  }
}

}  // namespace jackpine::net
