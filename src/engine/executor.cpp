#include "engine/executor.h"

#include <algorithm>
#include <cmath>
#include <map>

#include "common/string_util.h"
#include "obs/trace.h"

namespace jackpine::engine {

namespace {

// Per-row fault guards (DESIGN.md "Fault model"). Every gather loop ticks
// the query's ExecContext once per row visited, and charges one row against
// the budget per match it materialises, so an unbounded scan or cross join
// fails with kDeadlineExceeded / kCancelled / kResourceExhausted instead of
// running away. Null context (no limits configured) short-circuits to OK.
Status TickRow(ExecContext* exec) {
  return exec == nullptr ? Status::Ok() : exec->CheckTick();
}

Status ChargeMatch(ExecContext* exec) {
  return exec == nullptr ? Status::Ok() : exec->ChargeRows(1);
}

// True when the WHERE (if any) evaluates to TRUE for the rows in view.
// `trace` is the per-execution pipeline trace (always non-null inside
// ExecutePlan; plain increments, no atomics on the hot path).
Result<bool> PassesWhere(const PhysicalPlan& plan, const RowView& view,
                         ExecStats* stats, obs::QueryTrace* trace) {
  if (!plan.where.has_value()) return true;
  if (stats != nullptr) ++stats->refine_checks;
  ++trace->refine_checks;
  JACKPINE_ASSIGN_OR_RETURN(Value v, EvalBound(*plan.where, view, plan.ctx));
  if (v.is_null()) return false;
  JACKPINE_ASSIGN_OR_RETURN(bool keep, v.AsBool());
  if (keep) ++trace->refine_survivors;
  return keep;
}

// Materialised match: one row pointer per FROM table.
using Match = RowView;

Result<std::vector<Match>> GatherSingleTable(const PhysicalPlan& plan,
                                             ExecStats* stats,
                                             obs::QueryTrace* trace) {
  const Table* table = plan.tables[0];
  ExecContext* exec = plan.ctx.exec;
  index::ProbeStats probe;
  std::vector<Match> matches;

  if (plan.use_knn) {
    // Exact k-NN in two index probes: (1) fetch the k nearest entries by MBR
    // distance and evaluate the exact ORDER BY key on them; the k-th exact
    // distance d_k is an upper bound on the answer's distance. (2) A window
    // query of radius d_k then yields every row that could beat it (MBR
    // distance lower-bounds exact distance); the ORDER BY phase sorts them
    // exactly.
    const index::SpatialIndex* idx = table->GetSpatialIndex(plan.knn_column);
    const size_t k = static_cast<size_t>(std::max<int64_t>(*plan.limit, 0));
    std::vector<int64_t> seed_ids;
    idx->Nearest(plan.knn_center, k, &seed_ids);
    if (stats != nullptr) ++stats->index_probes;
    ++trace->index_probes;
    std::vector<double> exact;
    for (int64_t id : seed_ids) {
      Match m;
      m.rows[0] = &table->row(static_cast<size_t>(id));
      ++trace->rows_examined;
      JACKPINE_ASSIGN_OR_RETURN(
          Value key, EvalBound(plan.order_by[0].expr, m, plan.ctx));
      const auto d = key.AsDouble();
      if (d.ok()) exact.push_back(*d);
    }
    if (exact.size() < k) {
      // Not enough indexable rows (NULL geometries etc.): fall back to the
      // full scan; the sort phase handles ordering.
      for (size_t i = 0; i < table->NumRows(); ++i) {
        JACKPINE_RETURN_IF_ERROR(TickRow(exec));
        if (stats != nullptr) ++stats->rows_scanned;
        ++trace->rows_scanned;
        ++trace->rows_examined;
        Match m;
        m.rows[0] = &table->row(i);
        JACKPINE_RETURN_IF_ERROR(ChargeMatch(exec));
        matches.push_back(m);
      }
      return matches;
    }
    std::sort(exact.begin(), exact.end());
    const double dk = exact.back();
    const geom::Envelope window(plan.knn_center.x - dk, plan.knn_center.y - dk,
                                plan.knn_center.x + dk,
                                plan.knn_center.y + dk);
    std::vector<int64_t> ids;
    idx->Query(window, &ids, &probe);
    if (stats != nullptr) {
      ++stats->index_probes;
      stats->index_candidates += ids.size();
    }
    ++trace->index_probes;
    trace->index_candidates += ids.size();
    for (int64_t id : ids) {
      JACKPINE_RETURN_IF_ERROR(TickRow(exec));
      Match m;
      m.rows[0] = &table->row(static_cast<size_t>(id));
      ++trace->rows_examined;
      JACKPINE_RETURN_IF_ERROR(ChargeMatch(exec));
      matches.push_back(m);
    }
    trace->index_nodes_visited += probe.nodes_visited;
    return matches;
  }

  if (plan.use_window) {
    const index::SpatialIndex* idx = table->GetSpatialIndex(plan.window_column);
    std::vector<int64_t> ids;
    idx->Query(plan.window, &ids, &probe);
    if (stats != nullptr) {
      ++stats->index_probes;
      stats->index_candidates += ids.size();
    }
    ++trace->index_probes;
    trace->index_candidates += ids.size();
    for (int64_t id : ids) {
      JACKPINE_RETURN_IF_ERROR(TickRow(exec));
      Match m;
      m.rows[0] = &table->row(static_cast<size_t>(id));
      ++trace->rows_examined;
      JACKPINE_ASSIGN_OR_RETURN(bool keep, PassesWhere(plan, m, stats, trace));
      if (keep) {
        JACKPINE_RETURN_IF_ERROR(ChargeMatch(exec));
        matches.push_back(m);
      }
    }
    trace->index_nodes_visited += probe.nodes_visited;
    return matches;
  }

  for (size_t i = 0; i < table->NumRows(); ++i) {
    JACKPINE_RETURN_IF_ERROR(TickRow(exec));
    if (stats != nullptr) ++stats->rows_scanned;
    ++trace->rows_scanned;
    ++trace->rows_examined;
    Match m;
    m.rows[0] = &table->row(i);
    JACKPINE_ASSIGN_OR_RETURN(bool keep, PassesWhere(plan, m, stats, trace));
    if (keep) {
      JACKPINE_RETURN_IF_ERROR(ChargeMatch(exec));
      matches.push_back(m);
    }
  }
  return matches;
}

Result<std::vector<Match>> GatherJoin(const PhysicalPlan& plan,
                                      ExecStats* stats,
                                      obs::QueryTrace* trace) {
  ExecContext* exec = plan.ctx.exec;
  std::vector<Match> matches;

  if (plan.use_join_index) {
    const Table* outer = plan.tables[plan.outer_table];
    const Table* inner = plan.tables[plan.inner_table];
    const index::SpatialIndex* idx =
        inner->GetSpatialIndex(plan.inner_geom_column);
    index::ProbeStats probe;
    for (size_t i = 0; i < outer->NumRows(); ++i) {
      JACKPINE_RETURN_IF_ERROR(TickRow(exec));
      if (stats != nullptr) ++stats->rows_scanned;
      ++trace->rows_scanned;
      Match m;
      m.rows[plan.outer_table] = &outer->row(i);
      JACKPINE_ASSIGN_OR_RETURN(Value key,
                                EvalBound(*plan.outer_key, m, plan.ctx));
      if (key.is_null() || key.type() != DataType::kGeometry) continue;
      geom::Envelope window = key.geometry_value().envelope();
      if (window.IsNull()) continue;
      if (plan.join_expand > 0) window = window.Expanded(plan.join_expand);
      std::vector<int64_t> ids;
      idx->Query(window, &ids, &probe);
      if (stats != nullptr) {
        ++stats->index_probes;
        stats->index_candidates += ids.size();
      }
      ++trace->index_probes;
      trace->index_candidates += ids.size();
      for (int64_t id : ids) {
        JACKPINE_RETURN_IF_ERROR(TickRow(exec));
        m.rows[plan.inner_table] = &inner->row(static_cast<size_t>(id));
        ++trace->rows_examined;
        JACKPINE_ASSIGN_OR_RETURN(bool keep,
                                  PassesWhere(plan, m, stats, trace));
        if (keep) {
          JACKPINE_RETURN_IF_ERROR(ChargeMatch(exec));
          matches.push_back(m);
        }
      }
    }
    trace->index_nodes_visited += probe.nodes_visited;
    return matches;
  }

  // Plain nested loop.
  const Table* t0 = plan.tables[0];
  const Table* t1 = plan.tables[1];
  for (size_t i = 0; i < t0->NumRows(); ++i) {
    for (size_t j = 0; j < t1->NumRows(); ++j) {
      JACKPINE_RETURN_IF_ERROR(TickRow(exec));
      if (stats != nullptr) ++stats->rows_scanned;
      ++trace->rows_scanned;
      ++trace->rows_examined;
      Match m;
      m.rows[0] = &t0->row(i);
      m.rows[1] = &t1->row(j);
      JACKPINE_ASSIGN_OR_RETURN(bool keep, PassesWhere(plan, m, stats, trace));
      if (keep) {
        JACKPINE_RETURN_IF_ERROR(ChargeMatch(exec));
        matches.push_back(m);
      }
    }
  }
  return matches;
}

// ---------------------------------------------------------------------------
// Aggregates.
// ---------------------------------------------------------------------------

struct AggState {
  std::string name;  // COUNT / SUM / AVG / MIN / MAX
  const BoundExpr* arg = nullptr;
  bool count_star = false;

  uint64_t count = 0;
  double sum = 0.0;
  bool sum_is_int = true;
  int64_t isum = 0;
  Value extreme;  // MIN/MAX

  Result<Value> Finish() const {
    if (name == "COUNT") return Value::Int(static_cast<int64_t>(count));
    if (count == 0) return Value::MakeNull();
    if (name == "SUM") {
      return sum_is_int ? Value::Int(isum) : Value::Real(sum);
    }
    if (name == "AVG") {
      const double total = sum_is_int ? static_cast<double>(isum) : sum;
      return Value::Real(total / static_cast<double>(count));
    }
    return extreme;  // MIN / MAX
  }
};

// Collects aggregate nodes from an output expression tree (in evaluation
// order, so substitution can walk the same order).
void CollectAggregates(const BoundExpr& expr, std::vector<const BoundExpr*>* out) {
  if (expr.IsAggregate()) {
    out->push_back(&expr);
    return;
  }
  for (const BoundExpr& c : expr.children) CollectAggregates(c, out);
}

Status AccumulateAggregate(AggState* st, const Match& m,
                           const EvalContext& ctx) {
  if (st->count_star) {
    ++st->count;
    return Status::Ok();
  }
  JACKPINE_ASSIGN_OR_RETURN(Value v, EvalBound(*st->arg, m, ctx));
  if (v.is_null()) return Status::Ok();
  ++st->count;
  if (st->name == "SUM" || st->name == "AVG") {
    if (v.type() == DataType::kInt64 && st->sum_is_int) {
      st->isum += v.int_value();
    } else {
      if (st->sum_is_int) {
        st->sum = static_cast<double>(st->isum);
        st->sum_is_int = false;
      }
      JACKPINE_ASSIGN_OR_RETURN(double d, v.AsDouble());
      st->sum += d;
    }
  } else if (st->name == "MIN" || st->name == "MAX") {
    if (st->extreme.is_null()) {
      st->extreme = v;
    } else {
      JACKPINE_ASSIGN_OR_RETURN(int cmp, v.Compare(st->extreme));
      if ((st->name == "MIN" && cmp < 0) || (st->name == "MAX" && cmp > 0)) {
        st->extreme = v;
      }
    }
  }
  return Status::Ok();
}

// Rebuilds `expr` with aggregate nodes replaced by their finished values.
Result<BoundExpr> SubstituteAggregates(const BoundExpr& expr,
                                       const std::vector<const BoundExpr*>& nodes,
                                       const std::vector<Value>& values) {
  if (expr.IsAggregate()) {
    for (size_t i = 0; i < nodes.size(); ++i) {
      if (nodes[i] == &expr) {
        BoundExpr lit;
        lit.kind = BoundExpr::Kind::kLiteral;
        lit.literal = values[i];
        return lit;
      }
    }
    return Status::Internal("aggregate node not found during substitution");
  }
  BoundExpr out = expr;
  out.children.clear();
  for (const BoundExpr& c : expr.children) {
    JACKPINE_ASSIGN_OR_RETURN(BoundExpr sc,
                              SubstituteAggregates(c, nodes, values));
    out.children.push_back(std::move(sc));
  }
  return out;
}

}  // namespace

uint64_t QueryResult::Checksum() const {
  uint64_t sum = 0x9e3779b97f4a7c15ULL * (rows.size() + 1);
  for (const Row& row : rows) {
    uint64_t h = 0x517cc1b727220a95ULL;
    for (const Value& v : row) {
      h ^= v.Hash() + 0x9e3779b97f4a7c15ULL + (h << 6) + (h >> 2);
    }
    sum += h;  // commutative combine: row order must not matter
  }
  return sum;
}

std::string QueryResult::ToString(size_t max_rows) const {
  std::vector<size_t> widths(columns.size());
  std::vector<std::vector<std::string>> cells;
  for (size_t c = 0; c < columns.size(); ++c) widths[c] = columns[c].size();
  const size_t shown = std::min(rows.size(), max_rows);
  for (size_t r = 0; r < shown; ++r) {
    std::vector<std::string> row_cells;
    for (size_t c = 0; c < rows[r].size(); ++c) {
      std::string cell = rows[r][c].ToDisplayString();
      if (cell.size() > 48) cell = cell.substr(0, 45) + "...";
      if (c < widths.size()) widths[c] = std::max(widths[c], cell.size());
      row_cells.push_back(std::move(cell));
    }
    cells.push_back(std::move(row_cells));
  }
  std::string out;
  for (size_t c = 0; c < columns.size(); ++c) {
    out += StrFormat("%-*s  ", static_cast<int>(widths[c]), columns[c].c_str());
  }
  out += '\n';
  for (const auto& row_cells : cells) {
    for (size_t c = 0; c < row_cells.size(); ++c) {
      const int w = c < widths.size() ? static_cast<int>(widths[c]) : 0;
      out += StrFormat("%-*s  ", w, row_cells[c].c_str());
    }
    out += '\n';
  }
  if (rows.size() > shown) {
    out += StrFormat("... (%zu rows total)\n", rows.size());
  }
  return out;
}

// The plan pipeline proper; `trace` is always non-null (a stack-local of the
// ExecutePlan wrapper), so the gather loops increment it unconditionally.
static Result<QueryResult> ExecutePlanImpl(const PhysicalPlan& plan,
                                           ExecStats* stats,
                                           obs::QueryTrace* trace) {
  ExecContext* exec = plan.ctx.exec;
  QueryResult result;
  for (const auto& out : plan.outputs) result.columns.push_back(out.name);

  std::vector<Match> matches;
  if (plan.tables.size() == 1) {
    JACKPINE_ASSIGN_OR_RETURN(matches, GatherSingleTable(plan, stats, trace));
  } else {
    JACKPINE_ASSIGN_OR_RETURN(matches, GatherJoin(plan, stats, trace));
  }

  if (plan.has_aggregates || !plan.group_by.empty() || !plan.order_by.empty()) {
    // Canonical match order. Index gathers return candidates in an
    // unspecified order and the join planner may swap outer/inner, but
    // float aggregate accumulation, GROUP BY representative rows and
    // ORDER BY tie-breaking are all sensitive to input order. Sorting by
    // row address (rows are stored in per-table vectors, so address order
    // is insertion order, outer table first) pins these results to the
    // FROM-order nested-loop semantics regardless of the access path —
    // which is also what lets a scatter-gather router reproduce them
    // bit-for-bit. Plain SELECTs skip this: their output is an unordered
    // set and LIMIT-without-ORDER is documented as arbitrary.
    std::stable_sort(matches.begin(), matches.end(),
                     [](const Match& a, const Match& b) {
                       std::less<const Row*> lt;
                       if (a.rows[0] != b.rows[0]) return lt(a.rows[0], b.rows[0]);
                       return lt(a.rows[1], b.rows[1]);
                     });
  }

  if (!plan.group_by.empty()) {
    // Hash aggregation: one output row per distinct group-key tuple.
    // Non-aggregate outputs evaluate against the group's first row.
    std::vector<const BoundExpr*> nodes;
    for (const auto& out : plan.outputs) CollectAggregates(out.expr, &nodes);
    for (const auto& order : plan.order_by) {
      CollectAggregates(order.expr, &nodes);
    }
    struct Group {
      Match representative;
      std::vector<AggState> states;
    };
    std::map<std::string, Group> groups;
    for (const Match& m : matches) {
      JACKPINE_RETURN_IF_ERROR(TickRow(exec));
      std::string key;
      for (const BoundExpr& g : plan.group_by) {
        JACKPINE_ASSIGN_OR_RETURN(Value v, EvalBound(g, m, plan.ctx));
        key += v.ToDisplayString();
        key += '\x1f';
      }
      auto [it, inserted] = groups.try_emplace(key);
      if (inserted) {
        it->second.representative = m;
        it->second.states.resize(nodes.size());
        for (size_t i = 0; i < nodes.size(); ++i) {
          it->second.states[i].name = nodes[i]->call_name;
          const BoundExpr& arg = nodes[i]->children[0];
          if (arg.kind == BoundExpr::Kind::kStar) {
            it->second.states[i].count_star = true;
          } else {
            it->second.states[i].arg = &arg;
          }
        }
      }
      for (AggState& st : it->second.states) {
        JACKPINE_RETURN_IF_ERROR(AccumulateAggregate(&st, m, plan.ctx));
      }
    }
    struct GroupRow {
      Row row;
      std::vector<Value> sort_keys;
    };
    std::vector<GroupRow> rows;
    for (auto& [key, group] : groups) {
      (void)key;
      std::vector<Value> finished;
      for (const AggState& st : group.states) {
        JACKPINE_ASSIGN_OR_RETURN(Value v, st.Finish());
        finished.push_back(std::move(v));
      }
      GroupRow gr;
      for (const auto& out : plan.outputs) {
        JACKPINE_ASSIGN_OR_RETURN(
            BoundExpr substituted,
            SubstituteAggregates(out.expr, nodes, finished));
        JACKPINE_ASSIGN_OR_RETURN(
            Value v, EvalBound(substituted, group.representative, plan.ctx));
        gr.row.push_back(std::move(v));
      }
      for (const auto& order : plan.order_by) {
        JACKPINE_ASSIGN_OR_RETURN(
            BoundExpr substituted,
            SubstituteAggregates(order.expr, nodes, finished));
        JACKPINE_ASSIGN_OR_RETURN(
            Value v, EvalBound(substituted, group.representative, plan.ctx));
        gr.sort_keys.push_back(std::move(v));
      }
      rows.push_back(std::move(gr));
    }
    if (!plan.order_by.empty()) {
      Status sort_status;
      std::stable_sort(rows.begin(), rows.end(),
                       [&](const GroupRow& a, const GroupRow& b) {
                         for (size_t k = 0; k < plan.order_by.size(); ++k) {
                           const Result<int> cmp =
                               a.sort_keys[k].Compare(b.sort_keys[k]);
                           if (!cmp.ok()) {
                             if (sort_status.ok()) sort_status = cmp.status();
                             return false;
                           }
                           if (*cmp != 0) {
                             return plan.order_by[k].ascending ? *cmp < 0
                                                               : *cmp > 0;
                           }
                         }
                         return false;
                       });
      JACKPINE_RETURN_IF_ERROR(sort_status);
    }
    if (plan.limit.has_value() && *plan.limit >= 0 &&
        rows.size() > static_cast<size_t>(*plan.limit)) {
      rows.resize(static_cast<size_t>(*plan.limit));
    }
    for (GroupRow& gr : rows) result.rows.push_back(std::move(gr.row));
    return result;
  }

  if (plan.has_aggregates) {
    // Build the aggregate states across all outputs.
    std::vector<const BoundExpr*> nodes;
    for (const auto& out : plan.outputs) CollectAggregates(out.expr, &nodes);
    std::vector<AggState> states(nodes.size());
    for (size_t i = 0; i < nodes.size(); ++i) {
      states[i].name = nodes[i]->call_name;
      const BoundExpr& arg = nodes[i]->children[0];
      if (arg.kind == BoundExpr::Kind::kStar) {
        states[i].count_star = true;
      } else {
        states[i].arg = &arg;
      }
    }
    for (const Match& m : matches) {
      JACKPINE_RETURN_IF_ERROR(TickRow(exec));
      for (AggState& st : states) {
        JACKPINE_RETURN_IF_ERROR(AccumulateAggregate(&st, m, plan.ctx));
      }
    }
    std::vector<Value> finished;
    for (const AggState& st : states) {
      JACKPINE_ASSIGN_OR_RETURN(Value v, st.Finish());
      finished.push_back(std::move(v));
    }
    Row row;
    for (const auto& out : plan.outputs) {
      JACKPINE_ASSIGN_OR_RETURN(
          BoundExpr substituted,
          SubstituteAggregates(out.expr, nodes, finished));
      RowView empty;
      JACKPINE_ASSIGN_OR_RETURN(Value v,
                                EvalBound(substituted, empty, plan.ctx));
      row.push_back(std::move(v));
    }
    result.rows.push_back(std::move(row));
    return result;
  }

  // ORDER BY: precompute keys, sort match indexes.
  if (!plan.order_by.empty()) {
    std::vector<std::vector<Value>> keys(matches.size());
    for (size_t i = 0; i < matches.size(); ++i) {
      JACKPINE_RETURN_IF_ERROR(TickRow(exec));
      for (const auto& order : plan.order_by) {
        JACKPINE_ASSIGN_OR_RETURN(Value v,
                                  EvalBound(order.expr, matches[i], plan.ctx));
        keys[i].push_back(std::move(v));
      }
    }
    std::vector<size_t> order_idx(matches.size());
    for (size_t i = 0; i < order_idx.size(); ++i) order_idx[i] = i;
    Status sort_status;
    std::stable_sort(
        order_idx.begin(), order_idx.end(), [&](size_t a, size_t b) {
          for (size_t k = 0; k < plan.order_by.size(); ++k) {
            const Result<int> cmp = keys[a][k].Compare(keys[b][k]);
            if (!cmp.ok()) {
              if (sort_status.ok()) sort_status = cmp.status();
              return false;
            }
            if (*cmp != 0) {
              return plan.order_by[k].ascending ? *cmp < 0 : *cmp > 0;
            }
          }
          return false;
        });
    JACKPINE_RETURN_IF_ERROR(sort_status);
    std::vector<Match> sorted;
    sorted.reserve(matches.size());
    for (size_t i : order_idx) sorted.push_back(matches[i]);
    matches = std::move(sorted);
  }

  if (plan.limit.has_value() && *plan.limit >= 0 &&
      matches.size() > static_cast<size_t>(*plan.limit)) {
    matches.resize(static_cast<size_t>(*plan.limit));
  }

  for (const Match& m : matches) {
    JACKPINE_RETURN_IF_ERROR(TickRow(exec));
    Row row;
    row.reserve(plan.outputs.size());
    for (const auto& out : plan.outputs) {
      JACKPINE_ASSIGN_OR_RETURN(Value v, EvalBound(out.expr, m, plan.ctx));
      row.push_back(std::move(v));
    }
    if (exec != nullptr) {
      uint64_t bytes = 0;
      for (const Value& v : row) bytes += v.ApproxBytes();
      JACKPINE_RETURN_IF_ERROR(exec->ChargeBytes(bytes));
    }
    result.rows.push_back(std::move(row));
  }
  return result;
}

Result<QueryResult> ExecutePlan(const PhysicalPlan& plan, ExecStats* stats) {
  // The pipeline counts into a stack-local trace (plain increments; the
  // caller's sink may be shared across executions) and merges once at the
  // end — tracing never adds an atomic or a branch-per-row to the hot path.
  obs::QueryTrace local;
  Result<QueryResult> result = ExecutePlanImpl(plan, stats, &local);
  if (result.ok()) {
    local.rows_returned = result->rows.size();
    result->rows_examined = local.rows_examined;
  }
  ExecContext* exec = plan.ctx.exec;
  if (exec != nullptr && exec->trace() != nullptr) *exec->trace() += local;
  return result;
}

}  // namespace jackpine::engine
