#include "engine/sql_lexer.h"

#include <cctype>

#include "common/string_util.h"

namespace jackpine::engine {

bool Token::IsWord(std::string_view word) const {
  return kind == TokenKind::kIdentifier && EqualsIgnoreCase(text, word);
}

Result<std::vector<Token>> Tokenize(std::string_view sql) {
  std::vector<Token> out;
  size_t i = 0;
  const size_t n = sql.size();
  while (i < n) {
    const char c = sql[i];
    if (std::isspace(static_cast<unsigned char>(c))) {
      ++i;
      continue;
    }
    // Line comments.
    if (c == '-' && i + 1 < n && sql[i + 1] == '-') {
      while (i < n && sql[i] != '\n') ++i;
      continue;
    }
    // Block comments (non-nesting). An unterminated comment is a lex error:
    // silently swallowing the tail would turn a typo into a shorter query.
    if (c == '/' && i + 1 < n && sql[i + 1] == '*') {
      const size_t open = i;
      i += 2;
      while (i + 1 < n && !(sql[i] == '*' && sql[i + 1] == '/')) ++i;
      if (i + 1 >= n) {
        return Status::InvalidArgument(
            StrFormat("unterminated /* comment at offset %zu", open));
      }
      i += 2;
      continue;
    }
    const size_t start = i;
    if (std::isalpha(static_cast<unsigned char>(c)) || c == '_') {
      while (i < n && (std::isalnum(static_cast<unsigned char>(sql[i])) ||
                       sql[i] == '_')) {
        ++i;
      }
      out.push_back(
          {TokenKind::kIdentifier, std::string(sql.substr(start, i - start)),
           start});
      continue;
    }
    if (std::isdigit(static_cast<unsigned char>(c)) ||
        (c == '.' && i + 1 < n &&
         std::isdigit(static_cast<unsigned char>(sql[i + 1])))) {
      bool seen_dot = false;
      bool seen_exp = false;
      while (i < n) {
        const char d = sql[i];
        if (std::isdigit(static_cast<unsigned char>(d))) {
          ++i;
        } else if (d == '.' && !seen_dot && !seen_exp) {
          seen_dot = true;
          ++i;
        } else if ((d == 'e' || d == 'E') && !seen_exp) {
          seen_exp = true;
          ++i;
          if (i < n && (sql[i] == '+' || sql[i] == '-')) ++i;
        } else {
          break;
        }
      }
      out.push_back(
          {TokenKind::kNumber, std::string(sql.substr(start, i - start)),
           start});
      continue;
    }
    if (c == '\'') {
      std::string text;
      ++i;
      bool closed = false;
      while (i < n) {
        if (sql[i] == '\'') {
          if (i + 1 < n && sql[i + 1] == '\'') {  // escaped quote
            text.push_back('\'');
            i += 2;
            continue;
          }
          closed = true;
          ++i;
          break;
        }
        text.push_back(sql[i]);
        ++i;
      }
      if (!closed) {
        return Status::ParseError(
            StrFormat("unterminated string literal at offset %zu", start));
      }
      out.push_back({TokenKind::kString, std::move(text), start});
      continue;
    }
    // Two-character operators first.
    if (i + 1 < n) {
      const std::string_view two = sql.substr(i, 2);
      if (two == "<=" || two == ">=" || two == "<>" || two == "!=" ||
          two == "||") {
        out.push_back({TokenKind::kSymbol, std::string(two), start});
        i += 2;
        continue;
      }
    }
    static constexpr std::string_view kSingles = "(),.*=<>+-/;%";
    if (kSingles.find(c) != std::string_view::npos) {
      out.push_back({TokenKind::kSymbol, std::string(1, c), start});
      ++i;
      continue;
    }
    return Status::ParseError(
        StrFormat("unexpected character '%c' at offset %zu", c, start));
  }
  out.push_back({TokenKind::kEnd, "", n});
  return out;
}

}  // namespace jackpine::engine
