// A pinedb database instance: catalog + configuration + SQL entry point.
//
// One Database object is one "system under test" in the benchmark: its
// options fix the spatial index structure and the predicate evaluation
// semantics, which are the axes along which the paper's three DBMSs differ.

#ifndef JACKPINE_ENGINE_DATABASE_H_
#define JACKPINE_ENGINE_DATABASE_H_

#include <string>
#include <string_view>

#include "engine/catalog.h"
#include "engine/executor.h"

namespace jackpine::obs {
class Counter;
class Histogram;
}  // namespace jackpine::obs

namespace jackpine::engine {

struct DatabaseOptions {
  std::string name = "pine";
  index::IndexKind index_kind = index::IndexKind::kRtree;
  topo::PredicateMode predicate_mode = topo::PredicateMode::kExact;
  // When true, spatial indexes are built with one-at-a-time insertion
  // instead of bulk loading (the E6 fill-policy ablation).
  bool incremental_index_build = false;
  // When false, constant expressions re-evaluate per row instead of being
  // folded at bind time (the E9 prepared-literals ablation).
  bool fold_constants = true;
};

class Database {
 public:
  explicit Database(DatabaseOptions options = {});

  const DatabaseOptions& options() const { return options_; }
  Catalog& catalog() { return catalog_; }
  const Catalog& catalog() const { return catalog_; }

  // Parses and executes one statement. DDL/DML return an empty result with a
  // "rows_affected" column. `exec` (optional, non-owning) carries the
  // deadline / cancellation / budget guard; SELECT row loops check it at row
  // granularity and fail with kDeadlineExceeded / kCancelled /
  // kResourceExhausted instead of running unbounded.
  Result<QueryResult> Execute(std::string_view sql,
                              ExecContext* exec = nullptr);

  // Statistics accumulated since the last ResetStats().
  const ExecStats& stats() const { return stats_; }
  void ResetStats() { stats_.Reset(); }

 private:
  Result<QueryResult> ExecuteSelect(const SelectStatement& stmt,
                                    ExecContext* exec, double parse_s);
  Result<QueryResult> ExecuteExplainAnalyze(const ExplainStatement& stmt,
                                            ExecContext* exec, double parse_s);
  Result<QueryResult> ExecuteCreateTable(const CreateTableStatement& stmt);
  Result<QueryResult> ExecuteInsert(const InsertStatement& stmt);
  Result<QueryResult> ExecuteCreateIndex(const CreateIndexStatement& stmt);
  Result<QueryResult> ExecuteDropIndex(const DropIndexStatement& stmt);

  DatabaseOptions options_;
  Catalog catalog_;
  ExecStats stats_;
  // Process-wide registry instruments (obs/metrics.h), resolved once in the
  // constructor; never null.
  obs::Counter* queries_metric_ = nullptr;
  obs::Histogram* latency_metric_ = nullptr;
};

}  // namespace jackpine::engine

#endif  // JACKPINE_ENGINE_DATABASE_H_
