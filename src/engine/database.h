// A pinedb database instance: catalog + configuration + SQL entry point.
//
// One Database object is one "system under test" in the benchmark: its
// options fix the spatial index structure and the predicate evaluation
// semantics, which are the axes along which the paper's three DBMSs differ.

#ifndef JACKPINE_ENGINE_DATABASE_H_
#define JACKPINE_ENGINE_DATABASE_H_

#include <mutex>
#include <string>
#include <string_view>
#include <vector>

#include "engine/catalog.h"
#include "engine/executor.h"

namespace jackpine::obs {
class Counter;
class Histogram;
}  // namespace jackpine::obs

namespace jackpine::engine {

struct DatabaseOptions {
  std::string name = "pine";
  index::IndexKind index_kind = index::IndexKind::kRtree;
  topo::PredicateMode predicate_mode = topo::PredicateMode::kExact;
  // When true, spatial indexes are built with one-at-a-time insertion
  // instead of bulk loading (the E6 fill-policy ablation).
  bool incremental_index_build = false;
  // When false, constant expressions re-evaluate per row instead of being
  // folded at bind time (the E9 prepared-literals ablation).
  bool fold_constants = true;
};

// The durability seam (implemented by storage::StorageManager): the engine
// calls the matching On* hook for every mutating statement *before* applying
// it in memory — write-ahead order — and WaitDurable with the returned
// ticket after the apply, so the statement only acks once the mutation is
// on disk. The engine holds mutation_mutex() from just before the hook
// until the in-memory apply completes; the observer takes the same mutex
// while checkpointing, which is what keeps a snapshot from capturing a
// logged-but-unapplied (or applied-but-about-to-be-truncated) statement.
// Hooks run with statement arguments already validated, so a hook error
// (e.g. the log device is full) fails the statement before any in-memory
// change. A null observer (the default) makes all of this vanish: pinedb
// without --data-dir is the same in-memory engine as before.
class MutationObserver {
 public:
  virtual ~MutationObserver() = default;

  // Serialises mutating statements against each other and against
  // checkpoints. Held by the engine across hook + apply.
  virtual std::mutex& mutation_mutex() = 0;

  // Each returns a durability ticket for WaitDurable (0 = already durable).
  virtual Result<uint64_t> OnCreateTable(const std::string& name,
                                         const Schema& schema) = 0;
  virtual Result<uint64_t> OnInsert(const std::string& table,
                                    const std::vector<Row>& rows) = 0;
  virtual Result<uint64_t> OnCreateIndex(const std::string& table,
                                         size_t column) = 0;
  virtual Result<uint64_t> OnDropIndex(const std::string& table,
                                       size_t column) = 0;

  // Blocks until the ticket's mutation is durable (group-commit fsync or a
  // covering checkpoint). Called after mutation_mutex() is released so
  // concurrent statements share one fsync.
  //
  // Durability gray zone: a WaitDurable error means "not known durable",
  // NOT "not applied". The mutation was already logged and applied in
  // memory (the hook succeeded), so reads observe it even though the
  // client got an error, and a later successful checkpoint — which
  // snapshots the in-memory state and clears the storage fail-stop latch —
  // quietly makes it durable after all. This is the same ambiguity as a
  // commit whose ack is lost in flight: the statement is not rolled back,
  // because in-memory state must keep matching the log for the checkpoint
  // un-latch path to be sound (DESIGN.md "Fail-stop and un-latching").
  // Clients treating the error as "not applied" must re-check, not retry
  // blindly.
  virtual Status WaitDurable(uint64_t ticket) = 0;

  // Called after the in-memory apply succeeds, still under
  // mutation_mutex(). Together with the pre-apply hook this brackets the
  // apply window, which is what lets an observer maintain seqlock-style
  // table versions (odd while a mutation is in flight, even when settled —
  // see cache::TableVersions). Default no-op so durability-only observers
  // are unaffected. Not called when the apply itself fails, leaving the
  // bracket open — observers must treat a never-closed bracket as "table
  // state unknown", never as "unchanged".
  virtual void OnApplied(const std::string& table) { (void)table; }
};

class Database {
 public:
  explicit Database(DatabaseOptions options = {});

  const DatabaseOptions& options() const { return options_; }
  Catalog& catalog() { return catalog_; }
  const Catalog& catalog() const { return catalog_; }

  // Parses and executes one statement. DDL/DML return an empty result with a
  // "rows_affected" column. `exec` (optional, non-owning) carries the
  // deadline / cancellation / budget guard; SELECT row loops check it at row
  // granularity and fail with kDeadlineExceeded / kCancelled /
  // kResourceExhausted instead of running unbounded.
  Result<QueryResult> Execute(std::string_view sql,
                              ExecContext* exec = nullptr);

  // Statistics accumulated since the last ResetStats().
  const ExecStats& stats() const { return stats_; }
  void ResetStats() { stats_.Reset(); }

  // Attaches (or detaches, with nullptr) the durability observer. The
  // observer must outlive every Execute() call; recovery replay attaches it
  // only after the replayed state is rebuilt, so replay never re-logs.
  void set_mutation_observer(MutationObserver* observer) {
    observer_ = observer;
  }
  MutationObserver* mutation_observer() const { return observer_; }

 private:
  Result<QueryResult> ExecuteSelect(const SelectStatement& stmt,
                                    ExecContext* exec, double parse_s);
  Result<QueryResult> ExecuteExplainAnalyze(const ExplainStatement& stmt,
                                            ExecContext* exec, double parse_s);
  Result<QueryResult> ExecuteCreateTable(const CreateTableStatement& stmt);
  Result<QueryResult> ExecuteInsert(const InsertStatement& stmt);
  Result<QueryResult> ExecuteCreateIndex(const CreateIndexStatement& stmt);
  Result<QueryResult> ExecuteDropIndex(const DropIndexStatement& stmt);

  DatabaseOptions options_;
  Catalog catalog_;
  ExecStats stats_;
  MutationObserver* observer_ = nullptr;  // non-owning; null = no durability
  // Process-wide registry instruments (obs/metrics.h), resolved once in the
  // constructor; never null.
  obs::Counter* queries_metric_ = nullptr;
  obs::Histogram* latency_metric_ = nullptr;
};

}  // namespace jackpine::engine

#endif  // JACKPINE_ENGINE_DATABASE_H_
