#include "engine/functions.h"

#include <algorithm>
#include <cmath>
#include <map>

#include "algo/affine.h"
#include "algo/buffer.h"
#include "algo/convex_hull.h"
#include "algo/distance.h"
#include "algo/linear_reference.h"
#include "algo/measures.h"
#include "algo/overlay.h"
#include "algo/simplify.h"
#include "common/string_util.h"
#include "geom/geojson.h"
#include "geom/wkb.h"
#include "geom/wkt_reader.h"
#include "topo/relate.h"

namespace jackpine::engine {

namespace {

using geom::Geometry;

Status ArgError(const char* fn, const char* what) {
  return Status::InvalidArgument(StrFormat("%s: %s", fn, what));
}

// Any-NULL-argument-in, NULL-out, matching SQL semantics for the ST_ suite.
bool AnyNull(const std::vector<Value>& args) {
  for (const Value& v : args) {
    if (v.is_null()) return true;
  }
  return false;
}

Result<Value> GeomFromText(const std::vector<Value>& args, const EvalContext&) {
  if (args[0].type() != DataType::kString) {
    return ArgError("ST_GeomFromText", "expects a WKT string");
  }
  JACKPINE_ASSIGN_OR_RETURN(Geometry g,
                            geom::GeometryFromWkt(args[0].string_value()));
  return Value::Geo(std::move(g));
}

// Registers the whole function table once.
std::map<std::string, FunctionDef> BuildRegistry() {
  std::map<std::string, FunctionDef> reg;
  auto add = [&reg](const char* name, int min_args, int max_args, ScalarFn fn,
                    bool indexable = false) {
    FunctionDef def;
    def.name = name;
    def.min_args = min_args;
    def.max_args = max_args;
    def.indexable_predicate = indexable;
    def.fn = std::move(fn);
    reg[ToLowerAscii(name)] = std::move(def);
  };

  // --- Construction ---------------------------------------------------
  add("ST_GeomFromText", 1, 2,
      [](const std::vector<Value>& args, const EvalContext& ctx) {
        if (AnyNull(args)) return Result<Value>(Value::MakeNull());
        return GeomFromText(args, ctx);  // arg 2 (SRID) accepted and ignored
      });
  add("ST_MakePoint", 2, 2,
      [](const std::vector<Value>& args, const EvalContext&) -> Result<Value> {
        if (AnyNull(args)) return Value::MakeNull();
        JACKPINE_ASSIGN_OR_RETURN(double x, args[0].AsDouble());
        JACKPINE_ASSIGN_OR_RETURN(double y, args[1].AsDouble());
        return Value::Geo(Geometry::MakePoint(x, y));
      });
  add("ST_MakeEnvelope", 4, 4,
      [](const std::vector<Value>& args, const EvalContext&) -> Result<Value> {
        if (AnyNull(args)) return Value::MakeNull();
        JACKPINE_ASSIGN_OR_RETURN(double x0, args[0].AsDouble());
        JACKPINE_ASSIGN_OR_RETURN(double y0, args[1].AsDouble());
        JACKPINE_ASSIGN_OR_RETURN(double x1, args[2].AsDouble());
        JACKPINE_ASSIGN_OR_RETURN(double y1, args[3].AsDouble());
        return Value::Geo(
            Geometry::MakeRectangle(geom::Envelope(x0, y0, x1, y1)));
      });

  // --- Output / accessors ----------------------------------------------
  add("ST_AsText", 1, 1,
      [](const std::vector<Value>& args, const EvalContext&) -> Result<Value> {
        if (AnyNull(args)) return Value::MakeNull();
        JACKPINE_ASSIGN_OR_RETURN(Geometry g, args[0].AsGeometry());
        return Value::Str(g.ToWkt());
      });
  add("ST_AsBinary", 1, 1,
      [](const std::vector<Value>& args, const EvalContext&) -> Result<Value> {
        if (AnyNull(args)) return Value::MakeNull();
        JACKPINE_ASSIGN_OR_RETURN(Geometry g, args[0].AsGeometry());
        return Value::Str(geom::ToWkb(g));
      });
  add("ST_AsGeoJSON", 1, 2,
      [](const std::vector<Value>& args, const EvalContext&) -> Result<Value> {
        if (AnyNull(args)) return Value::MakeNull();
        JACKPINE_ASSIGN_OR_RETURN(Geometry g, args[0].AsGeometry());
        int precision = 9;
        if (args.size() == 2) {
          JACKPINE_ASSIGN_OR_RETURN(int64_t p, args[1].AsInt64());
          precision = static_cast<int>(p);
        }
        return Value::Str(geom::ToGeoJson(g, precision));
      });
  add("ST_Boundary", 1, 1,
      [](const std::vector<Value>& args, const EvalContext&) -> Result<Value> {
        if (AnyNull(args)) return Value::MakeNull();
        JACKPINE_ASSIGN_OR_RETURN(Geometry g, args[0].AsGeometry());
        return Value::Geo(topo::Boundary(g));
      });
  add("ST_NumGeometries", 1, 1,
      [](const std::vector<Value>& args, const EvalContext&) -> Result<Value> {
        if (AnyNull(args)) return Value::MakeNull();
        JACKPINE_ASSIGN_OR_RETURN(Geometry g, args[0].AsGeometry());
        if (g.IsEmpty()) return Value::Int(0);
        return Value::Int(
            g.IsSimpleType() ? 1 : static_cast<int64_t>(g.Parts().size()));
      });
  add("ST_StartPoint", 1, 1,
      [](const std::vector<Value>& args, const EvalContext&) -> Result<Value> {
        if (AnyNull(args)) return Value::MakeNull();
        JACKPINE_ASSIGN_OR_RETURN(Geometry g, args[0].AsGeometry());
        if (g.type() != geom::GeometryType::kLineString || g.IsEmpty()) {
          return Value::MakeNull();
        }
        return Value::Geo(Geometry::MakePoint(g.AsLineString().front()));
      });
  add("ST_EndPoint", 1, 1,
      [](const std::vector<Value>& args, const EvalContext&) -> Result<Value> {
        if (AnyNull(args)) return Value::MakeNull();
        JACKPINE_ASSIGN_OR_RETURN(Geometry g, args[0].AsGeometry());
        if (g.type() != geom::GeometryType::kLineString || g.IsEmpty()) {
          return Value::MakeNull();
        }
        return Value::Geo(Geometry::MakePoint(g.AsLineString().back()));
      });
  add("ST_PointN", 2, 2,
      [](const std::vector<Value>& args, const EvalContext&) -> Result<Value> {
        if (AnyNull(args)) return Value::MakeNull();
        JACKPINE_ASSIGN_OR_RETURN(Geometry g, args[0].AsGeometry());
        JACKPINE_ASSIGN_OR_RETURN(int64_t n, args[1].AsInt64());
        if (g.type() != geom::GeometryType::kLineString || g.IsEmpty()) {
          return Value::MakeNull();
        }
        const auto& pts = g.AsLineString();
        if (n < 1 || static_cast<size_t>(n) > pts.size()) {
          return Value::MakeNull();  // 1-based, PostGIS convention
        }
        return Value::Geo(
            Geometry::MakePoint(pts[static_cast<size_t>(n - 1)]));
      });
  add("ST_Reverse", 1, 1,
      [](const std::vector<Value>& args, const EvalContext&) -> Result<Value> {
        if (AnyNull(args)) return Value::MakeNull();
        JACKPINE_ASSIGN_OR_RETURN(Geometry g, args[0].AsGeometry());
        if (g.type() != geom::GeometryType::kLineString || g.IsEmpty()) {
          return Value::Geo(g);  // reversal only affects lines here
        }
        std::vector<geom::Coord> pts = g.AsLineString();
        std::reverse(pts.begin(), pts.end());
        JACKPINE_ASSIGN_OR_RETURN(Geometry line,
                                  Geometry::MakeLineString(std::move(pts)));
        return Value::Geo(std::move(line));
      });
  add("ST_GeometryType", 1, 1,
      [](const std::vector<Value>& args, const EvalContext&) -> Result<Value> {
        if (AnyNull(args)) return Value::MakeNull();
        JACKPINE_ASSIGN_OR_RETURN(Geometry g, args[0].AsGeometry());
        return Value::Str(std::string("ST_") +
                          geom::GeometryTypeName(g.type()));
      });
  add("ST_Dimension", 1, 1,
      [](const std::vector<Value>& args, const EvalContext&) -> Result<Value> {
        if (AnyNull(args)) return Value::MakeNull();
        JACKPINE_ASSIGN_OR_RETURN(Geometry g, args[0].AsGeometry());
        return Value::Int(g.Dimension());
      });
  add("ST_NumPoints", 1, 1,
      [](const std::vector<Value>& args, const EvalContext&) -> Result<Value> {
        if (AnyNull(args)) return Value::MakeNull();
        JACKPINE_ASSIGN_OR_RETURN(Geometry g, args[0].AsGeometry());
        return Value::Int(static_cast<int64_t>(g.NumPoints()));
      });
  add("ST_IsEmpty", 1, 1,
      [](const std::vector<Value>& args, const EvalContext&) -> Result<Value> {
        if (AnyNull(args)) return Value::MakeNull();
        JACKPINE_ASSIGN_OR_RETURN(Geometry g, args[0].AsGeometry());
        return Value::Bool(g.IsEmpty());
      });
  add("ST_X", 1, 1,
      [](const std::vector<Value>& args, const EvalContext&) -> Result<Value> {
        if (AnyNull(args)) return Value::MakeNull();
        JACKPINE_ASSIGN_OR_RETURN(Geometry g, args[0].AsGeometry());
        if (g.type() != geom::GeometryType::kPoint || g.IsEmpty()) {
          return ArgError("ST_X", "expects a non-empty POINT");
        }
        return Value::Real(g.AsPoint().x);
      });
  add("ST_Y", 1, 1,
      [](const std::vector<Value>& args, const EvalContext&) -> Result<Value> {
        if (AnyNull(args)) return Value::MakeNull();
        JACKPINE_ASSIGN_OR_RETURN(Geometry g, args[0].AsGeometry());
        if (g.type() != geom::GeometryType::kPoint || g.IsEmpty()) {
          return ArgError("ST_Y", "expects a non-empty POINT");
        }
        return Value::Real(g.AsPoint().y);
      });

  // --- Measures ---------------------------------------------------------
  add("ST_Area", 1, 1,
      [](const std::vector<Value>& args, const EvalContext&) -> Result<Value> {
        if (AnyNull(args)) return Value::MakeNull();
        JACKPINE_ASSIGN_OR_RETURN(Geometry g, args[0].AsGeometry());
        return Value::Real(algo::Area(g));
      });
  add("ST_Length", 1, 1,
      [](const std::vector<Value>& args, const EvalContext&) -> Result<Value> {
        if (AnyNull(args)) return Value::MakeNull();
        JACKPINE_ASSIGN_OR_RETURN(Geometry g, args[0].AsGeometry());
        return Value::Real(algo::Length(g));
      });
  add("ST_Perimeter", 1, 1,
      [](const std::vector<Value>& args, const EvalContext&) -> Result<Value> {
        if (AnyNull(args)) return Value::MakeNull();
        JACKPINE_ASSIGN_OR_RETURN(Geometry g, args[0].AsGeometry());
        return Value::Real(algo::Perimeter(g));
      });
  add("ST_Distance", 2, 2,
      [](const std::vector<Value>& args, const EvalContext&) -> Result<Value> {
        if (AnyNull(args)) return Value::MakeNull();
        JACKPINE_ASSIGN_OR_RETURN(Geometry a, args[0].AsGeometry());
        JACKPINE_ASSIGN_OR_RETURN(Geometry b, args[1].AsGeometry());
        const double d = algo::Distance(a, b);
        if (!std::isfinite(d)) return Value::MakeNull();
        return Value::Real(d);
      });
  add("ST_DWithin", 3, 3,
      [](const std::vector<Value>& args,
         const EvalContext& ctx) -> Result<Value> {
        if (AnyNull(args)) return Value::MakeNull();
        JACKPINE_ASSIGN_OR_RETURN(Geometry a, args[0].AsGeometry());
        JACKPINE_ASSIGN_OR_RETURN(Geometry b, args[1].AsGeometry());
        JACKPINE_ASSIGN_OR_RETURN(double d, args[2].AsDouble());
        if (ctx.predicate_mode == topo::PredicateMode::kMbrOnly) {
          return Value::Bool(a.envelope().DistanceTo(b.envelope()) <= d);
        }
        return Value::Bool(algo::WithinDistance(a, b, d));
      },
      /*indexable=*/true);

  // --- Topological predicates -------------------------------------------
  auto add_predicate = [&add](const char* name, topo::PredicateKind kind) {
    add(name, 2, 2,
        [kind](const std::vector<Value>& args,
               const EvalContext& ctx) -> Result<Value> {
          if (AnyNull(args)) return Value::MakeNull();
          JACKPINE_ASSIGN_OR_RETURN(Geometry a, args[0].AsGeometry());
          JACKPINE_ASSIGN_OR_RETURN(Geometry b, args[1].AsGeometry());
          return Value::Bool(
              topo::EvalPredicate(kind, a, b, ctx.predicate_mode));
        },
        /*indexable=*/kind != topo::PredicateKind::kDisjoint);
  };
  add_predicate("ST_Equals", topo::PredicateKind::kEquals);
  add_predicate("ST_Disjoint", topo::PredicateKind::kDisjoint);
  add_predicate("ST_Intersects", topo::PredicateKind::kIntersects);
  add_predicate("ST_Touches", topo::PredicateKind::kTouches);
  add_predicate("ST_Crosses", topo::PredicateKind::kCrosses);
  add_predicate("ST_Within", topo::PredicateKind::kWithin);
  add_predicate("ST_Contains", topo::PredicateKind::kContains);
  add_predicate("ST_Overlaps", topo::PredicateKind::kOverlaps);
  add_predicate("ST_Covers", topo::PredicateKind::kCovers);
  add_predicate("ST_CoveredBy", topo::PredicateKind::kCoveredBy);

  add("ST_Relate", 3, 3,
      [](const std::vector<Value>& args, const EvalContext&) -> Result<Value> {
        if (AnyNull(args)) return Value::MakeNull();
        JACKPINE_ASSIGN_OR_RETURN(Geometry a, args[0].AsGeometry());
        JACKPINE_ASSIGN_OR_RETURN(Geometry b, args[1].AsGeometry());
        if (args[2].type() != DataType::kString) {
          return ArgError("ST_Relate", "third argument must be a pattern");
        }
        return Value::Bool(
            topo::RelateMatches(a, b, args[2].string_value()));
      });

  // --- Spatial analysis ---------------------------------------------------
  add("ST_Envelope", 1, 1,
      [](const std::vector<Value>& args, const EvalContext&) -> Result<Value> {
        if (AnyNull(args)) return Value::MakeNull();
        JACKPINE_ASSIGN_OR_RETURN(Geometry g, args[0].AsGeometry());
        return Value::Geo(Geometry::MakeRectangle(g.envelope()));
      });
  add("ST_Centroid", 1, 1,
      [](const std::vector<Value>& args, const EvalContext&) -> Result<Value> {
        if (AnyNull(args)) return Value::MakeNull();
        JACKPINE_ASSIGN_OR_RETURN(Geometry g, args[0].AsGeometry());
        return Value::Geo(algo::Centroid(g));
      });
  add("ST_ConvexHull", 1, 1,
      [](const std::vector<Value>& args, const EvalContext&) -> Result<Value> {
        if (AnyNull(args)) return Value::MakeNull();
        JACKPINE_ASSIGN_OR_RETURN(Geometry g, args[0].AsGeometry());
        return Value::Geo(algo::ConvexHull(g));
      });
  add("ST_Buffer", 2, 3,
      [](const std::vector<Value>& args, const EvalContext&) -> Result<Value> {
        if (AnyNull(args)) return Value::MakeNull();
        JACKPINE_ASSIGN_OR_RETURN(Geometry g, args[0].AsGeometry());
        JACKPINE_ASSIGN_OR_RETURN(double r, args[1].AsDouble());
        int quad_segs = 8;
        if (args.size() == 3) {
          JACKPINE_ASSIGN_OR_RETURN(int64_t qs, args[2].AsInt64());
          quad_segs = static_cast<int>(qs);
        }
        JACKPINE_ASSIGN_OR_RETURN(Geometry out,
                                  algo::Buffer(g, r, quad_segs));
        return Value::Geo(std::move(out));
      });
  add("ST_Simplify", 2, 2,
      [](const std::vector<Value>& args, const EvalContext&) -> Result<Value> {
        if (AnyNull(args)) return Value::MakeNull();
        JACKPINE_ASSIGN_OR_RETURN(Geometry g, args[0].AsGeometry());
        JACKPINE_ASSIGN_OR_RETURN(double tol, args[1].AsDouble());
        return Value::Geo(algo::Simplify(g, tol));
      });

  auto add_overlay = [&add](const char* name, algo::OverlayOp op) {
    add(name, 2, 2,
        [op](const std::vector<Value>& args,
             const EvalContext&) -> Result<Value> {
          if (AnyNull(args)) return Value::MakeNull();
          JACKPINE_ASSIGN_OR_RETURN(Geometry a, args[0].AsGeometry());
          JACKPINE_ASSIGN_OR_RETURN(Geometry b, args[1].AsGeometry());
          JACKPINE_ASSIGN_OR_RETURN(Geometry out, algo::Overlay(a, b, op));
          return Value::Geo(std::move(out));
        });
  };
  add_overlay("ST_Intersection", algo::OverlayOp::kIntersection);
  add_overlay("ST_Union", algo::OverlayOp::kUnion);
  add_overlay("ST_Difference", algo::OverlayOp::kDifference);
  add_overlay("ST_SymDifference", algo::OverlayOp::kSymDifference);

  // --- Affine transforms and direction --------------------------------------
  add("ST_Translate", 3, 3,
      [](const std::vector<Value>& args, const EvalContext&) -> Result<Value> {
        if (AnyNull(args)) return Value::MakeNull();
        JACKPINE_ASSIGN_OR_RETURN(Geometry g, args[0].AsGeometry());
        JACKPINE_ASSIGN_OR_RETURN(double tx, args[1].AsDouble());
        JACKPINE_ASSIGN_OR_RETURN(double ty, args[2].AsDouble());
        return Value::Geo(algo::Transform(
            g, algo::AffineTransform::Translation(tx, ty)));
      });
  add("ST_Scale", 3, 3,
      [](const std::vector<Value>& args, const EvalContext&) -> Result<Value> {
        if (AnyNull(args)) return Value::MakeNull();
        JACKPINE_ASSIGN_OR_RETURN(Geometry g, args[0].AsGeometry());
        JACKPINE_ASSIGN_OR_RETURN(double sx, args[1].AsDouble());
        JACKPINE_ASSIGN_OR_RETURN(double sy, args[2].AsDouble());
        return Value::Geo(
            algo::Transform(g, algo::AffineTransform::Scaling(sx, sy)));
      });
  add("ST_Rotate", 2, 2,
      [](const std::vector<Value>& args, const EvalContext&) -> Result<Value> {
        if (AnyNull(args)) return Value::MakeNull();
        JACKPINE_ASSIGN_OR_RETURN(Geometry g, args[0].AsGeometry());
        JACKPINE_ASSIGN_OR_RETURN(double radians, args[1].AsDouble());
        return Value::Geo(
            algo::Transform(g, algo::AffineTransform::Rotation(radians)));
      });
  add("ST_Azimuth", 2, 2,
      [](const std::vector<Value>& args, const EvalContext&) -> Result<Value> {
        if (AnyNull(args)) return Value::MakeNull();
        JACKPINE_ASSIGN_OR_RETURN(Geometry a, args[0].AsGeometry());
        JACKPINE_ASSIGN_OR_RETURN(Geometry b, args[1].AsGeometry());
        if (a.type() != geom::GeometryType::kPoint || a.IsEmpty() ||
            b.type() != geom::GeometryType::kPoint || b.IsEmpty()) {
          return ArgError("ST_Azimuth", "expects two non-empty POINTs");
        }
        auto az = algo::Azimuth(a.AsPoint(), b.AsPoint());
        if (!az.ok()) return Value::MakeNull();  // coincident points
        return Value::Real(*az);
      });

  // --- Linear referencing -------------------------------------------------
  add("ST_LineInterpolatePoint", 2, 2,
      [](const std::vector<Value>& args, const EvalContext&) -> Result<Value> {
        if (AnyNull(args)) return Value::MakeNull();
        JACKPINE_ASSIGN_OR_RETURN(Geometry g, args[0].AsGeometry());
        JACKPINE_ASSIGN_OR_RETURN(double f, args[1].AsDouble());
        JACKPINE_ASSIGN_OR_RETURN(Geometry out,
                                  algo::LineInterpolatePoint(g, f));
        return Value::Geo(std::move(out));
      });
  add("ST_LineLocatePoint", 2, 2,
      [](const std::vector<Value>& args, const EvalContext&) -> Result<Value> {
        if (AnyNull(args)) return Value::MakeNull();
        JACKPINE_ASSIGN_OR_RETURN(Geometry line, args[0].AsGeometry());
        JACKPINE_ASSIGN_OR_RETURN(Geometry pt, args[1].AsGeometry());
        if (pt.type() != geom::GeometryType::kPoint || pt.IsEmpty()) {
          return ArgError("ST_LineLocatePoint", "second arg must be POINT");
        }
        JACKPINE_ASSIGN_OR_RETURN(double f,
                                  algo::LineLocatePoint(line, pt.AsPoint()));
        return Value::Real(f);
      });
  add("ST_ClosestPoint", 2, 2,
      [](const std::vector<Value>& args, const EvalContext&) -> Result<Value> {
        if (AnyNull(args)) return Value::MakeNull();
        JACKPINE_ASSIGN_OR_RETURN(Geometry g, args[0].AsGeometry());
        JACKPINE_ASSIGN_OR_RETURN(Geometry pt, args[1].AsGeometry());
        if (pt.type() != geom::GeometryType::kPoint || pt.IsEmpty()) {
          return ArgError("ST_ClosestPoint", "second arg must be POINT");
        }
        return Value::Geo(algo::ClosestPoint(g, pt.AsPoint()));
      });
  add("ST_LineSubstring", 3, 3,
      [](const std::vector<Value>& args, const EvalContext&) -> Result<Value> {
        if (AnyNull(args)) return Value::MakeNull();
        JACKPINE_ASSIGN_OR_RETURN(Geometry g, args[0].AsGeometry());
        JACKPINE_ASSIGN_OR_RETURN(double f0, args[1].AsDouble());
        JACKPINE_ASSIGN_OR_RETURN(double f1, args[2].AsDouble());
        JACKPINE_ASSIGN_OR_RETURN(Geometry out,
                                  algo::LineSubstring(g, f0, f1));
        return Value::Geo(std::move(out));
      });

  // --- Generic scalar helpers ---------------------------------------------
  add("ABS", 1, 1,
      [](const std::vector<Value>& args, const EvalContext&) -> Result<Value> {
        if (AnyNull(args)) return Value::MakeNull();
        if (args[0].type() == DataType::kInt64) {
          return Value::Int(std::llabs(args[0].int_value()));
        }
        JACKPINE_ASSIGN_OR_RETURN(double d, args[0].AsDouble());
        return Value::Real(std::abs(d));
      });
  add("SQRT", 1, 1,
      [](const std::vector<Value>& args, const EvalContext&) -> Result<Value> {
        if (AnyNull(args)) return Value::MakeNull();
        JACKPINE_ASSIGN_OR_RETURN(double d, args[0].AsDouble());
        return Value::Real(std::sqrt(d));
      });
  add("LOWER", 1, 1,
      [](const std::vector<Value>& args, const EvalContext&) -> Result<Value> {
        if (AnyNull(args)) return Value::MakeNull();
        if (args[0].type() != DataType::kString) {
          return ArgError("LOWER", "expects a string");
        }
        return Value::Str(ToLowerAscii(args[0].string_value()));
      });
  add("UPPER", 1, 1,
      [](const std::vector<Value>& args, const EvalContext&) -> Result<Value> {
        if (AnyNull(args)) return Value::MakeNull();
        if (args[0].type() != DataType::kString) {
          return ArgError("UPPER", "expects a string");
        }
        return Value::Str(ToUpperAscii(args[0].string_value()));
      });

  return reg;
}

const std::map<std::string, FunctionDef>& Registry() {
  static const std::map<std::string, FunctionDef>& reg =
      *new std::map<std::string, FunctionDef>(BuildRegistry());
  return reg;
}

}  // namespace

const FunctionDef* FindFunction(std::string_view name) {
  const auto& reg = Registry();
  auto it = reg.find(ToLowerAscii(name));
  return it == reg.end() ? nullptr : &it->second;
}

std::vector<std::string> AllFunctionNames() {
  std::vector<std::string> names;
  for (const auto& [key, def] : Registry()) names.push_back(def.name);
  return names;
}

bool IsAggregateFunction(std::string_view name) {
  return EqualsIgnoreCase(name, "COUNT") || EqualsIgnoreCase(name, "SUM") ||
         EqualsIgnoreCase(name, "AVG") || EqualsIgnoreCase(name, "MIN") ||
         EqualsIgnoreCase(name, "MAX");
}

}  // namespace jackpine::engine
