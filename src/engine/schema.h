// Table schemas.

#ifndef JACKPINE_ENGINE_SCHEMA_H_
#define JACKPINE_ENGINE_SCHEMA_H_

#include <optional>
#include <string>
#include <vector>

#include "common/status.h"
#include "engine/value.h"

namespace jackpine::engine {

struct Column {
  std::string name;
  DataType type = DataType::kNull;
};

class Schema {
 public:
  Schema() = default;
  explicit Schema(std::vector<Column> columns);

  size_t NumColumns() const { return columns_.size(); }
  const Column& column(size_t i) const { return columns_[i]; }
  const std::vector<Column>& columns() const { return columns_; }

  // Case-insensitive lookup.
  std::optional<size_t> FindColumn(std::string_view name) const;

  // Checks that `row` matches the column count and types (NULL always fits;
  // ints widen to double columns).
  Status ValidateRow(const std::vector<Value>& row) const;

  std::string ToString() const;

 private:
  std::vector<Column> columns_;
};

// Parses "BIGINT" / "DOUBLE" / "VARCHAR" / "GEOMETRY" / "BOOL" (plus common
// aliases INT, INTEGER, TEXT, FLOAT, REAL).
Result<DataType> DataTypeFromName(std::string_view name);

}  // namespace jackpine::engine

#endif  // JACKPINE_ENGINE_SCHEMA_H_
