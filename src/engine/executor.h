// Plan execution: materialises a PhysicalPlan into a QueryResult.

#ifndef JACKPINE_ENGINE_EXECUTOR_H_
#define JACKPINE_ENGINE_EXECUTOR_H_

#include <string>
#include <vector>

#include "engine/planner.h"

namespace jackpine::engine {

struct QueryResult {
  std::vector<std::string> columns;
  std::vector<Row> rows;
  // Rows the executor materialised a view of while producing this result
  // (candidates + scanned rows), before refinement/limit. The rows-examined
  // vs rows-returned gap is the filter-and-refine overhead a client sees.
  uint64_t rows_examined = 0;

  size_t NumRows() const { return rows.size(); }

  // Order-independent 64-bit checksum of the result set, used to validate
  // that different SUTs agree (or, for pine-mbr, measurably disagree).
  uint64_t Checksum() const;

  // Aligned-text rendering of up to `max_rows` rows.
  std::string ToString(size_t max_rows = 20) const;
};

// Executes `plan`. `stats` may be nullptr.
Result<QueryResult> ExecutePlan(const PhysicalPlan& plan, ExecStats* stats);

}  // namespace jackpine::engine

#endif  // JACKPINE_ENGINE_EXECUTOR_H_
