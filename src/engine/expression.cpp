#include "engine/expression.h"

#include <cmath>

#include "common/string_util.h"

namespace jackpine::engine {

Binder::Binder(std::vector<const Table*> tables,
               std::vector<std::string> aliases)
    : tables_(std::move(tables)), aliases_(std::move(aliases)) {}

Result<BindingSlot> Binder::ResolveColumn(std::string_view qualifier,
                                          std::string_view column) const {
  BindingSlot found;
  int matches = 0;
  for (size_t t = 0; t < tables_.size(); ++t) {
    if (!qualifier.empty() && !EqualsIgnoreCase(qualifier, aliases_[t]) &&
        !EqualsIgnoreCase(qualifier, tables_[t]->name())) {
      continue;
    }
    const auto col = tables_[t]->schema().FindColumn(column);
    if (col.has_value()) {
      found = BindingSlot{t, *col};
      ++matches;
    }
  }
  if (matches == 0) {
    return Status::NotFound(StrFormat(
        "column '%s%s%s'", std::string(qualifier).c_str(),
        qualifier.empty() ? "" : ".", std::string(column).c_str()));
  }
  if (matches > 1) {
    return Status::InvalidArgument(
        StrFormat("ambiguous column '%s'", std::string(column).c_str()));
  }
  return found;
}

bool BoundExpr::IsConstant() const {
  switch (kind) {
    case Kind::kLiteral:
      return true;
    case Kind::kColumn:
    case Kind::kStar:
      return false;
    case Kind::kCall:
      if (fn == nullptr) return false;  // aggregates are not constant
      [[fallthrough]];
    case Kind::kBinary:
    case Kind::kUnary:
      for (const BoundExpr& c : children) {
        if (!c.IsConstant()) return false;
      }
      return true;
  }
  return false;
}

bool BoundExpr::ReferencesTable(size_t table_index) const {
  if (kind == Kind::kColumn) return slot.table_index == table_index;
  for (const BoundExpr& c : children) {
    if (c.ReferencesTable(table_index)) return true;
  }
  return false;
}

bool BoundExpr::ContainsAggregate() const {
  if (IsAggregate()) return true;
  for (const BoundExpr& c : children) {
    if (c.ContainsAggregate()) return true;
  }
  return false;
}

namespace {

Result<Value> EvalBinary(const BoundExpr& expr, const RowView& rows,
                         const EvalContext& ctx) {
  const BinaryOp op = expr.binary_op;

  // AND/OR use SQL three-valued logic with short-circuiting.
  if (op == BinaryOp::kAnd || op == BinaryOp::kOr) {
    JACKPINE_ASSIGN_OR_RETURN(Value lv, EvalBound(expr.children[0], rows, ctx));
    std::optional<bool> l;
    if (!lv.is_null()) {
      JACKPINE_ASSIGN_OR_RETURN(bool b, lv.AsBool());
      l = b;
    }
    if (op == BinaryOp::kAnd && l == false) return Value::Bool(false);
    if (op == BinaryOp::kOr && l == true) return Value::Bool(true);
    JACKPINE_ASSIGN_OR_RETURN(Value rv, EvalBound(expr.children[1], rows, ctx));
    std::optional<bool> r;
    if (!rv.is_null()) {
      JACKPINE_ASSIGN_OR_RETURN(bool b, rv.AsBool());
      r = b;
    }
    if (op == BinaryOp::kAnd) {
      if (r == false) return Value::Bool(false);
      if (l == true && r == true) return Value::Bool(true);
      return Value::MakeNull();
    }
    if (r == true) return Value::Bool(true);
    if (l == false && r == false) return Value::Bool(false);
    return Value::MakeNull();
  }

  JACKPINE_ASSIGN_OR_RETURN(Value lv, EvalBound(expr.children[0], rows, ctx));
  JACKPINE_ASSIGN_OR_RETURN(Value rv, EvalBound(expr.children[1], rows, ctx));
  if (lv.is_null() || rv.is_null()) return Value::MakeNull();

  switch (op) {
    case BinaryOp::kEq:
    case BinaryOp::kNe: {
      bool eq;
      if (lv.type() == DataType::kGeometry ||
          rv.type() == DataType::kGeometry) {
        if (lv.type() != rv.type()) {
          return Status::InvalidArgument("cannot compare GEOMETRY with scalar");
        }
        eq = lv.geometry_value().ExactlyEquals(rv.geometry_value());
      } else {
        JACKPINE_ASSIGN_OR_RETURN(int cmp, lv.Compare(rv));
        eq = cmp == 0;
      }
      return Value::Bool(op == BinaryOp::kEq ? eq : !eq);
    }
    case BinaryOp::kLt:
    case BinaryOp::kLe:
    case BinaryOp::kGt:
    case BinaryOp::kGe: {
      JACKPINE_ASSIGN_OR_RETURN(int cmp, lv.Compare(rv));
      switch (op) {
        case BinaryOp::kLt:
          return Value::Bool(cmp < 0);
        case BinaryOp::kLe:
          return Value::Bool(cmp <= 0);
        case BinaryOp::kGt:
          return Value::Bool(cmp > 0);
        default:
          return Value::Bool(cmp >= 0);
      }
    }
    case BinaryOp::kAdd:
    case BinaryOp::kSub:
    case BinaryOp::kMul: {
      if (lv.type() == DataType::kInt64 && rv.type() == DataType::kInt64) {
        const int64_t a = lv.int_value();
        const int64_t b = rv.int_value();
        switch (op) {
          case BinaryOp::kAdd:
            return Value::Int(a + b);
          case BinaryOp::kSub:
            return Value::Int(a - b);
          default:
            return Value::Int(a * b);
        }
      }
      JACKPINE_ASSIGN_OR_RETURN(double a, lv.AsDouble());
      JACKPINE_ASSIGN_OR_RETURN(double b, rv.AsDouble());
      switch (op) {
        case BinaryOp::kAdd:
          return Value::Real(a + b);
        case BinaryOp::kSub:
          return Value::Real(a - b);
        default:
          return Value::Real(a * b);
      }
    }
    case BinaryOp::kDiv: {
      JACKPINE_ASSIGN_OR_RETURN(double a, lv.AsDouble());
      JACKPINE_ASSIGN_OR_RETURN(double b, rv.AsDouble());
      if (b == 0.0) return Value::MakeNull();
      return Value::Real(a / b);
    }
    case BinaryOp::kMod: {
      JACKPINE_ASSIGN_OR_RETURN(int64_t a, lv.AsInt64());
      JACKPINE_ASSIGN_OR_RETURN(int64_t b, rv.AsInt64());
      if (b == 0) return Value::MakeNull();
      return Value::Int(a % b);
    }
    default:
      return Status::Internal("unhandled binary operator");
  }
}

}  // namespace

Result<Value> EvalBound(const BoundExpr& expr, const RowView& rows,
                        const EvalContext& ctx) {
  switch (expr.kind) {
    case BoundExpr::Kind::kLiteral:
      return expr.literal;
    case BoundExpr::Kind::kColumn: {
      const Row* row = rows.rows[expr.slot.table_index];
      if (row == nullptr) return Status::Internal("no row bound for table");
      return (*row)[expr.slot.column_index];
    }
    case BoundExpr::Kind::kStar:
      return Status::Internal("'*' outside COUNT(*)");
    case BoundExpr::Kind::kCall: {
      if (expr.fn == nullptr) {
        return Status::Internal(
            StrFormat("aggregate %s evaluated as scalar",
                      expr.call_name.c_str()));
      }
      // Scalar calls are where per-row work concentrates (ST_Buffer,
      // ST_Intersection, ...), so the deadline tick lives here as well as in
      // the executor's row loops: a single row with a pathological geometry
      // still observes the deadline between calls.
      if (ctx.exec != nullptr) {
        JACKPINE_RETURN_IF_ERROR(ctx.exec->CheckTick());
      }
      std::vector<Value> args;
      args.reserve(expr.children.size());
      for (const BoundExpr& c : expr.children) {
        JACKPINE_ASSIGN_OR_RETURN(Value v, EvalBound(c, rows, ctx));
        args.push_back(std::move(v));
      }
      return expr.fn->fn(args, ctx);
    }
    case BoundExpr::Kind::kBinary:
      return EvalBinary(expr, rows, ctx);
    case BoundExpr::Kind::kUnary: {
      JACKPINE_ASSIGN_OR_RETURN(Value v, EvalBound(expr.children[0], rows, ctx));
      if (expr.unary_op == UnaryOp::kNot) {
        if (v.is_null()) return Value::MakeNull();
        JACKPINE_ASSIGN_OR_RETURN(bool b, v.AsBool());
        return Value::Bool(!b);
      }
      // Negation.
      if (v.is_null()) return Value::MakeNull();
      if (v.type() == DataType::kInt64) return Value::Int(-v.int_value());
      JACKPINE_ASSIGN_OR_RETURN(double d, v.AsDouble());
      return Value::Real(-d);
    }
  }
  return Status::Internal("unhandled expression kind");
}

Result<BoundExpr> BindExpr(const Expr& expr, const Binder& binder,
                           const EvalContext& ctx, bool allow_aggregates) {
  BoundExpr out;
  switch (expr.kind) {
    case Expr::Kind::kLiteral:
      out.kind = BoundExpr::Kind::kLiteral;
      out.literal = expr.literal;
      return out;
    case Expr::Kind::kStar:
      out.kind = BoundExpr::Kind::kStar;
      return out;
    case Expr::Kind::kColumnRef: {
      out.kind = BoundExpr::Kind::kColumn;
      JACKPINE_ASSIGN_OR_RETURN(
          out.slot, binder.ResolveColumn(expr.table_qualifier, expr.column));
      return out;
    }
    case Expr::Kind::kFunctionCall: {
      out.kind = BoundExpr::Kind::kCall;
      if (IsAggregateFunction(expr.function)) {
        if (!allow_aggregates) {
          return Status::InvalidArgument(
              StrFormat("aggregate %s not allowed here",
                        expr.function.c_str()));
        }
        out.call_name = ToUpperAscii(expr.function);
        out.fn = nullptr;
        for (const ExprPtr& child : expr.children) {
          JACKPINE_ASSIGN_OR_RETURN(
              BoundExpr bc,
              BindExpr(*child, binder, ctx, /*allow_aggregates=*/false));
          out.children.push_back(std::move(bc));
        }
        if (out.call_name == "COUNT" && out.children.empty()) {
          BoundExpr star;
          star.kind = BoundExpr::Kind::kStar;
          out.children.push_back(std::move(star));
        }
        if (out.children.size() != 1) {
          return Status::InvalidArgument(
              StrFormat("%s takes one argument", out.call_name.c_str()));
        }
        return out;
      }
      const FunctionDef* def = FindFunction(expr.function);
      if (def == nullptr) {
        return Status::NotFound(
            StrFormat("function '%s'", expr.function.c_str()));
      }
      const int n = static_cast<int>(expr.children.size());
      if (n < def->min_args || n > def->max_args) {
        return Status::InvalidArgument(
            StrFormat("%s expects %d..%d arguments, got %d",
                      def->name.c_str(), def->min_args, def->max_args, n));
      }
      out.fn = def;
      out.call_name = def->name;
      for (const ExprPtr& child : expr.children) {
        JACKPINE_ASSIGN_OR_RETURN(
            BoundExpr bc,
            BindExpr(*child, binder, ctx, /*allow_aggregates=*/false));
        out.children.push_back(std::move(bc));
      }
      break;
    }
    case Expr::Kind::kBinary: {
      out.kind = BoundExpr::Kind::kBinary;
      out.binary_op = expr.binary_op;
      JACKPINE_ASSIGN_OR_RETURN(
          BoundExpr lhs,
          BindExpr(*expr.children[0], binder, ctx, allow_aggregates));
      JACKPINE_ASSIGN_OR_RETURN(
          BoundExpr rhs,
          BindExpr(*expr.children[1], binder, ctx, allow_aggregates));
      out.children.push_back(std::move(lhs));
      out.children.push_back(std::move(rhs));
      break;
    }
    case Expr::Kind::kUnary: {
      out.kind = BoundExpr::Kind::kUnary;
      out.unary_op = expr.unary_op;
      JACKPINE_ASSIGN_OR_RETURN(
          BoundExpr child,
          BindExpr(*expr.children[0], binder, ctx, allow_aggregates));
      out.children.push_back(std::move(child));
      break;
    }
  }
  // Constant folding: collapse column-free subtrees to literals.
  if (ctx.fold_constants && out.IsConstant()) {
    RowView no_rows;
    JACKPINE_ASSIGN_OR_RETURN(Value v, EvalBound(out, no_rows, ctx));
    BoundExpr folded;
    folded.kind = BoundExpr::Kind::kLiteral;
    folded.literal = std::move(v);
    return folded;
  }
  return out;
}

std::string DisplayName(const Expr& expr) {
  switch (expr.kind) {
    case Expr::Kind::kColumnRef:
      return expr.column;
    case Expr::Kind::kFunctionCall:
      return ToLowerAscii(expr.function);
    case Expr::Kind::kLiteral:
      return expr.literal.ToDisplayString();
    default:
      return "expr";
  }
}

}  // namespace jackpine::engine
