#include "engine/sql_normalize.h"

#include "common/string_util.h"
#include "engine/sql_lexer.h"

namespace jackpine::engine {
namespace {

// Re-quotes a string literal whose quotes the lexer stripped, undoing the
// '' unescape so the canonical text is itself valid SQL.
void AppendQuoted(const std::string& s, std::string* out) {
  out->push_back('\'');
  for (char c : s) {
    if (c == '\'') out->push_back('\'');
    out->push_back(c);
  }
  out->push_back('\'');
}

bool IsAsciiSpace(char c) {
  return c == ' ' || c == '\t' || c == '\n' || c == '\r' || c == '\f' ||
         c == '\v';
}

}  // namespace

std::optional<std::string> NormalizeSqlText(std::string_view sql) {
  auto tokens = Tokenize(sql);
  if (!tokens.ok()) return std::nullopt;
  std::string out;
  for (const Token& tok : *tokens) {
    if (tok.kind == TokenKind::kEnd) break;
    if (!out.empty()) out.push_back(' ');
    switch (tok.kind) {
      case TokenKind::kIdentifier:
        out += ToLowerAscii(tok.text);
        break;
      case TokenKind::kString:
        AppendQuoted(tok.text, &out);
        break;
      default:
        out += tok.text;
        break;
    }
  }
  return out;
}

std::string SqlFingerprint(std::string_view sql) {
  if (std::optional<std::string> normalized = NormalizeSqlText(sql);
      normalized.has_value() && !normalized->empty()) {
    return *std::move(normalized);
  }
  // Unlexable (or comment/whitespace-only) input: collapse whitespace so at
  // least trivially re-spelled garbage still shares one bucket.
  std::string out;
  bool pending_space = false;
  for (char c : sql) {
    if (IsAsciiSpace(c)) {
      pending_space = !out.empty();
      continue;
    }
    if (pending_space) out.push_back(' ');
    pending_space = false;
    out.push_back(c);
  }
  return out;
}

uint64_t FingerprintHash(std::string_view fingerprint) {
  uint64_t h = 1469598103934665603ull;  // FNV-1a offset basis
  for (unsigned char c : fingerprint) {
    h ^= c;
    h *= 1099511628211ull;  // FNV prime
  }
  return h;
}

}  // namespace jackpine::engine
