// Query planning: binds a SELECT against the catalog and chooses the access
// path (full scan, index window scan, index nested-loop join, or index k-NN).

#ifndef JACKPINE_ENGINE_PLANNER_H_
#define JACKPINE_ENGINE_PLANNER_H_

#include <atomic>
#include <optional>
#include <string>
#include <vector>

#include "engine/catalog.h"
#include "engine/expression.h"

namespace jackpine::obs {
struct QueryTrace;
}  // namespace jackpine::obs

namespace jackpine::engine {

// Counters surfaced to the benchmark harness and tests: they make the
// filter-and-refine behaviour of each SUT observable. Counters are relaxed
// atomics so concurrent read-only queries (the multi-client throughput
// experiment) can share one Database without data races.
struct ExecStats {
  std::atomic<uint64_t> rows_scanned{0};   // heap rows without index help
  std::atomic<uint64_t> index_probes{0};   // window / k-NN probes issued
  std::atomic<uint64_t> index_candidates{0};  // ids from the filter step
  std::atomic<uint64_t> refine_checks{0};  // WHERE evals (the refine step)

  void Reset() {
    rows_scanned = 0;
    index_probes = 0;
    index_candidates = 0;
    refine_checks = 0;
  }
};

struct PhysicalPlan {
  std::vector<const Table*> tables;
  std::vector<std::string> aliases;
  EvalContext ctx;

  // Single-table window acceleration.
  bool use_window = false;
  size_t window_column = 0;
  geom::Envelope window;

  // Two-table index nested-loop join: probe the inner table's index with the
  // (expanded) envelope of the outer row's key geometry.
  bool use_join_index = false;
  size_t outer_table = 0;
  size_t inner_table = 1;
  size_t inner_geom_column = 0;
  std::optional<BoundExpr> outer_key;
  double join_expand = 0.0;

  // k-NN acceleration: ORDER BY ST_Distance(geom_col, <point>) LIMIT k.
  bool use_knn = false;
  size_t knn_column = 0;
  geom::Coord knn_center{};

  std::optional<BoundExpr> where;

  std::vector<BoundExpr> group_by;

  struct OutputItem {
    BoundExpr expr;
    std::string name;
  };
  std::vector<OutputItem> outputs;
  bool has_aggregates = false;

  struct BoundOrder {
    BoundExpr expr;
    bool ascending = true;
  };
  std::vector<BoundOrder> order_by;
  std::optional<int64_t> limit;
};

// Binds and plans `stmt`. `ctx` carries the SUT's predicate mode, which also
// affects constant folding.
Result<PhysicalPlan> PlanSelect(const SelectStatement& stmt,
                                const Catalog& catalog, const EvalContext& ctx);

// Human-readable plan description (the EXPLAIN output): access path, index
// usage, grouping/ordering and output columns, one property per line.
std::string DescribePlan(const PhysicalPlan& plan);

// The EXPLAIN ANALYZE output: DescribePlan's operators annotated with the
// measured execution — per-stage times, index nodes visited, MBR candidates
// from the filter step, refinement checks/survivors, and the rows
// examined/returned totals — from a trace recorded by actually running the
// plan.
std::string DescribePlanAnalyze(const PhysicalPlan& plan,
                                const obs::QueryTrace& trace);

}  // namespace jackpine::engine

#endif  // JACKPINE_ENGINE_PLANNER_H_
