#include "engine/database.h"

#include "common/stopwatch.h"
#include "common/string_util.h"
#include "engine/planner.h"
#include "engine/sql_parser.h"
#include "obs/metrics.h"
#include "obs/trace.h"

namespace jackpine::engine {

namespace {

QueryResult AffectedRows(int64_t n) {
  QueryResult r;
  r.columns = {"rows_affected"};
  r.rows.push_back({Value::Int(n)});
  return r;
}

}  // namespace

Database::Database(DatabaseOptions options) : options_(std::move(options)) {
  // Registry instruments resolve once here (the only synchronised metrics
  // operation); the per-query path is a relaxed Add/Observe.
  obs::Registry& registry = obs::GlobalRegistry();
  queries_metric_ = registry.GetCounter("engine.queries");
  latency_metric_ = registry.GetHistogram("engine.query_latency_s");
}

Result<QueryResult> Database::Execute(std::string_view sql,
                                      ExecContext* exec) {
  Stopwatch parse_sw;
  JACKPINE_ASSIGN_OR_RETURN(Statement stmt, ParseSql(sql));
  const double parse_s = parse_sw.ElapsedSeconds();
  if (auto* s = std::get_if<SelectStatement>(&stmt)) {
    return ExecuteSelect(*s, exec, parse_s);
  }
  if (auto* s = std::get_if<ExplainStatement>(&stmt)) {
    EvalContext ctx;
    ctx.predicate_mode = options_.predicate_mode;
    ctx.fold_constants = options_.fold_constants;
    if (s->analyze) return ExecuteExplainAnalyze(*s, exec, parse_s);
    JACKPINE_ASSIGN_OR_RETURN(PhysicalPlan plan,
                              PlanSelect(s->select, catalog_, ctx));
    QueryResult r;
    r.columns = {"plan"};
    for (const std::string& line : Split(DescribePlan(plan), '\n')) {
      r.rows.push_back({Value::Str(line)});
    }
    return r;
  }
  if (auto* s = std::get_if<CreateTableStatement>(&stmt)) {
    return ExecuteCreateTable(*s);
  }
  if (auto* s = std::get_if<InsertStatement>(&stmt)) return ExecuteInsert(*s);
  if (auto* s = std::get_if<CreateIndexStatement>(&stmt)) {
    return ExecuteCreateIndex(*s);
  }
  if (auto* s = std::get_if<DropIndexStatement>(&stmt)) {
    return ExecuteDropIndex(*s);
  }
  return Status::Internal("unhandled statement kind");
}

Result<QueryResult> Database::ExecuteSelect(const SelectStatement& stmt,
                                            ExecContext* exec,
                                            double parse_s) {
  obs::QueryTrace* trace = exec != nullptr ? exec->trace() : nullptr;
  EvalContext ctx;
  ctx.predicate_mode = options_.predicate_mode;
  ctx.fold_constants = options_.fold_constants;
  ctx.exec = exec;
  Stopwatch sw;
  JACKPINE_ASSIGN_OR_RETURN(PhysicalPlan plan,
                            PlanSelect(stmt, catalog_, ctx));
  const double plan_s = sw.ElapsedSeconds();
  sw.Restart();
  // ExecutePlan merges the pipeline counters into `trace` itself; the stage
  // times and per-statement instruments are recorded here.
  Result<QueryResult> result = ExecutePlan(plan, &stats_);
  const double exec_s = sw.ElapsedSeconds();
  if (trace != nullptr) {
    trace->parse_s += parse_s;
    trace->plan_s += plan_s;
    trace->exec_s += exec_s;
    trace->total_s += parse_s + plan_s + exec_s;
    ++trace->queries;
  }
  queries_metric_->Add();
  latency_metric_->Observe(parse_s + plan_s + exec_s);
  return result;
}

Result<QueryResult> Database::ExecuteExplainAnalyze(
    const ExplainStatement& stmt, ExecContext* exec, double parse_s) {
  // Run the select for real with a dedicated trace attached, then render the
  // plan annotated with what actually happened. The caller's own trace (if
  // any) still sees the execution: the dedicated trace merges into it.
  ExecContext local_exec;
  ExecContext* e = exec != nullptr ? exec : &local_exec;
  obs::QueryTrace* caller_trace = e->trace();
  obs::QueryTrace analyze;
  analyze.parse_s = parse_s;
  e->set_trace(&analyze);

  EvalContext ctx;
  ctx.predicate_mode = options_.predicate_mode;
  ctx.fold_constants = options_.fold_constants;
  ctx.exec = e;
  Stopwatch sw;
  Result<PhysicalPlan> plan = PlanSelect(stmt.select, catalog_, ctx);
  if (!plan.ok()) {
    e->set_trace(caller_trace);
    return plan.status();
  }
  analyze.plan_s = sw.ElapsedSeconds();
  sw.Restart();
  Result<QueryResult> executed = ExecutePlan(*plan, &stats_);
  analyze.exec_s = sw.ElapsedSeconds();
  e->set_trace(caller_trace);
  if (!executed.ok()) return executed.status();
  analyze.total_s = analyze.parse_s + analyze.plan_s + analyze.exec_s;
  analyze.queries = 1;
  if (caller_trace != nullptr) *caller_trace += analyze;
  queries_metric_->Add();
  latency_metric_->Observe(analyze.total_s);

  QueryResult r;
  r.columns = {"plan"};
  for (const std::string& line :
       Split(DescribePlanAnalyze(*plan, analyze), '\n')) {
    r.rows.push_back({Value::Str(line)});
  }
  return r;
}

Result<QueryResult> Database::ExecuteCreateTable(
    const CreateTableStatement& stmt) {
  std::vector<Column> columns;
  for (const auto& [name, type_name] : stmt.columns) {
    JACKPINE_ASSIGN_OR_RETURN(DataType type, DataTypeFromName(type_name));
    columns.push_back(Column{name, type});
  }
  Schema schema(std::move(columns));
  // Write-ahead order when a durability observer is attached: validate (the
  // duplicate check), log, apply, then wait for durability off the mutation
  // mutex (MutationObserver contract in database.h).
  std::unique_lock<std::mutex> lock;
  uint64_t ticket = 0;
  if (observer_ != nullptr) {
    lock = std::unique_lock<std::mutex>(observer_->mutation_mutex());
    if (catalog_.GetTable(stmt.name) != nullptr) {
      return Status::AlreadyExists(StrFormat("table '%s'", stmt.name.c_str()));
    }
    JACKPINE_ASSIGN_OR_RETURN(ticket,
                              observer_->OnCreateTable(stmt.name, schema));
  }
  JACKPINE_ASSIGN_OR_RETURN(Table * table,
                            catalog_.CreateTable(stmt.name, std::move(schema)));
  (void)table;
  if (observer_ != nullptr) {
    observer_->OnApplied(stmt.name);
    lock.unlock();
    JACKPINE_RETURN_IF_ERROR(observer_->WaitDurable(ticket));
  }
  return AffectedRows(0);
}

Result<QueryResult> Database::ExecuteInsert(const InsertStatement& stmt) {
  std::unique_lock<std::mutex> lock;
  if (observer_ != nullptr) {
    lock = std::unique_lock<std::mutex>(observer_->mutation_mutex());
  }
  Table* table = catalog_.GetTable(stmt.table);
  if (table == nullptr) {
    return Status::NotFound(StrFormat("table '%s'", stmt.table.c_str()));
  }
  EvalContext ctx;
  ctx.predicate_mode = options_.predicate_mode;
  Binder empty_binder({}, {});
  // Evaluate and validate every row before logging or applying anything, so
  // the WAL only ever carries rows whose apply cannot fail and a mid-batch
  // evaluation error leaves both log and heap untouched.
  std::vector<Row> rows;
  rows.reserve(stmt.rows.size());
  for (const auto& row_exprs : stmt.rows) {
    Row row;
    row.reserve(row_exprs.size());
    for (const ExprPtr& e : row_exprs) {
      JACKPINE_ASSIGN_OR_RETURN(
          BoundExpr bound,
          BindExpr(*e, empty_binder, ctx, /*allow_aggregates=*/false));
      RowView no_rows;
      JACKPINE_ASSIGN_OR_RETURN(Value v, EvalBound(bound, no_rows, ctx));
      row.push_back(std::move(v));
    }
    JACKPINE_RETURN_IF_ERROR(table->schema().ValidateRow(row));
    rows.push_back(std::move(row));
  }
  uint64_t ticket = 0;
  if (observer_ != nullptr) {
    JACKPINE_ASSIGN_OR_RETURN(ticket, observer_->OnInsert(stmt.table, rows));
  }
  const int64_t inserted = static_cast<int64_t>(rows.size());
  for (Row& row : rows) {
    JACKPINE_RETURN_IF_ERROR(table->Append(std::move(row)));
  }
  if (observer_ != nullptr) {
    observer_->OnApplied(stmt.table);
    lock.unlock();
    JACKPINE_RETURN_IF_ERROR(observer_->WaitDurable(ticket));
  }
  return AffectedRows(inserted);
}

Result<QueryResult> Database::ExecuteCreateIndex(
    const CreateIndexStatement& stmt) {
  std::unique_lock<std::mutex> lock;
  if (observer_ != nullptr) {
    lock = std::unique_lock<std::mutex>(observer_->mutation_mutex());
  }
  Table* table = catalog_.GetTable(stmt.table);
  if (table == nullptr) {
    return Status::NotFound(StrFormat("table '%s'", stmt.table.c_str()));
  }
  const auto col = table->schema().FindColumn(stmt.column);
  if (!col.has_value()) {
    return Status::NotFound(StrFormat("column '%s'", stmt.column.c_str()));
  }
  // Reject a non-geometry column here, before the observer hook: a logged
  // kCreateIndex must always rebuild during recovery, so a statement
  // BuildSpatialIndex would refuse must never reach the WAL (the same
  // validate-before-log discipline as the insert path). Checked ahead of
  // the kNone no-op so the DDL's outcome does not depend on SUT config.
  if (table->schema().column(*col).type != DataType::kGeometry) {
    return Status::InvalidArgument(
        StrFormat("column '%s' is not GEOMETRY", stmt.column.c_str()));
  }
  // A SUT configured without an index honours the DDL as a no-op, the same
  // way the paper ran DBMSs "without spatial index". No-ops are not logged.
  if (options_.index_kind == index::IndexKind::kNone) {
    return AffectedRows(0);
  }
  uint64_t ticket = 0;
  if (observer_ != nullptr) {
    JACKPINE_ASSIGN_OR_RETURN(ticket,
                              observer_->OnCreateIndex(stmt.table, *col));
  }
  JACKPINE_RETURN_IF_ERROR(table->BuildSpatialIndex(
      *col, options_.index_kind, options_.incremental_index_build));
  if (observer_ != nullptr) {
    observer_->OnApplied(stmt.table);
    lock.unlock();
    JACKPINE_RETURN_IF_ERROR(observer_->WaitDurable(ticket));
  }
  return AffectedRows(static_cast<int64_t>(table->NumRows()));
}

Result<QueryResult> Database::ExecuteDropIndex(const DropIndexStatement& stmt) {
  std::unique_lock<std::mutex> lock;
  if (observer_ != nullptr) {
    lock = std::unique_lock<std::mutex>(observer_->mutation_mutex());
  }
  Table* table = catalog_.GetTable(stmt.table);
  if (table == nullptr) {
    return Status::NotFound(StrFormat("table '%s'", stmt.table.c_str()));
  }
  const auto col = table->schema().FindColumn(stmt.column);
  if (!col.has_value()) {
    return Status::NotFound(StrFormat("column '%s'", stmt.column.c_str()));
  }
  uint64_t ticket = 0;
  if (observer_ != nullptr) {
    // Dropping an index that is not there is a no-op; only log real drops.
    if (table->GetSpatialIndex(*col) != nullptr) {
      JACKPINE_ASSIGN_OR_RETURN(ticket,
                                observer_->OnDropIndex(stmt.table, *col));
    }
  }
  table->DropSpatialIndex(*col);
  if (observer_ != nullptr) {
    observer_->OnApplied(stmt.table);
    lock.unlock();
    JACKPINE_RETURN_IF_ERROR(observer_->WaitDurable(ticket));
  }
  return AffectedRows(0);
}

}  // namespace jackpine::engine
