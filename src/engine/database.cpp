#include "engine/database.h"

#include "common/string_util.h"
#include "engine/planner.h"
#include "engine/sql_parser.h"

namespace jackpine::engine {

namespace {

QueryResult AffectedRows(int64_t n) {
  QueryResult r;
  r.columns = {"rows_affected"};
  r.rows.push_back({Value::Int(n)});
  return r;
}

}  // namespace

Database::Database(DatabaseOptions options) : options_(std::move(options)) {}

Result<QueryResult> Database::Execute(std::string_view sql,
                                      ExecContext* exec) {
  JACKPINE_ASSIGN_OR_RETURN(Statement stmt, ParseSql(sql));
  if (auto* s = std::get_if<SelectStatement>(&stmt)) {
    return ExecuteSelect(*s, exec);
  }
  if (auto* s = std::get_if<ExplainStatement>(&stmt)) {
    EvalContext ctx;
    ctx.predicate_mode = options_.predicate_mode;
    ctx.fold_constants = options_.fold_constants;
    JACKPINE_ASSIGN_OR_RETURN(PhysicalPlan plan,
                              PlanSelect(s->select, catalog_, ctx));
    QueryResult r;
    r.columns = {"plan"};
    for (const std::string& line : Split(DescribePlan(plan), '\n')) {
      r.rows.push_back({Value::Str(line)});
    }
    return r;
  }
  if (auto* s = std::get_if<CreateTableStatement>(&stmt)) {
    return ExecuteCreateTable(*s);
  }
  if (auto* s = std::get_if<InsertStatement>(&stmt)) return ExecuteInsert(*s);
  if (auto* s = std::get_if<CreateIndexStatement>(&stmt)) {
    return ExecuteCreateIndex(*s);
  }
  if (auto* s = std::get_if<DropIndexStatement>(&stmt)) {
    return ExecuteDropIndex(*s);
  }
  return Status::Internal("unhandled statement kind");
}

Result<QueryResult> Database::ExecuteSelect(const SelectStatement& stmt,
                                            ExecContext* exec) {
  EvalContext ctx;
  ctx.predicate_mode = options_.predicate_mode;
  ctx.fold_constants = options_.fold_constants;
  ctx.exec = exec;
  JACKPINE_ASSIGN_OR_RETURN(PhysicalPlan plan,
                            PlanSelect(stmt, catalog_, ctx));
  return ExecutePlan(plan, &stats_);
}

Result<QueryResult> Database::ExecuteCreateTable(
    const CreateTableStatement& stmt) {
  std::vector<Column> columns;
  for (const auto& [name, type_name] : stmt.columns) {
    JACKPINE_ASSIGN_OR_RETURN(DataType type, DataTypeFromName(type_name));
    columns.push_back(Column{name, type});
  }
  JACKPINE_ASSIGN_OR_RETURN(Table * table,
                            catalog_.CreateTable(stmt.name, Schema(columns)));
  (void)table;
  return AffectedRows(0);
}

Result<QueryResult> Database::ExecuteInsert(const InsertStatement& stmt) {
  Table* table = catalog_.GetTable(stmt.table);
  if (table == nullptr) {
    return Status::NotFound(StrFormat("table '%s'", stmt.table.c_str()));
  }
  EvalContext ctx;
  ctx.predicate_mode = options_.predicate_mode;
  Binder empty_binder({}, {});
  int64_t inserted = 0;
  for (const auto& row_exprs : stmt.rows) {
    Row row;
    for (const ExprPtr& e : row_exprs) {
      JACKPINE_ASSIGN_OR_RETURN(
          BoundExpr bound,
          BindExpr(*e, empty_binder, ctx, /*allow_aggregates=*/false));
      RowView no_rows;
      JACKPINE_ASSIGN_OR_RETURN(Value v, EvalBound(bound, no_rows, ctx));
      row.push_back(std::move(v));
    }
    JACKPINE_RETURN_IF_ERROR(table->Append(std::move(row)));
    ++inserted;
  }
  return AffectedRows(inserted);
}

Result<QueryResult> Database::ExecuteCreateIndex(
    const CreateIndexStatement& stmt) {
  Table* table = catalog_.GetTable(stmt.table);
  if (table == nullptr) {
    return Status::NotFound(StrFormat("table '%s'", stmt.table.c_str()));
  }
  const auto col = table->schema().FindColumn(stmt.column);
  if (!col.has_value()) {
    return Status::NotFound(StrFormat("column '%s'", stmt.column.c_str()));
  }
  // A SUT configured without an index honours the DDL as a no-op, the same
  // way the paper ran DBMSs "without spatial index".
  if (options_.index_kind == index::IndexKind::kNone) {
    return AffectedRows(0);
  }
  JACKPINE_RETURN_IF_ERROR(table->BuildSpatialIndex(
      *col, options_.index_kind, options_.incremental_index_build));
  return AffectedRows(static_cast<int64_t>(table->NumRows()));
}

Result<QueryResult> Database::ExecuteDropIndex(const DropIndexStatement& stmt) {
  Table* table = catalog_.GetTable(stmt.table);
  if (table == nullptr) {
    return Status::NotFound(StrFormat("table '%s'", stmt.table.c_str()));
  }
  const auto col = table->schema().FindColumn(stmt.column);
  if (!col.has_value()) {
    return Status::NotFound(StrFormat("column '%s'", stmt.column.c_str()));
  }
  table->DropSpatialIndex(*col);
  return AffectedRows(0);
}

}  // namespace jackpine::engine
