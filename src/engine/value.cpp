#include "engine/value.h"

#include <cmath>

#include "common/string_util.h"

namespace jackpine::engine {

const char* DataTypeName(DataType type) {
  switch (type) {
    case DataType::kNull:
      return "NULL";
    case DataType::kBool:
      return "BOOL";
    case DataType::kInt64:
      return "BIGINT";
    case DataType::kDouble:
      return "DOUBLE";
    case DataType::kString:
      return "VARCHAR";
    case DataType::kGeometry:
      return "GEOMETRY";
  }
  return "UNKNOWN";
}

DataType Value::type() const {
  switch (payload_.index()) {
    case 0:
      return DataType::kNull;
    case 1:
      return DataType::kBool;
    case 2:
      return DataType::kInt64;
    case 3:
      return DataType::kDouble;
    case 4:
      return DataType::kString;
    case 5:
      return DataType::kGeometry;
  }
  return DataType::kNull;
}

Result<double> Value::AsDouble() const {
  switch (type()) {
    case DataType::kInt64:
      return static_cast<double>(int_value());
    case DataType::kDouble:
      return double_value();
    default:
      return Status::InvalidArgument(
          StrFormat("cannot read %s as DOUBLE", DataTypeName(type())));
  }
}

Result<int64_t> Value::AsInt64() const {
  switch (type()) {
    case DataType::kInt64:
      return int_value();
    case DataType::kDouble:
      return static_cast<int64_t>(double_value());
    default:
      return Status::InvalidArgument(
          StrFormat("cannot read %s as BIGINT", DataTypeName(type())));
  }
}

Result<bool> Value::AsBool() const {
  switch (type()) {
    case DataType::kBool:
      return bool_value();
    case DataType::kInt64:
      return int_value() != 0;
    default:
      return Status::InvalidArgument(
          StrFormat("cannot read %s as BOOL", DataTypeName(type())));
  }
}

Result<geom::Geometry> Value::AsGeometry() const {
  if (type() != DataType::kGeometry) {
    return Status::InvalidArgument(
        StrFormat("cannot read %s as GEOMETRY", DataTypeName(type())));
  }
  return geometry_value();
}

Result<int> Value::Compare(const Value& other) const {
  const DataType ta = type();
  const DataType tb = other.type();
  if (ta == DataType::kNull || tb == DataType::kNull) {
    if (ta == tb) return 0;
    return ta == DataType::kNull ? -1 : 1;
  }
  const bool numeric_a = ta == DataType::kInt64 || ta == DataType::kDouble;
  const bool numeric_b = tb == DataType::kInt64 || tb == DataType::kDouble;
  if (numeric_a && numeric_b) {
    if (ta == DataType::kInt64 && tb == DataType::kInt64) {
      const int64_t a = int_value();
      const int64_t b = other.int_value();
      return a < b ? -1 : (a > b ? 1 : 0);
    }
    const double a = *AsDouble();
    const double b = *other.AsDouble();
    return a < b ? -1 : (a > b ? 1 : 0);
  }
  if (ta != tb) {
    return Status::InvalidArgument(StrFormat("cannot compare %s with %s",
                                             DataTypeName(ta),
                                             DataTypeName(tb)));
  }
  switch (ta) {
    case DataType::kBool:
      return static_cast<int>(bool_value()) -
             static_cast<int>(other.bool_value());
    case DataType::kString:
      return string_value().compare(other.string_value());
    case DataType::kGeometry:
      return Status::InvalidArgument("GEOMETRY values have no ordering");
    default:
      return 0;
  }
}

bool Value::SqlEquals(const Value& other) const {
  if (is_null() || other.is_null()) return false;
  if (type() == DataType::kGeometry && other.type() == DataType::kGeometry) {
    return geometry_value().ExactlyEquals(other.geometry_value());
  }
  const Result<int> cmp = Compare(other);
  return cmp.ok() && *cmp == 0;
}

std::string Value::ToDisplayString() const {
  switch (type()) {
    case DataType::kNull:
      return "NULL";
    case DataType::kBool:
      return bool_value() ? "true" : "false";
    case DataType::kInt64:
      return StrFormat("%lld", static_cast<long long>(int_value()));
    case DataType::kDouble:
      return StrFormat("%.10g", double_value());
    case DataType::kString:
      return string_value();
    case DataType::kGeometry:
      return geometry_value().ToWkt();
  }
  return "?";
}

uint64_t Value::Hash() const {
  auto mix = [](uint64_t h, uint64_t v) {
    h ^= v + 0x9e3779b97f4a7c15ULL + (h << 6) + (h >> 2);
    return h * 0xff51afd7ed558ccdULL;
  };
  uint64_t h = mix(0x2545f4914f6cdd1dULL, static_cast<uint64_t>(type()));
  switch (type()) {
    case DataType::kNull:
      return h;
    case DataType::kBool:
      return mix(h, bool_value() ? 1 : 0);
    case DataType::kInt64:
      return mix(h, static_cast<uint64_t>(int_value()));
    case DataType::kDouble: {
      // Hash integral doubles like their int64 counterparts so that
      // checksums are stable across SUTs that fold constants differently.
      const double d = double_value();
      if (d == std::floor(d) && std::abs(d) < 1e18) {
        return mix(h ^ 0x3, static_cast<uint64_t>(static_cast<int64_t>(d)));
      }
      uint64_t bits;
      __builtin_memcpy(&bits, &d, sizeof(bits));
      return mix(h, bits);
    }
    case DataType::kString: {
      uint64_t sh = 1469598103934665603ULL;
      for (char c : string_value()) {
        sh ^= static_cast<unsigned char>(c);
        sh *= 1099511628211ULL;
      }
      return mix(h, sh);
    }
    case DataType::kGeometry:
      return mix(h, geometry_value().Hash());
  }
  return h;
}

uint64_t Value::ApproxBytes() const {
  uint64_t bytes = sizeof(Value);
  switch (type()) {
    case DataType::kString:
      bytes += string_value().size();
      break;
    case DataType::kGeometry:
      bytes += static_cast<uint64_t>(geometry_value().NumPoints()) * 16;
      break;
    default:
      break;
  }
  return bytes;
}

}  // namespace jackpine::engine
