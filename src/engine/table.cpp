#include "engine/table.h"

#include <cstddef>
#include <utility>

#include "common/string_util.h"

namespace jackpine::engine {

Table::Table(std::string name, Schema schema)
    : name_(std::move(name)), schema_(std::move(schema)) {}

Status Table::Append(Row row) {
  JACKPINE_RETURN_IF_ERROR(schema_.ValidateRow(row));
  const auto id = static_cast<int64_t>(rows_.size());
  for (auto& [col, idx] : indexes_) {
    const Value& v = row[col];
    if (!v.is_null() && !v.geometry_value().envelope().IsNull()) {
      idx->Insert(v.geometry_value().envelope(), id);
    }
  }
  rows_.push_back(std::move(row));
  return Status::Ok();
}

Status Table::UpdateRow(size_t i, Row row) {
  if (i >= rows_.size()) {
    return Status::OutOfRange(
        StrFormat("row %zu of %zu in '%s'", i, rows_.size(), name_.c_str()));
  }
  JACKPINE_RETURN_IF_ERROR(schema_.ValidateRow(row));
  rows_[i] = std::move(row);
  return RebuildIndexesAfterMutation();
}

Status Table::DeleteRow(size_t i) {
  if (i >= rows_.size()) {
    return Status::OutOfRange(
        StrFormat("row %zu of %zu in '%s'", i, rows_.size(), name_.c_str()));
  }
  rows_.erase(rows_.begin() + static_cast<ptrdiff_t>(i));
  return RebuildIndexesAfterMutation();
}

Status Table::RebuildIndexesAfterMutation() {
  // Row ids are positional, so in-place mutation invalidates every spatial
  // index on the table; rebuild them bulk with their existing kinds.
  std::vector<std::pair<size_t, index::IndexKind>> rebuilds;
  for (const auto& [col, idx] : indexes_) rebuilds.emplace_back(col, idx->kind());
  for (const auto& [col, kind] : rebuilds) {
    JACKPINE_RETURN_IF_ERROR(BuildSpatialIndex(col, kind));
  }
  return Status::Ok();
}

Status Table::BuildSpatialIndex(size_t column, index::IndexKind kind,
                                bool incremental) {
  if (column >= schema_.NumColumns()) {
    return Status::OutOfRange("index column out of range");
  }
  if (schema_.column(column).type != DataType::kGeometry) {
    return Status::InvalidArgument(
        StrFormat("column '%s' is not GEOMETRY",
                  schema_.column(column).name.c_str()));
  }
  auto idx = index::MakeSpatialIndex(kind);
  if (incremental) {
    for (size_t i = 0; i < rows_.size(); ++i) {
      const Value& v = rows_[i][column];
      if (!v.is_null() && !v.geometry_value().envelope().IsNull()) {
        idx->Insert(v.geometry_value().envelope(), static_cast<int64_t>(i));
      }
    }
  } else {
    std::vector<index::IndexEntry> entries;
    entries.reserve(rows_.size());
    for (size_t i = 0; i < rows_.size(); ++i) {
      const Value& v = rows_[i][column];
      if (!v.is_null() && !v.geometry_value().envelope().IsNull()) {
        entries.push_back(index::IndexEntry{v.geometry_value().envelope(),
                                            static_cast<int64_t>(i)});
      }
    }
    idx->BulkLoad(std::move(entries));
  }
  indexes_[column] = std::move(idx);
  return Status::Ok();
}

void Table::DropSpatialIndex(size_t column) { indexes_.erase(column); }

const index::SpatialIndex* Table::GetSpatialIndex(size_t column) const {
  auto it = indexes_.find(column);
  return it == indexes_.end() ? nullptr : it->second.get();
}

std::vector<size_t> Table::IndexedColumns() const {
  std::vector<size_t> columns;
  columns.reserve(indexes_.size());
  for (const auto& [col, idx] : indexes_) columns.push_back(col);
  return columns;
}

}  // namespace jackpine::engine
