// The scalar function registry: the OGC SQL/MM "ST_*" surface that the
// Jackpine queries are written against, plus a few generic scalar helpers.

#ifndef JACKPINE_ENGINE_FUNCTIONS_H_
#define JACKPINE_ENGINE_FUNCTIONS_H_

#include <functional>
#include <string>
#include <string_view>
#include <vector>

#include "common/exec_context.h"
#include "engine/value.h"
#include "topo/predicates.h"

namespace jackpine::engine {

// Per-query evaluation context threaded into every function call.
struct EvalContext {
  // How this SUT evaluates topological predicates (exact vs MBR-only).
  topo::PredicateMode predicate_mode = topo::PredicateMode::kExact;
  // When false, the binder skips constant folding, so constant subtrees
  // (e.g. ST_GeomFromText literals) re-evaluate on every row. Exists only
  // for the prepared-literals ablation (DESIGN.md decision #3).
  bool fold_constants = true;
  // Deadline / cancellation / budget guard for the executing query; null
  // means unlimited. Non-owning: the ExecContext outlives the query (it is
  // created in client::Statement::ExecuteQuery or supplied by the caller).
  ExecContext* exec = nullptr;
};

using ScalarFn =
    std::function<Result<Value>(const std::vector<Value>&, const EvalContext&)>;

struct FunctionDef {
  std::string name;  // canonical spelling
  int min_args = 0;
  int max_args = 0;
  // True for the DE-9IM predicates that the planner can accelerate with a
  // spatial index window.
  bool indexable_predicate = false;
  ScalarFn fn;
};

// Case-insensitive lookup; nullptr when unknown.
const FunctionDef* FindFunction(std::string_view name);

// Names of all registered functions (for documentation and tests).
std::vector<std::string> AllFunctionNames();

// True for COUNT/SUM/AVG/MIN/MAX (handled by the executor, not FindFunction).
bool IsAggregateFunction(std::string_view name);

}  // namespace jackpine::engine

#endif  // JACKPINE_ENGINE_FUNCTIONS_H_
