#include "engine/schema.h"

#include "common/string_util.h"

namespace jackpine::engine {

Schema::Schema(std::vector<Column> columns) : columns_(std::move(columns)) {}

std::optional<size_t> Schema::FindColumn(std::string_view name) const {
  for (size_t i = 0; i < columns_.size(); ++i) {
    if (EqualsIgnoreCase(columns_[i].name, name)) return i;
  }
  return std::nullopt;
}

Status Schema::ValidateRow(const std::vector<Value>& row) const {
  if (row.size() != columns_.size()) {
    return Status::InvalidArgument(
        StrFormat("row has %zu values, schema has %zu columns", row.size(),
                  columns_.size()));
  }
  for (size_t i = 0; i < row.size(); ++i) {
    const DataType vt = row[i].type();
    const DataType ct = columns_[i].type;
    if (vt == DataType::kNull || vt == ct) continue;
    if (ct == DataType::kDouble && vt == DataType::kInt64) continue;
    return Status::InvalidArgument(
        StrFormat("column '%s' expects %s, got %s", columns_[i].name.c_str(),
                  DataTypeName(ct), DataTypeName(vt)));
  }
  return Status::Ok();
}

std::string Schema::ToString() const {
  std::string out = "(";
  for (size_t i = 0; i < columns_.size(); ++i) {
    if (i > 0) out += ", ";
    out += columns_[i].name;
    out += ' ';
    out += DataTypeName(columns_[i].type);
  }
  out += ')';
  return out;
}

Result<DataType> DataTypeFromName(std::string_view name) {
  const std::string upper = ToUpperAscii(name);
  if (upper == "BIGINT" || upper == "INT" || upper == "INTEGER") {
    return DataType::kInt64;
  }
  if (upper == "DOUBLE" || upper == "FLOAT" || upper == "REAL") {
    return DataType::kDouble;
  }
  if (upper == "VARCHAR" || upper == "TEXT" || upper == "STRING") {
    return DataType::kString;
  }
  if (upper == "GEOMETRY") return DataType::kGeometry;
  if (upper == "BOOL" || upper == "BOOLEAN") return DataType::kBool;
  return Status::InvalidArgument(StrFormat("unknown type '%s'",
                                           std::string(name).c_str()));
}

}  // namespace jackpine::engine
