// The runtime value model of pinedb: what a cell, an expression result, or a
// function argument holds.

#ifndef JACKPINE_ENGINE_VALUE_H_
#define JACKPINE_ENGINE_VALUE_H_

#include <cstdint>
#include <string>
#include <variant>

#include "common/status.h"
#include "geom/geometry.h"

namespace jackpine::engine {

enum class DataType : uint8_t {
  kNull,
  kBool,
  kInt64,
  kDouble,
  kString,
  kGeometry,
};

const char* DataTypeName(DataType type);

// A dynamically-typed SQL value. Copying is cheap: strings are the only
// deep-copied payload and geometries share their immutable payload.
class Value {
 public:
  Value() : payload_(Null{}) {}

  static Value MakeNull() { return Value(); }
  static Value Bool(bool v) { return Value(Payload(v)); }
  static Value Int(int64_t v) { return Value(Payload(v)); }
  static Value Real(double v) { return Value(Payload(v)); }
  static Value Str(std::string v) { return Value(Payload(std::move(v))); }
  static Value Geo(geom::Geometry v) { return Value(Payload(std::move(v))); }

  DataType type() const;
  bool is_null() const { return type() == DataType::kNull; }

  // Typed accessors; caller must check type() (or use the As* coercions).
  bool bool_value() const { return std::get<bool>(payload_); }
  int64_t int_value() const { return std::get<int64_t>(payload_); }
  double double_value() const { return std::get<double>(payload_); }
  const std::string& string_value() const {
    return std::get<std::string>(payload_);
  }
  const geom::Geometry& geometry_value() const {
    return std::get<geom::Geometry>(payload_);
  }

  // Numeric coercion: int64 and double interchange; anything else errors.
  Result<double> AsDouble() const;
  Result<int64_t> AsInt64() const;
  Result<bool> AsBool() const;
  Result<geom::Geometry> AsGeometry() const;

  // SQL three-valued comparison for ORDER BY and comparison operators:
  // returns <0, 0, >0; NULL sorts first; cross-type numeric compares work.
  // Comparing incompatible types returns an error.
  Result<int> Compare(const Value& other) const;

  // SQL equality (used by = and result checksums). NULL != anything.
  bool SqlEquals(const Value& other) const;

  // Human-readable rendering (geometries as WKT).
  std::string ToDisplayString() const;

  // Structural hash for result checksums.
  uint64_t Hash() const;

  // Approximate in-memory footprint, used to charge result rows against an
  // ExecContext memory budget. Deliberately cheap: strings count their
  // length, geometries count 16 bytes per coordinate.
  uint64_t ApproxBytes() const;

 private:
  struct Null {};
  using Payload =
      std::variant<Null, bool, int64_t, double, std::string, geom::Geometry>;
  explicit Value(Payload payload) : payload_(std::move(payload)) {}

  Payload payload_;
};

}  // namespace jackpine::engine

#endif  // JACKPINE_ENGINE_VALUE_H_
