#include "engine/planner.h"

#include "common/string_util.h"
#include "obs/trace.h"

namespace jackpine::engine {

namespace {

// Splits a bound WHERE into top-level AND conjuncts (non-owning pointers).
void CollectConjuncts(const BoundExpr& expr,
                      std::vector<const BoundExpr*>* out) {
  if (expr.kind == BoundExpr::Kind::kBinary &&
      expr.binary_op == BinaryOp::kAnd) {
    CollectConjuncts(expr.children[0], out);
    CollectConjuncts(expr.children[1], out);
    return;
  }
  out->push_back(&expr);
}

// True when `expr` is a bare geometry column of table `t`; outputs the
// column index.
bool IsGeometryColumnOf(const BoundExpr& expr, const Binder& binder, size_t t,
                        size_t* column) {
  if (expr.kind != BoundExpr::Kind::kColumn) return false;
  if (expr.slot.table_index != t) return false;
  const Table* table = binder.table(t);
  if (table->schema().column(expr.slot.column_index).type !=
      DataType::kGeometry) {
    return false;
  }
  *column = expr.slot.column_index;
  return true;
}

// True when `expr` is constant and evaluates to a geometry (a folded
// literal, or — when folding is disabled for the ablation — a constant
// subtree evaluated once here so access-path selection is unaffected).
bool IsGeometryLiteral(const BoundExpr& expr, const EvalContext& ctx,
                       geom::Geometry* out) {
  if (!expr.IsConstant()) return false;
  if (expr.kind == BoundExpr::Kind::kLiteral) {
    if (expr.literal.type() != DataType::kGeometry) return false;
    *out = expr.literal.geometry_value();
    return true;
  }
  RowView no_rows;
  const Result<Value> v = EvalBound(expr, no_rows, ctx);
  if (!v.ok() || v->type() != DataType::kGeometry) return false;
  *out = v->geometry_value();
  return true;
}

// Evaluates a constant numeric argument (for ST_DWithin distances).
bool TryConstantDouble(const BoundExpr& expr, const EvalContext& ctx,
                       double* out) {
  if (!expr.IsConstant()) return false;
  RowView no_rows;
  const Result<Value> v = EvalBound(expr, no_rows, ctx);
  if (!v.ok()) return false;
  const auto d = v->AsDouble();
  if (!d.ok()) return false;
  *out = *d;
  return true;
}

// Tries to set up the single-table index window from one conjunct.
void TryWindowFromConjunct(const BoundExpr& conjunct, const Binder& binder,
                           const EvalContext& ctx, PhysicalPlan* plan) {
  if (plan->use_window) return;
  if (conjunct.kind != BoundExpr::Kind::kCall || conjunct.fn == nullptr ||
      !conjunct.fn->indexable_predicate) {
    return;
  }
  const auto& args = conjunct.children;
  if (args.size() < 2) return;

  size_t column = 0;
  geom::Geometry constant;
  bool matched = false;
  if (IsGeometryColumnOf(args[0], binder, 0, &column) &&
      IsGeometryLiteral(args[1], ctx, &constant)) {
    matched = true;
  } else if (IsGeometryColumnOf(args[1], binder, 0, &column) &&
             IsGeometryLiteral(args[0], ctx, &constant)) {
    matched = true;
  }
  if (!matched || constant.envelope().IsNull()) return;

  geom::Envelope window = constant.envelope();
  if (EqualsIgnoreCase(conjunct.fn->name, "ST_DWithin")) {
    double d = 0;
    if (args.size() != 3 || !TryConstantDouble(args[2], ctx, &d) || d < 0) {
      return;
    }
    window = window.Expanded(d);
  }
  if (binder.table(0)->GetSpatialIndex(column) == nullptr) return;
  plan->use_window = true;
  plan->window_column = column;
  plan->window = window;
}

// Tries to set up the index nested-loop join from one conjunct.
void TryJoinFromConjunct(const BoundExpr& conjunct, const Binder& binder,
                         const EvalContext& ctx, PhysicalPlan* plan) {
  if (plan->use_join_index) return;
  if (conjunct.kind != BoundExpr::Kind::kCall || conjunct.fn == nullptr ||
      !conjunct.fn->indexable_predicate) {
    return;
  }
  const auto& args = conjunct.children;
  if (args.size() < 2) return;

  // Each geometry argument must reference exactly one table.
  auto side_of = [](const BoundExpr& e) -> int {
    const bool t0 = e.ReferencesTable(0);
    const bool t1 = e.ReferencesTable(1);
    if (t0 && !t1) return 0;
    if (t1 && !t0) return 1;
    return -1;
  };
  const int s0 = side_of(args[0]);
  const int s1 = side_of(args[1]);
  if (s0 < 0 || s1 < 0 || s0 == s1) return;

  double expand = 0.0;
  if (EqualsIgnoreCase(conjunct.fn->name, "ST_DWithin")) {
    double d = 0;
    if (args.size() != 3 || !TryConstantDouble(args[2], ctx, &d) || d < 0) {
      return;
    }
    expand = d;
  }

  // Prefer the indexed side as inner; when both are bare indexed columns,
  // pick the larger table as inner (probe it, loop over the smaller).
  struct Side {
    size_t table;
    const BoundExpr* expr;
    size_t column = 0;
    bool is_column = false;
    bool indexed = false;
  };
  Side sides[2] = {{static_cast<size_t>(s0), &args[0]},
                   {static_cast<size_t>(s1), &args[1]}};
  for (Side& s : sides) {
    s.is_column = IsGeometryColumnOf(*s.expr, binder, s.table, &s.column);
    s.indexed = s.is_column &&
                binder.table(s.table)->GetSpatialIndex(s.column) != nullptr;
  }
  int inner = -1;
  if (sides[0].indexed && sides[1].indexed) {
    inner = binder.table(sides[0].table)->NumRows() >=
                    binder.table(sides[1].table)->NumRows()
                ? 0
                : 1;
  } else if (sides[0].indexed) {
    inner = 0;
  } else if (sides[1].indexed) {
    inner = 1;
  }
  if (inner < 0) return;
  const Side& in = sides[inner];
  const Side& out = sides[1 - inner];

  plan->use_join_index = true;
  plan->inner_table = in.table;
  plan->outer_table = out.table;
  plan->inner_geom_column = in.column;
  plan->outer_key = *out.expr;  // copy of the bound key expression
  plan->join_expand = expand;
}

// Detects ORDER BY ST_Distance(geom_col, POINT-literal) [ASC] LIMIT k.
void TryKnn(const SelectStatement& stmt, const Binder& binder,
            const EvalContext& ctx, PhysicalPlan* plan) {
  if (plan->tables.size() != 1 || plan->has_aggregates) return;
  if (stmt.where != nullptr) return;  // keep semantics exact
  // Additional ORDER BY keys after the distance are tie-breakers; the
  // gathered candidate superset stays correct, so only the first key and
  // its direction matter here.
  if (plan->order_by.empty() || !plan->order_by[0].ascending) return;
  if (!plan->limit.has_value()) return;
  const BoundExpr& key = plan->order_by[0].expr;
  if (key.kind != BoundExpr::Kind::kCall || key.fn == nullptr ||
      !EqualsIgnoreCase(key.fn->name, "ST_Distance")) {
    return;
  }
  size_t column = 0;
  geom::Geometry constant;
  bool matched =
      (IsGeometryColumnOf(key.children[0], binder, 0, &column) &&
       IsGeometryLiteral(key.children[1], ctx, &constant)) ||
      (IsGeometryColumnOf(key.children[1], binder, 0, &column) &&
       IsGeometryLiteral(key.children[0], ctx, &constant));
  if (!matched) return;
  if (constant.type() != geom::GeometryType::kPoint || constant.IsEmpty()) {
    return;
  }
  if (binder.table(0)->GetSpatialIndex(column) == nullptr) return;
  plan->use_knn = true;
  plan->knn_column = column;
  plan->knn_center = constant.AsPoint();
}

}  // namespace

Result<PhysicalPlan> PlanSelect(const SelectStatement& stmt,
                                const Catalog& catalog,
                                const EvalContext& ctx) {
  PhysicalPlan plan;
  plan.ctx = ctx;
  if (stmt.from.empty() || stmt.from.size() > 2) {
    return Status::InvalidArgument(
        "FROM must reference one or two tables");
  }
  for (const TableRef& ref : stmt.from) {
    const Table* table = catalog.GetTable(ref.table);
    if (table == nullptr) {
      return Status::NotFound(StrFormat("table '%s'", ref.table.c_str()));
    }
    plan.tables.push_back(table);
    plan.aliases.push_back(ref.alias);
  }
  Binder binder(plan.tables, plan.aliases);

  // Select list: expand '*', bind the rest.
  for (const SelectItem& item : stmt.items) {
    if (item.star) {
      for (size_t t = 0; t < plan.tables.size(); ++t) {
        const Schema& schema = plan.tables[t]->schema();
        for (size_t c = 0; c < schema.NumColumns(); ++c) {
          PhysicalPlan::OutputItem out;
          out.name = schema.column(c).name;
          out.expr.kind = BoundExpr::Kind::kColumn;
          out.expr.slot = BindingSlot{t, c};
          plan.outputs.push_back(std::move(out));
        }
      }
      continue;
    }
    PhysicalPlan::OutputItem out;
    JACKPINE_ASSIGN_OR_RETURN(
        out.expr, BindExpr(*item.expr, binder, ctx, /*allow_aggregates=*/true));
    out.name = item.alias.empty() ? DisplayName(*item.expr) : item.alias;
    if (out.expr.ContainsAggregate()) plan.has_aggregates = true;
    plan.outputs.push_back(std::move(out));
  }
  for (const ExprPtr& g : stmt.group_by) {
    JACKPINE_ASSIGN_OR_RETURN(
        BoundExpr bound,
        BindExpr(*g, binder, ctx, /*allow_aggregates=*/false));
    plan.group_by.push_back(std::move(bound));
  }
  if (plan.has_aggregates && plan.group_by.empty()) {
    for (const auto& out : plan.outputs) {
      if (!out.expr.ContainsAggregate() &&
          out.expr.kind != BoundExpr::Kind::kLiteral) {
        return Status::InvalidArgument(
            "mixing aggregates and per-row columns requires GROUP BY");
      }
    }
  }

  if (stmt.where != nullptr) {
    JACKPINE_ASSIGN_OR_RETURN(
        BoundExpr where,
        BindExpr(*stmt.where, binder, ctx, /*allow_aggregates=*/false));
    plan.where = std::move(where);
  }
  for (const OrderItem& item : stmt.order_by) {
    PhysicalPlan::BoundOrder order;
    // ORDER BY may reference aggregates only under GROUP BY (sorted after
    // the groups are materialised).
    JACKPINE_ASSIGN_OR_RETURN(
        order.expr, BindExpr(*item.expr, binder, ctx,
                             /*allow_aggregates=*/!stmt.group_by.empty()));
    order.ascending = item.ascending;
    plan.order_by.push_back(std::move(order));
  }
  plan.limit = stmt.limit;

  // Access-path selection.
  if (plan.where.has_value()) {
    std::vector<const BoundExpr*> conjuncts;
    CollectConjuncts(*plan.where, &conjuncts);
    if (plan.tables.size() == 1) {
      for (const BoundExpr* c : conjuncts) {
        TryWindowFromConjunct(*c, binder, ctx, &plan);
      }
    } else {
      for (const BoundExpr* c : conjuncts) {
        TryJoinFromConjunct(*c, binder, ctx, &plan);
      }
    }
  }
  TryKnn(stmt, binder, ctx, &plan);
  return plan;
}

std::string DescribePlan(const PhysicalPlan& plan) {
  std::string out;
  if (plan.tables.size() == 1) {
    const std::string table = plan.tables[0]->name();
    if (plan.use_knn) {
      out += StrFormat("KnnIndexScan %s (column #%zu, center %.6g %.6g)\n",
                       table.c_str(), plan.knn_column, plan.knn_center.x,
                       plan.knn_center.y);
    } else if (plan.use_window) {
      out += StrFormat("IndexWindowScan %s (column #%zu, window %s)\n",
                       table.c_str(), plan.window_column,
                       plan.window.ToString().c_str());
    } else {
      out += StrFormat("SeqScan %s (%zu rows)\n", table.c_str(),
                       plan.tables[0]->NumRows());
    }
  } else {
    if (plan.use_join_index) {
      out += StrFormat(
          "IndexNestedLoopJoin outer=%s inner=%s (inner index column #%zu",
          plan.tables[plan.outer_table]->name().c_str(),
          plan.tables[plan.inner_table]->name().c_str(),
          plan.inner_geom_column);
      if (plan.join_expand > 0) {
        out += StrFormat(", window expanded by %g", plan.join_expand);
      }
      out += ")\n";
    } else {
      out += StrFormat("NestedLoopJoin %s x %s (%zu x %zu rows)\n",
                       plan.tables[0]->name().c_str(),
                       plan.tables[1]->name().c_str(),
                       plan.tables[0]->NumRows(), plan.tables[1]->NumRows());
    }
  }
  if (plan.where.has_value()) out += "Filter (refine step)\n";
  if (!plan.group_by.empty()) {
    out += StrFormat("GroupBy (%zu keys)\n", plan.group_by.size());
  }
  if (plan.has_aggregates) out += "Aggregate\n";
  if (!plan.order_by.empty()) {
    out += StrFormat("Sort (%zu keys)\n", plan.order_by.size());
  }
  if (plan.limit.has_value()) {
    out += StrFormat("Limit %lld\n", static_cast<long long>(*plan.limit));
  }
  std::string columns;
  for (const auto& o : plan.outputs) {
    if (!columns.empty()) columns += ", ";
    columns += o.name;
  }
  out += "Output: " + columns;
  return out;
}

std::string DescribePlanAnalyze(const PhysicalPlan& plan,
                                const obs::QueryTrace& trace) {
  // Annotate each DescribePlan line with the measured numbers that belong to
  // that operator, then append the stage-time and row-total footer lines.
  const auto u64 = [](uint64_t v) { return static_cast<unsigned long long>(v); };
  std::string out;
  std::string scan_annot;
  const bool indexed =
      plan.use_knn || plan.use_window || plan.use_join_index;
  if (indexed) {
    scan_annot = StrFormat(" (actual: probes=%llu nodes=%llu candidates=%llu)",
                           u64(trace.index_probes),
                           u64(trace.index_nodes_visited),
                           u64(trace.index_candidates));
  } else {
    scan_annot =
        StrFormat(" (actual: rows_scanned=%llu)", u64(trace.rows_scanned));
  }
  for (const std::string& line : Split(DescribePlan(plan), '\n')) {
    if (line.rfind("KnnIndexScan", 0) == 0 ||
        line.rfind("IndexWindowScan", 0) == 0 ||
        line.rfind("SeqScan", 0) == 0 ||
        line.rfind("IndexNestedLoopJoin", 0) == 0 ||
        line.rfind("NestedLoopJoin", 0) == 0) {
      out += line + scan_annot + "\n";
    } else if (line.rfind("Filter", 0) == 0) {
      out += line + StrFormat(" (actual: checks=%llu survivors=%llu kept=%.1f%%)",
                              u64(trace.refine_checks),
                              u64(trace.refine_survivors),
                              trace.RefineRatio() * 100.0);
      out += "\n";
    } else {
      out += line + "\n";
    }
  }
  out += StrFormat(
      "Execution: parse %.3fms plan %.3fms exec %.3fms total %.3fms\n",
      trace.parse_s * 1e3, trace.plan_s * 1e3, trace.exec_s * 1e3,
      trace.total_s * 1e3);
  out += StrFormat("Rows: examined=%llu returned=%llu",
                   u64(trace.rows_examined), u64(trace.rows_returned));
  return out;
}

}  // namespace jackpine::engine
